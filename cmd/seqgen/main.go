// Command seqgen evolves nucleotide sequences along a Newick genealogy,
// mirroring the `seq-gen -mF84 -l <len> -s <scale> < treefile` invocation
// of the paper's data pipeline (§6.1). The tree is read from stdin (or a
// file argument) and the alignment prints in PHYLIP format on stdout. One
// alignment is produced per input tree.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mpcgs/internal/gtree"
	"mpcgs/internal/newick"
	"mpcgs/internal/phylip"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

func main() {
	var (
		length = flag.Int("l", 200, "sequence length in base pairs")
		scale  = flag.Float64("s", 1.0, "branch length scaling factor")
		model  = flag.String("m", "F84", "substitution model: F84, F81, or JC69")
		kappa  = flag.Float64("kappa", 2.0, "F84 transition/transversion rate ratio")
		seed   = flag.Uint64("seed", 1, "PRNG seed")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: seqgen [flags] [treefile]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	in := os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fatalf("reading trees: %v", err)
	}
	parsed, err := newick.ParseAll(string(data))
	if err != nil {
		fatalf("%v", err)
	}
	if len(parsed) == 0 {
		fatalf("no trees in input")
	}
	m, err := buildModel(*model, *kappa)
	if err != nil {
		fatalf("%v", err)
	}
	for i, nt := range parsed {
		t, err := gtree.FromNewick(nt)
		if err != nil {
			fatalf("tree %d: %v", i+1, err)
		}
		aln, err := seqgen.Simulate(t, seqgen.Config{
			Length: *length,
			Scale:  *scale,
			Model:  m,
			Seed:   *seed + uint64(i),
		})
		if err != nil {
			fatalf("tree %d: %v", i+1, err)
		}
		if err := phylip.Write(os.Stdout, aln); err != nil {
			fatalf("%v", err)
		}
	}
}

func buildModel(name string, kappa float64) (subst.Model, error) {
	switch name {
	case "F84", "f84":
		return subst.NewF84(subst.Uniform, kappa, true)
	case "F81", "f81":
		return subst.NewF81(subst.Uniform, true)
	case "JC69", "jc69", "JC":
		return subst.NewJC69(), nil
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "seqgen: "+format+"\n", args...)
	os.Exit(1)
}
