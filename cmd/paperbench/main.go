// Command paperbench regenerates the tables and figures of the paper's
// evaluation section (§6) as text tables and ASCII plots.
//
//	paperbench -experiment accuracy    # Table 1 / Fig. 13
//	paperbench -experiment samples     # Table 2 / Fig. 14
//	paperbench -experiment sequences   # Table 3 / Fig. 15
//	paperbench -experiment seqlen      # Table 4 / Fig. 16
//	paperbench -experiment curve       # Fig. 5
//	paperbench -experiment burnin      # Fig. 2
//	paperbench -experiment multichain  # Fig. 6
//	paperbench -experiment all
//
// The default -scale quick shrinks workloads to finish in minutes;
// -scale paper uses the paper's sizes.
package main

import (
	"flag"
	"fmt"
	"os"

	"mpcgs/internal/experiments"
	"mpcgs/internal/stats"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (accuracy, samples, sequences, seqlen, curve, burnin, multichain, all)")
		scale      = flag.String("scale", "quick", "workload sizing: quick or paper")
		workers    = flag.Int("workers", 0, "device parallelism (0 = all cores)")
		seed       = flag.Uint64("seed", 0, "PRNG seed (0 = default)")
	)
	flag.Parse()
	c := experiments.Common{
		Scale:   experiments.Scale(*scale),
		Workers: *workers,
		Seed:    *seed,
	}
	runners := map[string]func(experiments.Common) error{
		"accuracy":     runAccuracy,
		"samples":      runSamples,
		"sequences":    runSequences,
		"seqlen":       runSeqLen,
		"curve":        runCurve,
		"burnin":       runBurnin,
		"multichain":   runMultichain,
		"proposalsize": runProposalSize,
		"nested":       runNested,
		"growth":       runGrowth,
	}
	order := []string{
		"accuracy", "samples", "sequences", "seqlen", "curve", "burnin",
		"multichain", "proposalsize", "nested", "growth",
	}
	if *experiment == "all" {
		for _, name := range order {
			if err := runners[name](c); err != nil {
				fatalf("%s: %v", name, err)
			}
		}
		return
	}
	run, ok := runners[*experiment]
	if !ok {
		fatalf("unknown experiment %q", *experiment)
	}
	if err := run(c); err != nil {
		fatalf("%s: %v", *experiment, err)
	}
}

func runAccuracy(c experiments.Common) error {
	fmt.Println("=== Table 1 / Figure 13: theta-estimation accuracy, LAMARC (serial MH) vs mpcgs (GMH) ===")
	res, err := experiments.Accuracy(c)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-10s %-12s %-10s %-12s\n", "True", "LAMARC", "LAMARC SD", "mpcgs", "mpcgs SD")
	pts := map[string][]stats.Point{}
	for _, r := range res.Rows {
		fmt.Printf("%-8.2f %-10.3f %-12.3f %-10.3f %-12.3f\n",
			r.TrueTheta, r.LAMARC, r.LAMARCStd, r.MPCGS, r.MPCGSStd)
		pts["LAMARC"] = append(pts["LAMARC"], stats.Point{X: r.TrueTheta, Y: r.LAMARC})
		pts["mpcgs"] = append(pts["mpcgs"], stats.Point{X: r.TrueTheta, Y: r.MPCGS})
		pts["y=x"] = append(pts["y=x"], stats.Point{X: r.TrueTheta, Y: r.TrueTheta})
	}
	fmt.Printf("Pearson r (LAMARC vs mpcgs estimates) = %.3f   [paper: 0.905]\n\n", res.Pearson)
	fmt.Println(stats.AsciiPlot("Figure 13: estimated theta vs true theta",
		"true theta", "estimate", pts, 56, 16))
	return nil
}

func printSpeedup(title, param string, pts []experiments.SpeedupPoint, paperVals []float64) {
	fmt.Printf("=== %s ===\n", title)
	fmt.Printf("%-10s %-12s %-14s %-10s %-12s\n", param, "serial (s)", "parallel (s)", "speedup", "paper")
	plot := map[string][]stats.Point{}
	for i, p := range pts {
		paper := "-"
		if i < len(paperVals) {
			paper = fmt.Sprintf("%.2f", paperVals[i])
		}
		fmt.Printf("%-10d %-12.3f %-14.3f %-10.2f %-12s\n",
			p.Param, p.SerialSec, p.ParallelSec, p.Speedup, paper)
		plot["measured"] = append(plot["measured"], stats.Point{X: float64(p.Param), Y: p.Speedup})
		if i < len(paperVals) {
			plot["paper"] = append(plot["paper"], stats.Point{X: float64(p.Param), Y: paperVals[i]})
		}
	}
	fmt.Println()
	fmt.Println(stats.AsciiPlot(title, param, "speedup", plot, 56, 14))
}

func runSamples(c experiments.Common) error {
	pts, err := experiments.SpeedupVsSamples(c)
	if err != nil {
		return err
	}
	printSpeedup("Table 2 / Figure 14: speedup vs number of genealogy samples",
		"samples", pts, []float64{3.69, 3.8, 3.95, 4.19, 4.27, 4.32})
	return nil
}

func runSequences(c experiments.Common) error {
	pts, err := experiments.SpeedupVsSequences(c)
	if err != nil {
		return err
	}
	printSpeedup("Table 3 / Figure 15: speedup vs number of sequences",
		"sequences", pts, []float64{3.69, 3.41, 2.9, 2.78, 2.57, 2.43, 2.43, 2.83})
	return nil
}

func runSeqLen(c experiments.Common) error {
	pts, err := experiments.SpeedupVsSeqLen(c)
	if err != nil {
		return err
	}
	printSpeedup("Table 4 / Figure 16: speedup vs sequence length",
		"bp", pts, []float64{3.69, 5.67, 7.86, 10.22, 12.63, 23.28})
	return nil
}

func runCurve(c experiments.Common) error {
	fmt.Println("=== Figure 5: relative likelihood curve (true theta 1.0, driving theta0 0.01) ===")
	res, err := experiments.LikelihoodCurve(c)
	if err != nil {
		return err
	}
	pts := map[string][]stats.Point{}
	for i, th := range res.Thetas {
		pts["log L(theta)"] = append(pts["log L(theta)"], stats.Point{X: th, Y: res.LogL[i]})
	}
	fmt.Println(stats.AsciiPlot("Figure 5: log relative likelihood over theta",
		"theta", "log L", pts, 64, 18))
	fmt.Printf("curve maximum near theta = %.3g (true 1.0, driving 0.01)\n\n", res.ArgMax)
	return nil
}

func runBurnin(c experiments.Common) error {
	fmt.Println("=== Figure 2: chain burn-in trace (data log-likelihood per draw) ===")
	res, err := experiments.BurninTrace(c)
	if err != nil {
		return err
	}
	pts := map[string][]stats.Point{}
	for i, v := range res.Trace {
		pts["log P(D|G)"] = append(pts["log P(D|G)"], stats.Point{X: float64(i), Y: v})
	}
	fmt.Println(stats.AsciiPlot("Figure 2: burn-in trace", "draw", "log P(D|G)", pts, 64, 18))
	ess := stats.EffectiveSampleSize(res.Trace[len(res.Trace)/2:])
	fmt.Printf("post-burn-in effective sample size over %d draws: %.0f\n\n", len(res.Trace)/2, ess)
	return nil
}

func runMultichain(c experiments.Common) error {
	fmt.Println("=== Figure 6: multi-chain burn-in inefficiency vs GMH ===")
	pts, err := experiments.MultichainEfficiency(c)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-16s %-12s %-22s\n", "P", "multichain (s)", "GMH (s)", "Amdahl model (B+N/P)/(B+N)")
	plot := map[string][]stats.Point{}
	for _, p := range pts {
		fmt.Printf("%-6d %-16.3f %-12.3f %-22.3f\n", p.P, p.MultichainSec, p.GMHSec, p.ModelWork)
		plot["multichain"] = append(plot["multichain"], stats.Point{X: float64(p.P), Y: p.MultichainSec})
		plot["gmh"] = append(plot["gmh"], stats.Point{X: float64(p.P), Y: p.GMHSec})
	}
	fmt.Println()
	fmt.Println(stats.AsciiPlot("Figure 6: wall time vs parallelism", "P", "seconds", plot, 56, 14))
	return nil
}

func runProposalSize(c experiments.Common) error {
	fmt.Println("=== Ablation: GMH proposal-set size N (paper §7 tuning question) ===")
	pts, err := experiments.ProposalSetSize(c)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-10s %-12s %-10s %-12s\n", "N", "wall (s)", "move rate", "ESS", "ESS/s")
	for _, p := range pts {
		fmt.Printf("%-6d %-10.3f %-12.3f %-10.0f %-12.0f\n", p.N, p.Sec, p.MoveRate, p.ESS, p.ESSPerSec)
	}
	fmt.Println()
	return nil
}

func runNested(c experiments.Common) error {
	fmt.Println("=== Ablation: dynamic parallelism (per-proposal site kernels, paper §4.4) ===")
	pts, err := experiments.NestedParallelism(c)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-12s %-12s %-10s\n", "N", "flat (s)", "nested (s)", "nested/flat")
	for _, p := range pts {
		fmt.Printf("%-6d %-12.3f %-12.3f %-10.2f\n", p.N, p.FlatSec, p.NestedSec, p.NestedSec/p.FlatSec)
	}
	fmt.Println()
	return nil
}

func runGrowth(c experiments.Common) error {
	fmt.Println("=== Extension (paper §7): two-parameter estimation (theta, growth) ===")
	pts, err := experiments.GrowthEstimation(c)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-12s %-12s\n", "true g", "theta-hat", "g-hat")
	for _, p := range pts {
		fmt.Printf("%-12.1f %-12.3f %-12.3f\n", p.TrueGrowth, p.Theta, p.Growth)
	}
	fmt.Println()
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paperbench: "+format+"\n", args...)
	os.Exit(1)
}
