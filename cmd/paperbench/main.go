// Command paperbench regenerates the tables and figures of the paper's
// evaluation section (§6) as text tables and ASCII plots.
//
//	paperbench -experiment accuracy    # Table 1 / Fig. 13
//	paperbench -experiment samples     # Table 2 / Fig. 14
//	paperbench -experiment sequences   # Table 3 / Fig. 15
//	paperbench -experiment seqlen      # Table 4 / Fig. 16
//	paperbench -experiment curve       # Fig. 5
//	paperbench -experiment burnin      # Fig. 2
//	paperbench -experiment multichain  # Fig. 6
//	paperbench -experiment all
//
// -experiment also accepts a comma-separated list. The default -scale
// quick shrinks workloads to finish in minutes; -scale paper uses the
// paper's sizes, and -experiment seqlen-full runs the Fig. 16 sweep at
// paper scale regardless of -scale. With -md FILE the run's output is
// additionally written into FILE as a generated Markdown section, which
// is how EXPERIMENTS.md at the repository root is produced:
//
//	paperbench -experiment samples,sequences,seqlen -md EXPERIMENTS.md
//
// With -json FILE the measured speedup points are also written as a
// machine-readable snapshot — the BENCH_<pr>.json trajectory committed
// at the repository root. -cpuprofile/-memprofile write stock pprof
// profiles of the run; -trace writes a runtime/trace for inspecting
// scheduler behaviour around the device launches.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"mpcgs/internal/device"
	"mpcgs/internal/experiments"
	"mpcgs/internal/stats"
)

// measuredSpeedups collects the speedup points of the §6 sweeps as they
// run, so the -guard check can compare them against committed baselines.
var measuredSpeedups = map[string][]experiments.SpeedupPoint{}

func main() {
	var (
		experiment  = flag.String("experiment", "all", "comma-separated experiments to run (accuracy, samples, sequences, seqlen, seqlen-full, gmhround, curve, burnin, multichain, batch, autostop, tempering, proposalsize, nested, growth, all)")
		scale       = flag.String("scale", "quick", "workload sizing: quick or paper")
		workers     = flag.Int("workers", 0, "device parallelism (0 = all cores)")
		seed        = flag.Uint64("seed", 0, "PRNG seed (0 = default)")
		mdPath      = flag.String("md", "", "also write the run's output to this Markdown file as a generated section")
		jsonPath    = flag.String("json", "", "write the run's measured speedup/time points to this file as machine-readable JSON (the BENCH_*.json trajectory)")
		guardPath   = flag.String("guard", "", "compare measured §6 speedups against the baselines in this generated Markdown file (typically EXPERIMENTS.md) and exit non-zero below the floor")
		guardFactor = flag.Float64("guard-factor", 0.7, "speedup floor as a fraction of the committed baseline (absorbs runner noise)")
		comparePath = flag.String("compare", "", "directory of committed BENCH_*.json snapshots (typically the repo root): print the per-experiment speedup trajectory and exit non-zero if this run regressed against the latest snapshot")
		compareFact = flag.Float64("compare-factor", 0.7, "trajectory floor as a fraction of the latest snapshot's speedup (absorbs runner noise)")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
		tracePath   = flag.String("trace", "", "write a runtime/trace of the run to this file (inspect with go tool trace)")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatalf("-trace: %v", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fatalf("-trace: %v", err)
		}
		defer trace.Stop()
	}
	defer writeMemProfile(*memProfile)
	c := experiments.Common{
		Scale:   experiments.Scale(*scale),
		Workers: *workers,
		Seed:    *seed,
	}
	runners := map[string]func(io.Writer, experiments.Common) error{
		"accuracy":     runAccuracy,
		"samples":      runSamples,
		"sequences":    runSequences,
		"seqlen":       runSeqLen,
		"curve":        runCurve,
		"burnin":       runBurnin,
		"multichain":   runMultichain,
		"batch":        runBatch,
		"autostop":     runAutostop,
		"tempering":    runTempering,
		"proposalsize": runProposalSize,
		"nested":       runNested,
		"growth":       runGrowth,
		"seqlen-full":  runSeqLenFull,
		"gmhround":     runGMHRound,
		"service":      runService,
	}
	// seqlen-full always runs the paper-scale workload, so "all" leaves it
	// out; select it explicitly when regenerating the full-scale table.
	order := []string{
		"accuracy", "samples", "sequences", "seqlen", "gmhround", "curve",
		"burnin", "multichain", "batch", "autostop", "tempering", "service",
		"proposalsize", "nested", "growth",
	}
	var names []string
	if *experiment == "all" {
		names = order
	} else {
		for _, name := range strings.Split(*experiment, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := runners[name]; !ok {
				fatalf("unknown experiment %q", name)
			}
			names = append(names, name)
		}
		if len(names) == 0 {
			fatalf("no experiment selected")
		}
	}

	var buf bytes.Buffer
	var w io.Writer = os.Stdout
	if *mdPath != "" {
		w = io.MultiWriter(os.Stdout, &buf)
	}
	for _, name := range names {
		if err := runners[name](w, c); err != nil {
			fatalf("%s: %v", name, err)
		}
	}
	if *mdPath != "" {
		if err := writeMarkdown(*mdPath, names, c, buf.Bytes()); err != nil {
			fatalf("writing %s: %v", *mdPath, err)
		}
		fmt.Fprintf(os.Stderr, "paperbench: wrote %s\n", *mdPath)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, names, c); err != nil {
			fatalf("writing %s: %v", *jsonPath, err)
		}
		fmt.Fprintf(os.Stderr, "paperbench: wrote %s\n", *jsonPath)
	}
	if *guardPath != "" {
		runGuard(*guardPath, *guardFactor)
	}
	if *comparePath != "" {
		runCompare(*comparePath, *compareFact)
	}
}

// writeJSON dumps the run's measured speedup points as an indented
// experiments.BenchSnapshot. Only experiments that measure
// serial-vs-parallel pairs contribute; a run that selected none still
// writes a valid (empty) snapshot.
func writeJSON(path string, names []string, c experiments.Common) error {
	scale := string(c.Scale)
	if scale == "" {
		scale = string(experiments.ScaleQuick)
	}
	// Record the parallelism the run actually used, not the raw flag:
	// -workers 0 means "all cores", and a snapshot that says 0 makes
	// cross-snapshot trajectory comparisons hardware-blind.
	dev := device.New(c.Workers)
	effectiveWorkers := dev.Workers()
	dev.Close()
	snap := experiments.BenchSnapshot{
		Schema:      experiments.SnapshotSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       scale,
		Workers:     effectiveWorkers,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Seed:        c.Seed,
		Experiments: names,
		Speedups:    measuredSpeedups,
	}
	return snap.Write(path)
}

// runCompare is the CI bench-trajectory gate: print the per-experiment
// speedup trajectory across every committed BENCH_*.json, then compare
// this run's fresh measurements against the latest snapshot and exit
// non-zero on a regression past the floor. A run that measured nothing
// comparable also fails — a trajectory check that checked zero points
// checked nothing.
func runCompare(dir string, factor float64) {
	snaps, err := experiments.LoadSnapshots(dir)
	if err != nil {
		fatalf("bench-trajectory: %v", err)
	}
	if len(snaps) == 0 {
		fatalf("bench-trajectory: no BENCH_*.json snapshots in %s", dir)
	}
	experiments.FormatTrajectory(os.Stdout, snaps)
	latest := snaps[len(snaps)-1]
	checked, violations := experiments.CompareSnapshot(measuredSpeedups, latest, factor)
	if checked == 0 {
		fatalf("bench-trajectory: no measured point matched %s (run an experiment the snapshot covers, e.g. seqlen)", latest.File)
	}
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "bench-trajectory: FAIL %s\n", v)
	}
	if len(violations) > 0 {
		fatalf("bench-trajectory: %d of %d points regressed past %.0f%% of %s", len(violations), checked, factor*100, latest.File)
	}
	fmt.Printf("bench-trajectory: OK, %d points within %.0f%% of %s across %d snapshots\n",
		checked, factor*100, latest.File, len(snaps))
}

// writeMemProfile writes a heap profile at process exit (after a GC, so
// the profile reflects live retention rather than garbage).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("-memprofile: %v", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatalf("-memprofile: %v", err)
	}
}

// runGuard is the CI speedup-guard: it compares this run's measured §6
// speedup points against the baselines committed in a generated
// EXPERIMENTS.md and exits non-zero if any point fell below
// baseline × factor. A run that measured nothing comparable also fails —
// a guard that checks zero points guards nothing.
func runGuard(path string, factor float64) {
	f, err := os.Open(path)
	if err != nil {
		fatalf("speedup-guard: %v", err)
	}
	defer f.Close()
	base, err := experiments.ParseBaselines(f)
	if err != nil {
		fatalf("speedup-guard: %s: %v", path, err)
	}
	checked, violations := experiments.CheckSpeedupFloor(measuredSpeedups, base, factor)
	if checked == 0 {
		fatalf("speedup-guard: no measured point matched a baseline in %s (run the samples/sequences/seqlen experiments)", path)
	}
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "speedup-guard: FAIL %s\n", v)
	}
	if len(violations) > 0 {
		fatalf("speedup-guard: %d of %d points below the %.0f%% floor", len(violations), checked, factor*100)
	}
	fmt.Printf("speedup-guard: OK, %d points at or above %.0f%% of their %s baselines\n", checked, factor*100, path)
}

// writeMarkdown renders the captured run as a generated Markdown document:
// the reproducible command line followed by the verbatim tables and plots.
func writeMarkdown(path string, names []string, c experiments.Common, body []byte) error {
	scale := string(c.Scale)
	if scale == "" {
		scale = string(experiments.ScaleQuick)
	}
	var out bytes.Buffer
	fmt.Fprintf(&out, "# EXPERIMENTS\n\n")
	fmt.Fprintf(&out, "<!-- Generated by cmd/paperbench; regenerate instead of editing. -->\n\n")
	fmt.Fprintf(&out, "Measured reproduction of the paper's §6 evaluation on this machine.\n")
	cmd := fmt.Sprintf("go run ./cmd/paperbench -experiment %s -scale %s",
		strings.Join(names, ","), scale)
	if c.Workers != 0 {
		cmd += fmt.Sprintf(" -workers %d", c.Workers)
	}
	if c.Seed != 0 {
		cmd += fmt.Sprintf(" -seed %d", c.Seed)
	}
	fmt.Fprintf(&out, "Regenerate with:\n\n")
	fmt.Fprintf(&out, "    %s -md %s\n\n", cmd, path)
	fmt.Fprintf(&out, "The body below is the verbatim paperbench report for the selected\n")
	fmt.Fprintf(&out, "experiments. Where a table compares \"serial\" against \"parallel\", the\n")
	fmt.Fprintf(&out, "serial side is the LAMARC reference sampler (full likelihood\n")
	fmt.Fprintf(&out, "recomputation per step) and the parallel side is the GMH sampler with\n")
	fmt.Fprintf(&out, "delta evaluation on the device pool; a \"paper\" column gives the\n")
	fmt.Fprintf(&out, "corresponding figure's published value where one exists.\n\n")
	fmt.Fprintf(&out, "```text\n")
	out.Write(body)
	fmt.Fprintf(&out, "```\n")
	return os.WriteFile(path, out.Bytes(), 0o644)
}

func runAccuracy(w io.Writer, c experiments.Common) error {
	fmt.Fprintln(w, "=== Table 1 / Figure 13: theta-estimation accuracy, LAMARC (serial MH) vs mpcgs (GMH) ===")
	res, err := experiments.Accuracy(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-10s %-12s %-10s %-12s\n", "True", "LAMARC", "LAMARC SD", "mpcgs", "mpcgs SD")
	pts := map[string][]stats.Point{}
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-8.2f %-10.3f %-12.3f %-10.3f %-12.3f\n",
			r.TrueTheta, r.LAMARC, r.LAMARCStd, r.MPCGS, r.MPCGSStd)
		pts["LAMARC"] = append(pts["LAMARC"], stats.Point{X: r.TrueTheta, Y: r.LAMARC})
		pts["mpcgs"] = append(pts["mpcgs"], stats.Point{X: r.TrueTheta, Y: r.MPCGS})
		pts["y=x"] = append(pts["y=x"], stats.Point{X: r.TrueTheta, Y: r.TrueTheta})
	}
	fmt.Fprintf(w, "Pearson r (LAMARC vs mpcgs estimates) = %.3f   [paper: 0.905]\n\n", res.Pearson)
	fmt.Fprintln(w, stats.AsciiPlot("Figure 13: estimated theta vs true theta",
		"true theta", "estimate", pts, 56, 16))
	return nil
}

func printSpeedup(w io.Writer, title, param string, pts []experiments.SpeedupPoint, paperVals []float64) {
	fmt.Fprintf(w, "=== %s ===\n", title)
	fmt.Fprintf(w, "%-10s %-12s %-14s %-10s %-12s\n", param, "serial (s)", "parallel (s)", "speedup", "paper")
	plot := map[string][]stats.Point{}
	for i, p := range pts {
		paper := "-"
		if i < len(paperVals) {
			paper = fmt.Sprintf("%.2f", paperVals[i])
		}
		fmt.Fprintf(w, "%-10d %-12.3f %-14.3f %-10.2f %-12s\n",
			p.Param, p.SerialSec, p.ParallelSec, p.Speedup, paper)
		plot["measured"] = append(plot["measured"], stats.Point{X: float64(p.Param), Y: p.Speedup})
		if i < len(paperVals) {
			plot["paper"] = append(plot["paper"], stats.Point{X: float64(p.Param), Y: paperVals[i]})
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, stats.AsciiPlot(title, param, "speedup", plot, 56, 14))
}

func runSamples(w io.Writer, c experiments.Common) error {
	pts, err := experiments.SpeedupVsSamples(c)
	if err != nil {
		return err
	}
	measuredSpeedups["samples"] = pts
	printSpeedup(w, "Table 2 / Figure 14: speedup vs number of genealogy samples",
		"samples", pts, []float64{3.69, 3.8, 3.95, 4.19, 4.27, 4.32})
	return nil
}

func runSequences(w io.Writer, c experiments.Common) error {
	pts, err := experiments.SpeedupVsSequences(c)
	if err != nil {
		return err
	}
	measuredSpeedups["sequences"] = pts
	printSpeedup(w, "Table 3 / Figure 15: speedup vs number of sequences",
		"sequences", pts, []float64{3.69, 3.41, 2.9, 2.78, 2.57, 2.43, 2.43, 2.83})
	return nil
}

func runSeqLen(w io.Writer, c experiments.Common) error {
	pts, err := experiments.SpeedupVsSeqLen(c)
	if err != nil {
		return err
	}
	measuredSpeedups["seqlen"] = pts
	printSpeedup(w, "Table 4 / Figure 16: speedup vs sequence length",
		"bp", pts, []float64{3.69, 5.67, 7.86, 10.22, 12.63, 23.28})
	return nil
}

func runSeqLenFull(w io.Writer, c experiments.Common) error {
	pts, err := experiments.SpeedupVsSeqLenFull(c)
	if err != nil {
		return err
	}
	measuredSpeedups["seqlen-full"] = pts
	// The title must not contain "speedup vs sequence length": guard
	// sections match by substring, and this table's baselines are keyed
	// apart from the quick-scale seqlen sweep.
	printSpeedup(w, "Figure 16 trajectory: sequence-length sweep at paper scale",
		"bp", pts, []float64{3.69, 5.67, 7.86, 10.22, 12.63, 23.28})
	return nil
}

func runGMHRound(w io.Writer, c experiments.Common) error {
	pts, err := experiments.GMHWaveRound(c)
	if err != nil {
		return err
	}
	measuredSpeedups["gmhround"] = pts
	// The guard keys this section by "wave rounds vs per-candidate
	// dispatch"; like seqlen-full, the title must avoid the other guard
	// sections' substrings.
	printSpeedup(w, "GMH round dispatch: fused wave rounds vs per-candidate dispatch",
		"bp", pts, nil)
	fmt.Fprintln(w, "here \"serial\" is the per-candidate GMH dispatch (one delta evaluation")
	fmt.Fprintln(w, "per candidate) and \"parallel\" the fused (proposal x block) wave grid")
	fmt.Fprintln(w, "with the per-round outer-partial lift; both runs are bit-identical, so")
	fmt.Fprintln(w, "the speedup is pure dispatch cost (32 taxa, N=8 proposals).")
	fmt.Fprintln(w)
	return nil
}

func runBatch(w io.Writer, c experiments.Common) error {
	fmt.Fprintln(w, "=== Batch mode: multi-tenant scheduler throughput vs back-to-back runs ===")
	pts, err := experiments.BatchThroughput(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %-12s %-12s %-14s %-14s %-10s\n",
		"jobs", "serial (s)", "batch (s)", "serial jobs/s", "batch jobs/s", "speedup")
	for _, p := range pts {
		fmt.Fprintf(w, "%-6d %-12.3f %-12.3f %-14.2f %-14.2f %-10.2f\n",
			p.Jobs, p.SerialSec, p.BatchSec, p.SerialJobsPerS, p.BatchJobsPerS, p.Speedup)
	}
	fmt.Fprintln(w)
	return nil
}

func runService(w io.Writer, c experiments.Common) error {
	fmt.Fprintln(w, "=== Service mode: mpcgsd synthetic many-client throughput and latency ===")
	pts, err := experiments.ServiceThroughput(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-6s %-10s %-10s %-10s %-10s\n",
		"clients", "jobs", "wall (s)", "jobs/s", "p50 (ms)", "p95 (ms)")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8d %-6d %-10.3f %-10.2f %-10.0f %-10.0f\n",
			p.Clients, p.Jobs, p.WallSec, p.JobsPerSec, p.P50Ms, p.P95Ms)
	}
	fmt.Fprintln(w, "each client submits jobs over HTTP and polls to completion; jobs are")
	fmt.Fprintln(w, "the batch experiment's quick-scale workload, so the delta against the")
	fmt.Fprintln(w, "batch rows is the cost of the HTTP shell and the durable job journal.")
	fmt.Fprintln(w)
	return nil
}

func runAutostop(w io.Writer, c experiments.Common) error {
	fmt.Fprintln(w, "=== Auto-stop: ESS-target batches vs fixed-length equivalents ===")
	pts, err := experiments.AutostopThroughput(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %-11s %-11s %-12s %-12s %-10s %-12s %-12s %-8s\n",
		"jobs", "fixed (s)", "target (s)", "fixed steps", "tgt steps", "converged", "hard fixed", "hard target", "speedup")
	for _, p := range pts {
		fmt.Fprintf(w, "%-6d %-11.3f %-11.3f %-12d %-12d %-10d %-12.2f %-12.2f %-8.2f\n",
			p.Jobs, p.FixedSec, p.TargetSec, p.FixedSteps, p.TargetSteps, p.Converged,
			p.HardShareFixed, p.HardShareTarget, p.Speedup)
	}
	fmt.Fprintln(w, "every job but the last declares an ESS target; \"hard\" columns are the")
	fmt.Fprintln(w, "no-target job's busy time as a fraction of batch wall time — its rise in")
	fmt.Fprintln(w, "the target-driven batch is the freed workers being reallocated to it.")
	fmt.Fprintln(w)

	dir, err := os.MkdirTemp("", "mpcgs-ckptsize")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sizes, err := experiments.CheckpointSizes(c, dir)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "--- Checkpoint size vs samples recorded (the O(interval) claim) ---")
	fmt.Fprintf(w, "%-10s %-16s %-16s %-14s\n", "samples", "inline ckpt (B)", "sidecar ckpt (B)", "sidecar (B)")
	for _, p := range sizes {
		fmt.Fprintf(w, "%-10d %-16d %-16d %-14d\n", p.Samples, p.InlineBytes, p.SidecarBytes, p.TraceBytes)
	}
	fmt.Fprintln(w, "inline snapshots grow O(run); sidecar snapshots stay O(interval) — the")
	fmt.Fprintln(w, "draws live in the sidecar file, the checkpoint keeps a durable offset.")
	fmt.Fprintln(w)
	return nil
}

func runTempering(w io.Writer, c experiments.Common) error {
	fmt.Fprintln(w, "=== Adaptive MC3: swap-rate-driven temperature ladder vs fixed geometric ===")
	pts, err := experiments.TemperingComparison(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-10s %-10s %-12s %-10s\n", "ladder", "spread", "cold ESS", "swaps", "rate")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %-10.3f %-10.0f %-12s %-10.3f\n",
			p.Mode, p.Spread, p.ColdESS,
			fmt.Sprintf("%d/%d", p.Swaps, p.SwapAttempts),
			float64(p.Swaps)/float64(p.SwapAttempts))
		for i := range p.Rates {
			fmt.Fprintf(w, "  pair %d-%d: T %-9.4g <-> %-9.4g swap rate %.3f\n",
				i, i+1, 1/p.Betas[i], 1/p.Betas[i+1], p.Rates[i])
		}
	}
	fmt.Fprintln(w, "spread = max-min of per-pair swap acceptance; the adaptive ladder's")
	fmt.Fprintln(w, "objective is to drive it toward 0 without losing cold-chain ESS.")
	fmt.Fprintln(w)
	return nil
}

func runCurve(w io.Writer, c experiments.Common) error {
	fmt.Fprintln(w, "=== Figure 5: relative likelihood curve (true theta 1.0, driving theta0 0.01) ===")
	res, err := experiments.LikelihoodCurve(c)
	if err != nil {
		return err
	}
	pts := map[string][]stats.Point{}
	for i, th := range res.Thetas {
		pts["log L(theta)"] = append(pts["log L(theta)"], stats.Point{X: th, Y: res.LogL[i]})
	}
	fmt.Fprintln(w, stats.AsciiPlot("Figure 5: log relative likelihood over theta",
		"theta", "log L", pts, 64, 18))
	fmt.Fprintf(w, "curve maximum near theta = %.3g (true 1.0, driving 0.01)\n\n", res.ArgMax)
	return nil
}

func runBurnin(w io.Writer, c experiments.Common) error {
	fmt.Fprintln(w, "=== Figure 2: chain burn-in trace (data log-likelihood per draw) ===")
	res, err := experiments.BurninTrace(c)
	if err != nil {
		return err
	}
	pts := map[string][]stats.Point{}
	for i, v := range res.Trace {
		pts["log P(D|G)"] = append(pts["log P(D|G)"], stats.Point{X: float64(i), Y: v})
	}
	fmt.Fprintln(w, stats.AsciiPlot("Figure 2: burn-in trace", "draw", "log P(D|G)", pts, 64, 18))
	ess := stats.EffectiveSampleSize(res.Trace[len(res.Trace)/2:])
	fmt.Fprintf(w, "post-burn-in effective sample size over %d draws: %.0f\n\n", len(res.Trace)/2, ess)
	return nil
}

func runMultichain(w io.Writer, c experiments.Common) error {
	fmt.Fprintln(w, "=== Figure 6: multi-chain burn-in inefficiency vs GMH ===")
	pts, err := experiments.MultichainEfficiency(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %-16s %-12s %-22s\n", "P", "multichain (s)", "GMH (s)", "Amdahl model (B+N/P)/(B+N)")
	plot := map[string][]stats.Point{}
	for _, p := range pts {
		fmt.Fprintf(w, "%-6d %-16.3f %-12.3f %-22.3f\n", p.P, p.MultichainSec, p.GMHSec, p.ModelWork)
		plot["multichain"] = append(plot["multichain"], stats.Point{X: float64(p.P), Y: p.MultichainSec})
		plot["gmh"] = append(plot["gmh"], stats.Point{X: float64(p.P), Y: p.GMHSec})
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, stats.AsciiPlot("Figure 6: wall time vs parallelism", "P", "seconds", plot, 56, 14))
	return nil
}

func runProposalSize(w io.Writer, c experiments.Common) error {
	fmt.Fprintln(w, "=== Ablation: GMH proposal-set size N (paper §7 tuning question) ===")
	pts, err := experiments.ProposalSetSize(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %-10s %-12s %-10s %-12s\n", "N", "wall (s)", "move rate", "ESS", "ESS/s")
	for _, p := range pts {
		fmt.Fprintf(w, "%-6d %-10.3f %-12.3f %-10.0f %-12.0f\n", p.N, p.Sec, p.MoveRate, p.ESS, p.ESSPerSec)
	}
	fmt.Fprintln(w)
	return nil
}

func runNested(w io.Writer, c experiments.Common) error {
	fmt.Fprintln(w, "=== Ablation: dynamic parallelism (per-proposal site kernels, paper §4.4) ===")
	pts, err := experiments.NestedParallelism(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %-12s %-12s %-10s\n", "N", "flat (s)", "nested (s)", "nested/flat")
	for _, p := range pts {
		fmt.Fprintf(w, "%-6d %-12.3f %-12.3f %-10.2f\n", p.N, p.FlatSec, p.NestedSec, p.NestedSec/p.FlatSec)
	}
	fmt.Fprintln(w)
	return nil
}

func runGrowth(w io.Writer, c experiments.Common) error {
	fmt.Fprintln(w, "=== Extension (paper §7): two-parameter estimation (theta, growth) ===")
	pts, err := experiments.GrowthEstimation(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %-12s %-12s\n", "true g", "theta-hat", "g-hat")
	for _, p := range pts {
		fmt.Fprintf(w, "%-12.1f %-12.3f %-12.3f\n", p.TrueGrowth, p.Theta, p.Growth)
	}
	fmt.Fprintln(w)
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paperbench: "+format+"\n", args...)
	os.Exit(1)
}
