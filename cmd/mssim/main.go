// Command mssim simulates coalescent genealogies, mirroring the
// `ms <nsam> <nreps> -T` invocation the paper uses to generate true trees
// for its accuracy experiments (§6.1). Trees print one Newick statement
// per line on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"mpcgs/internal/mssim"
)

func main() {
	var (
		theta = flag.Float64("theta", 1.0, "coalescent parameter scaling waiting times")
		seed  = flag.Uint64("seed", 1, "PRNG seed")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mssim [flags] <nsam> <nreps>\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	nsam, err := strconv.Atoi(flag.Arg(0))
	if err != nil {
		fatalf("bad sample count %q", flag.Arg(0))
	}
	reps, err := strconv.Atoi(flag.Arg(1))
	if err != nil {
		fatalf("bad replicate count %q", flag.Arg(1))
	}
	trees, err := mssim.Simulate(mssim.Config{NSam: nsam, Reps: reps, Theta: *theta, Seed: *seed})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Print(mssim.NewickOutput(trees))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mssim: "+format+"\n", args...)
	os.Exit(1)
}
