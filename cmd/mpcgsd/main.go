// Command mpcgsd is the estimation daemon: mpcgs as a service. It
// exposes the HTTP/JSON job API of internal/serve over one shared device
// pool, journals every accepted job into its state directory before
// acknowledging it, and drains gracefully on SIGTERM/SIGINT — every
// in-flight job is checkpointed at a step boundary, so restarting the
// daemon on the same state directory resumes all of them bit-identically.
//
//	mpcgsd -state /var/lib/mpcgs [-addr 127.0.0.1:8440] [-workers N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpcgs/internal/serve"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpcgsd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8440", "listen address (host:port; port 0 picks a free port)")
		state    = flag.String("state", "", "state directory for the durable job log and checkpoints (required)")
		workers  = flag.Int("workers", 0, "device pool workers (0 = GOMAXPROCS)")
		drivers  = flag.Int("drivers", 0, "concurrent job drivers (0 = worker count)")
		quantum  = flag.Int("quantum", 0, "sampler transitions per scheduling quantum (0 = 64)")
		maxJobs  = flag.Int("max-jobs", 0, "pending-job bound before submissions are shed with 429 (0 = 64)")
		ckptEvry = flag.Int("checkpoint-every", 0, "snapshot cadence in sampler transitions (0 = 500)")
		quiet    = flag.Bool("q", false, "suppress lifecycle logging")
	)
	flag.Parse()
	if *state == "" {
		fatalf("-state is required")
	}
	var logw io.Writer = os.Stdout
	if *quiet {
		logw = io.Discard
	}

	srv, err := serve.New(serve.Options{
		StateDir:        *state,
		Workers:         *workers,
		Drivers:         *drivers,
		Quantum:         *quantum,
		MaxJobs:         *maxJobs,
		CheckpointEvery: *ckptEvry,
		Log:             logw,
	})
	if err != nil {
		fatalf("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	// The resolved address is printed unconditionally so wrappers (and
	// the CI smoke test) can scrape the port when -addr picks port 0.
	fmt.Printf("mpcgsd: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(logw, "mpcgsd: %v: draining (checkpointing in-flight jobs)\n", s)
	case err := <-serveErr:
		fatalf("%v", err)
	}

	// Drain before shutting the listener down: Drain closes the server's
	// drain channel, which unblocks any open progress streams that would
	// otherwise hold Shutdown hostage.
	if err := srv.Drain(); err != nil {
		fatalf("drain: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("shutdown: %v", err)
	}
	fmt.Fprintf(logw, "mpcgsd: drained cleanly\n")
}
