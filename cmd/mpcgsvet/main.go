// Command mpcgsvet is the repo's own vet: a multichecker that mechanically
// enforces the engine's determinism, hot-path, serial-oracle and
// checkpoint-exactness invariants. Usage mirrors go vet:
//
//	go run ./cmd/mpcgsvet ./...
//	go run ./cmd/mpcgsvet -list
//	go run ./cmd/mpcgsvet -run determinism,hotpath ./internal/core
//
// Exit status is 0 when the tree is clean, 1 when any analyzer reports a
// finding, 2 on usage or load errors. See internal/analysis for the
// analyzers and the //mpcgs:hotpath, //mpcgsvet:ignore-* annotations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpcgs/internal/analysis"
	"mpcgs/internal/analysis/determinism"
	"mpcgs/internal/analysis/exactfloat"
	"mpcgs/internal/analysis/hotpath"
	"mpcgs/internal/analysis/serialeval"
)

var all = []*analysis.Analyzer{
	determinism.Analyzer,
	exactfloat.Analyzer,
	hotpath.Analyzer,
	serialeval.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpcgsvet [-list] [-run names] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if *run != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mpcgsvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpcgsvet: %v\n", err)
		os.Exit(2)
	}
	prog, err := analysis.LoadPackages(wd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpcgsvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := prog.Run(selected...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpcgsvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
