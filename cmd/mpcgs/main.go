// Command mpcgs estimates the population parameter θ = 2·N_e·μ from a
// PHYLIP alignment using the multiple-proposal coalescent genealogy
// sampler.
//
// Usage matches the paper's entry point (§5.1.1):
//
//	mpcgs [flags] <seqdata.phy> <initial-theta>
//
// The sequence data must be PHYLIP-formatted; the initial θ estimate may
// be any positive number — the estimator is designed to be insensitive to
// it.
//
// Batch mode estimates many independent datasets in one process over a
// single shared device pool (the multi-tenant scheduler):
//
//	mpcgs -batch jobs.json
//
// where jobs.json is a manifest of per-job phylip files and settings
// (see internal/sched.Manifest for the format). Each job's result is
// identical to running it standalone with the same seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"time"

	"mpcgs"
	"mpcgs/internal/device"
	"mpcgs/internal/sched"
)

func main() {
	var (
		sampler   = flag.String("sampler", "gmh", "sampling algorithm: gmh, mh, multichain, or heated")
		model     = flag.String("model", "f81", "likelihood model: f81, jc69, or f84")
		workers   = flag.Int("workers", 0, "device parallelism (0 = all cores)")
		proposals = flag.Int("proposals", 0, "GMH proposal-set size N (0 = workers)")
		burnin    = flag.Int("burnin", 1000, "burn-in draws per EM iteration")
		samples   = flag.Int("samples", 10000, "recorded draws per EM iteration")
		emIters   = flag.Int("em-iterations", 10, "maximum EM iterations")
		seed      = flag.Uint64("seed", 1, "PRNG seed")
		curve     = flag.Bool("curve", false, "print the relative log-likelihood curve")
		growth    = flag.Bool("growth", false, "also estimate an exponential growth rate g")
		bayesian  = flag.Bool("bayesian", false, "sample the posterior of theta instead of maximizing (LAMARC 2.0's Bayesian mode)")
		batch     = flag.String("batch", "", "run a batch manifest of estimation jobs over one shared device pool instead of a single estimation")
		quiet     = flag.Bool("q", false, "print only the final estimate")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpcgs [flags] <seqdata.phy> <initial-theta>\n")
		fmt.Fprintf(os.Stderr, "       mpcgs [flags] -batch <manifest.json>\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *batch != "" {
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
		runBatch(*batch, *workers, *quiet)
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	theta0, err := strconv.ParseFloat(flag.Arg(1), 64)
	if err != nil || theta0 <= 0 {
		fatalf("initial theta %q must be a positive number", flag.Arg(1))
	}
	aln, err := mpcgs.LoadAlignment(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	if !*quiet {
		fmt.Printf("mpcgs: %d sequences x %d bp, sampler=%s model=%s\n",
			aln.NSeq(), aln.SeqLen(), *sampler, *model)
	}
	if *bayesian {
		res, err := mpcgs.RunBayesian(mpcgs.Config{
			Alignment:    aln,
			InitialTheta: theta0,
			Model:        mpcgs.ModelKind(*model),
			Workers:      *workers,
			Burnin:       *burnin,
			Samples:      *samples,
			Seed:         *seed,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("posterior theta: mean %.6g, median %.6g, 95%% CI [%.6g, %.6g]\n",
			res.PosteriorMean, res.PosteriorMedian, res.CredibleLow, res.CredibleHigh)
		return
	}
	res, err := mpcgs.Run(mpcgs.Config{
		Alignment:      aln,
		InitialTheta:   theta0,
		Sampler:        mpcgs.SamplerKind(*sampler),
		Model:          mpcgs.ModelKind(*model),
		Workers:        *workers,
		Proposals:      *proposals,
		Burnin:         *burnin,
		Samples:        *samples,
		EMIterations:   *emIters,
		Seed:           *seed,
		EstimateGrowth: *growth,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if !*quiet {
		for i, h := range res.History {
			fmt.Printf("  EM %2d: theta %.6g -> %.6g  (acceptance %.3f, mean logL %.2f)\n",
				i+1, h.ThetaIn, h.ThetaOut, h.AcceptanceRate, h.MeanLogLik)
		}
		d := res.Diagnostics
		fmt.Printf("  diagnostics: ESS %.0f, Geweke z %.2f, suggested burn-in %d (sufficient: %v)\n",
			d.ESS, d.GewekeZ, d.SuggestedBurnin, d.BurninSufficient)
	}
	fmt.Printf("theta = %.6g\n", res.Theta)
	if res.Growth != nil {
		fmt.Printf("growth: theta = %.6g, g = %.6g\n", res.Growth.Theta, res.Growth.Growth)
	}
	if *curve {
		var grid []float64
		for x := res.Theta / 20; x <= res.Theta*20; x *= 1.25 {
			grid = append(grid, x)
		}
		vals := res.Curve(grid)
		fmt.Println("\n  theta        log L(theta)")
		for i, x := range grid {
			fmt.Printf("  %-12.5g %.4f\n", x, vals[i])
		}
	}
}

// runBatch is the manifest mode: every job in the manifest estimates its
// own dataset, all of them multiplexed over one shared device pool by the
// multi-tenant scheduler. Interrupting the process (SIGINT) cancels the
// batch cleanly; jobs already finished keep their results.
func runBatch(path string, workers int, quiet bool) {
	jobs, err := sched.LoadManifest(path)
	if err != nil {
		fatalf("%v", err)
	}
	pool := device.NewPool(workers)
	defer pool.Close()
	if !quiet {
		fmt.Printf("mpcgs: batch of %d jobs over %d shared workers\n", len(jobs), pool.Workers())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	results, err := sched.RunBatch(ctx, pool, jobs, sched.Options{})
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpcgs: batch aborted: %v\n", err)
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Printf("job %-16s FAILED: %v\n", r.Name, r.Err)
			continue
		}
		fmt.Printf("job %-16s theta = %-10.6g (%d EM iterations, %d steps)\n",
			r.Name, r.Theta, len(r.History), r.Steps)
	}
	if !quiet {
		fmt.Printf("batch: %d ok, %d failed in %.2fs (%.2f jobs/s)\n",
			len(results)-failed, failed, wall.Seconds(), float64(len(results))/wall.Seconds())
	}
	if err != nil || failed > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpcgs: "+format+"\n", args...)
	os.Exit(1)
}
