// Command mpcgs estimates the population parameter θ = 2·N_e·μ from a
// PHYLIP alignment using the multiple-proposal coalescent genealogy
// sampler.
//
// Usage matches the paper's entry point (§5.1.1):
//
//	mpcgs [flags] <seqdata.phy> <initial-theta>
//
// The sequence data must be PHYLIP-formatted; the initial θ estimate may
// be any positive number — the estimator is designed to be insensitive to
// it.
//
// Batch mode estimates many independent datasets in one process over a
// single shared device pool (the multi-tenant scheduler):
//
//	mpcgs -batch jobs.json
//
// where jobs.json is a manifest of per-job phylip files and settings
// (see internal/sched.Manifest for the format). Each job's result is
// identical to running it standalone with the same seed.
//
// Checkpointing makes long estimations restartable in both modes:
//
//	mpcgs -checkpoint ckpt/ -checkpoint-every 5000 seqs.phy 1.0
//	mpcgs -batch jobs.json -checkpoint ckpt/
//	mpcgs -batch jobs.json -resume ckpt/
//
// -checkpoint writes a versioned snapshot of every run into the directory
// each N transitions and on SIGINT (the interrupt triggers one final
// consistent snapshot before exit). -resume restarts from such a
// directory: finished jobs are skipped, interrupted ones continue from
// their snapshot with traces bit-identical to a run that was never
// stopped. Resuming implies continued checkpointing into the same
// directory.
//
//	mpcgs -inspect ckpt/
//
// prints every job's status from a checkpoint directory — progress,
// estimates, trace-sidecar state (durable draws, online ESS/R-hat), and
// the temperature ladder of paused heated runs — without resuming
// anything.
//
// Convergence auto-stop ends each sampling pass early once the online
// diagnostics reach declared targets, freeing workers for the rest of
// the batch:
//
//	mpcgs -checkpoint ckpt/ -ess-target 200 -rhat-target 1.05 seqs.phy 1.0
//
// (per-job ess_target/rhat_target fields do the same in batch manifests
// and the mpcgsd job API).
//
// The heated (MC³) sampler's ladder is tuned with -chains, -max-temp,
// -swap-every and, for hard posteriors, -adapt-ladder: during burn-in
// the ladder's interior temperatures are retuned toward uniform
// per-adjacent-pair swap acceptance (tracked over -swap-window
// attempts), then frozen so the recorded draws target fixed
// distributions. A per-pair swap-rate report is printed after heated
// runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"
	"time"

	"mpcgs"
	"mpcgs/internal/ckpt"
	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/phylip"
	"mpcgs/internal/sched"
	sidecar "mpcgs/internal/trace"
)

func main() {
	var (
		sampler    = flag.String("sampler", "gmh", "sampling algorithm: gmh, mh, multichain, or heated")
		model      = flag.String("model", "f81", "likelihood model: f81, jc69, or f84")
		workers    = flag.Int("workers", 0, "device parallelism (0 = all cores)")
		proposals  = flag.Int("proposals", 0, "GMH proposal-set size N (0 = workers)")
		chains     = flag.Int("chains", 0, "heated/multichain chain count (0 = workers)")
		maxTemp    = flag.Float64("max-temp", 0, "heated ladder's hottest temperature, at least 1 (0 = 8)")
		swapEvery  = flag.Int("swap-every", 0, "within-chain steps between heated swap attempts (0 = 1)")
		adapt      = flag.Bool("adapt-ladder", false, "adapt the heated temperature ladder toward uniform per-pair swap rates during burn-in, then freeze it")
		swapWindow = flag.Int("swap-window", 0, "sliding-window size for per-pair swap-rate tracking (0 = 64)")
		essTarget  = flag.Float64("ess-target", 0, "end each sampling pass once the online effective sample size reaches this target (0 = off; requires -checkpoint)")
		rhatTarget = flag.Float64("rhat-target", 0, "additionally require the online split R-hat to fall to this target, must exceed 1 (0 = off; requires -checkpoint)")
		burnin     = flag.Int("burnin", 1000, "burn-in draws per EM iteration")
		samples    = flag.Int("samples", 10000, "recorded draws per EM iteration")
		emIters    = flag.Int("em-iterations", 10, "maximum EM iterations")
		seed       = flag.Uint64("seed", 1, "PRNG seed")
		curve      = flag.Bool("curve", false, "print the relative log-likelihood curve")
		growth     = flag.Bool("growth", false, "also estimate an exponential growth rate g")
		bayesian   = flag.Bool("bayesian", false, "sample the posterior of theta instead of maximizing (LAMARC 2.0's Bayesian mode)")
		batch      = flag.String("batch", "", "run a batch manifest of estimation jobs over one shared device pool instead of a single estimation")
		ckptDir    = flag.String("checkpoint", "", "write periodic checkpoints into this directory (restart with -resume)")
		ckptEvery  = flag.Int("checkpoint-every", 1000, "sampler transitions between checkpoint snapshots per job")
		resumeDir  = flag.String("resume", "", "resume from the checkpoint in this directory (implies -checkpoint into it)")
		inspectDir = flag.String("inspect", "", "print per-job status from the checkpoint in this directory and exit (no resume)")
		quiet      = flag.Bool("q", false, "print only the final estimate")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
		tracePath  = flag.String("trace", "", "write a runtime/trace of the run to this file (inspect with go tool trace)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpcgs [flags] <seqdata.phy> <initial-theta>\n")
		fmt.Fprintf(os.Stderr, "       mpcgs [flags] -batch <manifest.json>\n")
		fmt.Fprintf(os.Stderr, "       mpcgs -inspect <checkpoint-dir>\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatalf("-trace: %v", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fatalf("-trace: %v", err)
		}
		defer trace.Stop()
	}
	defer writeMemProfile(*memProfile)
	// The tempering flags only mean something on the heated sampler (and
	// batch manifests carry their own per-job knobs): a flag that would
	// be silently dropped is a spec bug, the same rule the manifest
	// loader enforces.
	if *maxTemp != 0 || *swapEvery != 0 || *adapt || *swapWindow != 0 {
		if *batch != "" {
			fatalf("-max-temp/-swap-every/-adapt-ladder/-swap-window do not apply to -batch; set max_temp/swap_every/adapt_ladder/swap_window per job in the manifest")
		}
		if *sampler != "heated" {
			fatalf("-max-temp/-swap-every/-adapt-ladder/-swap-window are only meaningful with -sampler heated (got %q)", *sampler)
		}
	}
	if *chains != 0 {
		if *batch != "" {
			fatalf("-chains does not apply to -batch; set chains per job in the manifest")
		}
		if *sampler != "heated" && *sampler != "multichain" {
			fatalf("-chains is only meaningful with -sampler heated or multichain (got %q)", *sampler)
		}
	}
	if *essTarget != 0 || *rhatTarget != 0 {
		if *batch != "" {
			fatalf("-ess-target/-rhat-target do not apply to -batch; set ess_target/rhat_target per job in the manifest")
		}
		if *ckptDir == "" && *resumeDir == "" {
			fatalf("-ess-target/-rhat-target require -checkpoint: the stop rule rides the checkpointable scheduler path (its streaming recorder keeps the online diagnostics)")
		}
	}
	if *inspectDir != "" {
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
		if err := inspect(os.Stdout, *inspectDir); err != nil {
			fatalf("%v", err)
		}
		return
	}
	// Resuming continues checkpointing into the same directory, so a
	// second interruption is just another resume.
	if *resumeDir != "" && *ckptDir == "" {
		*ckptDir = *resumeDir
	}
	if *batch != "" {
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
		jobs, err := sched.LoadManifest(*batch)
		if err != nil {
			fatalf("%v", err)
		}
		runBatch(jobs, *workers, *ckptDir, *ckptEvery, *resumeDir, *quiet, false)
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	theta0, err := strconv.ParseFloat(flag.Arg(1), 64)
	if err != nil || theta0 <= 0 {
		fatalf("initial theta %q must be a positive number", flag.Arg(1))
	}
	if *ckptDir != "" {
		// Checkpointable single runs go through the same machinery as a
		// batch of one job, so the snapshot format, resume semantics and
		// bit-identical-trace guarantee are shared.
		if *bayesian || *growth || *curve {
			fatalf("-checkpoint/-resume do not support -bayesian, -growth or -curve")
		}
		job, err := singleJob(flag.Arg(0), theta0, *sampler, *model, *proposals, *burnin, *samples, *emIters, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		job.Chains = *chains
		job.MaxTemp = *maxTemp
		job.SwapEvery = *swapEvery
		job.AdaptLadder = *adapt
		job.SwapWindow = *swapWindow
		job.ESSTarget = *essTarget
		job.RHatTarget = *rhatTarget
		if !*quiet {
			fmt.Printf("mpcgs: %d sequences x %d bp, sampler=%s model=%s (checkpointing to %s)\n",
				job.Alignment.NSeq(), job.Alignment.SeqLen(), *sampler, *model, *ckptDir)
		}
		runBatch([]sched.Job{job}, *workers, *ckptDir, *ckptEvery, *resumeDir, *quiet, true)
		return
	}
	aln, err := mpcgs.LoadAlignment(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	if !*quiet {
		fmt.Printf("mpcgs: %d sequences x %d bp, sampler=%s model=%s\n",
			aln.NSeq(), aln.SeqLen(), *sampler, *model)
	}
	if *bayesian {
		res, err := mpcgs.RunBayesian(mpcgs.Config{
			Alignment:    aln,
			InitialTheta: theta0,
			Model:        mpcgs.ModelKind(*model),
			Workers:      *workers,
			Burnin:       *burnin,
			Samples:      *samples,
			Seed:         *seed,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("posterior theta: mean %.6g, median %.6g, 95%% CI [%.6g, %.6g]\n",
			res.PosteriorMean, res.PosteriorMedian, res.CredibleLow, res.CredibleHigh)
		return
	}
	res, err := mpcgs.Run(mpcgs.Config{
		Alignment:      aln,
		InitialTheta:   theta0,
		Sampler:        mpcgs.SamplerKind(*sampler),
		Model:          mpcgs.ModelKind(*model),
		Workers:        *workers,
		Proposals:      *proposals,
		Chains:         *chains,
		MaxTemp:        *maxTemp,
		SwapEvery:      *swapEvery,
		AdaptLadder:    *adapt,
		SwapWindow:     *swapWindow,
		Burnin:         *burnin,
		Samples:        *samples,
		EMIterations:   *emIters,
		Seed:           *seed,
		EstimateGrowth: *growth,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if !*quiet {
		for i, h := range res.History {
			fmt.Printf("  EM %2d: theta %.6g -> %.6g  (acceptance %.3f, mean logL %.2f)\n",
				i+1, h.ThetaIn, h.ThetaOut, h.AcceptanceRate, h.MeanLogLik)
		}
		d := res.Diagnostics
		fmt.Printf("  diagnostics: ESS %.0f, Geweke z %.2f, suggested burn-in %d (sufficient: %v)\n",
			d.ESS, d.GewekeZ, d.SuggestedBurnin, d.BurninSufficient)
		if res.SwapReport != nil {
			s := res.SwapReport
			printSwapReport(s.Betas, s.Attempts, s.Accepts, s.Adapted, s.Adaptations)
		}
	}
	fmt.Printf("theta = %.6g\n", res.Theta)
	if res.Growth != nil {
		fmt.Printf("growth: theta = %.6g, g = %.6g\n", res.Growth.Theta, res.Growth.Growth)
	}
	if *curve {
		var grid []float64
		for x := res.Theta / 20; x <= res.Theta*20; x *= 1.25 {
			grid = append(grid, x)
		}
		vals := res.Curve(grid)
		fmt.Println("\n  theta        log L(theta)")
		for i, x := range grid {
			fmt.Printf("  %-12.5g %.4f\n", x, vals[i])
		}
	}
}

// singleJob builds the batch-of-one job a checkpointable single run
// becomes. The job name derives from the data file (like a manifest entry
// without a name), so a resume of the same invocation finds its state.
func singleJob(path string, theta0 float64, sampler, model string, proposals, burnin, samples, emIters int, seed uint64) (sched.Job, error) {
	f, err := os.Open(path)
	if err != nil {
		return sched.Job{}, err
	}
	defer f.Close()
	aln, err := phylip.Read(f)
	if err != nil {
		return sched.Job{}, fmt.Errorf("%s: %w", path, err)
	}
	return sched.Job{
		Name:         jobNameFromPath(path),
		Alignment:    aln,
		InitialTheta: theta0,
		Sampler:      sampler,
		Model:        model,
		Proposals:    proposals,
		Burnin:       burnin,
		Samples:      samples,
		EMIterations: emIters,
		Seed:         seed,
	}, nil
}

func jobNameFromPath(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// runBatch is the scheduler mode shared by -batch manifests and
// checkpointable single runs: every job multiplexes over one shared
// device pool, SIGINT cancels the batch cleanly (writing a final
// consistent checkpoint when checkpointing is on), and -resume restores
// job state from a previous invocation's checkpoint directory.
func runBatch(jobs []sched.Job, workers int, ckptDir string, ckptEvery int, resumeDir string, quiet, single bool) {
	opts := sched.Options{
		Checkpoint: sched.CheckpointOptions{Dir: ckptDir, Every: ckptEvery},
	}
	if resumeDir != "" {
		resume, err := ckpt.Load(resumeDir)
		if err != nil {
			fatalf("%v", err)
		}
		opts.Resume = resume
	}
	pool := device.NewPool(workers)
	defer pool.Close()
	if !quiet && !single {
		fmt.Printf("mpcgs: batch of %d jobs over %d shared workers\n", len(jobs), pool.Workers())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	results, err := sched.RunBatch(ctx, pool, jobs, opts)
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpcgs: batch aborted: %v\n", err)
		if ckptDir != "" && ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "mpcgs: checkpoint written; resume with -resume %s\n", ckptDir)
		}
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Printf("job %-16s FAILED: %v\n", r.Name, r.Err)
			continue
		}
		if single {
			if !quiet {
				for i, h := range r.History {
					fmt.Printf("  EM %2d: theta %.6g -> %.6g  (acceptance %.3f, mean logL %.2f)\n",
						i+1, h.ThetaIn, h.ThetaOut, h.AcceptanceRate, h.MeanLogLik)
				}
			}
			if !quiet && r.LastSet != nil {
				d := core.Diagnose(r.LastSet)
				fmt.Printf("  diagnostics: ESS %.0f, Geweke z %.2f, suggested burn-in %d (sufficient: %v)\n",
					d.ESS, d.GewekeZ, d.SuggestedBurnin, d.BurninSufficient)
			}
			if !quiet && r.LastRun != nil && len(r.LastRun.PairSwapAttempts) > 0 {
				printSwapReport(r.LastRun.Betas, r.LastRun.EstPairSwapAttempts, r.LastRun.EstPairSwaps,
					r.LastRun.LadderAdapted, r.LastRun.LadderAdaptations)
			}
			if !quiet && r.LastRun != nil && r.LastRun.StoppedEarly {
				fmt.Printf("  auto-stop: final pass ended early at online ESS %.1f, R-hat %.3f\n",
					r.LastRun.StopESS, r.LastRun.StopRHat)
			}
			fmt.Printf("theta = %.6g\n", r.Theta)
			continue
		}
		note := ""
		if r.Resumed {
			note = " [restored from checkpoint]"
		}
		if r.Converged {
			note += " [converged early]"
		}
		fmt.Printf("job %-16s theta = %-10.6g (%d EM iterations, %d steps)%s\n",
			r.Name, r.Theta, len(r.History), r.Steps, note)
	}
	if !quiet && !single {
		fmt.Printf("batch: %d ok, %d failed in %.2fs (%.2f jobs/s)\n",
			len(results)-failed, failed, wall.Seconds(), float64(len(results))/wall.Seconds())
	}
	if err != nil || failed > 0 {
		os.Exit(1)
	}
}

// printSwapReport renders the heated sampler's per-pair swap-rate
// profile: one line per adjacent rung pair with its temperatures and the
// fraction of proposed exchanges that were accepted. Uniform rates mean
// the ladder's rungs are pulling their weight; a near-zero pair marks a
// temperature gap states cannot cross.
func printSwapReport(betas []float64, attempts, accepts []int64, adapted bool, adaptations int64) {
	kind := "geometric"
	if adapted {
		kind = fmt.Sprintf("adapted, %d updates", adaptations)
	}
	fmt.Printf("  ladder (%s, %d rungs): estimation-phase per-pair swap acceptance\n", kind, len(betas))
	rates := core.PairRates(accepts, attempts)
	for i := range attempts {
		fmt.Printf("    pair %d-%d: T %-8.4g <-> %-8.4g rate %.3f (%d/%d)\n",
			i, i+1, 1/betas[i], 1/betas[i+1], rates[i], accepts[i], attempts[i])
	}
	if adapted && adaptations == 0 {
		switch {
		case len(betas) < 3:
			fmt.Printf("    note: -adapt-ladder had nothing to do — a %d-rung ladder has no interior\n", len(betas))
			fmt.Printf("    temperature to move (both endpoints are pinned); use at least 3 chains\n")
		case betas[len(betas)-1] == 1:
			fmt.Printf("    note: -adapt-ladder had nothing to do — a flat ladder (-max-temp 1) has no\n")
			fmt.Printf("    temperature span to redistribute\n")
		default:
			fmt.Printf("    note: adaptation never engaged — the burn-in ended before every pair's\n")
			fmt.Printf("    swap window filled once; lengthen -burnin or shrink -swap-window\n")
		}
	}
}

// inspect prints every job's status from a checkpoint directory without
// resuming anything: name, state, progress, the estimate for finished
// jobs, and — for paused heated runs that carry one — the temperature
// ladder with its per-pair swap rates.
func inspect(w io.Writer, dir string) error {
	b, err := ckpt.Load(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "checkpoint %s (format v%d, %d jobs)\n", ckpt.Path(dir), b.Version, len(b.Jobs))
	for _, j := range b.Jobs {
		switch j.Status {
		case ckpt.StatusDone:
			theta := hexOrRaw(j.Theta)
			fmt.Fprintf(w, "job %-16s done    theta = %-10s (%d EM iterations, %d steps)\n",
				j.Name, theta, len(j.History), j.Steps)
		case ckpt.StatusFailed:
			fmt.Fprintf(w, "job %-16s failed  %s\n", j.Name, j.Error)
		case ckpt.StatusPaused:
			if j.EM == nil {
				fmt.Fprintf(w, "job %-16s paused  (no EM state)\n", j.Name)
				continue
			}
			fmt.Fprintf(w, "job %-16s paused  EM iteration %d, driving theta = %s, %d steps, %d EM rounds done\n",
				j.Name, j.EM.It+1, hexOrRaw(j.EM.Theta), j.Steps, len(j.EM.History))
			if a := j.EM.Active; a != nil {
				drawn := 0
				if a.Trace != nil {
					drawn = a.Trace.N
				}
				if a.TraceRef != nil {
					drawn = a.TraceRef.Draws - a.TraceRef.PassDraws
				}
				fmt.Fprintf(w, "  mid-pass: sampler %s at transition %d, %d draws recorded\n",
					a.Sampler, a.Step, drawn)
				if a.TraceRef != nil {
					inspectSidecar(w, dir, j.Name, a.TraceRef)
				}
				if a.Ladder != nil {
					inspectLadder(w, a.Ladder)
				}
			}
		}
	}
	return nil
}

// inspectSidecar renders a paused job's streaming-trace state: the
// durable offsets its snapshot pins, the online convergence diagnostics
// recorded with them, and — when the sidecar file itself is reachable —
// the file's actual frame chain, including any torn tail a crash left
// (a resume truncates it; it never corrupts the durable draws).
func inspectSidecar(w io.Writer, dir, name string, ref *ckpt.TraceRef) {
	fmt.Fprintf(w, "  trace sidecar: %d draws durable at byte offset %d (%d in the current pass)",
		ref.Draws, ref.Offset, ref.Draws-ref.PassDraws)
	if ref.ESS != "" {
		fmt.Fprintf(w, ", online ESS %s", hexOrRaw(ref.ESS))
	}
	if ref.RHat != "" {
		fmt.Fprintf(w, ", R-hat %s", hexOrRaw(ref.RHat))
	}
	if ref.Stopped {
		fmt.Fprintf(w, " — stop target reached")
	}
	fmt.Fprintln(w)
	// The checkpoint records the path the run was configured with; an
	// inspect from another working directory falls back to the sidecar's
	// canonical place inside the checkpoint directory itself.
	path := ref.Path
	if _, err := os.Stat(path); path == "" || err != nil {
		path = filepath.Join(dir, sched.CheckpointKey(name)+".trace")
	}
	info, err := sidecar.Stat(path)
	if err != nil {
		fmt.Fprintf(w, "    file %s: unreadable (%v)\n", path, err)
		return
	}
	fmt.Fprintf(w, "    file %s: %d frames, %d draws, %d durable bytes", path, info.Frames, info.Draws, info.DurableBytes)
	if info.Torn() {
		fmt.Fprintf(w, " (+%d bytes of torn tail a resume will truncate)", info.FileBytes-info.DurableBytes)
	}
	fmt.Fprintln(w)
}

// inspectLadder renders a checkpointed temperature ladder: the schedule
// (adapted or geometric) and the per-pair swap rates it has seen.
func inspectLadder(w io.Writer, l *ckpt.Ladder) {
	kind := "geometric"
	if l.Adapt {
		kind = fmt.Sprintf("adaptive, window %d, %d updates", l.Window, l.Adapts)
	}
	fmt.Fprintf(w, "  ladder (%s): ", kind)
	for i, b := range l.Betas {
		if i > 0 {
			fmt.Fprintf(w, ", ")
		}
		if f, err := strconv.ParseFloat(b, 64); err == nil {
			fmt.Fprintf(w, "T%d=%.4g", i, 1/f)
		} else {
			fmt.Fprintf(w, "T%d=%s", i, b)
		}
	}
	fmt.Fprintln(w)
	rates := core.PairRates(l.Accepts, l.Attempts)
	for i := range l.Attempts {
		// The file is untrusted input: a truncated accepts array reads
		// as zero rather than crashing the inspector.
		var acc int64
		if i < len(l.Accepts) {
			acc = l.Accepts[i]
		}
		fmt.Fprintf(w, "    pair %d-%d: swap rate %.3f (%d/%d)\n", i, i+1, rates[i], acc, l.Attempts[i])
	}
}

// hexOrRaw renders a checkpoint hex-float field human-readably, falling
// back to the raw string if it does not parse.
func hexOrRaw(s string) string {
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return fmt.Sprintf("%.6g", f)
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpcgs: "+format+"\n", args...)
	os.Exit(1)
}

// writeMemProfile writes a heap profile at process exit (after a GC, so
// the profile reflects live retention rather than garbage).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("-memprofile: %v", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatalf("-memprofile: %v", err)
	}
}
