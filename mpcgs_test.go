package mpcgs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSimulateAlignment(t *testing.T) {
	aln, err := SimulateAlignment(8, 150, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if aln.NSeq() != 8 || aln.SeqLen() != 150 {
		t.Fatalf("alignment %dx%d, want 8x150", aln.NSeq(), aln.SeqLen())
	}
	if len(aln.Names()) != 8 {
		t.Errorf("Names() returned %d entries", len(aln.Names()))
	}
	if got := aln.Sequence(0); len(got) != 150 {
		t.Errorf("Sequence(0) length %d", len(got))
	}
}

func TestAlignmentRoundTrip(t *testing.T) {
	aln, err := SimulateAlignment(5, 80, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := aln.WritePhylip(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAlignment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < aln.NSeq(); i++ {
		if aln.Sequence(i) != back.Sequence(i) {
			t.Errorf("sequence %d changed in round trip", i)
		}
	}
}

func TestReadAlignmentError(t *testing.T) {
	if _, err := ReadAlignment(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadAlignmentMissingFile(t *testing.T) {
	if _, err := LoadAlignment("/nonexistent/path.phy"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunValidation(t *testing.T) {
	aln, err := SimulateAlignment(6, 60, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]Config{
		"nil alignment": {InitialTheta: 1},
		"zero theta":    {Alignment: aln},
		"bad sampler":   {Alignment: aln, InitialTheta: 1, Sampler: "bogus"},
		"bad model":     {Alignment: aln, InitialTheta: 1, Model: "bogus"},
	}
	for label, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestRunTooFewSequences(t *testing.T) {
	in := "2 4\na   ACGT\nb   ACGA\n"
	aln, err := ReadAlignment(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Alignment: aln, InitialTheta: 1}); err == nil {
		t.Error("2-sequence alignment accepted")
	}
}

func TestRunAllSamplers(t *testing.T) {
	aln, err := SimulateAlignment(6, 100, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []SamplerKind{SamplerGMH, SamplerMH, SamplerMultiChain, SamplerHeated} {
		res, err := Run(Config{
			Alignment:    aln,
			InitialTheta: 0.5,
			Sampler:      kind,
			Workers:      4,
			Burnin:       100,
			Samples:      800,
			EMIterations: 2,
			Seed:         5,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Theta <= 0 || math.IsNaN(res.Theta) {
			t.Errorf("%s: theta = %v", kind, res.Theta)
		}
		if len(res.History) == 0 {
			t.Errorf("%s: empty history", kind)
		}
		if !strings.Contains(res.FinalTree, ";") {
			t.Errorf("%s: FinalTree %q is not Newick", kind, res.FinalTree)
		}
	}
}

func TestRunAllModels(t *testing.T) {
	aln, err := SimulateAlignment(6, 100, 1.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []ModelKind{ModelF81, ModelJC69, ModelF84} {
		res, err := Run(Config{
			Alignment:    aln,
			InitialTheta: 0.5,
			Model:        kind,
			Workers:      2,
			Burnin:       50,
			Samples:      400,
			EMIterations: 1,
			Seed:         7,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Theta <= 0 {
			t.Errorf("%s: theta = %v", kind, res.Theta)
		}
	}
}

func TestResultCurve(t *testing.T) {
	aln, err := SimulateAlignment(6, 100, 1.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Alignment:    aln,
		InitialTheta: 0.5,
		Workers:      2,
		Burnin:       100,
		Samples:      1000,
		EMIterations: 1,
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{0.1, 0.3, res.Theta, 3, 10}
	vals := res.Curve(grid)
	if len(vals) != len(grid) {
		t.Fatalf("Curve returned %d values for %d thetas", len(vals), len(grid))
	}
	// The final theta should score at least as well as the extremes.
	if vals[2] < vals[0] || vals[2] < vals[4] {
		t.Errorf("curve at estimate %v (%v) below extremes (%v, %v)", res.Theta, vals[2], vals[0], vals[4])
	}
}

func TestEstimateThetaEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	trueTheta := 1.0
	aln, err := SimulateAlignment(10, 400, trueTheta, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Alignment:    aln,
		InitialTheta: 0.2,
		Burnin:       500,
		Samples:      5000,
		EMIterations: 5,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta < trueTheta/3 || res.Theta > trueTheta*3 {
		t.Errorf("estimate %v too far from true %v", res.Theta, trueTheta)
	}
}

func TestRunDeterministic(t *testing.T) {
	aln, err := SimulateAlignment(6, 80, 1.0, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Alignment:    aln,
		InitialTheta: 0.5,
		Workers:      4,
		Burnin:       100,
		Samples:      600,
		EMIterations: 2,
		Seed:         13,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Theta != b.Theta {
		t.Errorf("same-seed runs differ: %v vs %v", a.Theta, b.Theta)
	}
}

func TestRunBayesian(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	trueTheta := 1.0
	aln, err := SimulateAlignment(8, 250, trueTheta, 55)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBayesian(Config{
		Alignment:    aln,
		InitialTheta: 1.0,
		Burnin:       1500,
		Samples:      8000,
		Seed:         56,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PosteriorMean <= 0 {
		t.Fatalf("posterior mean = %v", res.PosteriorMean)
	}
	if !(res.CredibleLow < res.PosteriorMedian && res.PosteriorMedian < res.CredibleHigh) {
		t.Errorf("credible interval disordered: %v %v %v",
			res.CredibleLow, res.PosteriorMedian, res.CredibleHigh)
	}
	if res.PosteriorMean < trueTheta/4 || res.PosteriorMean > trueTheta*4 {
		t.Errorf("posterior mean %v far from truth %v", res.PosteriorMean, trueTheta)
	}
	if len(res.Thetas) != 8000 {
		t.Errorf("got %d posterior draws, want 8000", len(res.Thetas))
	}
}

func TestRunBayesianValidation(t *testing.T) {
	if _, err := RunBayesian(Config{InitialTheta: 1}); err == nil {
		t.Error("nil alignment accepted")
	}
	aln, err := SimulateAlignment(4, 40, 1.0, 57)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBayesian(Config{Alignment: aln}); err == nil {
		t.Error("zero theta accepted")
	}
}
