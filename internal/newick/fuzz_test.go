package newick

import "testing"

// FuzzNewickRoundTrip checks the parser/renderer fixed point: any input
// the parser accepts must render to a string that re-parses, and that
// rendering must be stable (render → parse → render is the identity).
// Checkpoints carry genealogies as newick strings, so a tree that renders
// unreadably would break resume.
func FuzzNewickRoundTrip(f *testing.F) {
	seeds := []string{
		"((1:0.1,2:0.1):0.2,3:0.3);",
		"(a,b)r;",
		"leaf;",
		"('a b':1,'c''d':2)e;",
		"('a\nb':1,c:2);",
		"(((x:1e-9,y:2.5e3):0,z:-1):42);",
		"(a:1,(b:2,c:3):0.5);",
		"('(:;,)':1,t:2);",
		"(#4:0.25,'#5':0.75)#6;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		root, err := Parse(in)
		if err != nil {
			return // rejected inputs are out of scope; only no-panic matters
		}
		s1 := root.String()
		root2, err := Parse(s1)
		if err != nil {
			t.Fatalf("rendering of a parsed tree does not re-parse: %v\ninput:  %q\nrender: %q", err, in, s1)
		}
		if s2 := root2.String(); s2 != s1 {
			t.Fatalf("render/parse/render is not a fixed point:\nfirst:  %q\nsecond: %q\ninput:  %q", s1, s2, in)
		}
		if got, want := len(root2.Leaves(nil)), len(root.Leaves(nil)); got != want {
			t.Fatalf("round trip changed the leaf count from %d to %d for input %q", want, got, in)
		}
	})
}
