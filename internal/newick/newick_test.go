package newick

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, in string) *Node {
	t.Helper()
	n, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	return n
}

func TestParseSimple(t *testing.T) {
	n := mustParse(t, "((1:0.1,2:0.1):0.2,3:0.3);")
	if n.IsLeaf() || len(n.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(n.Children))
	}
	inner := n.Children[0]
	if len(inner.Children) != 2 || inner.Length != 0.2 {
		t.Errorf("inner node wrong: %+v", inner)
	}
	leaves := n.Leaves(nil)
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d, want 3", len(leaves))
	}
	wantNames := []string{"1", "2", "3"}
	for i, l := range leaves {
		if l.Name != wantNames[i] {
			t.Errorf("leaf %d name = %q, want %q", i, l.Name, wantNames[i])
		}
	}
	if leaves[2].Length != 0.3 {
		t.Errorf("leaf 3 length = %v, want 0.3", leaves[2].Length)
	}
}

func TestParseNoLengths(t *testing.T) {
	n := mustParse(t, "((a,b),c);")
	if n.HasLength {
		t.Error("root should have no length")
	}
	if n.CountNodes() != 5 {
		t.Errorf("CountNodes = %d, want 5", n.CountNodes())
	}
}

func TestParseInternalLabels(t *testing.T) {
	n := mustParse(t, "((a:1,b:1)ab:2,c:3)root;")
	if n.Name != "root" {
		t.Errorf("root name = %q", n.Name)
	}
	if n.Children[0].Name != "ab" {
		t.Errorf("internal name = %q, want ab", n.Children[0].Name)
	}
}

func TestParseQuotedNames(t *testing.T) {
	n := mustParse(t, "('Homo sapiens':1,'it''s':2);")
	if n.Children[0].Name != "Homo sapiens" {
		t.Errorf("name = %q", n.Children[0].Name)
	}
	if n.Children[1].Name != "it's" {
		t.Errorf("name = %q", n.Children[1].Name)
	}
}

func TestParseWhitespace(t *testing.T) {
	n := mustParse(t, " ( a : 1 ,\n b : 2 ) ;\n")
	if len(n.Children) != 2 || n.Children[0].Name != "a" {
		t.Errorf("parsed wrong: %+v", n)
	}
}

func TestParseScientificNotation(t *testing.T) {
	n := mustParse(t, "(a:1e-3,b:2.5E2);")
	if n.Children[0].Length != 1e-3 || n.Children[1].Length != 250 {
		t.Errorf("lengths = %v %v", n.Children[0].Length, n.Children[1].Length)
	}
}

func TestParseMultifurcation(t *testing.T) {
	n := mustParse(t, "(a:1,b:1,c:1,d:1);")
	if len(n.Children) != 4 {
		t.Errorf("children = %d, want 4", len(n.Children))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(a,b)",         // missing semicolon
		"(a,b);x",       // trailing garbage
		"(a,;",          // dangling comma
		"(a:1,b:-2);",   // negative branch length
		"(a:1,b:);",     // missing number
		"((a,b);",       // unbalanced
		"(a,b));",       // unbalanced the other way
		"('abc:1,d:2);", // unterminated quote
		"(,a);",         // unnamed leaf
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestParseErrorOffset(t *testing.T) {
	_, err := Parse("(a:1,b:bad);")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Offset <= 0 {
		t.Errorf("offset = %d, want > 0", pe.Offset)
	}
	if !strings.Contains(pe.Error(), "offset") {
		t.Errorf("message %q lacks offset", pe.Error())
	}
}

func TestRoundTrip(t *testing.T) {
	cases := []string{
		"((1:0.1,2:0.1):0.2,3:0.3);",
		"((a:1,b:1)ab:2,c:3)root;",
		"(a:1,b:1,c:1,d:1);",
	}
	for _, in := range cases {
		n := mustParse(t, in)
		out := n.String()
		m := mustParse(t, out)
		if !equalTrees(n, m) {
			t.Errorf("round trip changed tree: %q -> %q", in, out)
		}
	}
}

func TestRoundTripQuotedName(t *testing.T) {
	n := mustParse(t, "('a b':1,c:2);")
	m := mustParse(t, n.String())
	if m.Children[0].Name != "a b" {
		t.Errorf("round-tripped name = %q", m.Children[0].Name)
	}
}

func equalTrees(a, b *Node) bool {
	if a.Name != b.Name || a.HasLength != b.HasLength {
		return false
	}
	if a.HasLength && math.Abs(a.Length-b.Length) > 1e-12 {
		return false
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !equalTrees(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// randomTree builds a random binary tree with n leaves for round-trip
// property testing.
func randomTree(r *rand.Rand, n int, next *int) *Node {
	if n == 1 {
		*next++
		return &Node{Name: "t" + itoa(*next), Length: r.Float64(), HasLength: true}
	}
	k := 1 + r.Intn(n-1)
	return &Node{
		Length:    r.Float64(),
		HasLength: true,
		Children:  []*Node{randomTree(r, k, next), randomTree(r, n-k, next)},
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestRoundTripRandomTrees(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(sizeRaw)%20
		next := 0
		tree := randomTree(r, n, &next)
		parsed, err := Parse(tree.String())
		if err != nil {
			return false
		}
		return equalTrees(tree, parsed)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestParseAll(t *testing.T) {
	in := "(a:1,b:1);\n(c:2,d:2);\n"
	trees, err := ParseAll(in)
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	if trees[1].Children[0].Name != "c" {
		t.Errorf("second tree wrong: %+v", trees[1])
	}
}

func TestParseAllEmpty(t *testing.T) {
	trees, err := ParseAll("  \n ")
	if err != nil || len(trees) != 0 {
		t.Errorf("ParseAll(blank) = %v, %v", trees, err)
	}
}

func TestDepth(t *testing.T) {
	n := mustParse(t, "((a:1,b:2):3,c:4);")
	if d := n.Depth(); d != 5 {
		t.Errorf("Depth = %v, want 5", d)
	}
}

func TestCountNodes(t *testing.T) {
	n := mustParse(t, "((a:1,b:2):3,c:4);")
	if c := n.CountNodes(); c != 5 {
		t.Errorf("CountNodes = %d, want 5", c)
	}
}

// TestRoundTripZeroLengthBranches: zero-length branches must survive a
// render/parse cycle with the length *present* (":0"), not dropped — the
// checkpoint tree serialization distinguishes "no length" from "length
// zero".
func TestRoundTripZeroLengthBranches(t *testing.T) {
	n := mustParse(t, "((a:0,b:0.5):0,c:0.5);")
	out := n.String()
	m := mustParse(t, out)
	if !equalTrees(n, m) {
		t.Fatalf("round trip changed tree: %q", out)
	}
	if !m.Children[0].Children[0].HasLength || m.Children[0].Children[0].Length != 0 {
		t.Errorf("zero tip branch length not preserved in %q", out)
	}
	if !m.Children[0].HasLength || m.Children[0].Length != 0 {
		t.Errorf("zero interior branch length not preserved in %q", out)
	}
}

// TestRoundTripNonDefaultLabels: every name the quoting rules must
// protect — spaces, parentheses, commas, colons, semicolons, embedded
// quotes, brackets — plus hash-prefixed interior labels (the checkpoint
// serialization labels interior nodes "#<index>") survive a round trip
// bit-for-bit.
func TestRoundTripNonDefaultLabels(t *testing.T) {
	names := []string{
		"plain", "with space", "pa(ren", "clo)se", "com,ma",
		"co:lon", "semi;colon", "quo'te", "brack[et", "close]br",
		"#17", "tab\tname",
	}
	for _, name := range names {
		n := &Node{Children: []*Node{
			{Name: name, Length: 0.25, HasLength: true},
			{Name: "other", Length: 0.25, HasLength: true},
		}}
		m := mustParse(t, n.String())
		if m.Children[0].Name != name {
			t.Errorf("name %q round-tripped as %q (via %q)", name, m.Children[0].Name, n.String())
		}
	}
	// Interior labels too: the checkpoint format depends on them.
	in := "((a:1,b:1)#5:1,c:2)#6;"
	m := mustParse(t, in)
	if m.Name != "#6" || m.Children[0].Name != "#5" {
		t.Fatalf("interior labels lost: %+v", m)
	}
	if out := m.String(); out != in {
		t.Errorf("interior-labelled tree round trip: %q -> %q", in, out)
	}
}

// TestRoundTripExactLengths: branch lengths are rendered with enough
// digits that parsing them back yields the identical float64 — the
// property that makes newick a faithful carrier for serialized trees.
func TestRoundTripExactLengths(t *testing.T) {
	lengths := []float64{1.0 / 3.0, 0.1, 5e-324, 1e300, 0.30000000000000004}
	for _, l := range lengths {
		n := &Node{Children: []*Node{
			{Name: "a", Length: l, HasLength: true},
			{Name: "b", Length: 1, HasLength: true},
		}}
		m := mustParse(t, n.String())
		if got := m.Children[0].Length; got != l {
			t.Errorf("length %v round-tripped as %v", l, got)
		}
	}
}
