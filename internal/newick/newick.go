// Package newick parses and renders phylogenetic trees in the Newick
// format used to exchange genealogies with the ms and seq-gen style
// simulators (paper §6.1), e.g. ((1:0.1,2:0.1):0.2,3:0.3);
package newick

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is one vertex of a parsed Newick tree. Length is the branch length
// to the parent; HasLength records whether one was present in the input.
type Node struct {
	Name      string
	Length    float64
	HasLength bool
	Children  []*Node
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Leaves appends the node's leaves to dst in left-to-right order and
// returns the result.
func (n *Node) Leaves(dst []*Node) []*Node {
	if n.IsLeaf() {
		return append(dst, n)
	}
	for _, c := range n.Children {
		dst = c.Leaves(dst)
	}
	return dst
}

// CountNodes returns the total number of nodes in the subtree.
func (n *Node) CountNodes() int {
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// Depth returns the sum of branch lengths from the node to the deepest
// leaf below it.
func (n *Node) Depth() float64 {
	var max float64
	for _, c := range n.Children {
		if d := c.Depth() + c.Length; d > max {
			max = d
		}
	}
	return max
}

// String renders the subtree as a Newick expression, with branch lengths
// for every node that carries one, terminated by a semicolon.
func (n *Node) String() string {
	var sb strings.Builder
	n.render(&sb)
	sb.WriteByte(';')
	return sb.String()
}

func (n *Node) render(sb *strings.Builder) {
	if !n.IsLeaf() {
		sb.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				sb.WriteByte(',')
			}
			c.render(sb)
		}
		sb.WriteByte(')')
	}
	sb.WriteString(escapeName(n.Name))
	if n.HasLength {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatFloat(n.Length, 'g', -1, 64))
	}
}

func escapeName(name string) string {
	if name == "" {
		return ""
	}
	if strings.ContainsAny(name, "():;, \t\r\n'[]") {
		return "'" + strings.ReplaceAll(name, "'", "''") + "'"
	}
	return name
}

// ParseError describes a syntax error with its byte offset in the input.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("newick: offset %d: %s", e.Offset, e.Msg)
}

type parser struct {
	in  string
	pos int
}

// Parse reads a single Newick tree. Trailing whitespace after the
// semicolon is permitted; anything else is an error.
func Parse(in string) (*Node, error) {
	p := &parser{in: in}
	p.skipSpace()
	root, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != ';' {
		return nil, &ParseError{p.pos, "expected ';'"}
	}
	p.pos++
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, &ParseError{p.pos, "trailing characters after ';'"}
	}
	return root, nil
}

// ParseAll reads a sequence of Newick trees (one per statement), as
// produced by multi-replicate simulator output.
func ParseAll(in string) ([]*Node, error) {
	var trees []*Node
	rest := in
	offset := 0
	for {
		rest = strings.TrimLeft(rest, " \t\r\n")
		if rest == "" {
			break
		}
		idx := strings.IndexByte(rest, ';')
		if idx < 0 {
			return nil, &ParseError{offset, "unterminated tree: missing ';'"}
		}
		tree, err := Parse(rest[:idx+1])
		if err != nil {
			return nil, err
		}
		trees = append(trees, tree)
		offset += idx + 1
		rest = rest[idx+1:]
	}
	return trees, nil
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) parseNode() (*Node, error) {
	p.skipSpace()
	n := &Node{}
	if p.pos < len(p.in) && p.in[p.pos] == '(' {
		p.pos++
		for {
			child, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
			p.skipSpace()
			if p.pos >= len(p.in) {
				return nil, &ParseError{p.pos, "unterminated '('"}
			}
			if p.in[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.in[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, &ParseError{p.pos, fmt.Sprintf("unexpected %q in children list", p.in[p.pos])}
		}
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	n.Name = name
	if n.IsLeaf() && n.Name == "" {
		return nil, &ParseError{p.pos, "leaf without a name"}
	}
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == ':' {
		p.pos++
		length, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		n.Length = length
		n.HasLength = true
	}
	return n, nil
}

func (p *parser) parseName() (string, error) {
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '\'' {
		p.pos++
		var sb strings.Builder
		for {
			if p.pos >= len(p.in) {
				return "", &ParseError{p.pos, "unterminated quoted name"}
			}
			c := p.in[p.pos]
			if c == '\'' {
				if p.pos+1 < len(p.in) && p.in[p.pos+1] == '\'' {
					sb.WriteByte('\'')
					p.pos += 2
					continue
				}
				p.pos++
				return sb.String(), nil
			}
			sb.WriteByte(c)
			p.pos++
		}
	}
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == ':' || c == ',' || c == ')' || c == '(' || c == ';' ||
			c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			break
		}
		p.pos++
	}
	return p.in[start:p.pos], nil
}

func (p *parser) parseNumber() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	if start == p.pos {
		return 0, &ParseError{p.pos, "expected branch length after ':'"}
	}
	v, err := strconv.ParseFloat(p.in[start:p.pos], 64)
	if err != nil {
		return 0, &ParseError{start, fmt.Sprintf("bad branch length %q", p.in[start:p.pos])}
	}
	if v < 0 {
		return 0, &ParseError{start, fmt.Sprintf("negative branch length %v", v)}
	}
	return v, nil
}
