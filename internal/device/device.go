// Package device provides the simulated GPGPU execution substrate the
// sampler's kernels run on.
//
// The paper targets CUDA hardware (§4.4): kernels launched over grids of
// threads, warp-shuffle tree reductions, dynamic parallelism (kernels
// launching kernels) and constant memory. This package reproduces that
// execution model over goroutines: Launch runs a kernel over a 1-D grid
// with bounded worker parallelism, reductions are performed hierarchically
// (pairwise shuffle-style within 32-wide warps, then a serial combine by a
// master thread exactly as §5.2.1-5.2.3 describe), and nested Launch calls
// are legal from inside kernels. Absolute throughput differs from a GPU,
// but the work decomposition — which is what the paper's scaling results
// measure — is preserved.
//
// # Execution model
//
// A Device owns a pool of persistent worker goroutines, started lazily on
// the first parallel Launch and parked on a condition variable between
// launches — the analogue of a GPU's resident SM schedulers. Each Launch
// publishes one task (kernel, grid size) to the pool; workers and the
// launching goroutine claim contiguous chunks of the grid by atomic
// fetch-and-add until the grid is exhausted, so load imbalance between
// chunks self-corrects without per-thread goroutine spawns. Because the
// launching goroutine always participates in its own grid, a nested Launch
// issued from inside a kernel (dynamic parallelism, §4.4) completes even
// when every pool worker is busy with the outer grid — nesting cannot
// deadlock. A panic in any kernel thread is captured and re-raised on the
// launching goroutine after the grid completes.
//
// Close tears the pool down; a closed (or never-started) Device still
// executes every Launch correctly on the calling goroutine. Devices that
// are garbage-collected without Close have their workers reclaimed by a
// runtime cleanup.
package device

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"mpcgs/internal/logspace"
)

// ErrClosed is returned by Pool operations issued after Close: a
// long-lived batch service must hear about shutdown instead of silently
// absorbing an entire grid on the calling goroutine.
var ErrClosed = errors.New("device: pool closed")

// WarpSize is the number of threads cooperating in one shuffle reduction,
// matching the 32-thread warps of every CUDA compute version (§5.1.3).
const WarpSize = 32

// chunkDivisor sets how many chunks per worker a grid is split into:
// more chunks smooth load imbalance, fewer chunks reduce claim traffic.
const chunkDivisor = 4

// fairQuantum is how many chunks a pool worker claims from one task
// before returning to the queue to re-pick. Bounding the quantum keeps
// chunk claiming fair across tenants of a shared pool: a worker never
// pins itself to one tenant's grid while another tenant's launch waits.
const fairQuantum = chunkDivisor

// Device executes kernels with a bounded degree of parallelism. A Device
// is either a root (owning its worker pool) or a tenant view of a shared
// Pool: views share the root's workers but carry their own launch
// accounting, so a batch scheduler can attribute device time per job.
type Device struct {
	workers  int
	pool     *pool     // nil for single-worker devices
	root     *Device   // the pool-owning device; self for roots
	name     string    // tenant label; empty for roots
	agg      *aggStats // shared Pool-wide counters; nil off-pool
	launches atomic.Int64
	threads  atomic.Int64
}

// pool is the persistent worker substrate of a Device. It is a separate
// allocation so that worker goroutines keep only the pool alive, letting a
// runtime cleanup stop them once the Device itself becomes unreachable.
type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*task // published tasks that may still have unclaimed chunks
	rr      int     // round-robin cursor over pending tasks (tenant fairness)
	size    int     // target number of workers
	started bool
	closed  bool
}

// task is one published Launch: a grid of n kernel threads claimed in
// chunks by atomic fetch-and-add.
type task struct {
	kernel   func(tid int)
	n        int
	chunk    int
	next     atomic.Int64 // next unclaimed grid index
	done     atomic.Int64 // grid indices accounted for (run or skipped by panic)
	finished chan struct{}

	// segs, when non-nil, selects affinity claiming (LaunchAffine): the
	// chunk axis is split into len(segs) contiguous segments, worker w
	// drains segment w through its own cursor before stealing from the
	// others round-robin. The segment map is a pure function of
	// (n, chunk, len(segs)), so across repeated launches of the same grid
	// the same worker keeps claiming the same grid indices — warm caches —
	// while idle workers still steal, so imbalance self-corrects exactly
	// as with the shared cursor.
	segs []seg

	panicOnce sync.Once
	panicVal  atomic.Value
}

// seg is one affinity segment's claim cursor, padded out to its own cache
// line so stealing workers do not false-share their neighbours' cursors.
type seg struct {
	next atomic.Int64
	_    [56]byte
}

// segBounds returns segment s's chunk-index range. Segments partition the
// m = ceil(n/chunk) chunks as evenly as integer division allows.
func (t *task) segBounds(s int) (lo, hi int) {
	m := (t.n + t.chunk - 1) / t.chunk
	S := len(t.segs)
	return s * m / S, (s + 1) * m / S
}

// claimAffine claims one chunk for worker w: first from w's own segment,
// then — once it is drained — stolen from the next segments round-robin.
// The choice of claiming worker never changes which chunks exist or how
// results combine, so affinity is purely a locality hint.
func (t *task) claimAffine(w int) (lo, hi int, ok bool) {
	S := len(t.segs)
	for k := 0; k < S; k++ {
		s := w + k
		if s >= S {
			s -= S
		}
		segLo, segHi := t.segBounds(s)
		if segLo >= segHi {
			continue
		}
		ci := segLo + int(t.segs[s].next.Add(1)) - 1
		if ci >= segHi {
			continue
		}
		lo = ci * t.chunk
		hi = lo + t.chunk
		if hi > t.n {
			hi = t.n
		}
		return lo, hi, true
	}
	return 0, 0, false
}

// drained reports whether every chunk of the grid has been claimed.
func (t *task) drained() bool {
	if t.segs == nil {
		return int(t.next.Load()) >= t.n
	}
	for s := range t.segs {
		segLo, segHi := t.segBounds(s)
		if segLo+int(t.segs[s].next.Load()) < segHi {
			return false
		}
	}
	return true
}

// New returns a device with the given number of workers. Non-positive
// workers selects runtime.GOMAXPROCS(0).
func New(workers int) *Device {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	d := &Device{workers: workers}
	d.root = d
	if workers > 1 {
		p := &pool{size: workers - 1} // the launching goroutine is the last worker
		p.cond = sync.NewCond(&p.mu)
		d.pool = p
		// Stop the parked workers if the device is dropped without Close.
		runtime.AddCleanup(d, func(p *pool) { p.close() }, p)
	}
	return d
}

// tenantView returns a Device sharing d's workers and pool but carrying
// its own launch accounting under the given tenant name. The view keeps
// the root device reachable so the runtime cleanup cannot tear the shared
// pool down while any tenant still holds a view.
func (d *Device) tenantView(name string) *Device {
	return &Device{workers: d.workers, pool: d.pool, root: d.root, name: name, agg: d.agg}
}

// Name returns the tenant label of a view ("" for a root device).
func (d *Device) Name() string { return d.name }

// Serial returns a single-worker device: every kernel runs sequentially on
// the calling goroutine. It is the "1 processing unit" baseline of the
// speedup experiments.
func Serial() *Device { return New(1) }

// Workers returns the device's degree of parallelism.
func (d *Device) Workers() int { return d.workers }

// Stats returns the cumulative number of kernel launches and kernel
// threads executed, for instrumentation and tests.
func (d *Device) Stats() (launches, threads int64) {
	return d.launches.Load(), d.threads.Load()
}

// Close stops the device's persistent workers. It is safe to call Close
// more than once, and safe to keep using the device afterwards: launches
// then execute entirely on the calling goroutine.
func (d *Device) Close() {
	if d.pool != nil {
		d.pool.close()
	}
}

func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// submit publishes a task to the pool and wakes parked workers, starting
// them on first use. A closed pool accepts the task silently (the caller
// runs the whole grid itself).
func (p *pool) submit(t *task) {
	p.mu.Lock()
	if !p.closed {
		if !p.started {
			p.started = true
			for i := 0; i < p.size; i++ {
				go p.worker(i)
			}
		}
		p.queue = append(p.queue, t)
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// pending removes fully claimed tasks from the queue and returns the next
// one in round-robin order, or nil. Rotating across pending tasks is what
// makes chunk claiming fair across tenants of a shared pool: concurrent
// launches interleave instead of draining FIFO, so no tenant's grid can
// monopolize the workers while another tenant waits. (Each tenant has at
// most a handful of launches in flight — its chains are sequential — so
// rotating over tasks is rotating over tenants.) Caller holds p.mu.
func (p *pool) pending() *task {
	live := p.queue[:0]
	for _, t := range p.queue {
		if !t.drained() {
			live = append(live, t)
		}
	}
	// Drop references past the live prefix so finished tasks are collectable.
	for i := len(live); i < len(p.queue); i++ {
		p.queue[i] = nil
	}
	p.queue = live
	if len(live) == 0 {
		return nil
	}
	p.rr++
	return live[p.rr%len(live)]
}

// worker is the loop of one persistent pool goroutine: park until a task
// with unclaimed chunks appears, claim a bounded quantum of its chunks,
// re-pick, repeat. The bounded quantum (rather than draining the task)
// keeps claiming fair when several tenants have grids in flight. The
// worker's id is its stable affinity segment for LaunchAffine grids.
func (p *pool) worker(id int) {
	for {
		p.mu.Lock()
		var t *task
		for {
			t = p.pending()
			if t != nil || p.closed {
				break
			}
			p.cond.Wait()
		}
		p.mu.Unlock()
		if t == nil {
			return // pool closed
		}
		t.runChunks(fairQuantum, id)
	}
}

// run claims and executes chunks until the grid is exhausted — the
// launching goroutine's loop, which always sees its own grid through. The
// launcher claims as the last affinity segment (pool workers own the
// others); a nested launch's calling kernel thread uses the same slot.
func (t *task) run(launcherSeg int) { t.runChunks(math.MaxInt, launcherSeg) }

// runChunks claims and executes up to max chunks, stopping early once the
// grid is exhausted. For affinity grids, w selects the claimer's home
// segment; ordinary grids share one cursor and ignore it.
//
//mpcgs:hotpath
func (t *task) runChunks(max, w int) {
	for c := 0; c < max; c++ {
		var lo, hi int
		if t.segs != nil {
			var ok bool
			lo, hi, ok = t.claimAffine(w)
			if !ok {
				return
			}
		} else {
			lo = int(t.next.Add(int64(t.chunk))) - t.chunk
			if lo >= t.n {
				return
			}
			hi = lo + t.chunk
			if hi > t.n {
				hi = t.n
			}
		}
		t.exec(lo, hi)
	}
}

// exec runs one chunk, crediting its grid indices toward completion even
// if the kernel panics partway (the panic is re-raised by the launcher).
func (t *task) exec(lo, hi int) {
	defer func() {
		if r := recover(); r != nil {
			t.panicOnce.Do(func() { t.panicVal.Store(r) }) //mpcgsvet:ignore-alloc panic capture path, already cold
		}
		if t.done.Add(int64(hi-lo)) == int64(t.n) {
			close(t.finished)
		}
	}()
	for i := lo; i < hi; i++ {
		t.kernel(i)
	}
}

// Launch runs kernel for every thread id in [0, n), returning when all
// threads have completed (launch + synchronize). The grid is claimed in
// contiguous chunks by the persistent workers and the calling goroutine
// together. Kernels may call Launch themselves (dynamic parallelism,
// §4.4): the nested grid is guaranteed to finish because its launcher
// participates, regardless of what the pool workers are doing. A panic in
// any kernel thread is re-raised on the calling goroutine.
func (d *Device) Launch(n int, kernel func(tid int)) {
	d.launch(n, kernel, false)
}

// LaunchAffine runs kernel for every thread id in [0, n) like Launch, with
// sticky worker affinity on the grid: the chunk axis is partitioned into
// per-worker segments, each persistent worker drains its own segment
// first, and only then steals from the others round-robin. Across
// repeated launches of equally sized grids the same worker keeps
// revisiting the same grid indices, so per-index working sets (the
// felsen pattern blocks) stay warm in that worker's cache. Affinity never
// changes which threads run or how the caller combines results — it is a
// locality hint only — and idle-time stealing plus the bounded pool
// quantum preserve both load balance and tenant fairness.
func (d *Device) LaunchAffine(n int, kernel func(tid int)) {
	d.launch(n, kernel, true)
}

func (d *Device) launch(n int, kernel func(tid int), affine bool) {
	if n <= 0 {
		return
	}
	d.launches.Add(1)
	d.threads.Add(int64(n))
	if d.agg != nil {
		d.agg.launches.Add(1)
		d.agg.threads.Add(int64(n))
	}
	if d.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			kernel(i)
		}
		return
	}
	chunk := n / (d.workers * chunkDivisor)
	if chunk < 1 {
		chunk = 1
	}
	//mpcgsvet:ignore-alloc one task header and channel per launch, amortized over the whole grid
	t := &task{kernel: kernel, n: n, chunk: chunk, finished: make(chan struct{})}
	if affine {
		t.segs = make([]seg, d.workers) //mpcgsvet:ignore-alloc per-launch segment cursors, one cache line per worker, amortized over the grid
	}
	d.pool.submit(t)
	t.run(d.workers - 1)
	if t.done.Load() != int64(n) {
		<-t.finished
	}
	if r := t.panicVal.Load(); r != nil {
		panic(fmt.Sprintf("device: kernel panic: %v", r))
	}
}

// LaunchBlocks partitions [0, n) into contiguous per-worker blocks and
// runs kernel once per block. It is the analogue of CUDA's thread-block
// level: kernels that need scratch memory can allocate it once per block
// instead of once per thread, the role shared memory plays in the paper's
// kernels (§4.4). Blocks execute concurrently; within a block the kernel
// iterates serially.
func (d *Device) LaunchBlocks(n int, kernel func(lo, hi int)) {
	if n <= 0 {
		return
	}
	g := d.workers
	if g > n {
		g = n
	}
	chunk := (n + g - 1) / g
	blocks := (n + chunk - 1) / chunk
	d.Launch(blocks, func(b int) {
		lo := b * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		kernel(lo, hi)
	})
}

// reduceWarps applies the two-level reduction scheme of the paper's
// kernels: each 32-wide warp is reduced by a pairwise shuffle-down tree
// (offsets 16, 8, 4, 2, 1) in parallel, then a single master thread
// serially combines the per-warp values — "the factor of reduction is so
// great that it does not add significantly to computation costs" (§5.2.2).
// combine must be associative and commutative; identity is its unit.
func (d *Device) reduceWarps(xs []float64, identity float64, combine func(a, b float64) float64) float64 {
	n := len(xs)
	if n == 0 {
		return identity
	}
	nWarps := (n + WarpSize - 1) / WarpSize
	warpOut := make([]float64, nWarps)
	d.Launch(nWarps, func(w int) {
		var lane [WarpSize]float64
		lo := w * WarpSize
		for i := 0; i < WarpSize; i++ {
			if lo+i < n {
				lane[i] = xs[lo+i]
			} else {
				lane[i] = identity
			}
		}
		// Shuffle-down tree reduction.
		for offset := WarpSize / 2; offset > 0; offset /= 2 {
			for i := 0; i < offset; i++ {
				lane[i] = combine(lane[i], lane[i+offset])
			}
		}
		warpOut[w] = lane[0]
	})
	acc := identity
	for _, v := range warpOut {
		acc = combine(acc, v)
	}
	return acc
}

// ReduceSum returns the sum of xs using the warp-tree reduction.
func (d *Device) ReduceSum(xs []float64) float64 {
	return d.reduceWarps(xs, 0, func(a, b float64) float64 { return a + b })
}

// ReduceMax returns the maximum of xs (NegInf for an empty slice), the
// normalization pass of the posterior likelihood kernel (§5.2.3).
func (d *Device) ReduceMax(xs []float64) float64 {
	return d.reduceWarps(xs, logspace.NegInf, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// ReduceLogSum returns log(sum_i exp(xs[i])) by the paper's §5.2.3 scheme:
// a max reduction provides the normalizing factor that prevents underflow,
// then the shifted exponentials are summed with the additive reduction.
func (d *Device) ReduceLogSum(xs []float64) float64 {
	if len(xs) == 0 {
		return logspace.NegInf
	}
	m := d.ReduceMax(xs)
	if logspace.IsZero(m) {
		return logspace.NegInf
	}
	shifted := make([]float64, len(xs))
	d.Launch(len(xs), func(i int) {
		shifted[i] = math.Exp(xs[i] - m)
	})
	return m + math.Log(d.ReduceSum(shifted))
}

// Pool is the shared execution substrate of the multi-tenant batch mode:
// one device (one set of persistent workers) serving many estimation jobs
// at once, instead of the one-pool-per-run model. Each job obtains a
// tenant view with Tenant; launches from all views interleave on the same
// workers with round-robin chunk claiming, so tenants share the hardware
// fairly, and each view carries its own launch accounting.
//
// Unlike a bare Device — whose Launch deliberately degrades to a serial
// run on the caller after Close, the right teardown behaviour for a
// single estimation run — a Pool fails fast: Launch and Tenant return
// ErrClosed once the pool has been closed, because a batch service must
// notice shutdown rather than grind a whole grid on one goroutine. A
// Launch already in flight when Close is called still completes, and
// tenant views keep the Device contract (their launches degrade rather
// than error); the batch scheduler polls Closed between scheduling
// quanta, so a closed pool stops the batch at the next quantum boundary
// with at most one bounded quantum of degraded work per driver.
type Pool struct {
	mu     sync.Mutex
	root   *Device
	agg    aggStats
	closed bool
}

// aggStats accumulates launch counts across a pool's root and every
// tenant view, so Pool.Stats needs no registry of views — a long-lived
// service creates tenants per job without the pool retaining them.
type aggStats struct {
	launches atomic.Int64
	threads  atomic.Int64
}

// NewPool returns a shared pool with the given number of workers
// (non-positive selects runtime.GOMAXPROCS(0)).
func NewPool(workers int) *Pool {
	p := &Pool{root: New(workers)}
	p.root.agg = &p.agg
	return p
}

// Workers returns the pool's degree of parallelism.
func (p *Pool) Workers() int { return p.root.Workers() }

// Tenant registers a new tenant and returns its device view. It returns
// ErrClosed if the pool has been closed.
func (p *Pool) Tenant(name string) (*Device, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	return p.root.tenantView(name), nil
}

// Launch runs kernel over [0, n) on the shared workers, like
// Device.Launch, but returns ErrClosed instead of degrading to a serial
// caller-side run once the pool has been closed.
func (p *Pool) Launch(n int, kernel func(tid int)) error {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return ErrClosed
	}
	p.root.Launch(n, kernel)
	return nil
}

// Close stops the shared workers. Tenant views remain safe to use for
// in-flight launches (they degrade to caller-side execution, the Device
// contract), but new Pool operations return ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.root.Close()
}

// Closed reports whether Close has been called.
func (p *Pool) Closed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Stats returns cumulative launches and kernel threads across the root
// device and every tenant view.
func (p *Pool) Stats() (launches, threads int64) {
	return p.agg.launches.Load(), p.agg.threads.Load()
}
