// Package device provides the simulated GPGPU execution substrate the
// sampler's kernels run on.
//
// The paper targets CUDA hardware (§4.4): kernels launched over grids of
// threads, warp-shuffle tree reductions, dynamic parallelism (kernels
// launching kernels) and constant memory. This package reproduces that
// execution model over goroutines: Launch runs a kernel over a 1-D grid
// with bounded worker parallelism, reductions are performed hierarchically
// (pairwise shuffle-style within 32-wide warps, then a serial combine by a
// master thread exactly as §5.2.1-5.2.3 describe), and nested Launch calls
// are legal from inside kernels. Absolute throughput differs from a GPU,
// but the work decomposition — which is what the paper's scaling results
// measure — is preserved.
package device

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"mpcgs/internal/logspace"
)

// WarpSize is the number of threads cooperating in one shuffle reduction,
// matching the 32-thread warps of every CUDA compute version (§5.1.3).
const WarpSize = 32

// Device executes kernels with a bounded degree of parallelism.
type Device struct {
	workers  int
	launches atomic.Int64
	threads  atomic.Int64
}

// New returns a device with the given number of workers. Non-positive
// workers selects runtime.GOMAXPROCS(0).
func New(workers int) *Device {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Device{workers: workers}
}

// Serial returns a single-worker device: every kernel runs sequentially on
// the calling goroutine. It is the "1 processing unit" baseline of the
// speedup experiments.
func Serial() *Device { return New(1) }

// Workers returns the device's degree of parallelism.
func (d *Device) Workers() int { return d.workers }

// Stats returns the cumulative number of kernel launches and kernel
// threads executed, for instrumentation and tests.
func (d *Device) Stats() (launches, threads int64) {
	return d.launches.Load(), d.threads.Load()
}

// Launch runs kernel for every thread id in [0, n), returning when all
// threads have completed (launch + synchronize). Threads are distributed
// over the device's workers in contiguous chunks. Kernels may call Launch
// themselves (dynamic parallelism, §4.4); nesting spawns fresh goroutines,
// so it cannot deadlock, and the Go scheduler multiplexes the result onto
// the machine's cores. A panic in any kernel thread is re-raised on the
// calling goroutine.
func (d *Device) Launch(n int, kernel func(tid int)) {
	if n <= 0 {
		return
	}
	d.launches.Add(1)
	d.threads.Add(int64(n))
	if d.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			kernel(i)
		}
		return
	}
	g := d.workers
	if g > n {
		g = n
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	chunk := (n + g - 1) / g
	for w := 0; w < g; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for i := lo; i < hi; i++ {
				kernel(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	if panicVal != nil {
		panic(fmt.Sprintf("device: kernel panic: %v", panicVal))
	}
}

// LaunchBlocks partitions [0, n) into contiguous per-worker blocks and
// runs kernel once per block. It is the analogue of CUDA's thread-block
// level: kernels that need scratch memory can allocate it once per block
// instead of once per thread, the role shared memory plays in the paper's
// kernels (§4.4). Blocks execute concurrently; within a block the kernel
// iterates serially.
func (d *Device) LaunchBlocks(n int, kernel func(lo, hi int)) {
	if n <= 0 {
		return
	}
	g := d.workers
	if g > n {
		g = n
	}
	chunk := (n + g - 1) / g
	blocks := (n + chunk - 1) / chunk
	d.Launch(blocks, func(b int) {
		lo := b * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		kernel(lo, hi)
	})
}

// reduceWarps applies the two-level reduction scheme of the paper's
// kernels: each 32-wide warp is reduced by a pairwise shuffle-down tree
// (offsets 16, 8, 4, 2, 1) in parallel, then a single master thread
// serially combines the per-warp values — "the factor of reduction is so
// great that it does not add significantly to computation costs" (§5.2.2).
// combine must be associative and commutative; identity is its unit.
func (d *Device) reduceWarps(xs []float64, identity float64, combine func(a, b float64) float64) float64 {
	n := len(xs)
	if n == 0 {
		return identity
	}
	nWarps := (n + WarpSize - 1) / WarpSize
	warpOut := make([]float64, nWarps)
	d.Launch(nWarps, func(w int) {
		var lane [WarpSize]float64
		lo := w * WarpSize
		for i := 0; i < WarpSize; i++ {
			if lo+i < n {
				lane[i] = xs[lo+i]
			} else {
				lane[i] = identity
			}
		}
		// Shuffle-down tree reduction.
		for offset := WarpSize / 2; offset > 0; offset /= 2 {
			for i := 0; i < offset; i++ {
				lane[i] = combine(lane[i], lane[i+offset])
			}
		}
		warpOut[w] = lane[0]
	})
	acc := identity
	for _, v := range warpOut {
		acc = combine(acc, v)
	}
	return acc
}

// ReduceSum returns the sum of xs using the warp-tree reduction.
func (d *Device) ReduceSum(xs []float64) float64 {
	return d.reduceWarps(xs, 0, func(a, b float64) float64 { return a + b })
}

// ReduceMax returns the maximum of xs (NegInf for an empty slice), the
// normalization pass of the posterior likelihood kernel (§5.2.3).
func (d *Device) ReduceMax(xs []float64) float64 {
	return d.reduceWarps(xs, logspace.NegInf, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// ReduceLogSum returns log(sum_i exp(xs[i])) by the paper's §5.2.3 scheme:
// a max reduction provides the normalizing factor that prevents underflow,
// then the shifted exponentials are summed with the additive reduction.
func (d *Device) ReduceLogSum(xs []float64) float64 {
	if len(xs) == 0 {
		return logspace.NegInf
	}
	m := d.ReduceMax(xs)
	if logspace.IsZero(m) {
		return logspace.NegInf
	}
	shifted := make([]float64, len(xs))
	d.Launch(len(xs), func(i int) {
		shifted[i] = math.Exp(xs[i] - m)
	})
	return m + math.Log(d.ReduceSum(shifted))
}
