package device

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"mpcgs/internal/logspace"
)

func TestLaunchCoversAllThreads(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		d := New(workers)
		const n = 1000
		var hits [n]atomic.Int32
		d.Launch(n, func(tid int) { hits[tid].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: thread %d executed %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestLaunchZeroAndNegative(t *testing.T) {
	d := New(4)
	ran := false
	d.Launch(0, func(int) { ran = true })
	d.Launch(-5, func(int) { ran = true })
	if ran {
		t.Error("kernel ran for empty grid")
	}
}

func TestLaunchFewerThreadsThanWorkers(t *testing.T) {
	d := New(16)
	var count atomic.Int32
	d.Launch(3, func(int) { count.Add(1) })
	if count.Load() != 3 {
		t.Errorf("count = %d, want 3", count.Load())
	}
}

func TestNestedLaunch(t *testing.T) {
	// Dynamic parallelism: each outer thread launches an inner grid.
	d := New(4)
	const outer, inner = 10, 20
	var count atomic.Int32
	d.Launch(outer, func(int) {
		d.Launch(inner, func(int) { count.Add(1) })
	})
	if count.Load() != outer*inner {
		t.Errorf("count = %d, want %d", count.Load(), outer*inner)
	}
}

func TestLaunchPanicPropagates(t *testing.T) {
	d := New(4)
	defer func() {
		if recover() == nil {
			t.Error("kernel panic did not propagate")
		}
	}()
	d.Launch(100, func(tid int) {
		if tid == 37 {
			panic("boom")
		}
	})
}

func TestStats(t *testing.T) {
	d := New(2)
	d.Launch(5, func(int) {})
	d.Launch(7, func(int) {})
	launches, threads := d.Stats()
	if launches != 2 || threads != 12 {
		t.Errorf("Stats = %d launches %d threads, want 2, 12", launches, threads)
	}
}

func TestWorkersDefault(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Error("default workers < 1")
	}
	if Serial().Workers() != 1 {
		t.Error("Serial device not single-worker")
	}
}

func TestReduceSumMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for _, n := range []int{0, 1, 2, 31, 32, 33, 100, 1024, 4097} {
		xs := make([]float64, n)
		var want float64
		for i := range xs {
			xs[i] = r.NormFloat64()
			want += xs[i]
		}
		for _, workers := range []int{1, 8} {
			got := New(workers).ReduceSum(xs)
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Errorf("n=%d workers=%d: ReduceSum = %v, want %v", n, workers, got, want)
			}
		}
	}
}

func TestReduceSumDeterministic(t *testing.T) {
	// The warp-tree reduction must give bit-identical results across runs
	// and worker counts: tree shape is fixed, not scheduling-dependent.
	r := rand.New(rand.NewSource(11))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.NormFloat64() * math.Pow(10, float64(r.Intn(20)-10))
	}
	ref := New(1).ReduceSum(xs)
	for _, workers := range []int{2, 5, 16} {
		for rep := 0; rep < 3; rep++ {
			if got := New(workers).ReduceSum(xs); got != ref {
				t.Fatalf("workers=%d rep=%d: %v != %v (non-deterministic reduction)", workers, rep, got, ref)
			}
		}
	}
}

func TestReduceMax(t *testing.T) {
	d := New(4)
	xs := []float64{-5, 3, -1, 2.5}
	if got := d.ReduceMax(xs); got != 3 {
		t.Errorf("ReduceMax = %v, want 3", got)
	}
	if got := d.ReduceMax(nil); !logspace.IsZero(got) {
		t.Errorf("ReduceMax(nil) = %v, want -Inf", got)
	}
}

func TestReduceLogSumMatchesLogspace(t *testing.T) {
	d := New(8)
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = math.Mod(v, 600)
		}
		got := d.ReduceLogSum(xs)
		want := logspace.Sum(xs)
		return math.Abs(got-want) <= 1e-9*math.Max(1, math.Abs(want))
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReduceLogSumUnderflowScale(t *testing.T) {
	d := New(4)
	xs := []float64{-1e4, -1e4, -1e4, -1e4}
	want := -1e4 + math.Log(4)
	if got := d.ReduceLogSum(xs); math.Abs(got-want) > 1e-9 {
		t.Errorf("ReduceLogSum = %v, want %v", got, want)
	}
}

func TestReduceLogSumAllNegInf(t *testing.T) {
	d := New(4)
	xs := []float64{logspace.NegInf, logspace.NegInf}
	if got := d.ReduceLogSum(xs); !logspace.IsZero(got) {
		t.Errorf("ReduceLogSum(all -Inf) = %v, want -Inf", got)
	}
}

func TestLaunchParallelismActuallyConcurrent(t *testing.T) {
	// With w workers and n == w long-running threads, all must overlap:
	// verified by requiring every thread to observe the barrier count
	// reach w before finishing (would deadlock if serialized; bounded by
	// test timeout).
	const w = 4
	d := New(w)
	var entered atomic.Int32
	d.Launch(w, func(int) {
		entered.Add(1)
		for entered.Load() < w {
			// spin until all threads have entered
		}
	})
}

func TestLaunchBlocksCoversRange(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			d := New(workers)
			covered := make([]atomic.Int32, n)
			d.LaunchBlocks(n, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad block [%d, %d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
			})
			for i := range covered {
				if covered[i].Load() != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, covered[i].Load())
				}
			}
		}
	}
}

func TestPoolReuseAcrossLaunches(t *testing.T) {
	// The persistent pool must survive and stay correct over many launches
	// on one device, including grids both larger and smaller than the
	// worker count.
	d := New(8)
	defer d.Close()
	for rep := 0; rep < 200; rep++ {
		n := 1 + rep%67
		var count atomic.Int32
		d.Launch(n, func(int) { count.Add(1) })
		if int(count.Load()) != n {
			t.Fatalf("rep %d: %d threads ran, want %d", rep, count.Load(), n)
		}
	}
	launches, _ := d.Stats()
	if launches != 200 {
		t.Errorf("Stats launches = %d, want 200", launches)
	}
}

func TestNestedLaunchDeep(t *testing.T) {
	// Three levels of dynamic parallelism on a small pool: every inner
	// launcher participates in its own grid, so this must complete even
	// though the pool has fewer workers than live grids.
	d := New(2)
	defer d.Close()
	var count atomic.Int32
	d.Launch(4, func(int) {
		d.Launch(4, func(int) {
			d.Launch(4, func(int) { count.Add(1) })
		})
	})
	if count.Load() != 64 {
		t.Errorf("count = %d, want 64", count.Load())
	}
}

func TestNestedLaunchPanicPropagates(t *testing.T) {
	d := New(4)
	defer d.Close()
	defer func() {
		if recover() == nil {
			t.Error("nested kernel panic did not propagate")
		}
	}()
	d.Launch(8, func(outer int) {
		d.Launch(8, func(inner int) {
			if outer == 3 && inner == 5 {
				panic("inner boom")
			}
		})
	})
}

func TestLaunchPanicStillCompletesGrid(t *testing.T) {
	// A panic must not lose track of the grid: subsequent launches on the
	// same device still work.
	d := New(4)
	defer d.Close()
	func() {
		defer func() { recover() }()
		d.Launch(100, func(tid int) {
			if tid == 0 {
				panic("boom")
			}
		})
	}()
	var count atomic.Int32
	d.Launch(50, func(int) { count.Add(1) })
	if count.Load() != 50 {
		t.Errorf("post-panic launch ran %d threads, want 50", count.Load())
	}
}

func TestConcurrentLaunchesShareOnePool(t *testing.T) {
	// Multiple goroutines launching on the same device concurrently (the
	// multichain pattern) must each see exactly their own grid.
	d := New(4)
	defer d.Close()
	const callers, n = 6, 500
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var count atomic.Int32
			d.Launch(n, func(int) { count.Add(1) })
			if count.Load() != n {
				t.Errorf("concurrent launch ran %d threads, want %d", count.Load(), n)
			}
		}()
	}
	wg.Wait()
}

func TestCloseThenLaunchDegradesToCaller(t *testing.T) {
	d := New(8)
	d.Close()
	d.Close() // double Close is fine
	var count atomic.Int32
	d.Launch(100, func(int) { count.Add(1) })
	if count.Load() != 100 {
		t.Errorf("launch after Close ran %d threads, want 100", count.Load())
	}
	if got := d.ReduceSum([]float64{1, 2, 3}); got != 6 {
		t.Errorf("ReduceSum after Close = %v, want 6", got)
	}
}

func TestLaunchBlocksBlockCount(t *testing.T) {
	d := New(4)
	var blocks atomic.Int32
	d.LaunchBlocks(100, func(lo, hi int) { blocks.Add(1) })
	if got := blocks.Load(); got != 4 {
		t.Errorf("got %d blocks, want 4", got)
	}
	// Fewer items than workers: one block per item.
	blocks.Store(0)
	d.LaunchBlocks(2, func(lo, hi int) {
		if hi-lo != 1 {
			t.Errorf("block size %d, want 1", hi-lo)
		}
		blocks.Add(1)
	})
	if got := blocks.Load(); got != 2 {
		t.Errorf("got %d blocks, want 2", got)
	}
}

func TestPoolLaunchAfterCloseReturnsErrClosed(t *testing.T) {
	// Regression: a late Launch on a closed shared pool must fail fast
	// with the sentinel instead of hanging or silently absorbing the grid
	// on the calling goroutine (the Device teardown behaviour, which is
	// wrong for a long-lived batch service).
	p := NewPool(4)
	if err := p.Launch(10, func(int) {}); err != nil {
		t.Fatalf("Launch on open pool: %v", err)
	}
	p.Close()
	p.Close() // double Close is fine

	done := make(chan error, 1)
	go func() {
		done <- p.Launch(100, func(int) {
			t.Error("kernel ran on a closed pool")
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Launch after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Launch after Close hung")
	}
	if _, err := p.Tenant("late"); !errors.Is(err, ErrClosed) {
		t.Errorf("Tenant after Close = %v, want ErrClosed", err)
	}
	if !p.Closed() {
		t.Error("Closed() = false after Close")
	}
}

func TestPoolTenantViewsShareWorkersSplitAccounting(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	a, err := p.Tenant("job-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Tenant("job-b")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "job-a" || b.Name() != "job-b" {
		t.Fatalf("tenant names %q, %q", a.Name(), b.Name())
	}
	if a.Workers() != p.Workers() || b.Workers() != p.Workers() {
		t.Fatal("tenant views must report the shared pool's parallelism")
	}
	var ca, cb atomic.Int32
	a.Launch(100, func(int) { ca.Add(1) })
	b.Launch(60, func(int) { cb.Add(1) })
	b.Launch(40, func(int) { cb.Add(1) })
	if ca.Load() != 100 || cb.Load() != 100 {
		t.Fatalf("tenant grids ran %d/%d threads, want 100/100", ca.Load(), cb.Load())
	}
	la, ta := a.Stats()
	lb, tb := b.Stats()
	if la != 1 || ta != 100 {
		t.Errorf("tenant a stats = %d launches/%d threads, want 1/100", la, ta)
	}
	if lb != 2 || tb != 100 {
		t.Errorf("tenant b stats = %d launches/%d threads, want 2/100", lb, tb)
	}
	if l, th := p.Stats(); l != 3 || th != 200 {
		t.Errorf("pool aggregate stats = %d/%d, want 3/200", l, th)
	}
}

func TestPoolTenantsInterleaveFairly(t *testing.T) {
	// A tenant launching a long grid must not block another tenant's short
	// grid until the long one drains: round-robin chunk claiming lets the
	// short launch finish while the long grid is still in flight.
	p := NewPool(4)
	defer p.Close()
	long, err := p.Tenant("long")
	if err != nil {
		t.Fatal(err)
	}
	short, err := p.Tenant("short")
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	var once sync.Once
	longDone := make(chan struct{})
	go func() {
		defer close(longDone)
		long.Launch(10000, func(int) {
			once.Do(func() { close(started) })
			time.Sleep(20 * time.Microsecond)
		})
	}()
	<-started
	shortDone := make(chan struct{})
	go func() {
		defer close(shortDone)
		var n atomic.Int32
		short.Launch(8, func(int) { n.Add(1) })
		if n.Load() != 8 {
			t.Errorf("short grid ran %d threads, want 8", n.Load())
		}
	}()
	select {
	case <-shortDone:
		// The short tenant completed while the long grid was (very likely)
		// still running; either way it was not starved.
	case <-time.After(10 * time.Second):
		t.Fatal("short tenant starved behind long tenant's grid")
	}
	<-longDone
}

func TestConcurrentTenantLaunchesCorrect(t *testing.T) {
	// Many tenants launching concurrently on one pool: every grid sees
	// exactly its own threads (the batch-scheduler pattern).
	p := NewPool(4)
	defer p.Close()
	const tenants, n = 8, 300
	var wg sync.WaitGroup
	for c := 0; c < tenants; c++ {
		dev, err := p.Tenant(fmt.Sprintf("t%d", c))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				var count atomic.Int32
				dev.Launch(n, func(int) { count.Add(1) })
				if count.Load() != n {
					t.Errorf("tenant launch ran %d threads, want %d", count.Load(), n)
				}
			}
		}()
	}
	wg.Wait()
}

func TestLaunchAffineCoversAllThreads(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		d := New(workers)
		for _, n := range []int{1, 3, 100, 1000} {
			var hits = make([]atomic.Int32, n)
			d.LaunchAffine(n, func(tid int) { hits[tid].Add(1) })
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("workers=%d n=%d: thread %d executed %d times",
						workers, n, i, hits[i].Load())
				}
			}
		}
	}
}

func TestLaunchAffineZeroAndNegative(t *testing.T) {
	d := New(4)
	ran := false
	d.LaunchAffine(0, func(int) { ran = true })
	d.LaunchAffine(-5, func(int) { ran = true })
	if ran {
		t.Error("kernel ran for empty grid")
	}
}

func TestLaunchAffineRepeatedRounds(t *testing.T) {
	// The round-loop shape affinity exists for: the same small grid
	// launched many times. Every round must still cover every thread
	// exactly once, whatever the segment cursors did last round.
	d := New(4)
	const n, rounds = 37, 200
	for r := 0; r < rounds; r++ {
		var hits = make([]atomic.Int32, n)
		d.LaunchAffine(n, func(tid int) { hits[tid].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("round %d: thread %d executed %d times", r, i, hits[i].Load())
			}
		}
	}
}

func TestLaunchAffineStealsWhenIdle(t *testing.T) {
	// One slow thread must not strand the rest of its segment: idle
	// workers steal from other segments, so total wall time stays far
	// below serial execution of the slow segment.
	d := New(8)
	const n = 64
	var count atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.LaunchAffine(n, func(tid int) {
			if tid == 0 {
				time.Sleep(50 * time.Millisecond)
			}
			count.Add(1)
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("affine launch hung")
	}
	if count.Load() != n {
		t.Errorf("count = %d, want %d", count.Load(), n)
	}
}

func TestLaunchAffineNestedInsideLaunch(t *testing.T) {
	// Two-level parallelism as the felsen kernel uses it: an outer
	// proposal grid whose threads each launch an affine block grid.
	d := New(4)
	const outer, inner = 8, 16
	var count atomic.Int32
	d.Launch(outer, func(int) {
		d.LaunchAffine(inner, func(int) { count.Add(1) })
	})
	if count.Load() != outer*inner {
		t.Errorf("count = %d, want %d", count.Load(), outer*inner)
	}
}

func TestLaunchAffineTenantsInterleave(t *testing.T) {
	// Affinity layers on top of tenant fairness, not instead of it:
	// concurrent tenants issuing affine grids all complete correctly.
	p := NewPool(4)
	defer p.Close()
	const tenants, n = 6, 200
	var wg sync.WaitGroup
	for c := 0; c < tenants; c++ {
		dev, err := p.Tenant(fmt.Sprintf("aff%d", c))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 15; rep++ {
				var count atomic.Int32
				dev.LaunchAffine(n, func(int) { count.Add(1) })
				if count.Load() != n {
					t.Errorf("tenant affine launch ran %d threads, want %d", count.Load(), n)
				}
			}
		}()
	}
	wg.Wait()
}
