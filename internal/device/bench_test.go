package device

import (
	"sync"
	"testing"
)

// spawnLaunch is the seed's dispatch scheme, kept as the benchmark
// reference: a fresh goroutine per worker on every Launch. The persistent
// pool replaced it; BenchmarkLaunchOverhead pins the difference.
func spawnLaunch(workers, n int, kernel func(tid int)) {
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			kernel(i)
		}
		return
	}
	g := workers
	if g > n {
		g = n
	}
	var wg sync.WaitGroup
	chunk := (n + g - 1) / g
	for w := 0; w < g; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				kernel(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// BenchmarkLaunchOverhead measures pure dispatch cost: an empty kernel
// over a GMH-round-sized grid (8 threads, the proposal-set size) and a
// site-kernel-sized grid (1024 threads). "pool" is the persistent-worker
// runtime; "spawn" is the seed's goroutine-per-call scheme.
func BenchmarkLaunchOverhead(b *testing.B) {
	noop := func(int) {}
	for _, n := range []int{8, 1024} {
		b.Run(gridName("pool", n), func(b *testing.B) {
			d := New(8)
			defer d.Close()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Launch(n, noop)
			}
		})
		b.Run(gridName("spawn", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				spawnLaunch(8, n, noop)
			}
		})
	}
}

func gridName(scheme string, n int) string {
	if n == 8 {
		return scheme + "/n=8"
	}
	return scheme + "/n=1024"
}

// BenchmarkReduceSum times the warp-tree reduction at the data-likelihood
// kernel's scale.
func BenchmarkReduceSum(b *testing.B) {
	d := New(8)
	defer d.Close()
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.ReduceSum(xs)
	}
}
