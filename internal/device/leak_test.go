package device

import (
	"fmt"
	"testing"

	"mpcgs/internal/leakcheck"
)

// TestDeviceCloseStopsWorkerGoroutines: the persistent workers a device
// starts on first launch must all exit once Close is called.
func TestDeviceCloseStopsWorkerGoroutines(t *testing.T) {
	base := leakcheck.Snapshot()
	d := New(4)
	var sink [128]int
	d.Launch(len(sink), func(tid int) { sink[tid] = tid })
	d.Close()
	leakcheck.Verify(t, base)
}

// TestPoolCloseStopsWorkerGoroutines: a multi-tenant pool driven by
// several tenants shares one set of workers; Pool.Close must stop them
// all even with tenant views still reachable.
func TestPoolCloseStopsWorkerGoroutines(t *testing.T) {
	base := leakcheck.Snapshot()
	p := NewPool(4)
	var sink [256]int
	for i := 0; i < 3; i++ {
		ten, err := p.Tenant(fmt.Sprintf("tenant%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ten.Launch(len(sink), func(tid int) { sink[tid] = tid })
	}
	p.Close()
	leakcheck.Verify(t, base)
}

// TestCloseWithoutLaunchLeaksNothing: a device that never launched has
// lazily-started workers, i.e. none; Close must still be safe and leave
// the goroutine count untouched.
func TestCloseWithoutLaunchLeaksNothing(t *testing.T) {
	base := leakcheck.Snapshot()
	d := New(8)
	d.Close()
	leakcheck.Verify(t, base)
}
