package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"mpcgs/internal/ckpt"
	"mpcgs/internal/core"
	"mpcgs/internal/phylip"
	"mpcgs/internal/sched"
)

// maxSubmitBytes bounds one submission body (alignment included).
const maxSubmitBytes = 16 << 20

// retryAfterSeconds is the hint sent with a 429 shed.
const retryAfterSeconds = 5

// submitRequest is the POST /v1/jobs body: the sched.Job spec plus the
// scheduling knobs of a submission. Floats arrive as ordinary JSON
// numbers — the server converts them to exact hex form for the durable
// record, so what the client sent is what the fingerprint covers.
type submitRequest struct {
	Name         string  `json:"name"`
	Phylip       string  `json:"phylip"`
	Theta        float64 `json:"theta"`
	Sampler      string  `json:"sampler,omitempty"`
	Model        string  `json:"model,omitempty"`
	Proposals    int     `json:"proposals,omitempty"`
	Chains       int     `json:"chains,omitempty"`
	Burnin       int     `json:"burnin,omitempty"`
	Samples      int     `json:"samples,omitempty"`
	EMIterations int     `json:"em_iterations,omitempty"`
	Seed         uint64  `json:"seed,omitempty"`
	MaxTemp      float64 `json:"max_temp,omitempty"`
	SwapEvery    int     `json:"swap_every,omitempty"`
	AdaptLadder  bool    `json:"adapt_ladder,omitempty"`
	SwapWindow   int     `json:"swap_window,omitempty"`
	ESSTarget    float64 `json:"ess_target,omitempty"`
	RHatTarget   float64 `json:"rhat_target,omitempty"`
	Tenant       string  `json:"tenant,omitempty"`
	Priority     int     `json:"priority,omitempty"`
}

// historyJSON is one EM iteration in wire form. The floats are rendered
// as strings because an early iteration's mean log-likelihood can be
// -Inf, which JSON numbers cannot carry.
type historyJSON struct {
	ThetaIn        string `json:"theta_in"`
	ThetaOut       string `json:"theta_out"`
	AcceptanceRate string `json:"acceptance_rate"`
	MeanLogLik     string `json:"mean_loglik"`
}

// jobJSON is the job representation every read endpoint returns.
// theta_hex and trace_hex are exact hexadecimal renderings — the fields
// the drain/resume CI gate compares bit-for-bit.
type jobJSON struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Status   string `json:"status"`
	Steps    int    `json:"steps"`
	Resumed  bool   `json:"resumed,omitempty"`
	// Converged marks a job whose final sampling pass ended early at its
	// declared ESS/R-hat targets.
	Converged bool          `json:"converged,omitempty"`
	Error     string        `json:"error,omitempty"`
	Theta     string        `json:"theta,omitempty"`
	ThetaHex  string        `json:"theta_hex,omitempty"`
	TraceHex  []string      `json:"trace_hex,omitempty"`
	History   []historyJSON `json:"history,omitempty"`
}

func formatDec(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func historyToJSON(hist []core.EMIteration) []historyJSON {
	out := make([]historyJSON, len(hist))
	for i, it := range hist {
		out[i] = historyJSON{
			ThetaIn:        formatDec(it.ThetaIn),
			ThetaOut:       formatDec(it.ThetaOut),
			AcceptanceRate: formatDec(it.AcceptanceRate),
			MeanLogLik:     formatDec(it.MeanLogLik),
		}
	}
	return out
}

// jobView renders a job's current state. resumed marks a job replayed
// from the journal (it predates this daemon process). withResult
// additionally includes the full trajectory (the result endpoint's
// payload; status views stay small). A nil ticket is a submission still
// mid-admission: it reports as queued.
func jobView(rec *ckpt.JobRecord, ticket *sched.Ticket, resumed, withResult bool) jobJSON {
	out := jobJSON{
		ID:       rec.ID,
		Name:     rec.Spec.Name,
		Tenant:   rec.Tenant,
		Priority: rec.Priority,
		Status:   string(sched.TicketQueued),
		Resumed:  resumed,
	}
	if ticket == nil {
		return out
	}
	st, _ := ticket.State()
	out.Status = string(st.Status)
	out.Steps = st.Steps
	if st.Result == nil {
		return out
	}
	res := st.Result
	out.Resumed = resumed || res.Resumed
	out.Converged = res.Converged
	if res.Err != nil {
		out.Error = res.Err.Error()
		return out
	}
	out.Theta = formatDec(res.Theta)
	out.ThetaHex = ckpt.HexFloat(res.Theta)
	out.TraceHex = make([]string, len(res.History))
	for i, it := range res.History {
		out.TraceHex[i] = ckpt.HexFloat(it.ThetaOut)
	}
	if withResult {
		out.History = historyToJSON(res.History)
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// routes builds the job API's mux (once, at New).
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	return mux
}

// ServeHTTP routes the job API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	n := len(s.jobs)
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"jobs":    n,
		"pending": s.queue.Pending(),
	})
}

// handleSubmit admits one job: validate (400), reserve its identity
// (409 on duplicates), shed when the backlog is full (429), write the
// durable record, enqueue, and only then acknowledge with 202. A
// malformed submission can never 500 — every parse and validation
// failure is reported as a 400 with the reason.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	body := http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid submission: %v", err)
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "invalid submission: name is required")
		return
	}
	if req.Phylip == "" {
		writeError(w, http.StatusBadRequest, "invalid submission: phylip alignment text is required")
		return
	}
	aln, err := phylip.Read(strings.NewReader(req.Phylip))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid submission: alignment: %v", err)
		return
	}
	job := sched.Job{
		Name:         req.Name,
		Alignment:    aln,
		InitialTheta: req.Theta,
		Sampler:      req.Sampler,
		Model:        req.Model,
		Proposals:    req.Proposals,
		Chains:       req.Chains,
		Burnin:       req.Burnin,
		Samples:      req.Samples,
		EMIterations: req.EMIterations,
		Seed:         req.Seed,
		MaxTemp:      req.MaxTemp,
		SwapEvery:    req.SwapEvery,
		AdaptLadder:  req.AdaptLadder,
		SwapWindow:   req.SwapWindow,
		ESSTarget:    req.ESSTarget,
		RHatTarget:   req.RHatTarget,
	}
	if err := job.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid submission: %v", err)
		return
	}
	id := jobID(req.Tenant, req.Name)

	// Reserve the identity under the lock so two racing submissions of
	// the same job cannot both pass the duplicate check.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if _, dup := s.jobs[id]; dup {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "job %q already exists", id)
		return
	}
	if s.queue.Pending() >= s.opts.maxJobs() {
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusTooManyRequests, "job backlog is full (%d pending); retry later", s.opts.maxJobs())
		return
	}
	seq := s.nextSeq
	s.nextSeq++
	rec := recordFromJob(id, seq, req.Tenant, req.Priority, req.Phylip, job)
	entry := &jobEntry{rec: rec}
	s.jobs[id] = entry
	s.order = append(s.order, id)
	s.mu.Unlock()

	release := func() {
		s.mu.Lock()
		delete(s.jobs, id)
		for i, o := range s.order {
			if o == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
	}

	// Durable before acknowledged: the record reaches disk before the
	// queue sees the job, so a crash after the 202 always finds it.
	if err := ckpt.SaveJobRecord(s.jobDir(id), rec); err != nil {
		release()
		writeError(w, http.StatusInternalServerError, "persisting job: %v", err)
		return
	}
	ticket, err := s.queue.Submit(job, sched.SubmitOptions{
		Tenant:     req.Tenant,
		Priority:   req.Priority,
		Checkpoint: s.checkpointOptions(id),
	})
	if err != nil {
		release()
		os.RemoveAll(s.jobDir(id))
		writeError(w, http.StatusServiceUnavailable, "enqueuing job: %v", err)
		return
	}
	s.mu.Lock()
	entry.ticket = ticket
	s.mu.Unlock()
	fmt.Fprintf(s.log, "mpcgsd: accepted job %s (seq %d)\n", id, seq)
	writeJSON(w, http.StatusAccepted, jobView(rec, ticket, false, false))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type pair struct {
		rec     *ckpt.JobRecord
		ticket  *sched.Ticket
		resumed bool
	}
	s.mu.Lock()
	pairs := make([]pair, 0, len(s.order))
	for _, id := range s.order {
		e := s.jobs[id]
		pairs = append(pairs, pair{e.rec, e.ticket, e.resumed})
	}
	s.mu.Unlock()
	out := make([]jobJSON, len(pairs))
	for i, p := range pairs {
		out[i] = jobView(p.rec, p.ticket, p.resumed, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// lookup resolves {id}, writing the 404 itself on a miss. The ticket is
// captured under the lock (it is set after the entry is reserved).
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*ckpt.JobRecord, *sched.Ticket, bool, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	entry := s.jobs[id]
	var rec *ckpt.JobRecord
	var ticket *sched.Ticket
	var resumed bool
	if entry != nil {
		rec, ticket, resumed = entry.rec, entry.ticket, entry.resumed
	}
	s.mu.Unlock()
	if entry == nil {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return nil, nil, false, false
	}
	return rec, ticket, resumed, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if rec, ticket, resumed, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, jobView(rec, ticket, resumed, false))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	rec, ticket, resumed, ok := s.lookup(w, r)
	if !ok {
		return
	}
	view := jobView(rec, ticket, resumed, true)
	if !sched.TicketStatus(view.Status).Terminal() {
		writeError(w, http.StatusConflict, "job %q is %s, not finished", view.ID, view.Status)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleEvents streams the job's state as server-sent events: one
// `data:` line per state change, ending at the terminal state. The
// stream also ends when the client goes away or the server starts
// draining — a drain must not wait out slow watchers.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rec, ticket, resumed, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	emit := func() jobJSON {
		view := jobView(rec, ticket, resumed, false)
		if payload, err := json.Marshal(view); err == nil {
			fmt.Fprintf(w, "data: %s\n\n", payload)
			flusher.Flush()
		}
		return view
	}
	for {
		var changed <-chan struct{}
		if ticket != nil {
			_, changed = ticket.State()
		}
		view := emit()
		if sched.TicketStatus(view.Status).Terminal() || changed == nil {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			// One final snapshot of the paused state, then end: a drain
			// must not wait out slow watchers.
			emit()
			return
		}
	}
}
