// Package serve is the estimation-as-a-service layer: a long-running
// daemon embedding the dynamic job queue (sched.Queue) behind an
// HTTP/JSON API, with a durable on-disk job log so a crashed or drained
// daemon restarts into exactly the state it left.
//
// # Durability contract
//
// Every accepted submission is written to the state directory before it
// is acknowledged:
//
//	<state>/jobs/<id>/job.json    the submission record (ckpt.JobRecord)
//	<state>/jobs/<id>/ckpt/       the job's chain checkpoint (ckpt.Batch)
//
// On start the server rescans the job log in admission order and
// resubmits every job: finished jobs settle instantly from their
// recorded result, in-flight jobs resume from their last snapshot and —
// because a job's trajectory is a pure function of its spec and seed,
// and snapshots happen only at step boundaries — complete bit-identical
// to a run that was never interrupted. The service-smoke CI job enforces
// this end to end over SIGTERM.
//
// # Admission control
//
// The server bounds its backlog: past Options.MaxJobs pending jobs a
// submission is shed with 429 and a Retry-After hint rather than
// accepted into an unbounded queue. While draining it refuses all
// submissions with 503.
package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mpcgs/internal/ckpt"
	"mpcgs/internal/device"
	"mpcgs/internal/phylip"
	"mpcgs/internal/sched"
)

// Options configures a server.
type Options struct {
	// StateDir is the durable job-log root (required).
	StateDir string
	// Workers sizes the shared device pool; non-positive selects
	// GOMAXPROCS.
	Workers int
	// Drivers and Quantum tune the job queue (see sched.QueueOptions).
	Drivers int
	Quantum int
	// MaxJobs bounds the pending backlog before submissions are shed
	// with 429. Non-positive selects 64.
	MaxJobs int
	// CheckpointEvery is the per-job snapshot cadence in sampler
	// transitions. Non-positive selects 500.
	CheckpointEvery int
	// Log receives one line per lifecycle event; nil discards.
	Log io.Writer
}

func (o Options) maxJobs() int {
	if o.MaxJobs <= 0 {
		return 64
	}
	return o.MaxJobs
}

func (o Options) checkpointEvery() int {
	if o.CheckpointEvery <= 0 {
		return 500
	}
	return o.CheckpointEvery
}

// jobEntry pairs a durable record with its live ticket. The ticket is
// nil only for the instant between duplicate-reservation and queue
// admission.
type jobEntry struct {
	rec    *ckpt.JobRecord
	ticket *sched.Ticket
	// resumed marks a job replayed from the journal: it predates this
	// process. Jobs submitted over HTTP to this incarnation are not.
	resumed bool
}

// Server is the estimation daemon's engine: the HTTP handler plus the
// queue and durable state behind it. Serve it with net/http; stop it
// with Drain (graceful, snapshots everything) or Close (tests).
type Server struct {
	opts    Options
	log     io.Writer
	pool    *device.Pool
	queue   *sched.Queue
	handler http.Handler

	drainCh   chan struct{}
	drainOnce sync.Once

	mu       sync.Mutex
	jobs     map[string]*jobEntry
	order    []string
	nextSeq  int64
	draining bool
}

// New builds the server: it opens (or creates) the state directory,
// replays the job log, and resubmits every logged job to a fresh queue —
// resuming from checkpoints where they exist. A record that cannot be
// replayed fails New: an acknowledged job that silently vanished would
// break the durability contract.
func New(opts Options) (*Server, error) {
	if opts.StateDir == "" {
		return nil, fmt.Errorf("serve: state directory is required")
	}
	logw := opts.Log
	if logw == nil {
		logw = io.Discard
	}
	jobsRoot := filepath.Join(opts.StateDir, "jobs")
	if err := os.MkdirAll(jobsRoot, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	recs, err := ckpt.ScanJobRecords(jobsRoot)
	if err != nil {
		return nil, fmt.Errorf("serve: replaying job log: %w", err)
	}
	pool := device.NewPool(opts.Workers)
	queue := sched.NewQueue(pool, sched.QueueOptions{Drivers: opts.Drivers, Quantum: opts.Quantum})
	s := &Server{
		opts:    opts,
		log:     logw,
		pool:    pool,
		queue:   queue,
		drainCh: make(chan struct{}),
		jobs:    make(map[string]*jobEntry),
	}
	s.handler = s.routes()
	for _, rec := range recs {
		job, err := jobFromRecord(rec)
		if err != nil {
			s.teardown()
			return nil, fmt.Errorf("serve: job %q: %w", rec.ID, err)
		}
		sub := sched.SubmitOptions{
			Tenant:     rec.Tenant,
			Priority:   rec.Priority,
			Checkpoint: s.checkpointOptions(rec.ID),
		}
		if resume, err := ckpt.Load(s.ckptDir(rec.ID)); err == nil {
			sub.Resume = resume
		} else if !errors.Is(err, os.ErrNotExist) {
			s.teardown()
			return nil, fmt.Errorf("serve: job %q: loading checkpoint: %w", rec.ID, err)
		}
		ticket, err := queue.Submit(job, sub)
		if err != nil {
			s.teardown()
			return nil, fmt.Errorf("serve: job %q: resubmitting: %w", rec.ID, err)
		}
		s.jobs[rec.ID] = &jobEntry{rec: rec, ticket: ticket, resumed: true}
		s.order = append(s.order, rec.ID)
		if rec.Seq >= s.nextSeq {
			s.nextSeq = rec.Seq + 1
		}
		fmt.Fprintf(logw, "mpcgsd: resumed job %s (seq %d)\n", rec.ID, rec.Seq)
	}
	return s, nil
}

// teardown releases the queue and pool after a failed New.
func (s *Server) teardown() {
	s.queue.Close()
	s.pool.Close()
}

func (s *Server) jobDir(id string) string  { return filepath.Join(s.opts.StateDir, "jobs", id) }
func (s *Server) ckptDir(id string) string { return filepath.Join(s.jobDir(id), "ckpt") }

func (s *Server) checkpointOptions(id string) sched.CheckpointOptions {
	return sched.CheckpointOptions{Dir: s.ckptDir(id), Every: s.opts.checkpointEvery()}
}

// jobID derives a submission's durable identity from its tenant and
// name, via the same sanitization the batch scheduler keys checkpoint
// state with.
func jobID(tenant, name string) string {
	if tenant == "" {
		return sched.CheckpointKey(name)
	}
	return sched.CheckpointKey(tenant) + "--" + sched.CheckpointKey(name)
}

// Drain is the SIGTERM path: stop accepting, unblock progress streams,
// stop the drivers at their next quantum boundary, snapshot every live
// job to disk, and release the device pool. After a clean Drain (nil
// error) a New on the same state directory continues every job
// bit-identically.
func (s *Server) Drain() error {
	s.beginShutdown()
	err := s.queue.Drain()
	s.pool.Close()
	return err
}

// Close shuts down without the drain snapshots (periodic checkpoints
// stay as they were). Intended for tests.
func (s *Server) Close() error {
	s.beginShutdown()
	err := s.queue.Close()
	s.pool.Close()
	return err
}

func (s *Server) beginShutdown() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// jobFromRecord rebuilds the scheduler job a durable record describes.
func jobFromRecord(rec *ckpt.JobRecord) (sched.Job, error) {
	spec := rec.Spec
	aln, err := phylip.Read(strings.NewReader(spec.Phylip))
	if err != nil {
		return sched.Job{}, fmt.Errorf("alignment: %w", err)
	}
	theta, err := ckpt.ParseHexFloat(spec.Theta)
	if err != nil {
		return sched.Job{}, err
	}
	job := sched.Job{
		Name:         spec.Name,
		Alignment:    aln,
		InitialTheta: theta,
		Sampler:      spec.Sampler,
		Model:        spec.Model,
		Proposals:    spec.Proposals,
		Chains:       spec.Chains,
		Burnin:       spec.Burnin,
		Samples:      spec.Samples,
		EMIterations: spec.EMIterations,
		Seed:         spec.Seed,
		SwapEvery:    spec.SwapEvery,
		AdaptLadder:  spec.AdaptLadder,
		SwapWindow:   spec.SwapWindow,
	}
	if spec.MaxTemp != "" {
		if job.MaxTemp, err = ckpt.ParseHexFloat(spec.MaxTemp); err != nil {
			return sched.Job{}, err
		}
	}
	if spec.ESSTarget != "" {
		if job.ESSTarget, err = ckpt.ParseHexFloat(spec.ESSTarget); err != nil {
			return sched.Job{}, err
		}
	}
	if spec.RHatTarget != "" {
		if job.RHatTarget, err = ckpt.ParseHexFloat(spec.RHatTarget); err != nil {
			return sched.Job{}, err
		}
	}
	return job, nil
}

// recordFromJob is jobFromRecord's inverse for a freshly validated
// submission: the PHYLIP text is the client's verbatim payload, floats
// are stored exactly.
func recordFromJob(id string, seq int64, tenant string, priority int, phylipText string, job sched.Job) *ckpt.JobRecord {
	spec := ckpt.JobSpec{
		Name:         job.Name,
		Phylip:       phylipText,
		Theta:        ckpt.HexFloat(job.InitialTheta),
		Sampler:      job.Sampler,
		Model:        job.Model,
		Proposals:    job.Proposals,
		Chains:       job.Chains,
		Burnin:       job.Burnin,
		Samples:      job.Samples,
		EMIterations: job.EMIterations,
		Seed:         job.Seed,
		SwapEvery:    job.SwapEvery,
		AdaptLadder:  job.AdaptLadder,
		SwapWindow:   job.SwapWindow,
	}
	if job.MaxTemp != 0 {
		spec.MaxTemp = ckpt.HexFloat(job.MaxTemp)
	}
	if job.ESSTarget != 0 {
		spec.ESSTarget = ckpt.HexFloat(job.ESSTarget)
	}
	if job.RHatTarget != 0 {
		spec.RHatTarget = ckpt.HexFloat(job.RHatTarget)
	}
	return &ckpt.JobRecord{
		ID:        id,
		Seq:       seq,
		Tenant:    tenant,
		Priority:  priority,
		Submitted: time.Now().UTC().Format(time.RFC3339),
		Spec:      spec,
	}
}

var _ http.Handler = (*Server)(nil)
