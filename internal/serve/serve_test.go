package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mpcgs/internal/leakcheck"
	"mpcgs/internal/phylip"
	"mpcgs/internal/seqgen"
)

// phylipText simulates a small dataset and renders it as the PHYLIP text
// a client submits.
func phylipText(t testing.TB, nSeq, seqLen int, seed uint64) string {
	t.Helper()
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, seed)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := phylip.Write(&sb, aln); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// newTestServer builds a server on a fresh state dir and registers
// cleanup. Tests that drain or restart explicitly manage their own.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.StateDir == "" {
		opts.StateDir = t.TempDir()
	}
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// submitBody is a minimal well-formed submission.
func submitBody(t testing.TB, name, phy string, extra map[string]any) []byte {
	t.Helper()
	body := map[string]any{
		"name":          name,
		"phylip":        phy,
		"theta":         1.0,
		"proposals":     2,
		"burnin":        20,
		"samples":       100,
		"em_iterations": 1,
		"seed":          7,
	}
	for k, v := range extra {
		body[k] = v
	}
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func doJSON(t *testing.T, h http.Handler, method, path string, body []byte) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var out map[string]any
	if rr.Body.Len() > 0 {
		if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: non-JSON response (status %d): %q", method, path, rr.Code, rr.Body.String())
		}
	}
	return rr, out
}

// waitStatus polls a job until it reaches a terminal status and returns
// its final status view.
func waitStatus(t *testing.T, s *Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		rr, view := doJSON(t, s, "GET", "/v1/jobs/"+id, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d: %v", id, rr.Code, view)
		}
		if st := view["status"]; st == "done" || st == "failed" {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish (last view %v)", id, view)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubmitMalformedNever500 pins the API's failure mode for bad input:
// every malformed submission is a 400 with a JSON error, never a 500.
func TestSubmitMalformedNever500(t *testing.T) {
	s := newTestServer(t, Options{})
	phy := phylipText(t, 5, 40, 301)
	cases := map[string][]byte{
		"empty body":        nil,
		"truncated json":    []byte(`{"name": "x"`),
		"not json":          []byte("name=x"),
		"unknown field":     submitBody(t, "x", phy, map[string]any{"bogus": 1}),
		"missing name":      submitBody(t, "", phy, nil),
		"missing phylip":    submitBody(t, "x", "", nil),
		"garbage phylip":    submitBody(t, "x", "not a phylip file", nil),
		"two sequences":     submitBody(t, "x", "2 4\na AAAA\nb CCCC\n", nil),
		"zero theta":        submitBody(t, "x", phy, map[string]any{"theta": 0}),
		"negative theta":    submitBody(t, "x", phy, map[string]any{"theta": -2}),
		"unknown sampler":   submitBody(t, "x", phy, map[string]any{"sampler": "nuts"}),
		"unknown model":     submitBody(t, "x", phy, map[string]any{"model": "gtr"}),
		"negative burnin":   submitBody(t, "x", phy, map[string]any{"burnin": -1}),
		"tempering on gmh":  submitBody(t, "x", phy, map[string]any{"max_temp": 4}),
		"max_temp below 1":  submitBody(t, "x", phy, map[string]any{"sampler": "heated", "max_temp": 0.5}),
		"string where int":  submitBody(t, "x", phy, map[string]any{"samples": "many"}),
		"negative priority": nil, // placeholder replaced below
	}
	delete(cases, "negative priority") // priorities may be negative; not an error
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			rr, out := doJSON(t, s, "POST", "/v1/jobs", body)
			if rr.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %v)", rr.Code, out)
			}
			if out["error"] == "" {
				t.Fatal("400 without an error message")
			}
		})
	}
	// Nothing was admitted, nothing journaled.
	rr, out := doJSON(t, s, "GET", "/v1/jobs", nil)
	if rr.Code != http.StatusOK || len(out["jobs"].([]any)) != 0 {
		t.Fatalf("after rejections: %d %v, want empty list", rr.Code, out)
	}
}

func TestUnknownJobIs404(t *testing.T) {
	s := newTestServer(t, Options{})
	for _, path := range []string{"/v1/jobs/ghost", "/v1/jobs/ghost/result", "/v1/jobs/ghost/events"} {
		rr, out := doJSON(t, s, "GET", path, nil)
		if rr.Code != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404 (%v)", path, rr.Code, out)
		}
	}
}

func TestSubmitPollFetchLifecycle(t *testing.T) {
	s := newTestServer(t, Options{})
	phy := phylipText(t, 6, 60, 302)
	rr, view := doJSON(t, s, "POST", "/v1/jobs", submitBody(t, "lineage-a", phy, map[string]any{"tenant": "lab"}))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", rr.Code, view)
	}
	id := view["id"].(string)
	if id != "lab--lineage-a" {
		t.Fatalf("id %q, want lab--lineage-a", id)
	}

	// Duplicate submission: 409.
	rr, _ = doJSON(t, s, "POST", "/v1/jobs", submitBody(t, "lineage-a", phy, map[string]any{"tenant": "lab"}))
	if rr.Code != http.StatusConflict {
		t.Fatalf("duplicate submit: status %d, want 409", rr.Code)
	}

	final := waitStatus(t, s, id)
	if final["status"] != "done" {
		t.Fatalf("final status %v (error %v)", final["status"], final["error"])
	}
	if final["theta_hex"] == nil || final["theta"] == nil {
		t.Fatalf("final view missing theta: %v", final)
	}

	rr, res := doJSON(t, s, "GET", "/v1/jobs/"+id+"/result", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("result: status %d: %v", rr.Code, res)
	}
	if len(res["history"].([]any)) == 0 || len(res["trace_hex"].([]any)) == 0 {
		t.Fatalf("result missing trajectory: %v", res)
	}
}

func TestResultBeforeDoneIs409(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	phy := phylipText(t, 6, 60, 303)
	long := submitBody(t, "slow", phy, map[string]any{"samples": 8000, "em_iterations": 2})
	rr, view := doJSON(t, s, "POST", "/v1/jobs", long)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", rr.Code, view)
	}
	rr, out := doJSON(t, s, "GET", "/v1/jobs/slow/result", nil)
	if rr.Code != http.StatusConflict {
		t.Fatalf("early result fetch: status %d, want 409 (%v)", rr.Code, out)
	}
}

// TestQueueFullSheds429 bounds the backlog at one job and verifies the
// second submission is shed with Retry-After rather than queued.
func TestQueueFullSheds429(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, MaxJobs: 1})
	phy := phylipText(t, 6, 60, 304)
	long := submitBody(t, "occupant", phy, map[string]any{"samples": 8000, "em_iterations": 2})
	if rr, view := doJSON(t, s, "POST", "/v1/jobs", long); rr.Code != http.StatusAccepted {
		t.Fatalf("first submit: %d %v", rr.Code, view)
	}
	rr, out := doJSON(t, s, "POST", "/v1/jobs", submitBody(t, "shed-me", phy, nil))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, want 429 (%v)", rr.Code, out)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// The shed job left no durable trace: a restart must not resurrect it.
	if rr, _ := doJSON(t, s, "GET", "/v1/jobs/shed-me", nil); rr.Code != http.StatusNotFound {
		t.Fatalf("shed job visible: status %d, want 404", rr.Code)
	}
}

func TestDrainingRefusesSubmissions(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{StateDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	phy := phylipText(t, 5, 40, 305)
	rr, out := doJSON(t, s, "POST", "/v1/jobs", submitBody(t, "late", phy, nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503 (%v)", rr.Code, out)
	}
}

// TestEventsStreamEndsAtTerminal consumes the SSE stream of a short job
// over a real HTTP connection and verifies it ends at the terminal
// event.
func TestEventsStreamEndsAtTerminal(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	phy := phylipText(t, 6, 60, 306)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		bytes.NewReader(submitBody(t, "streamed", phy, nil)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/streamed/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var last map[string]any
	events := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		events++
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
			t.Fatalf("event %d: %v", events, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no events received")
	}
	if last["status"] != "done" {
		t.Fatalf("stream ended at %v, want done (error %v)", last["status"], last["error"])
	}
}

// TestShutdownLeaksNothing runs a loaded server through submit and
// drain and verifies no goroutines survive — including the SSE stream
// of an in-flight job, which the drain must unblock.
func TestShutdownLeaksNothing(t *testing.T) {
	base := leakcheck.Snapshot()
	func() {
		s := newTestServer(t, Options{Workers: 2})
		ts := httptest.NewServer(s)
		defer ts.Close()
		phy := phylipText(t, 6, 60, 307)
		long := submitBody(t, "leaky", phy, map[string]any{"samples": 8000, "em_iterations": 2})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(long))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		// Open an SSE stream that the drain must terminate.
		stream, err := http.Get(ts.URL + "/v1/jobs/leaky/events")
		if err != nil {
			t.Fatal(err)
		}
		defer stream.Body.Close()
		buf := make([]byte, 64)
		if _, err := stream.Body.Read(buf); err != nil {
			t.Fatal(err)
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
	}()
	leakcheck.Verify(t, base)
}

// collectTraces fetches every job's exact trace from a server.
func collectTraces(t *testing.T, s *Server, ids []string) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for _, id := range ids {
		view := waitStatus(t, s, id)
		if view["status"] != "done" {
			t.Fatalf("job %s: %v (error %v)", id, view["status"], view["error"])
		}
		trace := []string{view["theta_hex"].(string)}
		for _, h := range view["trace_hex"].([]any) {
			trace = append(trace, h.(string))
		}
		out[id] = trace
	}
	return out
}

// TestDrainRestartBitIdentical is the durability contract in-process:
// drain a server mid-run, rebuild it on the same state directory, and
// every job's final exact trace must equal the uninterrupted run's.
func TestDrainRestartBitIdentical(t *testing.T) {
	specs := []struct {
		name string
		phy  string
		seed uint64
	}{
		{"pop-a", phylipText(t, 6, 60, 311), 321},
		{"pop-b", phylipText(t, 6, 50, 312), 322},
	}
	submit := func(s *Server, name, phy string, seed uint64) {
		t.Helper()
		body := submitBody(t, name, phy, map[string]any{
			"samples": 2500, "em_iterations": 2, "seed": seed, "tenant": "lab",
		})
		rr, view := doJSON(t, s, "POST", "/v1/jobs", body)
		if rr.Code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %v", name, rr.Code, view)
		}
	}
	ids := []string{"lab--pop-a", "lab--pop-b"}

	// Reference: uninterrupted run.
	ref := newTestServer(t, Options{Workers: 2, Quantum: 16, CheckpointEvery: 64})
	for _, sp := range specs {
		submit(ref, sp.name, sp.phy, sp.seed)
	}
	want := collectTraces(t, ref, ids)

	// Interrupted run: drain mid-flight, restart on the same state dir.
	state := t.TempDir()
	s1, err := New(Options{StateDir: state, Workers: 2, Quantum: 16, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		submit(s1, sp.name, sp.phy, sp.seed)
	}
	// Give the jobs a moment to make progress, then drain.
	deadline := time.Now().Add(time.Minute)
	for {
		rr, view := doJSON(t, s1, "GET", "/v1/jobs/"+ids[0], nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("%d %v", rr.Code, view)
		}
		if steps, _ := view["steps"].(float64); steps > 200 {
			break
		}
		if view["status"] == "done" || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s1.Drain(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{StateDir: state, Workers: 2, Quantum: 16, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := collectTraces(t, s2, ids)
	for _, id := range ids {
		if strings.Join(got[id], ",") != strings.Join(want[id], ",") {
			t.Errorf("job %s: resumed trace differs from uninterrupted run:\n got %v\nwant %v",
				id, got[id], want[id])
		}
	}
	// And the resumed results survive yet another restart untouched.
	if err := s2.Drain(); err != nil {
		t.Fatal(err)
	}
	s3, err := New(Options{StateDir: state, Workers: 2, Quantum: 16, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	again := collectTraces(t, s3, ids)
	for _, id := range ids {
		if strings.Join(again[id], ",") != strings.Join(want[id], ",") {
			t.Errorf("job %s: restored trace differs after second restart", id)
		}
	}
	for _, id := range ids {
		rr, view := doJSON(t, s3, "GET", "/v1/jobs/"+id, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("%d %v", rr.Code, view)
		}
		if view["resumed"] != true {
			t.Errorf("job %s not marked resumed after restart: %v", id, view)
		}
	}
}

func TestNewRejectsCorruptJobLog(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{StateDir: dir})
	phy := phylipText(t, 5, 40, 308)
	if rr, view := doJSON(t, s, "POST", "/v1/jobs", submitBody(t, "keeper", phy, nil)); rr.Code != http.StatusAccepted {
		t.Fatalf("%d %v", rr.Code, view)
	}
	waitStatus(t, s, "keeper")
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the record: a restart must fail loudly, not drop the job.
	if err := os.WriteFile(filepath.Join(dir, "jobs", "keeper", "job.json"), []byte(`{"version": 1`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{StateDir: dir}); err == nil {
		t.Fatal("New accepted a corrupt job record")
	}
}
