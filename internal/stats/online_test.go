package stats

import (
	"math"
	"testing"
)

func TestOnlineDiagIIDMatchesBatchESS(t *testing.T) {
	d := NewOnlineDiag(512, 1)
	var g lcg = 7
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = g.next()
		d.Add(xs[i])
	}
	if d.N() != len(xs) {
		t.Fatalf("N = %d", d.N())
	}
	ess := d.ESS()
	// IID draws: ESS should be a large fraction of n.
	if ess < 0.5*float64(len(xs)) || ess > 1.01*float64(len(xs)) {
		t.Fatalf("IID ESS = %.1f for n=%d", ess, len(xs))
	}
	rhat := d.RHat()
	if math.IsNaN(rhat) || math.Abs(rhat-1) > 0.1 {
		t.Fatalf("IID split R-hat = %v, want ~1", rhat)
	}
}

func TestOnlineDiagCorrelatedChainShrinksESS(t *testing.T) {
	diid := NewOnlineDiag(512, 1)
	dar := NewOnlineDiag(512, 1)
	var g lcg = 13
	x := 0.0
	const n = 4000
	for i := 0; i < n; i++ {
		e := g.next() - 0.5
		diid.Add(e)
		x = 0.95*x + e // AR(1), strongly autocorrelated
		dar.Add(x)
	}
	if dar.ESS() > 0.25*diid.ESS() {
		t.Fatalf("AR(1) ESS %.1f not ≪ IID ESS %.1f", dar.ESS(), diid.ESS())
	}
}

func TestOnlineDiagDriftInflatesRHat(t *testing.T) {
	d := NewOnlineDiag(256, 1)
	var g lcg = 21
	const n = 4000
	for i := 0; i < n; i++ {
		// A mean shift between the halves: split R-hat must flag it.
		d.Add(g.next() + 5*float64(i)/n)
	}
	if r := d.RHat(); !(r > 1.2) {
		t.Fatalf("drifting chain split R-hat = %v, want > 1.2", r)
	}
}

func TestOnlineDiagDeterministicReplay(t *testing.T) {
	mk := func() *OnlineDiag { return NewOnlineDiag(128, 4) }
	a, b := mk(), mk()
	var g lcg = 3
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = g.next()
	}
	for _, x := range xs {
		a.Add(x)
	}
	// b sees the same stream in two installments with interleaved
	// queries, as a resumed run would.
	for _, x := range xs[:1234] {
		b.Add(x)
	}
	_, _ = b.ESS(), b.RHat()
	for _, x := range xs[1234:] {
		b.Add(x)
	}
	if math.Float64bits(a.ESS()) != math.Float64bits(b.ESS()) {
		t.Fatalf("ESS diverged: %v vs %v", a.ESS(), b.ESS())
	}
	ra, rb := a.RHat(), b.RHat()
	if math.Float64bits(ra) != math.Float64bits(rb) {
		t.Fatalf("RHat diverged: %v vs %v", ra, rb)
	}
}

func TestOnlineDiagBoundedMemory(t *testing.T) {
	d := NewOnlineDiag(64, 1)
	var g lcg = 9
	for i := 0; i < 200000; i++ {
		d.Add(g.next())
	}
	if len(d.win) > 64 || cap(d.win) > 64 {
		t.Fatalf("window grew to %d/%d", len(d.win), cap(d.win))
	}
	if len(d.means) >= onlineMaxMeans || cap(d.means) > onlineMaxMeans {
		t.Fatalf("means grew to %d/%d", len(d.means), cap(d.means))
	}
	if d.bsize < 200000/onlineMaxMeans {
		t.Fatalf("batch size %d did not double enough", d.bsize)
	}
}

func TestOnlineDiagEdgeCases(t *testing.T) {
	d := NewOnlineDiag(0, 0) // defaults
	if got := d.ESS(); got != 0 {
		t.Fatalf("empty ESS = %v", got)
	}
	if !math.IsNaN(d.RHat()) {
		t.Fatal("empty RHat should be NaN")
	}
	d.Add(1)
	d.Add(2)
	if !math.IsNaN(d.RHat()) {
		t.Fatal("2-value RHat should be NaN")
	}
	if d.ESS() <= 0 {
		t.Fatal("ESS should be positive once values exist")
	}
}
