package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", s)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one point should be NaN")
	}
}

func TestStdErr(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	want := StdDev(xs) / 2
	if got := StdErr(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdErr = %v, want %v", got, want)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	// Hand-computed: r for these series is 0.9 within rounding.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1.2, 1.9, 3.3, 3.7, 5.1}
	r := Pearson(xs, ys)
	if r < 0.97 || r > 1.0 {
		t.Errorf("Pearson = %v, want high positive", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 2}, []float64{3})) {
		t.Error("length mismatch should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Error("zero-variance series should be NaN")
	}
}

func TestAutocorrelation(t *testing.T) {
	// Alternating series: lag-1 autocorrelation approaches -1.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	if rho := Autocorrelation(xs, 1); rho > -0.99 {
		t.Errorf("lag-1 autocorrelation = %v, want ~-1", rho)
	}
	if rho := Autocorrelation(xs, 0); math.Abs(rho-1) > 1e-12 {
		t.Errorf("lag-0 autocorrelation = %v, want 1", rho)
	}
}

func TestEffectiveSampleSizeIID(t *testing.T) {
	// A deterministic low-autocorrelation sequence: ESS near n.
	xs := make([]float64, 2000)
	state := uint64(12345)
	for i := range xs {
		state = state*6364136223846793005 + 1442695040888963407
		xs[i] = float64(state>>11) / float64(1<<53)
	}
	ess := EffectiveSampleSize(xs)
	if ess < 1000 {
		t.Errorf("ESS of near-iid sequence = %v, want > 1000", ess)
	}
	if ess > 2000 {
		t.Errorf("ESS = %v exceeds n", ess)
	}
}

func TestEffectiveSampleSizeCorrelated(t *testing.T) {
	// A heavily smoothed random walk has ESS much below n.
	xs := make([]float64, 2000)
	state := uint64(99)
	v := 0.0
	for i := range xs {
		state = state*6364136223846793005 + 1442695040888963407
		u := float64(state>>11)/float64(1<<53) - 0.5
		v = 0.98*v + u
		xs[i] = v
	}
	ess := EffectiveSampleSize(xs)
	if ess > 500 {
		t.Errorf("ESS of AR(0.98) sequence = %v, want far below n", ess)
	}
}

func TestAsciiPlotContainsSeries(t *testing.T) {
	series := map[string][]Point{
		"alpha": {{0, 0}, {1, 1}, {2, 4}},
		"beta":  {{0, 4}, {1, 2}, {2, 0}},
	}
	out := AsciiPlot("Test Plot", "x", "y", series, 40, 12)
	for _, want := range []string{"Test Plot", "alpha", "beta", "*", "o", "x  (y: y)"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestAsciiPlotEmpty(t *testing.T) {
	out := AsciiPlot("Empty", "x", "y", map[string][]Point{}, 40, 10)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty plot output: %q", out)
	}
}

func TestAsciiPlotSinglePoint(t *testing.T) {
	out := AsciiPlot("One", "x", "y", map[string][]Point{"s": {{1, 1}}}, 30, 10)
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}
