// Package stats provides the summary statistics and text plotting used by
// the benchmark harness to reproduce the paper's evaluation: means and
// standard deviations for Table 1, the Pearson correlation the paper uses
// as its accuracy criterion (r = 0.905, §6.1), autocorrelation-based
// effective sample sizes for chain diagnostics, and ASCII renderings of
// the figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (NaN for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (NaN for fewer than two
// points).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient between two
// equal-length series, the accuracy measure of paper §6.1.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Autocorrelation returns the lag-k sample autocorrelation of the series.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n || n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		den += (xs[i] - m) * (xs[i] - m)
	}
	if den == 0 {
		return math.NaN()
	}
	for i := 0; i+lag < n; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// EffectiveSampleSize estimates the number of independent draws in an
// autocorrelated chain trace using the initial-positive-sequence
// truncation of the integrated autocorrelation time.
func EffectiveSampleSize(xs []float64) float64 {
	n := len(xs)
	if n < 10 {
		return float64(n)
	}
	tau := 1.0
	for lag := 1; lag < n/2; lag++ {
		rho := Autocorrelation(xs, lag)
		if math.IsNaN(rho) || rho <= 0 {
			break
		}
		tau += 2 * rho
	}
	ess := float64(n) / tau
	if ess > float64(n) {
		return float64(n)
	}
	return ess
}

// Point is one (x, y) observation of a plotted series.
type Point struct{ X, Y float64 }

// AsciiPlot renders points as a fixed-size scatter/line chart in plain
// text, the medium the benchmark harness uses to regenerate the paper's
// figures. Width and height are interior cell counts; sensible minimums
// are enforced.
func AsciiPlot(title, xlabel, ylabel string, series map[string][]Point, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, pts := range series {
		for _, p := range pts {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}
	names := sortedKeys(series)
	for si, name := range names {
		mark := markers[si%len(markers)]
		for _, p := range series[name] {
			c := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			r := height - 1 - int(math.Round((p.Y-minY)/(maxY-minY)*float64(height-1)))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = mark
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for si, name := range names {
		fmt.Fprintf(&sb, "  %c = %s\n", markers[si%len(markers)], name)
	}
	fmt.Fprintf(&sb, "%11.4g ┤", maxY)
	sb.Write(grid[0])
	sb.WriteByte('\n')
	for r := 1; r < height-1; r++ {
		sb.WriteString(strings.Repeat(" ", 11) + " │")
		sb.Write(grid[r])
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%11.4g ┤", minY)
	sb.Write(grid[height-1])
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%12s└%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&sb, "%13s%-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX)
	fmt.Fprintf(&sb, "%13s%s  (y: %s)\n", "", xlabel, ylabel)
	return sb.String()
}

func sortedKeys(m map[string][]Point) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
