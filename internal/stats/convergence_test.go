package stats

import (
	"math"
	"testing"
)

// lcg produces a deterministic pseudo-random stream for diagnostics tests.
type lcg uint64

func (l *lcg) next() float64 {
	*l = (*l)*6364136223846793005 + 1442695040888963407
	return float64(uint64(*l)>>11) / float64(1<<53)
}

func (l *lcg) gauss() float64 {
	// Irwin-Hall approximation suffices here.
	s := 0.0
	for i := 0; i < 12; i++ {
		s += l.next()
	}
	return s - 6
}

func TestGelmanRubinMixedChains(t *testing.T) {
	r := lcg(7)
	chains := make([][]float64, 4)
	for i := range chains {
		chains[i] = make([]float64, 2000)
		for j := range chains[i] {
			chains[i][j] = r.gauss()
		}
	}
	rhat := GelmanRubin(chains)
	if math.Abs(rhat-1) > 0.02 {
		t.Errorf("R-hat for identical-distribution chains = %v, want ~1", rhat)
	}
}

func TestGelmanRubinSeparatedChains(t *testing.T) {
	r := lcg(8)
	chains := make([][]float64, 3)
	for i := range chains {
		chains[i] = make([]float64, 500)
		for j := range chains[i] {
			chains[i][j] = r.gauss() + float64(i)*10 // far-apart modes
		}
	}
	rhat := GelmanRubin(chains)
	if rhat < 2 {
		t.Errorf("R-hat for separated chains = %v, want >> 1", rhat)
	}
}

func TestGelmanRubinDegenerate(t *testing.T) {
	if !math.IsNaN(GelmanRubin(nil)) {
		t.Error("nil chains should be NaN")
	}
	if !math.IsNaN(GelmanRubin([][]float64{{1, 2, 3}})) {
		t.Error("single chain should be NaN")
	}
	if !math.IsNaN(GelmanRubin([][]float64{{1, 2}, {1}})) {
		t.Error("ragged chains should be NaN")
	}
	if got := GelmanRubin([][]float64{{5, 5, 5}, {5, 5, 5}}); got != 1 {
		t.Errorf("constant identical chains R-hat = %v, want 1", got)
	}
}

func TestGewekeStationary(t *testing.T) {
	r := lcg(9)
	trace := make([]float64, 4000)
	for i := range trace {
		trace[i] = r.gauss()
	}
	z := Geweke(trace, 0.2, 0.5)
	if math.IsNaN(z) || math.Abs(z) > 3 {
		t.Errorf("Geweke z on stationary trace = %v, want |z| < 3", z)
	}
}

func TestGewekeDriftingTrace(t *testing.T) {
	// A trace with a strong initial transient: early mean far from late
	// mean.
	r := lcg(10)
	trace := make([]float64, 4000)
	for i := range trace {
		drift := 0.0
		if i < 800 {
			drift = 20 * (1 - float64(i)/800)
		}
		trace[i] = r.gauss() + drift
	}
	z := Geweke(trace, 0.2, 0.5)
	if math.IsNaN(z) || math.Abs(z) < 2.5 {
		t.Errorf("Geweke z on transient trace = %v, want |z| >= 2.5", z)
	}
}

func TestGewekeDegenerate(t *testing.T) {
	if !math.IsNaN(Geweke(make([]float64, 5), 0.2, 0.5)) {
		t.Error("short trace should be NaN")
	}
	if !math.IsNaN(Geweke(make([]float64, 100), 0.7, 0.5)) {
		t.Error("overlapping fractions should be NaN")
	}
}

func TestDetectBurninFindsTransient(t *testing.T) {
	r := lcg(11)
	n := 8000
	transient := 1000
	trace := make([]float64, n)
	for i := range trace {
		drift := 0.0
		if i < transient {
			drift = 30 * (1 - float64(i)/float64(transient))
		}
		trace[i] = r.gauss() + drift
	}
	cut := DetectBurnin(trace)
	if cut < transient/4 {
		t.Errorf("burn-in cut %d far below the %d-draw transient", cut, transient)
	}
	if cut > n/2 {
		t.Errorf("burn-in cut %d exceeds half the trace", cut)
	}
	// The post-cut trace must pass the stationarity check.
	if z := Geweke(trace[cut:], 0.2, 0.5); math.Abs(z) > 2.5 {
		t.Errorf("post-cut Geweke z = %v", z)
	}
}

func TestDetectBurninStationaryTraceSmallCut(t *testing.T) {
	r := lcg(12)
	trace := make([]float64, 4000)
	for i := range trace {
		trace[i] = r.gauss()
	}
	if cut := DetectBurnin(trace); cut > len(trace)/8 {
		t.Errorf("burn-in cut %d on an already-stationary trace, want small", cut)
	}
}

func TestDetectBurninShortTrace(t *testing.T) {
	if cut := DetectBurnin(make([]float64, 10)); cut != 5 {
		t.Errorf("short trace cut = %d, want half", cut)
	}
}
