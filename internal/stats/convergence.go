package stats

import (
	"math"
)

// Convergence diagnostics for the burn-in problem of paper §2.3: "one
// such method is to use a sample statistic ... to determine if the chain
// has stabilized", and "a possible counter to the risk of premature
// termination is to compare the output of multiple chains". GelmanRubin
// implements the multi-chain comparison; Geweke implements the
// within-chain stabilization check; DetectBurnin applies Geweke over
// growing prefixes to propose a burn-in cutoff.

// GelmanRubin returns the potential scale reduction factor R-hat over
// parallel chain traces of equal length: the ratio of pooled-variance to
// within-chain variance estimates of the target variance. Values near 1
// indicate the chains have mixed into the same distribution; values well
// above 1 indicate insufficient burn-in. NaN for fewer than 2 chains or
// chains shorter than 2 draws.
func GelmanRubin(chains [][]float64) float64 {
	m := len(chains)
	if m < 2 {
		return math.NaN()
	}
	n := len(chains[0])
	if n < 2 {
		return math.NaN()
	}
	for _, c := range chains {
		if len(c) != n {
			return math.NaN()
		}
	}
	means := make([]float64, m)
	vars := make([]float64, m)
	for i, c := range chains {
		means[i] = Mean(c)
		vars[i] = Variance(c)
	}
	w := Mean(vars)      // W: mean within-chain variance
	b := Variance(means) // B/n: between-chain variance of the chain means
	if w == 0 {
		if b == 0 {
			return 1
		}
		return math.Inf(1)
	}
	nf := float64(n)
	varPlus := (nf-1)/nf*w + b // pooled posterior variance estimate
	return math.Sqrt(varPlus / w)
}

// Geweke returns the z-score comparing the mean of the first firstFrac of
// the trace against the last lastFrac, using spectral-density-free
// standard errors from the effective sample sizes. |z| below ~2 is
// consistent with stationarity.
func Geweke(trace []float64, firstFrac, lastFrac float64) float64 {
	n := len(trace)
	if n < 20 || firstFrac <= 0 || lastFrac <= 0 || firstFrac+lastFrac > 1 {
		return math.NaN()
	}
	a := trace[:int(firstFrac*float64(n))]
	b := trace[n-int(lastFrac*float64(n)):]
	if len(a) < 5 || len(b) < 5 {
		return math.NaN()
	}
	seA := StdDev(a) / math.Sqrt(EffectiveSampleSize(a))
	seB := StdDev(b) / math.Sqrt(EffectiveSampleSize(b))
	den := math.Sqrt(seA*seA + seB*seB)
	if den == 0 {
		return 0
	}
	return (Mean(a) - Mean(b)) / den
}

// DetectBurnin proposes a burn-in cutoff for the trace: the smallest
// prefix length (on a geometric grid) whose removal leaves a trace that
// passes the Geweke check at several window splits — a single split is
// easily fooled by a smooth residual trend. It returns len(trace)/2 when
// no prefix passes, matching the conservative practice of discarding half
// the run.
func DetectBurnin(trace []float64) int {
	n := len(trace)
	if n < 40 {
		return n / 2
	}
	splits := [][2]float64{{0.1, 0.5}, {0.2, 0.5}, {0.3, 0.4}}
	for cut := n / 64; cut < n/2; cut = cut*2 + 1 {
		ok := true
		for _, s := range splits {
			z := Geweke(trace[cut:], s[0], s[1])
			if math.IsNaN(z) || math.Abs(z) >= 2 {
				ok = false
				break
			}
		}
		if ok {
			return cut
		}
	}
	return n / 2
}
