package stats

import "math"

// onlineMaxMeans caps the stored batch means. When the cap is hit,
// adjacent pairs merge and the batch size doubles, so memory stays
// fixed while every observed value keeps contributing.
const onlineMaxMeans = 256

// OnlineDiag accumulates convergence diagnostics over a draw stream in
// bounded memory. It keeps two fixed-size summaries:
//
//   - a ring of the most recent (optionally subsampled) values, from
//     which ESS is estimated: the window yields the chain's sampling
//     efficiency (effective draws per draw), which scales to the full
//     stream length;
//   - doubling batch means, from which a split Gelman-Rubin statistic
//     compares the first and second halves of the run.
//
// Every update is a pure, order-deterministic function of the stream,
// so two replays of the same draws — including a kill/resume replay
// from the trace sidecar — reach bit-identical states. That is what
// lets the auto-stop rule live inside the sampler without breaking the
// bit-identical resume contract.
type OnlineDiag struct {
	sub  int // subsample stride for the window
	win  []float64
	head int // next ring slot
	full bool
	n    int // total values observed

	means []float64
	bsize int // values per completed batch
	bsum  float64
	bn    int // values in the current partial batch

	scratch []float64 // chronological unroll of win, reused by ESS
}

// NewOnlineDiag returns a diagnostic accumulator whose window holds up
// to window values sampled every subsample-th observation. window <= 0
// defaults to 1024; subsample <= 0 defaults to 1 (no thinning).
// Thinning stretches the window across a longer stretch of the chain,
// which keeps the ESS estimate honest for slowly mixing runs.
func NewOnlineDiag(window, subsample int) *OnlineDiag {
	if window <= 0 {
		window = 1024
	}
	if subsample <= 0 {
		subsample = 1
	}
	return &OnlineDiag{
		sub:   subsample,
		win:   make([]float64, 0, window),
		bsize: 1,
		means: make([]float64, 0, onlineMaxMeans),
	}
}

// Add observes one value.
func (d *OnlineDiag) Add(x float64) {
	if d.n%d.sub == 0 {
		if len(d.win) < cap(d.win) {
			d.win = append(d.win, x)
		} else {
			d.win[d.head] = x
			d.full = true
		}
		d.head = (d.head + 1) % cap(d.win)
	}
	d.n++

	d.bsum += x
	d.bn++
	if d.bn == d.bsize {
		d.means = append(d.means, d.bsum/float64(d.bsize))
		d.bsum = 0
		d.bn = 0
		if len(d.means) == onlineMaxMeans {
			half := d.means[:0]
			for i := 0; i < onlineMaxMeans; i += 2 {
				half = append(half, (d.means[i]+d.means[i+1])/2)
			}
			d.means = half
			d.bsize *= 2
		}
	}
}

// N returns the number of values observed.
func (d *OnlineDiag) N() int { return d.n }

// ESS estimates the effective sample size of the full stream: the
// window's autocorrelation yields an efficiency (effective draws per
// retained draw), scaled by how many retained draws the stream holds.
func (d *OnlineDiag) ESS() float64 {
	if d.n == 0 {
		return 0
	}
	w := d.window()
	if len(w) == 0 {
		return 0
	}
	eff := EffectiveSampleSize(w) / float64(len(w))
	retained := float64((d.n + d.sub - 1) / d.sub)
	return eff * retained
}

// RHat returns the split Gelman-Rubin statistic over the batch means:
// the first half of the run is treated as one chain and the second
// half as another. NaN until at least four completed batches exist.
func (d *OnlineDiag) RHat() float64 {
	m := len(d.means)
	if m < 4 {
		return math.NaN()
	}
	// An odd count would make the halves ragged; drop the oldest mean.
	eq := d.means[m%2:]
	h := len(eq) / 2
	return GelmanRubin([][]float64{eq[:h], eq[h:]})
}

// window returns the ring in chronological order, reusing scratch.
func (d *OnlineDiag) window() []float64 {
	if !d.full {
		return d.win
	}
	if cap(d.scratch) < len(d.win) {
		d.scratch = make([]float64, len(d.win))
	}
	s := d.scratch[:len(d.win)]
	n := copy(s, d.win[d.head:])
	copy(s[n:], d.win[:d.head])
	return s
}
