package sched

import (
	"container/heap"
	"errors"
	"strings"
	"testing"
	"time"

	"mpcgs/internal/ckpt"
	"mpcgs/internal/device"
	"mpcgs/internal/leakcheck"
)

// waitTicket blocks until the ticket settles and returns its result.
func waitTicket(t *testing.T, tk *Ticket) *Result {
	t.Helper()
	select {
	case <-tk.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("ticket %q did not settle", tk.Name())
	}
	st, _ := tk.State()
	if st.Result == nil {
		t.Fatalf("ticket %q settled without a result", tk.Name())
	}
	return st.Result
}

func TestQueueHeapOrdering(t *testing.T) {
	mk := func(seq int64, priority int, usage int64) *qrunner {
		return &qrunner{seq: seq, priority: priority, usage: usage}
	}
	var h qheap
	// Pushed shuffled: priority dominates, then lower tenant usage, then
	// submission order.
	heap.Push(&h, mk(3, 0, 100))
	heap.Push(&h, mk(1, 0, 100))
	heap.Push(&h, mk(4, 1, 900))
	heap.Push(&h, mk(2, 0, 5))
	heap.Push(&h, mk(5, 1, 900))
	wantSeq := []int64{4, 5, 2, 1, 3}
	for i, want := range wantSeq {
		r := heap.Pop(&h).(*qrunner)
		if r.seq != want {
			t.Fatalf("pop %d: got seq %d, want %d", i, r.seq, want)
		}
	}
}

// TestQueueMatchesStandalone pins the dynamic queue's determinism
// contract: a job submitted to a loaded queue computes exactly what it
// computes alone.
func TestQueueMatchesStandalone(t *testing.T) {
	const workers = 2
	jobs := []Job{
		quickJob("q-gmh", testAlignment(t, 6, 60, 831), "gmh", 841),
		quickJob("q-mh", testAlignment(t, 7, 80, 832), "mh", 842),
		quickJob("q-heated", testAlignment(t, 6, 50, 833), "heated", 843),
	}
	want := make([]Result, len(jobs))
	for i, j := range jobs {
		want[i] = standalone(t, j, workers)
	}

	pool := device.NewPool(workers)
	defer pool.Close()
	q := NewQueue(pool, QueueOptions{Drivers: 2, Quantum: 16})
	defer q.Close()
	tickets := make([]*Ticket, len(jobs))
	for i, j := range jobs {
		tk, err := q.Submit(j, SubmitOptions{Priority: i % 2})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		res := waitTicket(t, tk)
		requireIdentical(t, jobs[i].Name, want[i], *res)
	}
	if n := q.Pending(); n != 0 {
		t.Errorf("Pending after all settled = %d, want 0", n)
	}
}

// TestQueueTenantFairness drives one long and one short job from
// different tenants through a single driver: usage-based ordering must
// interleave them so the short job finishes while the long one is still
// running (seq-only ordering would run the first submission to
// completion).
func TestQueueTenantFairness(t *testing.T) {
	long := quickJob("fair-long", testAlignment(t, 6, 60, 851), "mh", 861)
	long.Samples = 4000
	short := quickJob("fair-short", testAlignment(t, 6, 60, 852), "mh", 862)
	short.Samples = 200

	pool := device.NewPool(1)
	defer pool.Close()
	q := NewQueue(pool, QueueOptions{Drivers: 1, Quantum: 16})
	defer q.Close()
	longTk, err := q.Submit(long, SubmitOptions{Tenant: "tenant-a"})
	if err != nil {
		t.Fatal(err)
	}
	shortTk, err := q.Submit(short, SubmitOptions{Tenant: "tenant-b"})
	if err != nil {
		t.Fatal(err)
	}
	waitTicket(t, shortTk)
	if st, _ := longTk.State(); st.Status.Terminal() {
		t.Fatalf("long job settled before the short job despite fairness interleaving (long %v)", st.Status)
	}
	waitTicket(t, longTk)
}

// TestQueuePriorityPreemptsFairness submits a long high-priority job
// after a long low-priority one: from the next quantum boundary on, the
// single driver must run only the high-priority job until it settles.
func TestQueuePriorityPreemptsFairness(t *testing.T) {
	low := quickJob("prio-low", testAlignment(t, 6, 60, 871), "mh", 881)
	low.Samples = 4000
	high := quickJob("prio-high", testAlignment(t, 6, 60, 872), "mh", 882)
	high.Samples = 1500

	pool := device.NewPool(1)
	defer pool.Close()
	q := NewQueue(pool, QueueOptions{Drivers: 1, Quantum: 8})
	defer q.Close()
	lowTk, err := q.Submit(low, SubmitOptions{Tenant: "tenant-a", Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	highTk, err := q.Submit(high, SubmitOptions{Tenant: "tenant-b", Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitTicket(t, highTk)
	if st, _ := lowTk.State(); st.Status.Terminal() {
		t.Fatal("low-priority job settled before the high-priority job")
	}
	waitTicket(t, lowTk)
}

// TestQueueDrainResumeBitIdentical is the durability contract at the
// queue level: drain a running job mid-flight, resume it on a fresh
// queue from its checkpoint directory, and the completed trace must be
// bit-identical to the uninterrupted standalone run.
func TestQueueDrainResumeBitIdentical(t *testing.T) {
	job := quickJob("drain-job", testAlignment(t, 6, 60, 891), "gmh", 892)
	job.Samples = 2000
	want := standalone(t, job, 2)
	dir := t.TempDir()

	q := NewQueue(device.NewPool(2), QueueOptions{Drivers: 1, Quantum: 16})
	tk, err := q.Submit(job, SubmitOptions{Checkpoint: CheckpointOptions{Dir: dir, Every: 64}})
	if err != nil {
		t.Fatal(err)
	}
	// Let it make some progress, then drain at a quantum boundary.
	deadline := time.Now().Add(time.Minute)
	for {
		if st, _ := tk.State(); st.Steps > 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}
	st, _ := tk.State()
	if st.Status.Terminal() {
		t.Skip("job finished before the drain; nothing to resume")
	}
	if st.Status != TicketPaused {
		t.Fatalf("post-drain status %v, want paused", st.Status)
	}

	resume, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	q2 := NewQueue(device.NewPool(2), QueueOptions{Drivers: 1, Quantum: 16})
	tk2, err := q2.Submit(job, SubmitOptions{
		Checkpoint: CheckpointOptions{Dir: dir, Every: 64},
		Resume:     resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := waitTicket(t, tk2)
	requireIdentical(t, "drain-resume", want, *res)
	if res.Steps != want.Steps {
		t.Errorf("resumed steps %d != standalone %d", res.Steps, want.Steps)
	}
	if err := q2.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestQueueResumeRejectsChangedSpec: a resume whose fingerprint does not
// match fails the ticket, not the submission.
func TestQueueResumeRejectsChangedSpec(t *testing.T) {
	job := quickJob("fp-job", testAlignment(t, 6, 60, 893), "gmh", 894)
	dir := t.TempDir()

	q := NewQueue(device.NewPool(2), QueueOptions{Drivers: 1, Quantum: 8})
	tk, err := q.Submit(job, SubmitOptions{Checkpoint: CheckpointOptions{Dir: dir, Every: 32}})
	if err != nil {
		t.Fatal(err)
	}
	waitTicket(t, tk)
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}

	resume, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	changed := job
	changed.Seed += 1000
	q2 := NewQueue(device.NewPool(2), QueueOptions{})
	defer q2.Close()
	tk2, err := q2.Submit(changed, SubmitOptions{Resume: resume})
	if err != nil {
		t.Fatal(err)
	}
	res := waitTicket(t, tk2)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "fingerprint mismatch") {
		t.Fatalf("resume with changed spec: err = %v, want fingerprint mismatch", res.Err)
	}
}

// TestQueueResumeRestoresFinishedJob: resubmitting a finished job with
// its checkpoint settles immediately from the recorded result.
func TestQueueResumeRestoresFinishedJob(t *testing.T) {
	job := quickJob("done-job", testAlignment(t, 6, 60, 895), "gmh", 896)
	dir := t.TempDir()

	q := NewQueue(device.NewPool(2), QueueOptions{})
	tk, err := q.Submit(job, SubmitOptions{Checkpoint: CheckpointOptions{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	first := waitTicket(t, tk)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}

	resume, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	q2 := NewQueue(device.NewPool(2), QueueOptions{})
	defer q2.Close()
	tk2, err := q2.Submit(job, SubmitOptions{Resume: resume})
	if err != nil {
		t.Fatal(err)
	}
	res := waitTicket(t, tk2)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Resumed {
		t.Error("restored job not marked Resumed")
	}
	if res.Theta != first.Theta {
		t.Errorf("restored theta %v != original %v", res.Theta, first.Theta)
	}
	if res.Steps != first.Steps {
		t.Errorf("restored steps %d != original %d", res.Steps, first.Steps)
	}
}

func TestQueueSubmitValidation(t *testing.T) {
	q := NewQueue(device.NewPool(1), QueueOptions{Drivers: 1})
	defer q.Close()

	bad := quickJob("bad", testAlignment(t, 6, 40, 897), "gmh", 898)
	bad.InitialTheta = -1
	if _, err := q.Submit(bad, SubmitOptions{}); err == nil {
		t.Fatal("negative theta accepted")
	}
	unknown := quickJob("unk", testAlignment(t, 6, 40, 897), "nope", 898)
	if _, err := q.Submit(unknown, SubmitOptions{}); err == nil {
		t.Fatal("unknown sampler accepted")
	}
	if n := q.Pending(); n != 0 {
		t.Fatalf("rejected submissions left Pending = %d", n)
	}

	// A rejected submission must not wedge the queue.
	ok := quickJob("ok", testAlignment(t, 6, 40, 897), "gmh", 899)
	tk, err := q.Submit(ok, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res := waitTicket(t, tk); res.Err != nil {
		t.Fatal(res.Err)
	}
}

func TestQueueRejectsSubmitAfterShutdown(t *testing.T) {
	job := quickJob("late", testAlignment(t, 6, 40, 899), "gmh", 900)

	q := NewQueue(device.NewPool(1), QueueOptions{Drivers: 1})
	if err := q.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(job, SubmitOptions{}); !errors.Is(err, ErrQueueDraining) {
		t.Fatalf("submit after Drain: err = %v, want ErrQueueDraining", err)
	}

	q2 := NewQueue(device.NewPool(1), QueueOptions{Drivers: 1})
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := q2.Submit(job, SubmitOptions{}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("submit after Close: err = %v, want ErrQueueClosed", err)
	}
}

// TestQueueCloseLeaksNothing shuts a loaded queue down mid-run and
// verifies no goroutines survive.
func TestQueueCloseLeaksNothing(t *testing.T) {
	base := leakcheck.Snapshot()
	jobs := []Job{
		quickJob("leak-a", testAlignment(t, 6, 60, 901), "gmh", 911),
		quickJob("leak-b", testAlignment(t, 6, 60, 902), "mh", 912),
	}
	for i := range jobs {
		jobs[i].Samples = 3000
	}
	q := NewQueue(nil, QueueOptions{Drivers: 2, Quantum: 16})
	for _, j := range jobs {
		if _, err := q.Submit(j, SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	leakcheck.Verify(t, base)
}

func TestCheckpointKey(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		"Pop A":      "pop_a",
		"pop/a":      "pop_a",
		"a.b-c_d":    "a.b-c_d",
		"..":         "job",
		"":           "job",
		"über":       "_ber",
		"x../../etc": "x.._.._etc",
	}
	for in, want := range cases {
		if got := CheckpointKey(in); got != want {
			t.Errorf("CheckpointKey(%q) = %q, want %q", in, got, want)
		}
	}
}
