package sched

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"mpcgs/internal/device"
)

// BenchmarkBatchThroughput measures the batch mode's headline quantity:
// aggregate throughput (jobs/sec) of J quick-scale estimation jobs
// multiplexed over one shared pool, against the same jobs run
// back-to-back in the one-pool-per-run model. The custom metrics are
//
//	batch-jobs/s   throughput of the shared-pool batch
//	serial-jobs/s  throughput of the back-to-back baseline
//	speedup        their ratio (aggregate batch speedup)
//
// Throughput should rise with J until the pool saturates: a single job
// cannot keep every worker busy through its serial host stages (index
// draws, swap moves, maximization), so concurrent tenants fill the gaps.
// On a single-core runner the two modes tie (speedup ≈ 1): there are no
// idle workers for a second tenant to claim, which is itself the Amdahl
// argument the paper's §3 makes. Each measurement runs the identical job
// list both ways, so the comparison is compute-for-compute.
func BenchmarkBatchThroughput(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	for _, nJobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", nJobs), func(b *testing.B) {
			jobs := make([]Job, nJobs)
			for i := range jobs {
				j := quickJob(fmt.Sprintf("bench%d", i),
					testAlignment(b, 8, 120, 7000+uint64(i)), "gmh", 7100+uint64(i))
				j.Proposals = workers
				j.Burnin, j.Samples, j.EMIterations = 100, 800, 1
				jobs[i] = j
			}
			var serialSec, batchSec float64
			b.ResetTimer()
			for iter := 0; iter < b.N; iter++ {
				start := time.Now()
				for _, j := range jobs {
					standalone(b, j, workers)
				}
				serialSec += time.Since(start).Seconds()

				pool := device.NewPool(workers)
				start = time.Now()
				results, err := RunBatch(context.Background(), pool, jobs, Options{})
				batchSec += time.Since(start).Seconds()
				pool.Close()
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			n := float64(b.N)
			b.ReportMetric(float64(nJobs)*n/batchSec, "batch-jobs/s")
			b.ReportMetric(float64(nJobs)*n/serialSec, "serial-jobs/s")
			b.ReportMetric(serialSec/batchSec, "speedup")
		})
	}
}
