package sched

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mpcgs/internal/phylip"
)

// Manifest is the on-disk description of a batch: optional defaults plus
// one entry per job. It is the input of `mpcgs -batch`.
//
//	{
//	  "defaults": {"sampler": "gmh", "burnin": 500, "samples": 5000, "theta": 1.0},
//	  "jobs": [
//	    {"name": "popA", "phylip": "popA.phy", "seed": 11},
//	    {"name": "popB", "phylip": "popB.phy", "theta": 0.5, "sampler": "heated", "seed": 12}
//	  ]
//	}
//
// Relative phylip paths resolve against the manifest's own directory.
// Job fields left out inherit first from defaults, then from the
// standalone-run defaults (sampler gmh, model f81, burnin 1000,
// samples 10000, 10 EM iterations, seed 1).
type Manifest struct {
	Defaults ManifestJob   `json:"defaults"`
	Jobs     []ManifestJob `json:"jobs"`
}

// ManifestJob is one manifest entry. Phylip is required on jobs (it is
// meaningless in defaults); everything else is optional. Proposals and
// Chains are pointers so an explicit zero — a spec that can never run —
// is distinguishable from an omitted field and rejected at load time
// instead of surfacing as a confusing mid-run default.
type ManifestJob struct {
	Name         string  `json:"name"`
	Phylip       string  `json:"phylip"`
	Theta        float64 `json:"theta"`
	Sampler      string  `json:"sampler"`
	Model        string  `json:"model"`
	Proposals    *int    `json:"proposals,omitempty"`
	Chains       *int    `json:"chains,omitempty"`
	Burnin       int     `json:"burnin"`
	Samples      int     `json:"samples"`
	EMIterations int     `json:"em_iterations"`
	Seed         uint64  `json:"seed"`
	// Tempering knobs of the heated sampler. MaxTemp 0 selects the
	// sampler default (8); AdaptLadder is a pointer so a per-job false
	// can override a defaults-level true; SwapWindow 0 selects the
	// controller default. All are rejected on jobs whose sampler is not
	// "heated" — a knob that would be silently ignored is a spec bug.
	MaxTemp     float64 `json:"max_temp"`
	SwapEvery   int     `json:"swap_every"`
	AdaptLadder *bool   `json:"adapt_ladder,omitempty"`
	SwapWindow  int     `json:"swap_window"`
	// Convergence stop targets: a sampling pass ends early once the
	// recorder's online ESS reaches ESSTarget (and, when RHatTarget is
	// also set, the online split R-hat falls to it). Zero disables the
	// rule. Rejected on multichain jobs, whose pooled quota makes a
	// per-chain target ill-defined.
	ESSTarget  float64 `json:"ess_target"`
	RHatTarget float64 `json:"rhat_target"`
}

// merged returns the entry with zero-valued fields filled from defaults.
func (m ManifestJob) merged(d ManifestJob) ManifestJob {
	if m.Theta == 0 {
		m.Theta = d.Theta
	}
	if m.Sampler == "" {
		m.Sampler = d.Sampler
	}
	if m.Model == "" {
		m.Model = d.Model
	}
	if m.Proposals == nil {
		m.Proposals = d.Proposals
	}
	if m.Chains == nil {
		m.Chains = d.Chains
	}
	if m.Burnin == 0 {
		m.Burnin = d.Burnin
	}
	if m.Samples == 0 {
		m.Samples = d.Samples
	}
	if m.EMIterations == 0 {
		m.EMIterations = d.EMIterations
	}
	if m.Seed == 0 {
		m.Seed = d.Seed
	}
	// Tempering defaults are inherited only by jobs that resolve to the
	// heated sampler: a defaults-level ladder configuration must not
	// poison the non-heated jobs of a mixed manifest (and validate
	// rejects these knobs only when a job sets them directly).
	if m.Sampler == "heated" {
		if m.MaxTemp == 0 {
			m.MaxTemp = d.MaxTemp
		}
		if m.SwapEvery == 0 {
			m.SwapEvery = d.SwapEvery
		}
		if m.AdaptLadder == nil {
			m.AdaptLadder = d.AdaptLadder
		}
		if m.SwapWindow == 0 {
			m.SwapWindow = d.SwapWindow
		}
	}
	// Stop targets are meaningful for every sampler except multichain, so
	// defaults-level targets must not poison a multichain job in a mixed
	// manifest.
	if m.Sampler != "multichain" {
		if m.ESSTarget == 0 {
			m.ESSTarget = d.ESSTarget
		}
		if m.RHatTarget == 0 {
			m.RHatTarget = d.RHatTarget
		}
	}
	return m
}

// validate rejects spec values that could only fail later, mid-run, with
// a less useful error: checkpoint resume additionally keys job state by
// name, so name collisions must die here too.
func (m ManifestJob) validate() error {
	if m.Theta < 0 {
		return fmt.Errorf("theta %v must not be negative", m.Theta)
	}
	if m.Proposals != nil && *m.Proposals <= 0 {
		return fmt.Errorf("proposal count %d must be positive (omit the field for the pool default)", *m.Proposals)
	}
	if m.Chains != nil && *m.Chains <= 0 {
		return fmt.Errorf("chain count %d must be positive (omit the field for the pool default)", *m.Chains)
	}
	if m.Burnin < 0 {
		return fmt.Errorf("burn-in %d must not be negative", m.Burnin)
	}
	if m.Samples < 0 {
		return fmt.Errorf("sample count %d must not be negative", m.Samples)
	}
	if m.EMIterations < 0 {
		return fmt.Errorf("EM iteration count %d must not be negative", m.EMIterations)
	}
	// Tempering knobs mirror the heated sampler's Start validation, so a
	// bad manifest dies at load time with the job's name attached instead
	// of mid-batch. On non-heated samplers the knobs would be silently
	// ignored, which hides spec mistakes — reject them there too.
	if m.MaxTemp != 0 && m.MaxTemp < 1 {
		return fmt.Errorf("max_temp %v must be at least 1 (omit or 0 for the default)", m.MaxTemp)
	}
	if m.SwapEvery < 0 {
		return fmt.Errorf("swap_every %d must not be negative", m.SwapEvery)
	}
	if m.SwapWindow < 0 {
		return fmt.Errorf("swap_window %d must not be negative", m.SwapWindow)
	}
	if m.Sampler != "heated" {
		if m.MaxTemp != 0 || m.SwapEvery != 0 || m.AdaptLadder != nil || m.SwapWindow != 0 {
			return fmt.Errorf("max_temp/swap_every/adapt_ladder/swap_window are only meaningful for the heated sampler (job resolves to %q)", m.Sampler)
		}
	}
	if m.ESSTarget < 0 {
		return fmt.Errorf("ess_target %v must not be negative", m.ESSTarget)
	}
	if m.RHatTarget != 0 && m.RHatTarget <= 1 {
		return fmt.Errorf("rhat_target %v must exceed 1 (omit or 0 to disable)", m.RHatTarget)
	}
	if m.Sampler == "multichain" && (m.ESSTarget != 0 || m.RHatTarget != 0) {
		return fmt.Errorf("ess_target/rhat_target are not supported by the multichain sampler")
	}
	return nil
}

// LoadManifest parses a batch manifest and loads every job's alignment.
func LoadManifest(path string) ([]Job, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m.Jobs) == 0 {
		return nil, fmt.Errorf("%s: manifest has no jobs", path)
	}
	base := filepath.Dir(path)
	jobs := make([]Job, 0, len(m.Jobs))
	seen := make(map[string]int, len(m.Jobs))
	seenKey := make(map[string]int, len(m.Jobs))
	keyName := make(map[string]string, len(m.Jobs))
	for i, entry := range m.Jobs {
		entry = entry.merged(m.Defaults)
		if entry.Phylip == "" {
			return nil, fmt.Errorf("%s: job %d (%q) has no phylip file", path, i, entry.Name)
		}
		if err := entry.validate(); err != nil {
			return nil, fmt.Errorf("%s: job %d (%q): %w", path, i, entry.Name, err)
		}
		seqPath := entry.Phylip
		if !filepath.IsAbs(seqPath) {
			seqPath = filepath.Join(base, seqPath)
		}
		aln, err := loadAlignment(seqPath)
		if err != nil {
			return nil, fmt.Errorf("%s: job %d (%q): %w", path, i, entry.Name, err)
		}
		name := entry.Name
		if name == "" {
			name = strings.TrimSuffix(filepath.Base(entry.Phylip), filepath.Ext(entry.Phylip))
		}
		if prev, dup := seen[name]; dup {
			return nil, fmt.Errorf("%s: jobs %d and %d share the name %q; job names must be unique (they key results and checkpoint state)",
				path, prev, i, name)
		}
		seen[name] = i
		// Distinct names can still resolve to the same durable-state
		// directory once sanitized for the filesystem ("pop A" and
		// "pop/a" both become "pop_a"): two jobs sharing a checkpoint
		// directory would silently overwrite each other's resume state,
		// so a key collision is as fatal as a duplicate name.
		key := CheckpointKey(name)
		if prev, dup := seenKey[key]; dup {
			return nil, fmt.Errorf("%s: jobs %d (%q) and %d (%q) resolve to the same checkpoint key %q; rename one so their durable state cannot share a directory",
				path, prev, keyName[key], i, name, key)
		}
		seenKey[key] = i
		keyName[key] = name
		job := Job{
			Name:         name,
			Alignment:    aln,
			InitialTheta: entry.Theta,
			Sampler:      entry.Sampler,
			Model:        entry.Model,
			Burnin:       entry.Burnin,
			Samples:      entry.Samples,
			EMIterations: entry.EMIterations,
			Seed:         entry.Seed,
			MaxTemp:      entry.MaxTemp,
			SwapEvery:    entry.SwapEvery,
			SwapWindow:   entry.SwapWindow,
			ESSTarget:    entry.ESSTarget,
			RHatTarget:   entry.RHatTarget,
		}
		if entry.AdaptLadder != nil {
			job.AdaptLadder = *entry.AdaptLadder
		}
		if entry.Proposals != nil {
			job.Proposals = *entry.Proposals
		}
		if entry.Chains != nil {
			job.Chains = *entry.Chains
		}
		jobs = append(jobs, job)
	}
	return jobs, nil
}

func loadAlignment(path string) (*phylip.Alignment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	aln, err := phylip.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return aln, nil
}
