package sched

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"sync"

	"mpcgs/internal/ckpt"
)

// CheckpointOptions enables periodic batch checkpointing.
type CheckpointOptions struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// Every is the per-job snapshot cadence in sampler transitions.
	// Non-positive selects 1000. Snapshots are only ever taken by the
	// driver that owns the job, after its quantum — i.e. at a step
	// boundary, the one point where a run's state is consistent — so a
	// checkpoint can never observe a job mid-transition no matter how the
	// drivers are scheduled.
	Every int
}

func (c CheckpointOptions) enabled() bool { return c.Dir != "" }

func (c CheckpointOptions) every() int {
	if c.Every <= 0 {
		return 1000
	}
	return c.Every
}

// Fingerprint identifies a job spec and its data: resume refuses to apply
// a snapshot to a job whose fingerprint changed, because a changed spec
// (or dataset) makes the saved chain state meaningless. It is computed
// over the defaults-applied job, so the effective configuration —
// including proposal/chain counts that default to the pool's worker
// count — is what must match.
func Fingerprint(j Job) string {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeInt := func(v uint64) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], v)
		h.Write(n[:])
	}
	writeStr("mpcgs-job-v1")
	writeStr(j.Name)
	writeStr(j.Sampler)
	writeStr(j.Model)
	writeInt(uint64(j.Proposals))
	writeInt(uint64(j.Chains))
	writeInt(uint64(j.Burnin))
	writeInt(uint64(j.Samples))
	writeInt(uint64(j.EMIterations))
	writeInt(j.Seed)
	writeInt(math.Float64bits(j.InitialTheta))
	// Tempering knobs joined the spec after v1 checkpoints shipped. They
	// are hashed only when any is set, so every pre-existing job spec
	// keeps its v1 fingerprint and old checkpoints stay resumable.
	if j.MaxTemp != 0 || j.SwapEvery != 0 || j.AdaptLadder || j.SwapWindow != 0 {
		writeStr("tempering")
		writeInt(math.Float64bits(j.MaxTemp))
		writeInt(uint64(j.SwapEvery))
		adapt := uint64(0)
		if j.AdaptLadder {
			adapt = 1
		}
		writeInt(adapt)
		writeInt(uint64(j.SwapWindow))
	}
	// Convergence stop targets joined the spec after v1 checkpoints
	// shipped; the same only-if-set rule keeps old fingerprints stable.
	if j.ESSTarget != 0 || j.RHatTarget != 0 {
		writeStr("stoptargets")
		writeInt(math.Float64bits(j.ESSTarget))
		writeInt(math.Float64bits(j.RHatTarget))
	}
	if j.Alignment != nil {
		writeInt(uint64(j.Alignment.NSeq()))
		for i, name := range j.Alignment.Names {
			writeStr(name)
			writeStr(j.Alignment.Seqs[i].String())
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ckptWriter maintains the in-memory image of the batch checkpoint and
// writes it to disk atomically. Entries are only mutated by the driver
// that owns the corresponding job (or during single-threaded admission),
// so the mutex only serializes the image against concurrent flushes.
type ckptWriter struct {
	opts CheckpointOptions

	mu       sync.Mutex
	batch    ckpt.Batch
	firstErr error
}

func newCkptWriter(opts CheckpointOptions, nJobs int) *ckptWriter {
	if !opts.enabled() {
		return nil
	}
	return &ckptWriter{
		opts:  opts,
		batch: ckpt.Batch{Jobs: make([]ckpt.BatchJob, nJobs)},
	}
}

// initJob registers a job's identity. Until some real state lands (a
// snapshot, a result, an error) the entry has no status and flush elides
// it from the file; a resume starts such a job fresh.
func (w *ckptWriter) initJob(index int, name, fingerprint string) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.batch.Jobs[index] = ckpt.BatchJob{Name: name, Fingerprint: fingerprint}
}

// keep carries a prior checkpoint entry forward unchanged (finished and
// failed jobs, and paused jobs until their first new snapshot).
func (w *ckptWriter) keep(index int, entry ckpt.BatchJob) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.batch.Jobs[index] = entry
}

// setPaused records a job's resumable snapshot.
func (w *ckptWriter) setPaused(index int, em *ckpt.EMState, steps int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	j := &w.batch.Jobs[index]
	j.Status = ckpt.StatusPaused
	j.Steps = steps
	j.EM = em
	j.Theta, j.History, j.Error = "", nil, ""
}

// setDone records a finished job's result.
func (w *ckptWriter) setDone(index int, res *Result) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	j := &w.batch.Jobs[index]
	j.Status = ckpt.StatusDone
	j.Steps = res.Steps
	j.Theta = strconv.FormatFloat(res.Theta, 'x', -1, 64)
	j.History = ckpt.EncodeHistory(res.History)
	j.EM, j.Error = nil, ""
}

// setFailed records a job's terminal error.
func (w *ckptWriter) setFailed(index int, err error, steps int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	j := &w.batch.Jobs[index]
	j.Status = ckpt.StatusFailed
	j.Steps = steps
	j.Error = err.Error()
	j.EM, j.Theta, j.History = nil, "", nil
}

// flush writes the current image to disk atomically. Jobs that have no
// recorded state yet (admitted but never snapshotted) are elided: a
// resume simply starts them fresh. The first write error is remembered
// and surfaced by RunBatch, since a batch whose checkpoints silently
// failed is not resumable.
func (w *ckptWriter) flush() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := ckpt.Batch{Jobs: make([]ckpt.BatchJob, 0, len(w.batch.Jobs))}
	for _, j := range w.batch.Jobs {
		if j.Status == "" {
			continue
		}
		out.Jobs = append(out.Jobs, j)
	}
	if err := ckpt.Save(w.opts.Dir, &out); err != nil && w.firstErr == nil {
		w.firstErr = err
	}
}

// err returns the first checkpoint write failure, if any.
func (w *ckptWriter) err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.firstErr
}

// resumeIndex maps a loaded checkpoint by job name.
func resumeIndex(b *ckpt.Batch) map[string]ckpt.BatchJob {
	if b == nil {
		return nil
	}
	out := make(map[string]ckpt.BatchJob, len(b.Jobs))
	for _, j := range b.Jobs {
		out[j.Name] = j
	}
	return out
}

// restoreDone rebuilds a finished job's Result from its checkpoint entry.
func restoreDone(entry ckpt.BatchJob, res *Result) error {
	theta, err := strconv.ParseFloat(entry.Theta, 64)
	if err != nil {
		return fmt.Errorf("sched: checkpoint theta %q: %w", entry.Theta, err)
	}
	history, err := ckpt.DecodeHistory(entry.History)
	if err != nil {
		return err
	}
	res.Theta = theta
	res.History = history
	res.Steps = entry.Steps
	res.Resumed = true
	return nil
}
