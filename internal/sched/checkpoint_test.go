package sched

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mpcgs/internal/ckpt"
	"mpcgs/internal/device"
	"mpcgs/internal/phylip"
)

// ckptJobs builds one small job per sampler, the ensemble every
// kill/resume test drives.
func ckptJobs(t *testing.T) []Job {
	t.Helper()
	// The adaptive heated job uses a 3-rung ladder (2 rungs have no
	// interior temperature to adapt) and a small swap window so the
	// adaptation engages within the short burn-in — the adapted-ladder
	// kill/resume case of the checkpoint acceptance contract.
	adaptive := quickJob("adaptive-heated-job", testAlignment(t, 6, 60, 605), "heated", 615)
	adaptive.Chains = 3
	adaptive.AdaptLadder = true
	adaptive.MaxTemp = 32
	adaptive.SwapWindow = 8
	return []Job{
		quickJob("gmh-job", testAlignment(t, 6, 60, 601), "gmh", 611),
		quickJob("mh-job", testAlignment(t, 6, 60, 602), "mh", 612),
		quickJob("heated-job", testAlignment(t, 6, 60, 603), "heated", 613),
		quickJob("multichain-job", testAlignment(t, 6, 60, 604), "multichain", 614),
		adaptive,
	}
}

// runToCompletionWithResume drives a batch through as many
// kill/checkpoint/resume cycles as it takes, cancelling each attempt
// after delay, and returns the final results. Every attempt after the
// first resumes from the checkpoint directory.
func runToCompletionWithResume(t *testing.T, jobs []Job, dir string, delay time.Duration, quantum, every int) []Result {
	t.Helper()
	for attempt := 0; ; attempt++ {
		if attempt > 200 {
			t.Fatal("batch did not complete within 200 kill/resume cycles")
		}
		opts := Options{
			Drivers:    2,
			Quantum:    quantum,
			Checkpoint: CheckpointOptions{Dir: dir, Every: every},
		}
		if attempt > 0 {
			resume, err := ckpt.Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			opts.Resume = resume
		}
		ctx, cancel := context.WithTimeout(context.Background(), delay)
		pool := device.NewPool(2)
		results, err := RunBatch(ctx, pool, jobs, opts)
		cancel()
		pool.Close()
		if err == nil {
			return results
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		// Progressively longer attempts so the loop terminates even on a
		// very slow machine.
		delay += delay / 2
	}
}

// requireSameOutcome compares a kill/resume job against the
// uninterrupted reference. A job that was mid-flight at the last kill
// reruns to completion and carries its full trace — compared
// bit-for-bit; a job that finished in an earlier attempt is restored
// from the checkpoint without its sample set, so its θ trajectory is
// compared instead (each history entry pins four floats per iteration).
func requireSameOutcome(t *testing.T, label string, want, got Result) {
	t.Helper()
	if got.LastSet != nil {
		requireIdentical(t, label, want, got)
		return
	}
	if !got.Resumed {
		t.Fatalf("%s: job has neither a trace nor a restored result", label)
	}
	if got.Err != nil {
		t.Fatalf("%s: %v", label, got.Err)
	}
	if got.Theta != want.Theta {
		t.Fatalf("%s: restored theta %v != %v", label, got.Theta, want.Theta)
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("%s: history lengths %d vs %d", label, len(got.History), len(want.History))
	}
	for i := range got.History {
		if got.History[i] != want.History[i] {
			t.Fatalf("%s: EM iteration %d differs: %+v vs %+v", label, i, got.History[i], want.History[i])
		}
	}
}

// TestBatchKillResumeBitIdentical is the batch-level acceptance test: a
// batch killed mid-flight at arbitrary points and resumed from its
// checkpoint finishes with every job's trace bit-identical to the
// uninterrupted batch, for all four samplers.
func TestBatchKillResumeBitIdentical(t *testing.T) {
	jobs := ckptJobs(t)

	// Uninterrupted reference.
	pool := device.NewPool(2)
	want, err := RunBatch(context.Background(), pool, jobs, Options{Drivers: 2, Quantum: 7})
	pool.Close()
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "ckpt")
	got := runToCompletionWithResume(t, jobs, dir, 30*time.Millisecond, 7, 40)
	for i := range want {
		requireSameOutcome(t, jobs[i].Name, want[i], got[i])
		if got[i].Steps != want[i].Steps {
			t.Errorf("%s: cumulative steps %d != uninterrupted %d", jobs[i].Name, got[i].Steps, want[i].Steps)
		}
	}
}

// TestBatchResumeSkipsFinishedJobs: jobs recorded as done in the
// checkpoint are not re-run — their result comes back immediately with
// Resumed set — while unfinished jobs still run.
func TestBatchResumeSkipsFinishedJobs(t *testing.T) {
	quick := quickJob("quick", testAlignment(t, 5, 40, 621), "mh", 622)
	slow := quickJob("slow", testAlignment(t, 6, 60, 623), "gmh", 624)
	slow.Samples = 2000
	jobs := []Job{quick, slow}
	dir := filepath.Join(t.TempDir(), "ckpt")

	// Run the batch to completion with checkpointing on.
	pool := device.NewPool(2)
	want, err := RunBatch(context.Background(), pool, jobs, Options{
		Checkpoint: CheckpointOptions{Dir: dir, Every: 50},
	})
	pool.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Resume the finished batch: every job must come back from the file,
	// with no sampling work done.
	resume, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	pool = device.NewPool(2)
	got, err := RunBatch(context.Background(), pool, jobs, Options{Resume: resume})
	pool.Close()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("job %q: %v", r.Name, r.Err)
		}
		if !r.Resumed {
			t.Errorf("job %q was re-run instead of restored", r.Name)
		}
		if r.Theta != want[i].Theta {
			t.Errorf("job %q: restored theta %v != %v", r.Name, r.Theta, want[i].Theta)
		}
		if len(r.History) != len(want[i].History) {
			t.Fatalf("job %q: restored history length %d != %d", r.Name, len(r.History), len(want[i].History))
		}
		for k := range r.History {
			if r.History[k] != want[i].History[k] {
				t.Errorf("job %q: restored history entry %d differs", r.Name, k)
			}
		}
		if r.Busy != 0 {
			t.Errorf("job %q: restored job reports %v busy time", r.Name, r.Busy)
		}
	}
}

// TestBatchResumeRejectsChangedSpec: a manifest edited since the snapshot
// must not silently adopt the old chain state.
func TestBatchResumeRejectsChangedSpec(t *testing.T) {
	job := quickJob("drift", testAlignment(t, 6, 60, 631), "gmh", 632)
	dir := filepath.Join(t.TempDir(), "ckpt")
	pool := device.NewPool(2)
	if _, err := RunBatch(context.Background(), pool, []Job{job}, Options{
		Checkpoint: CheckpointOptions{Dir: dir},
	}); err != nil {
		t.Fatal(err)
	}
	pool.Close()

	resume, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	changed := job
	changed.Seed++
	pool = device.NewPool(2)
	defer pool.Close()
	got, err := RunBatch(context.Background(), pool, []Job{changed}, Options{Resume: resume})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Err == nil || !strings.Contains(got[0].Err.Error(), "fingerprint mismatch") {
		t.Fatalf("changed spec not rejected: %v", got[0].Err)
	}
}

// TestBatchResumeRestoresFailedJobs: a job that failed before the kill is
// reported, not re-run.
func TestBatchResumeRestoresFailedJobs(t *testing.T) {
	bad := quickJob("pathological", testAlignment(t, 6, 60, 641), "mh", 642)
	bad.InitialTheta = 1e-12 // infeasible resimulation regions: MH dies
	dir := filepath.Join(t.TempDir(), "ckpt")
	pool := device.NewPool(2)
	first, err := RunBatch(context.Background(), pool, []Job{bad}, Options{
		Checkpoint: CheckpointOptions{Dir: dir},
	})
	pool.Close()
	if err != nil {
		t.Fatal(err)
	}
	if first[0].Err == nil {
		t.Fatal("pathological job did not fail")
	}
	resume, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	pool = device.NewPool(2)
	defer pool.Close()
	got, err := RunBatch(context.Background(), pool, []Job{bad}, Options{Resume: resume})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Err == nil || !got[0].Resumed {
		t.Fatalf("failed job not restored from checkpoint: %+v", got[0])
	}
	if !strings.Contains(got[0].Err.Error(), "failed before the resume") {
		t.Errorf("restored failure not labelled as such: %v", got[0].Err)
	}
}

// TestBatchCheckpointKillResumeStress hammers the snapshot path under
// maximum contention — single-transition quanta, a snapshot after every
// transition, repeated kills — to prove checkpoints only ever observe
// step boundaries. Run with -race this doubles as the data-race proof:
// snapshots are taken by the driver that owns the job while other drivers
// are mid-quantum on theirs.
func TestBatchCheckpointKillResumeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	jobs := []Job{
		quickJob("s-gmh", testAlignment(t, 5, 40, 651), "gmh", 652),
		quickJob("s-heated", testAlignment(t, 5, 40, 653), "heated", 654),
		quickJob("s-mh", testAlignment(t, 5, 40, 655), "mh", 656),
	}
	for i := range jobs {
		jobs[i].Burnin = 10
		jobs[i].Samples = 120
		jobs[i].EMIterations = 2
	}
	pool := device.NewPool(2)
	want, err := RunBatch(context.Background(), pool, jobs, Options{Drivers: 3, Quantum: 1})
	pool.Close()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ckpt")
	got := runToCompletionWithResume(t, jobs, dir, 20*time.Millisecond, 1, 1)
	for i := range want {
		requireSameOutcome(t, jobs[i].Name, want[i], got[i])
	}
}

// TestLoadManifestRejectsDuplicatesAndBadCounts covers the admission
// bugfix: specs that used to slip through and fail (or silently default)
// mid-run now die at load time with a clear error.
func TestLoadManifestRejectsDuplicatesAndBadCounts(t *testing.T) {
	dir := t.TempDir()
	aln := testAlignment(t, 5, 40, 661)
	f, err := os.Create(filepath.Join(dir, "pop.phy"))
	if err != nil {
		t.Fatal(err)
	}
	if err := phylip.Write(f, aln); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cases := map[string]struct {
		manifest string
		wantErr  string
	}{
		"duplicate names": {
			`{"jobs": [
				{"name": "same", "phylip": "pop.phy", "theta": 1},
				{"name": "same", "phylip": "pop.phy", "theta": 1}
			]}`,
			"share the name",
		},
		"duplicate derived names": {
			`{"jobs": [
				{"phylip": "pop.phy", "theta": 1},
				{"phylip": "pop.phy", "theta": 1}
			]}`,
			"share the name",
		},
		"checkpoint key collision": {
			`{"jobs": [
				{"name": "pop A", "phylip": "pop.phy", "theta": 1},
				{"name": "Pop_a", "phylip": "pop.phy", "theta": 1}
			]}`,
			"same checkpoint key",
		},
		"zero chains": {
			`{"jobs": [{"name": "x", "phylip": "pop.phy", "theta": 1, "chains": 0}]}`,
			"chain count 0",
		},
		"negative chains": {
			`{"jobs": [{"name": "x", "phylip": "pop.phy", "theta": 1, "chains": -2}]}`,
			"chain count -2",
		},
		"zero proposals": {
			`{"jobs": [{"name": "x", "phylip": "pop.phy", "theta": 1, "proposals": 0}]}`,
			"proposal count 0",
		},
		"negative burnin": {
			`{"jobs": [{"name": "x", "phylip": "pop.phy", "theta": 1, "burnin": -5}]}`,
			"burn-in -5",
		},
		"negative samples": {
			`{"jobs": [{"name": "x", "phylip": "pop.phy", "theta": 1, "samples": -5}]}`,
			"sample count -5",
		},
		"negative theta": {
			`{"jobs": [{"name": "x", "phylip": "pop.phy", "theta": -1}]}`,
			"must not be negative",
		},
		"negative em iterations": {
			`{"jobs": [{"name": "x", "phylip": "pop.phy", "theta": 1, "em_iterations": -1}]}`,
			"EM iteration count -1",
		},
		"max_temp below 1": {
			`{"jobs": [{"name": "x", "phylip": "pop.phy", "theta": 1, "sampler": "heated", "max_temp": 0.5}]}`,
			"max_temp 0.5",
		},
		"negative max_temp": {
			`{"jobs": [{"name": "x", "phylip": "pop.phy", "theta": 1, "sampler": "heated", "max_temp": -4}]}`,
			"max_temp -4",
		},
		"negative swap_every": {
			`{"jobs": [{"name": "x", "phylip": "pop.phy", "theta": 1, "sampler": "heated", "swap_every": -1}]}`,
			"swap_every -1",
		},
		"negative swap_window": {
			`{"jobs": [{"name": "x", "phylip": "pop.phy", "theta": 1, "sampler": "heated", "swap_window": -8}]}`,
			"swap_window -8",
		},
		"tempering knob on non-heated sampler": {
			`{"jobs": [{"name": "x", "phylip": "pop.phy", "theta": 1, "sampler": "gmh", "adapt_ladder": true}]}`,
			"only meaningful for the heated sampler",
		},
		"job-level tempering knob with sampler inherited as non-heated": {
			`{"defaults": {"sampler": "mh"},
			  "jobs": [{"name": "x", "phylip": "pop.phy", "theta": 1, "max_temp": 16}]}`,
			"only meaningful for the heated sampler",
		},
	}
	for name, tc := range cases {
		path := filepath.Join(dir, "m.json")
		if err := os.WriteFile(path, []byte(tc.manifest), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadManifest(path)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantErr)
		}
	}
}

// TestFingerprintSensitivity: the fingerprint moves with anything that
// changes a job's trajectory, and holds still otherwise.
func TestFingerprintSensitivity(t *testing.T) {
	aln := testAlignment(t, 5, 40, 671)
	base := quickJob("fp", aln, "gmh", 672).withDefaults(0, 4)
	if Fingerprint(base) != Fingerprint(base) {
		t.Fatal("fingerprint not deterministic")
	}
	mutations := map[string]func(*Job){
		"seed":         func(j *Job) { j.Seed++ },
		"sampler":      func(j *Job) { j.Sampler = "mh" },
		"theta":        func(j *Job) { j.InitialTheta *= 2 },
		"burnin":       func(j *Job) { j.Burnin++ },
		"samples":      func(j *Job) { j.Samples++ },
		"proposals":    func(j *Job) { j.Proposals++ },
		"chains":       func(j *Job) { j.Chains++ },
		"data":         func(j *Job) { j.Alignment = testAlignment(t, 5, 40, 673) },
		"max_temp":     func(j *Job) { j.MaxTemp = 16 },
		"swap_every":   func(j *Job) { j.SwapEvery = 2 },
		"adapt_ladder": func(j *Job) { j.AdaptLadder = true },
		"swap_window":  func(j *Job) { j.SwapWindow = 32 },
	}
	for name, mutate := range mutations {
		j := base
		mutate(&j)
		if Fingerprint(j) == Fingerprint(base) {
			t.Errorf("fingerprint ignores %s", name)
		}
	}
	// The tempering fields were added after format-v1 checkpoints
	// shipped: a job that leaves them all at their defaults must keep
	// its historical v1 fingerprint, so old checkpoints stay resumable.
	if got := Fingerprint(base); got != "5adf21257e1372e0bffc0f042367178877ac67ab1c5cb200e0877dbd5d4f8f67" {
		t.Errorf("default-knob fingerprint changed — v1 checkpoints of knob-free jobs no longer resume (got %s)", got)
	}
}

// TestCheckpointFileHasVersionAndAllJobs: a checkpoint written by a
// completed run records every job as done, and resuming with a mangled
// version is refused upstream by ckpt.Load.
func TestCheckpointFileHasVersionAndAllJobs(t *testing.T) {
	jobs := []Job{
		quickJob("v1", testAlignment(t, 5, 40, 681), "mh", 682),
		quickJob("v2", testAlignment(t, 5, 40, 683), "mh", 684),
	}
	dir := filepath.Join(t.TempDir(), "ckpt")
	pool := device.NewPool(2)
	defer pool.Close()
	if _, err := RunBatch(context.Background(), pool, jobs, Options{
		Checkpoint: CheckpointOptions{Dir: dir},
	}); err != nil {
		t.Fatal(err)
	}
	b, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Version != ckpt.FormatVersion {
		t.Errorf("version %d, want %d", b.Version, ckpt.FormatVersion)
	}
	if len(b.Jobs) != 2 {
		t.Fatalf("checkpoint has %d jobs, want 2", len(b.Jobs))
	}
	for _, j := range b.Jobs {
		if j.Status != ckpt.StatusDone {
			t.Errorf("job %q status %q, want done", j.Name, j.Status)
		}
		if j.Fingerprint == "" {
			t.Errorf("job %q has no fingerprint", j.Name)
		}
	}
}
