package sched

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/phylip"
	"mpcgs/internal/seqgen"
)

// testAlignment simulates a small dataset for scheduler tests.
func testAlignment(t testing.TB, nSeq, seqLen int, seed uint64) *phylip.Alignment {
	t.Helper()
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, seed)
	if err != nil {
		t.Fatal(err)
	}
	return aln
}

// standalone runs one job alone through RunStandalone — the same
// one-pool-per-run pipeline the batch experiment's baseline uses — and
// fails the test on any error.
func standalone(t testing.TB, job Job, workers int) Result {
	t.Helper()
	res, err := RunStandalone(job, workers)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireIdentical pins the batch contract: the batch-mode trace is
// bit-identical to the standalone run — same θ trajectory, same posterior
// sample set.
func requireIdentical(t *testing.T, label string, want, got Result) {
	t.Helper()
	if got.Err != nil {
		t.Fatalf("%s: batch job failed: %v", label, got.Err)
	}
	if got.Theta != want.Theta {
		t.Fatalf("%s: batch theta %v != standalone %v", label, got.Theta, want.Theta)
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("%s: history lengths %d vs %d", label, len(got.History), len(want.History))
	}
	for i := range got.History {
		if got.History[i] != want.History[i] {
			t.Fatalf("%s: EM iteration %d differs: %+v vs %+v", label, i, got.History[i], want.History[i])
		}
	}
	a, b := got.LastSet, want.LastSet
	if a.Len() != b.Len() {
		t.Fatalf("%s: sample set lengths %d vs %d", label, a.Len(), b.Len())
	}
	for i := range a.Stats {
		if a.Stats[i] != b.Stats[i] || a.LogLik[i] != b.LogLik[i] {
			t.Fatalf("%s: draw %d differs (stat %v vs %v, logL %v vs %v)",
				label, i, a.Stats[i], b.Stats[i], a.LogLik[i], b.LogLik[i])
		}
	}
}

func quickJob(name string, aln *phylip.Alignment, sampler string, seed uint64) Job {
	return Job{
		Name:         name,
		Alignment:    aln,
		InitialTheta: 1.0,
		Sampler:      sampler,
		Proposals:    3,
		Chains:       2,
		Burnin:       30,
		Samples:      200,
		EMIterations: 2,
		Seed:         seed,
	}
}

func TestBatchSingleJob(t *testing.T) {
	aln := testAlignment(t, 6, 60, 801)
	job := quickJob("solo", aln, "gmh", 802)
	want := standalone(t, job, 2)

	pool := device.NewPool(2)
	defer pool.Close()
	results, err := RunBatch(context.Background(), pool, []Job{job}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	requireIdentical(t, "solo", want, results[0])
	if results[0].Steps == 0 {
		t.Error("Steps = 0, want > 0")
	}
}

// TestBatchMatchesStandaloneAcrossSamplers is the fixed-seed equivalence
// test of the acceptance criteria: jobs with different samplers, data and
// seeds run batched on one shared pool, and every trace must equal its
// standalone run exactly.
func TestBatchMatchesStandaloneAcrossSamplers(t *testing.T) {
	const workers = 2
	jobs := []Job{
		quickJob("gmh-a", testAlignment(t, 6, 60, 811), "gmh", 821),
		quickJob("mh-b", testAlignment(t, 7, 80, 812), "mh", 822),
		quickJob("heated-c", testAlignment(t, 6, 50, 813), "heated", 823),
		quickJob("multichain-d", testAlignment(t, 6, 40, 814), "multichain", 824),
	}
	want := make([]Result, len(jobs))
	for i, j := range jobs {
		want[i] = standalone(t, j, workers)
	}

	pool := device.NewPool(workers)
	defer pool.Close()
	results, err := RunBatch(context.Background(), pool, jobs, Options{Drivers: 3, Quantum: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		requireIdentical(t, jobs[i].Name, want[i], results[i])
	}
}

func TestBatchMoreJobsThanPoolWorkers(t *testing.T) {
	// 6 jobs over a 2-worker pool with 2 drivers: jobs outnumber both the
	// workers and the drivers, so completion requires genuine
	// time-slicing.
	const workers = 2
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, quickJob(fmt.Sprintf("j%d", i),
			testAlignment(t, 6, 40, 831+uint64(i)), "gmh", 841+uint64(i)))
	}
	pool := device.NewPool(workers)
	defer pool.Close()
	results, err := RunBatch(context.Background(), pool, jobs, Options{Drivers: 2, Quantum: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if r.Theta <= 0 {
			t.Errorf("job %d: non-positive estimate %v", i, r.Theta)
		}
	}
	// Spot-check determinism under oversubscription.
	requireIdentical(t, "j3", standalone(t, jobs[3], workers), results[3])
}

func TestBatchIsolatesPathologicalJob(t *testing.T) {
	// An MH job with a driving θ absurdly below the data's scale: its
	// proposals land in numerically infeasible regions and the run fails.
	// The failure must stay in that job's Result; the healthy jobs
	// complete untouched.
	bad := quickJob("pathological", testAlignment(t, 6, 40, 851), "mh", 852)
	bad.InitialTheta = 1e-12
	jobs := []Job{
		quickJob("healthy-a", testAlignment(t, 6, 60, 853), "gmh", 854),
		bad,
		quickJob("healthy-b", testAlignment(t, 6, 50, 855), "mh", 856),
	}
	pool := device.NewPool(2)
	defer pool.Close()
	results, err := RunBatch(context.Background(), pool, jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Err == nil {
		t.Error("pathological job reported no error")
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("healthy job %q failed alongside the pathological one: %v", results[i].Name, results[i].Err)
		}
		if results[i].Theta <= 0 {
			t.Errorf("healthy job %q: no estimate", results[i].Name)
		}
	}
}

func TestBatchInvalidJobFailsAtAdmission(t *testing.T) {
	jobs := []Job{
		{Name: "no-alignment", InitialTheta: 1.0},
		quickJob("ok", testAlignment(t, 6, 40, 861), "gmh", 862),
	}
	results, err := RunBatch(context.Background(), nil, jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("job without alignment admitted")
	}
	if results[1].Err != nil {
		t.Errorf("valid job failed: %v", results[1].Err)
	}
}

func TestBatchCancellation(t *testing.T) {
	// Big jobs, a context cancelled almost immediately: RunBatch must
	// return promptly with ctx's error, and unfinished jobs must record
	// it too.
	var jobs []Job
	for i := 0; i < 4; i++ {
		j := quickJob(fmt.Sprintf("big%d", i), testAlignment(t, 8, 120, 871+uint64(i)), "gmh", 881+uint64(i))
		j.Samples = 200000
		j.EMIterations = 10
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithCancel(context.Background())
	pool := device.NewPool(2)
	defer pool.Close()

	done := make(chan struct{})
	var results []Result
	var err error
	go func() {
		defer close(done)
		results, err = RunBatch(ctx, pool, jobs, Options{Drivers: 2, Quantum: 4})
	}()
	cancel()
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBatch error = %v, want context.Canceled", err)
	}
	cancelled := 0
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no job recorded the cancellation")
	}
}

func TestBatchOnClosedPoolReturnsErrClosed(t *testing.T) {
	pool := device.NewPool(2)
	pool.Close()
	_, err := RunBatch(context.Background(), pool, []Job{
		quickJob("late", testAlignment(t, 6, 40, 891), "gmh", 892),
	}, Options{})
	if !errors.Is(err, device.ErrClosed) {
		t.Fatalf("RunBatch on closed pool = %v, want ErrClosed", err)
	}
}

func TestLoadManifest(t *testing.T) {
	dir := t.TempDir()
	writePhy := func(name string, seed uint64) {
		aln := testAlignment(t, 6, 40, seed)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := phylip.Write(f, aln); err != nil {
			t.Fatal(err)
		}
	}
	writePhy("popA.phy", 901)
	writePhy("popB.phy", 902)
	manifest := `{
  "defaults": {"sampler": "mh", "theta": 1.0, "burnin": 50, "samples": 300, "em_iterations": 1, "seed": 5},
  "jobs": [
    {"phylip": "popA.phy"},
    {"name": "b", "phylip": "popB.phy", "theta": 0.5, "sampler": "gmh", "proposals": 2, "seed": 9}
  ]
}`
	path := filepath.Join(dir, "batch.json")
	if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(jobs))
	}
	a := jobs[0]
	if a.Name != "popA" || a.Sampler != "mh" || a.InitialTheta != 1.0 || a.Burnin != 50 ||
		a.Samples != 300 || a.EMIterations != 1 || a.Seed != 5 {
		t.Errorf("job 0 defaults not applied: %+v", a)
	}
	if a.Alignment == nil || a.Alignment.NSeq() != 6 {
		t.Error("job 0 alignment not loaded")
	}
	b := jobs[1]
	if b.Name != "b" || b.Sampler != "gmh" || b.InitialTheta != 0.5 || b.Proposals != 2 || b.Seed != 9 {
		t.Errorf("job 1 overrides not applied: %+v", b)
	}

	// The loaded batch must actually run.
	results, err := RunBatch(context.Background(), nil, jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("manifest job %q failed: %v", r.Name, r.Err)
		}
	}
}

// TestLoadManifestTemperingKnobs: the heated tempering knobs load, merge
// from defaults (including a per-job false overriding a defaults-level
// adapt_ladder true), and reach the Job spec.
func TestLoadManifestTemperingKnobs(t *testing.T) {
	dir := t.TempDir()
	aln := testAlignment(t, 6, 40, 911)
	f, err := os.Create(filepath.Join(dir, "pop.phy"))
	if err != nil {
		t.Fatal(err)
	}
	if err := phylip.Write(f, aln); err != nil {
		t.Fatal(err)
	}
	f.Close()
	manifest := `{
  "defaults": {"sampler": "heated", "theta": 1.0, "burnin": 30, "samples": 100, "em_iterations": 1,
               "chains": 3, "max_temp": 16, "adapt_ladder": true, "swap_window": 16},
  "jobs": [
    {"name": "inherits", "phylip": "pop.phy", "seed": 21},
    {"name": "overrides", "phylip": "pop.phy", "seed": 22,
     "max_temp": 4, "swap_every": 2, "adapt_ladder": false, "swap_window": 8},
    {"name": "control", "phylip": "pop.phy", "seed": 23, "sampler": "mh"}
  ]
}`
	path := filepath.Join(dir, "batch.json")
	if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := jobs[0], jobs[1], jobs[2]
	if a.MaxTemp != 16 || a.SwapEvery != 0 || !a.AdaptLadder || a.SwapWindow != 16 {
		t.Errorf("defaults not inherited: %+v", a)
	}
	if b.MaxTemp != 4 || b.SwapEvery != 2 || b.AdaptLadder || b.SwapWindow != 8 {
		t.Errorf("overrides not applied: %+v", b)
	}
	// A non-heated control job in a manifest with tempering defaults
	// must load cleanly, with the ladder knobs not inherited.
	if c.Sampler != "mh" || c.MaxTemp != 0 || c.AdaptLadder || c.SwapWindow != 0 {
		t.Errorf("tempering defaults leaked into the non-heated job: %+v", c)
	}
	// And the loaded adaptive batch actually runs.
	results, err := RunBatch(context.Background(), nil, jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("manifest job %q failed: %v", r.Name, r.Err)
		}
	}
	for _, r := range results[:2] {
		if r.LastRun == nil || len(r.LastRun.PairSwapAttempts) != 2 {
			t.Errorf("manifest job %q missing per-pair swap diagnostics", r.Name)
		}
	}
}

func TestLoadManifestErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty.json":   `{"jobs": []}`,
		"nofile.json":  `{"jobs": [{"name": "x", "theta": 1}]}`,
		"unknown.json": `{"jobs": [{"phylip": "a.phy", "bogus": 1}]}`,
		"badjson.json": `{"jobs": [`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadManifest(path); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := LoadManifest(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing manifest: expected error")
	}
}
