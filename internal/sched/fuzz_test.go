package sched

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpcgs/internal/phylip"
)

// FuzzManifestLoad feeds arbitrary bytes to the batch-manifest loader: it
// must reject garbage with an error, never panic, and every manifest it
// does accept must satisfy the loader's own guarantees (jobs exist, are
// named uniquely, and carry loaded alignments). A real alignment file
// sits next to the manifest so structurally valid inputs exercise the
// deep path, not just the JSON decoder.
func FuzzManifestLoad(f *testing.F) {
	aln := testAlignment(f, 4, 24, 7001)
	var phy strings.Builder
	if err := phylip.Write(&phy, aln); err != nil {
		f.Fatal(err)
	}

	seeds := []string{
		`{"jobs":[{"phylip":"a.phy"}]}`,
		`{"defaults":{"sampler":"mh","theta":1.0,"burnin":5,"samples":10,"em_iterations":1,"seed":5},"jobs":[{"phylip":"a.phy"},{"name":"b","phylip":"a.phy","sampler":"gmh","proposals":2}]}`,
		`{"defaults":{"sampler":"heated","max_temp":4,"adapt_ladder":true},"jobs":[{"phylip":"a.phy","chains":3}]}`,
		`{"jobs":[{"phylip":"a.phy","sampler":"gmh","max_temp":2}]}`,
		`{"jobs":[{"phylip":"missing.phy"}]}`,
		`{"jobs":[]}`,
		`{"jobs":[{"phylip":"a.phy","theta":-1}]}`,
		`{"jobs":[{"phylip":"a.phy","proposals":0}]}`,
		`{"unknown":1,"jobs":[{"phylip":"a.phy"}]}`,
		`{"jobs":[{"phylip":"a.phy","name":"x"},{"phylip":"a.phy","name":"x"}]}`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Each execution gets its own manifest directory (fuzz workers run
		// in parallel processes) with the alignment beside the manifest,
		// since relative phylip paths resolve against the manifest's dir.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "a.phy"), []byte(phy.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "batch.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		jobs, err := LoadManifest(path)
		if err != nil {
			return // rejected: fine, as long as nothing panicked
		}
		if len(jobs) == 0 {
			t.Fatal("LoadManifest returned no error and no jobs")
		}
		names := make(map[string]bool, len(jobs))
		for _, j := range jobs {
			if j.Name == "" {
				t.Fatal("accepted job with empty name")
			}
			if names[j.Name] {
				t.Fatalf("accepted duplicate job name %q", j.Name)
			}
			names[j.Name] = true
			if j.Alignment == nil || j.Alignment.NSeq() == 0 {
				t.Fatalf("accepted job %q without a loaded alignment", j.Name)
			}
		}
	})
}
