package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mpcgs/internal/ckpt"
	"mpcgs/internal/core"
	"mpcgs/internal/device"
)

// Queue is the dynamic counterpart of RunBatch: a long-lived scheduler
// that admits jobs one at a time while earlier submissions are already
// running, for a serving process that never knows its whole batch up
// front. The same driver/quantum model applies — a fixed set of driver
// goroutines pops the most urgent job, steps it for a bounded quantum of
// sampler transitions, and requeues it — but the ready queue is a
// priority heap ordered by (priority, tenant usage, submission order)
// instead of FIFO, so late arrivals from a starved tenant preempt a busy
// tenant's backlog at the next quantum boundary.
//
// # Preemption
//
// Eviction is cooperative and happens only at quantum boundaries: a
// higher-priority submission never interrupts a quantum in flight, it
// just outranks the running job when that job's driver requeues it.
// Since snapshots are likewise taken only between quanta, scheduling
// order can never affect what a job computes — only when.
//
// # Determinism
//
// A job's trajectory is a pure function of its spec and seed, exactly as
// in RunBatch: per-job PRNG streams live inside the job's EMRun and the
// heap only decides stepping order. The queue-level equivalence tests
// pin submitted jobs against RunStandalone bit-for-bit.
//
// # Durability
//
// Each submission may carry its own CheckpointOptions (one directory per
// job, unlike RunBatch's one-per-batch): the queue then snapshots the job
// every CheckpointOptions.Every transitions and on Drain, and a
// later submission of the same spec with SubmitOptions.Resume continues
// it bit-identically. Drain is the SIGTERM path: stop the drivers at
// their next quantum boundary, snapshot every live job, and leave the
// state on disk for the next process.
type Queue struct {
	pool    *device.Pool
	ownPool bool
	quantum int

	mu      sync.Mutex
	cond    *sync.Cond
	ready   qheap
	parked  []*qrunner // live runners stranded by Drain/Close, awaiting snapshot
	usage   map[string]int64
	tenants map[string]*device.Device
	pending int
	state   qstate
	nextSeq int64
	wg      sync.WaitGroup
}

type qstate int

const (
	qRunning qstate = iota
	qDraining
	qClosed
)

var (
	// ErrQueueDraining rejects submissions to a queue that is shutting
	// down gracefully (it still finishes snapshotting its live jobs).
	ErrQueueDraining = errors.New("sched: queue is draining")
	// ErrQueueClosed rejects submissions to a queue that is shut down.
	ErrQueueClosed = errors.New("sched: queue is closed")
)

// QueueOptions tunes a dynamic queue.
type QueueOptions struct {
	// Drivers is the number of goroutines stepping jobs concurrently.
	// Non-positive selects the pool's worker count.
	Drivers int
	// Quantum is how many sampler transitions a driver performs on one
	// job before requeuing it. Non-positive selects 64.
	Quantum int
}

// SubmitOptions carries the per-submission scheduling and durability
// knobs that are not part of the job spec itself (they never enter the
// fingerprint: rescheduling a job at a different priority must still
// resume its checkpoint).
type SubmitOptions struct {
	// Tenant groups jobs for fairness accounting and device attribution;
	// empty uses the job name (every job its own tenant). All of a
	// tenant's jobs share one tenant view of the device pool.
	Tenant string
	// Priority orders the ready heap; higher runs first. Jobs of equal
	// priority interleave by tenant usage, then submission order.
	Priority int
	// Checkpoint persists this job's snapshots into its own directory.
	Checkpoint CheckpointOptions
	// Resume restores the job from a previously written checkpoint
	// (one-job batch, as written by this queue). A finished entry
	// settles the ticket immediately; a paused entry continues
	// bit-identically; a fingerprint mismatch fails the ticket.
	Resume *ckpt.Batch
}

// TicketStatus is the lifecycle state of a submitted job.
type TicketStatus string

const (
	TicketQueued  TicketStatus = "queued"
	TicketRunning TicketStatus = "running"
	TicketPaused  TicketStatus = "paused"
	TicketDone    TicketStatus = "done"
	TicketFailed  TicketStatus = "failed"
)

// Terminal reports whether the status is final.
func (s TicketStatus) Terminal() bool { return s == TicketDone || s == TicketFailed }

// TicketState is a point-in-time observation of a ticket.
type TicketState struct {
	Status TicketStatus
	// Steps counts sampler transitions driven so far (including before a
	// resume).
	Steps int
	// Result is set once Status is terminal.
	Result *Result
}

// Ticket tracks one submitted job through the queue.
type Ticket struct {
	name     string
	tenant   string
	priority int

	mu      sync.Mutex
	status  TicketStatus
	steps   int
	res     *Result
	changed chan struct{}
	done    chan struct{}
}

func newTicket(name, tenant string, priority int) *Ticket {
	return &Ticket{
		name:     name,
		tenant:   tenant,
		priority: priority,
		status:   TicketQueued,
		changed:  make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Name returns the job's (defaults-applied) name.
func (t *Ticket) Name() string { return t.name }

// Tenant returns the fairness-accounting tenant.
func (t *Ticket) Tenant() string { return t.tenant }

// Priority returns the submission priority.
func (t *Ticket) Priority() int { return t.priority }

// State returns the current state and a channel that is closed on the
// next state change, for change-driven polling (progress streams select
// on it instead of busy-polling).
func (t *Ticket) State() (TicketState, <-chan struct{}) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TicketState{Status: t.status, Steps: t.steps, Result: t.res}
	return st, t.changed
}

// Done is closed when the ticket reaches a terminal state.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// update moves a live ticket to a non-terminal status. Late scheduler
// updates racing a settle are dropped: terminal wins.
func (t *Ticket) update(status TicketStatus, steps int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status.Terminal() {
		return
	}
	if t.status == status && t.steps == steps {
		return
	}
	t.status = status
	t.steps = steps
	close(t.changed)
	t.changed = make(chan struct{})
}

// settle finalizes the ticket with its result.
func (t *Ticket) settle(res *Result) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status.Terminal() {
		return
	}
	if res.Err != nil {
		t.status = TicketFailed
	} else {
		t.status = TicketDone
	}
	t.steps = res.Steps
	t.res = res
	close(t.changed)
	t.changed = make(chan struct{})
	close(t.done)
}

// qrunner is one live job owned by the queue.
type qrunner struct {
	seq      int64
	name     string
	tenant   string
	priority int
	// usage snapshots the tenant's cumulative step count at (re)queue
	// time; the heap reads it without locking the queue's usage map.
	usage     int64
	em        *core.EMRun
	steps     int
	sinceSnap int
	snapEvery int
	cw        *ckptWriter
	ticket    *Ticket
	busy      time.Duration
}

// qheap orders runners by priority (higher first), then tenant usage
// (less-served first — the fairness axis), then submission order.
type qheap []*qrunner

func (h qheap) Len() int { return len(h) }
func (h qheap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	if h[i].usage != h[j].usage {
		return h[i].usage < h[j].usage
	}
	return h[i].seq < h[j].seq
}
func (h qheap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *qheap) Push(x any)   { *h = append(*h, x.(*qrunner)) }
func (h *qheap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return r
}

// NewQueue starts a dynamic queue over the shared pool. The pool is the
// caller's (shared with any other load); a nil pool spawns a private one
// that Close/Drain tears down.
func NewQueue(pool *device.Pool, opts QueueOptions) *Queue {
	q := &Queue{quantum: opts.Quantum}
	if pool == nil {
		pool = device.NewPool(0)
		q.ownPool = true
	}
	q.pool = pool
	if q.quantum <= 0 {
		q.quantum = 64
	}
	drivers := opts.Drivers
	if drivers <= 0 {
		drivers = pool.Workers()
	}
	q.cond = sync.NewCond(&q.mu)
	q.usage = make(map[string]int64)
	q.tenants = make(map[string]*device.Device)
	q.wg.Add(drivers)
	for d := 0; d < drivers; d++ {
		go q.drive()
	}
	return q
}

// Pending counts submitted jobs that have not yet settled (queued,
// running, or awaiting their terminal update) — the admission-control
// depth a serving layer bounds.
func (q *Queue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending
}

// Submit admits one job. The spec is validated synchronously (an invalid
// spec returns an error with no ticket); everything after admission is
// reported through the returned Ticket. With opts.Checkpoint set the
// job's durable record is written (and its admission snapshotted) before
// Submit returns, so a caller can acknowledge the submission knowing a
// restart will find it.
func (q *Queue) Submit(job Job, opts SubmitOptions) (*Ticket, error) {
	q.mu.Lock()
	switch q.state {
	case qDraining:
		q.mu.Unlock()
		return nil, ErrQueueDraining
	case qClosed:
		q.mu.Unlock()
		return nil, ErrQueueClosed
	}
	q.pending++
	seq := q.nextSeq
	q.nextSeq++
	q.mu.Unlock()

	job = job.withDefaults(int(seq), q.pool.Workers())
	admit := func() (*Ticket, error) {
		if err := job.Validate(); err != nil {
			return nil, fmt.Errorf("sched: job %q: %w", job.Name, err)
		}
		tenant := opts.Tenant
		if tenant == "" {
			tenant = job.Name
		}
		ticket := newTicket(job.Name, tenant, opts.Priority)

		cw := newCkptWriter(opts.Checkpoint, 1)
		var resume map[string]ckpt.BatchJob
		fp := ""
		if cw != nil || opts.Resume != nil {
			fp = Fingerprint(job)
			resume = resumeIndex(opts.Resume)
		}
		cw.initJob(0, job.Name, fp)

		// fail settles the ticket without an error from Submit: admission
		// succeeded, the job itself is what failed — a restarted daemon
		// surfaces such failures on the job, not as a refusal to start.
		fail := func(err error) (*Ticket, error) {
			res := &Result{Name: job.Name, Err: err}
			cw.setFailed(0, err, 0)
			cw.flush()
			q.finish(ticket, res)
			return ticket, cw.err()
		}

		entry, resuming := resume[job.Name]
		if resuming {
			if entry.Fingerprint != fp {
				cw.keep(0, entry)
				res := &Result{Name: job.Name, Err: fmt.Errorf("sched: job %q: checkpoint fingerprint mismatch: the job spec or its data changed since the snapshot", job.Name)}
				cw.flush()
				q.finish(ticket, res)
				return ticket, cw.err()
			}
			switch entry.Status {
			case ckpt.StatusDone:
				cw.keep(0, entry)
				cw.flush()
				res := &Result{Name: job.Name}
				if err := restoreDone(entry, res); err != nil {
					res.Err = fmt.Errorf("sched: job %q: %w", job.Name, err)
				}
				q.finish(ticket, res)
				return ticket, cw.err()
			case ckpt.StatusFailed:
				cw.keep(0, entry)
				cw.flush()
				res := &Result{
					Name:    job.Name,
					Steps:   entry.Steps,
					Resumed: true,
					Err:     fmt.Errorf("sched: job %q failed before the resume: %s", job.Name, entry.Error),
				}
				q.finish(ticket, res)
				return ticket, cw.err()
			}
			cw.keep(0, entry)
		}

		dev, err := q.tenantDevice(tenant)
		if err != nil {
			return fail(err)
		}
		trace := tracePath(opts.Checkpoint, job.Name)
		if !resuming {
			removeStaleSidecar(trace)
		}
		em, err := startJob(job, dev, trace)
		if err != nil {
			return fail(fmt.Errorf("sched: job %q: %w", job.Name, err))
		}
		r := &qrunner{
			seq:       seq,
			name:      job.Name,
			tenant:    tenant,
			priority:  opts.Priority,
			em:        em,
			snapEvery: opts.Checkpoint.every(),
			cw:        cw,
			ticket:    ticket,
		}
		if resuming {
			snap, err := ckpt.DecodeEM(entry.EM)
			if err == nil {
				err = em.Restore(snap)
			}
			if err != nil {
				return fail(fmt.Errorf("sched: job %q: restoring checkpoint: %w", job.Name, err))
			}
			r.steps = entry.Steps
			ticket.update(TicketQueued, r.steps)
		}
		cw.flush()
		if err := cw.err(); err != nil {
			// Durability is the submission contract: a job whose admission
			// record cannot be written must not be acknowledged.
			res := &Result{Name: job.Name, Err: err}
			q.finish(ticket, res)
			return ticket, err
		}

		q.mu.Lock()
		if q.state != qRunning {
			// Drain raced the admission — and may already be past its
			// collection pass, so parking the runner could strand it.
			// Handle it here instead: snapshot (on a graceful drain) and
			// report the ticket paused. The job never stepped beyond its
			// resume point, so the snapshot is its admission state.
			draining := q.state == qDraining
			q.mu.Unlock()
			if draining {
				if err := q.snapshot(r); err != nil {
					ticket.update(TicketPaused, r.steps)
					return ticket, fmt.Errorf("sched: draining job %q: %w", r.name, err)
				}
			}
			ticket.update(TicketPaused, r.steps)
			return ticket, nil
		}
		r.usage = q.usage[tenant]
		heap.Push(&q.ready, r)
		q.cond.Signal()
		q.mu.Unlock()
		return ticket, nil
	}

	ticket, err := admit()
	if ticket == nil {
		// Validation failure: the reserved pending slot is released and
		// nothing was admitted.
		q.mu.Lock()
		q.pending--
		q.mu.Unlock()
	}
	return ticket, err
}

// tenantDevice returns the tenant's shared device view, creating it on
// first use.
func (q *Queue) tenantDevice(tenant string) (*device.Device, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if dev, ok := q.tenants[tenant]; ok {
		return dev, nil
	}
	dev, err := q.pool.Tenant(tenant)
	if err != nil {
		return nil, err
	}
	q.tenants[tenant] = dev
	return dev, nil
}

// finish settles a ticket and releases its pending slot.
func (q *Queue) finish(ticket *Ticket, res *Result) {
	ticket.settle(res)
	q.mu.Lock()
	q.pending--
	q.mu.Unlock()
}

// drive is one driver goroutine: pop the most urgent runner, step it for
// one quantum, requeue or settle it.
func (q *Queue) drive() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for q.state == qRunning && q.ready.Len() == 0 {
			q.cond.Wait()
		}
		if q.state != qRunning {
			q.mu.Unlock()
			return
		}
		r := heap.Pop(&q.ready).(*qrunner)
		q.mu.Unlock()
		q.runQuantum(r)
	}
}

// runQuantum advances one runner by up to one quantum of transitions and
// routes it: settled, requeued, or parked for a drain snapshot.
func (q *Queue) runQuantum(r *qrunner) {
	if q.pool.Closed() {
		q.snapshot(r)
		q.settleRunner(r, fmt.Errorf("sched: job %q interrupted: %w", r.name, device.ErrClosed))
		return
	}
	r.ticket.update(TicketRunning, r.steps)
	start := time.Now()
	var stepErr error
	n := 0
	for s := 0; s < q.quantum && !r.em.Done(); s++ {
		if stepErr = r.em.Step(); stepErr != nil {
			break
		}
		r.steps++
		r.sinceSnap++
		n++
	}
	r.busy += time.Since(start)
	switch {
	case stepErr != nil:
		if r.cw != nil {
			r.cw.setFailed(0, stepErr, r.steps)
			r.cw.flush()
		}
		q.settleRunner(r, stepErr)
	case r.em.Done():
		q.settleRunner(r, nil)
	default:
		if r.cw != nil && r.sinceSnap >= r.snapEvery {
			q.snapshot(r)
		}
		// Status before requeue: once the runner is back on the heap
		// another driver may pop it and set Running, and that later
		// update must not be clobbered by ours.
		r.ticket.update(TicketQueued, r.steps)
		q.mu.Lock()
		q.usage[r.tenant] += int64(n)
		if q.state == qRunning {
			r.usage = q.usage[r.tenant]
			heap.Push(&q.ready, r)
			q.cond.Signal()
		} else {
			q.parked = append(q.parked, r)
		}
		q.mu.Unlock()
	}
}

// settleRunner finalizes a runner's ticket (and its checkpoint, when the
// job carries one).
func (q *Queue) settleRunner(r *qrunner, err error) {
	res := &Result{Name: r.name, Steps: r.steps, Busy: r.busy}
	if err != nil {
		res.Err = err
	} else if out, emErr := r.em.Result(); emErr != nil {
		res.Err = emErr
	} else {
		res.Theta = out.Theta
		res.History = out.History
		res.LastSet = out.LastSet
		res.LastRun = out.LastRun
		res.Converged = out.LastRun != nil && out.LastRun.StoppedEarly
	}
	if r.cw != nil && res.Err == nil {
		r.cw.setDone(0, res)
		r.cw.flush()
		if werr := r.cw.err(); werr != nil && res.Err == nil {
			res.Err = werr
		}
	}
	q.finish(r.ticket, res)
}

// snapshot persists a still-running job's state; the calling goroutine
// owns the runner, so the EMRun is quiescent at a step boundary.
func (q *Queue) snapshot(r *qrunner) error {
	if r.cw == nil {
		return nil
	}
	snap, err := r.em.Snapshot()
	if err != nil {
		return err
	}
	r.cw.setPaused(0, ckpt.EncodeEM(snap), r.steps)
	r.cw.flush()
	r.sinceSnap = 0
	return r.cw.err()
}

// Drain shuts the queue down gracefully: new submissions are refused,
// drivers stop at their next quantum boundary, and every live job is
// snapshotted to its checkpoint directory and marked paused. The first
// snapshot or checkpoint-write failure is returned — a drain whose state
// did not all reach disk is not a clean drain. A queue built over a
// private pool closes it.
func (q *Queue) Drain() error {
	return q.shutdown(qDraining, true)
}

// Close shuts the queue down without snapshotting: live jobs are marked
// paused in memory but their checkpoints are left at their last periodic
// snapshot. Intended for tests and non-durable callers.
func (q *Queue) Close() error {
	return q.shutdown(qClosed, false)
}

func (q *Queue) shutdown(to qstate, snapshot bool) error {
	q.mu.Lock()
	if q.state == qRunning {
		q.state = to
		q.cond.Broadcast()
	}
	q.mu.Unlock()
	q.wg.Wait()

	// All drivers have exited; every live runner is on the heap or
	// parked, quiescent at a step boundary.
	q.mu.Lock()
	live := append([]*qrunner(nil), q.ready...)
	live = append(live, q.parked...)
	q.ready, q.parked = nil, nil
	q.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })

	var firstErr error
	for _, r := range live {
		if snapshot {
			if err := q.snapshot(r); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("sched: draining job %q: %w", r.name, err)
			}
		}
		r.ticket.update(TicketPaused, r.steps)
	}
	if q.ownPool {
		q.pool.Close()
	}
	return firstErr
}
