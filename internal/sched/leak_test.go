package sched

import (
	"context"
	"fmt"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/leakcheck"
)

// TestBatchCancellationLeaksNoGoroutines: cancelling a batch mid-run must
// unwind every driver goroutine the scheduler started, and closing the
// pool afterwards must stop its workers — cancellation is the path where
// a driver blocked on a job could most plausibly be orphaned.
func TestBatchCancellationLeaksNoGoroutines(t *testing.T) {
	base := leakcheck.Snapshot()

	var jobs []Job
	for i := 0; i < 4; i++ {
		j := quickJob(fmt.Sprintf("big%d", i), testAlignment(t, 8, 120, 951+uint64(i)), "gmh", 961+uint64(i))
		j.Samples = 200000
		j.EMIterations = 10
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithCancel(context.Background())
	pool := device.NewPool(2)

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = RunBatch(ctx, pool, jobs, Options{Drivers: 2, Quantum: 4})
	}()
	cancel()
	<-done
	pool.Close()
	leakcheck.Verify(t, base)
}

// TestBatchCompletionLeaksNoGoroutines: the clean-exit counterpart — a
// batch that runs to completion must also leave nothing behind once the
// pool is closed.
func TestBatchCompletionLeaksNoGoroutines(t *testing.T) {
	base := leakcheck.Snapshot()

	jobs := []Job{
		quickJob("a", testAlignment(t, 6, 40, 971), "mh", 972),
		quickJob("b", testAlignment(t, 6, 40, 973), "gmh", 974),
	}
	pool := device.NewPool(2)
	results, err := RunBatch(context.Background(), pool, jobs, Options{Drivers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("job %q failed: %v", r.Name, r.Err)
		}
	}
	pool.Close()
	leakcheck.Verify(t, base)
}
