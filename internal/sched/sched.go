// Package sched is the multi-tenant batch scheduler: it accepts many
// independent estimation jobs — each with its own alignment, likelihood
// model, sampler configuration and seed — and multiplexes their chains
// over one shared device pool, instead of the one-pool-per-run model of a
// standalone estimation ("many alignments, one process").
//
// # Scheduling model
//
// Every job is a step-driven EM estimation (core.EMRun): all of its
// mutable state — chain engine, PRNG streams, recorder — is owned by the
// run, and the scheduler advances it one sampler transition at a time. A
// fixed set of driver goroutines pops jobs from a ready queue, steps each
// for a bounded quantum of transitions, and requeues it, so jobs
// time-slice fairly even when there are far more jobs than drivers.
// Kernel launches from all jobs land on the one shared device.Pool,
// whose round-robin chunk claiming keeps the workers fair across tenants.
//
// # Determinism
//
// A job's trajectory is bit-identical to running it alone with the same
// seed: per-job PRNG streams are isolated inside the job's EMRun, the
// scheduler only decides *when* a job steps, never *what* it computes,
// and the device's reductions are scheduling-independent. The
// fixed-seed equivalence tests pin this contract.
//
// # Failure isolation
//
// One job failing (a pathological driving θ whose proposals cannot be
// resimulated, a bad alignment) records the error in its own Result and
// does not disturb the rest of the batch. Batch-level failures —
// cancellation of the context, the shared pool being closed — end the
// whole run and are returned by RunBatch itself.
package sched

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mpcgs/internal/ckpt"
	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/phylip"
	"mpcgs/internal/subst"
)

// Job describes one estimation run: the unit of batch admission. Zero
// values select the same defaults a standalone estimation uses, so a job
// spec pins only what it cares about.
type Job struct {
	// Name labels the job in results and device accounting. Empty selects
	// "job<index>".
	Name string
	// Alignment is the job's sequence data (required, ≥ 3 sequences).
	Alignment *phylip.Alignment
	// InitialTheta is the starting driving value θ0 (required, positive).
	InitialTheta float64
	// Sampler is one of "gmh" (default), "mh", "heated", "multichain".
	Sampler string
	// Model is one of "f81" (default), "jc69", "f84".
	Model string
	// Proposals is the GMH proposal-set size N; 0 selects the pool's
	// worker count.
	Proposals int
	// Chains is the heated/multichain chain count; 0 selects the pool's
	// worker count.
	Chains int
	// MaxTemp is the heated ladder's hottest temperature; 0 selects the
	// sampler default (8). Values below 1 are rejected.
	MaxTemp float64
	// SwapEvery is the number of within-chain steps between heated swap
	// attempts; 0 selects 1. Negative values are rejected.
	SwapEvery int
	// AdaptLadder turns on swap-rate-driven temperature-ladder
	// adaptation for the heated sampler (adapted during burn-in, frozen
	// after).
	AdaptLadder bool
	// SwapWindow is the sliding-window size for per-pair swap-rate
	// tracking; 0 selects the controller default. Negative values are
	// rejected.
	SwapWindow int
	// Burnin (default 1000) and Samples (default 10000) size each EM
	// iteration's sampling pass.
	Burnin  int
	Samples int
	// EMIterations bounds the outer loop; default 10.
	EMIterations int
	// Seed drives all of the job's pseudo-randomness; default 1. Jobs
	// never share generator state, so equal seeds on different jobs are
	// legal (they decorrelate through the data unless the data is equal
	// too).
	Seed uint64
	// ESSTarget ends each EM iteration's sampling pass early once the
	// recorder's online effective sample size reaches it; 0 disables the
	// rule and the pass always draws its full Samples quota. A converged
	// job retires at its next quantum boundary, freeing its drivers for
	// the rest of the batch.
	ESSTarget float64
	// RHatTarget additionally requires the online split R-hat to fall to
	// the target (must exceed 1 when set); 0 disables the check.
	RHatTarget float64
}

func (j Job) withDefaults(index, poolWorkers int) Job {
	if j.Name == "" {
		j.Name = fmt.Sprintf("job%d", index)
	}
	if j.Sampler == "" {
		j.Sampler = "gmh"
	}
	if j.Model == "" {
		j.Model = "f81"
	}
	if j.Proposals <= 0 {
		j.Proposals = poolWorkers
	}
	if j.Chains <= 0 {
		j.Chains = poolWorkers
	}
	if j.Burnin <= 0 {
		j.Burnin = 1000
	}
	if j.Samples <= 0 {
		j.Samples = 10000
	}
	if j.EMIterations <= 0 {
		j.EMIterations = 10
	}
	if j.Seed == 0 {
		j.Seed = 1
	}
	return j
}

// Result is the outcome of one job.
type Result struct {
	Name string
	// Theta is the job's maximum-likelihood estimate.
	Theta float64
	// History records the job's EM trajectory.
	History []core.EMIteration
	// LastSet is the sample set of the final EM iteration (the posterior
	// trace the equivalence tests compare). It is nil for jobs restored
	// from a checkpoint without being re-run.
	LastSet *core.SampleSet
	// LastRun is the full sampler result of the final EM iteration — the
	// source of the heated per-pair swap-rate report. Nil for jobs
	// restored from a checkpoint without being re-run.
	LastRun *core.Result
	// Steps counts the sampler transitions the scheduler drove (including
	// transitions driven before a resume).
	Steps int
	// Busy is the cumulative time drivers spent stepping this job (its
	// share of the process, not wall-clock makespan: quanta of different
	// jobs overlap).
	Busy time.Duration
	// Resumed marks a job whose outcome was restored from a checkpoint
	// instead of being computed in this batch.
	Resumed bool
	// Converged marks a job whose final sampling pass ended early because
	// its online diagnostics reached the declared ESS/R-hat targets.
	Converged bool
	// Err is the job's failure, if any: an invalid spec, a sampling
	// error, or the batch-level cancellation that interrupted it.
	Err error
}

// Options tunes the scheduler.
type Options struct {
	// Drivers is the number of goroutines stepping jobs concurrently.
	// Non-positive selects the pool's worker count — enough concurrent
	// tenants to saturate the shared workers, few enough that per-job
	// working sets stay warm.
	Drivers int
	// Quantum is how many sampler transitions a driver performs on one
	// job before requeuing it (fair time-slicing granularity).
	// Non-positive selects 64.
	Quantum int
	// Checkpoint enables periodic and on-cancellation checkpointing of
	// the whole batch.
	Checkpoint CheckpointOptions
	// Resume is a previously saved checkpoint to restart from: finished
	// and failed jobs are skipped (their recorded outcome is returned),
	// paused jobs restore their chain state and continue, and jobs whose
	// fingerprint no longer matches their checkpoint entry are rejected.
	Resume *ckpt.Batch
}

// runner is one admitted job being driven through its EMRun.
type runner struct {
	index     int
	name      string
	em        *core.EMRun
	steps     int
	sinceSnap int
	busy      time.Duration
}

// RunBatch drives every job to completion over the shared pool and
// returns one Result per job, in job order. Per-job failures are
// recorded in the results; RunBatch itself returns an error only for
// batch-level failures: a cancelled context (jobs not yet finished
// record ctx's error too), a closed pool, or a checkpoint directory that
// cannot be written.
//
// With Options.Checkpoint set, the batch's state is persisted into the
// checkpoint directory: every job's snapshot is refreshed each
// CheckpointOptions.Every transitions, finished jobs record their result,
// and a batch-level stop (cancellation) snapshots every still-running job
// before RunBatch returns — always at step boundaries, because snapshots
// are taken only by the driver that owns the job, between its steps. With
// Options.Resume set, jobs recorded as finished or failed are skipped and
// paused jobs continue from their snapshot, bit-identical to never having
// stopped.
func RunBatch(ctx context.Context, pool *device.Pool, jobs []Job, opts Options) ([]Result, error) {
	if pool == nil {
		pool = device.NewPool(0)
		defer pool.Close()
	}
	if pool.Closed() {
		return nil, device.ErrClosed
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	quantum := opts.Quantum
	if quantum <= 0 {
		quantum = 64
	}
	drivers := opts.Drivers
	if drivers <= 0 {
		drivers = pool.Workers()
	}
	if drivers > len(jobs) {
		drivers = len(jobs)
	}
	cw := newCkptWriter(opts.Checkpoint, len(jobs))
	snapEvery := opts.Checkpoint.every()
	resume := resumeIndex(opts.Resume)

	// Admission: build each job's evaluator and step-driven estimation on
	// its own tenant view of the pool. Invalid jobs fail here, in their
	// own Result, without holding the batch back. With a resume
	// checkpoint, finished and failed jobs short-circuit to their recorded
	// outcome and paused jobs restore their chain state.
	ready := make(chan *runner, len(jobs))
	live := 0
	for i, job := range jobs {
		job = job.withDefaults(i, pool.Workers())
		results[i].Name = job.Name
		// Hashing every alignment is only worth it when the fingerprint
		// is going somewhere: a checkpoint entry or a resume comparison.
		fp := ""
		if cw != nil || resume != nil {
			fp = Fingerprint(job)
		}
		cw.initJob(i, job.Name, fp)
		entry, resuming := resume[job.Name]
		if resuming {
			if entry.Fingerprint != fp {
				cw.keep(i, entry)
				results[i].Err = fmt.Errorf("sched: job %q: checkpoint fingerprint mismatch: the job spec or its data changed since the snapshot (note that proposal/chain counts default to the pool's worker count); rerun without -resume or restore the original manifest", job.Name)
				continue
			}
			switch entry.Status {
			case ckpt.StatusDone:
				cw.keep(i, entry)
				if err := restoreDone(entry, &results[i]); err != nil {
					results[i].Err = fmt.Errorf("sched: job %q: %w", job.Name, err)
				}
				continue
			case ckpt.StatusFailed:
				cw.keep(i, entry)
				results[i].Resumed = true
				results[i].Steps = entry.Steps
				results[i].Err = fmt.Errorf("sched: job %q failed before the resume: %s", job.Name, entry.Error)
				continue
			}
			cw.keep(i, entry)
		}
		dev, err := pool.Tenant(job.Name)
		if err != nil {
			results[i].Err = err
			continue
		}
		trace := tracePath(opts.Checkpoint, job.Name)
		if !resuming {
			removeStaleSidecar(trace)
		}
		em, err := startJob(job, dev, trace)
		if err != nil {
			results[i].Err = fmt.Errorf("sched: job %q: %w", job.Name, err)
			cw.setFailed(i, results[i].Err, 0)
			continue
		}
		r := &runner{index: i, name: job.Name, em: em}
		if resuming {
			snap, err := ckpt.DecodeEM(entry.EM)
			if err == nil {
				err = em.Restore(snap)
			}
			if err != nil {
				results[i].Err = fmt.Errorf("sched: job %q: restoring checkpoint: %w", job.Name, err)
				continue
			}
			r.steps = entry.Steps
		}
		ready <- r
		live++
	}
	cw.flush()
	if live == 0 {
		return results, firstError(batchErr(ctx, pool), cw.err())
	}

	// Drivers pop a job, step it for one quantum, requeue it; the last
	// finished runner closes the queue. A batch-level stop (context
	// cancelled, pool closed) marks every remaining runner instead of
	// requeuing it.
	var mu sync.Mutex // guards live and results
	finish := func(r *runner, err error) {
		mu.Lock()
		defer mu.Unlock()
		res := &results[r.index]
		res.Steps = r.steps
		res.Busy = r.busy
		if err != nil {
			res.Err = err
		} else if out, emErr := r.em.Result(); emErr != nil {
			res.Err = emErr
		} else {
			res.Theta = out.Theta
			res.History = out.History
			res.LastSet = out.LastSet
			res.LastRun = out.LastRun
			res.Converged = out.LastRun != nil && out.LastRun.StoppedEarly
		}
		live--
		if live == 0 {
			close(ready)
		}
	}

	// snapshot persists a still-running job's state; the calling driver
	// owns the runner, so the EMRun is quiescent at a step boundary.
	snapshot := func(r *runner) {
		if cw == nil {
			return
		}
		snap, err := r.em.Snapshot()
		if err != nil {
			return
		}
		cw.setPaused(r.index, ckpt.EncodeEM(snap), r.steps)
		cw.flush()
		r.sinceSnap = 0
	}

	var wg sync.WaitGroup
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range ready {
				if err := batchErr(ctx, pool); err != nil {
					// On-cancel checkpoint: park the job's state so a
					// resume continues it instead of restarting it.
					snapshot(r)
					finish(r, fmt.Errorf("sched: job %q interrupted: %w", r.name, err))
					continue
				}
				start := time.Now()
				var stepErr error
				for s := 0; s < quantum && !r.em.Done(); s++ {
					if stepErr = r.em.Step(); stepErr != nil {
						break
					}
					r.steps++
					r.sinceSnap++
				}
				r.busy += time.Since(start)
				switch {
				case stepErr != nil:
					finish(r, stepErr)
					if cw != nil {
						cw.setFailed(r.index, stepErr, r.steps)
						cw.flush()
					}
				case r.em.Done():
					finish(r, nil)
					if cw != nil {
						cw.setDone(r.index, &results[r.index])
						cw.flush()
					}
				default:
					if cw != nil && r.sinceSnap >= snapEvery {
						snapshot(r)
					}
					ready <- r
				}
			}
		}()
	}
	wg.Wait()
	return results, firstError(batchErr(ctx, pool), cw.err())
}

// firstError returns the first non-nil error.
func firstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunStandalone estimates one job alone in the one-pool-per-run model:
// its own device, spawned for the job and torn down after. It drives the
// identical pipeline RunBatch admits jobs through (same defaults, same
// startJob), so it is both the batch mode's back-to-back baseline —
// comparable compute-for-compute — and the reference the equivalence
// tests pin batch traces against.
func RunStandalone(job Job, workers int) (Result, error) {
	dev := device.New(workers)
	defer dev.Close()
	job = job.withDefaults(0, dev.Workers())
	res := Result{Name: job.Name}
	em, err := startJob(job, dev, "")
	if err != nil {
		return res, fmt.Errorf("sched: job %q: %w", job.Name, err)
	}
	start := time.Now()
	for !em.Done() {
		if err := em.Step(); err != nil {
			res.Busy = time.Since(start)
			return res, err
		}
		res.Steps++
	}
	res.Busy = time.Since(start)
	out, err := em.Result()
	if err != nil {
		return res, err
	}
	res.Theta = out.Theta
	res.History = out.History
	res.LastSet = out.LastSet
	res.LastRun = out.LastRun
	res.Converged = out.LastRun != nil && out.LastRun.StoppedEarly
	return res, nil
}

// batchErr reports the batch-level stop condition, if any.
func batchErr(ctx context.Context, pool *device.Pool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if pool.Closed() {
		return device.ErrClosed
	}
	return nil
}

// tracePath derives a job's trace-sidecar file from its checkpoint
// directory: spilling is active exactly when checkpointing is, because
// the sidecar is what makes the checkpoint O(interval). Without a
// checkpoint directory the recorder stays in memory and the path is
// empty.
func tracePath(opts CheckpointOptions, name string) string {
	if !opts.enabled() {
		return ""
	}
	return filepath.Join(opts.Dir, CheckpointKey(name)+".trace")
}

// removeStaleSidecar deletes the sidecar files a previous incarnation of
// a job may have left behind. A fresh (non-resumed) start must not
// append after stale draws: the file would grow without bound across
// restarts and a changed tree size would poison the open. Multichain
// runs fan out to per-chain "<path>.c<i>" files, so those go too.
func removeStaleSidecar(path string) {
	if path == "" {
		return
	}
	os.Remove(path)
	if matches, err := filepath.Glob(path + ".c*"); err == nil {
		for _, m := range matches {
			os.Remove(m)
		}
	}
}

// startJob assembles one job's estimation pipeline — model, evaluator,
// starting genealogy, sampler — on the job's tenant device, mirroring
// what a standalone run builds, and returns it positioned before its
// first transition. A non-empty trace path puts the recorder in
// bounded-memory spill mode with draws streamed to that sidecar file.
func startJob(j Job, dev *device.Device, trace string) (*core.EMRun, error) {
	if j.Alignment == nil {
		return nil, fmt.Errorf("alignment is required")
	}
	if j.InitialTheta <= 0 {
		return nil, fmt.Errorf("initial theta %v must be positive", j.InitialTheta)
	}
	model, err := buildModel(j.Model, j.Alignment)
	if err != nil {
		return nil, err
	}
	eval, err := felsen.New(model, j.Alignment, dev)
	if err != nil {
		return nil, err
	}
	sampler, err := buildSampler(j, eval, dev)
	if err != nil {
		return nil, err
	}
	init, err := core.InitialTree(j.Alignment, j.InitialTheta, j.Seed)
	if err != nil {
		return nil, err
	}
	cfg := core.EMConfig{
		InitialTheta: j.InitialTheta,
		Iterations:   j.EMIterations,
		Burnin:       j.Burnin,
		Samples:      j.Samples,
		Seed:         j.Seed,
		ESSTarget:    j.ESSTarget,
		RHatTarget:   j.RHatTarget,
	}
	if trace != "" {
		cfg.Trace = &core.TraceSpec{Path: trace}
	}
	return core.StartEM(sampler, init, cfg, dev)
}

func buildModel(kind string, aln *phylip.Alignment) (subst.Model, error) {
	switch kind {
	case "f81":
		return subst.NewF81(aln.BaseFreqs(), true)
	case "jc69":
		return subst.NewJC69(), nil
	case "f84":
		return subst.NewF84(aln.BaseFreqs(), 2.0, true)
	default:
		return nil, fmt.Errorf("unknown model %q", kind)
	}
}

func buildSampler(j Job, eval *felsen.Evaluator, dev *device.Device) (core.Sampler, error) {
	switch j.Sampler {
	case "gmh":
		return core.NewGMH(eval, dev, j.Proposals), nil
	case "mh":
		return core.NewMH(eval), nil
	case "heated":
		h := core.NewHeated(eval, dev, j.Chains)
		h.MaxTemp = j.MaxTemp
		h.SwapEvery = j.SwapEvery
		h.Adapt = j.AdaptLadder
		h.SwapWindow = j.SwapWindow
		return h, nil
	case "multichain":
		return core.NewMultiChain(eval, dev, j.Chains), nil
	default:
		return nil, fmt.Errorf("unknown sampler %q", j.Sampler)
	}
}
