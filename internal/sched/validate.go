package sched

import (
	"fmt"
	"strings"
)

// Validate checks a fully-specified job for spec errors a run could only
// surface later with a less useful failure. It mirrors the manifest
// loader's admission checks for callers that build jobs directly — the
// job queue and the HTTP service validate submissions here so a bad spec
// is rejected synchronously (a 400, not a failed job).
func (j Job) Validate() error {
	if j.Alignment == nil {
		return fmt.Errorf("alignment is required")
	}
	if err := j.Alignment.Validate(); err != nil {
		return err
	}
	if j.Alignment.NSeq() < 3 {
		return fmt.Errorf("need at least 3 sequences, have %d", j.Alignment.NSeq())
	}
	if j.InitialTheta <= 0 {
		return fmt.Errorf("initial theta %v must be positive", j.InitialTheta)
	}
	switch j.Sampler {
	case "", "gmh", "mh", "heated", "multichain":
	default:
		return fmt.Errorf("unknown sampler %q", j.Sampler)
	}
	switch j.Model {
	case "", "f81", "jc69", "f84":
	default:
		return fmt.Errorf("unknown model %q", j.Model)
	}
	if j.Proposals < 0 {
		return fmt.Errorf("proposal count %d must not be negative", j.Proposals)
	}
	if j.Chains < 0 {
		return fmt.Errorf("chain count %d must not be negative", j.Chains)
	}
	if j.Burnin < 0 {
		return fmt.Errorf("burn-in %d must not be negative", j.Burnin)
	}
	if j.Samples < 0 {
		return fmt.Errorf("sample count %d must not be negative", j.Samples)
	}
	if j.EMIterations < 0 {
		return fmt.Errorf("EM iteration count %d must not be negative", j.EMIterations)
	}
	if j.MaxTemp != 0 && j.MaxTemp < 1 {
		return fmt.Errorf("max temperature %v must be at least 1 (0 for the default)", j.MaxTemp)
	}
	if j.SwapEvery < 0 {
		return fmt.Errorf("swap interval %d must not be negative", j.SwapEvery)
	}
	if j.SwapWindow < 0 {
		return fmt.Errorf("swap window %d must not be negative", j.SwapWindow)
	}
	if j.Sampler != "heated" {
		if j.MaxTemp != 0 || j.SwapEvery != 0 || j.AdaptLadder || j.SwapWindow != 0 {
			return fmt.Errorf("tempering knobs (max_temp/swap_every/adapt_ladder/swap_window) are only meaningful for the heated sampler (job uses %q)", samplerOrDefault(j.Sampler))
		}
	}
	if j.ESSTarget < 0 {
		return fmt.Errorf("ess target %v must not be negative", j.ESSTarget)
	}
	if j.RHatTarget != 0 && j.RHatTarget <= 1 {
		return fmt.Errorf("rhat target %v must exceed 1 (0 to disable)", j.RHatTarget)
	}
	if j.Sampler == "multichain" && (j.ESSTarget > 0 || j.RHatTarget > 0) {
		// Each multichain sub-chain owns an even share of the pooled
		// quota; a per-chain stop rule against a pooled target is
		// ill-defined, so the ensemble rejects targets (core would too,
		// but here the refusal is synchronous).
		return fmt.Errorf("convergence stop targets (ess_target/rhat_target) are not supported by the multichain sampler")
	}
	return nil
}

func samplerOrDefault(s string) string {
	if s == "" {
		return "gmh"
	}
	return s
}

// CheckpointKey maps a job name to the filesystem key that names its
// durable per-job state: the state-directory entry of the estimation
// daemon, where the job's spec record and checkpoint live. The mapping
// folds case (checkpoint directories must not collide on
// case-insensitive filesystems) and replaces every byte outside
// [a-z0-9._-] with '_', so distinct names can resolve to the same key.
// Admission must therefore reject key collisions, not just duplicate
// names — two jobs sharing a checkpoint directory silently corrupt each
// other's resume state.
func CheckpointKey(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	key := sb.String()
	// "." and ".." are path navigation, not directory names; an
	// all-dots name would escape or alias the state directory.
	if strings.Trim(key, ".") == "" {
		return "job"
	}
	return key
}
