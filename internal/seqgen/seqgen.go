// Package seqgen is the seq-gen substrate (Rambaut & Grass 1997): it
// simulates nucleotide sequences along a genealogy under a substitution
// model, standing in for the external `seq-gen -mF84 -l <len> -s <scale>`
// tool the paper uses to produce data with a known true θ (§6.1). The
// default F84 model reproduces the paper's deliberate mismatch with the
// sampler's Eq. 20 (F81) inference model.
package seqgen

import (
	"fmt"

	"mpcgs/internal/bitseq"
	"mpcgs/internal/gtree"
	"mpcgs/internal/phylip"
	"mpcgs/internal/rng"
	"mpcgs/internal/subst"
)

// Config parameterizes sequence simulation.
type Config struct {
	// Length is the number of base pairs per sequence.
	Length int
	// Scale multiplies every branch length before simulation (seq-gen's
	// -s flag). Zero selects 1.
	Scale float64
	// Model evolves the sequences; nil selects F84 with uniform base
	// frequencies and kappa 2 (a transition/transversion bias typical of
	// real data).
	Model subst.Model
	// Seed drives the simulation deterministically.
	Seed uint64
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Length <= 0 {
		return out, fmt.Errorf("seqgen: length %d must be positive", out.Length)
	}
	if out.Scale == 0 {
		out.Scale = 1
	}
	if out.Scale < 0 {
		return out, fmt.Errorf("seqgen: scale %v must be positive", out.Scale)
	}
	if out.Model == nil {
		m, err := subst.NewF84(subst.Uniform, 2.0, true)
		if err != nil {
			return out, err
		}
		out.Model = m
	}
	return out, nil
}

// Simulate evolves an alignment along the genealogy: the root sequence is
// drawn from the model's stationary distribution and each branch mutates
// its parent's sequence by the model's transition probabilities for the
// branch length, site-independently (the assumption of paper Eq. 22).
func Simulate(t *gtree.Tree, cfg Config) (*phylip.Alignment, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	src := rng.NewStreamSet(1, c.Seed).Stream(0)
	freqs := c.Model.Freqs()
	L := c.Length

	// Working sequences for every node.
	seqs := make([][]bitseq.Base, t.NNodes())
	root := make([]bitseq.Base, L)
	for i := range root {
		root[i] = bitseq.Base(rng.Categorical(src, freqs[:]))
	}
	seqs[t.Root] = root

	// Pre-order descent: parents before children. A post-order traversal
	// visited in reverse gives exactly that.
	order := make([]int, 0, t.NNodes())
	t.PostOrder(func(i int) { order = append(order, i) })
	var trans subst.Matrix
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		if i == t.Root {
			continue
		}
		parentSeq := seqs[t.Nodes[i].Parent]
		c.Model.TransitionInto(t.BranchLength(i)*c.Scale, &trans)
		seq := make([]bitseq.Base, L)
		for s := 0; s < L; s++ {
			row := trans[parentSeq[s]]
			seq[s] = bitseq.Base(rng.Categorical(src, row[:]))
		}
		seqs[i] = seq
	}

	aln := &phylip.Alignment{
		Names: t.TipNames(),
		Seqs:  make([]*bitseq.Seq, t.NTips()),
	}
	for i := 0; i < t.NTips(); i++ {
		packed := bitseq.New(L)
		for s := 0; s < L; s++ {
			packed.Set(s, seqs[i][s])
		}
		aln.Seqs[i] = packed
	}
	return aln, aln.Validate()
}

// SimulateData is the full ms + seq-gen pipeline of the paper's accuracy
// experiment (§6.1): draw one genealogy from the coalescent at the true
// theta, then evolve sequences along it. It returns both so tests can
// inspect the generating tree.
func SimulateData(nSeq, length int, theta float64, seed uint64) (*phylip.Alignment, *gtree.Tree, error) {
	src := rng.NewStreamSet(1, seed^0xabcdef).Stream(0)
	names := make([]string, nSeq)
	for i := range names {
		names[i] = fmt.Sprintf("seq%03d", i+1)
	}
	tree, err := gtree.RandomCoalescent(names, theta, src)
	if err != nil {
		return nil, nil, err
	}
	aln, err := Simulate(tree, Config{Length: length, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	return aln, tree, nil
}
