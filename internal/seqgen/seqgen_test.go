package seqgen

import (
	"math"
	"testing"

	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
	"mpcgs/internal/subst"
)

func balancedTree(t *testing.T, h float64) *gtree.Tree {
	t.Helper()
	tr := gtree.New(2)
	tr.Nodes[0].Name = "a"
	tr.Nodes[1].Name = "b"
	tr.Nodes[2].Age = h
	tr.Nodes[2].Child = [2]int{0, 1}
	tr.Nodes[0].Parent = 2
	tr.Nodes[1].Parent = 2
	tr.Root = 2
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSimulateShape(t *testing.T) {
	src := rng.NewMT19937(1)
	tr, err := gtree.RandomCoalescent([]string{"x", "y", "z"}, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	aln, err := Simulate(tr, Config{Length: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if aln.NSeq() != 3 || aln.SeqLen() != 50 {
		t.Fatalf("alignment %dx%d, want 3x50", aln.NSeq(), aln.SeqLen())
	}
	if aln.Names[0] != "x" || aln.Names[2] != "z" {
		t.Errorf("names = %v", aln.Names)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	src := rng.NewMT19937(3)
	tr, err := gtree.RandomCoalescent([]string{"x", "y", "z", "w"}, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Simulate(tr, Config{Length: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(tr, Config{Length: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Seqs {
		if a.Seqs[i].String() != b.Seqs[i].String() {
			t.Errorf("sequence %d differs across same-seed runs", i)
		}
	}
	c, err := Simulate(tr, Config{Length: 100, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.Seqs[0].String() == c.Seqs[0].String() {
		t.Error("different seeds gave identical data")
	}
}

func TestTinyBranchesNearIdentical(t *testing.T) {
	tr := balancedTree(t, 1.0)
	aln, err := Simulate(tr, Config{Length: 500, Scale: 1e-6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := aln.Seqs[0].Diff(aln.Seqs[1]); d > 2 {
		t.Errorf("near-zero branches produced %d differences", d)
	}
}

func TestDivergenceMatchesJC69Expectation(t *testing.T) {
	// Two tips separated by total path 2h under JC69: expected differing
	// fraction p = 3/4 (1 - e^{-4/3 * 2h}).
	h := 0.3
	tr := balancedTree(t, h)
	aln, err := Simulate(tr, Config{Length: 200000, Model: subst.NewJC69(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := float64(aln.Seqs[0].Diff(aln.Seqs[1])) / float64(aln.SeqLen())
	want := 0.75 * (1 - math.Exp(-4.0/3.0*2*h))
	if math.Abs(got-want) > 0.005 {
		t.Errorf("divergence = %v, want %v", got, want)
	}
}

func TestBaseCompositionMatchesStationary(t *testing.T) {
	freqs := [4]float64{0.1, 0.2, 0.3, 0.4}
	model, err := subst.NewF84(freqs, 2.0, true)
	if err != nil {
		t.Fatal(err)
	}
	tr := balancedTree(t, 0.5)
	aln, err := Simulate(tr, Config{Length: 100000, Model: model, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var counts [4]int
	total := 0
	for _, s := range aln.Seqs {
		total += s.Counts(&counts)
	}
	for b, f := range freqs {
		got := float64(counts[b]) / float64(total)
		if math.Abs(got-f) > 0.01 {
			t.Errorf("base %d frequency = %v, want %v", b, got, f)
		}
	}
}

func TestScaleIncreasesDivergence(t *testing.T) {
	tr := balancedTree(t, 0.2)
	small, err := Simulate(tr, Config{Length: 5000, Scale: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Simulate(tr, Config{Length: 5000, Scale: 3.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dSmall := small.Seqs[0].Diff(small.Seqs[1])
	dBig := big.Seqs[0].Diff(big.Seqs[1])
	if dBig <= dSmall {
		t.Errorf("scale 3.0 divergence %d not above scale 0.1 divergence %d", dBig, dSmall)
	}
}

func TestSimulateDataPipeline(t *testing.T) {
	aln, tree, err := SimulateData(12, 200, 1.0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if aln.NSeq() != 12 || aln.SeqLen() != 200 {
		t.Fatalf("alignment %dx%d, want 12x200", aln.NSeq(), aln.SeqLen())
	}
	if tree.NTips() != 12 {
		t.Fatalf("tree has %d tips", tree.NTips())
	}
	if err := tree.Validate(); err != nil {
		t.Error(err)
	}
	// Tip order must match alignment order for downstream evaluators.
	for i, n := range tree.TipNames() {
		if aln.Names[i] != n {
			t.Errorf("name %d: tree %q vs alignment %q", i, n, aln.Names[i])
		}
	}
}

func TestConfigErrors(t *testing.T) {
	tr := balancedTree(t, 0.5)
	if _, err := Simulate(tr, Config{Length: 0}); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := Simulate(tr, Config{Length: 10, Scale: -1}); err == nil {
		t.Error("negative scale accepted")
	}
}
