// Package exactfloat guards the checkpoint wire format's bit-exactness.
// Kill/resume equivalence holds only if every float crosses the wire with
// all 64 bits intact, which the ckpt package guarantees by funnelling
// scalars through the hex-float codec (strconv.FormatFloat with the 'x'
// verb) and bulk arrays through the base64 bit-pattern codec. In the ckpt
// package the analyzer therefore flags
//
//   - raw float fields (including slices, arrays, maps and pointers of
//     floats) in marshaled structs — any struct with json tags — which
//     would round-trip through decimal text,
//   - floats passed to fmt formatting functions (%v, %f and %g all render
//     shortest-decimal or fixed forms), and
//   - strconv.FormatFloat / AppendFloat with any verb other than the
//     exact 'x' and 'b'.
//
// Wire structs carry floats as strings (hex floats) or base64 blobs; the
// codec helpers are the only door.
//
// The trace sidecar (internal/trace) is the second wire layer with the
// same contract: draws cross as raw IEEE-754 bit patterns
// (math.Float64bits through the binary frame codec), and a v3 checkpoint
// references the sidecar through hex-float fields (ckpt.TraceRef). The
// analyzer applies the identical rules there — a float that reached fmt
// or a decimal strconv verb in the sidecar package would corrupt the
// stream exactly as it would a checkpoint.
package exactfloat

import (
	"go/ast"
	"go/types"
	"reflect"
	"strconv"
	"strings"

	"mpcgs/internal/analysis"
)

// TargetSuffixes select the wire-format packages (suffix-matched so
// fixture packages can stand in for the real ones): the checkpoint
// codec and the trace sidecar.
var TargetSuffixes = []string{"internal/ckpt", "internal/trace"}

// Analyzer is the checkpoint float-exactness checker.
var Analyzer = &analysis.Analyzer{
	Name: "exactfloat",
	Doc: "floats cross the checkpoint wire only via the hex-float/base64 " +
		"codec helpers; decimal formatting and raw float fields lose bits",
	Run: run,
}

func run(pass *analysis.Pass) error {
	target := false
	for _, suffix := range TargetSuffixes {
		if strings.HasSuffix(pass.Pkg.Path(), suffix) {
			target = true
			break
		}
	}
	if !target {
		return nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				checkWireStruct(pass, n)
			case *ast.CallExpr:
				checkFmtCall(pass, n)
				checkFormatFloat(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkWireStruct flags float-bearing fields in marshaled structs. A
// struct is "marshaled" if any field carries a json tag; within one,
// every exported field is on the wire unless tagged json:"-".
func checkWireStruct(pass *analysis.Pass, spec *ast.TypeSpec) {
	st, ok := spec.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	if !hasJSONTag(st) {
		return
	}
	for _, field := range st.Fields.List {
		if jsonTag(field) == "-" {
			continue
		}
		exported := len(field.Names) == 0 // embedded: conservatively check
		for _, name := range field.Names {
			if name.IsExported() {
				exported = true
			}
		}
		if !exported {
			continue
		}
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !containsFloat(t, map[types.Type]bool{}) {
			continue
		}
		pass.Reportf(field.Pos(),
			"raw float field in marshaled struct %s round-trips through decimal text: encode it as a hex-float string (hexFloat) or base64 bit patterns (floatsToB64)",
			spec.Name.Name)
	}
}

func hasJSONTag(st *ast.StructType) bool {
	for _, field := range st.Fields.List {
		if jsonTag(field) != "" {
			return true
		}
	}
	return false
}

func jsonTag(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return ""
	}
	tag := reflect.StructTag(raw).Get("json")
	name, _, _ := strings.Cut(tag, ",")
	return name
}

// containsFloat reports whether a value of type t carries floating-point
// components that encoding/json would render as decimal text.
func containsFloat(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Slice:
		return containsFloat(u.Elem(), seen)
	case *types.Array:
		return containsFloat(u.Elem(), seen)
	case *types.Pointer:
		return containsFloat(u.Elem(), seen)
	case *types.Map:
		return containsFloat(u.Key(), seen) || containsFloat(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if f := u.Field(i); f.Exported() && containsFloat(f.Type(), seen) {
				return true
			}
		}
	}
	return false
}

// checkFmtCall flags float-typed arguments reaching fmt's formatters:
// every fmt verb renders floats in decimal.
func checkFmtCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	for _, arg := range call.Args {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil {
			continue
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&(types.IsFloat|types.IsComplex) != 0 {
			pass.Reportf(arg.Pos(),
				"float formatted through fmt.%s renders in decimal and loses bits on the wire: use hexFloat for scalars or floatsToB64 for arrays",
				fn.Name())
		}
	}
}

// checkFormatFloat flags strconv float formatting with lossy verbs; only
// 'x' (hex) and 'b' (binary exponent) round-trip every bit by
// construction.
func checkFormatFloat(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "strconv" {
		return
	}
	var fmtArg ast.Expr
	switch fn.Name() {
	case "FormatFloat":
		if len(call.Args) == 4 {
			fmtArg = call.Args[1]
		}
	case "AppendFloat":
		if len(call.Args) == 5 {
			fmtArg = call.Args[2]
		}
	default:
		return
	}
	if fmtArg == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[fmtArg]
	if !ok || tv.Value == nil {
		return // verb not a constant: nothing to decide statically
	}
	verb := constant_byte(tv.Value.ExactString())
	if verb == 'x' || verb == 'X' || verb == 'b' || verb == 0 {
		return
	}
	pass.Reportf(fmtArg.Pos(),
		"strconv.%s with verb %q renders in decimal: checkpoint floats must use the 'x' hex-float verb (hexFloat)",
		fn.Name(), verb)
}

// constant_byte extracts the rune of a constant's exact string (e.g. "120"
// for 'x'); returns 0 if it does not parse.
func constant_byte(s string) byte {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > 255 {
		return 0
	}
	return byte(n)
}
