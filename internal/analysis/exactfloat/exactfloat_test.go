package exactfloat_test

import (
	"testing"

	"mpcgs/internal/analysis"
	"mpcgs/internal/analysis/analysistest"
	"mpcgs/internal/analysis/exactfloat"
)

func TestExactFloat(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{exactfloat.Analyzer},
		"effix/internal/ckpt",  // target: checkpoint wire rules apply
		"effix/internal/trace", // target: sidecar wire rules apply
		"effix/other",          // outside the wire packages: exempt
	)
}
