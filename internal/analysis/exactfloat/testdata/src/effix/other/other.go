// Package other is the exactfloat analyzer's package-gating fixture: the
// same patterns that flag in internal/ckpt pass outside it.
package other

import "fmt"

type Sample struct {
	Value float64 `json:"value"`
}

func describe(f float64) string {
	return fmt.Sprintf("%v", f)
}
