// Package trace is the exactfloat analyzer's sidecar fixture: the trace
// wire layer carries draws as raw IEEE-754 bit patterns, so the same
// decimal-rendering rules apply as in the checkpoint codec.
package trace

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// frameHeader mimics a sidecar index record someone might add: json tags
// put its exported fields on a wire, so raw floats flag.
type frameHeader struct {
	Offset int64   `json:"offset"`
	Stat   float64 `json:"stat"` // want `raw float field in marshaled struct frameHeader`
	ESS    string  `json:"ess"`  // hex float: exact
}

// drawBuf is in-memory working state with no json tags anywhere: floats
// are fine.
type drawBuf struct {
	Stat float64
	Ages []float64
}

// putDraw is the compliant wire path: bit patterns through the binary
// codec, never text.
func putDraw(dst []byte, f float64) {
	binary.LittleEndian.PutUint64(dst, math.Float64bits(f))
}

func describeLossy(f float64) string {
	return fmt.Sprintf("stat=%g", f) // want `float formatted through fmt.Sprintf`
}

func formatLossy(f float64) string {
	return strconv.FormatFloat(f, 'e', -1, 64) // want `strconv.FormatFloat with verb 'e'`
}

func formatExact(f float64) string {
	return strconv.FormatFloat(f, 'x', -1, 64)
}

func reportFrames(n int) string {
	return fmt.Sprintf("%d frames", n) // ints are exact: fine
}
