// Package ckpt is the exactfloat analyzer fixture: wire structs, fmt
// formatting and strconv float rendering in and out of compliance.
package ckpt

import (
	"fmt"
	"strconv"
)

// Chain mimics a wire struct: json tags make every exported field part of
// the marshaled output.
type Chain struct {
	Beta    string    `json:"beta"`   // hex float: exact
	LogLik  float64   `json:"loglik"` // want `raw float field in marshaled struct Chain`
	Ages    []float64 `json:"ages"`   // want `raw float field in marshaled struct Chain`
	Steps   int       `json:"steps"`
	scratch float64   // unexported: never marshaled
	Skip    float64   `json:"-"` // explicitly excluded from the wire
}

// TraceRef mimics the v3 checkpoint's sidecar reference: offsets and
// counts are integers (exact), diagnostics cross as hex-float strings.
type TraceRef struct {
	Path    string `json:"path,omitempty"`
	Offset  int64  `json:"offset"`
	Draws   int    `json:"draws"`
	ESS     string `json:"ess,omitempty"`  // hex float: exact
	RHat    string `json:"rhat,omitempty"` // hex float: exact
	Stopped bool   `json:"stopped,omitempty"`
}

// badTraceRef is the non-compliant variant: diagnostics as raw floats
// would round-trip through decimal text.
type badTraceRef struct {
	Offset int64   `json:"offset"`
	ESS    float64 `json:"ess"`  // want `raw float field in marshaled struct badTraceRef`
	RHat   float64 `json:"rhat"` // want `raw float field in marshaled struct badTraceRef`
}

// runtimeState has no json tags anywhere: an in-memory struct, floats are
// fine.
type runtimeState struct {
	Acc float64
	Cur float64
}

func hexFloat(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }

func describeLossy(f float64) string {
	return fmt.Sprintf("%v", f) // want `float formatted through fmt.Sprintf`
}

func describeExact(f float64) string {
	return "beta=" + hexFloat(f)
}

func formatLossy(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64) // want `strconv.FormatFloat with verb 'g'`
}

func appendLossy(dst []byte, f float64) []byte {
	return strconv.AppendFloat(dst, f, 'f', 6, 64) // want `strconv.AppendFloat with verb 'f'`
}

func appendExact(dst []byte, f float64) []byte {
	return strconv.AppendFloat(dst, f, 'x', -1, 64)
}

func reportSteps(n int) string {
	return fmt.Sprintf("%d steps", n) // ints are exact: fine
}
