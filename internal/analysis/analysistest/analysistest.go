// Package analysistest runs analyzers against fixture packages and checks
// their findings against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<import/path>/*.go. A line that must
// be flagged carries a trailing comment
//
//	// want "regexp"
//
// with one quoted regular expression per expected finding on that line.
// Lines without a want comment must not be flagged: every unexpected or
// missing diagnostic fails the test. Non-flagging fixtures are therefore
// just fixture files whose want-comment count is zero.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mpcgs/internal/analysis"
)

// wantRe extracts the quoted expectations of one want comment: either
// double-quoted (Go-unquoted before compiling) or backquoted (literal).
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one // want entry: a pattern expected to match a
// diagnostic at its file and line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture packages at the given import paths from
// testdata/src (relative to the calling test's package directory), applies
// the analyzers, and reports every mismatch between the diagnostics and
// the fixtures' want comments.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, paths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	prog, err := analysis.LoadFixtures(srcRoot, paths)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}

	var wants []*expectation
	for _, pkg := range prog.Roots {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") && text != "want" {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					quoted := wantRe.FindAllStringSubmatch(text, -1)
					if len(quoted) == 0 {
						t.Errorf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
						continue
					}
					for _, q := range quoted {
						unq := q[2] // backquoted: literal
						if q[2] == "" && strings.Contains(q[0], `"`) {
							var err error
							unq, err = strconv.Unquote(q[0])
							if err != nil {
								t.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q[0], err)
								continue
							}
						}
						re, err := regexp.Compile(unq)
						if err != nil {
							t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, unq, err)
							continue
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}

	diags, err := prog.Run(analyzers...)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	for _, d := range diags {
		if w := match(wants, d); w != nil {
			w.matched = true
		} else {
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// match finds an unmatched expectation for the diagnostic's position.
func match(wants []*expectation, d analysis.Diagnostic) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

// Fail is a helper for analyzers under development: it formats the
// diagnostics for inclusion in test failure output.
func Fail(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %v\n", d)
	}
	return b.String()
}
