// Package determinism enforces the engine's reproducibility contract: a
// run is a pure function of its manifest and seeds. In the engine
// packages it forbids the three classic ways Go code silently goes
// nondeterministic — the globally-seeded math/rand source, seeds or
// fingerprints derived from the wall clock, and map-iteration order
// leaking into slices, accumulators or serialized output.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mpcgs/internal/analysis"
)

// TargetPackages is the set of packages whose determinism is a published
// guarantee: the chain engine and everything on the kill/resume path.
var TargetPackages = map[string]bool{
	"mpcgs/internal/core":      true,
	"mpcgs/internal/sched":     true,
	"mpcgs/internal/ckpt":      true,
	"mpcgs/internal/tempering": true,
	"mpcgs/internal/rng":       true,
	"mpcgs/internal/resim":     true,
	"mpcgs/internal/felsen":    true,
}

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid global math/rand, time-derived seeds, and map-order-dependent " +
		"writes in the engine packages (bit-identical resume depends on all three)",
	Run: run,
}

// globalSafe lists the math/rand package-level functions that do not draw
// from (or reseed) the shared global source.
var globalSafe = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// sortFuncs are the package-level sorters that discharge the map-order
// obligation when applied to a slice collected from a map range.
var sortFuncs = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true, "slices.Sort": true, "slices.SortFunc": true,
	"slices.SortStableFunc": true,
}

func run(pass *analysis.Pass) error {
	if !TargetPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		dirs := analysis.FileDirectives(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkGlobalRand(pass, n)
			case *ast.CallExpr:
				checkTimeSeedCall(pass, n)
			case *ast.AssignStmt:
				checkTimeSeedAssign(pass, n)
			case *ast.KeyValueExpr:
				checkTimeSeedKeyValue(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, dirs, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// --- global math/rand --------------------------------------------------------

func checkGlobalRand(pass *analysis.Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	// Methods on a locally-constructed *rand.Rand have an explicit source;
	// only package-level functions touch the global one.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	if globalSafe[fn.Name()] {
		return
	}
	pass.Reportf(sel.Pos(),
		"%s.%s draws from the globally seeded source: chains must use internal/rng streams derived from the run seed",
		path, fn.Name())
}

// --- time-derived seeds ------------------------------------------------------

// derivesFromTimeNow reports whether the expression's value flows (purely
// syntactically) from a time.Now() call.
func derivesFromTimeNow(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// seedSink reports whether calling fn with a value is a seeding or
// fingerprinting operation — the sinks where wall-clock input destroys
// reproducibility.
func seedSink(fn *types.Func) bool {
	name := fn.Name()
	if name == "Seed" || name == "SeedArray" || strings.Contains(name, "Fingerprint") {
		return true
	}
	if pkg := fn.Pkg(); pkg != nil {
		path := pkg.Path()
		if strings.HasSuffix(path, "internal/rng") {
			return true
		}
		if (path == "math/rand" || path == "math/rand/v2") &&
			(name == "New" || name == "NewSource") {
			return true
		}
	}
	return false
}

func checkTimeSeedCall(pass *analysis.Pass, call *ast.CallExpr) {
	var fn *types.Func
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[f.Sel].(*types.Func)
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[f].(*types.Func)
	}
	if fn == nil || !seedSink(fn) {
		return
	}
	for _, arg := range call.Args {
		if derivesFromTimeNow(pass, arg) {
			pass.Reportf(arg.Pos(),
				"seed for %s derived from time.Now: runs become unreproducible and resume fingerprints drift; thread the run's explicit seed",
				fn.Name())
		}
	}
}

func checkTimeSeedAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		if !nameContainsSeed(lhs) {
			continue
		}
		if derivesFromTimeNow(pass, as.Rhs[i]) {
			pass.Reportf(as.Rhs[i].Pos(),
				"seed assigned from time.Now: runs become unreproducible; thread an explicit seed")
		}
	}
}

func checkTimeSeedKeyValue(pass *analysis.Pass, kv *ast.KeyValueExpr) {
	if !nameContainsSeed(kv.Key) {
		return
	}
	if derivesFromTimeNow(pass, kv.Value) {
		pass.Reportf(kv.Value.Pos(),
			"seed field set from time.Now: runs become unreproducible; thread an explicit seed")
	}
}

func nameContainsSeed(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(e.Name), "seed")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(e.Sel.Name), "seed")
	}
	return false
}

// --- map iteration order -----------------------------------------------------

// checkMapRanges flags `for range m` over a map whose body performs
// order-sensitive writes: appends (unless the destination is sorted later
// in the same function), emits to writers/formatters, string
// concatenation, or floating-point accumulation (float addition is not
// associative, so even a pure reduction is order-dependent).
func checkMapRanges(pass *analysis.Pass, dirs analysis.Directives, body *ast.BlockStmt) {
	// Collect the function's statements once so the sorted-later exemption
	// can look past each range statement.
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if d, ok := dirs.At(pass.Fset, rng.Pos(), "mpcgsvet:ignore-maporder"); ok {
			if d.Arg == "" {
				pass.Reportf(rng.Pos(), "mpcgsvet:ignore-maporder needs a reason")
			}
			return true
		}
		checkMapRangeBody(pass, body, rng)
		return true
	})
}

func checkMapRangeBody(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, fnBody, rng, n)
		case *ast.CallExpr:
			if name, emits := emitCall(pass, n); emits {
				pass.Reportf(n.Pos(),
					"%s inside a map range writes in iteration order: sort the keys first or annotate //mpcgsvet:ignore-maporder <reason>",
					name)
			}
		case *ast.IncDecStmt:
			// Counters are order-insensitive; nothing to do.
		}
		return true
	})
}

func checkMapRangeAssign(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt) {
	// x = append(x, ...) — ordered collection from an unordered range.
	if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			if i < len(as.Lhs) && sortedAfter(pass, fnBody, rng, as.Lhs[i]) {
				continue
			}
			pass.Reportf(rhs.Pos(),
				"append inside a map range collects keys in iteration order: sort the result before use, sort the keys first, or annotate //mpcgsvet:ignore-maporder <reason>")
		}
		return
	}
	// s += ... on strings (serialized output) and floats (non-associative
	// accumulation) is order-dependent; integer accumulation is not.
	if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN ||
		as.Tok == token.MUL_ASSIGN || as.Tok == token.QUO_ASSIGN {
		for _, lhs := range as.Lhs {
			t := pass.TypesInfo.TypeOf(lhs)
			if t == nil {
				continue
			}
			switch b := t.Underlying().(type) {
			case *types.Basic:
				if b.Info()&types.IsString != 0 {
					pass.Reportf(as.Pos(),
						"string concatenation inside a map range serializes in iteration order: sort the keys first or annotate //mpcgsvet:ignore-maporder <reason>")
				} else if b.Info()&types.IsFloat != 0 {
					pass.Reportf(as.Pos(),
						"float accumulation inside a map range is order-dependent (float addition is not associative): sort the keys first or annotate //mpcgsvet:ignore-maporder <reason>")
				}
			}
		}
	}
}

// sortedAfter reports whether dst is passed to a recognized sort function
// in a statement after the range loop — the collect-then-sort idiom that
// restores a deterministic order.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, dst ast.Expr) bool {
	dstObj := exprObj(pass, dst)
	if dstObj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted || call.Pos() < rng.End() {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok || !sortFuncs[pkgID.Name+"."+sel.Sel.Name] {
			return true
		}
		for _, arg := range call.Args {
			if exprObj(pass, arg) == dstObj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// exprObj resolves a plain identifier to its object, the granularity at
// which the sorted-later exemption matches collection and sort sites.
func exprObj(pass *analysis.Pass, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		return pass.TypesInfo.ObjectOf(id)
	}
	return nil
}

// emitCall reports whether the call writes to a formatter, writer or
// encoder — output whose order is the iteration order.
func emitCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	name := fn.Name()
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && strings.HasPrefix(name, "F") {
		// Fprint/Fprintf/Fprintln write to a stream; Sprint* builds values
		// the surrounding assignment checks catch if accumulated.
		return "fmt." + name, true
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return name, true
		}
	}
	return "", false
}
