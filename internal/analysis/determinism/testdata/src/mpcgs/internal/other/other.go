// Package other is the determinism analyzer's non-flagging fixture: its
// import path is outside the target set, so the same patterns that flag
// in the engine packages must pass untouched here.
package other

import (
	"math/rand"
	"time"
)

func globalRand() int {
	return rand.Int()
}

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

func mapAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
