// Package core is a determinism-analyzer fixture standing in for the
// engine: it lives at a target import path, so every pattern here is
// checked. Lines with want comments must flag; the rest must not.
package core

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// Config mimics a run manifest with an explicit seed field.
type Config struct {
	Seed int64
}

func globalRand() int {
	return rand.Int() // want `rand.Int draws from the globally seeded source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the globally seeded source`
}

func localRand() int {
	r := rand.New(rand.NewSource(42))
	return r.Int()
}

func timeSeededSource() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seed for New derived from time.Now` `seed for NewSource derived from time.Now`
}

func timeSeedAssign() int64 {
	seed := time.Now().UnixNano() // want `seed assigned from time.Now`
	return seed
}

func timeSeedField() Config {
	return Config{Seed: time.Now().UnixNano()} // want `seed field set from time.Now`
}

func explicitSeed(seed int64) Config {
	return Config{Seed: seed}
}

func mapAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append inside a map range collects keys in iteration order`
	}
	return keys
}

func mapAppendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapEmit(m map[string]int, w *os.File) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside a map range writes in iteration order`
	}
}

func mapConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation inside a map range serializes in iteration order`
	}
	return s
}

func mapFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation inside a map range is order-dependent`
	}
	return sum
}

func mapIntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer accumulation is order-insensitive
	}
	return n
}

func mapCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func mapIgnored(m map[string]int) []string {
	var keys []string
	//mpcgsvet:ignore-maporder ordering only affects log readability here
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func mapIgnoredNoReason(m map[string]int) []string {
	var keys []string
	//mpcgsvet:ignore-maporder
	for k := range m { // want `ignore-maporder needs a reason`
		keys = append(keys, k)
	}
	return keys
}
