package determinism_test

import (
	"testing"

	"mpcgs/internal/analysis"
	"mpcgs/internal/analysis/analysistest"
	"mpcgs/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{determinism.Analyzer},
		"mpcgs/internal/core",  // target package: patterns flag
		"mpcgs/internal/other", // non-target package: same patterns pass
	)
}
