package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Program is one loaded analysis universe: the packages matched by the
// load patterns (Roots) plus every module dependency, all type-checked
// from source so analyzers can follow call edges into function bodies.
// Standard-library dependencies are imported from compiler export data
// (via `go list -export`), which carries types but no bodies — the
// boundary of the "same module, one level deep" rules.
type Program struct {
	Fset  *token.FileSet
	Roots []*Package

	pkgs  map[string]*Package
	funcs map[*types.Func]*FuncSource
}

// Package is one source-loaded, type-checked package.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FuncSource implements Pass.FuncSource over every source-loaded package.
func (prog *Program) FuncSource(fn *types.Func) *FuncSource {
	return prog.funcs[fn]
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

const listFields = "-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error"

// goList runs `go list` in dir and decodes the JSON package stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPackages loads the packages matched by patterns (relative to dir)
// plus their full dependency closure: module packages are parsed and
// type-checked from source, standard-library packages are imported from
// export data produced by `go list -export`.
func LoadPackages(dir string, patterns []string) (*Program, error) {
	args := append([]string{"list", "-e", "-export", "-deps", listFields}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	ld := newLoader()
	var rootPaths []string
	for _, p := range listed {
		if p.Error != nil && !p.Standard {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		switch {
		case p.Standard:
			if p.Export != "" {
				ld.exports[p.ImportPath] = p.Export
			}
		default:
			ld.src[p.ImportPath] = srcPackage{dir: p.Dir, files: p.GoFiles}
			if !p.DepOnly {
				rootPaths = append(rootPaths, p.ImportPath)
			}
		}
	}
	sort.Strings(rootPaths)
	return ld.program(rootPaths)
}

// LoadFixtures loads analyzer test fixtures: packages whose import paths
// resolve to directories under srcRoot (GOPATH-style, srcRoot/<path>/*.go),
// with standard-library imports satisfied from export data. Fixture
// packages may import each other; every fixture package reachable from
// paths is source-loaded, so cross-package rules (hot-path callee
// following, serial-oracle gating) behave exactly as on the real tree.
func LoadFixtures(srcRoot string, paths []string) (*Program, error) {
	ld := newLoader()

	// Discover the fixture package set and the external imports it needs.
	extern := map[string]bool{}
	var discover func(path string) error
	discover = func(path string) error {
		if _, done := ld.src[path]; done {
			return nil
		}
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("fixture package %s: %w", path, err)
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, e.Name())
			}
		}
		if len(files) == 0 {
			return fmt.Errorf("fixture package %s: no .go files in %s", path, dir)
		}
		ld.src[path] = srcPackage{dir: dir, files: files}
		// Peek at the imports to classify them.
		fset := token.NewFileSet()
		for _, f := range files {
			af, err := parser.ParseFile(fset, filepath.Join(dir, f), nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range af.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if st, err := os.Stat(filepath.Join(srcRoot, filepath.FromSlash(p))); err == nil && st.IsDir() {
					if err := discover(p); err != nil {
						return err
					}
				} else {
					extern[p] = true
				}
			}
		}
		return nil
	}
	for _, p := range paths {
		if err := discover(p); err != nil {
			return nil, err
		}
	}

	if len(extern) > 0 {
		args := append([]string{"list", "-e", "-export", "-deps", listFields}, sortedKeys(extern)...)
		listed, err := goList(srcRoot, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Standard && p.Export != "" {
				ld.exports[p.ImportPath] = p.Export
			}
		}
	}
	return ld.program(paths)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- the importer-driven loader ---------------------------------------------

type srcPackage struct {
	dir   string
	files []string
}

type loader struct {
	fset    *token.FileSet
	gc      types.ImporterFrom
	src     map[string]srcPackage
	exports map[string]string
	loaded  map[string]*Package
	loading map[string]bool
}

func newLoader() *loader {
	ld := &loader{
		fset:    token.NewFileSet(),
		src:     map[string]srcPackage{},
		exports: map[string]string{},
		loaded:  map[string]*Package{},
		loading: map[string]bool{},
	}
	gc := importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := ld.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	ld.gc = gc.(types.ImporterFrom)
	return ld
}

// Import implements types.Importer: source packages are parsed and
// type-checked recursively, everything else resolves from export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.loaded[path]; ok {
		return p.Types, nil
	}
	if sp, ok := ld.src[path]; ok {
		if ld.loading[path] {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		ld.loading[path] = true
		defer delete(ld.loading, path)
		pkg, err := ld.check(path, sp)
		if err != nil {
			return nil, err
		}
		ld.loaded[path] = pkg
		return pkg.Types, nil
	}
	return ld.gc.ImportFrom(path, "", 0)
}

func (ld *loader) check(path string, sp srcPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range sp.files {
		af, err := parser.ParseFile(ld.fset, filepath.Join(sp.dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErr error
	conf := types.Config{
		Importer: ld,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if typeErr != nil {
		return nil, typeErr
	}
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Files: files, Types: tpkg, Info: info}, nil
}

// program loads every root and assembles the cross-package function index.
func (ld *loader) program(rootPaths []string) (*Program, error) {
	prog := &Program{
		Fset:  ld.fset,
		pkgs:  map[string]*Package{},
		funcs: map[*types.Func]*FuncSource{},
	}
	for _, path := range rootPaths {
		if _, err := ld.Import(path); err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
	}
	prog.pkgs = ld.loaded
	for _, path := range rootPaths {
		prog.Roots = append(prog.Roots, ld.loaded[path])
	}
	for _, pkg := range ld.loaded {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					prog.funcs[fn] = &FuncSource{Decl: fd, Info: pkg.Info, File: file}
				}
			}
		}
	}
	return prog, nil
}
