// Package analysis is the repo's static-analysis framework: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis that the
// mpcgsvet analyzers run on.
//
// The engine's headline guarantees — bit-identical kill/resume,
// allocation-free delta-evaluated hot paths, and the SerialEval reference
// oracle — are behavioural invariants that example-based tests can only
// spot-check. The analyzers in the subpackages enforce them mechanically
// over the whole tree:
//
//   - determinism: no global math/rand, no time-derived seeds, no
//     map-iteration-order-dependent output in the engine packages
//   - hotpath: functions annotated //mpcgs:hotpath contain no allocating
//     constructs, following same-module callees one level deep
//   - serialeval: felsen.LogLikelihoodSerial is only reachable from
//     SerialEval oracle paths, benchmarks and tests
//   - exactfloat: floats cross the checkpoint wire only through the
//     hex-float / base64 codec helpers
//
// The framework deliberately mirrors the x/tools API shape (Analyzer,
// Pass, Diagnostic) so the analyzers could be ported to a real
// multichecker if the dependency ever becomes available; it is built on
// the standard library alone because this module vendors nothing.
//
// # Annotations
//
// Two comment directives steer the analyzers:
//
//	//mpcgs:hotpath
//	    on a function's doc comment: the function is an allocation-free
//	    hot path and the hotpath analyzer must check it.
//
//	//mpcgsvet:ignore-maporder <reason>
//	//mpcgsvet:ignore-alloc <reason>
//	    on (or on the line above) a flagged construct: suppress that
//	    finding. The reason is mandatory — an annotation without one is
//	    itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "determinism".
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports the analyzer's findings for one package via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package plus the cross-package lookups an
// analyzer may need.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// FuncSource resolves a function object to its parsed source, for any
	// function whose package was source-loaded in this analysis universe
	// (i.e. the module under analysis, as opposed to the standard
	// library). It returns nil for functions without available bodies.
	// The hotpath analyzer uses it to follow same-module callees one
	// level deep.
	FuncSource func(*types.Func) *FuncSource

	report func(Diagnostic)
}

// FuncSource is the parsed source of one module function: its
// declaration, the type info of its package, and its enclosing file (for
// directive lookups).
type FuncSource struct {
	Decl *ast.FuncDecl
	Info *types.Info
	File *ast.File
}

// Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// --- directives -------------------------------------------------------------

// Directive is one //mpcgs:... or //mpcgsvet:... comment: its name (e.g.
// "mpcgsvet:ignore-maporder"), its argument (the rest of the line, the
// mandatory reason for ignore directives), and where it appeared.
type Directive struct {
	Name string
	Arg  string
	Pos  token.Pos
}

// HotpathDirective is the annotation marking a function as an
// allocation-free hot path.
const HotpathDirective = "mpcgs:hotpath"

// parseDirective splits a comment into a directive, if it is one.
// Directives are machine comments: no space after //, like //go:build.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok {
		return Directive{}, false
	}
	if !strings.HasPrefix(text, "mpcgs:") && !strings.HasPrefix(text, "mpcgsvet:") {
		return Directive{}, false
	}
	name, arg, _ := strings.Cut(text, " ")
	return Directive{Name: name, Arg: strings.TrimSpace(arg), Pos: c.Pos()}, true
}

// Directives indexes every mpcgs/mpcgsvet directive of a file by line.
type Directives map[int][]Directive

// FileDirectives scans a file's comments for directives.
func FileDirectives(fset *token.FileSet, f *ast.File) Directives {
	out := Directives{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := parseDirective(c); ok {
				line := fset.Position(c.Pos()).Line
				out[line] = append(out[line], d)
			}
		}
	}
	return out
}

// At returns the named directive attached to pos: on pos's own line or on
// the line directly above it (the two conventional annotation placements).
func (ds Directives) At(fset *token.FileSet, pos token.Pos, name string) (Directive, bool) {
	line := fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		for _, d := range ds[l] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// HasHotpathDoc reports whether a function declaration's doc comment
// carries the //mpcgs:hotpath annotation.
func HasHotpathDoc(decl *ast.FuncDecl) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if d, ok := parseDirective(c); ok && d.Name == HotpathDirective {
			return true
		}
	}
	return false
}

// --- running ----------------------------------------------------------------

// Run applies the analyzers to every root package of the program and
// returns the combined findings sorted by position.
func (prog *Program) Run(analyzers ...*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range prog.Roots {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       prog.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				FuncSource: prog.FuncSource,
				report:     func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
