// Package b is the hotpath fixture's cross-package dependency: its
// methods are followed one level deep from annotated callers in hotfix/a.
package b

// Buf is a reusable buffer with an allocating and a non-allocating method.
type Buf struct{ xs []int }

// Fill allocates; annotated callers must be flagged at their call sites.
func (b *Buf) Fill(n int) {
	b.xs = make([]int, n)
}

// Reset is allocation-free; calls to it must pass.
func (b *Buf) Reset() {
	b.xs = b.xs[:0]
}
