// Package a is the hotpath analyzer fixture: annotated functions whose
// bodies exercise every flagged construct, every exemption, and the
// one-level-deep callee scan (including into package hotfix/b).
package a

import (
	"fmt"

	"hotfix/b"
)

type sink struct{ buf []float64 }

type task struct{ n int }

//mpcgs:hotpath
func Bad(s *sink, n int) {
	buf := make([]float64, n) // want `make allocates`
	_ = buf
	t := new(task) // want `new allocates`
	_ = t
	p := &task{n: n} // want `escapes to the heap`
	_ = p
	xs := []int{1, 2, 3} // want `slice literal allocates its backing array`
	_ = xs
	m := map[int]int{} // want `map literal allocates`
	_ = m
	f := func() {} // want `closure allocates per construction`
	f()
	_ = fmt.Sprintf("%d", n) // want `fmt.Sprintf formats through reflection`
	msg := "n=" + itoa(n)    // want `string concatenation allocates`
	_ = msg
}

func consume(v interface{}) {}

func itoa(n int) string { return "0" }

//mpcgs:hotpath
func Boxes(n int, t *task, s string) {
	consume(n) // want `boxes it on the heap`
	consume(t) // pointers are pointer-shaped: no boxing allocation
	_ = any(t)
	_ = any(n) // want `boxes its operand on the heap`
}

// NotAnnotated allocates freely: without the //mpcgs:hotpath doc
// annotation nothing here is checked.
func NotAnnotated(n int) []float64 {
	return make([]float64, n)
}

//mpcgs:hotpath
func Good(s *sink, xs []float64) (float64, error) {
	v := task{n: 1} // value composite literal stays on the stack
	_ = v
	s.buf = append(s.buf, xs...)
	if len(xs) == 0 {
		return 0, fmt.Errorf("empty input") // cold: non-nil error return
	}
	defer func() { _ = recover() }() // directly-deferred literal: open-coded
	var total float64
	for _, x := range xs {
		total += x
	}
	return total, nil
}

//mpcgs:hotpath
func Guard(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n)) // cold: panic argument
	}
}

//mpcgs:hotpath
func Grow(s *sink, n int) {
	if cap(s.buf) < n {
		s.buf = make([]float64, n) //mpcgsvet:ignore-alloc grow-once scratch, amortized over the run
	}
	s.buf = s.buf[:n]
}

//mpcgs:hotpath
func GrowNoReason(s *sink, n int) {
	if cap(s.buf) < n {
		//mpcgsvet:ignore-alloc
		s.buf = make([]float64, n) // want `ignore-alloc needs a reason`
	}
	s.buf = s.buf[:n]
}

//mpcgs:hotpath
func CallsHelper(s *sink, n int) {
	fill(s, n) // want `calls hotfix/a.fill which allocates on the hot path: make allocates`
}

func fill(s *sink, n int) {
	s.buf = make([]float64, n)
}

//mpcgs:hotpath
func CallsHelperIgnored(s *sink, n int) {
	fill(s, n) //mpcgsvet:ignore-alloc reached once per run during warm-up
}

//mpcgs:hotpath
func CallsCross(buf *b.Buf, n int) {
	buf.Fill(n) // want `calls \(\*hotfix/b\.Buf\)\.Fill which allocates on the hot path: make allocates`
	buf.Reset()
}

//mpcgs:hotpath
func DepthTwo(s *sink, n int) {
	indirect(s, n) // two levels deep: beyond the scan horizon, not flagged
}

func indirect(s *sink, n int) {
	fill(s, n)
}

//mpcgs:hotpath
func Outer(s *sink, xs []float64) {
	Inner(s, xs) // annotated callee: checked directly, not at the call site
}

//mpcgs:hotpath
func Inner(s *sink, xs []float64) {
	s.buf = append(s.buf[:0], xs...)
}
