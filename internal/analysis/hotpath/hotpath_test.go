package hotpath_test

import (
	"testing"

	"mpcgs/internal/analysis"
	"mpcgs/internal/analysis/analysistest"
	"mpcgs/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{hotpath.Analyzer},
		"hotfix/a")
}
