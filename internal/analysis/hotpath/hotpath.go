// Package hotpath enforces the engine's allocation-free hot-path
// contract: a function annotated //mpcgs:hotpath (the per-step chain
// engine, the delta-evaluation kernels, the resimulation draw, the device
// pool's chunk claiming) must not contain allocating constructs, and
// neither may the same-module functions it calls, followed one level
// deep.
//
// Flagged constructs: make and new, composite literals that escape
// (slice and map literals, and &T{...}), closures, fmt.* calls, string
// concatenation, and implicit boxing of non-pointer-shaped values into
// interfaces. Plain value composite literals stay on the stack and pass;
// so do appends (the engine's hot appends write into preallocated
// arenas, and capacity growth is an amortized cost the benchmarks
// guard).
//
// Cold sub-paths are exempt by construction rather than by annotation:
// anything inside a `return ...err` that yields a non-nil error, or
// inside the arguments of panic, has already left the hot path. A defer
// of a function literal is also exempt (open-coded defers do not heap-
// allocate), though the literal's body is still scanned. Residual
// deliberate allocations — grow-on-demand scratch, a per-launch task
// header amortized over a whole grid — carry //mpcgsvet:ignore-alloc
// <reason> on the construct's line, so any new allocation still flags.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"mpcgs/internal/analysis"
)

// Analyzer is the hot-path allocation checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //mpcgs:hotpath must not allocate, " +
		"following same-module callees one level deep",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		dirs := analysis.FileDirectives(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasHotpathDoc(fd) {
				continue
			}
			c := &checker{pass: pass, dirs: dirs, info: pass.TypesInfo}
			c.scan(fd.Body, fd.Type, true)
		}
	}
	return nil
}

// checker scans one function body. For the directly annotated function,
// followCalls is set and same-module callees are scanned one level deep
// (with their own checker, reporting at the call site).
type checker struct {
	pass *analysis.Pass
	dirs analysis.Directives
	// info is the type info of the package owning the scanned body — the
	// analyzed package for direct scans, the callee's for one-deep scans.
	info *types.Info

	// callSite, when non-zero, redirects reports: findings inside a
	// followed callee are attributed to the call expression in the
	// annotated function. callerDirs are the calling file's directives, so
	// an ignore-alloc on the call line suppresses the whole callee.
	callSite   token.Pos
	callee     string
	callerDirs analysis.Directives

	// found collects whether anything was reported, so one-deep scans can
	// stop after the first finding per call site.
	found bool
}

// report emits one finding, honoring ignore-alloc on the construct's line
// and, for followed callees, on the call-site line.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if d, ok := c.dirs.At(c.pass.Fset, pos, "mpcgsvet:ignore-alloc"); ok {
		if d.Arg == "" {
			c.pass.Reportf(pos, "mpcgsvet:ignore-alloc needs a reason")
		}
		return
	}
	if c.callSite != token.NoPos {
		if d, ok := c.callerDirs.At(c.pass.Fset, c.callSite, "mpcgsvet:ignore-alloc"); ok {
			if d.Arg == "" {
				c.pass.Reportf(c.callSite, "mpcgsvet:ignore-alloc needs a reason")
			}
			return
		}
	}
	if c.callSite != token.NoPos {
		where := c.pass.Fset.Position(pos)
		msg := "calls " + c.callee + " which allocates on the hot path: " +
			format + " (at " + where.String() + ")"
		c.pass.Reportf(c.callSite, msg, args...)
	} else {
		c.pass.Reportf(pos, format, args...)
	}
	c.found = true
}

// scan walks a function body flagging allocating constructs. ftype is the
// scanned function's own type (for the cold-error-return exemption).
func (c *checker) scan(body *ast.BlockStmt, ftype *ast.FuncType, followCalls bool) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if c.found && c.callSite != token.NoPos {
			return false // one finding per followed call site is enough
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if c.coldErrorReturn(n, ftype) {
				return false
			}
		case *ast.CallExpr:
			if isPanic(c.info, n) {
				return false // panic construction is cold by definition
			}
			c.checkCall(n, followCalls)
		case *ast.DeferStmt:
			// defer func(){...}() is open-coded and does not allocate; the
			// deferred body still runs per call, so keep scanning inside it.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, walk)
				return false
			}
		case *ast.FuncLit:
			c.report(n.Pos(), "closure allocates per construction; hoist it or pass state explicitly")
			return false
		case *ast.CompositeLit:
			c.checkComposite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := n.X.(*ast.CompositeLit); ok {
					c.report(n.Pos(), "&%s{...} escapes to the heap; reuse a preallocated value", typeLabel(c.info, lit))
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(c.info, n) {
				c.report(n.Pos(), "string concatenation allocates; preformat outside the hot path")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(c.info, n.Lhs[0]) {
				c.report(n.Pos(), "string concatenation allocates; preformat outside the hot path")
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkCall flags make/new, fmt.* calls, interface boxing of arguments,
// and (when following) allocations inside same-module callees.
func (c *checker) checkCall(call *ast.CallExpr, followCalls bool) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(call.Pos(), "make allocates; reuse a preallocated buffer")
			case "new":
				c.report(call.Pos(), "new allocates; reuse a preallocated value")
			}
			return
		}
	}

	// Conversions, including explicit boxing into an interface type.
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(c.info, call.Args[0]) {
			c.report(call.Pos(), "conversion to %s boxes its operand on the heap", tv.Type.String())
		}
		return
	}

	fn := calleeFunc(c.info, call)

	// fmt is banned outright on hot paths: every call formats through
	// reflection and allocates.
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		c.report(call.Pos(), "fmt.%s formats through reflection and allocates", fn.Name())
		return
	}

	// Implicit interface boxing of arguments.
	if fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil {
			c.checkBoxing(call, sig)
		}
	}

	// Same-module callees, one level deep.
	if followCalls && fn != nil {
		src := c.pass.FuncSource(fn)
		if src == nil || src.Decl.Body == nil {
			return // outside the module (or bodyless): not ours to follow
		}
		if analysis.HasHotpathDoc(src.Decl) {
			return // annotated callees are checked directly
		}
		callee := &checker{
			pass:       c.pass,
			dirs:       analysis.FileDirectives(c.pass.Fset, src.File),
			info:       src.Info,
			callSite:   call.Pos(),
			callee:     fn.FullName(),
			callerDirs: c.dirs,
		}
		callee.scan(src.Decl.Body, src.Decl.Type, false)
	}
}

// checkBoxing flags arguments whose concrete, non-pointer-shaped values
// are passed into interface parameters — each such call boxes the value
// on the heap. Pointer-shaped values (pointers, maps, channels, funcs)
// and interface-to-interface assignments do not allocate.
func (c *checker) checkBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				pt = s.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if boxes(c.info, arg) {
			c.report(arg.Pos(), "passing %s into interface parameter boxes it on the heap",
				c.info.TypeOf(arg).String())
		}
	}
}

// coldErrorReturn reports whether the return statement yields a non-nil
// error as the function's final result: the canonical cold exit.
func (c *checker) coldErrorReturn(ret *ast.ReturnStmt, ftype *ast.FuncType) bool {
	if ftype.Results == nil || len(ret.Results) == 0 {
		return false
	}
	lastType := c.info.TypeOf(ftype.Results.List[len(ftype.Results.List)-1].Type)
	if lastType == nil || !types.Identical(lastType, errorType) {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

var errorType = types.Universe.Lookup("error").Type()

// boxes reports whether boxing the expression into an interface
// heap-allocates: its type is concrete and not pointer-shaped.
func boxes(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil || types.IsInterface(t) {
		return false
	}
	if b, ok := t.(*types.Basic); ok && (b.Kind() == types.UntypedNil || b.Kind() == types.Invalid) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// checkComposite flags composite literals whose backing store is always
// heap-allocated: slice and map literals. Value struct and array literals
// stay on the stack unless their address escapes, which the &T{} case
// catches separately.
func (c *checker) checkComposite(lit *ast.CompositeLit) {
	t := c.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates its backing array; reuse a preallocated slice")
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates; hoist it out of the hot path")
	}
}

func isString(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func typeLabel(info *types.Info, lit *ast.CompositeLit) string {
	if t := info.TypeOf(lit); t != nil {
		return t.String()
	}
	return "T"
}
