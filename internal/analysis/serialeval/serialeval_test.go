package serialeval_test

import (
	"testing"

	"mpcgs/internal/analysis"
	"mpcgs/internal/analysis/analysistest"
	"mpcgs/internal/analysis/serialeval"
)

func TestSerialEval(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{serialeval.Analyzer},
		"mpcgs/internal/felsen", // the oracle's own package: exempt
		"serfix/engine",         // consumers: gated
	)
}
