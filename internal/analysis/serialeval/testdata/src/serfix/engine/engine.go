// Package engine is the serialeval analyzer fixture: call sites of the
// oracle in and out of the allowed contexts.
package engine

import "mpcgs/internal/felsen"

type chain struct {
	eval   *felsen.Evaluator
	serial bool
	logLik float64
}

func (c *chain) step(t *felsen.Tree) {
	c.logLik = c.eval.LogLikelihoodSerial(t) // want `LogLikelihoodSerial outside a SerialEval oracle path`
}

func (c *chain) stepGuarded(t *felsen.Tree) {
	if c.serial {
		c.logLik = c.eval.LogLikelihoodSerial(t) // serial-mode guard: allowed
	} else {
		c.logLik = c.eval.Rebase(t)
	}
}

func serialMode(c *chain) bool { return c.serial }

func (c *chain) stepGuardedIndirect(t *felsen.Tree) {
	if serialMode(c) {
		c.logLik = c.eval.LogLikelihoodSerial(t) // guard names the serial flag: allowed
	}
}

// RunSerialOracle is an oracle entry point by name: allowed.
func (c *chain) RunSerialOracle(t *felsen.Tree) float64 {
	return c.eval.LogLikelihoodSerial(t)
}

// BenchmarkOracle mimics a benchmark harness: allowed.
func BenchmarkOracle(c *chain, t *felsen.Tree) float64 {
	return c.eval.LogLikelihoodSerial(t)
}

func (c *chain) unguardedHelper(t *felsen.Tree) float64 {
	return c.eval.LogLikelihoodSerial(t) // want `LogLikelihoodSerial outside a SerialEval oracle path`
}
