package engine

import "mpcgs/internal/felsen"

// oracleCheck lives in a _test.go file, so the analyzer skips it even
// though the call is unguarded.
func oracleCheck(c *chain, t *felsen.Tree) float64 {
	return c.eval.LogLikelihoodSerial(t)
}
