// Package felsen is the serialeval fixture's stand-in oracle package:
// inside it the serial evaluation is used freely (non-flagging fixture).
package felsen

// Tree is a minimal genealogy stand-in.
type Tree struct{ N int }

// Evaluator is a minimal likelihood evaluator stand-in.
type Evaluator struct{ Sites int }

// LogLikelihoodSerial is the fenced full-tree oracle evaluation.
func (e *Evaluator) LogLikelihoodSerial(t *Tree) float64 {
	return float64(e.Sites * t.N)
}

// Rebase is the delta path's full recompute; it may call the oracle
// because this is the oracle's home package.
func (e *Evaluator) Rebase(t *Tree) float64 {
	return e.LogLikelihoodSerial(t)
}
