// Package serialeval fences the reference oracle: LogLikelihoodSerial is
// the O(n·s) full-tree Felsenstein evaluation the delta engine is checked
// against, and calling it anywhere else silently destroys the speedup the
// delta path exists to provide. The analyzer allows calls only from
//
//   - the felsen package itself (the oracle's home),
//   - _test.go files and Benchmark/Serial-named functions, and
//   - sites guarded by a serial-mode condition (an enclosing if whose
//     condition mentions a serial flag), which is how the engine's
//     SerialEval oracle mode selects the full evaluation at runtime.
//
// Everything else is a finding: hot code must go through the staged
// delta evaluation (StageDelta / Commit / Discard).
package serialeval

import (
	"go/ast"
	"go/types"
	"strings"

	"mpcgs/internal/analysis"
)

// OracleName is the fenced method.
const OracleName = "LogLikelihoodSerial"

// Analyzer is the serial-oracle fence.
var Analyzer = &analysis.Analyzer{
	Name: "serialeval",
	Doc: "LogLikelihoodSerial is only callable from SerialEval oracle paths, " +
		"benchmarks and tests; everything else must use the delta evaluation",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "felsen") {
		return nil // the oracle's own package uses it freely
	}
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		checkFile(pass, file)
	}
	return nil
}

// checkFile walks one file keeping the enclosing-node stack, so each call
// site can consult its guarding conditions and enclosing function.
func checkFile(pass *analysis.Pass, file *ast.File) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != OracleName {
			return true
		}
		if _, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !ok {
			return true
		}
		if allowed(stack) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s outside a SerialEval oracle path: the full-tree evaluation is O(n·s) per call; use the staged delta evaluation, or guard the call with the chain's serial flag",
			OracleName)
		return true
	})
}

// allowed reports whether the call site (top of stack) sits in an oracle
// context: a Serial/Benchmark function, or under an if guarded by a
// serial-mode flag.
func allowed(stack []ast.Node) bool {
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.FuncDecl:
			name := n.Name.Name
			if strings.Contains(name, "Serial") || strings.HasPrefix(name, "Benchmark") {
				return true
			}
		case *ast.IfStmt:
			if mentionsSerial(n.Cond) {
				return true
			}
		}
	}
	return false
}

// mentionsSerial reports whether the condition references a serial-mode
// flag: any identifier or field selection whose name contains "serial".
func mentionsSerial(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		var name string
		switch n := n.(type) {
		case *ast.Ident:
			name = n.Name
		case *ast.SelectorExpr:
			name = n.Sel.Name
		default:
			return !found
		}
		if strings.Contains(strings.ToLower(name), "serial") {
			found = true
		}
		return !found
	})
	return found
}
