// Package leakcheck asserts that a test leaves no goroutines behind: the
// device pool's persistent workers and the batch scheduler's drivers both
// promise to exit on Close/cancellation, and a leaked worker would pin
// its chain state (and its CPU) for the life of the process.
//
// Usage:
//
//	base := leakcheck.Snapshot()
//	// ... start and stop the machinery under test ...
//	leakcheck.Verify(t, base)
//
// Verify polls rather than asserting immediately, because goroutine exit
// is asynchronous with Close returning: a worker that has observed the
// close but not yet returned is not a leak.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// timeout bounds how long Verify waits for goroutine counts to settle.
const timeout = 10 * time.Second

// Snapshot returns the current goroutine count, taken before the test
// starts whatever it intends to tear down.
func Snapshot() int {
	return runtime.NumGoroutine()
}

// Verify polls until the goroutine count returns to the base snapshot,
// failing the test with a full stack dump if it does not settle within
// the timeout.
func Verify(t testing.TB, base int) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutine leak: %d goroutines still running, started with %d; stacks:\n%s", n, base, buf)
}
