// Package mssim is the ms substrate (Hudson 2002): a Wright-Fisher /
// Kingman coalescent genealogy simulator standing in for the external
// `ms <nsam> <nreps> -T` tool the paper uses to produce true genealogies
// for its accuracy experiments (§6.1). Trees are generated directly in the
// mutation-scaled time units of paper Eq. 17 (waiting time with k lineages
// exponential at rate k(k-1)/θ), so no separate branch rescaling pass is
// needed.
package mssim

import (
	"fmt"
	"strconv"

	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
)

// Config parameterizes a simulation run.
type Config struct {
	// NSam is the number of sampled lineages (tree tips).
	NSam int
	// Reps is the number of independent genealogies to generate.
	Reps int
	// Theta scales coalescent waiting times (Eq. 17).
	Theta float64
	// Seed drives the simulation deterministically.
	Seed uint64
}

func (c *Config) validate() error {
	if c.NSam < 2 {
		return fmt.Errorf("mssim: need at least 2 samples, got %d", c.NSam)
	}
	if c.Reps < 1 {
		return fmt.Errorf("mssim: need at least 1 replicate, got %d", c.Reps)
	}
	if c.Theta <= 0 {
		return fmt.Errorf("mssim: theta %v must be positive", c.Theta)
	}
	return nil
}

// TipNames returns the default tip labels "1".."n", matching ms's
// numbering convention.
func TipNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = strconv.Itoa(i + 1)
	}
	return names
}

// Simulate generates Reps independent coalescent genealogies.
func Simulate(cfg Config) ([]*gtree.Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := rng.NewStreamSet(1, cfg.Seed).Stream(0)
	names := TipNames(cfg.NSam)
	trees := make([]*gtree.Tree, cfg.Reps)
	for r := range trees {
		t, err := gtree.RandomCoalescent(names, cfg.Theta, src)
		if err != nil {
			return nil, err
		}
		trees[r] = t
	}
	return trees, nil
}

// NewickOutput renders the trees one per line, the `-T` output format.
func NewickOutput(trees []*gtree.Tree) string {
	out := ""
	for _, t := range trees {
		out += t.String() + "\n"
	}
	return out
}
