package mssim

import (
	"fmt"
	"math"

	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
)

// SimulateGrowth generates a genealogy from the exponential-growth
// coalescent: looking backward in time the population shrinks as
// N(t) = N_0·e^{-g·t}, so with k lineages at time a the next coalescence
// time solves the inhomogeneous exponential
//
//	Λ(t) = k(k-1)·(e^{g(a+t)} - e^{g·a}) / (g·θ) = E,  E ~ Exp(1),
//
// inverted in closed form. g must be non-negative: with g < 0 the
// cumulative rate is bounded and the genealogy may never find a common
// ancestor. g = 0 reduces to the constant-size coalescent.
func SimulateGrowth(names []string, theta, g float64, src rng.Source) (*gtree.Tree, error) {
	n := len(names)
	if n < 2 {
		return nil, fmt.Errorf("mssim: need at least 2 tips, got %d", n)
	}
	if theta <= 0 {
		return nil, fmt.Errorf("mssim: theta %v must be positive", theta)
	}
	if g < 0 {
		return nil, fmt.Errorf("mssim: growth rate %v must be non-negative (the backward coalescent need not terminate)", g)
	}
	if g == 0 {
		return gtree.RandomCoalescent(names, theta, src)
	}
	t := gtree.New(n)
	active := make([]int, n)
	for i := 0; i < n; i++ {
		t.Nodes[i].Name = names[i]
		active[i] = i
	}
	age := 0.0
	next := n
	for k := n; k >= 2; k-- {
		e := rng.Exp(src, 1)
		// Invert Λ: e^{g·(age+t)} = e^{g·age} + g·θ·E / (k(k-1)).
		arg := math.Exp(g*age) + g*theta*e/float64(k*(k-1))
		newAge := math.Log(arg) / g
		if newAge <= age {
			// Floating point at extreme growth: force strict ordering.
			newAge = age + age*1e-12 + 1e-300
		}
		age = newAge
		i, j := rng.UniformPair(src, k)
		p := next
		next++
		a, b := active[i], active[j]
		t.Nodes[p].Child = [2]int{a, b}
		t.Nodes[p].Age = age
		t.Nodes[a].Parent = p
		t.Nodes[b].Parent = p
		active[i] = p
		active[j] = active[k-1]
		active = active[:k-1]
	}
	t.Root = next - 1
	return t, t.Validate()
}

// SimulateGrowthReps generates independent growth-coalescent genealogies.
func SimulateGrowthReps(cfg Config, g float64) ([]*gtree.Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := rng.NewStreamSet(1, cfg.Seed).Stream(0)
	names := TipNames(cfg.NSam)
	trees := make([]*gtree.Tree, cfg.Reps)
	for r := range trees {
		t, err := SimulateGrowth(names, cfg.Theta, g, src)
		if err != nil {
			return nil, err
		}
		trees[r] = t
	}
	return trees, nil
}
