package mssim

import (
	"math"
	"strings"
	"testing"

	"mpcgs/internal/gtree"
	"mpcgs/internal/newick"
)

func TestSimulateShape(t *testing.T) {
	trees, err := Simulate(Config{NSam: 12, Reps: 3, Theta: 1.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 3 {
		t.Fatalf("got %d trees, want 3", len(trees))
	}
	for i, tr := range trees {
		if tr.NTips() != 12 {
			t.Errorf("tree %d has %d tips, want 12", i, tr.NTips())
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("tree %d invalid: %v", i, err)
		}
	}
	if trees[0].Height() == trees[1].Height() {
		t.Error("replicates are identical")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(Config{NSam: 5, Reps: 2, Theta: 2.0, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(Config{NSam: 5, Reps: 2, Theta: 2.0, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for r := range a {
		if a[r].String() != b[r].String() {
			t.Errorf("rep %d differs across same-seed runs", r)
		}
	}
}

func TestSimulateHeightMean(t *testing.T) {
	// E[height] = theta * (1 - 1/n).
	theta, n := 1.5, 6
	trees, err := Simulate(Config{NSam: n, Reps: 20000, Theta: theta, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, tr := range trees {
		sum += tr.Height()
	}
	got := sum / float64(len(trees))
	want := theta * (1 - 1/float64(n))
	if math.Abs(got-want) > 0.03*want {
		t.Errorf("mean height = %v, want %v", got, want)
	}
}

func TestTipNames(t *testing.T) {
	names := TipNames(3)
	if names[0] != "1" || names[2] != "3" {
		t.Errorf("TipNames = %v", names)
	}
}

func TestNewickOutputParses(t *testing.T) {
	trees, err := Simulate(Config{NSam: 4, Reps: 2, Theta: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := NewickOutput(trees)
	if strings.Count(out, ";") != 2 {
		t.Fatalf("output %q should contain 2 trees", out)
	}
	parsed, err := newick.ParseAll(out)
	if err != nil {
		t.Fatalf("output does not parse: %v", err)
	}
	for _, p := range parsed {
		if _, err := gtree.FromNewick(p); err != nil {
			t.Errorf("round trip into gtree failed: %v", err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NSam: 1, Reps: 1, Theta: 1},
		{NSam: 3, Reps: 0, Theta: 1},
		{NSam: 3, Reps: 1, Theta: 0},
		{NSam: 3, Reps: 1, Theta: -1},
	}
	for i, cfg := range bad {
		if _, err := Simulate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
