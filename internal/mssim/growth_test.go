package mssim

import (
	"math"
	"testing"

	"mpcgs/internal/rng"
)

func TestSimulateGrowthZeroGMatchesConstant(t *testing.T) {
	// g = 0 must delegate to the constant-size simulator: identical
	// output for identical generator state.
	names := TipNames(5)
	a, err := SimulateGrowth(names, 1.0, 0, rng.NewMT19937(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateGrowth(names, 1.0, 0, rng.NewMT19937(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("g=0 simulation not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSimulateGrowthValid(t *testing.T) {
	src := rng.NewMT19937(2)
	names := TipNames(8)
	for _, g := range []float64{0.5, 2, 10, 100} {
		for trial := 0; trial < 50; trial++ {
			tr, err := SimulateGrowth(names, 1.0, g, src)
			if err != nil {
				t.Fatalf("g=%v: %v", g, err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("g=%v trial %d: %v", g, trial, err)
			}
		}
	}
}

func TestSimulateGrowthShrinksTrees(t *testing.T) {
	// Growth compresses deep coalescences: mean height under strong
	// growth must be well below the constant-size expectation.
	names := TipNames(6)
	src := rng.NewMT19937(3)
	const reps = 3000
	heightAt := func(g float64) float64 {
		sum := 0.0
		for r := 0; r < reps; r++ {
			tr, err := SimulateGrowth(names, 1.0, g, src)
			if err != nil {
				t.Fatal(err)
			}
			sum += tr.Height()
		}
		return sum / reps
	}
	h0 := heightAt(0)
	h5 := heightAt(5)
	h50 := heightAt(50)
	if !(h0 > h5 && h5 > h50) {
		t.Errorf("heights not decreasing with growth: %v, %v, %v", h0, h5, h50)
	}
	want := 1.0 * (1 - 1.0/6)
	if math.Abs(h0-want) > 0.05*want {
		t.Errorf("g=0 mean height = %v, want %v", h0, want)
	}
}

func TestSimulateGrowthFirstIntervalDistribution(t *testing.T) {
	// The first coalescence among k lineages under growth has survival
	// P(T > t) = exp(-k(k-1)(e^{gt}-1)/(g theta)); check the median.
	names := TipNames(4) // k = 4, rate factor 12
	theta, g := 2.0, 3.0
	src := rng.NewMT19937(4)
	const reps = 40000
	var times []float64
	for r := 0; r < reps; r++ {
		tr, err := SimulateGrowth(names, theta, g, src)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, tr.CoalescentAges()[0])
	}
	// Median solves k(k-1)(e^{gt}-1)/(g theta) = ln 2.
	k := 4.0
	wantMedian := math.Log(1+g*theta*math.Ln2/(k*(k-1))) / g
	// Empirical median.
	below := 0
	for _, x := range times {
		if x < wantMedian {
			below++
		}
	}
	frac := float64(below) / reps
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("P(T < analytic median) = %v, want 0.5", frac)
	}
}

func TestSimulateGrowthErrors(t *testing.T) {
	src := rng.NewMT19937(5)
	if _, err := SimulateGrowth(TipNames(1), 1, 1, src); err == nil {
		t.Error("single tip accepted")
	}
	if _, err := SimulateGrowth(TipNames(3), 0, 1, src); err == nil {
		t.Error("zero theta accepted")
	}
	if _, err := SimulateGrowth(TipNames(3), 1, -0.5, src); err == nil {
		t.Error("negative growth accepted")
	}
}

func TestSimulateGrowthReps(t *testing.T) {
	trees, err := SimulateGrowthReps(Config{NSam: 5, Reps: 3, Theta: 1, Seed: 6}, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 3 {
		t.Fatalf("got %d trees", len(trees))
	}
	for _, tr := range trees {
		if err := tr.Validate(); err != nil {
			t.Error(err)
		}
	}
	if _, err := SimulateGrowthReps(Config{NSam: 0, Reps: 1, Theta: 1}, 1); err == nil {
		t.Error("bad config accepted")
	}
}
