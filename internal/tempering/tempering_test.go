package tempering

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Chains: 0, MaxTemp: 8},
		{Chains: -1, MaxTemp: 8},
		{Chains: 4, MaxTemp: 0.5},
		{Chains: 4, MaxTemp: -3},
		{Chains: 4, MaxTemp: math.NaN()},
		{Chains: 4, MaxTemp: math.Inf(1)},
		{Chains: 4, MaxTemp: 8, Window: -1},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted", cfg)
		}
	}
	if _, err := New(Config{Chains: 1, MaxTemp: 1}); err != nil {
		t.Errorf("single flat chain rejected: %v", err)
	}
}

func TestGeometricScheduleMatchesReference(t *testing.T) {
	// The initial schedule must be bit-identical to the historical fixed
	// ladder: β_i = MaxTemp^{−i/(P−1)} computed with math.Pow.
	for _, p := range []int{1, 2, 3, 4, 8} {
		l, err := New(Config{Chains: p, MaxTemp: 8})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < p; i++ {
			want := 1.0
			if p > 1 {
				want = math.Pow(8, -float64(i)/float64(p-1))
			}
			if i == 0 {
				want = 1
			}
			if l.Beta(i) != want {
				t.Errorf("P=%d rung %d: beta %v, want %v", p, i, l.Beta(i), want)
			}
		}
	}
}

func TestRecordBookkeeping(t *testing.T) {
	l, err := New(Config{Chains: 4, MaxTemp: 8, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 6 attempts on pair 0 (window capacity 4): cumulative counters see
	// all of them, the window only the last 4.
	outcomes := []bool{true, true, false, true, false, false}
	for _, x := range outcomes {
		l.Record(0, x, true)
	}
	l.Record(2, true, false) // estimation phase
	if got := l.PairAttempts(); got[0] != 6 || got[1] != 0 || got[2] != 1 {
		t.Errorf("attempts %v", got)
	}
	if got := l.PairAccepts(); got[0] != 3 || got[2] != 1 {
		t.Errorf("accepts %v", got)
	}
	if got := l.EstPairAttempts(); got[0] != 0 || got[2] != 1 {
		t.Errorf("est attempts %v", got)
	}
	if r, ok := l.wins[0].rate(); !ok || r != 0.25 {
		// Window holds the last 4 outcomes: true, false, false, false.
		t.Errorf("windowed rate %v (ok=%v), want 0.25", r, ok)
	}
	if _, ok := l.wins[1].rate(); ok {
		t.Error("unattempted pair reports a windowed rate")
	}
}

// fullWindows fills every pair's window so adaptation is warmed up.
func fullWindows(l *Ladder, accepted bool) {
	for p := 0; p < l.Chains()-1; p++ {
		for k := 0; k < l.Window(); k++ {
			l.Record(p, accepted, false)
		}
	}
}

func TestFixedLadderNeverMoves(t *testing.T) {
	l, err := New(Config{Chains: 4, MaxTemp: 8, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := l.Betas()
	fullWindows(l, true)
	for i := 0; i < 500; i++ {
		l.Record(i%3, i%2 == 0, true)
	}
	for i, b := range l.Betas() {
		if b != want[i] {
			t.Fatalf("non-adaptive ladder moved: rung %d %v -> %v", i, want[i], b)
		}
	}
}

func TestFrozenLadderNeverMoves(t *testing.T) {
	l, err := New(Config{Chains: 4, MaxTemp: 8, Adapt: true, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	fullWindows(l, true)
	for i := 0; i < 200; i++ {
		l.Record(i%3, i%2 == 0, true)
	}
	want := l.Betas()
	for i := 0; i < 500; i++ {
		l.Record(i%3, i%2 == 0, false) // frozen: adaptNow false
	}
	for i, b := range l.Betas() {
		if b != want[i] {
			t.Fatalf("frozen ladder moved: rung %d %v -> %v", i, want[i], b)
		}
	}
}

func TestAdaptationWidensAcceptingPairs(t *testing.T) {
	// Pair 0 accepts every swap, pair 1 and 2 none: pair 0's temperature
	// gap must grow relative to the others, and the schedule must remain
	// a valid pinned ladder throughout.
	l, err := New(Config{Chains: 4, MaxTemp: 8, Adapt: true, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	logGap := func(i int) float64 {
		return math.Log(1/l.Beta(i+1)) - math.Log(1/l.Beta(i))
	}
	g0 := logGap(0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := rng.Intn(3)
		l.Record(p, p == 0, true)
	}
	if l.Beta(0) != 1 {
		t.Fatalf("cold rung beta %v, want 1", l.Beta(0))
	}
	if got := 1 / l.Beta(3); math.Abs(got-8) > 1e-9 {
		t.Fatalf("hot rung temperature %v, want pinned at 8", got)
	}
	for i := 1; i < 4; i++ {
		if !(l.Beta(i) > 0 && l.Beta(i) < l.Beta(i-1)) {
			t.Fatalf("betas not strictly decreasing: %v", l.Betas())
		}
	}
	if logGap(0) <= g0 {
		t.Errorf("always-accepting pair's gap did not widen: %v -> %v", g0, logGap(0))
	}
	if logGap(0) <= logGap(1) || logGap(0) <= logGap(2) {
		t.Errorf("accepting pair's gap %v not dominant over %v, %v", logGap(0), logGap(1), logGap(2))
	}
}

func TestFlatLadderDoesNotAdapt(t *testing.T) {
	// MaxTemp 1: every rung is cold, there is no temperature span to
	// redistribute, and adaptation must be a no-op.
	l, err := New(Config{Chains: 4, MaxTemp: 1, Adapt: true, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	fullWindows(l, true)
	for i := 0; i < 200; i++ {
		l.Record(i%3, true, true)
	}
	for i, b := range l.Betas() {
		if b != 1 {
			t.Fatalf("flat ladder rung %d moved to %v", i, b)
		}
	}
}

func TestTwoRungLadderDoesNotAdapt(t *testing.T) {
	// P=2: both endpoints are pinned, there is no interior temperature.
	l, err := New(Config{Chains: 2, MaxTemp: 8, Adapt: true, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := l.Betas()
	fullWindows(l, true)
	for i := 0; i < 200; i++ {
		l.Record(0, i%2 == 0, true)
	}
	for i, b := range l.Betas() {
		if b != want[i] {
			t.Fatalf("two-rung ladder moved: rung %d %v -> %v", i, want[i], b)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cfg := Config{Chains: 5, MaxTemp: 32, Adapt: true, Window: 8}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		l.Record(rng.Intn(4), rng.Intn(3) == 0, i < 700)
	}
	snap := l.Snapshot()

	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// Continue both with the identical attempt sequence: every beta must
	// stay bit-identical, which is what makes kill/resume exact.
	seqRng := rand.New(rand.NewSource(9))
	type ev struct {
		p   int
		acc bool
		ad  bool
	}
	var evs []ev
	for i := 0; i < 500; i++ {
		evs = append(evs, ev{seqRng.Intn(4), seqRng.Intn(2) == 0, i < 200})
	}
	for _, e := range evs {
		l.Record(e.p, e.acc, e.ad)
		restored.Record(e.p, e.acc, e.ad)
	}
	for i := range l.betas {
		if l.betas[i] != restored.betas[i] {
			t.Fatalf("rung %d diverged after restore: %v vs %v", i, l.betas[i], restored.betas[i])
		}
	}
	for i := range l.attempts {
		if l.attempts[i] != restored.attempts[i] || l.accepts[i] != restored.accepts[i] ||
			l.estAttempts[i] != restored.estAttempts[i] || l.estAccepts[i] != restored.estAccepts[i] {
			t.Fatalf("pair %d counters diverged after restore", i)
		}
	}
	if l.adapts != restored.adapts {
		t.Fatalf("adaptation clock diverged: %d vs %d", l.adapts, restored.adapts)
	}
}

func TestRestoreRejectsMismatches(t *testing.T) {
	mk := func(cfg Config) *Ladder {
		l, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	base := Config{Chains: 4, MaxTemp: 8, Adapt: true, Window: 8}
	snap := mk(base).Snapshot()

	if err := mk(Config{Chains: 3, MaxTemp: 8, Adapt: true, Window: 8}).Restore(snap); err == nil {
		t.Error("restore accepted a different rung count")
	}
	if err := mk(Config{Chains: 4, MaxTemp: 8, Window: 8}).Restore(snap); err == nil {
		t.Error("restore accepted an adaptation-mode mismatch")
	}
	if err := mk(Config{Chains: 4, MaxTemp: 8, Adapt: true, Window: 16}).Restore(snap); err == nil {
		t.Error("restore accepted a window-size mismatch")
	}
	if err := mk(base).Restore(mk(Config{Chains: 4, MaxTemp: 32, Adapt: true, Window: 8}).Snapshot()); err == nil {
		t.Error("adaptive restore accepted a snapshot taken under a different MaxTemp")
	}
	if err := mk(Config{Chains: 4, MaxTemp: 8, Window: 8}).Restore(mk(Config{Chains: 4, MaxTemp: 32, Window: 8}).Snapshot()); err == nil {
		t.Error("fixed-ladder restore accepted a snapshot taken under a different MaxTemp")
	}
	bad0 := mk(base).Snapshot()
	bad0.Gaps[1] = math.NaN()
	if err := mk(base).Restore(bad0); err == nil {
		t.Error("restore accepted a NaN gap")
	}
	bad0 = mk(base).Snapshot()
	bad0.Gaps[1] = -bad0.Gaps[1]
	if err := mk(base).Restore(bad0); err == nil {
		t.Error("restore accepted a negative gap")
	}
	if err := mk(base).Restore(nil); err == nil {
		t.Error("restore accepted a nil snapshot")
	}
	bad := mk(base).Snapshot()
	bad.Betas[0] = 0.9
	if err := mk(base).Restore(bad); err == nil {
		t.Error("restore accepted a cold rung with beta != 1")
	}
	bad = mk(base).Snapshot()
	bad.Accepts[1] = 5 // accepts > attempts
	if err := mk(base).Restore(bad); err == nil {
		t.Error("restore accepted accepts > attempts")
	}
	bad = mk(base).Snapshot()
	bad.Windows[0].Outcomes = []byte{2}
	if err := mk(base).Restore(bad); err == nil {
		t.Error("restore accepted a non-binary window outcome")
	}
	bad = mk(base).Snapshot()
	bad.Windows[0].Outcomes = make([]byte, 9)
	if err := mk(base).Restore(bad); err == nil {
		t.Error("restore accepted an over-capacity window")
	}
}

func TestWindowRingRoundTrip(t *testing.T) {
	// The ring buffer's logical serialization must reproduce identical
	// future evictions: fill past capacity, snapshot, restore, then push
	// the same tail into both and compare rates at every step.
	l, _ := New(Config{Chains: 2, MaxTemp: 8, Window: 4})
	pattern := []bool{true, false, true, true, false, false, true}
	for _, x := range pattern {
		l.Record(0, x, false)
	}
	r, _ := New(Config{Chains: 2, MaxTemp: 8, Window: 4})
	if err := r.Restore(l.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x := i%3 == 0
		l.Record(0, x, false)
		r.Record(0, x, false)
		lr, _ := l.wins[0].rate()
		rr, _ := r.wins[0].rate()
		if lr != rr {
			t.Fatalf("windowed rates diverged at push %d: %v vs %v", i, lr, rr)
		}
	}
}
