// Package tempering is the temperature-ladder controller of the MC³
// (Metropolis-coupled MCMC) sampler: it owns the β schedule the heated
// rungs temper their likelihoods with, tracks per-adjacent-pair swap
// acceptance in sliding windows, and — when adaptation is on — retunes
// the ladder at runtime toward uniform swap acceptance across pairs, the
// way the production LAMARC package adapts its heating at runtime.
//
// # Why adapt
//
// A fixed geometric ladder spends its rungs uniformly in log-temperature
// space, but the posterior decides where the hard temperature gaps are:
// on multimodal tree spaces some adjacent pairs swap constantly (the rungs
// are redundant) while others almost never do (the ladder is broken there,
// and states cannot ferry down to the cold chain). Uniform swap acceptance
// across pairs is the standard optimality target (Vousden, Farr & Mandel
// 2016): it equalizes the round-trip flux of states through the ladder.
//
// # The update
//
// The ladder is parameterized by the log-temperature gaps
//
//	g_i = log T_{i+1} − log T_i  (i = 0..P−2, all g_i > 0),
//
// with both endpoints pinned: T_0 = 1 (the cold chain is always the
// untempered posterior) and T_{P−1} = MaxTemp (the configured ceiling).
// After every recorded swap attempt during the adaptation phase, each
// gap takes one stochastic-approximation step against the windowed
// per-pair acceptance rates a_i:
//
//	g_i ← g_i · exp(κ_t · (a_i − ā)),   κ_t = κ0 · t0 / (t0 + t),
//
// then the gaps are renormalized to keep Σ g_i = log MaxTemp. A pair
// accepting more swaps than the average has its temperature gap widened,
// one accepting fewer has it narrowed, so the rates are driven toward
// each other; the decaying gain κ_t makes the ladder settle (vanishing
// adaptation) instead of chasing window noise forever. The caller freezes
// adaptation after burn-in — the ladder then holds still, so recorded
// draws target fixed, correct distributions.
//
// # Determinism
//
// The controller draws no randomness of its own: its state is a pure
// function of the recorded swap-attempt history, which is what makes a
// kill/resume with adaptation on bit-identical — the snapshot carries the
// betas, gaps, windows and adaptation clock, and the resumed controller
// continues exactly where the interrupted one stopped.
package tempering

import (
	"fmt"
	"math"
)

// Adaptation constants: the initial gain and the decay horizon (in swap
// attempts) of the stochastic-approximation schedule, and the floor that
// keeps every log-temperature gap strictly positive.
//
// The gain is small because each update is driven by a single binary
// swap outcome (a Robbins-Monro step, variance a(1−a) per observation),
// and the horizon is long deliberately: early burn-in rates are
// dominated by the equilibration transient (all rungs start at the same
// tree, so early swaps accept at biased rates), and a fast-decaying gain
// would lock the ladder onto that transient. With a slow decay the late
// — equilibrated — attempts still carry enough gain to correct the
// early bias before the freeze.
const (
	kappa0 = 0.05
	tau0   = 2000.0
	minGap = 1e-3
)

// DefaultWindow is the sliding-window size (per adjacent pair) used when
// Config.Window is zero.
const DefaultWindow = 64

// Config parameterizes a ladder controller.
type Config struct {
	// Chains is the ladder size P (≥ 1).
	Chains int
	// MaxTemp is the hottest rung's temperature T_{P−1} (≥ 1). 1 makes
	// the ladder flat (every rung cold).
	MaxTemp float64
	// Adapt turns on swap-rate-driven ladder adaptation. With it off the
	// ladder is the fixed geometric reference schedule.
	Adapt bool
	// Window is the sliding-window size for per-pair swap-rate tracking;
	// 0 selects DefaultWindow.
	Window int
}

// window is one adjacent pair's sliding record of swap outcomes: a ring
// buffer of the last cap attempts (1 = accepted).
type window struct {
	buf  []uint8
	head int // next write position
	n    int // filled entries
	acc  int // accepted entries among the filled ones
}

func (w *window) push(accepted bool) {
	v := uint8(0)
	if accepted {
		v = 1
	}
	if w.n == len(w.buf) {
		w.acc -= int(w.buf[w.head])
	} else {
		w.n++
	}
	w.buf[w.head] = v
	w.acc += int(v)
	w.head = (w.head + 1) % len(w.buf)
}

// rate returns the windowed acceptance rate, and whether the window has
// any data at all.
func (w *window) rate() (float64, bool) {
	if w.n == 0 {
		return 0, false
	}
	return float64(w.acc) / float64(w.n), true
}

// logical returns the window's outcomes oldest-to-newest, the canonical
// serialization order.
func (w *window) logical() []byte {
	out := make([]byte, 0, w.n)
	start := (w.head - w.n + len(w.buf)) % len(w.buf)
	for k := 0; k < w.n; k++ {
		out = append(out, w.buf[(start+k)%len(w.buf)])
	}
	return out
}

// Ladder is the temperature-ladder controller of one heated run. It is
// not safe for concurrent use; the run's swap loop owns it.
type Ladder struct {
	cfg    Config
	window int
	// betas holds β_i = 1/T_i per rung; betas[0] is always exactly 1.
	betas []float64
	// gaps holds the log-temperature gaps the adaptation moves; kept in
	// sync with betas (betas are the authoritative tempering exponents,
	// gaps the authoritative adaptation coordinates).
	gaps []float64
	// attempts/accepts are cumulative per-pair counters (diagnostics and
	// the per-pair swap-rate report); estAttempts/estAccepts count only
	// the estimation phase (attempts recorded with adaptNow false, i.e.
	// after the freeze), the rates that describe the ladder actually
	// used for the recorded draws.
	attempts    []int64
	accepts     []int64
	estAttempts []int64
	estAccepts  []int64
	wins        []window
	// adapts counts stochastic-approximation updates applied, the clock
	// of the decaying gain.
	adapts int64
	// canAdapt is false when the configuration leaves nothing to adapt:
	// adaptation off, fewer than 3 rungs (both endpoints are pinned), or
	// a flat ladder (MaxTemp 1).
	canAdapt bool
}

// New builds a ladder controller. The initial schedule is the geometric
// ladder T_i = MaxTemp^{i/(P−1)} in both modes, so an adaptive run starts
// from exactly the fixed reference.
func New(cfg Config) (*Ladder, error) {
	if cfg.Chains < 1 {
		return nil, fmt.Errorf("tempering: ladder needs at least 1 chain, got %d", cfg.Chains)
	}
	if cfg.MaxTemp < 1 || math.IsNaN(cfg.MaxTemp) || math.IsInf(cfg.MaxTemp, 0) {
		return nil, fmt.Errorf("tempering: MaxTemp %v must be a finite value at least 1", cfg.MaxTemp)
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("tempering: swap window %d must not be negative", cfg.Window)
	}
	w := cfg.Window
	if w == 0 {
		w = DefaultWindow
	}
	p := cfg.Chains
	l := &Ladder{
		cfg:    cfg,
		window: w,
		betas:  make([]float64, p),
	}
	// The geometric reference schedule, bit-identical to the historical
	// fixed ladder: β_i = MaxTemp^{−i/(P−1)}.
	for i := range l.betas {
		if p == 1 {
			l.betas[i] = 1
			break
		}
		l.betas[i] = math.Pow(cfg.MaxTemp, -float64(i)/float64(p-1))
	}
	l.betas[0] = 1
	if p > 1 {
		logMaxT := math.Log(cfg.MaxTemp)
		l.gaps = make([]float64, p-1)
		for i := range l.gaps {
			l.gaps[i] = logMaxT / float64(p-1)
		}
		l.attempts = make([]int64, p-1)
		l.accepts = make([]int64, p-1)
		l.estAttempts = make([]int64, p-1)
		l.estAccepts = make([]int64, p-1)
		l.wins = make([]window, p-1)
		for i := range l.wins {
			l.wins[i].buf = make([]uint8, w)
		}
		l.canAdapt = cfg.Adapt && p >= 3 && logMaxT > 0
	}
	return l, nil
}

// Chains returns the ladder size P.
func (l *Ladder) Chains() int { return len(l.betas) }

// Adaptive reports whether this controller was configured to adapt.
func (l *Ladder) Adaptive() bool { return l.cfg.Adapt }

// Window returns the effective sliding-window size.
func (l *Ladder) Window() int { return l.window }

// Adaptations returns the number of stochastic-approximation updates
// applied so far. Zero on an adaptive ladder means adaptation never
// engaged — typically a burn-in too short for every pair's window to
// fill once (the warm-up), worth surfacing to the user.
func (l *Ladder) Adaptations() int64 { return l.adapts }

// Beta returns rung i's tempering exponent β_i.
func (l *Ladder) Beta(i int) float64 { return l.betas[i] }

// Betas returns a copy of the current β schedule.
func (l *Ladder) Betas() []float64 { return append([]float64(nil), l.betas...) }

// PairAttempts returns a copy of the cumulative per-pair swap-attempt
// counts (index i is the (i, i+1) pair).
func (l *Ladder) PairAttempts() []int64 { return append([]int64(nil), l.attempts...) }

// PairAccepts returns a copy of the cumulative per-pair accepted-swap
// counts.
func (l *Ladder) PairAccepts() []int64 { return append([]int64(nil), l.accepts...) }

// EstPairAttempts returns a copy of the estimation-phase (post-freeze)
// per-pair swap-attempt counts.
func (l *Ladder) EstPairAttempts() []int64 { return append([]int64(nil), l.estAttempts...) }

// EstPairAccepts returns a copy of the estimation-phase per-pair
// accepted-swap counts.
func (l *Ladder) EstPairAccepts() []int64 { return append([]int64(nil), l.estAccepts...) }

// Record observes one swap attempt on adjacent pair (pair, pair+1). When
// adaptNow is true (the run is still in its adaptation phase — burn-in)
// and the configuration has anything to adapt, the ladder takes one
// stochastic-approximation step; afterwards Beta(i) reflects the moved
// schedule. With adaptNow false the ladder only does bookkeeping, so a
// frozen ladder never moves.
func (l *Ladder) Record(pair int, accepted, adaptNow bool) {
	l.attempts[pair]++
	if accepted {
		l.accepts[pair]++
	}
	if !adaptNow {
		l.estAttempts[pair]++
		if accepted {
			l.estAccepts[pair]++
		}
	}
	l.wins[pair].push(accepted)
	if adaptNow && l.canAdapt && l.warmedUp() {
		l.adaptStep(pair, accepted)
	}
}

// warmedUp reports whether every pair's sliding window has filled at
// least once. Until then the rate estimates are dominated by the first
// few — equilibration-transient — attempts, and adapting on them would
// steer the ladder toward a profile that evaporates as the chains reach
// their stationary regimes.
func (l *Ladder) warmedUp() bool {
	for i := range l.wins {
		if l.wins[i].n < len(l.wins[i].buf) {
			return false
		}
	}
	return true
}

// adaptStep applies one gain-decayed Robbins-Monro update to the
// attempted pair's gap — driven by that attempt's fresh binary outcome
// against the windowed mean rate of all pairs, so the feedback never
// acts on a stale estimate of the gap it is moving — then renormalizes
// the gaps to the pinned ladder height and rebuilds the β schedule.
// In expectation the update is κ·(a_pair − ā): a pair accepting more
// swaps than the ladder average has its temperature gap widened, one
// accepting fewer has it narrowed, until the profile is flat.
func (l *Ladder) adaptStep(pair int, accepted bool) {
	mean := 0.0
	for i := range l.wins {
		r, _ := l.wins[i].rate()
		mean += r
	}
	mean /= float64(len(l.wins))
	x := 0.0
	if accepted {
		x = 1
	}
	kappa := kappa0 * tau0 / (tau0 + float64(l.adapts))
	l.adapts++
	l.gaps[pair] *= math.Exp(kappa * (x - mean))
	sum := 0.0
	for i := range l.gaps {
		if l.gaps[i] < minGap {
			l.gaps[i] = minGap
		}
		sum += l.gaps[i]
	}
	// Pin the endpoints: the gaps always span exactly log MaxTemp.
	scale := math.Log(l.cfg.MaxTemp) / sum
	logT := 0.0
	for i := range l.gaps {
		l.gaps[i] *= scale
		logT += l.gaps[i]
		l.betas[i+1] = math.Exp(-logT)
	}
	l.betas[0] = 1
}

// WindowState is the serialized form of one pair's sliding window: the
// recorded outcomes oldest-to-newest (1 = accepted swap).
type WindowState struct {
	Outcomes []byte
}

// State is the serializable runtime state of a ladder controller — the
// part of an adapted ladder that is not derivable from anything else and
// must join the heated snapshot (checkpoint format v2).
type State struct {
	Adapt       bool
	Window      int
	Betas       []float64
	Gaps        []float64
	Attempts    []int64
	Accepts     []int64
	EstAttempts []int64
	EstAccepts  []int64
	Windows     []WindowState
	Adapts      int64
}

// Snapshot exports the controller's state.
func (l *Ladder) Snapshot() *State {
	s := &State{
		Adapt:       l.cfg.Adapt,
		Window:      l.window,
		Betas:       append([]float64(nil), l.betas...),
		Gaps:        append([]float64(nil), l.gaps...),
		Attempts:    append([]int64(nil), l.attempts...),
		Accepts:     append([]int64(nil), l.accepts...),
		EstAttempts: append([]int64(nil), l.estAttempts...),
		EstAccepts:  append([]int64(nil), l.estAccepts...),
		Adapts:      l.adapts,
	}
	for i := range l.wins {
		s.Windows = append(s.Windows, WindowState{Outcomes: l.wins[i].logical()})
	}
	return s
}

// Restore overwrites the controller with a snapshot taken from a ladder
// of the same configuration. Mismatched configurations — a different
// rung count, window size or adaptation mode — are rejected: the saved
// schedule would be meaningless under the new configuration.
func (l *Ladder) Restore(s *State) error {
	p := len(l.betas)
	if s == nil {
		return fmt.Errorf("tempering: nil ladder snapshot")
	}
	if s.Adapt != l.cfg.Adapt {
		return fmt.Errorf("tempering: snapshot adaptation mode (adapt=%v) does not match the run (adapt=%v)", s.Adapt, l.cfg.Adapt)
	}
	if s.Window != l.window {
		return fmt.Errorf("tempering: snapshot swap window %d does not match the run's %d", s.Window, l.window)
	}
	if len(s.Betas) != p {
		return fmt.Errorf("tempering: snapshot has %d rungs, ladder has %d", len(s.Betas), p)
	}
	if s.Betas[0] != 1 {
		return fmt.Errorf("tempering: snapshot cold rung has beta %v, want exactly 1", s.Betas[0])
	}
	for i := 1; i < p; i++ {
		if !(s.Betas[i] > 0 && s.Betas[i] <= s.Betas[i-1]) {
			return fmt.Errorf("tempering: snapshot betas not a positive non-increasing ladder at rung %d", i)
		}
	}
	if !l.cfg.Adapt {
		// A non-adaptive ladder is fully determined by its configuration:
		// the snapshot must carry exactly the geometric schedule this run
		// recomputed, or MaxTemp/Chains changed since the snapshot.
		for i := range l.betas {
			if s.Betas[i] != l.betas[i] {
				return fmt.Errorf("tempering: snapshot rung %d has beta %v, fixed ladder has %v (MaxTemp/Chains changed?)",
					i, s.Betas[i], l.betas[i])
			}
		}
	} else if p > 1 {
		// An adapted schedule still spans exactly the configured ladder
		// height: its hottest rung must sit at MaxTemp (up to the float
		// error of the renormalization), or the snapshot was taken under
		// a different MaxTemp.
		logMaxT := math.Log(l.cfg.MaxTemp)
		if got := -math.Log(s.Betas[p-1]); math.Abs(got-logMaxT) > 1e-9*math.Max(1, logMaxT) {
			return fmt.Errorf("tempering: snapshot hottest rung at temperature %v, run is configured for MaxTemp %v",
				math.Exp(got), l.cfg.MaxTemp)
		}
		sum := 0.0
		for i, g := range s.Gaps {
			// A flat ladder (MaxTemp 1) has all-zero gaps; any real span
			// requires every gap positive and finite.
			if logMaxT == 0 {
				if g != 0 {
					return fmt.Errorf("tempering: snapshot gap %d is %v on a flat ladder, want 0", i, g)
				}
				continue
			}
			if !(g > 0) || math.IsInf(g, 0) {
				return fmt.Errorf("tempering: snapshot gap %d is %v, want a positive finite value", i, g)
			}
			sum += g
		}
		if math.Abs(sum-logMaxT) > 1e-9*math.Max(1, logMaxT) {
			return fmt.Errorf("tempering: snapshot gaps span %v, run's ladder height is %v (MaxTemp changed?)",
				sum, logMaxT)
		}
	}
	nPairs := p - 1
	if p == 1 {
		nPairs = 0
	}
	if len(s.Gaps) != nPairs || len(s.Attempts) != nPairs || len(s.Accepts) != nPairs ||
		len(s.EstAttempts) != nPairs || len(s.EstAccepts) != nPairs || len(s.Windows) != nPairs {
		return fmt.Errorf("tempering: snapshot pair state is ragged (%d gaps, %d attempts, %d accepts, %d est attempts, %d est accepts, %d windows for %d pairs)",
			len(s.Gaps), len(s.Attempts), len(s.Accepts), len(s.EstAttempts), len(s.EstAccepts), len(s.Windows), nPairs)
	}
	for i := 0; i < nPairs; i++ {
		if s.Attempts[i] < 0 || s.Accepts[i] < 0 || s.Accepts[i] > s.Attempts[i] {
			return fmt.Errorf("tempering: snapshot pair %d has %d accepts of %d attempts", i, s.Accepts[i], s.Attempts[i])
		}
		if s.EstAttempts[i] < 0 || s.EstAccepts[i] < 0 || s.EstAccepts[i] > s.EstAttempts[i] || s.EstAttempts[i] > s.Attempts[i] {
			return fmt.Errorf("tempering: snapshot pair %d has inconsistent estimation-phase counts (%d/%d of %d total)",
				i, s.EstAccepts[i], s.EstAttempts[i], s.Attempts[i])
		}
		if len(s.Windows[i].Outcomes) > l.window {
			return fmt.Errorf("tempering: snapshot pair %d window has %d outcomes, capacity is %d", i, len(s.Windows[i].Outcomes), l.window)
		}
		for _, v := range s.Windows[i].Outcomes {
			if v > 1 {
				return fmt.Errorf("tempering: snapshot pair %d window outcome %d is not 0/1", i, v)
			}
		}
	}
	if s.Adapts < 0 {
		return fmt.Errorf("tempering: snapshot adaptation clock %d is negative", s.Adapts)
	}
	copy(l.betas, s.Betas)
	copy(l.gaps, s.Gaps)
	copy(l.attempts, s.Attempts)
	copy(l.accepts, s.Accepts)
	copy(l.estAttempts, s.EstAttempts)
	copy(l.estAccepts, s.EstAccepts)
	l.adapts = s.Adapts
	for i := 0; i < nPairs; i++ {
		w := &l.wins[i]
		for j := range w.buf {
			w.buf[j] = 0
		}
		out := s.Windows[i].Outcomes
		copy(w.buf, out)
		w.n = len(out)
		w.head = len(out) % len(w.buf)
		w.acc = 0
		for _, v := range out {
			w.acc += int(v)
		}
	}
	return nil
}
