package rng

import (
	"math"
	"testing"
)

// Known-answer test: the first outputs of MT19937 seeded with 5489 (the
// reference default) are published in the original mt19937ar.c output.
func TestMT19937KnownAnswer(t *testing.T) {
	m := NewMT19937(5489)
	want := []uint32{3499211612, 581869302, 3890346734, 3586334585, 545404204}
	for i, w := range want {
		if got := m.Uint32(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

// Known-answer test for init_by_array with the reference key
// {0x123, 0x234, 0x345, 0x456}: first outputs from mt19937ar.out.
func TestMT19937SeedArrayKnownAnswer(t *testing.T) {
	m := &MT19937{}
	m.SeedArray([]uint32{0x123, 0x234, 0x345, 0x456})
	want := []uint32{1067595299, 955945823, 477289528, 4107218783, 4228976476}
	for i, w := range want {
		if got := m.Uint32(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

func TestMT19937Determinism(t *testing.T) {
	a, b := NewMT19937(42), NewMT19937(42)
	for i := 0; i < 2000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	m := NewMT19937(7)
	for i := 0; i < 100000; i++ {
		f := m.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	m := NewMT19937(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		f := m.Float64()
		sum += f
		sumsq += f * f
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestStreamSetIndependence(t *testing.T) {
	s := NewStreamSet(8, 99)
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	// Streams must differ from each other at the same execution point.
	firsts := map[uint32]int{}
	for i := 0; i < 8; i++ {
		v := s.Stream(i).Uint32()
		if prev, dup := firsts[v]; dup {
			t.Errorf("streams %d and %d emitted identical first output %d", prev, i, v)
		}
		firsts[v] = i
	}
}

func TestStreamSetDeterministic(t *testing.T) {
	a := NewStreamSet(4, 123)
	b := NewStreamSet(4, 123)
	for i := 0; i < 4; i++ {
		for k := 0; k < 100; k++ {
			if a.Stream(i).Uint32() != b.Stream(i).Uint32() {
				t.Fatalf("stream %d diverged at step %d", i, k)
			}
		}
	}
}

func TestStreamSetCrossCorrelation(t *testing.T) {
	s := NewStreamSet(2, 5)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		a := s.Stream(0).Float64() - 0.5
		b := s.Stream(1).Float64() - 0.5
		sum += a * b
	}
	corr := sum / n * 12 // normalized by uniform variance 1/12
	if math.Abs(corr) > 0.03 {
		t.Errorf("cross-stream correlation = %v, want ~0", corr)
	}
}

func TestIntnBounds(t *testing.T) {
	m := NewMT19937(3)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		v := Intn(m, 5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn bucket %d count %d, want ~10000", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	Intn(NewMT19937(1), 0)
}

func TestExpMean(t *testing.T) {
	m := NewMT19937(17)
	const n = 200000
	rate := 2.5
	var sum float64
	for i := 0; i < n; i++ {
		sum += Exp(m, rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp mean = %v, want %v", mean, 1/rate)
	}
}

func TestTruncExpWithinBound(t *testing.T) {
	m := NewMT19937(23)
	for i := 0; i < 20000; i++ {
		x := TruncExp(m, 3.0, 0.7)
		if x < 0 || x > 0.7 {
			t.Fatalf("TruncExp out of [0, 0.7]: %v", x)
		}
	}
}

func TestTruncExpMean(t *testing.T) {
	m := NewMT19937(29)
	rate, bound := 2.0, 1.5
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		sum += TruncExp(m, rate, bound)
	}
	mean := sum / n
	// E[X] for truncated exponential: 1/rate - bound*exp(-rate*bound)/(1-exp(-rate*bound))
	rb := rate * bound
	want := 1/rate - bound*math.Exp(-rb)/(1-math.Exp(-rb))
	if math.Abs(mean-want) > 0.005 {
		t.Errorf("TruncExp mean = %v, want %v", mean, want)
	}
}

func TestTruncExpZeroRateIsUniform(t *testing.T) {
	m := NewMT19937(31)
	const n = 100000
	bound := 2.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += TruncExp(m, 0, bound)
	}
	if math.Abs(sum/n-bound/2) > 0.02 {
		t.Errorf("TruncExp(rate=0) mean = %v, want %v", sum/n, bound/2)
	}
}

func TestTruncExpNegativeRateMirrors(t *testing.T) {
	m := NewMT19937(37)
	rate, bound := -2.0, 1.0
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := TruncExp(m, rate, bound)
		if x < 0 || x > bound {
			t.Fatalf("out of range: %v", x)
		}
		sum += x
	}
	// Mirrored: mean = bound - meanOfPositive.
	rb := 2.0 * bound
	wantPos := 1/2.0 - bound*math.Exp(-rb)/(1-math.Exp(-rb))
	want := bound - wantPos
	if math.Abs(sum/n-want) > 0.005 {
		t.Errorf("mean = %v, want %v", sum/n, want)
	}
}

func TestTruncExpZeroBound(t *testing.T) {
	if x := TruncExp(NewMT19937(1), 1.0, 0); x != 0 {
		t.Errorf("TruncExp with bound 0 = %v, want 0", x)
	}
}

func TestCategoricalProportions(t *testing.T) {
	m := NewMT19937(41)
	w := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[Categorical(m, w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Categorical p[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalZeroWeightNeverChosen(t *testing.T) {
	m := NewMT19937(43)
	w := []float64{0, 1, 0}
	for i := 0; i < 10000; i++ {
		if Categorical(m, w) != 1 {
			t.Fatal("zero-weight index chosen")
		}
	}
}

func TestLogCategoricalMatchesLinear(t *testing.T) {
	m := NewMT19937(47)
	logw := []float64{math.Log(1), math.Log(2), math.Log(7)}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[LogCategorical(m, logw)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("LogCategorical p[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestLogCategoricalExtremeWeights(t *testing.T) {
	m := NewMT19937(53)
	// Underflow-scale weights must still be compared correctly.
	logw := []float64{-1e6, -1e6 + math.Log(3)}
	counts := make([]int, 2)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[LogCategorical(m, logw)]++
	}
	got := float64(counts[1]) / n
	if math.Abs(got-0.75) > 0.01 {
		t.Errorf("p[1] = %v, want 0.75", got)
	}
}

func TestUniformPair(t *testing.T) {
	m := NewMT19937(59)
	seen := map[[2]int]int{}
	const n = 60000
	for k := 0; k < n; k++ {
		i, j := UniformPair(m, 4)
		if i < 0 || j >= 4 || i >= j {
			t.Fatalf("bad pair (%d,%d)", i, j)
		}
		seen[[2]int{i, j}]++
	}
	if len(seen) != 6 {
		t.Fatalf("got %d distinct pairs, want 6", len(seen))
	}
	for p, c := range seen {
		if math.Abs(float64(c)/n-1.0/6) > 0.01 {
			t.Errorf("pair %v frequency %v, want ~1/6", p, float64(c)/n)
		}
	}
}

func TestJitterPositiveSmall(t *testing.T) {
	m := NewMT19937(61)
	for i := 0; i < 1000; i++ {
		j := Jitter(m, 1e-9)
		if j <= 0 || j > 1e-9*1.001 {
			t.Fatalf("Jitter = %v out of (0, 1e-9]", j)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	m := NewMT19937(67)
	const n = 300000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := Normal(m)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Normal variance = %v, want ~1", variance)
	}
}

func TestNormalTails(t *testing.T) {
	m := NewMT19937(71)
	const n = 200000
	within1, within2 := 0, 0
	for i := 0; i < n; i++ {
		x := math.Abs(Normal(m))
		if x < 1 {
			within1++
		}
		if x < 2 {
			within2++
		}
	}
	if f := float64(within1) / n; math.Abs(f-0.6827) > 0.01 {
		t.Errorf("P(|X|<1) = %v, want 0.683", f)
	}
	if f := float64(within2) / n; math.Abs(f-0.9545) > 0.01 {
		t.Errorf("P(|X|<2) = %v, want 0.954", f)
	}
}

func TestLogNormalStepPositive(t *testing.T) {
	m := NewMT19937(73)
	x := 2.5
	for i := 0; i < 10000; i++ {
		y := LogNormalStep(m, x, 0.3)
		if y <= 0 || math.IsNaN(y) || math.IsInf(y, 0) {
			t.Fatalf("LogNormalStep produced %v", y)
		}
	}
}

func TestLogNormalStepMedianPreserved(t *testing.T) {
	// The multiplicative walk is symmetric in log space: the median of
	// one step equals the starting point.
	m := NewMT19937(79)
	x := 1.7
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		if LogNormalStep(m, x, 0.5) < x {
			below++
		}
	}
	if f := float64(below) / n; math.Abs(f-0.5) > 0.01 {
		t.Errorf("P(step < x) = %v, want 0.5", f)
	}
}
