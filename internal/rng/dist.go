package rng

import (
	"math"

	"mpcgs/internal/logspace"
)

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func Intn(src Source, n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Rejection sampling over 53-bit floats is unbiased enough for n far
	// below 2^53, which holds for every use in the sampler (n is a node or
	// proposal count).
	return int(src.Float64() * float64(n))
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func Exp(src Source, rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := src.Float64()
	// 1-u is in (0,1], so the log is finite.
	return -math.Log1p(-u) / rate
}

// TruncExp returns a variate from the exponential distribution with the
// given rate truncated to [0, bound], by CDF inversion:
//
//	F(x) = (1 - exp(-rate*x)) / (1 - exp(-rate*bound)).
//
// A rate of zero (or a rate*bound small enough that the distribution is
// numerically uniform) degrades gracefully to a uniform draw on [0, bound].
// Negative rates are allowed and produce the mirrored density, which the
// interval-placement sampler needs when the downhill direction reverses.
func TruncExp(src Source, rate, bound float64) float64 {
	if bound < 0 {
		panic("rng: TruncExp with negative bound")
	}
	if bound == 0 {
		return 0
	}
	if rate < 0 {
		// Density proportional to exp(-rate*x) with rate < 0 rises toward
		// bound; sample the mirrored positive-rate distribution.
		return bound - TruncExp(src, -rate, bound)
	}
	rb := rate * bound
	if rb < 1e-12 {
		return src.Float64() * bound
	}
	u := src.Float64()
	// Invert F: x = -log(1 - u*(1 - e^{-rb})) / rate.
	x := -math.Log1p(-u*(-math.Expm1(-rb))) / rate
	if x > bound {
		x = bound
	}
	return x
}

// Categorical samples an index with probability proportional to the
// non-negative weights. It panics if all weights are zero or any weight is
// negative.
func Categorical(src Source, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: Categorical with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical with all-zero weights")
	}
	x := src.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	// Floating-point slack: return the last index with non-zero weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

// LogCategorical samples an index with probability proportional to
// exp(logw[i]), the sampling step of Calderhead's method over the proposal
// stationary distribution (paper §4.3): draw x uniformly on the summed
// weight and walk the prefix sums. Weights of logspace.NegInf are legal
// (zero probability); it panics if every weight is NegInf.
func LogCategorical(src Source, logw []float64) int {
	m := logspace.Max(logw)
	if logspace.IsZero(m) {
		panic("rng: LogCategorical with all-zero weights")
	}
	var total float64
	for _, w := range logw {
		total += math.Exp(w - m)
	}
	x := src.Float64() * total
	acc := 0.0
	for i, w := range logw {
		acc += math.Exp(w - m)
		if x < acc {
			return i
		}
	}
	for i := len(logw) - 1; i >= 0; i-- {
		if !logspace.IsZero(logw[i]) {
			return i
		}
	}
	return len(logw) - 1
}

// Normal returns a standard normal variate by the Box-Muller transform.
func Normal(src Source) float64 {
	// Guard u1 > 0 so the log is finite.
	u1 := 1 - src.Float64()
	u2 := src.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormalStep multiplies x by exp(sigma*N(0,1)), the multiplicative
// random walk used for positive-parameter moves in the Bayesian sampler.
func LogNormalStep(src Source, x, sigma float64) float64 {
	return x * math.Exp(sigma*Normal(src))
}

// UniformPair returns two distinct uniform indices i < j from [0, n).
// It panics if n < 2. It is the uniform lineage-pair choice made at each
// coalescent event.
func UniformPair(src Source, n int) (int, int) {
	if n < 2 {
		panic("rng: UniformPair with n < 2")
	}
	i := Intn(src, n)
	j := Intn(src, n-1)
	if j >= i {
		j++
	}
	if i > j {
		i, j = j, i
	}
	return i, j
}
