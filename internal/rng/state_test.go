package rng

import "testing"

// TestMT19937StateRoundTrip pins the checkpoint contract: a restored
// generator draws the identical sequence the original would have drawn.
func TestMT19937StateRoundTrip(t *testing.T) {
	m := NewMT19937(12345)
	for i := 0; i < 1000; i++ { // land mid-block so Index is interesting
		m.Uint32()
	}
	snap := m.State()
	var want []uint32
	for i := 0; i < 2000; i++ {
		want = append(want, m.Uint32())
	}

	r := &MT19937{}
	if err := r.SetState(snap); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := r.Uint32(); got != w {
			t.Fatalf("output %d: restored %d != original %d", i, got, w)
		}
	}
}

func TestMT19937SetStateRejectsBadIndex(t *testing.T) {
	m := NewMT19937(1)
	s := m.State()
	s.Index = mtN + 1
	if err := m.SetState(s); err == nil {
		t.Fatal("index beyond state vector accepted")
	}
	s.Index = -1
	if err := m.SetState(s); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestStreamSetStateRoundTrip(t *testing.T) {
	s := NewStreamSet(4, 99)
	for i := 0; i < s.Len(); i++ {
		for k := 0; k <= i*7; k++ { // desynchronize the streams
			s.Stream(i).Uint32()
		}
	}
	snap := s.State()
	want := make([][]uint32, s.Len())
	for i := 0; i < s.Len(); i++ {
		for k := 0; k < 100; k++ {
			want[i] = append(want[i], s.Stream(i).Uint32())
		}
	}

	r := NewStreamSet(4, 7) // different seed: SetState must fully overwrite
	if err := r.SetState(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Len(); i++ {
		for k, w := range want[i] {
			if got := r.Stream(i).Uint32(); got != w {
				t.Fatalf("stream %d output %d: restored %d != original %d", i, k, got, w)
			}
		}
	}
}

func TestStreamSetSetStateRejectsCountMismatch(t *testing.T) {
	s := NewStreamSet(4, 1)
	if err := s.SetState(NewStreamSet(3, 1).State()); err == nil {
		t.Fatal("stream-count mismatch accepted")
	}
}
