// Package rng provides the pseudo-random number generation substrate of the
// sampler: an MT19937 Mersenne Twister (the paper's host PRNG, §5.1.2), a
// SplitMix64-decorrelated set of per-thread streams standing in for the
// MTGP32 device generator, and the distribution samplers the proposal
// kernel draws from (uniform, exponential, truncated exponential,
// categorical).
package rng

import "math"

// Source is the minimal generator interface used throughout the sampler.
// Implementations need not be safe for concurrent use; parallel kernels
// take one Source per thread from a StreamSet.
type Source interface {
	// Uint32 returns the next 32 uniformly distributed bits.
	Uint32() uint32
	// Float64 returns a uniform variate in [0, 1) with 53-bit resolution.
	Float64() float64
}

const (
	mtN         = 624
	mtM         = 397
	mtMatrixA   = 0x9908b0df
	mtUpperMask = 0x80000000
	mtLowerMask = 0x7fffffff
)

// MT19937 is the 32-bit Mersenne Twister of Matsumoto & Nishimura (1998),
// the generator the reference implementation uses on the host. The zero
// value is not usable; construct with NewMT19937.
type MT19937 struct {
	state [mtN]uint32
	index int
}

// NewMT19937 returns a generator initialized with init_genrand(seed)
// exactly as in the reference C implementation.
func NewMT19937(seed uint32) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// Seed reinitializes the generator state from a 32-bit seed.
func (m *MT19937) Seed(seed uint32) {
	m.state[0] = seed
	for i := uint32(1); i < mtN; i++ {
		m.state[i] = 1812433253*(m.state[i-1]^(m.state[i-1]>>30)) + i
	}
	m.index = mtN
}

// SeedArray reinitializes state from a key array, mirroring
// init_by_array of the reference implementation.
func (m *MT19937) SeedArray(key []uint32) {
	m.Seed(19650218)
	i, j := 1, 0
	k := len(key)
	if mtN > k {
		k = mtN
	}
	for ; k > 0; k-- {
		m.state[i] = (m.state[i] ^ ((m.state[i-1] ^ (m.state[i-1] >> 30)) * 1664525)) + key[j] + uint32(j)
		i++
		j++
		if i >= mtN {
			m.state[0] = m.state[mtN-1]
			i = 1
		}
		if j >= len(key) {
			j = 0
		}
	}
	for k = mtN - 1; k > 0; k-- {
		m.state[i] = (m.state[i] ^ ((m.state[i-1] ^ (m.state[i-1] >> 30)) * 1566083941)) - uint32(i)
		i++
		if i >= mtN {
			m.state[0] = m.state[mtN-1]
			i = 1
		}
	}
	m.state[0] = 0x80000000
	m.index = mtN
}

func (m *MT19937) generate() {
	for i := 0; i < mtN; i++ {
		y := (m.state[i] & mtUpperMask) | (m.state[(i+1)%mtN] & mtLowerMask)
		next := m.state[(i+mtM)%mtN] ^ (y >> 1)
		if y&1 != 0 {
			next ^= mtMatrixA
		}
		m.state[i] = next
	}
	m.index = 0
}

// Uint32 returns the next tempered 32-bit output word.
func (m *MT19937) Uint32() uint32 {
	if m.index >= mtN {
		m.generate()
	}
	y := m.state[m.index]
	m.index++
	y ^= y >> 11
	y ^= (y << 7) & 0x9d2c5680
	y ^= (y << 15) & 0xefc60000
	y ^= y >> 18
	return y
}

// Float64 returns a uniform variate in [0, 1) with 53-bit resolution,
// equivalent to genrand_res53 of the reference implementation.
func (m *MT19937) Float64() float64 {
	a := m.Uint32() >> 5
	b := m.Uint32() >> 6
	return (float64(a)*67108864.0 + float64(b)) / 9007199254740992.0
}

var _ Source = (*MT19937)(nil)

// SplitMix64 advances a 64-bit SplitMix64 state and returns the next
// output. It is used only to derive decorrelated seeds for per-thread
// streams, never as a sampling generator itself.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// StreamSet is a family of independent generators, one per device thread,
// standing in for the MTGP32 multi-stream Mersenne Twister of the paper:
// "calls from different threads keep their state independently, with a goal
// of zero correlation between the numbers generated for different threads
// at the same point in execution" (§5.1.2). Each stream is an MT19937
// seeded from a distinct SplitMix64 output of the master seed, so streams
// start in decorrelated regions of the state space.
type StreamSet struct {
	streams []*MT19937
}

// NewStreamSet creates n independent streams derived from seed.
func NewStreamSet(n int, seed uint64) *StreamSet {
	s := &StreamSet{streams: make([]*MT19937, n)}
	state := seed
	for i := range s.streams {
		v := SplitMix64(&state)
		key := []uint32{uint32(v), uint32(v >> 32), uint32(i)}
		m := &MT19937{}
		m.SeedArray(key)
		s.streams[i] = m
	}
	return s
}

// Len returns the number of streams.
func (s *StreamSet) Len() int { return len(s.streams) }

// Stream returns the generator for thread i. The same i always yields the
// same generator, so a kernel thread owns its stream for the launch.
func (s *StreamSet) Stream(i int) *MT19937 { return s.streams[i] }

// Jitter provides a tiny deterministic perturbation in (0, eps) used to
// break exact age ties when constructing initial trees. It consumes one
// variate from src.
func Jitter(src Source, eps float64) float64 {
	u := src.Float64()
	return eps * (u + math.SmallestNonzeroFloat64)
}
