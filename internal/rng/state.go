package rng

import "fmt"

// MTState is the complete exported state of one MT19937 generator: the
// 624-word state vector plus the read index. It exists so a checkpointed
// chain can resume drawing the identical random sequence — the same
// reproducibility discipline the paper demands of its per-thread MTGP32
// streams (§5.1.2), extended across process restarts.
type MTState struct {
	Vec   [mtN]uint32
	Index int
}

// State exports the generator's full state. Restoring it with SetState
// yields a generator whose future outputs are bit-identical to this one's.
func (m *MT19937) State() MTState {
	return MTState{Vec: m.state, Index: m.index}
}

// SetState overwrites the generator's state with a previously exported
// snapshot. The index must lie in [0, 624] (624 means "regenerate before
// the next output", the state a freshly seeded generator is in).
func (m *MT19937) SetState(s MTState) error {
	if s.Index < 0 || s.Index > mtN {
		return fmt.Errorf("rng: MT19937 state index %d out of range [0, %d]", s.Index, mtN)
	}
	m.state = s.Vec
	m.index = s.Index
	return nil
}

// State exports the full state of every stream, in stream order.
func (s *StreamSet) State() []MTState {
	out := make([]MTState, len(s.streams))
	for i, m := range s.streams {
		out[i] = m.State()
	}
	return out
}

// SetState restores every stream from an exported snapshot. The snapshot
// must have exactly one state per stream: a stream-count mismatch means
// the run was reconfigured since the snapshot, which would silently
// decouple threads from their sequences.
func (s *StreamSet) SetState(states []MTState) error {
	if len(states) != len(s.streams) {
		return fmt.Errorf("rng: snapshot has %d streams, stream set has %d", len(states), len(s.streams))
	}
	for i := range states {
		if err := s.streams[i].SetState(states[i]); err != nil {
			return fmt.Errorf("rng: stream %d: %w", i, err)
		}
	}
	return nil
}
