package resim

import (
	"math"
	"testing"

	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
)

// ladderTree builds the caterpillar genealogy used by the sharp
// distribution tests: tips a,b,c,d at age 0, (a,b) at age 1, ((a,b),c) at
// age 2, root at age 3.
func ladderTree(t *testing.T) *gtree.Tree {
	t.Helper()
	tr := gtree.New(4)
	for i, n := range []string{"a", "b", "c", "d"} {
		tr.Nodes[i].Name = n
	}
	link := func(p int, age float64, c0, c1 int) {
		tr.Nodes[p].Age = age
		tr.Nodes[p].Child = [2]int{c0, c1}
		tr.Nodes[c0].Parent = p
		tr.Nodes[c1].Parent = p
	}
	link(4, 1, 0, 1)
	link(5, 2, 4, 2)
	link(6, 3, 5, 3)
	tr.Root = 6
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTargets(t *testing.T) {
	tr := ladderTree(t)
	got := Targets(tr)
	if len(got) != 2 {
		t.Fatalf("Targets = %v, want 2 non-root interior nodes", got)
	}
	for _, i := range got {
		if tr.IsTip(i) || i == tr.Root {
			t.Errorf("target %d is tip or root", i)
		}
	}
}

func TestResimulateErrors(t *testing.T) {
	tr := ladderTree(t)
	src := rng.NewMT19937(400)
	if err := Resimulate(tr, 0, 1.0, src); err == nil {
		t.Error("tip target accepted")
	}
	if err := Resimulate(tr, tr.Root, 1.0, src); err == nil {
		t.Error("root target accepted")
	}
	if err := Resimulate(tr, 99, 1.0, src); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := Resimulate(tr, 4, 0, src); err == nil {
		t.Error("theta=0 accepted")
	}
	if err := Resimulate(tr, 4, -1, src); err == nil {
		t.Error("negative theta accepted")
	}
}

func TestResimulateStructure(t *testing.T) {
	src := rng.NewMT19937(401)
	base := ladderTree(t)
	for trial := 0; trial < 500; trial++ {
		tr := base.Clone()
		target := PickTarget(tr, src)
		if err := Resimulate(tr, target, 1.0, src); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d (target %d): invalid proposal: %v\n%s", trial, target, err, tr)
		}
	}
}

// TestResimulateFixedPartUntouched verifies that only the neighbourhood
// changes: every node other than the target, its parent, and the upward
// links of the three children keeps its age, name, children and parent.
func TestResimulateFixedPartUntouched(t *testing.T) {
	src := rng.NewMT19937(402)
	base := ladderTree(t)
	for trial := 0; trial < 200; trial++ {
		tr := base.Clone()
		target := PickTarget(tr, src)
		parent := tr.Nodes[target].Parent
		children := map[int]bool{
			tr.Nodes[target].Child[0]: true,
			tr.Nodes[target].Child[1]: true,
			tr.Sibling(target):        true,
		}
		if err := Resimulate(tr, target, 1.0, src); err != nil {
			t.Fatal(err)
		}
		for i := range tr.Nodes {
			if i == target || i == parent {
				continue
			}
			if tr.Nodes[i].Age != base.Nodes[i].Age {
				t.Fatalf("trial %d: fixed node %d age changed", trial, i)
			}
			if tr.Nodes[i].Name != base.Nodes[i].Name {
				t.Fatalf("trial %d: fixed node %d name changed", trial, i)
			}
			if tr.Nodes[i].Child != base.Nodes[i].Child {
				t.Fatalf("trial %d: fixed node %d children changed", trial, i)
			}
			if !children[i] && tr.Nodes[i].Parent != base.Nodes[i].Parent {
				t.Fatalf("trial %d: non-child fixed node %d parent changed", trial, i)
			}
		}
	}
}

func TestResimulateDeterministic(t *testing.T) {
	base := ladderTree(t)
	a, b := base.Clone(), base.Clone()
	if err := Resimulate(a, 4, 1.0, rng.NewMT19937(77)); err != nil {
		t.Fatal(err)
	}
	if err := Resimulate(b, 4, 1.0, rng.NewMT19937(77)); err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("same-seed proposals differ at node %d", i)
		}
	}
}

// TestResimulateConditionalDensity is the sharp correctness test of the
// killing machinery. Target node 4 of the ladder tree leaves children
// {a,b,c} (all age 0), ancestor at age 3, and exactly one fixed lineage
// (tip d) across the whole region, so the conditional prior of the two
// event ages (s1 < s2) is proportional to e^{-α s1 - β s2} with
// α = (λ3-λ2) and β = (λ2-λ1) computed WITH the cross-coalescence terms
// (k_in = 1). The empirical means must match numerical integration, and
// the first merge must pair the three children uniformly.
func TestResimulateConditionalDensity(t *testing.T) {
	theta := 2.0
	tr0 := ladderTree(t)
	src := rng.NewMT19937(403)

	trans := newTransitions(1, theta)
	alpha := trans.lambda[3] - trans.lambda[2]
	beta := trans.lambda[2] - trans.lambda[1]
	L := 3.0
	const grid = 900
	h := L / grid
	var z, m1, m2 float64
	for i := 0; i < grid; i++ {
		s1 := (float64(i) + 0.5) * h
		for j := i; j < grid; j++ {
			s2 := (float64(j) + 0.5) * h
			w := math.Exp(-alpha*s1 - beta*s2)
			z += w
			m1 += w * s1
			m2 += w * s2
		}
	}
	wantS1, wantS2 := m1/z, m2/z

	const reps = 60000
	var sum1, sum2 float64
	pairCounts := map[[2]int]int{}
	for r := 0; r < reps; r++ {
		tr := tr0.Clone()
		if err := Resimulate(tr, 4, theta, src); err != nil {
			t.Fatal(err)
		}
		// Slot 4 holds the younger event, slot 5 the older.
		s1 := tr.Nodes[4].Age
		s2 := tr.Nodes[5].Age
		if !(0 < s1 && s1 < s2 && s2 < 3) {
			t.Fatalf("event ages out of region: %v %v", s1, s2)
		}
		sum1 += s1
		sum2 += s2
		c := tr.Nodes[4].Child
		lo, hi := c[0], c[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		pairCounts[[2]int{lo, hi}]++
	}
	got1, got2 := sum1/reps, sum2/reps
	if math.Abs(got1-wantS1) > 0.02 {
		t.Errorf("E[s1] = %v, want %v (killing terms mishandled?)", got1, wantS1)
	}
	if math.Abs(got2-wantS2) > 0.02 {
		t.Errorf("E[s2] = %v, want %v", got2, wantS2)
	}
	if len(pairCounts) != 3 {
		t.Fatalf("first merge pairs = %v, want all 3 child pairs", pairCounts)
	}
	for p, c := range pairCounts {
		f := float64(c) / reps
		if math.Abs(f-1.0/3) > 0.01 {
			t.Errorf("pair %v frequency %v, want 1/3", p, f)
		}
	}
}

// TestPriorChainKingman runs the Gibbs-like chain that resimulates a
// random neighbourhood each step with no data (always accept): its
// stationary distribution is the coalescent prior, so interval duration
// means must converge to Kingman's E[t_k] = θ/(k(k-1)) and the tree height
// to θ(1-1/n). This exercises joins, multi-interval regions, the
// completion recursion and the root-adjacent case together.
func TestPriorChainKingman(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	src := rng.NewMT19937(404)
	theta := 1.0
	names := []string{"a", "b", "c", "d", "e"}
	tr, err := gtree.RandomCoalescent(names, theta, src)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.NTips()
	const steps = 60000
	const burn = 2000
	sums := make([]float64, n-1)
	heightSum := 0.0
	count := 0
	for s := 0; s < steps; s++ {
		target := PickTarget(tr, src)
		if err := Resimulate(tr, target, theta, src); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		if s < burn {
			continue
		}
		for i, d := range tr.IntervalDurations() {
			sums[i] += d
		}
		heightSum += tr.Height()
		count++
	}
	for i := 0; i < n-1; i++ {
		k := n - i
		got := sums[i] / float64(count)
		want := theta / float64(k*(k-1))
		if math.Abs(got-want) > 0.08*want {
			t.Errorf("E[t_%d] = %v, want %v (±8%%)", k, got, want)
		}
	}
	wantHeight := theta * (1 - 1/float64(n))
	gotHeight := heightSum / float64(count)
	if math.Abs(gotHeight-wantHeight) > 0.05*wantHeight {
		t.Errorf("E[height] = %v, want %v (±5%%)", gotHeight, wantHeight)
	}
}

// TestPriorChainRootCaseOnly uses n=3, where the single eligible target's
// parent is always the root: every proposal is an independent draw of the
// whole genealogy from the prior through the root-adjacent path.
func TestPriorChainRootCaseOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	src := rng.NewMT19937(405)
	theta := 2.0
	tr, err := gtree.RandomCoalescent([]string{"a", "b", "c"}, theta, src)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 40000
	sums := [2]float64{}
	cherry := map[string]int{}
	for s := 0; s < steps; s++ {
		if err := Resimulate(tr, PickTarget(tr, src), theta, src); err != nil {
			t.Fatal(err)
		}
		d := tr.IntervalDurations()
		sums[0] += d[0]
		sums[1] += d[1]
		// The cherry: the pair coalescing first.
		first := tr.InteriorIndex(0)
		if tr.Nodes[tr.InteriorIndex(1)].Age < tr.Nodes[first].Age {
			first = tr.InteriorIndex(1)
		}
		c := tr.Nodes[first].Child
		a, b := tr.Nodes[c[0]].Name, tr.Nodes[c[1]].Name
		if a > b {
			a, b = b, a
		}
		cherry[a+b]++
	}
	// E[t_3] = θ/6, E[t_2] = θ/2.
	if got, want := sums[0]/steps, theta/6; math.Abs(got-want) > 0.05*want {
		t.Errorf("E[t_3] = %v, want %v", got, want)
	}
	if got, want := sums[1]/steps, theta/2; math.Abs(got-want) > 0.05*want {
		t.Errorf("E[t_2] = %v, want %v", got, want)
	}
	// Each pair equally likely to be the cherry under Kingman.
	for pair, c := range cherry {
		f := float64(c) / steps
		if math.Abs(f-1.0/3) > 0.02 {
			t.Errorf("cherry %q frequency %v, want 1/3", pair, f)
		}
	}
}

// TestPriorChainTopologyMixing verifies the chain changes tree topology,
// not just node ages: across many steps, the sibling of tip a must vary.
func TestPriorChainTopologyMixing(t *testing.T) {
	src := rng.NewMT19937(406)
	tr, err := gtree.RandomCoalescent([]string{"a", "b", "c", "d"}, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	siblings := map[int]bool{}
	for s := 0; s < 2000; s++ {
		if err := Resimulate(tr, PickTarget(tr, src), 1.0, src); err != nil {
			t.Fatal(err)
		}
		siblings[tr.Sibling(0)] = true
	}
	if len(siblings) < 3 {
		t.Errorf("tip a saw only siblings %v; topology is not mixing", siblings)
	}
}

// TestResimulateManyShapes stress-tests structural validity over larger
// random trees and a range of theta values, covering regions with many
// feasible intervals and varying k_in.
func TestResimulateManyShapes(t *testing.T) {
	src := rng.NewMT19937(407)
	for _, n := range []int{3, 4, 6, 10, 20} {
		names := make([]string, n)
		for i := range names {
			names[i] = "t" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		for _, theta := range []float64{0.05, 1.0, 10.0} {
			tr, err := gtree.RandomCoalescent(names, 1.0, src)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 100; trial++ {
				if err := Resimulate(tr, PickTarget(tr, src), theta, src); err != nil {
					t.Fatalf("n=%d theta=%v trial %d: %v", n, theta, trial, err)
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("n=%d theta=%v trial %d: %v", n, theta, trial, err)
				}
			}
		}
	}
}

// TestResimulateSlotConvention verifies the documented slot reuse: the
// younger replacement event sits in the target's slot, the older in the
// parent's, and the parent slot keeps its upward attachment.
func TestResimulateSlotConvention(t *testing.T) {
	src := rng.NewMT19937(408)
	base := ladderTree(t)
	for trial := 0; trial < 300; trial++ {
		tr := base.Clone()
		target := PickTarget(tr, src)
		parent := tr.Nodes[target].Parent
		ancestor := tr.Nodes[parent].Parent
		if err := Resimulate(tr, target, 1.0, src); err != nil {
			t.Fatal(err)
		}
		if tr.Nodes[target].Age >= tr.Nodes[parent].Age {
			t.Fatalf("trial %d: target slot age %v not below parent slot age %v",
				trial, tr.Nodes[target].Age, tr.Nodes[parent].Age)
		}
		if tr.Nodes[target].Parent != parent {
			t.Fatalf("trial %d: target slot's parent = %d, want %d", trial, tr.Nodes[target].Parent, parent)
		}
		if tr.Nodes[parent].Parent != ancestor {
			t.Fatalf("trial %d: parent slot's parent = %d, want %d", trial, tr.Nodes[parent].Parent, ancestor)
		}
	}
}
