package resim

import (
	"math"
	"testing"

	"mpcgs/internal/rng"
)

func TestProbZeroLengthIsIdentity(t *testing.T) {
	tr := newTransitions(2, 1.5)
	for a := 1; a <= 3; a++ {
		for b := 1; b <= 3; b++ {
			want := 0.0
			if a == b {
				want = 1.0
			}
			if got := tr.prob(a, b, 0); got != want {
				t.Errorf("S_%d%d(0) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestProbOutOfRangeIsZero(t *testing.T) {
	tr := newTransitions(1, 1)
	cases := [][2]int{{1, 2}, {2, 3}, {1, 3}, {3, 0}, {2, 0}, {1, 0}}
	for _, c := range cases {
		if got := tr.prob(c[0], c[1], 0.5); got != 0 {
			t.Errorf("S_%d%d = %v, want 0", c[0], c[1], got)
		}
	}
}

func TestProbMassConservedWithoutKilling(t *testing.T) {
	// With no inactive lineages there is no killing: rows sum to 1.
	tr := newTransitions(0, 2.0)
	for a := 1; a <= 3; a++ {
		for _, L := range []float64{0.1, 1, 5} {
			sum := 0.0
			for b := 1; b <= a; b++ {
				sum += tr.prob(a, b, L)
			}
			if math.Abs(sum-1) > 1e-10 {
				t.Errorf("a=%d L=%v: row sum = %v, want 1", a, L, sum)
			}
		}
	}
}

func TestProbMassLeaksWithKilling(t *testing.T) {
	tr := newTransitions(3, 1.0)
	for a := 1; a <= 3; a++ {
		sum := 0.0
		for b := 1; b <= a; b++ {
			sum += tr.prob(a, b, 1.0)
		}
		if sum >= 1 {
			t.Errorf("a=%d: row sum = %v, want < 1 with killing", a, sum)
		}
		if sum <= 0 {
			t.Errorf("a=%d: row sum = %v, want > 0", a, sum)
		}
	}
}

// simulateProcess runs the killed death process once and reports the final
// active count, or 0 if a killing event occurred before L.
func simulateProcess(tr *transitions, a int, L float64, src rng.Source) int {
	t := 0.0
	for {
		lam := tr.lambda[a]
		if lam == 0 {
			return a // a=1 with no inactive lineages: nothing can happen
		}
		t += rng.Exp(src, lam)
		if t >= L {
			return a
		}
		if src.Float64() < tr.mu[a]/lam {
			a--
			if a == 1 && tr.lambda[1] == 0 {
				return 1
			}
		} else {
			return 0 // killed
		}
	}
}

func TestProbMatchesMonteCarlo(t *testing.T) {
	src := rng.NewMT19937(300)
	const reps = 200000
	for _, kin := range []int{0, 1, 3} {
		tr := newTransitions(kin, 1.2)
		L := 0.35
		for a := 1; a <= 3; a++ {
			var counts [4]int
			for r := 0; r < reps; r++ {
				counts[simulateProcess(&tr, a, L, src)]++
			}
			for b := 1; b <= a; b++ {
				got := float64(counts[b]) / reps
				want := tr.prob(a, b, L)
				se := math.Sqrt(want*(1-want)/reps) + 1e-9
				if math.Abs(got-want) > 5*se+0.002 {
					t.Errorf("kin=%d a=%d b=%d: MC %v vs closed form %v", kin, a, b, got, want)
				}
			}
		}
	}
}

func TestPlaceOneDistribution(t *testing.T) {
	// Conditioned single-event placement is a truncated exponential with
	// rate λ_a - λ_{a-1}; check the mean.
	src := rng.NewMT19937(301)
	tr := newTransitions(2, 1.0)
	a, L := 2, 0.8
	rate := tr.lambda[2] - tr.lambda[1]
	const reps = 200000
	sum := 0.0
	for r := 0; r < reps; r++ {
		s := tr.placeOne(a, L, src)
		if s <= 0 || s >= L {
			t.Fatalf("placeOne out of (0,%v): %v", L, s)
		}
		sum += s
	}
	rb := rate * L
	want := 1/rate - L*math.Exp(-rb)/(1-math.Exp(-rb))
	if math.Abs(sum/reps-want) > 0.003 {
		t.Errorf("placeOne mean = %v, want %v", sum/reps, want)
	}
}

func TestPlaceTwoDistribution(t *testing.T) {
	// Compare placeTwo's marginals against direct numerical integration
	// of the joint density e^{-α s1} e^{-β s2} over 0 < s1 < s2 < L.
	src := rng.NewMT19937(302)
	tr := newTransitions(1, 2.0)
	L := 3.0
	alpha := tr.lambda[3] - tr.lambda[2]
	beta := tr.lambda[2] - tr.lambda[1]

	const grid = 1200
	h := L / grid
	var z, m1, m2 float64
	for i := 0; i < grid; i++ {
		s1 := (float64(i) + 0.5) * h
		for j := i; j < grid; j++ {
			s2 := (float64(j) + 0.5) * h
			w := math.Exp(-alpha*s1 - beta*s2)
			z += w
			m1 += w * s1
			m2 += w * s2
		}
	}
	wantS1, wantS2 := m1/z, m2/z

	const reps = 150000
	var sum1, sum2 float64
	for r := 0; r < reps; r++ {
		s1, s2 := tr.placeTwo(L, src)
		if !(0 < s1 && s1 < s2 && s2 <= L) {
			t.Fatalf("placeTwo violated ordering: s1=%v s2=%v", s1, s2)
		}
		sum1 += s1
		sum2 += s2
	}
	got1, got2 := sum1/reps, sum2/reps
	if math.Abs(got1-wantS1) > 0.01 {
		t.Errorf("E[s1] = %v, want %v", got1, wantS1)
	}
	if math.Abs(got2-wantS2) > 0.01 {
		t.Errorf("E[s2] = %v, want %v", got2, wantS2)
	}
}

func TestProbNumericalIntegrationCrossCheck(t *testing.T) {
	// S_31(L) must equal the double integral
	// ∫∫_{0<s1<s2<L} μ3 e^{-λ3 s1} μ2 e^{-λ2(s2-s1)} e^{-λ1(L-s2)} ds.
	tr := newTransitions(2, 1.7)
	L := 0.9
	const grid = 2000
	h := L / grid
	sum := 0.0
	for i := 0; i < grid; i++ {
		s1 := (float64(i) + 0.5) * h
		for j := i; j < grid; j++ {
			s2 := (float64(j) + 0.5) * h
			sum += tr.mu[3] * math.Exp(-tr.lambda[3]*s1) *
				tr.mu[2] * math.Exp(-tr.lambda[2]*(s2-s1)) *
				math.Exp(-tr.lambda[1]*(L-s2)) * h * h
		}
	}
	want := tr.prob(3, 1, L)
	if math.Abs(sum-want) > 1e-3*want {
		t.Errorf("numerical S_31 = %v, closed form %v", sum, want)
	}
}

func TestProbS21CrossCheck(t *testing.T) {
	tr := newTransitions(1, 0.8)
	L := 0.6
	const grid = 200000
	h := L / grid
	sum := 0.0
	for i := 0; i < grid; i++ {
		s := (float64(i) + 0.5) * h
		sum += tr.mu[2] * math.Exp(-tr.lambda[2]*s) * math.Exp(-tr.lambda[1]*(L-s)) * h
	}
	want := tr.prob(2, 1, L)
	if math.Abs(sum-want) > 1e-4*want {
		t.Errorf("numerical S_21 = %v, closed form %v", sum, want)
	}
}

func TestEm1(t *testing.T) {
	if got := em1(2, 3); math.Abs(got-(1-math.Exp(-6))/2) > 1e-14 {
		t.Errorf("em1(2,3) = %v", got)
	}
	// Limit r -> 0 is x.
	if got := em1(1e-15, 2); math.Abs(got-2) > 1e-9 {
		t.Errorf("em1(~0,2) = %v, want 2", got)
	}
}

func TestClampInside(t *testing.T) {
	L := 2.0
	if s := clampInside(0, L); s <= 0 {
		t.Errorf("clampInside(0) = %v, want > 0", s)
	}
	if s := clampInside(L, L); s >= L {
		t.Errorf("clampInside(L) = %v, want < L", s)
	}
	if s := clampInside(1, L); s != 1 {
		t.Errorf("clampInside(1) = %v, want 1", s)
	}
}

func TestLambdaOrdering(t *testing.T) {
	for kin := 0; kin <= 5; kin++ {
		tr := newTransitions(kin, 0.9)
		if !(tr.lambda[3] > tr.lambda[2] && tr.lambda[2] > tr.lambda[1]) {
			t.Errorf("kin=%d: lambdas not strictly ordered: %v", kin, tr.lambda)
		}
		if tr.lambda[1] != 2*float64(kin)/0.9 {
			t.Errorf("kin=%d: lambda1 = %v", kin, tr.lambda[1])
		}
	}
}
