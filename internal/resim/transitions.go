package resim

import (
	"math"

	"mpcgs/internal/rng"
)

// transitions holds the rates of the killed pure-death process governing
// the active lineages within one feasible interval: with a active and
// k_in inactive lineages,
//
//	merge rate  μ_a = a(a-1)/θ        (an active pair coalesces)
//	kill rate   κ_a = 2·a·k_in/θ      (active-inactive cross term of the
//	                                   conditional prior, conditioned against)
//	total       λ_a = μ_a + κ_a = a(a-1+2·k_in)/θ
//
// λ_3 > λ_2 > λ_1 ≥ 0 always (the gaps are (4+2k_in)/θ and (2+2k_in)/θ),
// so the partial-fraction forms below never hit equal rates.
type transitions struct {
	mu     [maxActive + 1]float64
	lambda [maxActive + 1]float64
}

func newTransitions(kin int, theta float64) transitions {
	var tr transitions
	for a := 1; a <= maxActive; a++ {
		tr.mu[a] = float64(a*(a-1)) / theta
		tr.lambda[a] = float64(a*(a-1+2*kin)) / theta
	}
	return tr
}

// prob returns S_{a,b}(L): the probability that an interval of length L
// entered with a active lineages ends with b, with no killing. Zero for
// transitions outside b ∈ [max(1, a-2), a].
func (tr *transitions) prob(a, b int, L float64) float64 {
	if b > a || b < 1 || a-b > 2 {
		return 0
	}
	if L == 0 {
		if a == b {
			return 1
		}
		return 0
	}
	switch a - b {
	case 0:
		return math.Exp(-tr.lambda[a] * L)
	case 1:
		// ∫ e^{-λ_a s} μ_a e^{-λ_{a-1}(L-s)} ds
		la, lb := tr.lambda[a], tr.lambda[a-1]
		return tr.mu[a] * (math.Exp(-lb*L) - math.Exp(-la*L)) / (la - lb)
	default: // a-b == 2, i.e. 3 -> 1
		l1, l2, l3 := tr.lambda[1], tr.lambda[2], tr.lambda[3]
		// Direct double integration (see derivation in the tests):
		//   μ3 μ2 / (λ2-λ1) · [ (e^{-λ1 L} - e^{-λ3 L})/(λ3-λ1)
		//                     - (e^{-λ2 L} - e^{-λ3 L})/(λ3-λ2) ]
		e1, e2, e3 := math.Exp(-l1*L), math.Exp(-l2*L), math.Exp(-l3*L)
		v := (e1-e3)/(l3-l1) - (e2-e3)/(l3-l2)
		return tr.mu[3] * tr.mu[2] * v / (l2 - l1)
	}
}

// timeNudge keeps sampled event ages strictly inside their interval so
// parent ages always exceed child ages even under floating-point
// coincidences.
const timeNudge = 1e-12

func clampInside(s, L float64) float64 {
	lo := L * timeNudge
	hi := L * (1 - timeNudge)
	if s < lo {
		return lo
	}
	if s > hi {
		return hi
	}
	return s
}

// placeOne samples the offset of a single merge event within an interval
// of length L entered with a active lineages, conditioned on exactly one
// merge and survival: the density is proportional to
// e^{-λ_a s}·e^{-λ_{a-1}(L-s)} ∝ e^{-(λ_a-λ_{a-1})s}, a truncated
// exponential inverted directly.
func (tr *transitions) placeOne(a int, L float64, src rng.Source) float64 {
	rate := tr.lambda[a] - tr.lambda[a-1]
	return clampInside(rng.TruncExp(src, rate, L), L)
}

// placeTwo samples the offsets s1 < s2 of both merge events within an
// interval of length L entered with three active lineages, conditioned on
// both merges and survival. The joint density is proportional to
// e^{-α s1} e^{-β s2} on the simplex 0 ≤ s1 ≤ s2 ≤ L with α = λ3-λ2,
// β = λ2-λ1. s1 is drawn from its exact marginal by bisection on the
// closed-form CDF, then s2 | s1 is a truncated exponential.
func (tr *transitions) placeTwo(L float64, src rng.Source) (s1, s2 float64) {
	alpha := tr.lambda[3] - tr.lambda[2]
	beta := tr.lambda[2] - tr.lambda[1]
	// Unnormalized CDF of s1: F(x) = ∫_0^x e^{-α u}(e^{-β u} - e^{-β L}) du
	//   = em1(α+β, x) - e^{-β L}·em1(α, x),  with em1(r,x) = (1-e^{-rx})/r.
	ebl := math.Exp(-beta * L)
	cdf := func(x float64) float64 {
		return em1(alpha+beta, x) - ebl*em1(alpha, x)
	}
	total := cdf(L)
	u := src.Float64() * total
	lo, hi := 0.0, L
	for iter := 0; iter < 200 && hi-lo > L*1e-14; iter++ {
		mid := (lo + hi) / 2
		if cdf(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	s1 = clampInside((lo+hi)/2, L)
	s2 = s1 + rng.TruncExp(src, beta, L-s1)
	s2 = s1 + clampInside(s2-s1, L-s1)
	return s1, s2
}

// em1 returns (1 - e^{-r x})/r, continuous through r -> 0 where it tends
// to x.
func em1(r, x float64) float64 {
	if math.Abs(r*x) < 1e-12 {
		return x * (1 - r*x/2)
	}
	return -math.Expm1(-r*x) / r
}
