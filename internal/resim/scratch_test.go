package resim

import (
	"testing"

	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
)

// TestResimulateScratchMatchesPooled verifies that a caller-owned Scratch
// reused across many draws produces bit-identical proposals to the pooled
// path for the same seed, including on the root-adjacent region case.
func TestResimulateScratchMatchesPooled(t *testing.T) {
	base := ladderTree(t)
	s := NewScratch()
	for _, target := range []int{4, 5} {
		srcA, srcB := rng.NewMT19937(910), rng.NewMT19937(910)
		a, b := base.Clone(), base.Clone()
		for trial := 0; trial < 300; trial++ {
			ta := PickTarget(a, srcA)
			tb := PickTarget(b, srcB)
			if ta != tb {
				t.Fatalf("target %d trial %d: picked targets diverged", target, trial)
			}
			if err := Resimulate(a, ta, 1.0, srcA); err != nil {
				t.Fatal(err)
			}
			if err := ResimulateScratch(b, tb, 1.0, srcB, s); err != nil {
				t.Fatal(err)
			}
			for i := range a.Nodes {
				if a.Nodes[i] != b.Nodes[i] {
					t.Fatalf("target %d trial %d: node %d differs between pooled and scratch paths", target, trial, i)
				}
			}
		}
	}
}

// TestResimulateScratchNil: a nil scratch must behave like the pooled path
// (fresh buffers), not crash.
func TestResimulateScratchNil(t *testing.T) {
	tr := ladderTree(t)
	if err := ResimulateScratch(tr, 4, 1.0, rng.NewMT19937(911), nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// benchTree builds a larger random coalescent genealogy for benchmarking.
func benchTree(b *testing.B, nTips int) *gtree.Tree {
	b.Helper()
	names := make([]string, nTips)
	for i := range names {
		names[i] = "t" + string(rune('A'+i%26)) + string(rune('a'+i/26))
	}
	tr, err := gtree.RandomCoalescent(names, 1.0, rng.NewMT19937(912))
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkResimScratch measures one neighbourhood resimulation with a
// warm caller-owned Scratch: the per-draw fixed cost every sampler pays.
// allocs/op is the headline — it must be ~0, since the region analysis
// buffers all live in the Scratch.
func BenchmarkResimScratch(b *testing.B) {
	base := benchTree(b, 12)
	tr := base.Clone()
	src := rng.NewMT19937(913)
	s := NewScratch()
	// Warm the scratch so growth allocations happen before measurement.
	if err := ResimulateScratch(tr, PickTarget(tr, src), 1.0, src, s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.CopyFrom(base)
		if err := ResimulateScratch(tr, PickTarget(tr, src), 1.0, src, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResimPooled is the same draw through the pooled Resimulate
// wrapper, for comparison with the explicit-Scratch path.
func BenchmarkResimPooled(b *testing.B) {
	base := benchTree(b, 12)
	tr := base.Clone()
	src := rng.NewMT19937(914)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.CopyFrom(base)
		if err := Resimulate(tr, PickTarget(tr, src), 1.0, src); err != nil {
			b.Fatal(err)
		}
	}
}
