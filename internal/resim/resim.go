// Package resim implements the proposal kernel of the sampler: the
// LAMARC-style resimulation of the neighbourhood around a target interior
// node (paper §4.2-4.3).
//
// Deleting the target node and its parent leaves three dangling child
// lineages (the target's two children and its sibling) which must be
// re-joined by two new coalescent events before reaching the ancestor (the
// deleted parent's parent) — or, when the deleted parent was the root, by
// two events the older of which becomes the new root. The two events are
// drawn from the coalescent prior conditioned on everything outside the
// neighbourhood:
//
//   - The region is cut into feasible intervals at every age where the
//     number of inactive (fixed) lineages k_in or active lineages changes
//     (§4.2, Fig. 8).
//   - Within an interval with a active lineages, active-active merges occur
//     at rate μ_a = a(a-1)/θ while the conditional prior's cross terms with
//     the k_in inactive lineages contribute a "killing" rate 2·a·k_in/θ
//     that the proposal conditions against; the interval transition
//     probabilities S_{a,b}(t) of the resulting killed death process have
//     closed forms.
//   - Completion probabilities P_i(n) (here G) are computed backward from
//     the ancestor constraint (exactly one active lineage at the top), and
//     the forward walk samples the number of events per interval weighted
//     by S·G, then places them by truncated-exponential inversion —
//     the backward-recursion/forward-walk scheme of §4.2.
//
// Because the draw is exactly proportional to the conditional prior
// restricted to the neighbourhood, the Generalized Metropolis-Hastings
// weights reduce to the data likelihoods alone (paper Eq. 29-31), and the
// serial Metropolis-Hastings acceptance ratio reduces to the data
// likelihood ratio (Eq. 28).
//
// The region analysis needs working memory proportional to the number of
// fixed ages inside the region. A Scratch owns those buffers so a chain
// (or one device stream of the multiple-proposal kernel) pays the
// allocation once and every subsequent draw is allocation-free; Resimulate
// without a Scratch borrows one from a shared pool.
package resim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
)

// maxActive is the largest possible number of active lineages: the three
// dangling children minus completed merges.
const maxActive = 3

// Targets returns the node indices eligible as resimulation targets: every
// non-root interior node. The count is always NTips-2, independent of
// topology, which keeps the auxiliary variable φ's distribution uniform
// over a set of fixed size (§4.3).
func Targets(t *gtree.Tree) []int {
	out := make([]int, 0, t.NInterior()-1)
	for k := 0; k < t.NInterior(); k++ {
		i := t.InteriorIndex(k)
		if i != t.Root {
			out = append(out, i)
		}
	}
	return out
}

// PickTarget samples the auxiliary variable φ: a uniform choice among the
// non-root interior nodes. It panics for trees with fewer than 3 tips,
// which have no resimulatable neighbourhood. It draws exactly as if
// indexing into Targets but without materializing the slice: the sampler
// calls it once per round and the hot path stays allocation-free.
func PickTarget(t *gtree.Tree, src rng.Source) int {
	n := t.NInterior() - 1
	if n <= 0 {
		panic("resim: tree has no resimulatable target (need >= 3 tips)")
	}
	r := rng.Intn(src, n)
	for k := 0; k < t.NInterior(); k++ {
		i := t.InteriorIndex(k)
		if i == t.Root {
			continue
		}
		if r == 0 {
			return i
		}
		r--
	}
	panic("resim: internal error: target index out of range")
}

// Scratch is the reusable working memory of one resimulation stream: the
// boundary, killing-rate and completion-probability buffers the region
// analysis needs, owned by the caller so repeated draws allocate nothing.
// A Scratch is not safe for concurrent use — give each chain (or each
// device stream of a multiple-proposal kernel) its own, exactly as each
// PRNG stream is owned by one thread.
type Scratch struct {
	r region
}

// NewScratch returns an empty Scratch. Buffers grow on first use to the
// size the tree's regions demand and are reused afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool backs Resimulate calls made without an explicit Scratch, so
// legacy call sites stay cheap without carrying one around.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// Resimulate redraws the neighbourhood around target from the conditional
// coalescent prior with parameter theta, modifying t in place, using a
// pooled Scratch. See ResimulateScratch for the allocation-free form.
func Resimulate(t *gtree.Tree, target int, theta float64, src rng.Source) error {
	s := scratchPool.Get().(*Scratch)
	err := ResimulateScratch(t, target, theta, src, s)
	scratchPool.Put(s)
	return err
}

// ResimulateScratch is Resimulate with caller-owned working memory: with a
// warm Scratch the draw performs no heap allocation. The target must be a
// non-root interior node. The two replacement coalescent events reuse the
// node slots of the target and its parent (younger event in the target's
// slot), so node indices remain stable identities across proposals. A nil
// scratch allocates a fresh one.
//
//mpcgs:hotpath
func ResimulateScratch(t *gtree.Tree, target int, theta float64, src rng.Source, s *Scratch) error {
	if theta <= 0 {
		return fmt.Errorf("resim: theta %v must be positive", theta)
	}
	if target < 0 || target >= t.NNodes() {
		return fmt.Errorf("resim: target %d out of range", target)
	}
	if t.IsTip(target) {
		return fmt.Errorf("resim: target %d is a tip", target)
	}
	if target == t.Root {
		return fmt.Errorf("resim: target %d is the root", target)
	}
	if s == nil {
		s = NewScratch() //mpcgsvet:ignore-alloc nil-scratch fallback for legacy callers; hot callers pass a warm Scratch
	}

	parent := t.Nodes[target].Parent
	ancestor := t.Nodes[parent].Parent // gtree.Nil when parent is the root
	children := [3]int{
		t.Nodes[target].Child[0],
		t.Nodes[target].Child[1],
		t.Sibling(target),
	}
	r := &s.r
	if err := r.build(t, target, parent, ancestor, children, theta); err != nil {
		return err
	}
	return r.sample(t, src)
}

// region is the fully analyzed resimulation problem: interval structure,
// killing rates, joins and completion probabilities. Its slice fields live
// in a Scratch and are rebuilt in place for every draw.
type region struct {
	theta    float64
	target   int
	parent   int
	ancestor int // gtree.Nil for the root-adjacent case
	children [3]int

	bounds []float64 // m+1 boundary ages, bounds[0] = youngest child age
	kin    []int     // m per-interval inactive lineage counts
	joinAt [3]int    // boundary index at which each child becomes active
	g      [][4]float64
}

func (r *region) rootCase() bool { return r.ancestor == gtree.Nil }

// joinCount returns how many of the three children join the active set at
// boundary j.
func (r *region) joinCount(j int) int {
	n := 0
	for _, at := range r.joinAt {
		if at == j {
			n++
		}
	}
	return n
}

// build analyzes the resimulation region into r, reusing r's buffers.
func (r *region) build(t *gtree.Tree, target, parent, ancestor int, children [3]int, theta float64) error {
	r.theta, r.target, r.parent, r.ancestor = theta, target, parent, ancestor
	r.children = children

	// Region bottom: the youngest child's age; top: the ancestor's age,
	// or unbounded for the root-adjacent case.
	bottom := math.Inf(1)
	for _, c := range children {
		if a := t.Nodes[c].Age; a < bottom {
			bottom = a
		}
	}
	top := math.Inf(1)
	if !r.rootCase() {
		top = t.Nodes[ancestor].Age
		if top <= bottom {
			return fmt.Errorf("resim: ancestor age %v not above region bottom %v", top, bottom)
		}
	}

	// Boundary ages: the bottom plus every fixed node age strictly inside
	// (bottom, top) — collected, sorted, and deduplicated in place — plus
	// the top when the region is bounded. Ages equal to top fold into top.
	b := append(r.bounds[:0], bottom)
	for i := range t.Nodes {
		if i == target || i == parent {
			continue
		}
		if a := t.Nodes[i].Age; a > bottom && a < top {
			b = append(b, a)
		}
	}
	sort.Float64s(b)
	w := 1
	for i := 1; i < len(b); i++ {
		if b[i] != b[w-1] {
			b[w] = b[i]
			w++
		}
	}
	b = b[:w]
	if !r.rootCase() {
		b = append(b, top)
	}
	r.bounds = b

	// Joins: the boundary at which each child enters the active set.
	for k, c := range children {
		age := t.Nodes[c].Age
		j := sort.SearchFloat64s(r.bounds, age)
		if j >= len(r.bounds) || r.bounds[j] != age {
			return fmt.Errorf("resim: internal error: child age %v is not a boundary", age)
		}
		r.joinAt[k] = j
	}
	if r.joinCount(0) == 0 {
		return fmt.Errorf("resim: internal error: no child at region bottom")
	}

	// Inactive lineage count per interval: fixed branches crossing the
	// interval. A fixed branch belongs to a node that is neither removed
	// ({target, parent}) nor an active child, whose parent is also not
	// removed. Every fixed age inside the region is a boundary, so a
	// branch [age(i), age(parent)) covers exactly the intervals between
	// its endpoints' boundary positions; one difference-array sweep over
	// the branches replaces the per-interval rescan (O(n log m) instead
	// of O(n·m) per draw, the dominant region-analysis cost on big trees).
	m := len(r.bounds) - 1
	if cap(r.kin) < m {
		r.kin = make([]int, m) //mpcgsvet:ignore-alloc cap-guarded scratch growth, amortized over the run
	} else {
		r.kin = r.kin[:m]
	}
	for j := range r.kin {
		r.kin[j] = 0
	}
	for i := range t.Nodes {
		if i == target || i == parent || i == children[0] || i == children[1] || i == children[2] {
			continue
		}
		p := t.Nodes[i].Parent
		if p == gtree.Nil || p == target || p == parent {
			continue
		}
		lo := sort.SearchFloat64s(r.bounds, t.Nodes[i].Age)
		hi := sort.SearchFloat64s(r.bounds, t.Nodes[p].Age)
		if hi > m {
			hi = m
		}
		if lo >= hi {
			continue
		}
		r.kin[lo]++
		if hi < m {
			r.kin[hi]--
		}
	}
	for j := 1; j < m; j++ {
		r.kin[j] += r.kin[j-1]
	}

	r.computeCompletion()
	return nil
}

// computeCompletion fills g[j][a], the probability of completing the walk
// successfully when entering interval j with a active lineages (after the
// joins at boundary j): the backward recursion over feasible intervals of
// §4.2, with per-level normalization to guard against underflow on long
// regions (only ratios matter for the forward sampling).
func (r *region) computeCompletion() {
	m := len(r.bounds) - 1
	if cap(r.g) < m+1 {
		r.g = make([][4]float64, m+1)
	} else {
		r.g = r.g[:m+1]
	}
	r.g[m] = [4]float64{}
	if r.rootCase() {
		// Above the last boundary there are no inactive lineages and no
		// killing: the pure death process reaches one lineage with
		// certainty.
		for a := 1; a <= maxActive; a++ {
			r.g[m][a] = 1
		}
	} else {
		// The single remaining lineage attaches to the ancestor.
		r.g[m][1] = 1
	}
	for j := m - 1; j >= 0; j-- {
		L := r.bounds[j+1] - r.bounds[j]
		tr := newTransitions(r.kin[j], r.theta)
		nj := r.joinCount(j + 1)
		maxv := 0.0
		for a := 1; a <= maxActive; a++ {
			sum := 0.0
			for b := 1; b <= a; b++ {
				next := b + nj
				if next > maxActive {
					continue
				}
				sum += tr.prob(a, b, L) * r.g[j+1][next]
			}
			r.g[j][a] = sum
			if sum > maxv {
				maxv = sum
			}
		}
		if maxv > 0 && maxv < 1e-280 {
			inv := 1 / maxv
			for a := 1; a <= maxActive; a++ {
				r.g[j][a] *= inv
			}
		}
	}
}

// mergeWalk is the forward walk's mutable state: the active lineage set
// (at most three entries, so it lives on the stack) and the two node slots
// the replacement coalescent events are written into.
type mergeWalk struct {
	active [maxActive]int
	n      int
	slots  [2]int
	next   int
}

// push appends a lineage to the active set.
func (w *mergeWalk) push(node int) {
	w.active[w.n] = node
	w.n++
}

// merge draws a uniform active pair, coalesces it at the given age into
// the next free slot, and splices the tree accordingly.
func (w *mergeWalk) merge(t *gtree.Tree, age float64, src rng.Source) error {
	if w.next >= 2 {
		return fmt.Errorf("resim: internal error: more than two merge events")
	}
	i, j := rng.UniformPair(src, w.n)
	slot := w.slots[w.next]
	w.next++
	a, b := w.active[i], w.active[j]
	t.Nodes[slot].Child = [2]int{a, b}
	t.Nodes[slot].Age = age
	t.Nodes[a].Parent = slot
	t.Nodes[b].Parent = slot
	w.active[i] = slot
	copy(w.active[j:w.n-1], w.active[j+1:w.n])
	w.n--
	return nil
}

// sample runs the conditioned forward walk and performs the tree surgery.
func (r *region) sample(t *gtree.Tree, src rng.Source) error {
	m := len(r.bounds) - 1
	var walk mergeWalk
	walk.slots = [2]int{r.target, r.parent}
	for k, c := range r.children {
		if r.joinAt[k] == 0 {
			walk.push(c)
		}
	}
	if walk.n == 0 {
		return fmt.Errorf("resim: internal error: no child at region bottom")
	}

	for j := 0; j < m; j++ {
		L := r.bounds[j+1] - r.bounds[j]
		tr := newTransitions(r.kin[j], r.theta)
		a := walk.n
		nj := r.joinCount(j + 1)

		// Choose the exit state weighted by transition x completion.
		var weights [maxActive + 1]float64
		total := 0.0
		for b := 1; b <= a; b++ {
			next := b + nj
			if next > maxActive {
				continue
			}
			w := tr.prob(a, b, L) * r.g[j+1][next]
			weights[b] = w
			total += w
		}
		if total <= 0 {
			return fmt.Errorf("resim: no feasible continuation in interval %d (theta %v too extreme for region)", j, r.theta)
		}
		b := -1
		x := src.Float64() * total
		acc := 0.0
		for cand := 1; cand <= a; cand++ {
			acc += weights[cand]
			if weights[cand] > 0 && x < acc {
				b = cand
				break
			}
		}
		if b < 0 {
			// Floating-point slack pushed x past the last bucket: take the
			// largest feasible exit state.
			for cand := a; cand >= 1; cand-- {
				if weights[cand] > 0 {
					b = cand
					break
				}
			}
		}

		// Place the events inside the interval and apply them in age order.
		switch a - b {
		case 0:
		case 1:
			s := tr.placeOne(a, L, src)
			if err := walk.merge(t, r.bounds[j]+s, src); err != nil {
				return err
			}
		case 2:
			s1, s2 := tr.placeTwo(L, src)
			if err := walk.merge(t, r.bounds[j]+s1, src); err != nil {
				return err
			}
			if err := walk.merge(t, r.bounds[j]+s2, src); err != nil {
				return err
			}
		default:
			return fmt.Errorf("resim: internal error: %d events in one interval", a-b)
		}
		for k, c := range r.children {
			if r.joinAt[k] == j+1 {
				walk.push(c)
			}
		}
	}

	if r.rootCase() {
		// Unbounded tail above the last boundary: no inactive lineages,
		// plain exponential waits between the remaining merges.
		age := r.bounds[m]
		for walk.n > 1 {
			a := walk.n
			rate := float64(a*(a-1)) / r.theta
			age += rng.Exp(src, rate)
			if err := walk.merge(t, age, src); err != nil {
				return err
			}
		}
	}
	if walk.n != 1 {
		return fmt.Errorf("resim: internal error: %d active lineages at region top", walk.n)
	}
	if walk.next != 2 {
		return fmt.Errorf("resim: internal error: %d merges performed, want 2", walk.next)
	}
	// The final merge landed in the parent slot, which the ancestor (or
	// the root marker) already references; only the upward link needs
	// restating.
	if walk.active[0] != r.parent {
		return fmt.Errorf("resim: internal error: final lineage %d is not the parent slot %d", walk.active[0], r.parent)
	}
	if r.rootCase() {
		t.Nodes[r.parent].Parent = gtree.Nil
		t.Root = r.parent
	} else {
		t.Nodes[r.parent].Parent = r.ancestor
	}
	return nil
}
