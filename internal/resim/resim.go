// Package resim implements the proposal kernel of the sampler: the
// LAMARC-style resimulation of the neighbourhood around a target interior
// node (paper §4.2-4.3).
//
// Deleting the target node and its parent leaves three dangling child
// lineages (the target's two children and its sibling) which must be
// re-joined by two new coalescent events before reaching the ancestor (the
// deleted parent's parent) — or, when the deleted parent was the root, by
// two events the older of which becomes the new root. The two events are
// drawn from the coalescent prior conditioned on everything outside the
// neighbourhood:
//
//   - The region is cut into feasible intervals at every age where the
//     number of inactive (fixed) lineages k_in or active lineages changes
//     (§4.2, Fig. 8).
//   - Within an interval with a active lineages, active-active merges occur
//     at rate μ_a = a(a-1)/θ while the conditional prior's cross terms with
//     the k_in inactive lineages contribute a "killing" rate 2·a·k_in/θ
//     that the proposal conditions against; the interval transition
//     probabilities S_{a,b}(t) of the resulting killed death process have
//     closed forms.
//   - Completion probabilities P_i(n) (here G) are computed backward from
//     the ancestor constraint (exactly one active lineage at the top), and
//     the forward walk samples the number of events per interval weighted
//     by S·G, then places them by truncated-exponential inversion —
//     the backward-recursion/forward-walk scheme of §4.2.
//
// Because the draw is exactly proportional to the conditional prior
// restricted to the neighbourhood, the Generalized Metropolis-Hastings
// weights reduce to the data likelihoods alone (paper Eq. 29-31), and the
// serial Metropolis-Hastings acceptance ratio reduces to the data
// likelihood ratio (Eq. 28).
package resim

import (
	"fmt"
	"math"
	"sort"

	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
)

// maxActive is the largest possible number of active lineages: the three
// dangling children minus completed merges.
const maxActive = 3

// Targets returns the node indices eligible as resimulation targets: every
// non-root interior node. The count is always NTips-2, independent of
// topology, which keeps the auxiliary variable φ's distribution uniform
// over a set of fixed size (§4.3).
func Targets(t *gtree.Tree) []int {
	out := make([]int, 0, t.NInterior()-1)
	for k := 0; k < t.NInterior(); k++ {
		i := t.InteriorIndex(k)
		if i != t.Root {
			out = append(out, i)
		}
	}
	return out
}

// PickTarget samples the auxiliary variable φ: a uniform choice among the
// non-root interior nodes. It panics for trees with fewer than 3 tips,
// which have no resimulatable neighbourhood. It draws exactly as if
// indexing into Targets but without materializing the slice: the sampler
// calls it once per round and the hot path stays allocation-free.
func PickTarget(t *gtree.Tree, src rng.Source) int {
	n := t.NInterior() - 1
	if n <= 0 {
		panic("resim: tree has no resimulatable target (need >= 3 tips)")
	}
	r := rng.Intn(src, n)
	for k := 0; k < t.NInterior(); k++ {
		i := t.InteriorIndex(k)
		if i == t.Root {
			continue
		}
		if r == 0 {
			return i
		}
		r--
	}
	panic("resim: internal error: target index out of range")
}

// Resimulate redraws the neighbourhood around target from the conditional
// coalescent prior with parameter theta, modifying t in place. The target
// must be a non-root interior node. The two replacement coalescent events
// reuse the node slots of the target and its parent (younger event in the
// target's slot), so node indices remain stable identities across
// proposals.
func Resimulate(t *gtree.Tree, target int, theta float64, src rng.Source) error {
	if theta <= 0 {
		return fmt.Errorf("resim: theta %v must be positive", theta)
	}
	if target < 0 || target >= t.NNodes() {
		return fmt.Errorf("resim: target %d out of range", target)
	}
	if t.IsTip(target) {
		return fmt.Errorf("resim: target %d is a tip", target)
	}
	if target == t.Root {
		return fmt.Errorf("resim: target %d is the root", target)
	}

	parent := t.Nodes[target].Parent
	ancestor := t.Nodes[parent].Parent // gtree.Nil when parent is the root
	children := [3]int{
		t.Nodes[target].Child[0],
		t.Nodes[target].Child[1],
		t.Sibling(target),
	}
	region, err := buildRegion(t, target, parent, ancestor, children, theta)
	if err != nil {
		return err
	}
	return region.sample(t, src)
}

// region is the fully analyzed resimulation problem: interval structure,
// killing rates, joins and completion probabilities.
type region struct {
	theta    float64
	target   int
	parent   int
	ancestor int // gtree.Nil for the root-adjacent case

	bounds []float64 // m+1 boundary ages, bounds[0] = youngest child age
	kin    []int     // m per-interval inactive lineage counts
	joins  [][]int   // m+1 lists: child node indices joining at each boundary
	g      [][4]float64
}

func (r *region) rootCase() bool { return r.ancestor == gtree.Nil }

func buildRegion(t *gtree.Tree, target, parent, ancestor int, children [3]int, theta float64) (*region, error) {
	r := &region{theta: theta, target: target, parent: parent, ancestor: ancestor}

	isChild := func(i int) bool {
		return i == children[0] || i == children[1] || i == children[2]
	}
	// Region bottom: the youngest child's age; top: the ancestor's age,
	// or unbounded for the root-adjacent case.
	bottom := math.Inf(1)
	for _, c := range children {
		if a := t.Nodes[c].Age; a < bottom {
			bottom = a
		}
	}
	top := math.Inf(1)
	if !r.rootCase() {
		top = t.Nodes[ancestor].Age
		if top <= bottom {
			return nil, fmt.Errorf("resim: ancestor age %v not above region bottom %v", top, bottom)
		}
	}

	// Critical ages: every fixed node age strictly inside (bottom, top),
	// plus the joining children's ages. Ages equal to top fold into top.
	critical := map[float64]bool{}
	for i := range t.Nodes {
		if i == target || i == parent {
			continue
		}
		a := t.Nodes[i].Age
		if a > bottom && a < top {
			critical[a] = true
		}
	}
	r.bounds = append(r.bounds, bottom)
	for a := range critical {
		r.bounds = append(r.bounds, a)
	}
	sort.Float64s(r.bounds)
	if !r.rootCase() {
		r.bounds = append(r.bounds, top)
	}

	// Joins: which children enter the active set at each boundary.
	r.joins = make([][]int, len(r.bounds))
	for _, c := range children {
		age := t.Nodes[c].Age
		j := sort.SearchFloat64s(r.bounds, age)
		if j >= len(r.bounds) || r.bounds[j] != age {
			return nil, fmt.Errorf("resim: internal error: child age %v is not a boundary", age)
		}
		r.joins[j] = append(r.joins[j], c)
	}
	if len(r.joins[0]) == 0 {
		return nil, fmt.Errorf("resim: internal error: no child at region bottom")
	}

	// Inactive lineage count per interval: fixed branches crossing the
	// interval midpoint. A fixed branch belongs to a node that is neither
	// removed ({target, parent}) nor an active child, whose parent is
	// also not removed.
	m := len(r.bounds) - 1
	r.kin = make([]int, m)
	for j := 0; j < m; j++ {
		mid := (r.bounds[j] + r.bounds[j+1]) / 2
		count := 0
		for i := range t.Nodes {
			if i == target || i == parent || isChild(i) {
				continue
			}
			p := t.Nodes[i].Parent
			if p == gtree.Nil || p == target || p == parent {
				continue
			}
			if t.Nodes[i].Age <= mid && mid < t.Nodes[p].Age {
				count++
			}
		}
		r.kin[j] = count
	}

	r.computeCompletion()
	return r, nil
}

// computeCompletion fills g[j][a], the probability of completing the walk
// successfully when entering interval j with a active lineages (after the
// joins at boundary j): the backward recursion over feasible intervals of
// §4.2, with per-level normalization to guard against underflow on long
// regions (only ratios matter for the forward sampling).
func (r *region) computeCompletion() {
	m := len(r.bounds) - 1
	r.g = make([][4]float64, m+1)
	if r.rootCase() {
		// Above the last boundary there are no inactive lineages and no
		// killing: the pure death process reaches one lineage with
		// certainty.
		for a := 1; a <= maxActive; a++ {
			r.g[m][a] = 1
		}
	} else {
		// The single remaining lineage attaches to the ancestor.
		r.g[m][1] = 1
	}
	for j := m - 1; j >= 0; j-- {
		L := r.bounds[j+1] - r.bounds[j]
		tr := newTransitions(r.kin[j], r.theta)
		nj := len(r.joins[j+1])
		maxv := 0.0
		for a := 1; a <= maxActive; a++ {
			sum := 0.0
			for b := 1; b <= a; b++ {
				next := b + nj
				if next > maxActive {
					continue
				}
				sum += tr.prob(a, b, L) * r.g[j+1][next]
			}
			r.g[j][a] = sum
			if sum > maxv {
				maxv = sum
			}
		}
		if maxv > 0 && maxv < 1e-280 {
			inv := 1 / maxv
			for a := 1; a <= maxActive; a++ {
				r.g[j][a] *= inv
			}
		}
	}
}

// sample runs the conditioned forward walk and performs the tree surgery.
func (r *region) sample(t *gtree.Tree, src rng.Source) error {
	m := len(r.bounds) - 1
	active := make([]int, 0, maxActive)
	active = append(active, r.joins[0]...)
	if len(active) > maxActive {
		return fmt.Errorf("resim: internal error: %d children at region bottom", len(active))
	}

	mergeSlots := [2]int{r.target, r.parent}
	nextSlot := 0
	doMerge := func(age float64) error {
		if nextSlot >= 2 {
			return fmt.Errorf("resim: internal error: more than two merge events")
		}
		i, j := rng.UniformPair(src, len(active))
		slot := mergeSlots[nextSlot]
		nextSlot++
		a, b := active[i], active[j]
		t.Nodes[slot].Child = [2]int{a, b}
		t.Nodes[slot].Age = age
		t.Nodes[a].Parent = slot
		t.Nodes[b].Parent = slot
		active[i] = slot
		active = append(active[:j], active[j+1:]...)
		return nil
	}

	for j := 0; j < m; j++ {
		L := r.bounds[j+1] - r.bounds[j]
		tr := newTransitions(r.kin[j], r.theta)
		a := len(active)
		nj := len(r.joins[j+1])

		// Choose the exit state weighted by transition x completion.
		var weights [maxActive + 1]float64
		total := 0.0
		for b := 1; b <= a; b++ {
			next := b + nj
			if next > maxActive {
				continue
			}
			w := tr.prob(a, b, L) * r.g[j+1][next]
			weights[b] = w
			total += w
		}
		if total <= 0 {
			return fmt.Errorf("resim: no feasible continuation in interval %d (theta %v too extreme for region)", j, r.theta)
		}
		b := -1
		x := src.Float64() * total
		acc := 0.0
		for cand := 1; cand <= a; cand++ {
			acc += weights[cand]
			if weights[cand] > 0 && x < acc {
				b = cand
				break
			}
		}
		if b < 0 {
			// Floating-point slack pushed x past the last bucket: take the
			// largest feasible exit state.
			for cand := a; cand >= 1; cand-- {
				if weights[cand] > 0 {
					b = cand
					break
				}
			}
		}

		// Place the events inside the interval and apply them in age order.
		switch a - b {
		case 0:
		case 1:
			s := tr.placeOne(a, L, src)
			if err := doMerge(r.bounds[j] + s); err != nil {
				return err
			}
		case 2:
			s1, s2 := tr.placeTwo(L, src)
			if err := doMerge(r.bounds[j] + s1); err != nil {
				return err
			}
			if err := doMerge(r.bounds[j] + s2); err != nil {
				return err
			}
		default:
			return fmt.Errorf("resim: internal error: %d events in one interval", a-b)
		}
		active = append(active, r.joins[j+1]...)
	}

	if r.rootCase() {
		// Unbounded tail above the last boundary: no inactive lineages,
		// plain exponential waits between the remaining merges.
		age := r.bounds[m]
		for len(active) > 1 {
			a := len(active)
			rate := float64(a*(a-1)) / r.theta
			age += rng.Exp(src, rate)
			if err := doMerge(age); err != nil {
				return err
			}
		}
	}
	if len(active) != 1 {
		return fmt.Errorf("resim: internal error: %d active lineages at region top", len(active))
	}
	if nextSlot != 2 {
		return fmt.Errorf("resim: internal error: %d merges performed, want 2", nextSlot)
	}
	// The final merge landed in the parent slot, which the ancestor (or
	// the root marker) already references; only the upward link needs
	// restating.
	if active[0] != r.parent {
		return fmt.Errorf("resim: internal error: final lineage %d is not the parent slot %d", active[0], r.parent)
	}
	if r.rootCase() {
		t.Nodes[r.parent].Parent = gtree.Nil
		t.Root = r.parent
	} else {
		t.Nodes[r.parent].Parent = r.ancestor
	}
	return nil
}
