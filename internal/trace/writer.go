package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Writer appends draws to a sidecar file. Append only buffers in
// memory — the sampler hot path never touches the kernel — and Flush
// emits everything buffered since the last flush as one checksummed
// frame followed by an fsync. The checkpoint cadence therefore defines
// the frame cadence, and a snapshot's durable offset always lands on a
// frame boundary.
type Writer struct {
	f       *os.File
	nAges   int
	off     int64 // durable byte offset: header plus all synced frames
	draws   int   // draws durable at off
	buf     []byte
	pending int
}

// Open opens (or creates) the sidecar at path for trees with nAges
// internal-node ages. An existing file is validated and recovered: the
// frame chain is scanned with checksums, and a torn or corrupt tail —
// the residue of a crash mid-append — is truncated back to the last
// durable frame boundary. The writer is positioned at that boundary.
func Open(path string, nAges int) (*Writer, error) {
	if nAges <= 0 {
		return nil, fmt.Errorf("trace: nAges %d out of range", nAges)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &Writer{f: f, nAges: nAges}
	if st.Size() == 0 {
		if _, err := f.WriteAt(EncodeHeader(nAges), 0); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		w.off = HeaderSize
		return w, nil
	}
	info, err := scan(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.NAges != nAges {
		f.Close()
		return nil, fmt.Errorf("trace: sidecar %s has nAges %d, want %d", path, info.NAges, nAges)
	}
	if info.DurableBytes < st.Size() {
		// Torn tail from a crash mid-append: drop it. Everything up to
		// DurableBytes passed its checksum and stays.
		if err := f.Truncate(info.DurableBytes); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	w.off = info.DurableBytes
	w.draws = info.Draws
	return w, nil
}

// NAges returns the per-draw age count the sidecar was opened with.
func (w *Writer) NAges() int { return w.nAges }

// Path returns the sidecar file path the writer was opened with.
func (w *Writer) Path() string { return w.f.Name() }

// Append buffers one draw. It performs no I/O.
func (w *Writer) Append(stat float64, ages []float64, logLik float64) {
	w.buf = appendDraw(w.buf, stat, ages, logLik)
	w.pending++
}

// Pending returns the number of buffered draws not yet flushed.
func (w *Writer) Pending() int { return w.pending }

// PendingBytes returns the encoded size of the buffered draws, the
// quantity callers bound to cap recorder memory between flushes.
func (w *Writer) PendingBytes() int { return len(w.buf) }

// Durable returns the durable byte offset and total durable draw count.
// Both advance only on successful Flush.
func (w *Writer) Durable() (off int64, draws int) { return w.off, w.draws }

// Flush writes all buffered draws as a single frame and fsyncs. A
// no-op when nothing is pending. On success the durable offset covers
// the new frame.
func (w *Writer) Flush() error {
	if w.pending == 0 {
		return nil
	}
	frame := make([]byte, 0, 4+len(w.buf)+4)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(w.buf)))
	frame = append(frame, w.buf...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(w.buf))
	if _, err := w.f.WriteAt(frame, w.off); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.off += int64(len(frame))
	w.draws += w.pending
	w.buf = w.buf[:0]
	w.pending = 0
	return nil
}

// TruncateTo rewinds the sidecar to a checkpointed durable offset,
// discarding frames recorded after that snapshot was taken. The target
// must be a frame boundary holding exactly draws draws — both are
// re-verified against the file, so a checkpoint that disagrees with
// its sidecar fails loudly instead of resuming from skewed state.
// Buffered draws are discarded.
func (w *Writer) TruncateTo(off int64, draws int) error {
	if off < HeaderSize || off > w.off {
		return fmt.Errorf("trace: truncate offset %d outside durable range [%d, %d]", off, HeaderSize, w.off)
	}
	got, err := countDraws(w.f, off)
	if err != nil {
		return err
	}
	if got != draws {
		return fmt.Errorf("trace: sidecar holds %d draws at offset %d, checkpoint says %d", got, off, draws)
	}
	if err := w.f.Truncate(off); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.off = off
	w.draws = draws
	w.buf = w.buf[:0]
	w.pending = 0
	return nil
}

// Replay streams durable draws in the byte range [from, to) through
// fn in record order. from and to must be frame boundaries (to < 0
// means the durable end). The ages slice passed to fn is reused across
// calls; fn must copy it to retain it.
func (w *Writer) Replay(from, to int64, fn func(stat float64, ages []float64, logLik float64) error) error {
	if to < 0 {
		to = w.off
	}
	if to > w.off {
		return fmt.Errorf("trace: replay end %d beyond durable offset %d", to, w.off)
	}
	return replay(w.f, w.nAges, from, to, fn)
}

// Close releases the file handle. Buffered draws are not flushed —
// callers that need durability must Flush first; dropping the buffer
// mirrors what a crash would do.
func (w *Writer) Close() error { return w.f.Close() }

// replay decodes frames from r over [from, to) and feeds each draw to
// fn, reusing one ages buffer.
func replay(r io.ReaderAt, nAges int, from, to int64, fn func(stat float64, ages []float64, logLik float64) error) error {
	if from < HeaderSize || from > to {
		return fmt.Errorf("trace: replay range [%d, %d) invalid", from, to)
	}
	drawSize := int64(DrawSize(nAges))
	sr := bufio.NewReaderSize(io.NewSectionReader(r, from, to-from), 1<<16)
	ages := make([]float64, nAges)
	var hdr [4]byte
	pos := from
	for pos < to {
		if _, err := io.ReadFull(sr, hdr[:]); err != nil {
			return fmt.Errorf("trace: frame header at %d: %w", pos, err)
		}
		payloadLen := int64(binary.LittleEndian.Uint32(hdr[:]))
		if payloadLen == 0 || payloadLen > maxFrameLen || payloadLen%drawSize != 0 {
			return fmt.Errorf("trace: implausible frame length %d at %d", payloadLen, pos)
		}
		if pos+4+payloadLen+4 > to {
			return fmt.Errorf("trace: frame at %d overruns replay range", pos)
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(sr, payload); err != nil {
			return fmt.Errorf("trace: frame payload at %d: %w", pos, err)
		}
		if _, err := io.ReadFull(sr, hdr[:]); err != nil {
			return fmt.Errorf("trace: frame checksum at %d: %w", pos, err)
		}
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[:]); got != want {
			return fmt.Errorf("trace: frame checksum mismatch at %d: %08x != %08x", pos, got, want)
		}
		for o := int64(0); o < payloadLen; o += drawSize {
			d := payload[o:]
			stat := f64(d[0:])
			for j := 0; j < nAges; j++ {
				ages[j] = f64(d[8+8*j:])
			}
			logLik := f64(d[8+8*nAges:])
			if err := fn(stat, ages, logLik); err != nil {
				return err
			}
		}
		pos += 4 + payloadLen + 4
	}
	return nil
}
