package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Info summarizes a sidecar file without modifying it.
type Info struct {
	NAges        int
	Frames       int
	Draws        int
	DurableBytes int64 // header + frames that pass their checksums
	FileBytes    int64 // actual size; > DurableBytes means a torn tail
}

// Torn reports whether the file ends in an incomplete or corrupt
// frame that recovery would truncate.
func (i Info) Torn() bool { return i.FileBytes > i.DurableBytes }

// Stat scans a sidecar read-only and reports its shape. Used by
// `mpcgs -inspect` on paused jobs; the file is left untouched even if
// the tail is torn.
func Stat(path string) (Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return Info{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Info{}, err
	}
	return scan(f, st.Size())
}

// Replay streams durable draws from the sidecar at path in the byte
// range [from, to) through fn (to < 0 means end of durable data). The
// ages slice passed to fn is reused; fn must copy to retain.
func Replay(path string, from, to int64, fn func(stat float64, ages []float64, logLik float64) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	info, err := scan(f, st.Size())
	if err != nil {
		return err
	}
	if to < 0 {
		to = info.DurableBytes
	}
	if to > info.DurableBytes {
		return fmt.Errorf("trace: replay end %d beyond durable offset %d", to, info.DurableBytes)
	}
	return replay(f, info.NAges, from, to, fn)
}

// scan validates the header and walks the frame chain, checksumming
// every frame. It stops at the first torn or corrupt frame — under the
// append-only crash model only the tail can be damaged — and reports
// how far the durable prefix extends.
func scan(r io.ReaderAt, size int64) (Info, error) {
	var hdr [HeaderSize]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return Info{}, fmt.Errorf("trace: reading header: %w", err)
	}
	nAges, err := DecodeHeader(hdr[:])
	if err != nil {
		return Info{}, err
	}
	info := Info{NAges: nAges, DurableBytes: HeaderSize, FileBytes: size}
	drawSize := int64(DrawSize(nAges))
	var lenBuf [4]byte
	pos := int64(HeaderSize)
	for pos+4 <= size {
		if _, err := r.ReadAt(lenBuf[:], pos); err != nil {
			return Info{}, fmt.Errorf("trace: frame header at %d: %w", pos, err)
		}
		payloadLen := int64(binary.LittleEndian.Uint32(lenBuf[:]))
		if payloadLen == 0 || payloadLen > maxFrameLen || payloadLen%drawSize != 0 {
			break // corrupt tail
		}
		end := pos + 4 + payloadLen + 4
		if end > size {
			break // torn: frame extends past EOF
		}
		payload := make([]byte, payloadLen)
		if _, err := r.ReadAt(payload, pos+4); err != nil {
			return Info{}, fmt.Errorf("trace: frame payload at %d: %w", pos, err)
		}
		if _, err := r.ReadAt(lenBuf[:], pos+4+payloadLen); err != nil {
			return Info{}, fmt.Errorf("trace: frame checksum at %d: %w", pos, err)
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(lenBuf[:]) {
			break // torn: partial payload write
		}
		info.Frames++
		info.Draws += int(payloadLen / drawSize)
		info.DurableBytes = end
		pos = end
	}
	return info, nil
}

// countDraws walks frame headers up to limit and returns the draw
// count, erroring if limit does not land exactly on a frame boundary.
func countDraws(f *os.File, limit int64) (int, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	info, err := scan(f, st.Size())
	if err != nil {
		return 0, err
	}
	if limit > info.DurableBytes {
		return 0, fmt.Errorf("trace: offset %d beyond durable data at %d", limit, info.DurableBytes)
	}
	drawSize := int64(DrawSize(info.NAges))
	var lenBuf [4]byte
	draws := 0
	pos := int64(HeaderSize)
	for pos < limit {
		if _, err := f.ReadAt(lenBuf[:], pos); err != nil {
			return 0, fmt.Errorf("trace: frame header at %d: %w", pos, err)
		}
		payloadLen := int64(binary.LittleEndian.Uint32(lenBuf[:]))
		draws += int(payloadLen / drawSize)
		pos += 4 + payloadLen + 4
	}
	if pos != limit {
		return 0, fmt.Errorf("trace: offset %d is not a frame boundary", limit)
	}
	return draws, nil
}

func f64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
