package trace

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// drawGen produces a deterministic stream of draws with awkward bit
// patterns mixed in, so round-trip checks exercise more than smooth
// values.
func drawGen(i, nAges int) (float64, []float64, float64) {
	stat := float64(i) * 1.25e-3
	switch i % 5 {
	case 1:
		stat = -stat
	case 2:
		stat = stat * 1e-300 // subnormal territory under division
	case 3:
		stat = math.Inf(1)
	}
	ages := make([]float64, nAges)
	for j := range ages {
		ages[j] = float64(i*31+j) / 7.0
	}
	return stat, ages, float64(i) - 0.5
}

func appendDraws(t *testing.T, w *Writer, from, to, nAges int) {
	t.Helper()
	for i := from; i < to; i++ {
		stat, ages, ll := drawGen(i, nAges)
		w.Append(stat, ages, ll)
	}
}

func collect(t *testing.T, w *Writer, from, to int64) (stats []float64, ages [][]float64, lls []float64) {
	t.Helper()
	err := w.Replay(from, to, func(s float64, a []float64, l float64) error {
		stats = append(stats, s)
		cp := make([]float64, len(a))
		copy(cp, a)
		ages = append(ages, cp)
		lls = append(lls, l)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return
}

func TestWriterRoundTrip(t *testing.T) {
	const nAges = 5
	path := filepath.Join(t.TempDir(), "job.trace")
	w, err := Open(path, nAges)
	if err != nil {
		t.Fatal(err)
	}
	appendDraws(t, w, 0, 40, nAges)
	if w.Pending() != 40 {
		t.Fatalf("pending = %d, want 40", w.Pending())
	}
	if off, n := w.Durable(); off != HeaderSize || n != 0 {
		t.Fatalf("durable before flush = (%d, %d)", off, n)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	mid, n := w.Durable()
	if n != 40 {
		t.Fatalf("durable draws = %d, want 40", n)
	}
	appendDraws(t, w, 40, 100, nAges)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil { // empty flush is a no-op
		t.Fatal(err)
	}
	end, n := w.Durable()
	if n != 100 {
		t.Fatalf("durable draws = %d, want 100", n)
	}

	stats, ages, lls := collect(t, w, HeaderSize, -1)
	if len(stats) != 100 {
		t.Fatalf("replayed %d draws, want 100", len(stats))
	}
	for i := range stats {
		ws, wa, wl := drawGen(i, nAges)
		if math.Float64bits(stats[i]) != math.Float64bits(ws) || math.Float64bits(lls[i]) != math.Float64bits(wl) {
			t.Fatalf("draw %d: stat/loglik mismatch", i)
		}
		for j := range wa {
			if math.Float64bits(ages[i][j]) != math.Float64bits(wa[j]) {
				t.Fatalf("draw %d age %d mismatch", i, j)
			}
		}
	}

	// Partial range: only the second frame.
	stats2, _, _ := collect(t, w, mid, end)
	if len(stats2) != 60 || math.Float64bits(stats2[0]) != func() uint64 { s, _, _ := drawGen(40, nAges); return math.Float64bits(s) }() {
		t.Fatalf("partial replay wrong: %d draws", len(stats2))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.NAges != nAges || info.Frames != 2 || info.Draws != 100 || info.Torn() {
		t.Fatalf("stat = %+v", info)
	}
}

func TestOpenRecoversExisting(t *testing.T) {
	const nAges = 3
	path := filepath.Join(t.TempDir(), "job.trace")
	w, err := Open(path, nAges)
	if err != nil {
		t.Fatal(err)
	}
	appendDraws(t, w, 0, 10, nAges)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	appendDraws(t, w, 10, 20, nAges) // never flushed: must vanish like a crash
	w.Close()

	w2, err := Open(path, nAges)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, n := w2.Durable(); n != 10 {
		t.Fatalf("recovered draws = %d, want 10", n)
	}
	if _, err := Open(path, nAges+1); err == nil {
		t.Fatal("open with wrong nAges should fail")
	}
	w2.Close()
}

func TestOpenTruncatesTornTail(t *testing.T) {
	const nAges = 4
	path := filepath.Join(t.TempDir(), "job.trace")
	w, err := Open(path, nAges)
	if err != nil {
		t.Fatal(err)
	}
	appendDraws(t, w, 0, 8, nAges)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	durable, _ := w.Durable()
	appendDraws(t, w, 8, 16, nAges)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the second frame: a torn append.
	cut := durable + (int64(len(full))-durable)/2
	for name, mutate := range map[string]func([]byte) []byte{
		"torn":    func(b []byte) []byte { return b[:cut] },
		"corrupt": func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-5] ^= 0xff; return c },
	} {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "damaged.trace")
			if err := os.WriteFile(p, mutate(full), 0o644); err != nil {
				t.Fatal(err)
			}
			info, err := Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			if !info.Torn() || info.Draws != 8 || info.DurableBytes != durable {
				t.Fatalf("stat of damaged file = %+v, want torn with 8 draws at %d", info, durable)
			}
			w, err := Open(p, nAges)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			off, n := w.Durable()
			if off != durable || n != 8 {
				t.Fatalf("recovered to (%d, %d), want (%d, 8)", off, n, durable)
			}
			st, _ := os.Stat(p)
			if st.Size() != durable {
				t.Fatalf("file not truncated: %d bytes, want %d", st.Size(), durable)
			}
			stats, _, _ := collect(t, w, HeaderSize, -1)
			if len(stats) != 8 {
				t.Fatalf("replayed %d draws after recovery, want 8", len(stats))
			}
		})
	}
}

func TestTruncateTo(t *testing.T) {
	const nAges = 2
	path := filepath.Join(t.TempDir(), "job.trace")
	w, err := Open(path, nAges)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendDraws(t, w, 0, 5, nAges)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	snapOff, snapDraws := w.Durable()
	appendDraws(t, w, 5, 12, nAges)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	appendDraws(t, w, 12, 13, nAges) // pending at truncate time: discarded

	if err := w.TruncateTo(snapOff, snapDraws+1); err == nil {
		t.Fatal("draw-count mismatch should fail")
	}
	if err := w.TruncateTo(snapOff+1, snapDraws); err == nil {
		t.Fatal("non-boundary offset should fail")
	}
	if err := w.TruncateTo(snapOff, snapDraws); err != nil {
		t.Fatal(err)
	}
	if off, n := w.Durable(); off != snapOff || n != 5 || w.Pending() != 0 {
		t.Fatalf("after truncate: (%d, %d, pending %d)", off, n, w.Pending())
	}
	// The writer must be usable after rewinding: append diverging draws.
	appendDraws(t, w, 100, 103, nAges)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	stats, _, _ := collect(t, w, HeaderSize, -1)
	if len(stats) != 8 {
		t.Fatalf("replayed %d draws, want 8", len(stats))
	}
	want, _, _ := drawGen(100, nAges)
	if math.Float64bits(stats[5]) != math.Float64bits(want) {
		t.Fatal("draw 5 should come from the post-truncate stream")
	}
}

func TestPackageReplayAndHeaderErrors(t *testing.T) {
	const nAges = 2
	dir := t.TempDir()
	path := filepath.Join(dir, "job.trace")
	w, err := Open(path, nAges)
	if err != nil {
		t.Fatal(err)
	}
	appendDraws(t, w, 0, 6, nAges)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	var got int
	if err := Replay(path, HeaderSize, -1, func(float64, []float64, float64) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("package replay saw %d draws, want 6", got)
	}

	bad := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(bad, []byte("not a trace file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Stat(bad); err == nil {
		t.Fatal("stat of garbage should fail")
	}
	if _, err := Open(bad, nAges); err == nil {
		t.Fatal("open of garbage should fail")
	}
}
