package trace

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzFrameDecode drives the frame decoder with arbitrary bytes. The
// contract is decode-or-error: any input either yields draws plus a
// consumed length inside the buffer, or an error — never a panic, and
// never an out-of-range consumed count. Valid frames built from the
// fuzzer's own parameters must round-trip exactly.
func FuzzFrameDecode(f *testing.F) {
	// A well-formed single-draw frame for nAges=2 seeds the corpus.
	payload := appendDraw(nil, 1.5, []float64{0.25, 0.75}, -3.0)
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	f.Add(2, frame)
	f.Add(2, frame[:len(frame)-3]) // torn tail
	f.Add(1, []byte{})
	f.Add(3, []byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Add(0, frame)

	f.Fuzz(func(t *testing.T, nAges int, b []byte) {
		draws, n, err := DecodeFrame(nAges, b)
		if err != nil {
			if draws != nil {
				t.Fatal("error with non-nil draws")
			}
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if len(draws) == 0 {
			t.Fatal("successful decode with zero draws")
		}
		// Re-encode what was decoded: it must reproduce the consumed
		// bytes bit for bit (the payload is raw IEEE-754 images).
		var enc []byte
		for _, d := range draws {
			if len(d.Ages) != nAges {
				t.Fatalf("draw has %d ages, want %d", len(d.Ages), nAges)
			}
			enc = appendDraw(enc, d.Stat, d.Ages, d.LogLik)
		}
		if len(enc) != n-8 {
			t.Fatalf("re-encoded %d bytes, consumed %d", len(enc), n)
		}
		for i, by := range enc {
			if b[4+i] != by {
				t.Fatalf("re-encode differs at payload byte %d", i)
			}
		}
	})
}

// FuzzScan feeds arbitrary file images to the recovery scanner: it
// must classify any input as (header error) or (durable prefix + torn
// tail) without panicking, and the durable prefix must re-scan to the
// same result (truncation is idempotent).
func FuzzScan(f *testing.F) {
	hdr := EncodeHeader(2)
	f.Add(append(append([]byte{}, hdr...), 0x01, 0x02))
	f.Add(hdr)
	f.Add([]byte("MPTRxxxxyyyyzzzz"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		info, err := scan(bytesReaderAt(b), int64(len(b)))
		if err != nil {
			return
		}
		if info.DurableBytes < HeaderSize || info.DurableBytes > int64(len(b)) {
			t.Fatalf("durable %d outside [%d, %d]", info.DurableBytes, HeaderSize, len(b))
		}
		again, err := scan(bytesReaderAt(b[:info.DurableBytes]), info.DurableBytes)
		if err != nil {
			t.Fatalf("re-scan of durable prefix failed: %v", err)
		}
		if again.DurableBytes != info.DurableBytes || again.Draws != info.Draws || again.Frames != info.Frames {
			t.Fatalf("re-scan diverged: %+v vs %+v", again, info)
		}
	})
}

type bytesReaderAt []byte

func (b bytesReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(b)) {
		return 0, errEOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, errEOF
	}
	return n, nil
}

var errEOF = errShort{}

type errShort struct{}

func (errShort) Error() string { return "short read" }
