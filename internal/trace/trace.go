// Package trace implements the streaming draw sidecar: an append-only,
// crash-safe file that receives every recorded MCMC draw so checkpoints
// can stay O(interval) — a snapshot stores only a durable byte offset
// into the sidecar instead of the accumulated trace itself.
//
// File layout:
//
//	header  = magic "MPTR" | u32 version | u32 nAges | u32 reserved
//	frame   = u32 payloadLen | payload | u32 crc32(payload)
//	payload = drawCount × draw
//	draw    = (2+nAges) × u64 IEEE-754 bits: stat, ages[0..nAges), logLik
//
// All integers and float bits are little-endian. Draws are exact bit
// images of the in-memory float64 values — writing and reading back is
// lossless by construction, which the bit-identical resume contract
// depends on.
//
// Durability contract: a frame is durable once Flush returns — the
// writer emits header+payload+checksum in a single write and fsyncs
// before advancing its durable offset. A crash mid-append leaves at
// most one torn frame at the tail; Open detects it (short frame or
// checksum mismatch) and truncates the file back to the last durable
// frame boundary. The file only ever grows during a run; resume from
// an older checkpoint truncates it back to that checkpoint's offset.
package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	// Magic identifies a sidecar trace file.
	Magic = "MPTR"
	// Version is the sidecar format version written by this package.
	Version = 1
	// HeaderSize is the fixed byte length of the file header.
	HeaderSize = 16

	// maxFrameLen bounds a single frame's payload. The writer batches
	// at checkpoint cadence, far below this; the bound exists so a
	// corrupted length field cannot drive a huge allocation.
	maxFrameLen = 1 << 28
)

// DrawSize returns the encoded byte length of one draw for trees with
// nAges internal-node ages.
func DrawSize(nAges int) int { return 8 * (2 + nAges) }

// Draw is one recorded MCMC sample: the summary statistic, the
// internal-node ages, and the log-likelihood, exactly as recorded.
type Draw struct {
	Stat   float64
	Ages   []float64
	LogLik float64
}

// EncodeHeader renders the 16-byte file header for trees with nAges
// internal-node ages.
func EncodeHeader(nAges int) []byte {
	h := make([]byte, HeaderSize)
	copy(h, Magic)
	binary.LittleEndian.PutUint32(h[4:], Version)
	binary.LittleEndian.PutUint32(h[8:], uint32(nAges))
	return h
}

// DecodeHeader validates a sidecar header and returns nAges.
func DecodeHeader(h []byte) (nAges int, err error) {
	if len(h) < HeaderSize {
		return 0, fmt.Errorf("trace: short header: %d bytes", len(h))
	}
	if string(h[:4]) != Magic {
		return 0, fmt.Errorf("trace: bad magic %q", h[:4])
	}
	if v := binary.LittleEndian.Uint32(h[4:]); v != Version {
		return 0, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint32(h[8:])
	if n == 0 || n > 1<<20 {
		return 0, fmt.Errorf("trace: implausible nAges %d", n)
	}
	return int(n), nil
}

// appendDraw encodes one draw onto buf as raw little-endian bits.
func appendDraw(buf []byte, stat float64, ages []float64, logLik float64) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(stat))
	for _, a := range ages {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a))
	}
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(logLik))
}

// DecodeFrame decodes a single frame from the start of b for trees
// with nAges internal-node ages. It returns the decoded draws and the
// total byte length consumed. Any malformed input — short buffer,
// implausible length, payload not a whole number of draws, checksum
// mismatch — yields an error, never a panic; this is the surface the
// fuzz target drives.
func DecodeFrame(nAges int, b []byte) (draws []Draw, n int, err error) {
	if nAges <= 0 {
		return nil, 0, fmt.Errorf("trace: nAges %d out of range", nAges)
	}
	if len(b) < 4 {
		return nil, 0, fmt.Errorf("trace: short frame: %d bytes", len(b))
	}
	payloadLen := int64(binary.LittleEndian.Uint32(b))
	drawSize := int64(DrawSize(nAges))
	if payloadLen == 0 || payloadLen > maxFrameLen {
		return nil, 0, fmt.Errorf("trace: implausible frame length %d", payloadLen)
	}
	if payloadLen%drawSize != 0 {
		return nil, 0, fmt.Errorf("trace: frame length %d not a multiple of draw size %d", payloadLen, drawSize)
	}
	total := 4 + payloadLen + 4
	if int64(len(b)) < total {
		return nil, 0, fmt.Errorf("trace: torn frame: need %d bytes, have %d", total, len(b))
	}
	payload := b[4 : 4+payloadLen]
	want := binary.LittleEndian.Uint32(b[4+payloadLen:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, fmt.Errorf("trace: frame checksum mismatch: %08x != %08x", got, want)
	}
	count := int(payloadLen / drawSize)
	draws = make([]Draw, count)
	off := 0
	for i := range draws {
		draws[i].Stat = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
		ages := make([]float64, nAges)
		for j := range ages {
			ages[j] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
		draws[i].Ages = ages
		draws[i].LogLik = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	return draws, int(total), nil
}
