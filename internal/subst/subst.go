// Package subst implements the nucleotide substitution models of the
// sampler and its data simulator.
//
// The likelihood kernel uses the model of paper Eq. 20 (Felsenstein 1981,
// "F81"): P_XY(t) = e^{-ut}·δ_XY + (1-e^{-ut})·π_Y, with π estimated from
// the empirical base frequencies of the data. The seq-gen substrate uses
// F84, the model the paper simulates under (§6.1, `-mF84`) — keeping the
// deliberate simulate/infer model mismatch the paper identifies as a
// source of estimation bias. JC69 is F81 with uniform frequencies.
package subst

import (
	"fmt"
	"math"

	"mpcgs/internal/bitseq"
)

// Matrix is a 4x4 transition probability matrix: Matrix[x][y] is the
// probability that an ancestral nucleotide x is observed as y after time t
// along a branch.
type Matrix [4][4]float64

// Model computes transition probabilities over branches and exposes its
// stationary distribution.
type Model interface {
	// TransitionInto fills m with the transition matrix for elapsed time t.
	TransitionInto(t float64, m *Matrix)
	// Freqs returns the stationary (prior) nucleotide distribution π.
	Freqs() [4]float64
	// Name identifies the model for reports.
	Name() string
}

// Uniform is the uniform nucleotide distribution.
var Uniform = [4]float64{0.25, 0.25, 0.25, 0.25}

func validateFreqs(freqs [4]float64) error {
	sum := 0.0
	for i, f := range freqs {
		if f <= 0 || math.IsNaN(f) {
			return fmt.Errorf("subst: frequency of %v is %v, must be positive", bitseq.Base(i), f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("subst: frequencies sum to %v, want 1", sum)
	}
	return nil
}

// F81 is the Felsenstein 1981 model of paper Eq. 20.
type F81 struct {
	freqs [4]float64
	u     float64 // event rate; chosen so branch lengths are expected substitutions when normalized
}

// NewF81 builds an F81 model with the given stationary frequencies.
// When normalize is true the event rate u is scaled so one unit of branch
// length equals one expected substitution per site (u = 1/(1-Σπ²));
// otherwise u = 1 exactly as Eq. 20 is written.
func NewF81(freqs [4]float64, normalize bool) (*F81, error) {
	if err := validateFreqs(freqs); err != nil {
		return nil, err
	}
	u := 1.0
	if normalize {
		ss := 0.0
		for _, f := range freqs {
			ss += f * f
		}
		u = 1 / (1 - ss)
	}
	return &F81{freqs: freqs, u: u}, nil
}

// Name implements Model.
func (m *F81) Name() string { return "F81" }

// Freqs implements Model.
func (m *F81) Freqs() [4]float64 { return m.freqs }

// EventRate exposes the internal event rate u (for tests).
func (m *F81) EventRate() float64 { return m.u }

// TransitionInto implements Model with paper Eq. 20:
// P_XY(t) = e^{-ut} δ_XY + (1-e^{-ut}) π_Y.
func (m *F81) TransitionInto(t float64, p *Matrix) {
	e := math.Exp(-m.u * t)
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			v := (1 - e) * m.freqs[y]
			if x == y {
				v += e
			}
			p[x][y] = v
		}
	}
}

// NewJC69 returns the Jukes-Cantor 1969 model: F81 with uniform
// frequencies, normalized so branch lengths are expected substitutions.
func NewJC69() *F81 {
	m, err := NewF81(Uniform, true)
	if err != nil {
		panic(err) // uniform frequencies always validate
	}
	return m
}

// F84 is the Felsenstein 1984 model: substitution events are either
// "general" (rate b, new base drawn from π) or "within-group" (rate a, new
// base drawn from π restricted to the purine {A,G} or pyrimidine {C,T}
// group of the current base), which gives transitions an elevated rate.
type F84 struct {
	freqs [4]float64
	a, b  float64
	group [4]float64 // π_R for purines, π_Y for pyrimidines, indexed by base
}

// NewF84 builds an F84 model. kappa is the ratio a/b of within-group to
// general event rates (kappa = 0 reduces to F81). When normalize is true,
// rates are scaled so one unit of branch length equals one expected
// substitution per site.
func NewF84(freqs [4]float64, kappa float64, normalize bool) (*F84, error) {
	if err := validateFreqs(freqs); err != nil {
		return nil, err
	}
	if kappa < 0 {
		return nil, fmt.Errorf("subst: F84 kappa %v must be non-negative", kappa)
	}
	m := &F84{freqs: freqs}
	piR := freqs[bitseq.A] + freqs[bitseq.G]
	piY := freqs[bitseq.C] + freqs[bitseq.T]
	m.group = [4]float64{piR, piY, piR, piY}

	b := 1.0
	a := kappa * b
	if normalize {
		// Expected substitutions per unit time:
		//   b-events change the base with probability 1-π_x;
		//   a-events change it with probability 1-π_x/π_group(x).
		rate := 0.0
		for x := 0; x < 4; x++ {
			rate += freqs[x] * (b*(1-freqs[x]) + a*(1-freqs[x]/m.group[x]))
		}
		b /= rate
		a /= rate
	}
	m.a, m.b = a, b
	return m, nil
}

// Name implements Model.
func (m *F84) Name() string { return "F84" }

// Freqs implements Model.
func (m *F84) Freqs() [4]float64 { return m.freqs }

// Rates exposes the internal (a, b) event rates (for tests).
func (m *F84) Rates() (a, b float64) { return m.a, m.b }

// TransitionInto implements Model with the event-based F84 solution:
//
//	P_XY(t) = e^{-(a+b)t} δ_XY
//	        + e^{-bt}(1-e^{-at}) π_Y/π_group(X)   if Y in group(X)
//	        + (1-e^{-bt}) π_Y
func (m *F84) TransitionInto(t float64, p *Matrix) {
	eb := math.Exp(-m.b * t)
	ea := math.Exp(-m.a * t)
	for x := 0; x < 4; x++ {
		sameGroupFactor := eb * (1 - ea) / m.group[x]
		for y := 0; y < 4; y++ {
			v := (1 - eb) * m.freqs[y]
			if sameGroup(x, y) {
				v += sameGroupFactor * m.freqs[y]
			}
			if x == y {
				v += eb * ea
			}
			p[x][y] = v
		}
	}
}

// sameGroup reports whether bases x and y are both purines or both
// pyrimidines. With the A=0,C=1,G=2,T=3 encoding, parity determines the
// group.
func sameGroup(x, y int) bool { return (x^y)&1 == 0 }

var (
	_ Model = (*F81)(nil)
	_ Model = (*F84)(nil)
)
