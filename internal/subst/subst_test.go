package subst

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var skewed = [4]float64{0.1, 0.2, 0.3, 0.4}

func allModels(t *testing.T) map[string]Model {
	t.Helper()
	f81, err := NewF81(skewed, true)
	if err != nil {
		t.Fatal(err)
	}
	f81raw, err := NewF81(skewed, false)
	if err != nil {
		t.Fatal(err)
	}
	f84, err := NewF84(skewed, 2.0, true)
	if err != nil {
		t.Fatal(err)
	}
	f84k0, err := NewF84(skewed, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Model{
		"F81":        f81,
		"F81raw":     f81raw,
		"F84":        f84,
		"F84kappa0":  f84k0,
		"JC69":       NewJC69(),
		"F84uniform": mustF84(t, Uniform, 3.0),
	}
}

func mustF84(t *testing.T, freqs [4]float64, kappa float64) *F84 {
	t.Helper()
	m, err := NewF84(freqs, kappa, true)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRowsSumToOne(t *testing.T) {
	for name, m := range allModels(t) {
		for _, tm := range []float64{0, 1e-6, 0.01, 0.5, 1, 10, 1000} {
			var p Matrix
			m.TransitionInto(tm, &p)
			for x := 0; x < 4; x++ {
				sum := 0.0
				for y := 0; y < 4; y++ {
					if p[x][y] < 0 || p[x][y] > 1 {
						t.Errorf("%s t=%v: P[%d][%d] = %v out of [0,1]", name, tm, x, y, p[x][y])
					}
					sum += p[x][y]
				}
				if math.Abs(sum-1) > 1e-12 {
					t.Errorf("%s t=%v: row %d sums to %v", name, tm, x, sum)
				}
			}
		}
	}
}

func TestZeroTimeIsIdentity(t *testing.T) {
	for name, m := range allModels(t) {
		var p Matrix
		m.TransitionInto(0, &p)
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				want := 0.0
				if x == y {
					want = 1.0
				}
				if math.Abs(p[x][y]-want) > 1e-14 {
					t.Errorf("%s: P(0)[%d][%d] = %v, want %v", name, x, y, p[x][y], want)
				}
			}
		}
	}
}

func TestInfiniteTimeReachesStationary(t *testing.T) {
	for name, m := range allModels(t) {
		var p Matrix
		m.TransitionInto(1e6, &p)
		freqs := m.Freqs()
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				if math.Abs(p[x][y]-freqs[y]) > 1e-9 {
					t.Errorf("%s: P(inf)[%d][%d] = %v, want pi=%v", name, x, y, p[x][y], freqs[y])
				}
			}
		}
	}
}

func TestChapmanKolmogorov(t *testing.T) {
	// P(s)P(t) must equal P(s+t): the models are time-homogeneous Markov.
	for name, m := range allModels(t) {
		var ps, pt, pst Matrix
		s, tm := 0.3, 0.7
		m.TransitionInto(s, &ps)
		m.TransitionInto(tm, &pt)
		m.TransitionInto(s+tm, &pst)
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				sum := 0.0
				for z := 0; z < 4; z++ {
					sum += ps[x][z] * pt[z][y]
				}
				if math.Abs(sum-pst[x][y]) > 1e-12 {
					t.Errorf("%s: (P(s)P(t))[%d][%d] = %v, want %v", name, x, y, sum, pst[x][y])
				}
			}
		}
	}
}

func TestDetailedBalance(t *testing.T) {
	// Both F81 and F84 are reversible: pi_x P_xy(t) == pi_y P_yx(t).
	for name, m := range allModels(t) {
		var p Matrix
		m.TransitionInto(0.37, &p)
		freqs := m.Freqs()
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				lhs := freqs[x] * p[x][y]
				rhs := freqs[y] * p[y][x]
				if math.Abs(lhs-rhs) > 1e-14 {
					t.Errorf("%s: detailed balance violated at (%d,%d): %v vs %v", name, x, y, lhs, rhs)
				}
			}
		}
	}
}

func TestStationarityPreserved(t *testing.T) {
	// pi P(t) == pi.
	for name, m := range allModels(t) {
		var p Matrix
		m.TransitionInto(0.9, &p)
		freqs := m.Freqs()
		for y := 0; y < 4; y++ {
			sum := 0.0
			for x := 0; x < 4; x++ {
				sum += freqs[x] * p[x][y]
			}
			if math.Abs(sum-freqs[y]) > 1e-12 {
				t.Errorf("%s: (pi P)[%d] = %v, want %v", name, y, sum, freqs[y])
			}
		}
	}
}

func TestF81MatchesPaperEq20(t *testing.T) {
	// Unnormalized F81 is literally Eq. 20 with u = 1.
	m, err := NewF81(skewed, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.EventRate() != 1 {
		t.Fatalf("unnormalized u = %v, want 1", m.EventRate())
	}
	var p Matrix
	tm := 0.42
	m.TransitionInto(tm, &p)
	e := math.Exp(-tm)
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			want := (1 - e) * skewed[y]
			if x == y {
				want += e
			}
			if math.Abs(p[x][y]-want) > 1e-15 {
				t.Errorf("P[%d][%d] = %v, want %v", x, y, p[x][y], want)
			}
		}
	}
}

func TestF81NormalizedRate(t *testing.T) {
	// With normalization, the expected number of substitutions over a
	// branch of length t must be t for small t (d/dt at 0 == 1).
	m, err := NewF81(skewed, true)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 1e-7
	var p Matrix
	m.TransitionInto(dt, &p)
	change := 0.0
	for x := 0; x < 4; x++ {
		change += skewed[x] * (1 - p[x][x])
	}
	if math.Abs(change/dt-1) > 1e-5 {
		t.Errorf("substitution rate = %v, want 1", change/dt)
	}
}

func TestF84NormalizedRate(t *testing.T) {
	m := mustF84(t, skewed, 2.0)
	const dt = 1e-7
	var p Matrix
	m.TransitionInto(dt, &p)
	change := 0.0
	for x := 0; x < 4; x++ {
		change += skewed[x] * (1 - p[x][x])
	}
	if math.Abs(change/dt-1) > 1e-5 {
		t.Errorf("substitution rate = %v, want 1", change/dt)
	}
}

func TestF84TransitionBias(t *testing.T) {
	// With kappa > 0, transitions (A<->G, C<->T) must be more probable
	// than transversions at moderate times, relative to their stationary
	// frequencies.
	m := mustF84(t, Uniform, 4.0)
	var p Matrix
	m.TransitionInto(0.2, &p)
	if p[0][2] <= p[0][1] {
		t.Errorf("A->G (%v) should exceed A->C (%v) under transition bias", p[0][2], p[0][1])
	}
	if p[1][3] <= p[1][0] {
		t.Errorf("C->T (%v) should exceed C->A (%v)", p[1][3], p[1][0])
	}
}

func TestF84KappaZeroEqualsF81(t *testing.T) {
	f84, err := NewF84(skewed, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	f81, err := NewF81(skewed, true)
	if err != nil {
		t.Fatal(err)
	}
	var a, b Matrix
	for _, tm := range []float64{0.1, 0.5, 2} {
		f84.TransitionInto(tm, &a)
		f81.TransitionInto(tm, &b)
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				if math.Abs(a[x][y]-b[x][y]) > 1e-12 {
					t.Errorf("t=%v: F84(k=0)[%d][%d]=%v != F81=%v", tm, x, y, a[x][y], b[x][y])
				}
			}
		}
	}
}

func TestJC69ClosedForm(t *testing.T) {
	// JC69: P_xx(t) = 1/4 + 3/4 e^{-4t/3}, P_xy(t) = 1/4 - 1/4 e^{-4t/3}.
	m := NewJC69()
	var p Matrix
	tm := 0.6
	m.TransitionInto(tm, &p)
	e := math.Exp(-4.0 * tm / 3.0)
	same := 0.25 + 0.75*e
	diff := 0.25 - 0.25*e
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			want := diff
			if x == y {
				want = same
			}
			if math.Abs(p[x][y]-want) > 1e-14 {
				t.Errorf("JC69 P[%d][%d] = %v, want %v", x, y, p[x][y], want)
			}
		}
	}
}

func TestInvalidFrequencies(t *testing.T) {
	bad := [][4]float64{
		{0.5, 0.5, 0, 0},       // zero entries
		{0.3, 0.3, 0.3, 0.3},   // sums to 1.2
		{-0.1, 0.4, 0.4, 0.3},  // negative
		{0.25, 0.25, 0.25, .2}, // sums to 0.95
	}
	for _, f := range bad {
		if _, err := NewF81(f, true); err == nil {
			t.Errorf("NewF81(%v) accepted invalid frequencies", f)
		}
		if _, err := NewF84(f, 1, true); err == nil {
			t.Errorf("NewF84(%v) accepted invalid frequencies", f)
		}
	}
	if _, err := NewF84(Uniform, -1, true); err == nil {
		t.Error("negative kappa accepted")
	}
}

func TestChapmanKolmogorovQuick(t *testing.T) {
	m := mustF84(t, skewed, 1.7)
	f := func(sRaw, tRaw float64) bool {
		s := math.Abs(math.Mod(sRaw, 5))
		u := math.Abs(math.Mod(tRaw, 5))
		var ps, pu, psu Matrix
		m.TransitionInto(s, &ps)
		m.TransitionInto(u, &pu)
		m.TransitionInto(s+u, &psu)
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				sum := 0.0
				for z := 0; z < 4; z++ {
					sum += ps[x][z] * pu[z][y]
				}
				if math.Abs(sum-psu[x][y]) > 1e-11 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSameGroup(t *testing.T) {
	// A(0),G(2) purines; C(1),T(3) pyrimidines.
	cases := []struct {
		x, y int
		want bool
	}{
		{0, 2, true}, {2, 0, true}, {1, 3, true}, {3, 1, true},
		{0, 0, true}, {1, 1, true},
		{0, 1, false}, {0, 3, false}, {2, 1, false}, {2, 3, false},
	}
	for _, c := range cases {
		if got := sameGroup(c.x, c.y); got != c.want {
			t.Errorf("sameGroup(%d,%d) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}
