package logspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func near(a, b, eps float64) bool {
	if math.IsInf(a, -1) && math.IsInf(b, -1) {
		return true
	}
	d := math.Abs(a - b)
	if d <= eps {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= eps*m
}

func TestAddKnownValues(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{math.Log(1), math.Log(1), math.Log(2)},
		{math.Log(3), math.Log(5), math.Log(8)},
		{math.Log(1e-300), math.Log(1e-300), math.Log(2e-300)},
		{0, NegInf, 0},
		{NegInf, 0, 0},
		{NegInf, NegInf, NegInf},
	}
	for _, c := range cases {
		if got := Add(c.a, c.b); !near(got, c.want, tol) {
			t.Errorf("Add(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAddCommutative(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 700)
		b = math.Mod(b, 700)
		return near(Add(a, b), Add(b, a), tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddAssociative(t *testing.T) {
	f := func(a, b, c float64) bool {
		a, b, c = math.Mod(a, 200), math.Mod(b, 200), math.Mod(c, 200)
		return near(Add(Add(a, b), c), Add(a, Add(b, c)), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddMatchesDirect(t *testing.T) {
	f := func(x, y float64) bool {
		// Map into a range where direct computation is exact.
		x = math.Abs(math.Mod(x, 100)) + 1e-3
		y = math.Abs(math.Mod(y, 100)) + 1e-3
		direct := math.Log(x + y)
		return near(Add(math.Log(x), math.Log(y)), direct, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddFarApartDoesNotUnderflow(t *testing.T) {
	// exp(-800) underflows alone; the sum must still equal the larger term.
	got := Add(-800, -2000)
	if !near(got, -800, 1e-12) {
		t.Errorf("Add(-800,-2000) = %v, want -800", got)
	}
}

func TestSub(t *testing.T) {
	got, ok := Sub(math.Log(8), math.Log(5))
	if !ok || !near(got, math.Log(3), tol) {
		t.Errorf("Sub(log 8, log 5) = %v ok=%v, want log 3", got, ok)
	}
	if got, ok := Sub(math.Log(2), math.Log(2)); !ok || !IsZero(got) {
		t.Errorf("Sub(equal) = %v ok=%v, want -Inf true", got, ok)
	}
	if _, ok := Sub(math.Log(2), math.Log(3)); ok {
		t.Error("Sub with b > a should report not ok")
	}
}

func TestSubInverseOfAdd(t *testing.T) {
	f := func(a, gap float64) bool {
		// Keep the two terms within ~15 nats of each other: when the
		// subtrahend is hundreds of orders of magnitude smaller it is
		// legitimately absorbed by floating point and cannot be recovered.
		a = math.Mod(a, 300)
		b := a + math.Mod(gap, 15)
		s := Add(a, b)
		back, ok := Sub(s, b)
		return ok && near(back, a, 1e-6)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSumKnown(t *testing.T) {
	xs := []float64{math.Log(1), math.Log(2), math.Log(3), math.Log(4)}
	if got := Sum(xs); !near(got, math.Log(10), tol) {
		t.Errorf("Sum = %v, want log 10", got)
	}
	if got := Sum(nil); !IsZero(got) {
		t.Errorf("Sum(nil) = %v, want -Inf", got)
	}
	if got := Sum([]float64{NegInf, NegInf}); !IsZero(got) {
		t.Errorf("Sum(all -Inf) = %v, want -Inf", got)
	}
}

func TestSumExtremeScale(t *testing.T) {
	// All terms individually underflow exp(); sum must still be finite.
	xs := []float64{-1e4, -1e4, -1e4, -1e4}
	want := -1e4 + math.Log(4)
	if got := Sum(xs); !near(got, want, tol) {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestSumMatchesPairwiseAdd(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = math.Mod(v, 500)
		}
		acc := NegInf
		for _, x := range xs {
			acc = Add(acc, x)
		}
		return near(Sum(xs), acc, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	xs := []float64{math.Log(2), math.Log(4)}
	if got := Mean(xs); !near(got, math.Log(3), tol) {
		t.Errorf("Mean = %v, want log 3", got)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{math.Log(1), math.Log(3)}
	shift := Normalize(xs)
	if !near(shift, math.Log(4), tol) {
		t.Errorf("shift = %v, want log 4", shift)
	}
	if got := Sum(xs); !near(got, 0, tol) {
		t.Errorf("normalized Sum = %v, want 0", got)
	}
	if !near(math.Exp(xs[0]), 0.25, tol) || !near(math.Exp(xs[1]), 0.75, tol) {
		t.Errorf("normalized probs = %v %v, want 0.25 0.75", math.Exp(xs[0]), math.Exp(xs[1]))
	}
}

func TestNormalizeAllZero(t *testing.T) {
	xs := []float64{NegInf, NegInf}
	if shift := Normalize(xs); !IsZero(shift) {
		t.Errorf("shift = %v, want -Inf", shift)
	}
}

func TestProbs(t *testing.T) {
	logw := []float64{math.Log(1), math.Log(1), math.Log(2)}
	p := Probs(nil, logw)
	want := []float64{0.25, 0.25, 0.5}
	for i := range want {
		if !near(p[i], want[i], tol) {
			t.Errorf("Probs[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestProbsSumToOne(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logw := make([]float64, len(raw))
		anyFinite := false
		for i, v := range raw {
			logw[i] = math.Mod(v, 600)
			anyFinite = true
		}
		if !anyFinite {
			return true
		}
		p := Probs(nil, logw)
		var s float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			s += v
		}
		return near(s, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbsExtremeWeights(t *testing.T) {
	// One weight dominates by hundreds of orders of magnitude.
	logw := []float64{-5000, -4000, -4000.0001}
	p := Probs(nil, logw)
	if p[0] != 0 {
		t.Errorf("p[0] = %v, want exactly 0 after underflow", p[0])
	}
	if !near(p[1]+p[2], 1, 1e-12) {
		t.Errorf("p1+p2 = %v, want 1", p[1]+p[2])
	}
	if p[1] <= p[2] {
		t.Errorf("want p[1] > p[2], got %v <= %v", p[1], p[2])
	}
}

func TestMax(t *testing.T) {
	if got := Max([]float64{-3, -1, -2}); got != -1 {
		t.Errorf("Max = %v, want -1", got)
	}
	if got := Max(nil); !IsZero(got) {
		t.Errorf("Max(nil) = %v, want -Inf", got)
	}
}
