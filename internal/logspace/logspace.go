// Package logspace provides arithmetic on values stored as natural
// logarithms.
//
// The sampler computes products and sums of probabilities that underflow
// IEEE-754 doubles (site likelihoods over hundreds of base pairs, coalescent
// priors over dozens of intervals). Following §5.3 of the paper, every such
// value is stored as log(x) and combined with the identities
//
//	log(x*y) = log(x) + log(y)
//	log(x+y) = max + log(exp(a-max) + exp(b-max))
//
// where the max-shift keeps at least one exponent at exactly zero, so the
// sum can never vanish entirely (paper Eq. 32).
package logspace

import "math"

// NegInf is the log-space representation of zero probability.
var NegInf = math.Inf(-1)

// IsZero reports whether the log-space value represents probability zero.
func IsZero(x float64) bool { return math.IsInf(x, -1) }

// Add returns log(exp(a) + exp(b)) without intermediate underflow.
// Either argument may be NegInf (log of zero).
func Add(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if IsZero(a) {
		return NegInf
	}
	// a >= b, so exp(b-a) <= 1 and cannot overflow. Log1p keeps precision
	// when the smaller term is negligible.
	return a + math.Log1p(math.Exp(b-a))
}

// Sub returns log(exp(a) - exp(b)). It requires a >= b; when a == b the
// result is NegInf (log of zero). The ok result is false if b > a, in which
// case the difference is negative and has no log-space representation.
func Sub(a, b float64) (res float64, ok bool) {
	if b > a {
		return math.NaN(), false
	}
	if IsZero(a) || a == b {
		return NegInf, true
	}
	d := b - a // <= 0
	// log(exp(a) - exp(b)) = a + log(1 - exp(b-a))
	return a + math.Log1p(-math.Exp(d)), true
}

// Sum returns log(sum_i exp(xs[i])) using a single max-normalization pass,
// the same normalize-then-reduce scheme the posterior likelihood kernel
// uses (paper §5.2.3). Sum of an empty slice is NegInf.
func Sum(xs []float64) float64 {
	if len(xs) == 0 {
		return NegInf
	}
	m := Max(xs)
	if IsZero(m) {
		return NegInf
	}
	if math.IsInf(m, 1) {
		return m
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// Max returns the largest element of xs, or NegInf for an empty slice.
func Max(xs []float64) float64 {
	m := NegInf
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Mean returns log(mean_i exp(xs[i])), the log-space arithmetic mean used
// by the relative likelihood estimator (paper Eq. 26).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return NegInf
	}
	return Sum(xs) - math.Log(float64(len(xs)))
}

// Normalize rewrites xs in place so that logsumexp(xs) == 0, i.e. the
// exponentials form a probability distribution, and returns the shift
// (the original log-normalizer). If every element is NegInf the slice is
// left unchanged and the shift is NegInf.
func Normalize(xs []float64) float64 {
	z := Sum(xs)
	if IsZero(z) {
		return NegInf
	}
	for i := range xs {
		xs[i] -= z
	}
	return z
}

// Probs converts log-weights into normalized linear-space probabilities,
// writing into dst (which must have the same length) and returning it.
// If dst is nil a new slice is allocated. A slice of all-NegInf weights
// yields all zeros.
func Probs(dst, logw []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(logw))
	}
	z := Sum(logw)
	if IsZero(z) {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i, w := range logw {
		dst[i] = math.Exp(w - z)
	}
	return dst
}
