// Package gtree implements the genealogical tree substrate of the sampler:
// a rooted, strictly binary tree whose tips are present-day sequences (age
// zero) and whose interior nodes are coalescent events at strictly
// increasing ages into the past (paper §2.4).
//
// Nodes live in a fixed index-addressed arena: tips occupy [0, NTips) and
// interior nodes [NTips, 2*NTips-1). The proposal kernel rewrites the two
// interior slots of a resimulated neighbourhood in place, so node indices
// are stable identities across proposals — the property §4.3 needs for
// every member of a proposal set to reference the same neighbourhood.
package gtree

import (
	"fmt"
	"math"
	"sort"
)

// Nil marks an absent parent or child link.
const Nil = -1

// Node is one vertex of a genealogy.
type Node struct {
	Parent int    // Nil for the root
	Child  [2]int // Nil,Nil for tips
	Age    float64
	Name   string // tip label; empty for interior nodes
}

// IsTip reports whether the node is a leaf.
func (n *Node) IsTip() bool { return n.Child[0] == Nil }

// Tree is a genealogy over a fixed set of tips.
type Tree struct {
	Nodes []Node
	Root  int
	nTips int
}

// New returns a tree arena for nTips tips with all links unset (Nil).
// Builders must fill in links and ages; the zero arena does not Validate.
func New(nTips int) *Tree {
	if nTips < 2 {
		panic(fmt.Sprintf("gtree: need at least 2 tips, got %d", nTips))
	}
	t := &Tree{Nodes: make([]Node, 2*nTips-1), Root: Nil, nTips: nTips}
	for i := range t.Nodes {
		t.Nodes[i] = Node{Parent: Nil, Child: [2]int{Nil, Nil}}
	}
	return t
}

// NTips returns the number of tips.
func (t *Tree) NTips() int { return t.nTips }

// NNodes returns the total number of nodes, 2*NTips-1.
func (t *Tree) NNodes() int { return len(t.Nodes) }

// NInterior returns the number of interior (coalescent) nodes, NTips-1.
func (t *Tree) NInterior() int { return t.nTips - 1 }

// IsTip reports whether index i addresses a tip.
func (t *Tree) IsTip(i int) bool { return i < t.nTips }

// InteriorIndex maps k in [0, NInterior) to the k-th interior node index.
func (t *Tree) InteriorIndex(k int) int { return t.nTips + k }

// Sibling returns the other child of i's parent, or Nil if i is the root.
func (t *Tree) Sibling(i int) int {
	p := t.Nodes[i].Parent
	if p == Nil {
		return Nil
	}
	if t.Nodes[p].Child[0] == i {
		return t.Nodes[p].Child[1]
	}
	return t.Nodes[p].Child[0]
}

// BranchLength returns the length of the branch from i up to its parent.
// The root has no branch; asking for it panics.
func (t *Tree) BranchLength(i int) float64 {
	p := t.Nodes[i].Parent
	if p == Nil {
		panic("gtree: BranchLength of root")
	}
	return t.Nodes[p].Age - t.Nodes[i].Age
}

// Clone returns a deep copy sharing no state with t.
func (t *Tree) Clone() *Tree {
	c := &Tree{Nodes: make([]Node, len(t.Nodes)), Root: t.Root, nTips: t.nTips}
	copy(c.Nodes, t.Nodes)
	return c
}

// CopyFrom overwrites t's contents with src's without allocating; both
// trees must have the same tip count.
func (t *Tree) CopyFrom(src *Tree) {
	if t.nTips != src.nTips {
		panic("gtree: CopyFrom tip count mismatch")
	}
	copy(t.Nodes, src.Nodes)
	t.Root = src.Root
}

// PostOrder calls fn for every node index in post-order (children before
// parents), starting from the root. The traversal is iterative and
// deterministic: child 0 before child 1.
func (t *Tree) PostOrder(fn func(i int)) {
	type frame struct {
		node    int
		visited bool
	}
	stack := make([]frame, 0, len(t.Nodes))
	stack = append(stack, frame{t.Root, false})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.visited || t.Nodes[f.node].IsTip() {
			fn(f.node)
			continue
		}
		stack = append(stack, frame{f.node, true})
		stack = append(stack, frame{t.Nodes[f.node].Child[1], false})
		stack = append(stack, frame{t.Nodes[f.node].Child[0], false})
	}
}

// CoalescentAges returns the interior node ages sorted ascending: the
// times of the n-1 coalescent events, most recent first.
func (t *Tree) CoalescentAges() []float64 {
	return t.CoalescentAgesInto(make([]float64, 0, t.NInterior()))
}

// CoalescentAgesInto fills dst with the sorted interior node ages without
// allocating (given cap(dst) >= NInterior) and returns it. The sampler hot
// loop reuses per-slot buffers through this.
func (t *Tree) CoalescentAgesInto(dst []float64) []float64 {
	dst = dst[:0]
	for i := t.nTips; i < len(t.Nodes); i++ {
		dst = append(dst, t.Nodes[i].Age)
	}
	sort.Float64s(dst)
	return dst
}

// IntervalDurations returns the coalescent interval lengths t_i of paper
// Eq. 18: element i is the duration during which n-i lineages existed,
// from the (i)th to the (i+1)th coalescent event (element 0 spans from the
// present to the first coalescence).
func (t *Tree) IntervalDurations() []float64 {
	ages := t.CoalescentAges()
	out := make([]float64, len(ages))
	prev := 0.0
	for i, a := range ages {
		out[i] = a - prev
		prev = a
	}
	return out
}

// SumKKT returns the sufficient statistic S = sum_k k(k-1)*t_k over the
// coalescent intervals, which together with the tip count fully determines
// the prior ratio P(G|theta)/P(G|theta0) used in the relative likelihood
// (paper Eq. 25): samples are "reduced to an array of time-intervals"
// (§5.1.3) and this is the only functional of those intervals needed.
func (t *Tree) SumKKT() float64 {
	ages := t.CoalescentAges()
	s := 0.0
	prev := 0.0
	k := t.nTips
	for _, a := range ages {
		s += float64(k*(k-1)) * (a - prev)
		prev = a
		k--
	}
	return s
}

// LineagesAt returns the number of branches crossing time x, where a
// branch [age(i), age(parent(i))) is half-open. At x=0 this is the tip
// count; above the root age it is zero... except the root itself has no
// branch, so the count above the last coalescence is 1 (the root lineage
// is conventionally counted up to infinity by Kingman's construction);
// callers wanting the fixed-branch count should use the paper's
// convention, which this follows: the root contributes no branch.
func (t *Tree) LineagesAt(x float64) int {
	count := 0
	for i := range t.Nodes {
		if i == t.Root {
			continue
		}
		p := t.Nodes[i].Parent
		if t.Nodes[i].Age <= x && x < t.Nodes[p].Age {
			count++
		}
	}
	return count
}

// Height returns the age of the root, the time to the most recent common
// ancestor.
func (t *Tree) Height() float64 { return t.Nodes[t.Root].Age }

// Validate checks every structural invariant of a genealogy: binary shape,
// consistent parent/child links, a single root, tips at age zero with
// names, strictly increasing ages root-ward, and full connectivity.
func (t *Tree) Validate() error {
	n := t.nTips
	if len(t.Nodes) != 2*n-1 {
		return fmt.Errorf("gtree: %d nodes for %d tips, want %d", len(t.Nodes), n, 2*n-1)
	}
	if t.Root < 0 || t.Root >= len(t.Nodes) {
		return fmt.Errorf("gtree: root index %d out of range", t.Root)
	}
	if t.IsTip(t.Root) {
		return fmt.Errorf("gtree: root %d is a tip", t.Root)
	}
	if t.Nodes[t.Root].Parent != Nil {
		return fmt.Errorf("gtree: root %d has parent %d", t.Root, t.Nodes[t.Root].Parent)
	}
	childRefs := make([]int, len(t.Nodes))
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if t.IsTip(i) {
			if nd.Child[0] != Nil || nd.Child[1] != Nil {
				return fmt.Errorf("gtree: tip %d has children", i)
			}
			if nd.Age != 0 {
				return fmt.Errorf("gtree: tip %d has age %v, want 0", i, nd.Age)
			}
			if nd.Name == "" {
				return fmt.Errorf("gtree: tip %d has no name", i)
			}
		} else {
			c0, c1 := nd.Child[0], nd.Child[1]
			if c0 == Nil || c1 == Nil {
				return fmt.Errorf("gtree: interior node %d missing a child", i)
			}
			if c0 == c1 {
				return fmt.Errorf("gtree: interior node %d has duplicate child %d", i, c0)
			}
			for _, c := range nd.Child {
				if c < 0 || c >= len(t.Nodes) {
					return fmt.Errorf("gtree: node %d child %d out of range", i, c)
				}
				if t.Nodes[c].Parent != i {
					return fmt.Errorf("gtree: node %d's child %d has parent %d", i, c, t.Nodes[c].Parent)
				}
				if !(t.Nodes[c].Age < nd.Age) {
					return fmt.Errorf("gtree: node %d (age %v) not older than child %d (age %v)",
						i, nd.Age, c, t.Nodes[c].Age)
				}
				childRefs[c]++
			}
			if math.IsNaN(nd.Age) || math.IsInf(nd.Age, 0) {
				return fmt.Errorf("gtree: node %d has non-finite age %v", i, nd.Age)
			}
		}
	}
	for i, refs := range childRefs {
		if i == t.Root {
			if refs != 0 {
				return fmt.Errorf("gtree: root %d referenced as child %d times", i, refs)
			}
			continue
		}
		if refs != 1 {
			return fmt.Errorf("gtree: node %d referenced as child %d times, want 1", i, refs)
		}
	}
	// Connectivity: a tree with 2n-1 nodes, one root and every other node
	// referenced exactly once as a child is connected iff the walk from
	// the root reaches every node.
	seen := 0
	t.PostOrder(func(int) { seen++ })
	if seen != len(t.Nodes) {
		return fmt.Errorf("gtree: only %d of %d nodes reachable from root", seen, len(t.Nodes))
	}
	return nil
}

// TipNames returns the tip labels in index order.
func (t *Tree) TipNames() []string {
	names := make([]string, t.nTips)
	for i := 0; i < t.nTips; i++ {
		names[i] = t.Nodes[i].Name
	}
	return names
}

// Scale multiplies every node age by f, rescaling all branch lengths.
func (t *Tree) Scale(f float64) {
	if f <= 0 {
		panic("gtree: Scale with non-positive factor")
	}
	for i := range t.Nodes {
		t.Nodes[i].Age *= f
	}
}
