package gtree

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mpcgs/internal/newick"
	"mpcgs/internal/rng"
)

// fourTipTree builds the hand-checked genealogy
//
//	((a:1,b:1):2,(c:2,d:2):1);  ages: n4=1, n5=2, n6(root)=3
func fourTipTree(t *testing.T) *Tree {
	t.Helper()
	tr := New(4)
	names := []string{"a", "b", "c", "d"}
	for i, n := range names {
		tr.Nodes[i].Name = n
	}
	link := func(p int, age float64, c0, c1 int) {
		tr.Nodes[p].Age = age
		tr.Nodes[p].Child = [2]int{c0, c1}
		tr.Nodes[c0].Parent = p
		tr.Nodes[c1].Parent = p
	}
	link(4, 1, 0, 1)
	link(5, 2, 2, 3)
	link(6, 3, 4, 5)
	tr.Root = 6
	if err := tr.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return tr
}

func TestValidateAcceptsFixture(t *testing.T) { fourTipTree(t) }

func TestValidateRejections(t *testing.T) {
	breakers := map[string]func(*Tree){
		"root is tip":        func(tr *Tree) { tr.Root = 0 },
		"root has parent":    func(tr *Tree) { tr.Nodes[6].Parent = 4 },
		"tip with children":  func(tr *Tree) { tr.Nodes[0].Child = [2]int{1, 2} },
		"tip nonzero age":    func(tr *Tree) { tr.Nodes[0].Age = 0.5 },
		"tip without name":   func(tr *Tree) { tr.Nodes[1].Name = "" },
		"missing child":      func(tr *Tree) { tr.Nodes[4].Child[1] = Nil },
		"duplicate child":    func(tr *Tree) { tr.Nodes[4].Child = [2]int{0, 0} },
		"bad back pointer":   func(tr *Tree) { tr.Nodes[0].Parent = 5 },
		"age inversion":      func(tr *Tree) { tr.Nodes[4].Age = 5 },
		"equal ages":         func(tr *Tree) { tr.Nodes[4].Age = 3; tr.Nodes[5].Age = 3 },
		"nan age":            func(tr *Tree) { tr.Nodes[6].Age = math.NaN() },
		"child out of range": func(tr *Tree) { tr.Nodes[4].Child[0] = 99 },
	}
	for label, breaker := range breakers {
		tr := fourTipTree(t)
		breaker(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken tree", label)
		}
	}
}

func TestPostOrderVisitsChildrenFirst(t *testing.T) {
	tr := fourTipTree(t)
	pos := map[int]int{}
	order := 0
	tr.PostOrder(func(i int) {
		pos[i] = order
		order++
	})
	if order != 7 {
		t.Fatalf("visited %d nodes, want 7", order)
	}
	for i := 4; i <= 6; i++ {
		for _, c := range tr.Nodes[i].Child {
			if pos[c] >= pos[i] {
				t.Errorf("child %d visited at %d, after parent %d at %d", c, pos[c], i, pos[i])
			}
		}
	}
}

func TestCoalescentAges(t *testing.T) {
	tr := fourTipTree(t)
	got := tr.CoalescentAges()
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ages[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIntervalDurations(t *testing.T) {
	tr := fourTipTree(t)
	got := tr.IntervalDurations()
	want := []float64{1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("durations[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSumKKT(t *testing.T) {
	tr := fourTipTree(t)
	// k=4 during [0,1): 12; k=3 during [1,2): 6; k=2 during [2,3): 2.
	if got, want := tr.SumKKT(), 12.0+6+2; got != want {
		t.Errorf("SumKKT = %v, want %v", got, want)
	}
}

func TestSumKKTMatchesLineageIntegral(t *testing.T) {
	// Property: S equals the integral of k(t)(k(t)-1) dt computed from
	// LineagesAt over a fine partition of the tree height.
	src := rng.NewMT19937(77)
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(src, 8)
		names := make([]string, n)
		for i := range names {
			names[i] = "t" + string(rune('a'+i))
		}
		tr, err := RandomCoalescent(names, 1.5, src)
		if err != nil {
			t.Fatal(err)
		}
		ages := tr.CoalescentAges()
		integral := 0.0
		prev := 0.0
		for _, a := range ages {
			mid := (prev + a) / 2
			k := tr.LineagesAt(mid)
			integral += float64(k*(k-1)) * (a - prev)
			prev = a
		}
		if math.Abs(integral-tr.SumKKT()) > 1e-9*math.Max(1, tr.SumKKT()) {
			t.Fatalf("trial %d: integral %v != SumKKT %v", trial, integral, tr.SumKKT())
		}
	}
}

func TestLineagesAt(t *testing.T) {
	tr := fourTipTree(t)
	cases := []struct {
		x    float64
		want int
	}{
		{0, 4}, {0.5, 4}, {1, 3}, {1.5, 3}, {2, 2}, {2.5, 2}, {3, 0}, {10, 0},
	}
	for _, c := range cases {
		if got := tr.LineagesAt(c.x); got != c.want {
			t.Errorf("LineagesAt(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestSibling(t *testing.T) {
	tr := fourTipTree(t)
	if s := tr.Sibling(0); s != 1 {
		t.Errorf("Sibling(0) = %d, want 1", s)
	}
	if s := tr.Sibling(4); s != 5 {
		t.Errorf("Sibling(4) = %d, want 5", s)
	}
	if s := tr.Sibling(6); s != Nil {
		t.Errorf("Sibling(root) = %d, want Nil", s)
	}
}

func TestBranchLength(t *testing.T) {
	tr := fourTipTree(t)
	if l := tr.BranchLength(4); l != 2 {
		t.Errorf("BranchLength(4) = %v, want 2", l)
	}
	defer func() {
		if recover() == nil {
			t.Error("BranchLength(root) should panic")
		}
	}()
	tr.BranchLength(6)
}

func TestCloneIndependence(t *testing.T) {
	tr := fourTipTree(t)
	c := tr.Clone()
	c.Nodes[4].Age = 1.7
	if tr.Nodes[4].Age != 1 {
		t.Error("Clone shares state with original")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestCopyFrom(t *testing.T) {
	tr := fourTipTree(t)
	dst := New(4)
	dst.CopyFrom(tr)
	if err := dst.Validate(); err != nil {
		t.Fatalf("CopyFrom result invalid: %v", err)
	}
	dst.Nodes[5].Age = 2.5
	if tr.Nodes[5].Age != 2 {
		t.Error("CopyFrom shares state")
	}
}

func TestScale(t *testing.T) {
	tr := fourTipTree(t)
	tr.Scale(2)
	if tr.Height() != 6 {
		t.Errorf("Height after Scale = %v, want 6", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("scaled tree invalid: %v", err)
	}
}

func TestUPGMAHandComputed(t *testing.T) {
	// Distances: a-b=2, a-c=6, b-c=6 -> join (a,b) at height 1; then
	// cluster ab to c at mean distance 6 -> root at height 3.
	d := [][]float64{
		{0, 2, 6},
		{2, 0, 6},
		{6, 6, 0},
	}
	tr, err := UPGMA(d, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	ages := tr.CoalescentAges()
	if math.Abs(ages[0]-1) > 1e-12 || math.Abs(ages[1]-3) > 1e-12 {
		t.Errorf("ages = %v, want [1 3]", ages)
	}
	// a and b must be siblings.
	if tr.Sibling(0) != 1 {
		t.Errorf("a's sibling = %d, want b(1)", tr.Sibling(0))
	}
}

func TestUPGMAWeightedMerge(t *testing.T) {
	// Four taxa where the size-weighted average matters: after joining
	// (a,b), distance from {a,b} to c is (d(a,c)+d(b,c))/2.
	d := [][]float64{
		{0, 2, 4, 10},
		{2, 0, 6, 10},
		{4, 6, 0, 10},
		{10, 10, 10, 0},
	}
	tr, err := UPGMA(d, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	ages := tr.CoalescentAges()
	// Join (a,b) at 1; {ab}-c mean = (4+6)/2 = 5 -> join at 2.5;
	// {abc}-d mean = 10 -> root at 5.
	want := []float64{1, 2.5, 5}
	for i := range want {
		if math.Abs(ages[i]-want[i]) > 1e-12 {
			t.Errorf("ages[%d] = %v, want %v", i, ages[i], want[i])
		}
	}
}

func TestUPGMAZeroDistances(t *testing.T) {
	// Identical sequences: all-zero distances must still give a valid
	// strictly ordered tree via tie-breaking.
	d := [][]float64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	tr, err := UPGMA(d, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("zero-distance UPGMA invalid: %v", err)
	}
}

func TestUPGMAErrors(t *testing.T) {
	if _, err := UPGMA([][]float64{{0}}, []string{"a"}); err == nil {
		t.Error("single taxon accepted")
	}
	if _, err := UPGMA([][]float64{{0, 1}, {2, 0}}, []string{"a", "b"}); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, err := UPGMA([][]float64{{0, -1}, {-1, 0}}, []string{"a", "b"}); err == nil {
		t.Error("negative distance accepted")
	}
	if _, err := UPGMA([][]float64{{0, 1}, {1, 0}}, []string{"a"}); err == nil {
		t.Error("name count mismatch accepted")
	}
}

func TestRandomCoalescentValid(t *testing.T) {
	src := rng.NewMT19937(5)
	names := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 50; trial++ {
		tr, err := RandomCoalescent(names, 1.0, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRandomCoalescentIntervalMeans(t *testing.T) {
	// E[t_k] = theta / (k(k-1)) per paper Eq. 17.
	src := rng.NewMT19937(6)
	names := []string{"a", "b", "c", "d"}
	theta := 2.0
	const reps = 20000
	sums := make([]float64, 3)
	for r := 0; r < reps; r++ {
		tr, err := RandomCoalescent(names, theta, src)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range tr.IntervalDurations() {
			sums[i] += d
		}
	}
	// Interval i has k = 4-i lineages.
	for i, k := range []int{4, 3, 2} {
		got := sums[i] / reps
		want := theta / float64(k*(k-1))
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("interval %d mean = %v, want %v (±5%%)", i, got, want)
		}
	}
}

func TestRandomCoalescentErrors(t *testing.T) {
	src := rng.NewMT19937(7)
	if _, err := RandomCoalescent([]string{"a"}, 1, src); err == nil {
		t.Error("single tip accepted")
	}
	if _, err := RandomCoalescent([]string{"a", "b"}, 0, src); err == nil {
		t.Error("theta=0 accepted")
	}
	if _, err := RandomCoalescent([]string{"a", "b"}, -1, src); err == nil {
		t.Error("negative theta accepted")
	}
}

func TestNewickRoundTrip(t *testing.T) {
	tr := fourTipTree(t)
	out := tr.String()
	parsed, err := newick.Parse(out)
	if err != nil {
		t.Fatalf("parse %q: %v", out, err)
	}
	back, err := FromNewick(parsed)
	if err != nil {
		t.Fatalf("FromNewick: %v", err)
	}
	if back.NTips() != 4 {
		t.Fatalf("NTips = %d, want 4", back.NTips())
	}
	a1, a2 := tr.CoalescentAges(), back.CoalescentAges()
	for i := range a1 {
		if math.Abs(a1[i]-a2[i]) > 1e-9 {
			t.Errorf("ages[%d]: %v != %v", i, a1[i], a2[i])
		}
	}
	if strings.Join(tr.TipNames(), ",") != strings.Join(back.TipNames(), ",") {
		t.Errorf("tip names changed: %v vs %v", tr.TipNames(), back.TipNames())
	}
}

func TestNewickRoundTripRandom(t *testing.T) {
	src := rng.NewMT19937(8)
	f := func(sizeRaw uint8) bool {
		n := 2 + int(sizeRaw)%10
		names := make([]string, n)
		for i := range names {
			names[i] = "s" + string(rune('A'+i))
		}
		tr, err := RandomCoalescent(names, 1.0, src)
		if err != nil {
			return false
		}
		parsed, err := newick.Parse(tr.String())
		if err != nil {
			return false
		}
		back, err := FromNewick(parsed)
		if err != nil {
			return false
		}
		if math.Abs(back.Height()-tr.Height()) > 1e-9*tr.Height() {
			return false
		}
		return math.Abs(back.SumKKT()-tr.SumKKT()) < 1e-9*math.Max(1, tr.SumKKT())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFromNewickRejectsNonUltrametric(t *testing.T) {
	parsed, err := newick.Parse("(a:1,b:2);")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNewick(parsed); err == nil {
		t.Error("non-ultrametric tree accepted")
	}
}

func TestFromNewickRejectsMultifurcation(t *testing.T) {
	parsed, err := newick.Parse("(a:1,b:1,c:1);")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNewick(parsed); err == nil {
		t.Error("multifurcating tree accepted")
	}
}

func TestFromNewickRejectsMissingLengths(t *testing.T) {
	parsed, err := newick.Parse("((a,b),c);")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNewick(parsed); err == nil {
		t.Error("tree without branch lengths accepted")
	}
}

func TestInteriorIndex(t *testing.T) {
	tr := fourTipTree(t)
	if tr.NInterior() != 3 {
		t.Fatalf("NInterior = %d, want 3", tr.NInterior())
	}
	for k := 0; k < tr.NInterior(); k++ {
		i := tr.InteriorIndex(k)
		if tr.IsTip(i) {
			t.Errorf("InteriorIndex(%d) = %d is a tip", k, i)
		}
	}
}

func TestNewPanicsOnTinyTree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(1) should panic")
		}
	}()
	New(1)
}
