package gtree

import (
	"fmt"

	"mpcgs/internal/rng"
)

// minAgeSep is the smallest allowed age gap between a parent and child,
// used to break exact ties (identical sequences produce zero UPGMA
// distances) so that ages remain strictly increasing root-ward.
const minAgeSep = 1e-12

// UPGMA builds the sampler's starting genealogy from a pairwise distance
// matrix by unweighted pair-group clustering (paper §5.1.3): repeatedly
// join the pair of clusters with the smallest mean pairwise distance,
// placing the join at half that distance. The result is ultrametric; tip i
// takes names[i]. Distances must be symmetric and non-negative.
func UPGMA(dist [][]float64, names []string) (*Tree, error) {
	n := len(dist)
	if n < 2 {
		return nil, fmt.Errorf("gtree: UPGMA needs at least 2 taxa, got %d", n)
	}
	if len(names) != n {
		return nil, fmt.Errorf("gtree: UPGMA got %d names for %d taxa", len(names), n)
	}
	for i := range dist {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("gtree: distance row %d has %d entries, want %d", i, len(dist[i]), n)
		}
		for j := range dist[i] {
			if dist[i][j] < 0 {
				return nil, fmt.Errorf("gtree: negative distance d[%d][%d]=%v", i, j, dist[i][j])
			}
			if dist[i][j] != dist[j][i] {
				return nil, fmt.Errorf("gtree: asymmetric distance d[%d][%d]=%v, d[%d][%d]=%v",
					i, j, dist[i][j], j, i, dist[j][i])
			}
		}
	}

	t := New(n)
	for i := 0; i < n; i++ {
		t.Nodes[i].Name = names[i]
	}

	type cluster struct {
		node int
		size int
	}
	clusters := make([]cluster, n)
	d := make([][]float64, n)
	for i := 0; i < n; i++ {
		clusters[i] = cluster{node: i, size: 1}
		d[i] = make([]float64, n)
		copy(d[i], dist[i])
	}

	nextNode := n
	for len(clusters) > 1 {
		// Find the closest pair (ties broken by index for determinism).
		bi, bj := 0, 1
		best := d[0][1]
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if d[i][j] < best {
					best, bi, bj = d[i][j], i, j
				}
			}
		}
		a, b := clusters[bi], clusters[bj]
		age := best / 2
		// Enforce strictly increasing ages in the face of ties or zero
		// distances.
		for _, c := range []int{a.node, b.node} {
			if age <= t.Nodes[c].Age {
				age = t.Nodes[c].Age + minAgeSep
			}
		}
		p := nextNode
		nextNode++
		t.Nodes[p].Child = [2]int{a.node, b.node}
		t.Nodes[p].Age = age
		t.Nodes[a.node].Parent = p
		t.Nodes[b.node].Parent = p

		// Merge bj into bi with size-weighted average distances (UPGMA).
		merged := cluster{node: p, size: a.size + b.size}
		for k := 0; k < len(clusters); k++ {
			if k == bi || k == bj {
				continue
			}
			avg := (d[bi][k]*float64(a.size) + d[bj][k]*float64(b.size)) / float64(a.size+b.size)
			d[bi][k] = avg
			d[k][bi] = avg
		}
		clusters[bi] = merged
		// Remove row/column bj.
		clusters = append(clusters[:bj], clusters[bj+1:]...)
		d = append(d[:bj], d[bj+1:]...)
		for i := range d {
			d[i] = append(d[i][:bj], d[i][bj+1:]...)
		}
	}
	t.Root = clusters[0].node
	return t, t.Validate()
}

// RandomCoalescent simulates a genealogy from Kingman's coalescent with
// parameter theta: with k lineages the waiting time to the next
// coalescence is exponential with rate k(k-1)/theta (paper Eq. 17) and the
// coalescing pair is uniform. Tip i takes names[i]. This is both the ms
// substrate's generator and the fallback starting tree when all sequences
// are identical.
func RandomCoalescent(names []string, theta float64, src rng.Source) (*Tree, error) {
	n := len(names)
	if n < 2 {
		return nil, fmt.Errorf("gtree: RandomCoalescent needs at least 2 tips, got %d", n)
	}
	if theta <= 0 {
		return nil, fmt.Errorf("gtree: RandomCoalescent needs theta > 0, got %v", theta)
	}
	t := New(n)
	active := make([]int, n)
	for i := 0; i < n; i++ {
		t.Nodes[i].Name = names[i]
		active[i] = i
	}
	age := 0.0
	next := n
	for k := n; k >= 2; k-- {
		rate := float64(k*(k-1)) / theta
		age += rng.Exp(src, rate)
		i, j := rng.UniformPair(src, k)
		p := next
		next++
		a, b := active[i], active[j]
		t.Nodes[p].Child = [2]int{a, b}
		t.Nodes[p].Age = age
		t.Nodes[a].Parent = p
		t.Nodes[b].Parent = p
		// Replace lineage i with the parent, remove lineage j.
		active[i] = p
		active[j] = active[k-1]
		active = active[:k-1]
	}
	t.Root = next - 1
	return t, t.Validate()
}
