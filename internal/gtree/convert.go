package gtree

import (
	"fmt"
	"math"

	"mpcgs/internal/newick"
)

// FromNewick converts a parsed Newick tree into a genealogy. The input
// must be strictly binary with named leaves and branch lengths, and
// ultrametric (all tips equidistant from the root) within a relative
// tolerance, since the coalescent model assumes contemporaneous sampling.
// Tips are indexed in left-to-right order.
func FromNewick(root *newick.Node) (*Tree, error) {
	leaves := root.Leaves(nil)
	n := len(leaves)
	if n < 2 {
		return nil, fmt.Errorf("gtree: newick tree has %d leaves, need at least 2", n)
	}
	if err := checkBinary(root); err != nil {
		return nil, err
	}

	t := New(n)
	depth := map[*newick.Node]float64{}
	var maxDepth float64
	var walkDepth func(nd *newick.Node, d float64)
	walkDepth = func(nd *newick.Node, d float64) {
		depth[nd] = d
		if nd.IsLeaf() && d > maxDepth {
			maxDepth = d
		}
		for _, c := range nd.Children {
			if !c.HasLength {
				return
			}
			walkDepth(c, d+c.Length)
		}
	}
	walkDepth(root, 0)

	// Verify branch lengths exist everywhere (walkDepth stops early
	// without them, leaving descendants unvisited).
	var missing bool
	var checkVisited func(nd *newick.Node)
	checkVisited = func(nd *newick.Node) {
		if _, ok := depth[nd]; !ok {
			missing = true
		}
		for _, c := range nd.Children {
			checkVisited(c)
		}
	}
	checkVisited(root)
	if missing {
		return nil, fmt.Errorf("gtree: newick tree is missing branch lengths")
	}

	tol := 1e-6 * math.Max(maxDepth, 1e-30)
	for _, l := range leaves {
		if math.Abs(depth[l]-maxDepth) > tol {
			return nil, fmt.Errorf("gtree: tree is not ultrametric: leaf %q at depth %v, others at %v",
				l.Name, depth[l], maxDepth)
		}
	}

	tipIdx := 0
	interiorIdx := n
	var build func(nd *newick.Node) (int, error)
	build = func(nd *newick.Node) (int, error) {
		if nd.IsLeaf() {
			i := tipIdx
			tipIdx++
			t.Nodes[i].Name = nd.Name
			t.Nodes[i].Age = 0 // snap exactly to the present
			return i, nil
		}
		c0, err := build(nd.Children[0])
		if err != nil {
			return 0, err
		}
		c1, err := build(nd.Children[1])
		if err != nil {
			return 0, err
		}
		i := interiorIdx
		interiorIdx++
		age := maxDepth - depth[nd]
		// Guard against rounding collapsing a parent onto a child.
		for _, c := range []int{c0, c1} {
			if age <= t.Nodes[c].Age {
				age = t.Nodes[c].Age + minAgeSep
			}
		}
		t.Nodes[i].Age = age
		t.Nodes[i].Child = [2]int{c0, c1}
		t.Nodes[c0].Parent = i
		t.Nodes[c1].Parent = i
		return i, nil
	}
	r, err := build(root)
	if err != nil {
		return nil, err
	}
	t.Root = r
	return t, t.Validate()
}

func checkBinary(nd *newick.Node) error {
	if !nd.IsLeaf() && len(nd.Children) != 2 {
		return fmt.Errorf("gtree: node %q has %d children, need exactly 2", nd.Name, len(nd.Children))
	}
	for _, c := range nd.Children {
		if err := checkBinary(c); err != nil {
			return err
		}
	}
	return nil
}

// ToNewick renders the genealogy as a Newick tree with branch lengths
// equal to age differences. The root carries no branch length.
func (t *Tree) ToNewick() *newick.Node {
	var conv func(i int) *newick.Node
	conv = func(i int) *newick.Node {
		nd := &newick.Node{Name: t.Nodes[i].Name}
		if !t.IsTip(i) {
			nd.Name = ""
			nd.Children = []*newick.Node{
				conv(t.Nodes[i].Child[0]),
				conv(t.Nodes[i].Child[1]),
			}
		}
		if p := t.Nodes[i].Parent; p != Nil {
			nd.Length = t.Nodes[p].Age - t.Nodes[i].Age
			nd.HasLength = true
		}
		return nd
	}
	return conv(t.Root)
}

// String renders the genealogy in Newick form for debugging.
func (t *Tree) String() string { return t.ToNewick().String() }
