package experiments

import (
	"math"

	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/stats"
)

// TemperingPoint is one row of the adaptive-tempering comparison: a
// heated (MC³) sampling pass on a §6-scale dataset, with the fixed
// geometric ladder or the swap-rate-adaptive one.
type TemperingPoint struct {
	Mode string // "fixed" or "adaptive"
	// Betas is the final β schedule (the adapted ladder, in adaptive
	// mode).
	Betas []float64
	// Rates are the estimation-phase (post-burn-in) per-adjacent-pair
	// swap acceptance rates: the profile of the ladder actually used for
	// the recorded draws. Burn-in attempts are excluded — in adaptive
	// mode the ladder is still moving there, and in both modes the
	// equilibration transient biases the early rates.
	Rates []float64
	// Spread is max−min over the per-pair rates: the flatness criterion
	// the adaptation minimizes (0 = perfectly uniform acceptance).
	Spread float64
	// ColdESS is the effective sample size of the cold chain's
	// post-burn-in log-likelihood trace.
	ColdESS float64
	// Swaps/SwapAttempts aggregate the ladder exchanges.
	Swaps, SwapAttempts int
}

// TemperingComparison runs the adaptive-vs-fixed ladder experiment: the
// same dataset, seed and ladder shape, once with the fixed geometric β
// schedule and once with swap-rate-driven adaptation during burn-in.
// The comparison criteria are the per-pair swap-rate spread (the
// adaptive ladder should be flatter — that is its objective) and the
// cold chain's ESS (flatter ladders ferry states to the cold chain more
// evenly, which should not cost mixing).
//
// The ladder is deliberately stretched (a high MaxTemp for its rung
// count), which makes the geometric schedule's swap profile visibly
// non-uniform — the regime where LAMARC-style runtime adaptation earns
// its keep.
func TemperingComparison(c Common) ([]TemperingPoint, error) {
	nSeq, seqLen := 12, 200
	chains, maxTemp := 6, 512.0
	burnin, samples := 2000, 4000
	if c.Scale == ScalePaper {
		burnin, samples = 5000, 20000
	}
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, c.seed())
	if err != nil {
		return nil, err
	}
	dev := device.New(c.workers())
	defer dev.Close()
	eval, err := buildEvaluator(aln, dev)
	if err != nil {
		return nil, err
	}
	init, err := core.InitialTree(aln, 1.0, c.seed())
	if err != nil {
		return nil, err
	}
	cfg := core.ChainConfig{Theta: 1.0, Burnin: burnin, Samples: samples, Seed: c.seed() + 41}

	var out []TemperingPoint
	for _, mode := range []struct {
		name  string
		adapt bool
	}{{"fixed", false}, {"adaptive", true}} {
		h := core.NewHeated(eval, dev, chains)
		h.MaxTemp = maxTemp
		h.Adapt = mode.adapt
		res, err := h.Run(init, cfg)
		if err != nil {
			return nil, err
		}
		pt := TemperingPoint{
			Mode:         mode.name,
			Betas:        res.Betas,
			Rates:        res.EstPairSwapRates(),
			ColdESS:      stats.EffectiveSampleSize(res.Samples.PostBurninLogLik()),
			Swaps:        res.Swaps,
			SwapAttempts: res.SwapAttempts,
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range pt.Rates {
			if math.IsNaN(r) {
				continue
			}
			lo, hi = math.Min(lo, r), math.Max(hi, r)
		}
		if hi >= lo {
			pt.Spread = hi - lo
		}
		out = append(out, pt)
	}
	return out, nil
}
