package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"mpcgs/internal/ckpt"
	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/sched"
	"mpcgs/internal/seqgen"
)

// AutostopPoint is one row of the ESS-target experiment: the identical
// batch run fixed-length (every pass draws its full Samples quota) and
// target-driven (passes retire once the online ESS reaches the target,
// freeing their drivers for the remaining tenants). One "hard" job in
// each batch carries no target, standing in for the long tenant that
// inherits the freed capacity.
type AutostopPoint struct {
	Jobs        int
	FixedSec    float64 // fixed-length batch wall time
	TargetSec   float64 // target-driven batch wall time
	FixedSteps  int     // total sampler transitions driven, fixed
	TargetSteps int     // total sampler transitions driven, target-driven
	Converged   int     // jobs retired early by the stop rule
	// HardShareFixed/HardShareTarget is the no-target job's busy time as
	// a fraction of the batch wall time. The share rising in the
	// target-driven batch is the reallocation evidence: the drivers the
	// converged jobs released went to the tenant that still needed them.
	HardShareFixed  float64
	HardShareTarget float64
	Speedup         float64 // FixedSec / TargetSec
}

// AutostopThroughput runs the auto-stop experiment: for each job count,
// a batch of estimation jobs is run once without stop targets and once
// with an ESS target on every job but the last, over the same shared
// pool.
func AutostopThroughput(c Common) ([]AutostopPoint, error) {
	jobCounts := []int{4, 8}
	nSeq, seqLen, burnin, samples := 8, 120, 100, 4000
	essTarget := 25.0
	if c.Scale == ScalePaper {
		jobCounts = []int{4, 8, 16}
		burnin, samples = 200, 20000
		essTarget = 100.0
	}
	workers := c.workers()
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	makeJobs := func(n int, target float64) ([]sched.Job, error) {
		jobs := make([]sched.Job, n)
		for i := range jobs {
			aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, c.seed()+uint64(100*i))
			if err != nil {
				return nil, err
			}
			jobs[i] = sched.Job{
				Name:         fmt.Sprintf("job%d", i),
				Alignment:    aln,
				InitialTheta: 1.0,
				Sampler:      "gmh",
				Proposals:    workers,
				Burnin:       burnin,
				Samples:      samples,
				EMIterations: 1,
				Seed:         c.seed() + uint64(1000*i),
				ESSTarget:    target,
			}
		}
		// The last job is the long tenant: no stop target, full quota.
		jobs[n-1].ESSTarget = 0
		return jobs, nil
	}

	runOnce := func(n int, target float64) (wall float64, steps int, converged int, hardShare float64, err error) {
		jobs, err := makeJobs(n, target)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		pool := device.NewPool(workers)
		defer pool.Close()
		start := time.Now()
		results, err := sched.RunBatch(context.Background(), pool, jobs, sched.Options{})
		wall = time.Since(start).Seconds()
		if err != nil {
			return 0, 0, 0, 0, fmt.Errorf("autostop experiment, %d jobs: %w", n, err)
		}
		var hardBusy time.Duration
		for _, r := range results {
			if r.Err != nil {
				return 0, 0, 0, 0, fmt.Errorf("autostop experiment, job %s: %w", r.Name, r.Err)
			}
			steps += r.Steps
			if r.Converged {
				converged++
			}
			if r.Name == jobs[n-1].Name {
				hardBusy = r.Busy
			}
		}
		return wall, steps, converged, hardBusy.Seconds() / wall, nil
	}

	var out []AutostopPoint
	for _, n := range jobCounts {
		fixedSec, fixedSteps, _, hardFixed, err := runOnce(n, 0)
		if err != nil {
			return nil, err
		}
		targetSec, targetSteps, converged, hardTarget, err := runOnce(n, essTarget)
		if err != nil {
			return nil, err
		}
		out = append(out, AutostopPoint{
			Jobs:            n,
			FixedSec:        fixedSec,
			TargetSec:       targetSec,
			FixedSteps:      fixedSteps,
			TargetSteps:     targetSteps,
			Converged:       converged,
			HardShareFixed:  hardFixed,
			HardShareTarget: hardTarget,
			Speedup:         fixedSec / targetSec,
		})
	}
	return out, nil
}

// CheckpointSizePoint is one row of the O(interval) table: the encoded
// snapshot size of the same run at the same step, with the trace held
// inline (the pre-v3 format, O(run)) versus offloaded to the sidecar
// (format v3, O(interval)).
type CheckpointSizePoint struct {
	Samples      int
	InlineBytes  int   // snapshot with the trace serialized into it
	SidecarBytes int   // snapshot carrying only the sidecar reference
	TraceBytes   int64 // sidecar file size (where the draws actually live)
}

// CheckpointSizes measures snapshot size as a function of recorded draw
// count for both recording modes. The inline column grows linearly; the
// sidecar column must not grow at all.
func CheckpointSizes(c Common, dir string) ([]CheckpointSizePoint, error) {
	sampleCounts := []int{500, 2000, 8000}
	if c.Scale == ScalePaper {
		sampleCounts = []int{1000, 10000, 100000}
	}
	dev := device.Serial()
	aln, _, err := seqgen.SimulateData(6, 60, 1.0, c.seed())
	if err != nil {
		return nil, err
	}
	eval, err := buildEvaluator(aln, dev)
	if err != nil {
		return nil, err
	}
	init, err := core.InitialTree(aln, 1.0, c.seed()+1)
	if err != nil {
		return nil, err
	}
	s := core.NewGMH(eval, dev, 3)

	snapshotBytes := func(cfg core.ChainConfig) (int, int64, error) {
		run, err := s.Start(init, cfg)
		if err != nil {
			return 0, 0, err
		}
		for !run.Done() {
			if err := run.Step(); err != nil {
				return 0, 0, err
			}
		}
		snap, err := run.(core.SnapshotStepper).Snapshot()
		if err != nil {
			return 0, 0, err
		}
		data, err := json.Marshal(ckpt.EncodeStep(snap))
		if err != nil {
			return 0, 0, err
		}
		var traceBytes int64
		if snap.TraceRef != nil {
			traceBytes = snap.TraceRef.Offset
		}
		if _, err := run.Finish(); err != nil {
			return 0, 0, err
		}
		return len(data), traceBytes, nil
	}

	var out []CheckpointSizePoint
	for i, n := range sampleCounts {
		cfg := core.ChainConfig{Theta: 1.0, Burnin: 50, Samples: n, Seed: c.seed() + 7}
		inline, _, err := snapshotBytes(cfg)
		if err != nil {
			return nil, fmt.Errorf("checkpoint-size experiment, %d samples inline: %w", n, err)
		}
		cfg.Trace = &core.TraceSpec{Path: fmt.Sprintf("%s/ckptsize%d.trace", dir, i)}
		sidecar, traceBytes, err := snapshotBytes(cfg)
		if err != nil {
			return nil, fmt.Errorf("checkpoint-size experiment, %d samples sidecar: %w", n, err)
		}
		out = append(out, CheckpointSizePoint{
			Samples:      n,
			InlineBytes:  inline,
			SidecarBytes: sidecar,
			TraceBytes:   traceBytes,
		})
	}
	return out, nil
}
