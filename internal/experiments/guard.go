package experiments

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Baselines holds the committed §6 speedups parsed from a generated
// EXPERIMENTS.md: experiment name → swept parameter value → speedup. It
// is the reference the CI speedup-guard compares fresh measurements
// against.
type Baselines map[string]map[int]float64

// guardSections maps a speedup table's title (as printed by paperbench
// and embedded verbatim in EXPERIMENTS.md) to its experiment name.
// The full-scale sequence-length sweep deliberately avoids the phrase
// "speedup vs sequence length" in its title: section matching is by
// substring, and the quick-scale CI guard must never adopt full-scale
// numbers as its floor (or vice versa).
var guardSections = map[string]string{
	"speedup vs number of genealogy samples": "samples",
	"speedup vs number of sequences":         "sequences",
	"speedup vs sequence length":             "seqlen",
	"sequence-length sweep at paper scale":   "seqlen-full",
	"wave rounds vs per-candidate dispatch":  "gmhround",
}

// ParseBaselines extracts the speedup tables from a generated
// EXPERIMENTS.md (or raw paperbench output). A table row is a line of
// the form
//
//	2000       0.135        0.025          5.32       3.69
//
// inside a "=== ... speedup vs ... ===" section: first field the swept
// parameter, fourth field the measured speedup. The surrounding ASCII
// plots never match that shape, so they are skipped without special
// casing.
func ParseBaselines(r io.Reader) (Baselines, error) {
	base := Baselines{}
	section := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "===") {
			section = ""
			for title, name := range guardSections {
				if strings.Contains(line, title) {
					section = name
				}
			}
			continue
		}
		if section == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		param, err := strconv.Atoi(fields[0])
		if err != nil {
			continue
		}
		speedup, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			continue
		}
		if base[section] == nil {
			base[section] = map[int]float64{}
		}
		base[section][param] = speedup
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("no speedup baselines found")
	}
	return base, nil
}

// GuardViolation is one §6 point whose fresh measurement fell below the
// committed floor.
type GuardViolation struct {
	Experiment string
	Param      int
	Measured   float64
	Baseline   float64
	Floor      float64
}

func (v GuardViolation) String() string {
	return fmt.Sprintf("%s @ %d: speedup %.2f below floor %.2f (baseline %.2f)",
		v.Experiment, v.Param, v.Measured, v.Floor, v.Baseline)
}

// CheckSpeedupFloor compares freshly measured speedup points against the
// committed baselines: a point fails when its speedup drops below
// baseline × factor (the factor absorbs runner noise). Points with no
// committed baseline — a new sweep value — are ignored; it is the
// regenerated EXPERIMENTS.md that adopts them. The returned count is the
// number of points actually compared, so a caller can refuse to treat a
// vacuous run (nothing measured, nothing compared) as a pass.
func CheckSpeedupFloor(measured map[string][]SpeedupPoint, base Baselines, factor float64) (checked int, violations []GuardViolation) {
	for _, name := range []string{"samples", "sequences", "seqlen", "seqlen-full", "gmhround"} {
		ref := base[name]
		if ref == nil {
			continue
		}
		for _, p := range measured[name] {
			baseline, ok := ref[p.Param]
			if !ok {
				continue
			}
			checked++
			floor := baseline * factor
			if p.Speedup < floor {
				violations = append(violations, GuardViolation{
					Experiment: name,
					Param:      p.Param,
					Measured:   p.Speedup,
					Baseline:   baseline,
					Floor:      floor,
				})
			}
		}
	}
	return checked, violations
}
