package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"encoding/json"
)

// SnapshotSchema identifies the BENCH_*.json wire format.
const SnapshotSchema = "mpcgs-paperbench/v1"

// BenchSnapshot is one committed paperbench run: the machine-readable
// BENCH_<pr>.json snapshot written by `paperbench -json`, one per PR,
// forming the repository's performance trajectory. Fields mirror what
// the tables print; Speedups is keyed by experiment name.
type BenchSnapshot struct {
	Schema      string                    `json:"schema"`
	GeneratedAt string                    `json:"generated_at"`
	Scale       string                    `json:"scale"`
	Workers     int                       `json:"workers"` // effective device parallelism of the run
	GOMAXPROCS  int                       `json:"gomaxprocs"`
	Seed        uint64                    `json:"seed"` // 0 = default
	Experiments []string                  `json:"experiments"`
	Speedups    map[string][]SpeedupPoint `json:"speedups"`

	// PR and File identify where the snapshot came from; they are
	// derived from the filename by LoadSnapshots, not stored in it.
	PR   int    `json:"-"`
	File string `json:"-"`
}

// Write marshals the snapshot to path (indented, trailing newline).
func (s *BenchSnapshot) Write(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// snapshotName extracts the PR number from a BENCH_<pr>.json basename.
var snapshotName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// ParseSnapshot reads and validates one snapshot file.
func ParseSnapshot(path string) (*BenchSnapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap BenchSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if snap.Schema != SnapshotSchema {
		return nil, fmt.Errorf("%s: schema %q not supported (want %q)", path, snap.Schema, SnapshotSchema)
	}
	snap.File = filepath.Base(path)
	if m := snapshotName.FindStringSubmatch(snap.File); m != nil {
		snap.PR, _ = strconv.Atoi(m[1])
	}
	return &snap, nil
}

// LoadSnapshots reads every BENCH_<pr>.json under dir, in PR order
// (numeric, so BENCH_10 sorts after BENCH_3). No snapshots is not an
// error — the caller decides whether an empty trajectory is fatal.
func LoadSnapshots(dir string) ([]*BenchSnapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []*BenchSnapshot
	for _, e := range entries {
		if e.IsDir() || !snapshotName.MatchString(e.Name()) {
			continue
		}
		snap, err := ParseSnapshot(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		snaps = append(snaps, snap)
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].PR < snaps[j].PR })
	return snaps, nil
}

// FormatTrajectory renders the per-experiment speedup trajectory across
// the loaded snapshots: one table per experiment, swept parameter down,
// one column per PR.
func FormatTrajectory(w io.Writer, snaps []*BenchSnapshot) {
	if len(snaps) == 0 {
		fmt.Fprintln(w, "trajectory: no BENCH_*.json snapshots found")
		return
	}
	// Union of experiment names, sorted for stable output.
	expSet := map[string]bool{}
	for _, s := range snaps {
		for name := range s.Speedups {
			expSet[name] = true
		}
	}
	experiments := make([]string, 0, len(expSet))
	for name := range expSet {
		experiments = append(experiments, name)
	}
	sort.Strings(experiments)

	for _, exp := range experiments {
		fmt.Fprintf(w, "=== trajectory: %s speedup by PR ===\n", exp)
		// Union of swept parameter values.
		paramSet := map[int]bool{}
		for _, s := range snaps {
			for _, p := range s.Speedups[exp] {
				paramSet[p.Param] = true
			}
		}
		params := make([]int, 0, len(paramSet))
		for p := range paramSet {
			params = append(params, p)
		}
		sort.Ints(params)

		fmt.Fprintf(w, "%-10s", "param")
		for _, s := range snaps {
			fmt.Fprintf(w, " %-10s", fmt.Sprintf("PR%d", s.PR))
		}
		fmt.Fprintln(w)
		for _, param := range params {
			fmt.Fprintf(w, "%-10d", param)
			for _, s := range snaps {
				cell := "-"
				for _, p := range s.Speedups[exp] {
					if p.Param == param {
						cell = fmt.Sprintf("%.2f", p.Speedup)
						break
					}
				}
				fmt.Fprintf(w, " %-10s", cell)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}

// TrajectoryViolation is one (experiment, param) point whose fresh
// speedup regressed below the committed floor.
type TrajectoryViolation struct {
	Experiment string
	Param      int
	Fresh      float64
	Committed  float64
	Floor      float64
}

func (v TrajectoryViolation) String() string {
	return fmt.Sprintf("%s param %d: fresh speedup %.2f below floor %.2f (committed %.2f)",
		v.Experiment, v.Param, v.Fresh, v.Floor, v.Committed)
}

// CompareSnapshot checks freshly measured speedups against the latest
// committed snapshot: a point regresses when fresh < committed × factor.
// Only (experiment, param) pairs present on both sides are checked;
// checked reports how many were. The caller must treat checked == 0 as
// a failure — a comparison that compared nothing guards nothing.
func CompareSnapshot(measured map[string][]SpeedupPoint, latest *BenchSnapshot, factor float64) (checked int, violations []TrajectoryViolation) {
	exps := make([]string, 0, len(measured))
	for name := range measured {
		exps = append(exps, name)
	}
	sort.Strings(exps)
	for _, exp := range exps {
		committed := latest.Speedups[exp]
		if len(committed) == 0 {
			continue
		}
		byParam := make(map[int]float64, len(committed))
		for _, p := range committed {
			byParam[p.Param] = p.Speedup
		}
		for _, p := range measured[exp] {
			base, ok := byParam[p.Param]
			if !ok {
				continue
			}
			checked++
			if floor := base * factor; p.Speedup < floor {
				violations = append(violations, TrajectoryViolation{
					Experiment: exp,
					Param:      p.Param,
					Fresh:      p.Speedup,
					Committed:  base,
					Floor:      floor,
				})
			}
		}
	}
	return checked, violations
}
