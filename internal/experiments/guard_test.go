package experiments

import (
	"strings"
	"testing"
)

// guardDoc is a trimmed EXPERIMENTS.md body: two speedup tables with
// their ASCII plots, whose axis labels deliberately look row-like.
const guardDoc = `# EXPERIMENTS

Regenerate with:

    go run ./cmd/paperbench -experiment samples,seqlen -scale quick -md EXPERIMENTS.md

` + "```text" + `
=== Table 2 / Figure 14: speedup vs number of genealogy samples ===
samples    serial (s)   parallel (s)   speedup    paper
2000       0.135        0.025          5.32       3.69
3000       0.200        0.036          5.54       3.80

Table 2 / Figure 14: speedup vs number of genealogy samples
  * = measured
      5.598 ┤       *      *
       3.69 ┤o
            └──────────────────
             2000        1e+04
             samples  (y: speedup)

=== Table 4 / Figure 16: speedup vs sequence length ===
bp         serial (s)   parallel (s)   speedup    paper
200        0.068        0.015          4.64       3.69
400        0.129        0.027          4.84       5.67
` + "```" + `
`

func TestParseBaselines(t *testing.T) {
	base, err := ParseBaselines(strings.NewReader(guardDoc))
	if err != nil {
		t.Fatal(err)
	}
	want := Baselines{
		"samples": {2000: 5.32, 3000: 5.54},
		"seqlen":  {200: 4.64, 400: 4.84},
	}
	if len(base) != len(want) {
		t.Fatalf("parsed experiments %v, want %v", base, want)
	}
	for name, rows := range want {
		if len(base[name]) != len(rows) {
			t.Fatalf("%s: parsed %v, want %v", name, base[name], rows)
		}
		for param, speedup := range rows {
			if base[name][param] != speedup {
				t.Errorf("%s@%d = %v, want %v", name, param, base[name][param], speedup)
			}
		}
	}
}

// TestParseBaselinesKeysFullScaleSeparately pins the section-title
// contract: the paper-scale sequence-length table is keyed "seqlen-full",
// never merged into (or matched as) the quick-scale "seqlen" baselines —
// a quick CI run must not measure itself against full-scale floors.
func TestParseBaselinesKeysFullScaleSeparately(t *testing.T) {
	doc := `
=== Table 4 / Figure 16: speedup vs sequence length ===
bp         serial (s)   parallel (s)   speedup    paper
200        0.068        0.015          4.64       3.69

=== Figure 16 trajectory: sequence-length sweep at paper scale ===
bp         serial (s)   parallel (s)   speedup    paper
200        1.406        0.232          6.07       3.69
2000       12.446       1.221          10.20      23.28
`
	base, err := ParseBaselines(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := base["seqlen"]; len(got) != 1 || got[200] != 4.64 {
		t.Errorf("seqlen = %v, want only the quick-scale row", got)
	}
	if got := base["seqlen-full"]; len(got) != 2 || got[200] != 6.07 || got[2000] != 10.20 {
		t.Errorf("seqlen-full = %v, want both paper-scale rows", got)
	}

	// And the floor check guards the full-scale points under their own key.
	measured := map[string][]SpeedupPoint{
		"seqlen-full": {{Param: 2000, Speedup: 6.0}}, // below 10.20*0.7
	}
	checked, violations := CheckSpeedupFloor(measured, base, 0.7)
	if checked != 1 || len(violations) != 1 || violations[0].Experiment != "seqlen-full" {
		t.Errorf("checked=%d violations=%v, want the one seqlen-full violation", checked, violations)
	}
}

func TestParseBaselinesRejectsEmptyDoc(t *testing.T) {
	if _, err := ParseBaselines(strings.NewReader("# nothing here\n")); err == nil {
		t.Fatal("expected error on a document without speedup tables")
	}
}

func TestCheckSpeedupFloor(t *testing.T) {
	base := Baselines{
		"samples": {2000: 5.0, 3000: 5.5},
		"seqlen":  {200: 4.0},
	}
	measured := map[string][]SpeedupPoint{
		"samples": {
			{Param: 2000, Speedup: 3.6}, // above floor 3.5: fine
			{Param: 3000, Speedup: 3.5}, // below floor 3.85: violation
			{Param: 9999, Speedup: 0.1}, // no baseline: ignored
		},
		"seqlen": {
			{Param: 200, Speedup: 4.2},
		},
	}
	checked, violations := CheckSpeedupFloor(measured, base, 0.7)
	if checked != 3 {
		t.Errorf("checked %d points, want 3 (the unbaselined point is skipped)", checked)
	}
	if len(violations) != 1 {
		t.Fatalf("got %d violations (%v), want 1", len(violations), violations)
	}
	v := violations[0]
	if v.Experiment != "samples" || v.Param != 3000 {
		t.Errorf("unexpected violation %+v", v)
	}
	if wantFloor := v.Baseline * 0.7; v.Floor != wantFloor {
		t.Errorf("floor = %v, want %v", v.Floor, wantFloor)
	}
	if got := v.String(); !strings.Contains(got, "samples @ 3000") {
		t.Errorf("violation string %q", got)
	}

	if _, extra := CheckSpeedupFloor(measured, base, 0.1); len(extra) != 0 {
		t.Errorf("factor 0.1 should pass everything, got %v", extra)
	}
}

// TestBatchThroughputExperimentRuns smoke-tests the batch experiment at a
// tiny scale: every point runs both modes and reports coherent numbers.
func TestBatchThroughputExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("batch experiment harness")
	}
	pts, err := BatchThroughput(Common{Scale: ScaleQuick, Workers: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	for _, p := range pts {
		if p.SerialSec <= 0 || p.BatchSec <= 0 {
			t.Errorf("jobs=%d: non-positive timing %+v", p.Jobs, p)
		}
		if p.Speedup <= 0 {
			t.Errorf("jobs=%d: non-positive speedup", p.Jobs)
		}
	}
}
