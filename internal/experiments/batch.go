package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"mpcgs/internal/device"
	"mpcgs/internal/sched"
	"mpcgs/internal/seqgen"
)

// BatchPoint is one row of the batch-throughput experiment: J quick-scale
// estimation jobs run back-to-back (one pool per run, the pre-batch
// model) against the same jobs multiplexed over one shared pool by the
// multi-tenant scheduler.
type BatchPoint struct {
	Jobs           int
	SerialSec      float64 // back-to-back wall time
	BatchSec       float64 // shared-pool wall time
	SerialJobsPerS float64
	BatchJobsPerS  float64
	// Speedup is the aggregate batch speedup SerialSec/BatchSec. It
	// grows with J until the pool saturates; on a single worker it stays
	// near 1 (no idle capacity for a second tenant to claim).
	Speedup float64
}

// BatchThroughput runs the batch-scheduler experiment: for each job
// count, the identical job list is estimated back-to-back and batched,
// and the wall times are compared compute-for-compute.
func BatchThroughput(c Common) ([]BatchPoint, error) {
	jobCounts := []int{1, 2, 4, 8}
	nSeq, seqLen, burnin, samples := 8, 120, 100, 800
	if c.Scale == ScalePaper {
		jobCounts = []int{1, 2, 4, 8, 16}
		burnin, samples = 500, 5000
	}
	workers := c.workers()
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	makeJobs := func(n int) ([]sched.Job, error) {
		jobs := make([]sched.Job, n)
		for i := range jobs {
			aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, c.seed()+uint64(100*i))
			if err != nil {
				return nil, err
			}
			jobs[i] = sched.Job{
				Name:         fmt.Sprintf("job%d", i),
				Alignment:    aln,
				InitialTheta: 1.0,
				Sampler:      "gmh",
				Proposals:    workers,
				Burnin:       burnin,
				Samples:      samples,
				EMIterations: 1,
				Seed:         c.seed() + uint64(1000*i),
			}
		}
		return jobs, nil
	}

	var out []BatchPoint
	for _, n := range jobCounts {
		jobs, err := makeJobs(n)
		if err != nil {
			return nil, err
		}

		// Back-to-back baseline: each job spawns, uses and tears down its
		// own pool, exactly what n standalone invocations would do. The
		// pipeline is sched.RunStandalone — the very one RunBatch admits
		// jobs through — so the comparison is compute-for-compute.
		start := time.Now()
		for _, j := range jobs {
			if _, err := sched.RunStandalone(j, workers); err != nil {
				return nil, fmt.Errorf("batch experiment, serial job %s: %w", j.Name, err)
			}
		}
		serial := time.Since(start).Seconds()

		pool := device.NewPool(workers)
		start = time.Now()
		results, err := sched.RunBatch(context.Background(), pool, jobs, sched.Options{})
		batch := time.Since(start).Seconds()
		pool.Close()
		if err != nil {
			return nil, fmt.Errorf("batch experiment, %d jobs: %w", n, err)
		}
		for _, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("batch experiment, job %s: %w", r.Name, r.Err)
			}
		}

		out = append(out, BatchPoint{
			Jobs:           n,
			SerialSec:      serial,
			BatchSec:       batch,
			SerialJobsPerS: float64(n) / serial,
			BatchJobsPerS:  float64(n) / batch,
			Speedup:        serial / batch,
		})
	}
	return out, nil
}
