package experiments

import (
	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/mssim"
	"mpcgs/internal/rng"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/stats"
)

// Ablations for the tuning questions the paper's §7 leaves open:
// "additional optimization will take the form of tuning various
// parameters such as the size of the proposal set that Calderhead's
// method produces and the block size of the data likelihood kernel".

// ProposalSizePoint measures the GMH sampler at one proposal-set size N.
type ProposalSizePoint struct {
	N int
	// Sec is the wall time for the fixed sampling workload.
	Sec float64
	// MoveRate is the fraction of index draws that changed state: larger
	// proposal sets explore more per round.
	MoveRate float64
	// ESS is the effective sample size of the log-likelihood trace:
	// wall-clock cost must be weighed against sampling quality.
	ESS float64
	// ESSPerSec is the headline efficiency measure.
	ESSPerSec float64
}

// ProposalSetSize sweeps the GMH proposal-set size N at a fixed worker
// count, measuring the cost/quality trade-off of the paper's central
// tuning parameter.
func ProposalSetSize(c Common) ([]ProposalSizePoint, error) {
	sizes := []int{2, 4, 8, 16, 32}
	nSeq, seqLen, burnin, samples := 12, 200, 200, 2000
	if c.Scale == ScalePaper {
		sizes = []int{2, 4, 8, 16, 32, 64, 128}
		burnin, samples = 1000, 20000
	}
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, c.seed())
	if err != nil {
		return nil, err
	}
	dev := device.New(c.workers())
	eval, err := buildEvaluator(aln, dev)
	if err != nil {
		return nil, err
	}
	var out []ProposalSizePoint
	for _, n := range sizes {
		init, err := core.InitialTree(aln, 1.0, c.seed())
		if err != nil {
			return nil, err
		}
		gmh := core.NewGMH(eval, dev, n)
		sec, err := timedRun(gmh, aln, 1.0, burnin, samples, c.seed()+uint64(n))
		if err != nil {
			return nil, err
		}
		// Re-run for the quality metrics (timing kept separate from the
		// metric pass so instrumentation does not skew it).
		run, err := gmh.Run(init, core.ChainConfig{Theta: 1.0, Burnin: burnin, Samples: samples, Seed: c.seed() + uint64(n)})
		if err != nil {
			return nil, err
		}
		ess := stats.EffectiveSampleSize(run.Samples.PostBurninLogLik())
		out = append(out, ProposalSizePoint{
			N:         n,
			Sec:       sec,
			MoveRate:  run.AcceptanceRate(),
			ESS:       ess,
			ESSPerSec: ess / sec,
		})
	}
	return out, nil
}

// NestedParallelismPoint compares likelihood-kernel placement strategies
// at one proposal count.
type NestedParallelismPoint struct {
	N         int
	FlatSec   float64 // proposal-level parallelism only
	NestedSec float64 // proposals also launch per-site kernels (§4.4)
}

// NestedParallelism measures the paper's dynamic parallelism choice: when
// the proposal count is below the worker count, letting each proposal
// thread launch a per-site likelihood kernel recovers the idle workers;
// at or above the worker count it only adds launch overhead.
func NestedParallelism(c Common) ([]NestedParallelismPoint, error) {
	nSeq, seqLen, burnin, samples := 12, 400, 100, 1000
	if c.Scale == ScalePaper {
		burnin, samples = 500, 10000
	}
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, c.seed())
	if err != nil {
		return nil, err
	}
	dev := device.New(c.workers())
	eval, err := buildEvaluator(aln, dev)
	if err != nil {
		return nil, err
	}
	sizes := []int{2, 4, dev.Workers()}
	var out []NestedParallelismPoint
	for _, n := range sizes {
		flat := core.NewGMH(eval, dev, n)
		tFlat, err := timedRun(flat, aln, 1.0, burnin, samples, c.seed()+41)
		if err != nil {
			return nil, err
		}
		nested := core.NewGMH(eval, dev, n)
		nested.NestedSiteParallelism = true
		tNested, err := timedRun(nested, aln, 1.0, burnin, samples, c.seed()+41)
		if err != nil {
			return nil, err
		}
		out = append(out, NestedParallelismPoint{N: n, FlatSec: tFlat, NestedSec: tNested})
	}
	return out, nil
}

// GrowthPoint is one replicate of the growth-estimation extension
// experiment (§7): data simulated on a growing population, growth
// estimated by the two-parameter relative likelihood.
type GrowthPoint struct {
	TrueGrowth float64
	Theta      float64
	Growth     float64
}

// GrowthEstimation exercises the §7 extension end to end: for true growth
// rates {0, strong}, simulate sequence data, sample genealogies at the
// constant-size driving values, and jointly maximize L(θ, g). The
// importance-sampled two-parameter likelihood needs a healthy sample
// budget to separate the (θ, g) ridge, so this experiment runs longer
// chains than the speedup sweeps even at quick scale.
func GrowthEstimation(c Common) ([]GrowthPoint, error) {
	nSeq, seqLen, burnin, samples := 10, 400, 1500, 15000
	if c.Scale == ScalePaper {
		burnin, samples = 3000, 40000
	}
	dev := device.New(c.workers())
	var out []GrowthPoint
	for i, trueG := range []float64{0, 8} {
		seed := c.seed() + uint64(100+i)
		src := rng.NewStreamSet(1, seed).Stream(0)
		tree, err := mssim.SimulateGrowth(mssim.TipNames(nSeq), 1.0, trueG, src)
		if err != nil {
			return nil, err
		}
		aln, err := seqgen.Simulate(tree, seqgen.Config{Length: seqLen, Seed: seed})
		if err != nil {
			return nil, err
		}
		eval, err := buildEvaluator(aln, dev)
		if err != nil {
			return nil, err
		}
		init, err := core.InitialTree(aln, 1.0, seed)
		if err != nil {
			return nil, err
		}
		run, err := core.NewGMH(eval, dev, dev.Workers()).Run(init, core.ChainConfig{
			Theta: 1.0, Burnin: burnin, Samples: samples, Seed: seed + 1,
		})
		if err != nil {
			return nil, err
		}
		est, err := core.MaximizeThetaGrowth(run.Samples, core.MLEConfig{}, dev)
		if err != nil {
			return nil, err
		}
		out = append(out, GrowthPoint{TrueGrowth: trueG, Theta: est.Theta, Growth: est.Growth})
	}
	return out, nil
}
