// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): the accuracy comparison of the serial LAMARC-style
// sampler against the parallel multiple-proposal sampler (Table 1 /
// Fig. 13), the speedup sweeps over sample count, sequence count and
// sequence length (Tables 2-4 / Figs. 14-16), the relative likelihood
// curve (Fig. 5), a burn-in trace (Fig. 2) and the multi-chain efficiency
// model (Fig. 6).
//
// Workloads follow §6.1: genealogies are simulated from the coalescent at
// a known true θ (the ms substrate), sequences are evolved along them
// under F84 (the seq-gen substrate), and both samplers estimate θ with the
// F81/empirical-frequency likelihood — preserving the simulate/infer model
// mismatch the paper identifies.
package experiments

import (
	"fmt"
	"time"

	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/phylip"
	"mpcgs/internal/rng"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/stats"
	"mpcgs/internal/subst"
)

// Scale selects experiment sizing.
type Scale string

// Sizing presets.
const (
	// ScaleQuick shrinks workloads to finish in seconds per experiment,
	// for CI and benchmarks.
	ScaleQuick Scale = "quick"
	// ScalePaper uses the paper's workload sizes (minutes per experiment).
	ScalePaper Scale = "paper"
)

// Common bundles the knobs shared by all experiments.
type Common struct {
	Scale   Scale
	Workers int
	Seed    uint64
}

func (c Common) workers() int {
	if c.Workers <= 0 {
		return 0 // device.New treats 0 as GOMAXPROCS
	}
	return c.Workers
}

func (c Common) seed() uint64 {
	if c.Seed == 0 {
		return 20160401 // the thesis date
	}
	return c.Seed
}

// buildEvaluator assembles the F81 likelihood over a simulated dataset.
func buildEvaluator(aln *phylip.Alignment, dev *device.Device) (*felsen.Evaluator, error) {
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		return nil, err
	}
	return felsen.New(model, aln, dev)
}

// estimate runs the full EM estimation with the given sampler and returns
// the final θ.
func estimate(s core.Sampler, aln *phylip.Alignment, theta0 float64, burnin, samples, emIters int, seed uint64, dev *device.Device) (float64, error) {
	init, err := core.InitialTree(aln, theta0, seed)
	if err != nil {
		return 0, err
	}
	res, err := core.RunEM(s, init, core.EMConfig{
		InitialTheta: theta0,
		Iterations:   emIters,
		Burnin:       burnin,
		Samples:      samples,
		Seed:         seed,
	}, dev)
	if err != nil {
		return 0, err
	}
	return res.Theta, nil
}

// AccuracyRow is one line of Table 1.
type AccuracyRow struct {
	TrueTheta  float64
	LAMARC     float64 // serial MH estimate, mean over replicates
	LAMARCStd  float64
	MPCGS      float64 // parallel GMH estimate, mean over replicates
	MPCGSStd   float64
	Replicates int
}

// AccuracyResult reproduces Table 1 and Fig. 13.
type AccuracyResult struct {
	Rows []AccuracyRow
	// Pearson is the correlation between the per-dataset LAMARC and
	// mpcgs estimates, the paper's accuracy criterion (r = 0.905).
	Pearson float64
}

// Accuracy runs the Table 1 / Fig. 13 experiment: for each true θ,
// simulate datasets, estimate θ with both samplers, and correlate.
func Accuracy(c Common) (*AccuracyResult, error) {
	trueThetas := []float64{0.5, 1.0, 2.0, 3.0, 4.0}
	nSeq, seqLen := 12, 200
	reps, burnin, samples, emIters := 3, 300, 2500, 3
	if c.Scale == ScalePaper {
		reps, burnin, samples, emIters = 5, 1000, 10000, 5
	}
	dev := device.New(c.workers())
	defer dev.Close()
	res := &AccuracyResult{}
	var allL, allM []float64
	for ti, trueTheta := range trueThetas {
		row := AccuracyRow{TrueTheta: trueTheta, Replicates: reps}
		var ls, ms []float64
		for rep := 0; rep < reps; rep++ {
			seed := c.seed() + uint64(ti*1000+rep)
			aln, _, err := seqgen.SimulateData(nSeq, seqLen, trueTheta, seed)
			if err != nil {
				return nil, err
			}
			eval, err := buildEvaluator(aln, dev)
			if err != nil {
				return nil, err
			}
			theta0 := trueTheta / 2 // deliberately offset start
			lam, err := estimate(core.NewMH(eval), aln, theta0, burnin, samples, emIters, seed+7, dev)
			if err != nil {
				return nil, fmt.Errorf("accuracy theta=%v rep %d (LAMARC): %w", trueTheta, rep, err)
			}
			gmh := core.NewGMH(eval, dev, dev.Workers())
			mp, err := estimate(gmh, aln, theta0, burnin, samples, emIters, seed+13, dev)
			if err != nil {
				return nil, fmt.Errorf("accuracy theta=%v rep %d (mpcgs): %w", trueTheta, rep, err)
			}
			ls = append(ls, lam)
			ms = append(ms, mp)
		}
		allL = append(allL, ls...)
		allM = append(allM, ms...)
		row.LAMARC, row.LAMARCStd = stats.Mean(ls), stats.StdDev(ls)
		row.MPCGS, row.MPCGSStd = stats.Mean(ms), stats.StdDev(ms)
		res.Rows = append(res.Rows, row)
	}
	res.Pearson = stats.Pearson(allL, allM)
	return res, nil
}

// SpeedupPoint is one row of a speedup table: the serial LAMARC-style
// sampler's wall time against the parallel sampler's for the same number
// of recorded draws.
type SpeedupPoint struct {
	Param       int // the swept parameter's value
	SerialSec   float64
	ParallelSec float64
	Speedup     float64
}

// timedRun executes one sampling pass and returns the wall time.
func timedRun(s core.Sampler, aln *phylip.Alignment, theta float64, burnin, samples int, seed uint64) (float64, error) {
	init, err := core.InitialTree(aln, theta, seed)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	_, err = s.Run(init, core.ChainConfig{Theta: theta, Burnin: burnin, Samples: samples, Seed: seed})
	if err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// speedupPoint measures one serial-vs-parallel pair.
func speedupPoint(param int, aln *phylip.Alignment, burnin, samples int, c Common) (SpeedupPoint, error) {
	dev := device.New(c.workers())
	defer dev.Close()
	evalSerial, err := buildEvaluator(aln, device.Serial())
	if err != nil {
		return SpeedupPoint{}, err
	}
	evalPar, err := buildEvaluator(aln, dev)
	if err != nil {
		return SpeedupPoint{}, err
	}
	theta := 1.0
	// The serial baseline is the LAMARC reference: a full from-scratch
	// likelihood per step, like the package the paper compares against.
	// (The engine's delta-evaluated MH is the fast default elsewhere.)
	lamarc := core.NewMH(evalSerial)
	lamarc.SerialEval = true
	tSerial, err := timedRun(lamarc, aln, theta, burnin, samples, c.seed()+3)
	if err != nil {
		return SpeedupPoint{}, err
	}
	gmh := core.NewGMH(evalPar, dev, dev.Workers())
	tPar, err := timedRun(gmh, aln, theta, burnin, samples, c.seed()+5)
	if err != nil {
		return SpeedupPoint{}, err
	}
	return SpeedupPoint{
		Param:       param,
		SerialSec:   tSerial,
		ParallelSec: tPar,
		Speedup:     tSerial / tPar,
	}, nil
}

// SpeedupVsSamples reproduces Table 2 / Fig. 14: speedup as the number of
// genealogy samples per estimation pass varies.
func SpeedupVsSamples(c Common) ([]SpeedupPoint, error) {
	counts := []int{2000, 3000, 4000, 6000, 8000, 10000}
	nSeq, seqLen, burnin := 12, 200, 200
	if c.Scale == ScalePaper {
		counts = []int{20000, 30000, 40000, 60000, 80000, 100000}
		burnin = 1000
	}
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, c.seed())
	if err != nil {
		return nil, err
	}
	var out []SpeedupPoint
	for _, n := range counts {
		p, err := speedupPoint(n, aln, burnin, n, c)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// SpeedupVsSequences reproduces Table 3 / Fig. 15: speedup as the number
// of sequences varies.
func SpeedupVsSequences(c Common) ([]SpeedupPoint, error) {
	counts := []int{12, 24, 36, 48}
	seqLen, burnin, samples := 200, 100, 1000
	if c.Scale == ScalePaper {
		counts = []int{12, 24, 36, 48, 60, 84, 108, 132}
		burnin, samples = 1000, 20000
	}
	var out []SpeedupPoint
	for _, n := range counts {
		aln, _, err := seqgen.SimulateData(n, seqLen, 1.0, c.seed()+uint64(n))
		if err != nil {
			return nil, err
		}
		p, err := speedupPoint(n, aln, burnin, samples, c)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// SpeedupVsSeqLen reproduces Table 4 / Fig. 16: speedup as the sequence
// length varies.
func SpeedupVsSeqLen(c Common) ([]SpeedupPoint, error) {
	lengths := []int{200, 400, 600, 800, 1000}
	nSeq, burnin, samples := 12, 100, 1000
	if c.Scale == ScalePaper {
		lengths = []int{200, 400, 600, 800, 1000, 2000}
		burnin, samples = 1000, 20000
	}
	var out []SpeedupPoint
	for _, L := range lengths {
		aln, _, err := seqgen.SimulateData(nSeq, L, 1.0, c.seed()+uint64(L))
		if err != nil {
			return nil, err
		}
		p, err := speedupPoint(L, aln, burnin, samples, c)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// SpeedupVsSeqLenFull runs the Fig. 16 sweep at the paper's workload
// sizes regardless of the configured scale: the committed full-scale
// trajectory EXPERIMENTS.md carries alongside the quick-scale tables.
// It is keyed separately from the quick-scale seqlen sweep everywhere
// (experiment name, table title, guard baselines), so a quick-scale CI
// run never compares itself against full-scale numbers.
func SpeedupVsSeqLenFull(c Common) ([]SpeedupPoint, error) {
	c.Scale = ScalePaper
	return SpeedupVsSeqLen(c)
}

// GMHWaveRound measures the wave-fusion acceptance points: GMH sampling
// with a fixed N = 8 proposal set on 32-taxon data at 1000bp and 4000bp,
// timing the per-candidate dispatch (each candidate's likelihood as its
// own delta evaluation — the pre-wave path, kept as GMH.PerCandidate)
// against the fused (proposal × pattern-block) wave grid with the
// per-round outer-partial lift. Both runs use the same seed and produce
// bit-identical traces, so the ratio is pure dispatch cost. The point
// reuses SpeedupPoint with SerialSec = per-candidate and ParallelSec =
// wave. 32 taxa is the design point: the lift amortizes the shared root
// path above the resimulated neighbourhood, which 12-taxon genealogies
// rarely make deep enough to matter.
func GMHWaveRound(c Common) ([]SpeedupPoint, error) {
	lengths := []int{1000, 4000}
	nSeq, proposals := 32, 8
	burnin, samples := 50, 400
	if c.Scale == ScalePaper {
		burnin, samples = 200, 2000
	}
	dev := device.New(c.workers())
	defer dev.Close()
	var out []SpeedupPoint
	for _, L := range lengths {
		aln, _, err := seqgen.SimulateData(nSeq, L, 1.0, c.seed()+uint64(L))
		if err != nil {
			return nil, err
		}
		eval, err := buildEvaluator(aln, dev)
		if err != nil {
			return nil, err
		}
		perCand := core.NewGMH(eval, dev, proposals)
		perCand.PerCandidate = true
		tPC, err := timedRun(perCand, aln, 1.0, burnin, samples, c.seed()+41)
		if err != nil {
			return nil, err
		}
		wave := core.NewGMH(eval, dev, proposals)
		tWave, err := timedRun(wave, aln, 1.0, burnin, samples, c.seed()+41)
		if err != nil {
			return nil, err
		}
		out = append(out, SpeedupPoint{
			Param:       L,
			SerialSec:   tPC,
			ParallelSec: tWave,
			Speedup:     tPC / tWave,
		})
	}
	return out, nil
}

// CurveResult reproduces Fig. 5: the relative log-likelihood curve from a
// single sampling pass driven far below the true θ.
type CurveResult struct {
	Thetas    []float64
	LogL      []float64
	TrueTheta float64
	Theta0    float64
	// ArgMax is the θ grid point with the highest relative likelihood.
	ArgMax float64
}

// LikelihoodCurve runs the Fig. 5 experiment: true θ = 1.0, driving
// θ0 = 0.01.
func LikelihoodCurve(c Common) (*CurveResult, error) {
	trueTheta, theta0 := 1.0, 0.01
	nSeq, seqLen, burnin, samples := 12, 200, 1000, 10000
	if c.Scale == ScalePaper {
		burnin, samples = 2000, 20000
	}
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, trueTheta, c.seed())
	if err != nil {
		return nil, err
	}
	dev := device.New(c.workers())
	defer dev.Close()
	eval, err := buildEvaluator(aln, dev)
	if err != nil {
		return nil, err
	}
	init, err := core.InitialTree(aln, theta0, c.seed())
	if err != nil {
		return nil, err
	}
	gmh := core.NewGMH(eval, dev, dev.Workers())
	run, err := gmh.Run(init, core.ChainConfig{Theta: theta0, Burnin: burnin, Samples: samples, Seed: c.seed() + 17})
	if err != nil {
		return nil, err
	}
	res := &CurveResult{TrueTheta: trueTheta, Theta0: theta0}
	// Log-spaced grid from theta0/2 to 10x the truth.
	for x := theta0 / 2; x <= 10*trueTheta; x *= 1.15 {
		res.Thetas = append(res.Thetas, x)
	}
	res.LogL = core.Curve(run.Samples, res.Thetas, dev)
	best := 0
	for i, v := range res.LogL {
		if v > res.LogL[best] {
			best = i
		}
	}
	res.ArgMax = res.Thetas[best]
	return res, nil
}

// BurninResult reproduces Fig. 2: the chain's data log-likelihood trace
// from a cold start, showing convergence to the stationary regime.
type BurninResult struct {
	Trace []float64
}

// BurninTrace runs the Fig. 2 experiment. The chain starts from a random
// coalescent genealogy that ignores the data entirely — the "randomly
// selected state [with] a very low probability" of §2.3 — so the trace
// shows the characteristic climb into the stationary regime.
func BurninTrace(c Common) (*BurninResult, error) {
	nSeq, seqLen, draws := 12, 200, 2000
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, c.seed())
	if err != nil {
		return nil, err
	}
	eval, err := buildEvaluator(aln, device.Serial())
	if err != nil {
		return nil, err
	}
	src := rng.NewStreamSet(1, c.seed()+29).Stream(0)
	init, err := gtree.RandomCoalescent(aln.Names, 1.0, src)
	if err != nil {
		return nil, err
	}
	run, err := core.NewMH(eval).Run(init, core.ChainConfig{Theta: 1.0, Burnin: 0, Samples: draws, Seed: c.seed() + 23})
	if err != nil {
		return nil, err
	}
	return &BurninResult{Trace: run.Samples.LogLik}, nil
}

// MultichainPoint is one row of the Fig. 6 reproduction: at parallelism P,
// the measured wall time of P independent chains (each paying burn-in B
// for its share of the samples) against the GMH sampler on P workers, plus
// the analytic work model.
type MultichainPoint struct {
	P             int
	MultichainSec float64
	GMHSec        float64
	// ModelWork is the Amdahl work model (B + N/P) / (B + N): the
	// fraction of single-chain time the multichain approach needs, which
	// saturates at B/(B+N).
	ModelWork float64
}

// MultichainEfficiency runs the Fig. 6 experiment. The workload follows
// the figure's setting: burn-in comparable to the sampling budget, so the
// per-chain burn-in genuinely dominates the multichain wall time at
// higher parallelism.
func MultichainEfficiency(c Common) ([]MultichainPoint, error) {
	nSeq, seqLen := 12, 400
	burnin, samples := 1500, 1500
	if c.Scale == ScalePaper {
		burnin, samples = 5000, 5000
	}
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, c.seed())
	if err != nil {
		return nil, err
	}
	var out []MultichainPoint
	maxP := c.workers()
	if maxP == 0 {
		maxP = device.New(0).Workers()
	}
	// Each parallelism point gets its own device, torn down before the
	// next point so earlier pools' workers cannot pollute later timings.
	point := func(p int) (MultichainPoint, error) {
		dev := device.New(p)
		defer dev.Close()
		evalSerial, err := buildEvaluator(aln, device.Serial())
		if err != nil {
			return MultichainPoint{}, err
		}
		mc := core.NewMultiChain(evalSerial, dev, p)
		mc.SerialEval = true // the historical LAMARC-chain measurement
		tMC, err := timedRun(mc, aln, 1.0, burnin, samples, c.seed()+31)
		if err != nil {
			return MultichainPoint{}, err
		}
		evalPar, err := buildEvaluator(aln, dev)
		if err != nil {
			return MultichainPoint{}, err
		}
		gmh := core.NewGMH(evalPar, dev, p)
		tGMH, err := timedRun(gmh, aln, 1.0, burnin, samples, c.seed()+37)
		if err != nil {
			return MultichainPoint{}, err
		}
		return MultichainPoint{
			P:             p,
			MultichainSec: tMC,
			GMHSec:        tGMH,
			ModelWork:     (float64(burnin) + float64(samples)/float64(p)) / float64(burnin+samples),
		}, nil
	}
	for p := 1; p <= maxP; p *= 2 {
		pt, err := point(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
