package experiments

// The experiments are end-to-end workloads; these tests run miniature
// versions to validate shape properties (who wins, directions of trends)
// rather than absolute numbers, which is exactly the reproduction
// criterion for the paper's evaluation. The heavier checks are guarded by
// -short.

import (
	"testing"
)

func quick() Common { return Common{Scale: ScaleQuick, Workers: 8, Seed: 99} }

func TestSpeedupVsSeqLenShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	pts, err := SpeedupVsSeqLen(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// Shape property from Fig. 16: the parallel sampler must win
	// everywhere, and speedup at the longest sequences must exceed the
	// shortest (the paper's headline trend).
	for _, p := range pts {
		if p.Speedup <= 1 {
			t.Errorf("bp=%d: speedup %v <= 1", p.Param, p.Speedup)
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.Speedup <= first.Speedup {
		t.Errorf("speedup not increasing with sequence length: %v at %d bp vs %v at %d bp",
			first.Speedup, first.Param, last.Speedup, last.Param)
	}
}

func TestSpeedupVsSamplesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	c := quick()
	pts, err := SpeedupVsSamples(c)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 14's shape: roughly flat. Allow wide slack but demand the
	// parallel sampler always wins and no collapse at high counts.
	for _, p := range pts {
		if p.Speedup <= 1 {
			t.Errorf("samples=%d: speedup %v <= 1", p.Param, p.Speedup)
		}
	}
	first, last := pts[0].Speedup, pts[len(pts)-1].Speedup
	if last < first/2 {
		t.Errorf("speedup collapsed with sample count: %v -> %v", first, last)
	}
}

func TestMultichainEfficiencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	pts, err := MultichainEfficiency(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("got %d parallelism points", len(pts))
	}
	// Fig. 6's argument: at the highest parallelism, GMH must beat the
	// multichain approach (whose wall time is floored by burn-in).
	last := pts[len(pts)-1]
	if last.GMHSec >= last.MultichainSec {
		t.Errorf("at P=%d GMH (%vs) did not beat multichain (%vs)",
			last.P, last.GMHSec, last.MultichainSec)
	}
	// The Amdahl model is monotone decreasing towards the burn-in floor.
	for i := 1; i < len(pts); i++ {
		if pts[i].ModelWork >= pts[i-1].ModelWork {
			t.Errorf("Amdahl model not decreasing: %v then %v", pts[i-1].ModelWork, pts[i].ModelWork)
		}
	}
}

func TestLikelihoodCurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling experiment")
	}
	res, err := LikelihoodCurve(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5's shape: driven at theta0 = 0.01 with truth at 1.0, the
	// curve's maximum must sit far above the driving value.
	if res.ArgMax < 10*res.Theta0 {
		t.Errorf("curve argmax %v did not move above driving value %v", res.ArgMax, res.Theta0)
	}
	if len(res.Thetas) != len(res.LogL) {
		t.Fatalf("grid/value length mismatch")
	}
}

func TestBurninTraceRises(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling experiment")
	}
	res, err := BurninTrace(quick())
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Trace)
	if n < 100 {
		t.Fatalf("trace too short: %d", n)
	}
	// Fig. 2's shape: early draws are atypical; the chain's final
	// log-likelihood regime must be above the starting point.
	early := res.Trace[0]
	lateMean := 0.0
	for _, v := range res.Trace[n-n/4:] {
		lateMean += v
	}
	lateMean /= float64(n / 4)
	if lateMean <= early {
		t.Errorf("late mean %v not above cold start %v", lateMean, early)
	}
}

func TestAccuracySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full EM experiment")
	}
	res, err := Accuracy(Common{Scale: ScaleQuick, Workers: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	// Both estimators must order with the truth: the paper's criterion
	// is a strong positive correlation (r = 0.905 there).
	if res.Pearson < 0.6 {
		t.Errorf("Pearson r = %v, want strong positive correlation", res.Pearson)
	}
	for _, row := range res.Rows {
		if row.LAMARC <= 0 || row.MPCGS <= 0 {
			t.Errorf("non-positive estimate in row %+v", row)
		}
	}
}

func TestProposalSetSizeAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	pts, err := ProposalSetSize(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.ESS <= 0 || p.Sec <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
		if p.MoveRate < 0 || p.MoveRate > 1 {
			t.Errorf("move rate %v out of range", p.MoveRate)
		}
	}
}

func TestGrowthEstimationDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline experiment")
	}
	pts, err := GrowthEstimation(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[1].Growth <= pts[0].Growth {
		t.Errorf("estimated growth on growing data (%v) not above constant data (%v)",
			pts[1].Growth, pts[0].Growth)
	}
}

func TestTemperingComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	// The acceptance criterion of the adaptive ladder: on the §6-scale
	// workload its estimation-phase swap rates are flatter across pairs
	// (smaller max−min spread) than the fixed geometric schedule's.
	pts, err := TemperingComparison(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Mode != "fixed" || pts[1].Mode != "adaptive" {
		t.Fatalf("unexpected points: %+v", pts)
	}
	fixed, adaptive := pts[0], pts[1]
	if len(fixed.Rates) != len(adaptive.Rates) || len(fixed.Rates) == 0 {
		t.Fatalf("rate profiles ragged: %d vs %d pairs", len(fixed.Rates), len(adaptive.Rates))
	}
	if adaptive.Spread >= fixed.Spread {
		t.Errorf("adaptive ladder not flatter: spread %.3f vs fixed %.3f",
			adaptive.Spread, fixed.Spread)
	}
	// The adapted schedule must still be a valid pinned ladder.
	if adaptive.Betas[0] != 1 {
		t.Errorf("adapted cold rung beta %v", adaptive.Betas[0])
	}
	for i := 1; i < len(adaptive.Betas); i++ {
		if !(adaptive.Betas[i] > 0 && adaptive.Betas[i] < adaptive.Betas[i-1]) {
			t.Errorf("adapted betas not strictly decreasing: %v", adaptive.Betas)
		}
	}
}
