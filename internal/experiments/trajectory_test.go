package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseSnapshotBench7 pins the parser against the real committed
// trajectory: BENCH_7.json at the repository root must load, carry the
// schema, and expose the seqlen sweep the CI gate compares against.
func TestParseSnapshotBench7(t *testing.T) {
	snap, err := ParseSnapshot(filepath.Join("..", "..", "BENCH_7.json"))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != SnapshotSchema {
		t.Errorf("schema %q, want %q", snap.Schema, SnapshotSchema)
	}
	if snap.PR != 7 {
		t.Errorf("PR %d, want 7", snap.PR)
	}
	if snap.File != "BENCH_7.json" {
		t.Errorf("file %q", snap.File)
	}
	if snap.Scale != "quick" {
		t.Errorf("scale %q, want quick", snap.Scale)
	}
	pts := snap.Speedups["seqlen"]
	if len(pts) == 0 {
		t.Fatal("no seqlen speedup points")
	}
	for _, p := range pts {
		if p.Param <= 0 || p.Speedup <= 0 || p.SerialSec <= 0 || p.ParallelSec <= 0 {
			t.Errorf("implausible point %+v", p)
		}
	}
}

func writeSnapshot(t *testing.T, dir, name string, snap *BenchSnapshot) {
	t.Helper()
	snap.Schema = SnapshotSchema
	if err := snap.Write(filepath.Join(dir, name)); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSnapshotsNumericOrder(t *testing.T) {
	dir := t.TempDir()
	mk := func(speedup float64) *BenchSnapshot {
		return &BenchSnapshot{
			Scale:    "quick",
			Speedups: map[string][]SpeedupPoint{"seqlen": {{Param: 200, Speedup: speedup}}},
		}
	}
	writeSnapshot(t, dir, "BENCH_10.json", mk(10))
	writeSnapshot(t, dir, "BENCH_3.json", mk(3))
	writeSnapshot(t, dir, "BENCH_7.json", mk(7))
	// Non-snapshot files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	snaps, err := LoadSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	var prs []int
	for _, s := range snaps {
		prs = append(prs, s.PR)
	}
	if len(prs) != 3 || prs[0] != 3 || prs[1] != 7 || prs[2] != 10 {
		t.Fatalf("PR order %v, want [3 7 10] (numeric, not lexical)", prs)
	}
}

func TestLoadSnapshotsRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_1.json"),
		[]byte(`{"schema": "mpcgs-paperbench/v999"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshots(dir); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("err = %v, want schema rejection", err)
	}
}

func TestCompareSnapshot(t *testing.T) {
	latest := &BenchSnapshot{
		Speedups: map[string][]SpeedupPoint{
			"seqlen": {{Param: 200, Speedup: 6.0}, {Param: 400, Speedup: 8.0}},
		},
	}

	// Healthy: within the floor.
	measured := map[string][]SpeedupPoint{
		"seqlen": {{Param: 200, Speedup: 5.0}, {Param: 400, Speedup: 7.0}},
		// Points the snapshot does not cover are skipped, not violations.
		"samples": {{Param: 1000, Speedup: 1.0}},
	}
	checked, violations := CompareSnapshot(measured, latest, 0.7)
	if checked != 2 || len(violations) != 0 {
		t.Fatalf("healthy: checked=%d violations=%v", checked, violations)
	}

	// Regressed: 30%+ drop on one point.
	measured["seqlen"] = []SpeedupPoint{{Param: 200, Speedup: 2.0}, {Param: 400, Speedup: 7.9}}
	checked, violations = CompareSnapshot(measured, latest, 0.7)
	if checked != 2 || len(violations) != 1 {
		t.Fatalf("regressed: checked=%d violations=%v", checked, violations)
	}
	v := violations[0]
	if v.Experiment != "seqlen" || v.Param != 200 || v.Committed != 6.0 {
		t.Errorf("violation %+v", v)
	}
	if !strings.Contains(v.String(), "below floor") {
		t.Errorf("violation string %q", v.String())
	}

	// Vacuous: nothing overlaps. The caller must fail on checked == 0.
	checked, violations = CompareSnapshot(map[string][]SpeedupPoint{
		"curve": {{Param: 1, Speedup: 1}},
	}, latest, 0.7)
	if checked != 0 || len(violations) != 0 {
		t.Fatalf("vacuous: checked=%d violations=%v", checked, violations)
	}
}

func TestFormatTrajectory(t *testing.T) {
	snaps := []*BenchSnapshot{
		{PR: 3, Speedups: map[string][]SpeedupPoint{"seqlen": {{Param: 200, Speedup: 4.0}}}},
		{PR: 7, Speedups: map[string][]SpeedupPoint{"seqlen": {{Param: 200, Speedup: 5.7}, {Param: 400, Speedup: 7.4}}}},
	}
	var buf bytes.Buffer
	FormatTrajectory(&buf, snaps)
	out := buf.String()
	for _, want := range []string{"trajectory: seqlen", "PR3", "PR7", "5.70", "7.40", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("trajectory output missing %q:\n%s", want, out)
		}
	}
}
