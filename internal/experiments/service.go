package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"mpcgs/internal/phylip"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/serve"
)

// ServicePoint is one row of the service experiment: C synthetic clients
// hammering one mpcgsd engine over real HTTP, each submitting a stream
// of quick-scale estimation jobs and polling them to completion.
type ServicePoint struct {
	Clients int
	Jobs    int
	// WallSec is the makespan from first submission to last completion.
	WallSec float64
	// JobsPerSec is the aggregate completion throughput.
	JobsPerSec float64
	// P50Ms and P95Ms are per-job submit-to-done latency percentiles.
	P50Ms float64
	P95Ms float64
}

// ServiceThroughput runs the estimation-as-a-service experiment: for
// each client count, a fresh serve.Server is stood up on a loopback
// listener with its own state directory, and C clients concurrently
// submit and await jobsPerClient jobs each. The jobs are the batch
// experiment's quick-scale workload, so the service rows are comparable
// to the batch-scheduler rows: what the HTTP shell and durable journal
// cost on top of raw scheduling.
func ServiceThroughput(c Common) ([]ServicePoint, error) {
	clientCounts := []int{1, 2, 4, 8}
	nSeq, seqLen, burnin, samples := 8, 120, 100, 800
	jobsPerClient := 2
	if c.Scale == ScalePaper {
		clientCounts = []int{1, 2, 4, 8, 16}
		burnin, samples = 500, 5000
	}

	var out []ServicePoint
	for _, clients := range clientCounts {
		pt, err := serviceRow(c, clients, jobsPerClient, nSeq, seqLen, burnin, samples)
		if err != nil {
			return nil, fmt.Errorf("service experiment, %d clients: %w", clients, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

func serviceRow(c Common, clients, jobsPerClient, nSeq, seqLen, burnin, samples int) (ServicePoint, error) {
	var pt ServicePoint
	state, err := os.MkdirTemp("", "mpcgs-service-bench-")
	if err != nil {
		return pt, err
	}
	defer os.RemoveAll(state)

	total := clients * jobsPerClient
	srv, err := serve.New(serve.Options{
		StateDir: state,
		Workers:  c.workers(),
		// The backlog must admit the whole synthetic burst: this row
		// measures throughput, not load shedding.
		MaxJobs: total + 1,
	})
	if err != nil {
		return pt, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return pt, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Pre-simulate every client's datasets so data generation does not
	// pollute the measured window.
	type submission struct {
		name string
		body []byte
	}
	subs := make([][]submission, clients)
	for cl := 0; cl < clients; cl++ {
		subs[cl] = make([]submission, jobsPerClient)
		for j := 0; j < jobsPerClient; j++ {
			idx := cl*jobsPerClient + j
			aln, err := simulateAlignment(nSeq, seqLen, c.seed()+uint64(100*idx))
			if err != nil {
				return pt, err
			}
			var phy bytes.Buffer
			if err := phylip.Write(&phy, aln); err != nil {
				return pt, err
			}
			body, err := json.Marshal(map[string]any{
				"name":          fmt.Sprintf("c%dj%d", cl, j),
				"tenant":        fmt.Sprintf("client%d", cl),
				"phylip":        phy.String(),
				"theta":         1.0,
				"sampler":       "gmh",
				"burnin":        burnin,
				"samples":       samples,
				"em_iterations": 1,
				"seed":          c.seed() + uint64(1000*idx),
			})
			if err != nil {
				return pt, err
			}
			subs[cl][j] = submission{name: fmt.Sprintf("c%dj%d", cl, j), body: body}
		}
	}

	latencies := make([]float64, 0, total)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			client := &http.Client{}
			for _, sub := range subs[cl] {
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(sub.body))
				if err != nil {
					errCh <- err
					return
				}
				var view struct {
					ID    string `json:"id"`
					Error string `json:"error"`
				}
				err = json.NewDecoder(resp.Body).Decode(&view)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusAccepted {
					errCh <- fmt.Errorf("submit %s: HTTP %d: %s", sub.name, resp.StatusCode, view.Error)
					return
				}
				if err := awaitJob(client, base, view.ID); err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				latencies = append(latencies, time.Since(t0).Seconds()*1000)
				mu.Unlock()
			}
		}(cl)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	close(errCh)
	if err := <-errCh; err != nil {
		return pt, err
	}

	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	return ServicePoint{
		Clients:    clients,
		Jobs:       total,
		WallSec:    wall,
		JobsPerSec: float64(total) / wall,
		P50Ms:      pct(0.50),
		P95Ms:      pct(0.95),
	}, nil
}

// awaitJob polls a job's status until it settles.
func awaitJob(client *http.Client, base, id string) error {
	for {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("poll %s: HTTP %d: %s", id, resp.StatusCode, view.Error)
		}
		switch view.Status {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("job %s failed: %s", id, view.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// simulateAlignment simulates one client dataset (the §6.1 substrate).
func simulateAlignment(nSeq, seqLen int, seed uint64) (*phylip.Alignment, error) {
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, seed)
	return aln, err
}
