package ckpt

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testRecord(id string, seq int64) *JobRecord {
	return &JobRecord{
		ID:       id,
		Seq:      seq,
		Tenant:   "lab",
		Priority: 3,
		Spec: JobSpec{
			Name:   id,
			Phylip: "3 4\na AAAA\nb AAAC\nc AACC\n",
			Theta:  HexFloat(0.01171875),
			Seed:   42,
		},
	}
}

func TestJobRecordRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jobs", "j1")
	want := testRecord("j1", 7)
	want.Spec.MaxTemp = HexFloat(8)
	if err := SaveJobRecord(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJobRecord(dir)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.Version != JobRecordVersion {
		t.Errorf("version %d, want %d", got.Version, JobRecordVersion)
	}
	theta, err := ParseHexFloat(got.Spec.Theta)
	if err != nil {
		t.Fatal(err)
	}
	if theta != 0.01171875 {
		t.Errorf("theta %v, want 0.01171875", theta)
	}
}

func TestHexFloatExactness(t *testing.T) {
	for _, f := range []float64{0, 1, 0.1, 1e-300, math.Pi, math.Inf(1), math.Inf(-1), 0x1.fffffffffffffp+1023} {
		got, err := ParseHexFloat(HexFloat(f))
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if math.Float64bits(got) != math.Float64bits(f) {
			t.Errorf("HexFloat round trip changed %v to %v", f, got)
		}
	}
}

func TestLoadJobRecordRejectsBadRecords(t *testing.T) {
	write := func(t *testing.T, body string) string {
		dir := t.TempDir()
		if err := os.WriteFile(JobRecordPath(dir), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	cases := map[string]struct {
		body    string
		wantErr string
	}{
		"future version": {
			`{"version": 99, "id": "x", "spec": {"name": "x", "phylip": "p", "theta": "0x1p+0"}}`,
			"version 99",
		},
		"missing id": {
			`{"version": 1, "spec": {"name": "x", "phylip": "p", "theta": "0x1p+0"}}`,
			"no id",
		},
		"missing name": {
			`{"version": 1, "id": "x", "spec": {"phylip": "p", "theta": "0x1p+0"}}`,
			"no spec name",
		},
		"missing alignment": {
			`{"version": 1, "id": "x", "spec": {"name": "x", "theta": "0x1p+0"}}`,
			"no alignment",
		},
		"torn json": {
			`{"version": 1, "id"`,
			"unexpected end",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			dir := write(t, tc.body)
			_, err := LoadJobRecord(dir)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestScanJobRecordsOrderAndErrors(t *testing.T) {
	root := filepath.Join(t.TempDir(), "jobs")

	// Missing root: empty queue.
	recs, err := ScanJobRecords(root)
	if err != nil || len(recs) != 0 {
		t.Fatalf("missing root: recs=%v err=%v, want empty/nil", recs, err)
	}

	// Records land lexically shuffled relative to their admission order.
	for _, rec := range []*JobRecord{testRecord("zz", 1), testRecord("aa", 3), testRecord("mm", 2)} {
		if err := SaveJobRecord(filepath.Join(root, rec.ID), rec); err != nil {
			t.Fatal(err)
		}
	}
	// Stray files are ignored; only directories are scanned.
	if err := os.WriteFile(filepath.Join(root, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = ScanJobRecords(root)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, r := range recs {
		order = append(order, r.ID)
	}
	if want := []string{"zz", "mm", "aa"}; strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("scan order %v, want %v", order, want)
	}

	// A record whose id does not match its directory is corruption, not
	// something to repair silently.
	if err := SaveJobRecord(filepath.Join(root, "dir-x"), testRecord("other", 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanJobRecords(root); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("mismatched id: err = %v, want mismatch error", err)
	}
}
