package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Job-queue manifest records: the durable admission log of the serving
// daemon. The daemon writes one JobRecord per accepted submission —
// before acknowledging it — into the job's own state directory, next to
// the job's batch checkpoint:
//
//	<state>/jobs/<id>/job.json    the submission (this file)
//	<state>/jobs/<id>/ckpt/       the job's chain checkpoint (Batch)
//
// A restarted daemon rescans the records in submission order and
// resubmits every job, resuming from its checkpoint when one exists.
// Like every ckpt wire type, the record carries floats as exact hex
// literals so a spec round-trips bit-identically — the spec is hashed
// into the resume fingerprint, and a float that changed in transit would
// strand the job's checkpoint.

// JobRecordVersion is the on-disk format version of a JobRecord.
const JobRecordVersion = 1

// JobRecordName is the record's filename inside the job directory.
const JobRecordName = "job.json"

// JobRecord is one durably enqueued submission.
type JobRecord struct {
	Version int `json:"version"`
	// ID is the job's state-directory name (its sanitized identity).
	ID string `json:"id"`
	// Seq is the daemon-assigned admission sequence; restarts resubmit
	// records in Seq order so scheduling state rebuilds deterministically.
	Seq int64 `json:"seq"`
	// Tenant and Priority are the submission's scheduling knobs.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Submitted is the acceptance time, RFC 3339 (informational only: it
	// never feeds the fingerprint or the schedule).
	Submitted string  `json:"submitted,omitempty"`
	Spec      JobSpec `json:"spec"`
}

// JobSpec is the submitted estimation spec in wire form. It mirrors
// sched.Job field for field; the alignment travels as the verbatim
// PHYLIP text of the submission and floats as hex literals.
type JobSpec struct {
	Name         string `json:"name"`
	Phylip       string `json:"phylip"`
	Theta        string `json:"theta"`
	Sampler      string `json:"sampler,omitempty"`
	Model        string `json:"model,omitempty"`
	Proposals    int    `json:"proposals,omitempty"`
	Chains       int    `json:"chains,omitempty"`
	Burnin       int    `json:"burnin,omitempty"`
	Samples      int    `json:"samples,omitempty"`
	EMIterations int    `json:"em_iterations,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	MaxTemp      string `json:"max_temp,omitempty"`
	SwapEvery    int    `json:"swap_every,omitempty"`
	AdaptLadder  bool   `json:"adapt_ladder,omitempty"`
	SwapWindow   int    `json:"swap_window,omitempty"`
	ESSTarget    string `json:"ess_target,omitempty"`
	RHatTarget   string `json:"rhat_target,omitempty"`
}

// HexFloat renders f as an exact hexadecimal float literal — the wire
// form every ckpt float uses (±Inf and NaN render as their strconv
// spellings).
func HexFloat(f float64) string { return hexFloat(f) }

// ParseHexFloat reads a float written by HexFloat (any strconv-readable
// spelling is accepted).
func ParseHexFloat(s string) (float64, error) { return parseHexFloat(s) }

// JobRecordPath returns the record path inside a job directory.
func JobRecordPath(dir string) string { return filepath.Join(dir, JobRecordName) }

// SaveJobRecord writes the record into the job directory atomically
// (temp file + rename, like every ckpt write): a crash mid-write leaves
// either no record or a whole one, never a torn acknowledgment.
func SaveJobRecord(dir string, rec *JobRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	rec.Version = JobRecordVersion
	data, err := json.MarshalIndent(rec, "", " ")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".job-*.tmp")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp.Name(), JobRecordPath(dir)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// LoadJobRecord reads one record, rejecting unknown versions and records
// missing their identity.
func LoadJobRecord(dir string) (*JobRecord, error) {
	path := JobRecordPath(dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var rec JobRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", path, err)
	}
	if rec.Version != JobRecordVersion {
		return nil, fmt.Errorf("ckpt: %s: job record version %d not supported by this build (want %d)",
			path, rec.Version, JobRecordVersion)
	}
	if rec.ID == "" {
		return nil, fmt.Errorf("ckpt: %s: job record has no id", path)
	}
	if rec.Spec.Name == "" {
		return nil, fmt.Errorf("ckpt: %s: job record has no spec name", path)
	}
	if rec.Spec.Phylip == "" {
		return nil, fmt.Errorf("ckpt: %s: job record has no alignment", path)
	}
	return &rec, nil
}

// ScanJobRecords loads every job record under root (one subdirectory per
// job), in admission order (Seq, then ID). A missing root is an empty
// queue, not an error; a directory whose record is unreadable or corrupt
// is an error — silently skipping it would silently drop an acknowledged
// job.
func ScanJobRecords(root string) ([]*JobRecord, error) {
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var recs []*JobRecord
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rec, err := LoadJobRecord(filepath.Join(root, e.Name()))
		if err != nil {
			return nil, err
		}
		if rec.ID != e.Name() {
			return nil, fmt.Errorf("ckpt: %s: job record id %q does not match its directory",
				filepath.Join(root, e.Name()), rec.ID)
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Seq != recs[j].Seq {
			return recs[i].Seq < recs[j].Seq
		}
		return recs[i].ID < recs[j].ID
	})
	return recs, nil
}
