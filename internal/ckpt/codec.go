package ckpt

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"mpcgs/internal/core"
	"mpcgs/internal/gtree"
	"mpcgs/internal/newick"
	"mpcgs/internal/rng"
	"mpcgs/internal/tempering"
)

// --- scalar and array codecs -----------------------------------------------

// hexFloat renders f as a hexadecimal float literal: exact (every bit of
// the mantissa survives) and still greppable, unlike raw bit patterns.
// ±Inf and NaN render as their strconv spellings, which ParseFloat reads
// back.
func hexFloat(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }

func parseHexFloat(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("ckpt: bad float %q: %w", s, err)
	}
	return f, nil
}

// floatsToB64 packs a float slice as base64 of its little-endian IEEE-754
// bit patterns: exact for every value including ±Inf, and ~3x denser than
// decimal text for bulk traces.
func floatsToB64(xs []float64) string {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

func b64ToFloats(s string, want int) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("ckpt: bad float array: %w", err)
	}
	if len(buf) != 8*want {
		return nil, fmt.Errorf("ckpt: float array has %d bytes, want %d", len(buf), 8*want)
	}
	out := make([]float64, want)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// EncodeRNG converts an exported generator state to wire form.
func EncodeRNG(s rng.MTState) RNGState {
	buf := make([]byte, 4*len(s.Vec))
	for i, w := range s.Vec {
		binary.LittleEndian.PutUint32(buf[4*i:], w)
	}
	return RNGState{State: base64.StdEncoding.EncodeToString(buf), Index: s.Index}
}

// DecodeRNG converts a wire generator state back.
func DecodeRNG(w RNGState) (rng.MTState, error) {
	var s rng.MTState
	buf, err := base64.StdEncoding.DecodeString(w.State)
	if err != nil {
		return s, fmt.Errorf("ckpt: bad rng state: %w", err)
	}
	if len(buf) != 4*len(s.Vec) {
		return s, fmt.Errorf("ckpt: rng state has %d bytes, want %d", len(buf), 4*len(s.Vec))
	}
	for i := range s.Vec {
		s.Vec[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	s.Index = w.Index
	return s, nil
}

// --- genealogy codec --------------------------------------------------------

// EncodeTree renders a genealogy in wire form: a newick round-trip for the
// topology (tips keep their names; interior nodes are labelled with their
// arena index, which the proposal kernel's neighbourhood addressing makes
// part of the chain state) plus exact hexadecimal ages.
func EncodeTree(t *gtree.Tree) Tree {
	var conv func(i int) *newick.Node
	conv = func(i int) *newick.Node {
		nd := &newick.Node{}
		if t.IsTip(i) {
			nd.Name = t.Nodes[i].Name
		} else {
			nd.Name = "#" + strconv.Itoa(i)
			nd.Children = []*newick.Node{
				conv(t.Nodes[i].Child[0]),
				conv(t.Nodes[i].Child[1]),
			}
		}
		if p := t.Nodes[i].Parent; p != gtree.Nil {
			nd.Length = t.Nodes[p].Age - t.Nodes[i].Age
			nd.HasLength = true
		}
		return nd
	}
	w := Tree{Newick: conv(t.Root).String()}
	w.Ages = make([]string, t.NInterior())
	for k := 0; k < t.NInterior(); k++ {
		w.Ages[k] = hexFloat(t.Nodes[t.InteriorIndex(k)].Age)
	}
	w.Tips = append(w.Tips, t.TipNames()...)
	return w
}

// DecodeTree parses a wire genealogy back into an arena tree: the newick
// string supplies topology and node identities, the tip list maps leaf
// names to their arena indices, and the ages field overwrites every
// interior age with its exact value (the newick branch lengths are only a
// human-readable rendering). The result is fully validated.
func DecodeTree(w Tree) (*gtree.Tree, error) {
	n := len(w.Tips)
	if n < 2 {
		return nil, fmt.Errorf("ckpt: tree has %d tips, need at least 2", n)
	}
	if len(w.Ages) != n-1 {
		return nil, fmt.Errorf("ckpt: tree has %d ages for %d interior nodes", len(w.Ages), n-1)
	}
	root, err := newick.Parse(w.Newick)
	if err != nil {
		return nil, fmt.Errorf("ckpt: tree newick: %w", err)
	}
	tipIdx := make(map[string]int, n)
	for i, name := range w.Tips {
		if _, dup := tipIdx[name]; dup {
			return nil, fmt.Errorf("ckpt: duplicate tip name %q", name)
		}
		tipIdx[name] = i
	}
	t := gtree.New(n)
	used := make([]bool, 2*n-1)
	var build func(nd *newick.Node) (int, error)
	build = func(nd *newick.Node) (int, error) {
		var i int
		if nd.IsLeaf() {
			idx, ok := tipIdx[nd.Name]
			if !ok {
				return 0, fmt.Errorf("ckpt: tree leaf %q not in the tip list", nd.Name)
			}
			i = idx
			t.Nodes[i].Name = nd.Name
			t.Nodes[i].Age = 0
		} else {
			if len(nd.Children) != 2 {
				return 0, fmt.Errorf("ckpt: tree node %q has %d children, want 2", nd.Name, len(nd.Children))
			}
			k, ok := strings.CutPrefix(nd.Name, "#")
			if !ok {
				return 0, fmt.Errorf("ckpt: interior node label %q does not carry an arena index", nd.Name)
			}
			idx, err := strconv.Atoi(k)
			if err != nil || idx < n || idx >= 2*n-1 {
				return 0, fmt.Errorf("ckpt: interior node label %q is not a valid arena index", nd.Name)
			}
			i = idx
			age, err := parseHexFloat(w.Ages[i-n])
			if err != nil {
				return 0, err
			}
			t.Nodes[i].Age = age
			c0, err := build(nd.Children[0])
			if err != nil {
				return 0, err
			}
			c1, err := build(nd.Children[1])
			if err != nil {
				return 0, err
			}
			t.Nodes[i].Child = [2]int{c0, c1}
			t.Nodes[c0].Parent = i
			t.Nodes[c1].Parent = i
		}
		if used[i] {
			return 0, fmt.Errorf("ckpt: tree node index %d appears twice", i)
		}
		used[i] = true
		return i, nil
	}
	r, err := build(root)
	if err != nil {
		return nil, err
	}
	if t.IsTip(r) {
		return nil, fmt.Errorf("ckpt: tree root is a tip")
	}
	t.Root = r
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("ckpt: decoded tree invalid: %w", err)
	}
	return t, nil
}

// --- snapshot conversions ---------------------------------------------------

// EncodeChain converts a chain snapshot to wire form.
func EncodeChain(c core.ChainSnapshot) Chain {
	return Chain{Tree: EncodeTree(c.Tree), Beta: hexFloat(c.Beta), Serial: c.Serial}
}

// DecodeChain converts a wire chain back.
func DecodeChain(w Chain) (core.ChainSnapshot, error) {
	tree, err := DecodeTree(w.Tree)
	if err != nil {
		return core.ChainSnapshot{}, err
	}
	beta, err := parseHexFloat(w.Beta)
	if err != nil {
		return core.ChainSnapshot{}, err
	}
	return core.ChainSnapshot{Tree: tree, Beta: beta, Serial: w.Serial}, nil
}

// EncodeLadder converts a tempering controller state to wire form.
func EncodeLadder(s *tempering.State) *Ladder {
	if s == nil {
		return nil
	}
	w := &Ladder{
		Adapt:       s.Adapt,
		Window:      s.Window,
		Attempts:    append([]int64(nil), s.Attempts...),
		Accepts:     append([]int64(nil), s.Accepts...),
		EstAttempts: append([]int64(nil), s.EstAttempts...),
		EstAccepts:  append([]int64(nil), s.EstAccepts...),
		Adapts:      s.Adapts,
	}
	for _, b := range s.Betas {
		w.Betas = append(w.Betas, hexFloat(b))
	}
	for _, g := range s.Gaps {
		w.Gaps = append(w.Gaps, hexFloat(g))
	}
	for _, win := range s.Windows {
		w.Windows = append(w.Windows, base64.StdEncoding.EncodeToString(win.Outcomes))
	}
	return w
}

// DecodeLadder converts a wire ladder state back. Structural validation
// (rung counts, window capacities, monotone betas) is the controller's
// Restore's job; here only the encodings are checked.
func DecodeLadder(w *Ladder) (*tempering.State, error) {
	if w == nil {
		return nil, nil
	}
	s := &tempering.State{
		Adapt:       w.Adapt,
		Window:      w.Window,
		Attempts:    append([]int64(nil), w.Attempts...),
		Accepts:     append([]int64(nil), w.Accepts...),
		EstAttempts: append([]int64(nil), w.EstAttempts...),
		EstAccepts:  append([]int64(nil), w.EstAccepts...),
		Adapts:      w.Adapts,
	}
	for i, b := range w.Betas {
		f, err := parseHexFloat(b)
		if err != nil {
			return nil, fmt.Errorf("ckpt: ladder beta %d: %w", i, err)
		}
		s.Betas = append(s.Betas, f)
	}
	for i, g := range w.Gaps {
		f, err := parseHexFloat(g)
		if err != nil {
			return nil, fmt.Errorf("ckpt: ladder gap %d: %w", i, err)
		}
		s.Gaps = append(s.Gaps, f)
	}
	for i, win := range w.Windows {
		buf, err := base64.StdEncoding.DecodeString(win)
		if err != nil {
			return nil, fmt.Errorf("ckpt: ladder window %d: %w", i, err)
		}
		s.Windows = append(s.Windows, tempering.WindowState{Outcomes: buf})
	}
	return s, nil
}

// EncodeTrace converts a recorded trace to wire form. The per-draw age
// vectors all share one length; an empty trace encodes with NAges 0.
func EncodeTrace(t *core.TraceSnapshot) *Trace {
	if t == nil {
		return nil
	}
	nAges := 0
	if len(t.Ages) > 0 {
		nAges = len(t.Ages[0])
	}
	flat := make([]float64, 0, len(t.Ages)*nAges)
	for _, row := range t.Ages {
		flat = append(flat, row...)
	}
	return &Trace{
		N:      len(t.Stats),
		NAges:  nAges,
		Stats:  floatsToB64(t.Stats),
		Ages:   floatsToB64(flat),
		LogLik: floatsToB64(t.LogLik),
	}
}

// DecodeTrace converts a wire trace back.
func DecodeTrace(w *Trace) (*core.TraceSnapshot, error) {
	if w == nil {
		return nil, nil
	}
	if w.N < 0 || w.NAges < 0 {
		return nil, fmt.Errorf("ckpt: trace with negative dimensions (%d draws, %d ages)", w.N, w.NAges)
	}
	stats, err := b64ToFloats(w.Stats, w.N)
	if err != nil {
		return nil, fmt.Errorf("ckpt: trace stats: %w", err)
	}
	lls, err := b64ToFloats(w.LogLik, w.N)
	if err != nil {
		return nil, fmt.Errorf("ckpt: trace log-likelihoods: %w", err)
	}
	flat, err := b64ToFloats(w.Ages, w.N*w.NAges)
	if err != nil {
		return nil, fmt.Errorf("ckpt: trace ages: %w", err)
	}
	t := &core.TraceSnapshot{Stats: stats, LogLik: lls, Ages: make([][]float64, w.N)}
	for i := range t.Ages {
		t.Ages[i] = flat[i*w.NAges : (i+1)*w.NAges : (i+1)*w.NAges]
	}
	return t, nil
}

// EncodeTraceRef converts a sidecar trace reference to wire form.
func EncodeTraceRef(r *core.TraceRef) *TraceRef {
	if r == nil {
		return nil
	}
	return &TraceRef{
		Path:       r.Path,
		NAges:      r.NAges,
		Offset:     r.Offset,
		Draws:      r.Draws,
		PassOffset: r.PassOffset,
		PassDraws:  r.PassDraws,
		ESS:        hexFloat(r.ESS),
		RHat:       hexFloat(r.RHat),
		Stopped:    r.Stopped,
	}
}

// DecodeTraceRef converts a wire sidecar reference back. Offset
// consistency against the actual sidecar file is the recorder's restore
// job; here only the encodings and obvious invariants are checked.
func DecodeTraceRef(w *TraceRef) (*core.TraceRef, error) {
	if w == nil {
		return nil, nil
	}
	if w.NAges <= 0 {
		return nil, fmt.Errorf("ckpt: trace ref with %d ages per draw", w.NAges)
	}
	if w.Draws < 0 || w.PassDraws < 0 || w.PassDraws > w.Draws {
		return nil, fmt.Errorf("ckpt: trace ref draw counts %d/%d inconsistent", w.PassDraws, w.Draws)
	}
	if w.Offset < 0 || w.PassOffset < 0 || w.PassOffset > w.Offset {
		return nil, fmt.Errorf("ckpt: trace ref offsets %d/%d inconsistent", w.PassOffset, w.Offset)
	}
	r := &core.TraceRef{
		Path:       w.Path,
		NAges:      w.NAges,
		Offset:     w.Offset,
		Draws:      w.Draws,
		PassOffset: w.PassOffset,
		PassDraws:  w.PassDraws,
		Stopped:    w.Stopped,
	}
	var err error
	if w.ESS != "" {
		if r.ESS, err = parseHexFloat(w.ESS); err != nil {
			return nil, fmt.Errorf("ckpt: trace ref ess: %w", err)
		}
	}
	if w.RHat != "" {
		if r.RHat, err = parseHexFloat(w.RHat); err != nil {
			return nil, fmt.Errorf("ckpt: trace ref rhat: %w", err)
		}
	}
	return r, nil
}

// EncodeStep converts a stepper snapshot to wire form.
func EncodeStep(s *core.StepSnapshot) *Step {
	if s == nil {
		return nil
	}
	w := &Step{
		Sampler:         s.Sampler,
		Step:            s.Step,
		Cur:             s.Cur,
		Ladder:          EncodeLadder(s.Ladder),
		Trace:           EncodeTrace(s.Trace),
		TraceRef:        EncodeTraceRef(s.TraceRef),
		Accepted:        s.Accepted,
		Proposals:       s.Proposals,
		FailedProposals: s.FailedProposals,
		Swaps:           s.Swaps,
		SwapAttempts:    s.SwapAttempts,
	}
	if s.Sampler != "multichain" {
		host := EncodeRNG(s.Host)
		w.Host = &host
	}
	for _, st := range s.Streams {
		w.Streams = append(w.Streams, EncodeRNG(st))
	}
	for _, c := range s.Chains {
		w.Chains = append(w.Chains, EncodeChain(c))
	}
	for _, sub := range s.Subs {
		w.Subs = append(w.Subs, EncodeStep(sub))
	}
	return w
}

// DecodeStep converts a wire stepper snapshot back.
func DecodeStep(w *Step) (*core.StepSnapshot, error) {
	if w == nil {
		return nil, nil
	}
	s := &core.StepSnapshot{
		Sampler: w.Sampler,
		Step:    w.Step,
		Cur:     w.Cur,
		Counters: core.Counters{
			Accepted:        w.Accepted,
			Proposals:       w.Proposals,
			FailedProposals: w.FailedProposals,
			Swaps:           w.Swaps,
			SwapAttempts:    w.SwapAttempts,
		},
	}
	if w.Host != nil {
		host, err := DecodeRNG(*w.Host)
		if err != nil {
			return nil, err
		}
		s.Host = host
	}
	for i, st := range w.Streams {
		dec, err := DecodeRNG(st)
		if err != nil {
			return nil, fmt.Errorf("ckpt: stream %d: %w", i, err)
		}
		s.Streams = append(s.Streams, dec)
	}
	for i, c := range w.Chains {
		dec, err := DecodeChain(c)
		if err != nil {
			return nil, fmt.Errorf("ckpt: chain %d: %w", i, err)
		}
		s.Chains = append(s.Chains, dec)
	}
	ladder, err := DecodeLadder(w.Ladder)
	if err != nil {
		return nil, err
	}
	s.Ladder = ladder
	trace, err := DecodeTrace(w.Trace)
	if err != nil {
		return nil, err
	}
	s.Trace = trace
	ref, err := DecodeTraceRef(w.TraceRef)
	if err != nil {
		return nil, err
	}
	s.TraceRef = ref
	if s.Trace != nil && s.TraceRef != nil {
		return nil, fmt.Errorf("ckpt: step snapshot carries both an inline trace and a sidecar reference")
	}
	for i, sub := range w.Subs {
		dec, err := DecodeStep(sub)
		if err != nil {
			return nil, fmt.Errorf("ckpt: sub-chain %d: %w", i, err)
		}
		s.Subs = append(s.Subs, dec)
	}
	return s, nil
}

// EncodeHistory converts an EM history to wire form.
func EncodeHistory(hs []core.EMIteration) []EMIteration {
	out := make([]EMIteration, 0, len(hs))
	for _, h := range hs {
		out = append(out, EMIteration{
			ThetaIn:        hexFloat(h.ThetaIn),
			ThetaOut:       hexFloat(h.ThetaOut),
			AcceptanceRate: hexFloat(h.AcceptanceRate),
			MeanLogLik:     hexFloat(h.MeanLogLik),
		})
	}
	return out
}

// DecodeHistory converts a wire EM history back.
func DecodeHistory(ws []EMIteration) ([]core.EMIteration, error) {
	out := make([]core.EMIteration, 0, len(ws))
	for i, w := range ws {
		var h core.EMIteration
		var err error
		if h.ThetaIn, err = parseHexFloat(w.ThetaIn); err == nil {
			if h.ThetaOut, err = parseHexFloat(w.ThetaOut); err == nil {
				if h.AcceptanceRate, err = parseHexFloat(w.AcceptanceRate); err == nil {
					h.MeanLogLik, err = parseHexFloat(w.MeanLogLik)
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("ckpt: history entry %d: %w", i, err)
		}
		out = append(out, h)
	}
	return out, nil
}

// EncodeEM converts an EM snapshot to wire form.
func EncodeEM(s *core.EMSnapshot) *EMState {
	cur := EncodeTree(s.Cur)
	return &EMState{
		Theta:   hexFloat(s.Theta),
		It:      s.It,
		Cur:     &cur,
		History: EncodeHistory(s.History),
		Active:  EncodeStep(s.Active),
	}
}

// DecodeEM converts a wire EM snapshot back.
func DecodeEM(w *EMState) (*core.EMSnapshot, error) {
	if w == nil {
		return nil, fmt.Errorf("ckpt: no EM state")
	}
	theta, err := parseHexFloat(w.Theta)
	if err != nil {
		return nil, err
	}
	if w.Cur == nil {
		return nil, fmt.Errorf("ckpt: EM state has no chain tree")
	}
	cur, err := DecodeTree(*w.Cur)
	if err != nil {
		return nil, err
	}
	history, err := DecodeHistory(w.History)
	if err != nil {
		return nil, err
	}
	active, err := DecodeStep(w.Active)
	if err != nil {
		return nil, err
	}
	return &core.EMSnapshot{Theta: theta, It: w.It, Cur: cur, History: history, Active: active}, nil
}
