// Package ckpt is the checkpoint/restore subsystem: a versioned on-disk
// snapshot format for runs of the sampler, plus the encode/decode plumbing
// between the wire format and the live snapshot types of internal/core.
//
// # What a checkpoint is
//
// A checkpoint captures a batch of estimation jobs at between-steps
// boundaries — the only points where a run's state is consistent — so a
// killed process can resume and produce traces bit-identical to the
// uninterrupted run. A single standalone estimation checkpoints as a batch
// of one job; the file format does not distinguish the two.
//
// Only non-derivable state is stored: tree topology and exact node ages,
// every PRNG state (the full 624-word Mersenne Twister vectors), the
// recorded trace so far, counters, and the EM loop position. Everything
// else — conditional-likelihood caches, sufficient statistics, age
// buffers — is a pure function of that state and is rebuilt on restore.
//
// # Wire format
//
// The file is a single JSON document, written atomically (temp file +
// rename) so a crash mid-write never corrupts an existing checkpoint. It
// leads with a format version; Load rejects versions this build does not
// understand instead of guessing.
//
// Exactness is non-negotiable: resumed chains must draw identical floats.
// Genealogies travel as a newick round-trip (human-readable topology, with
// interior labels carrying the node arena indices the proposal kernel's
// target-picking depends on) paired with exact hexadecimal float ages;
// bulk float arrays (traces) travel as base64 of their IEEE-754 bit
// patterns; scalar floats that feed computation (θ, β) travel as
// hexadecimal float literals. JSON's shortest-decimal floats are kept only
// for reporting-grade history fields.
package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// FormatVersion is the checkpoint format this build writes.
//
// Version history:
//
//	1 — initial format (PR 4).
//	2 — heated snapshots carry the temperature-ladder controller state
//	    (adapted β schedule, per-pair swap windows, adaptation clock),
//	    which adaptive MC³ makes runtime state.
//	3 — step snapshots of spilling runs carry a sidecar trace reference
//	    (trace_ref: durable offset and draw counts into the append-only
//	    trace file) instead of the inline trace, making checkpoint size
//	    independent of how many draws the run has recorded.
//
// Load accepts MinFormatVersion through FormatVersion: a version-1 file
// simply carries no ladder state, which is fine for non-adaptive runs
// (their ladder is recomputed exactly on restore) and rejected — at
// restore time, with a clear error — for adaptive ones. Version-1 and
// version-2 files carry inline traces, which restore replays into
// whatever recorder mode the resuming run is configured with.
const FormatVersion = 3

// MinFormatVersion is the oldest checkpoint format this build still
// loads.
const MinFormatVersion = 1

// FileName is the checkpoint file inside a checkpoint directory.
const FileName = "batch.json"

// Batch is the on-disk checkpoint of a whole batch: one entry per job,
// each either finished (its result is carried so a resume can skip the
// work and still report it) or paused (a resumable EM snapshot).
type Batch struct {
	Version int        `json:"version"`
	Jobs    []BatchJob `json:"jobs"`
}

// Job status values.
const (
	// StatusPaused marks a job interrupted at a step boundary; EM holds
	// its resumable state.
	StatusPaused = "paused"
	// StatusDone marks a finished job; Theta/History/Steps hold its
	// result and a resume skips it.
	StatusDone = "done"
	// StatusFailed marks a job that ended in an error; a resume reports
	// the recorded error without re-running it.
	StatusFailed = "failed"
)

// BatchJob is one job's entry in a batch checkpoint.
type BatchJob struct {
	Name string `json:"name"`
	// Fingerprint hashes the job's spec and alignment; restore refuses to
	// apply a snapshot to a job whose manifest entry changed since it was
	// taken.
	Fingerprint string `json:"fingerprint"`
	Status      string `json:"status"`
	// Steps counts sampler transitions driven so far (informational).
	Steps int `json:"steps,omitempty"`
	// Theta and History carry a finished job's result.
	Theta   string        `json:"theta,omitempty"`
	History []EMIteration `json:"history,omitempty"`
	// Error carries a failed job's error text.
	Error string `json:"error,omitempty"`
	// EM is a paused job's resumable state.
	EM *EMState `json:"em,omitempty"`
}

// EMIteration is one EM round in wire form. All four fields are
// hexadecimal floats: ThetaIn/ThetaOut round-trip into the resumed loop's
// driving value and MeanLogLik may legitimately be -Inf, which plain JSON
// numbers cannot carry.
type EMIteration struct {
	ThetaIn        string `json:"theta_in"`
	ThetaOut       string `json:"theta_out"`
	AcceptanceRate string `json:"acceptance_rate"`
	MeanLogLik     string `json:"mean_loglik"`
}

// EMState is the wire form of core.EMSnapshot.
type EMState struct {
	Theta   string        `json:"theta"` // hex float
	It      int           `json:"it"`
	Cur     *Tree         `json:"cur"`
	History []EMIteration `json:"history,omitempty"`
	Active  *Step         `json:"active,omitempty"`
}

// Step is the wire form of core.StepSnapshot.
type Step struct {
	Sampler string     `json:"sampler"`
	Step    int        `json:"step"`
	Cur     int        `json:"cur,omitempty"`
	Host    *RNGState  `json:"host,omitempty"`
	Streams []RNGState `json:"streams,omitempty"`
	Chains  []Chain    `json:"chains,omitempty"`
	Ladder  *Ladder    `json:"ladder,omitempty"`
	Trace   *Trace     `json:"trace,omitempty"`
	// TraceRef replaces Trace for spilling runs (format version 3): the
	// draws live in the append-only sidecar file and the snapshot
	// carries only the durable offsets locating them. At most one of
	// Trace and TraceRef is set.
	TraceRef *TraceRef `json:"trace_ref,omitempty"`

	Accepted        int `json:"accepted,omitempty"`
	Proposals       int `json:"proposals,omitempty"`
	FailedProposals int `json:"failed_proposals,omitempty"`
	Swaps           int `json:"swaps,omitempty"`
	SwapAttempts    int `json:"swap_attempts,omitempty"`

	Subs []*Step `json:"subs,omitempty"`
}

// Chain is the wire form of core.ChainSnapshot.
type Chain struct {
	Tree   Tree   `json:"tree"`
	Beta   string `json:"beta"` // hex float
	Serial bool   `json:"serial,omitempty"`
}

// Ladder is the wire form of tempering.State: the temperature-ladder
// controller's runtime state carried by heated snapshots since format
// version 2. Betas and gaps are hexadecimal floats (the schedule must
// round-trip exactly for bit-identical resumes); each pair's sliding
// window travels as base64 of its 0/1 outcome bytes, oldest first.
type Ladder struct {
	Adapt       bool     `json:"adapt,omitempty"`
	Window      int      `json:"window"`
	Betas       []string `json:"betas"`
	Gaps        []string `json:"gaps,omitempty"`
	Attempts    []int64  `json:"attempts,omitempty"`
	Accepts     []int64  `json:"accepts,omitempty"`
	EstAttempts []int64  `json:"est_attempts,omitempty"`
	EstAccepts  []int64  `json:"est_accepts,omitempty"`
	Windows     []string `json:"windows,omitempty"`
	Adapts      int64    `json:"adapts,omitempty"`
}

// Tree is a genealogy in wire form: a newick rendering of the topology
// (tips by name, interior nodes labelled #<arena-index> so node identities
// survive the round-trip — the proposal kernel addresses neighbourhoods by
// arena index) plus exact hexadecimal ages for every interior node in
// arena order, and the tip names in arena order. Branch lengths in the
// newick string are decimal renderings for human eyes; the ages field is
// authoritative on restore.
type Tree struct {
	Newick string   `json:"newick"`
	Ages   []string `json:"ages"`
	Tips   []string `json:"tips"`
}

// RNGState is the wire form of rng.MTState: the 624-word state vector as
// base64 of its little-endian bytes, plus the read index.
type RNGState struct {
	State string `json:"state"`
	Index int    `json:"index"`
}

// Trace is a recorded trace in wire form: base64-encoded IEEE-754 bit
// patterns, with the per-draw age rows flattened row-major.
type Trace struct {
	N      int    `json:"n"`
	NAges  int    `json:"n_ages"`
	Stats  string `json:"stats"`
	Ages   string `json:"ages"`
	LogLik string `json:"loglik"`
}

// TraceRef is the wire form of core.TraceRef: a reference into the
// append-only trace sidecar instead of an inline copy of the draws.
// Offsets are bytes, not draws; both always land on durable frame
// boundaries (the recorder flushes before snapshotting). ESS and RHat
// are hexadecimal floats — RHat is legitimately NaN before the online
// diagnostics have enough batches, which plain JSON numbers cannot
// carry.
type TraceRef struct {
	Path       string `json:"path,omitempty"`
	NAges      int    `json:"n_ages"`
	Offset     int64  `json:"offset"`
	Draws      int    `json:"draws"`
	PassOffset int64  `json:"pass_offset"`
	PassDraws  int    `json:"pass_draws"`
	ESS        string `json:"ess,omitempty"`
	RHat       string `json:"rhat,omitempty"`
	Stopped    bool   `json:"stopped,omitempty"`
}

// Path returns the checkpoint file path inside dir.
func Path(dir string) string { return filepath.Join(dir, FileName) }

// Save writes the batch checkpoint into dir atomically: the document is
// marshalled to a temp file in the same directory and renamed over the
// previous checkpoint, so readers see either the old snapshot or the new
// one, never a torn write.
func Save(dir string, b *Batch) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	b.Version = FormatVersion
	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".batch-*.tmp")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp.Name(), Path(dir)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// Load reads the batch checkpoint from dir, rejecting unknown format
// versions before decoding anything else.
func Load(dir string) (*Batch, error) {
	raw, err := os.ReadFile(Path(dir))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", Path(dir), err)
	}
	if probe.Version < MinFormatVersion || probe.Version > FormatVersion {
		return nil, fmt.Errorf("ckpt: %s: format version %d not supported by this build (want %d..%d)",
			Path(dir), probe.Version, MinFormatVersion, FormatVersion)
	}
	var b Batch
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", Path(dir), err)
	}
	for i, j := range b.Jobs {
		if j.Name == "" {
			return nil, fmt.Errorf("ckpt: %s: job %d has no name", Path(dir), i)
		}
		switch j.Status {
		case StatusPaused:
			if j.EM == nil {
				return nil, fmt.Errorf("ckpt: %s: paused job %q has no EM state", Path(dir), j.Name)
			}
		case StatusDone, StatusFailed:
		default:
			return nil, fmt.Errorf("ckpt: %s: job %q has unknown status %q", Path(dir), j.Name, j.Status)
		}
	}
	return &b, nil
}
