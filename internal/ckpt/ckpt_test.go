package ckpt

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

// fixtureTree simulates a random coalescent genealogy whose ages exercise
// the full mantissa.
func fixtureTree(t *testing.T, n int, seed uint64) *gtree.Tree {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = "seq" + string(rune('A'+i))
	}
	tree, err := gtree.RandomCoalescent(names, 1.0, rng.NewMT19937(uint32(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestTreeRoundTripExact: the newick-based tree codec preserves topology,
// node arena indices and bit-exact ages.
func TestTreeRoundTripExact(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		tree := fixtureTree(t, 7, seed)
		got, err := DecodeTree(EncodeTree(tree))
		if err != nil {
			t.Fatal(err)
		}
		if got.Root != tree.Root {
			t.Fatalf("root %d != %d", got.Root, tree.Root)
		}
		for i := range tree.Nodes {
			w, g := tree.Nodes[i], got.Nodes[i]
			if w.Parent != g.Parent || w.Child != g.Child || w.Name != g.Name {
				t.Fatalf("node %d links differ: %+v vs %+v", i, g, w)
			}
			if math.Float64bits(w.Age) != math.Float64bits(g.Age) {
				t.Fatalf("node %d age not bit-identical: %x vs %x",
					i, math.Float64bits(g.Age), math.Float64bits(w.Age))
			}
		}
	}
}

// TestTreeRoundTripAwkwardNames: tip names requiring newick quoting
// survive the round-trip.
func TestTreeRoundTripAwkwardNames(t *testing.T) {
	names := []string{"plain", "with space", "par(en", "quo'te", "semi;colon"}
	tree, err := gtree.RandomCoalescent(names, 1.0, rng.NewMT19937(42))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTree(EncodeTree(tree))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < got.NTips(); i++ {
		if got.Nodes[i].Name != tree.Nodes[i].Name {
			t.Fatalf("tip %d name %q != %q", i, got.Nodes[i].Name, tree.Nodes[i].Name)
		}
	}
}

// TestDecodeTreeRejectsCorruption: a decoded tree is validated, and
// structural lies in the wire form are caught.
func TestDecodeTreeRejectsCorruption(t *testing.T) {
	tree := fixtureTree(t, 5, 3)
	base := EncodeTree(tree)

	bad := base
	bad.Ages = base.Ages[:len(base.Ages)-1]
	if _, err := DecodeTree(bad); err == nil {
		t.Error("short ages accepted")
	}
	bad = base
	bad.Tips = append([]string{}, base.Tips...)
	bad.Tips[0] = base.Tips[1] // duplicate
	if _, err := DecodeTree(bad); err == nil {
		t.Error("duplicate tip names accepted")
	}
	bad = base
	bad.Newick = strings.Replace(base.Newick, "#", "!", 1)
	if _, err := DecodeTree(bad); err == nil {
		t.Error("interior node without an arena index accepted")
	}
	bad = base
	bad.Ages = append([]string{}, base.Ages...)
	bad.Ages[len(bad.Ages)-1] = "-0x1p-1" // negative age breaks validation
	if _, err := DecodeTree(bad); err == nil {
		t.Error("invalid ages accepted")
	}
}

// TestRNGRoundTrip: a generator travels through the wire format and keeps
// drawing the identical sequence.
func TestRNGRoundTrip(t *testing.T) {
	m := rng.NewMT19937(7)
	for i := 0; i < 1234; i++ {
		m.Uint32()
	}
	dec, err := DecodeRNG(EncodeRNG(m.State()))
	if err != nil {
		t.Fatal(err)
	}
	r := &rng.MT19937{}
	if err := r.SetState(dec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if r.Uint32() != m.Uint32() {
			t.Fatalf("restored stream diverged at output %d", i)
		}
	}
}

// TestTraceRoundTripExact covers the bulk float codec, including values
// plain JSON numbers cannot carry.
func TestTraceRoundTripExact(t *testing.T) {
	trace := &core.TraceSnapshot{
		Stats:  []float64{1.0 / 3.0, math.Pi, 0, math.MaxFloat64},
		LogLik: []float64{-12.3456789, math.Inf(-1), -0.0, 5e-324},
		Ages: [][]float64{
			{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}, {0.7, 0.8},
		},
	}
	got, err := DecodeTrace(EncodeTrace(trace))
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace.Stats {
		if math.Float64bits(got.Stats[i]) != math.Float64bits(trace.Stats[i]) ||
			math.Float64bits(got.LogLik[i]) != math.Float64bits(trace.LogLik[i]) {
			t.Fatalf("draw %d not bit-identical", i)
		}
		for k := range trace.Ages[i] {
			if got.Ages[i][k] != trace.Ages[i][k] {
				t.Fatalf("draw %d age %d differs", i, k)
			}
		}
	}
	if dec, err := DecodeTrace(nil); err != nil || dec != nil {
		t.Fatalf("nil trace round-trip: %v, %v", dec, err)
	}
}

// TestStepSnapshotWireRoundTrip runs a real sampler, snapshots it, pushes
// the snapshot through JSON, and requires the resumed run to be
// bit-identical — the end-to-end statement that the wire format loses
// nothing a chain needs.
func TestStepSnapshotWireRoundTrip(t *testing.T) {
	dev := device.Serial()
	aln, _, err := seqgen.SimulateData(6, 60, 1.0, 77)
	if err != nil {
		t.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		t.Fatal(err)
	}
	init, err := core.InitialTree(aln, 1.0, 78)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.ChainConfig{Theta: 1.0, Burnin: 10, Samples: 80, Seed: 79}

	for _, tc := range []struct {
		name string
		s    core.StepSampler
	}{
		{"mh", core.NewMH(eval)},
		{"gmh", core.NewGMH(eval, dev, 3)},
		{"heated", core.NewHeated(eval, dev, 2)},
		{"multichain", core.NewMultiChain(eval, dev, 2)},
	} {
		want, err := tc.s.Run(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		run, err := tc.s.Start(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 13; i++ {
			if err := run.Step(); err != nil {
				t.Fatal(err)
			}
		}
		snap, snapErr := run.(core.SnapshotStepper).Snapshot()
		if snapErr != nil {
			t.Fatal(snapErr)
		}
		data, err := json.Marshal(EncodeStep(snap))
		if err != nil {
			t.Fatal(err)
		}
		var wire Step
		if err := json.Unmarshal(data, &wire); err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeStep(&wire)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := tc.s.Start(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.(core.SnapshotStepper).Restore(decoded); err != nil {
			t.Fatal(err)
		}
		for !resumed.Done() {
			if err := resumed.Step(); err != nil {
				t.Fatal(err)
			}
		}
		got, err := resumed.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Samples.Stats) != len(want.Samples.Stats) {
			t.Fatalf("%s: trace lengths differ", tc.name)
		}
		for i := range want.Samples.Stats {
			if want.Samples.Stats[i] != got.Samples.Stats[i] ||
				want.Samples.LogLik[i] != got.Samples.LogLik[i] {
				t.Fatalf("%s: draw %d differs after wire round-trip", tc.name, i)
			}
		}
	}
}

// TestAdaptiveLadderWireRoundTrip is the format-v2 statement: an
// adaptive heated run's snapshot — whose ladder is mid-adaptation, with
// partially filled windows and a moved β schedule — survives the JSON
// wire bit-for-bit, so the resumed run finishes identical to the
// uninterrupted one.
func TestAdaptiveLadderWireRoundTrip(t *testing.T) {
	dev := device.Serial()
	aln, _, err := seqgen.SimulateData(6, 60, 1.0, 87)
	if err != nil {
		t.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		t.Fatal(err)
	}
	init, err := core.InitialTree(aln, 1.0, 88)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.ChainConfig{Theta: 1.0, Burnin: 50, Samples: 80, Seed: 89}
	h := core.NewHeated(eval, dev, 3)
	h.Adapt = true
	h.MaxTemp = 32
	h.SwapWindow = 8

	want, err := h.Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Kill mid-burn-in (ladder still adapting) and post-burn-in (frozen).
	for _, kill := range []int{30, 70} {
		run, err := h.Start(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < kill; i++ {
			if err := run.Step(); err != nil {
				t.Fatal(err)
			}
		}
		snap, snapErr := run.(core.SnapshotStepper).Snapshot()
		if snapErr != nil {
			t.Fatal(snapErr)
		}
		if snap.Ladder == nil {
			t.Fatal("heated snapshot carries no ladder state")
		}
		data, err := json.Marshal(EncodeStep(snap))
		if err != nil {
			t.Fatal(err)
		}
		var wire Step
		if err := json.Unmarshal(data, &wire); err != nil {
			t.Fatal(err)
		}
		if wire.Ladder == nil || !wire.Ladder.Adapt {
			t.Fatal("wire snapshot lost the ladder")
		}
		decoded, err := DecodeStep(&wire)
		if err != nil {
			t.Fatal(err)
		}
		// The decoded ladder state must be exactly the exported one.
		if len(decoded.Ladder.Betas) != len(snap.Ladder.Betas) {
			t.Fatal("ladder rung count changed on the wire")
		}
		for i := range snap.Ladder.Betas {
			if decoded.Ladder.Betas[i] != snap.Ladder.Betas[i] {
				t.Fatalf("ladder beta %d changed on the wire: %v vs %v",
					i, decoded.Ladder.Betas[i], snap.Ladder.Betas[i])
			}
		}
		for i := range snap.Ladder.Gaps {
			if decoded.Ladder.Gaps[i] != snap.Ladder.Gaps[i] {
				t.Fatalf("ladder gap %d changed on the wire", i)
			}
		}
		resumed, err := h.Start(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.(core.SnapshotStepper).Restore(decoded); err != nil {
			t.Fatal(err)
		}
		for !resumed.Done() {
			if err := resumed.Step(); err != nil {
				t.Fatal(err)
			}
		}
		got, err := resumed.Finish()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Samples.Stats {
			if want.Samples.Stats[i] != got.Samples.Stats[i] ||
				want.Samples.LogLik[i] != got.Samples.LogLik[i] {
				t.Fatalf("kill=%d: draw %d differs after wire round-trip", kill, i)
			}
		}
		for i := range want.Betas {
			if want.Betas[i] != got.Betas[i] {
				t.Fatalf("kill=%d: final adapted beta %d differs", kill, i)
			}
		}
		for i := range want.PairSwapAttempts {
			if want.PairSwapAttempts[i] != got.PairSwapAttempts[i] ||
				want.PairSwaps[i] != got.PairSwaps[i] ||
				want.EstPairSwapAttempts[i] != got.EstPairSwapAttempts[i] ||
				want.EstPairSwaps[i] != got.EstPairSwaps[i] {
				t.Fatalf("kill=%d: pair %d swap counters differ", kill, i)
			}
		}
	}
}

// TestSaveLoad covers the file layer: atomic write, load, and version
// rejection.
func TestSaveLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	b := &Batch{Jobs: []BatchJob{
		{Name: "a", Fingerprint: "f1", Status: StatusDone, Theta: hexFloat(1.5), Steps: 10},
		{Name: "b", Fingerprint: "f2", Status: StatusFailed, Error: "boom"},
	}}
	if err := Save(dir, b); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != FormatVersion || len(got.Jobs) != 2 || got.Jobs[0].Name != "a" || got.Jobs[1].Error != "boom" {
		t.Fatalf("loaded %+v", got)
	}
	// No leftover temp files after the atomic rename.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != FileName {
		t.Fatalf("directory contents: %v", entries)
	}
}

func TestLoadRejectsUnknownVersion(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(Path(dir), []byte(`{"version": 999, "jobs": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "version 999") {
		t.Fatalf("unknown version not rejected: %v", err)
	}
	if err := os.WriteFile(Path(dir), []byte(`{"version": 0, "jobs": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("version 0 not rejected")
	}
}

// TestLoadAcceptsVersion1 pins backward compatibility: a checkpoint
// written by a format-v1 build (no ladder state anywhere) still loads,
// so pre-adaptive-MC³ checkpoints of non-adaptive runs stay resumable.
func TestLoadAcceptsVersion1(t *testing.T) {
	dir := t.TempDir()
	doc := `{
 "version": 1,
 "jobs": [
  {"name": "old-done", "fingerprint": "fp1", "status": "done", "steps": 42, "theta": "0x1.8p+00"},
  {"name": "old-paused", "fingerprint": "fp2", "status": "paused", "steps": 7,
   "em": {"theta": "0x1p+00", "it": 0, "cur": {"newick": "(a:1,b:1)#2:0;", "ages": ["0x1p+00"], "tips": ["a","b"]}}}
 ]
}`
	if err := os.WriteFile(Path(dir), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := Load(dir)
	if err != nil {
		t.Fatalf("version-1 checkpoint rejected: %v", err)
	}
	if b.Version != 1 || len(b.Jobs) != 2 {
		t.Fatalf("loaded %+v", b)
	}
	if b.Jobs[1].EM == nil || b.Jobs[1].EM.Active != nil {
		t.Fatalf("paused v1 job decoded wrong: %+v", b.Jobs[1])
	}
	// A v1 EM state decodes into a core snapshot with no ladder.
	em, err := DecodeEM(b.Jobs[1].EM)
	if err != nil {
		t.Fatal(err)
	}
	if em.Active != nil {
		t.Fatalf("v1 EM state grew an active pass: %+v", em)
	}
}

func TestLoadRejectsMalformedJobs(t *testing.T) {
	dir := t.TempDir()
	write := func(body string) {
		t.Helper()
		if err := os.WriteFile(Path(dir), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(`{"version": 1, "jobs": [{"name": "", "status": "done"}]}`)
	if _, err := Load(dir); err == nil {
		t.Error("nameless job accepted")
	}
	write(`{"version": 1, "jobs": [{"name": "x", "status": "parked"}]}`)
	if _, err := Load(dir); err == nil {
		t.Error("unknown status accepted")
	}
	write(`{"version": 1, "jobs": [{"name": "x", "status": "paused"}]}`)
	if _, err := Load(dir); err == nil {
		t.Error("paused job without EM state accepted")
	}
}
