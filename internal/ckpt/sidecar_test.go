package ckpt

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpcgs/internal/core"
	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

// spillFixture builds a sampler and starting tree for the sidecar wire
// tests.
func spillFixture(t *testing.T, seed uint64) (core.StepSampler, *gtree.Tree) {
	t.Helper()
	dev := device.Serial()
	aln, _, err := seqgen.SimulateData(6, 60, 1.0, seed)
	if err != nil {
		t.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		t.Fatal(err)
	}
	init, err := core.InitialTree(aln, 1.0, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewGMH(eval, dev, 3), init
}

// TestTraceRefWireRoundTrip is the format-v3 statement: a spilling run's
// snapshot carries a sidecar reference instead of the trace, the
// reference survives the JSON wire bit-for-bit, and the resumed run —
// replaying the sidecar through the reference — finishes identical to
// the uninterrupted one.
func TestTraceRefWireRoundTrip(t *testing.T) {
	s, init := spillFixture(t, 511)
	dir := t.TempDir()
	cfg := core.ChainConfig{Theta: 1.0, Burnin: 10, Samples: 80, Seed: 512,
		Trace: &core.TraceSpec{Path: filepath.Join(dir, "ref.trace")}}

	refCfg := cfg
	refCfg.Trace = &core.TraceSpec{Path: filepath.Join(dir, "uninterrupted.trace")}
	want, err := s.Run(init, refCfg)
	if err != nil {
		t.Fatal(err)
	}

	run, err := s.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := run.(core.SnapshotStepper).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.TraceRef == nil {
		t.Fatal("spilling snapshot carries no sidecar reference")
	}
	if snap.Trace != nil {
		t.Fatal("spilling snapshot still carries an inline trace")
	}

	data, err := json.Marshal(EncodeStep(snap))
	if err != nil {
		t.Fatal(err)
	}
	var wire Step
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeStep(&wire)
	if err != nil {
		t.Fatal(err)
	}
	got, wantRef := decoded.TraceRef, snap.TraceRef
	if got.Path != wantRef.Path || got.NAges != wantRef.NAges ||
		got.Offset != wantRef.Offset || got.Draws != wantRef.Draws ||
		got.PassOffset != wantRef.PassOffset || got.PassDraws != wantRef.PassDraws ||
		got.Stopped != wantRef.Stopped {
		t.Fatalf("trace ref changed on the wire: %+v vs %+v", got, wantRef)
	}
	if math.Float64bits(got.ESS) != math.Float64bits(wantRef.ESS) ||
		math.Float64bits(got.RHat) != math.Float64bits(wantRef.RHat) {
		t.Fatalf("trace ref diagnostics not bit-identical: %x/%x vs %x/%x",
			math.Float64bits(got.ESS), math.Float64bits(got.RHat),
			math.Float64bits(wantRef.ESS), math.Float64bits(wantRef.RHat))
	}

	resumed, err := s.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.(core.SnapshotStepper).Restore(decoded); err != nil {
		t.Fatal(err)
	}
	for !resumed.Done() {
		if err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := resumed.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples.Stats) != len(want.Samples.Stats) {
		t.Fatalf("trace lengths differ: %d vs %d", len(res.Samples.Stats), len(want.Samples.Stats))
	}
	for i := range want.Samples.Stats {
		if want.Samples.Stats[i] != res.Samples.Stats[i] ||
			want.Samples.LogLik[i] != res.Samples.LogLik[i] {
			t.Fatalf("draw %d differs after sidecar wire round-trip", i)
		}
	}
}

// TestCheckpointSizeIndependentOfSamples pins the tentpole claim: with
// the trace offloaded to the sidecar, the encoded snapshot does not grow
// with the number of recorded draws — checkpoints are O(interval), not
// O(samples).
func TestCheckpointSizeIndependentOfSamples(t *testing.T) {
	s, init := spillFixture(t, 521)
	cfg := core.ChainConfig{Theta: 1.0, Burnin: 20, Samples: 2000, Seed: 522,
		Trace: &core.TraceSpec{Path: filepath.Join(t.TempDir(), "size.trace")}}
	run, err := s.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizeAt := func(steps int) int {
		t.Helper()
		for i := 0; i < steps; i++ {
			if err := run.Step(); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := run.(core.SnapshotStepper).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(EncodeStep(snap))
		if err != nil {
			t.Fatal(err)
		}
		return len(data)
	}
	early := sizeAt(30)
	late := sizeAt(1200)
	// Only counter digits and the sidecar offset may get longer; any
	// real growth means trace data leaked back into the snapshot.
	if slack := 64; late > early+slack {
		t.Fatalf("checkpoint grew with the run: %d bytes at step 30, %d at step 1230", early, late)
	}
}

// TestDecodeStepRejectsTraceAndRef: a snapshot claiming both an inline
// trace and a sidecar reference is ambiguous and must not decode.
func TestDecodeStepRejectsTraceAndRef(t *testing.T) {
	s, init := spillFixture(t, 531)
	cfg := core.ChainConfig{Theta: 1.0, Burnin: 10, Samples: 60, Seed: 532}
	run, err := s.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := run.(core.SnapshotStepper).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wire := EncodeStep(snap)
	if wire.Trace == nil {
		t.Fatal("in-memory snapshot carries no inline trace")
	}
	wire.TraceRef = &TraceRef{Path: "x.trace", NAges: 5, Offset: 16, Draws: 1}
	if _, err := DecodeStep(wire); err == nil ||
		!strings.Contains(err.Error(), "both an inline trace and a sidecar reference") {
		t.Fatalf("dual trace accepted: %v", err)
	}
}

// TestDecodeTraceRefValidation: structural lies in a wire sidecar
// reference are caught at decode time.
func TestDecodeTraceRefValidation(t *testing.T) {
	good := TraceRef{Path: "x.trace", NAges: 5, Offset: 96, Draws: 2,
		PassOffset: 16, PassDraws: 1, ESS: "0x1.9p+06", RHat: "0x1.02p+00"}
	if r, err := DecodeTraceRef(nil); r != nil || err != nil {
		t.Fatalf("nil ref round-trip: %v, %v", r, err)
	}
	if r, err := DecodeTraceRef(&good); err != nil || r.ESS != 100 {
		t.Fatalf("valid ref rejected: %+v, %v", r, err)
	}
	for name, mutate := range map[string]func(*TraceRef){
		"zero ages":             func(w *TraceRef) { w.NAges = 0 },
		"negative draws":        func(w *TraceRef) { w.Draws = -1 },
		"pass draws over total": func(w *TraceRef) { w.PassDraws = w.Draws + 1 },
		"negative offset":       func(w *TraceRef) { w.Offset = -1 },
		"pass offset past end":  func(w *TraceRef) { w.PassOffset = w.Offset + 1 },
		"malformed ess":         func(w *TraceRef) { w.ESS = "not-a-float" },
		"malformed rhat":        func(w *TraceRef) { w.RHat = "0x1.zzp+00" },
	} {
		bad := good
		mutate(&bad)
		if _, err := DecodeTraceRef(&bad); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestLoadAcceptsVersion2 pins backward compatibility one version back:
// a checkpoint written by a format-v2 build (ladder state, inline
// traces, no sidecar references) still loads, so pre-sidecar
// checkpoints stay resumable.
func TestLoadAcceptsVersion2(t *testing.T) {
	dir := t.TempDir()
	doc := `{
 "version": 2,
 "jobs": [
  {"name": "v2-done", "fingerprint": "fp1", "status": "done", "steps": 42, "theta": "0x1.8p+00"},
  {"name": "v2-paused", "fingerprint": "fp2", "status": "paused", "steps": 7,
   "em": {"theta": "0x1p+00", "it": 0, "cur": {"newick": "(a:1,b:1)#2:0;", "ages": ["0x1p+00"], "tips": ["a","b"]}}}
 ]
}`
	if err := os.WriteFile(Path(dir), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := Load(dir)
	if err != nil {
		t.Fatalf("version-2 checkpoint rejected: %v", err)
	}
	if b.Version != 2 || len(b.Jobs) != 2 {
		t.Fatalf("loaded %+v", b)
	}
	em, err := DecodeEM(b.Jobs[1].EM)
	if err != nil {
		t.Fatal(err)
	}
	if em.Active != nil {
		t.Fatalf("v2 EM state grew an active pass: %+v", em)
	}
}
