// Package bitseq stores nucleotide sequences as 2-bit codes packed into
// 64-bit words.
//
// This mirrors the paper's constant-memory layout (§5.1.3): four nucleotide
// states fit in two bits, so 32 positions pack into one 8-byte word and a
// 32-thread warp can service itself from a single word read. Positions
// whose input character is not one of A/C/G/T (gaps, Ns, ambiguity codes)
// are tracked in a side bitmask and treated as missing data by the
// likelihood kernel.
package bitseq

import "fmt"

// Base is a 2-bit nucleotide code.
type Base uint8

// Nucleotide codes, in the A, C, G, T order used throughout the sampler.
const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3
)

// NumBases is the alphabet size.
const NumBases = 4

// PerWord is the number of 2-bit codes in one packed word.
const PerWord = 32

// Byte returns the upper-case character for the base.
func (b Base) Byte() byte {
	return "ACGT"[b&3]
}

// String returns the single-letter name of the base.
func (b Base) String() string { return string(b.Byte()) }

// FromByte converts an input character to a base code. The ok result is
// false for any character outside A/C/G/T (case-insensitive), including
// gaps, N and IUPAC ambiguity codes, which callers treat as missing data.
func FromByte(c byte) (Base, bool) {
	switch c {
	case 'A', 'a':
		return A, true
	case 'C', 'c':
		return C, true
	case 'G', 'g':
		return G, true
	case 'T', 't', 'U', 'u':
		return T, true
	default:
		return 0, false
	}
}

// Seq is an immutable-length packed nucleotide sequence.
type Seq struct {
	words   []uint64 // 2-bit codes, position i in bits (2i mod 64) of word i/32
	unknown []uint64 // bitset: 1 marks a missing-data position
	n       int
}

// New returns a zeroed sequence (all A, all known) of length n.
func New(n int) *Seq {
	if n < 0 {
		panic("bitseq: negative length")
	}
	nw := (n + PerWord - 1) / PerWord
	nu := (n + 63) / 64
	return &Seq{words: make([]uint64, nw), unknown: make([]uint64, nu), n: n}
}

// FromString parses a character string into a packed sequence. Characters
// outside the nucleotide alphabet become missing-data positions; there is
// no error case because PHYLIP data routinely contains gaps.
func FromString(s string) *Seq {
	q := New(len(s))
	for i := 0; i < len(s); i++ {
		if b, ok := FromByte(s[i]); ok {
			q.Set(i, b)
		} else {
			q.SetUnknown(i)
		}
	}
	return q
}

// Len returns the number of positions.
func (s *Seq) Len() int { return s.n }

// At returns the base code at position i and whether the position holds
// known data. For unknown positions the base code is meaningless.
func (s *Seq) At(i int) (Base, bool) {
	s.check(i)
	if s.unknown[i/64]&(1<<(uint(i)%64)) != 0 {
		return 0, false
	}
	w := s.words[i/PerWord]
	return Base((w >> ((uint(i) % PerWord) * 2)) & 3), true
}

// Set stores a known base at position i.
func (s *Seq) Set(i int, b Base) {
	s.check(i)
	shift := (uint(i) % PerWord) * 2
	w := &s.words[i/PerWord]
	*w = (*w &^ (3 << shift)) | (uint64(b&3) << shift)
	s.unknown[i/64] &^= 1 << (uint(i) % 64)
}

// SetUnknown marks position i as missing data.
func (s *Seq) SetUnknown(i int) {
	s.check(i)
	s.unknown[i/64] |= 1 << (uint(i) % 64)
}

// Known reports whether position i holds known data.
func (s *Seq) Known(i int) bool {
	s.check(i)
	return s.unknown[i/64]&(1<<(uint(i)%64)) == 0
}

// Word exposes the raw packed word holding positions [32k, 32k+32), the
// unit a warp reads from constant memory.
func (s *Seq) Word(k int) uint64 { return s.words[k] }

// NumWords returns the number of packed words.
func (s *Seq) NumWords() int { return len(s.words) }

// String renders the sequence with '?' at missing-data positions.
func (s *Seq) String() string {
	buf := make([]byte, s.n)
	for i := 0; i < s.n; i++ {
		if b, ok := s.At(i); ok {
			buf[i] = b.Byte()
		} else {
			buf[i] = '?'
		}
	}
	return string(buf)
}

// Clone returns an independent copy.
func (s *Seq) Clone() *Seq {
	c := &Seq{words: make([]uint64, len(s.words)), unknown: make([]uint64, len(s.unknown)), n: s.n}
	copy(c.words, s.words)
	copy(c.unknown, s.unknown)
	return c
}

// Counts accumulates per-base counts of known positions into counts and
// returns the number of known positions.
func (s *Seq) Counts(counts *[NumBases]int) int {
	known := 0
	for i := 0; i < s.n; i++ {
		if b, ok := s.At(i); ok {
			counts[b]++
			known++
		}
	}
	return known
}

// Diff returns the number of positions at which s and t hold different
// known bases. Positions unknown in either sequence are skipped, matching
// the distance measure used to seed the UPGMA starting tree.
func (s *Seq) Diff(t *Seq) int {
	if s.n != t.n {
		panic(fmt.Sprintf("bitseq: Diff length mismatch %d vs %d", s.n, t.n))
	}
	d := 0
	for i := 0; i < s.n; i++ {
		a, okA := s.At(i)
		b, okB := t.At(i)
		if okA && okB && a != b {
			d++
		}
	}
	return d
}

func (s *Seq) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitseq: index %d out of range [0,%d)", i, s.n))
	}
}
