package bitseq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromByte(t *testing.T) {
	cases := []struct {
		c    byte
		want Base
		ok   bool
	}{
		{'A', A, true}, {'a', A, true},
		{'C', C, true}, {'c', C, true},
		{'G', G, true}, {'g', G, true},
		{'T', T, true}, {'t', T, true},
		{'U', T, true}, {'u', T, true},
		{'N', 0, false}, {'-', 0, false}, {'?', 0, false}, {'X', 0, false},
	}
	for _, cse := range cases {
		got, ok := FromByte(cse.c)
		if ok != cse.ok || (ok && got != cse.want) {
			t.Errorf("FromByte(%q) = %v,%v want %v,%v", cse.c, got, ok, cse.want, cse.ok)
		}
	}
}

func TestBaseByte(t *testing.T) {
	for i, want := range []byte{'A', 'C', 'G', 'T'} {
		if got := Base(i).Byte(); got != want {
			t.Errorf("Base(%d).Byte() = %q, want %q", i, got, want)
		}
	}
}

func TestRoundTripString(t *testing.T) {
	in := "ACGTACGTTTGGCCAA"
	s := FromString(in)
	if s.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(in))
	}
	if got := s.String(); got != in {
		t.Errorf("round trip = %q, want %q", got, in)
	}
}

func TestUnknownPositions(t *testing.T) {
	s := FromString("AC-GN?T")
	wantKnown := []bool{true, true, false, true, false, false, true}
	for i, w := range wantKnown {
		if s.Known(i) != w {
			t.Errorf("Known(%d) = %v, want %v", i, s.Known(i), w)
		}
	}
	if got := s.String(); got != "AC?G??T" {
		t.Errorf("String = %q, want AC?G??T", got)
	}
}

func TestSetOverwrite(t *testing.T) {
	s := New(70) // spans three words
	for i := 0; i < 70; i++ {
		s.Set(i, Base(i%4))
	}
	s.Set(33, T)
	s.Set(65, G)
	for i := 0; i < 70; i++ {
		want := Base(i % 4)
		if i == 33 {
			want = T
		}
		if i == 65 {
			want = G
		}
		got, ok := s.At(i)
		if !ok || got != want {
			t.Fatalf("At(%d) = %v,%v want %v,true", i, got, ok, want)
		}
	}
}

func TestSetClearsUnknown(t *testing.T) {
	s := New(5)
	s.SetUnknown(2)
	if s.Known(2) {
		t.Fatal("position should be unknown")
	}
	s.Set(2, G)
	if b, ok := s.At(2); !ok || b != G {
		t.Fatalf("At(2) = %v,%v want G,true", b, ok)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	letters := []byte("ACGTacgtN-?X")
	f := func(idx []uint8) bool {
		var sb strings.Builder
		for _, v := range idx {
			sb.WriteByte(letters[int(v)%len(letters)])
		}
		in := sb.String()
		s := FromString(in)
		if s.Len() != len(in) {
			return false
		}
		for i := 0; i < len(in); i++ {
			b, okWant := FromByte(in[i])
			got, ok := s.At(i)
			if ok != okWant {
				return false
			}
			if ok && got != b {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := FromString("ACGT")
	c := s.Clone()
	c.Set(0, T)
	if b, _ := s.At(0); b != A {
		t.Error("Clone is not independent")
	}
	if b, _ := c.At(0); b != T {
		t.Error("Clone mutation lost")
	}
}

func TestCounts(t *testing.T) {
	s := FromString("AACGT-N")
	var counts [NumBases]int
	known := s.Counts(&counts)
	if known != 5 {
		t.Errorf("known = %d, want 5", known)
	}
	want := [NumBases]int{2, 1, 1, 1}
	if counts != want {
		t.Errorf("counts = %v, want %v", counts, want)
	}
}

func TestDiff(t *testing.T) {
	a := FromString("AACGTT")
	b := FromString("AACGAA")
	if d := a.Diff(b); d != 2 {
		t.Errorf("Diff = %d, want 2", d)
	}
	// Unknown positions are excluded from the count.
	c := FromString("AACG--")
	if d := a.Diff(c); d != 0 {
		t.Errorf("Diff with gaps = %d, want 0", d)
	}
}

func TestDiffSymmetric(t *testing.T) {
	f := func(xa, xb []uint8) bool {
		n := len(xa)
		if len(xb) < n {
			n = len(xb)
		}
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			a.Set(i, Base(xa[i]%4))
			b.Set(i, Base(xb[i]%4))
		}
		return a.Diff(b) == b.Diff(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiffLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Diff with mismatched lengths should panic")
		}
	}()
	FromString("ACG").Diff(FromString("AC"))
}

func TestWordLayout(t *testing.T) {
	// Position i occupies bits 2i..2i+1 of word i/32; a warp's 32 sites
	// live in exactly one word.
	s := New(64)
	s.Set(0, T)  // bits 0-1 of word 0
	s.Set(31, G) // bits 62-63 of word 0
	s.Set(32, C) // bits 0-1 of word 1
	if w := s.Word(0); w != (3 | uint64(2)<<62) {
		t.Errorf("word 0 = %#x", w)
	}
	if w := s.Word(1); w != 1 {
		t.Errorf("word 1 = %#x, want 1", w)
	}
	if s.NumWords() != 2 {
		t.Errorf("NumWords = %d, want 2", s.NumWords())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(3)
	for _, f := range []func(){
		func() { s.At(3) },
		func() { s.At(-1) },
		func() { s.Set(3, A) },
		func() { s.SetUnknown(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range access")
				}
			}()
			f()
		}()
	}
}

func TestZeroLength(t *testing.T) {
	s := New(0)
	if s.Len() != 0 || s.String() != "" {
		t.Error("zero-length sequence misbehaves")
	}
}
