package coalprior

import (
	"math"
	"testing"

	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
)

func TestLogWaitingTimeHandComputed(t *testing.T) {
	// k=3, t=0.5, theta=2: log(1) - 6*0.5/2 = -1.5.
	if got := LogWaitingTime(3, 0.5, 2); math.Abs(got-(-1.5)) > 1e-12 {
		t.Errorf("LogWaitingTime = %v, want -1.5", got)
	}
	// Zero waiting time: density is just 2/theta.
	if got := LogWaitingTime(2, 0, 4); math.Abs(got-math.Log(0.5)) > 1e-12 {
		t.Errorf("LogWaitingTime(2,0,4) = %v, want log(1/2)", got)
	}
}

func TestLogWaitingTimeNormalized(t *testing.T) {
	// The waiting-time density k(k-1)/θ · exp(-k(k-1)t/θ) integrates to 1;
	// Eq. 17's (2/θ) form includes the uniform 1/C(k,2) pair choice, so
	// integrating Eq. 17 over t gives 1/C(k,2).
	theta := 1.7
	for k := 2; k <= 6; k++ {
		// Numerical integration of exp(LogWaitingTime).
		integral := 0.0
		dt := 1e-4 * theta
		for x := 0.0; x < 10*theta; x += dt {
			integral += math.Exp(LogWaitingTime(k, x+dt/2, theta)) * dt
		}
		want := 2.0 / float64(k*(k-1))
		if math.Abs(integral-want) > 1e-3*want {
			t.Errorf("k=%d: integral = %v, want %v", k, integral, want)
		}
	}
}

func TestLogPriorMatchesIntervalProduct(t *testing.T) {
	// Eq. 18 as a product over intervals must equal the closed form.
	src := rng.NewMT19937(200)
	names := []string{"a", "b", "c", "d", "e"}
	theta := 1.3
	for trial := 0; trial < 20; trial++ {
		tr, err := gtree.RandomCoalescent(names, theta, src)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		k := tr.NTips()
		for _, dt := range tr.IntervalDurations() {
			want += LogWaitingTime(k, dt, theta)
			k--
		}
		got := LogPrior(tr, theta)
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("trial %d: LogPrior %v != interval product %v", trial, got, want)
		}
	}
}

func TestLogPriorStatConsistent(t *testing.T) {
	src := rng.NewMT19937(201)
	names := []string{"a", "b", "c", "d"}
	tr, err := gtree.RandomCoalescent(names, 2.0, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{0.1, 1, 5} {
		a := LogPrior(tr, theta)
		b := LogPriorStat(tr.NTips(), tr.SumKKT(), theta)
		if a != b {
			t.Errorf("theta=%v: LogPrior %v != LogPriorStat %v", theta, a, b)
		}
	}
}

func TestLogPriorRatio(t *testing.T) {
	src := rng.NewMT19937(202)
	tr, err := gtree.RandomCoalescent([]string{"a", "b", "c"}, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	n, s := tr.NTips(), tr.SumKKT()
	theta, theta0 := 2.5, 0.7
	got := LogPriorRatio(n, s, theta, theta0)
	want := LogPriorStat(n, s, theta) - LogPriorStat(n, s, theta0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ratio = %v, want %v", got, want)
	}
	if r0 := LogPriorRatio(n, s, theta0, theta0); r0 != 0 {
		t.Errorf("ratio at theta0 = %v, want 0", r0)
	}
}

func TestLogPriorThetaSensitivity(t *testing.T) {
	// For a tree whose intervals match expectation under theta*, the
	// prior should peak near theta*: check it is higher at theta* than at
	// far-off values.
	tr := gtree.New(4)
	for i, name := range []string{"a", "b", "c", "d"} {
		tr.Nodes[i].Name = name
	}
	// Expected interval durations for theta=1: 1/12, 1/6, 1/2.
	link := func(p int, age float64, c0, c1 int) {
		tr.Nodes[p].Age = age
		tr.Nodes[p].Child = [2]int{c0, c1}
		tr.Nodes[c0].Parent = p
		tr.Nodes[c1].Parent = p
	}
	link(4, 1.0/12, 0, 1)
	link(5, 1.0/12+1.0/6, 4, 2)
	link(6, 1.0/12+1.0/6+0.5, 5, 3)
	tr.Root = 6
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	at1 := LogPrior(tr, 1.0)
	if LogPrior(tr, 0.05) >= at1 {
		t.Error("prior at theta=0.05 should be below theta=1 for a theta=1-typical tree")
	}
	if LogPrior(tr, 20.0) >= at1 {
		t.Error("prior at theta=20 should be below theta=1 for a theta=1-typical tree")
	}
}

func TestPanics(t *testing.T) {
	for label, f := range map[string]func(){
		"k<2":            func() { LogWaitingTime(1, 1, 1) },
		"negative t":     func() { LogWaitingTime(2, -1, 1) },
		"zero theta":     func() { LogWaitingTime(2, 1, 0) },
		"stat bad theta": func() { LogPriorStat(3, 1, -2) },
		"stat bad tips":  func() { LogPriorStat(1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", label)
				}
			}()
			f()
		}()
	}
}
