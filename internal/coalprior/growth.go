package coalprior

import (
	"fmt"
	"math"
)

// Growth support implements the paper's §7 extension: estimating a second
// population parameter. Under exponential growth the effective population
// size looking backward in time is N(t) = N_0·e^{-g·t}, so the pairwise
// coalescence rate at time t is (2/θ)·e^{g·t} and with k lineages the
// total rate is k(k-1)·e^{g·t}/θ. Positive g means the population has
// been growing forward in time (it shrinks into the past, accelerating
// coalescence); g = 0 recovers the constant-size model of Eq. 17-18.

// growthIntegral returns ∫_a^b e^{g u} du, continuous through g -> 0
// where it tends to b-a. The expm1 form e^{ga}·(e^{g(b-a)}-1)/g avoids
// the catastrophic cancellation of the naive difference of exponentials
// at small g.
func growthIntegral(a, b, g float64) float64 {
	x := g * (b - a)
	if g == 0 || x == 0 {
		return b - a
	}
	if math.Abs(x) < 1e-10 {
		// Second-order series keeps full precision where expm1(x)/g
		// itself would be fine but the multiply by e^{ga} dominates.
		return math.Exp(g*a) * (b - a) * (1 + x/2)
	}
	return math.Exp(g*a) * math.Expm1(x) / g
}

// LogPriorGrowth returns log P(G|θ,g) for a genealogy described by its
// sorted coalescent event ages (most recent first) over nTips
// contemporaneous tips:
//
//	log P = Σ_events [log(2/θ) + g·t_event]
//	      - Σ_intervals k(k-1)/θ · ∫ e^{g u} du
//
// With g = 0 this equals LogPriorStat over the same intervals.
func LogPriorGrowth(nTips int, ages []float64, theta, g float64) float64 {
	if theta <= 0 {
		panic(fmt.Sprintf("coalprior: non-positive theta %v", theta))
	}
	if nTips < 2 {
		panic(fmt.Sprintf("coalprior: %d tips", nTips))
	}
	if len(ages) != nTips-1 {
		panic(fmt.Sprintf("coalprior: %d event ages for %d tips, want %d", len(ages), nTips, nTips-1))
	}
	logp := 0.0
	prev := 0.0
	k := nTips
	for _, t := range ages {
		if t < prev {
			panic(fmt.Sprintf("coalprior: event ages not sorted: %v after %v", t, prev))
		}
		logp += math.Log(2/theta) + g*t
		logp -= float64(k*(k-1)) / theta * growthIntegral(prev, t, g)
		prev = t
		k--
	}
	return logp
}

// LogPriorGrowthRatio returns log[P(G|θ,g)/P(G|θ0,g0)], the per-sample
// term of the two-parameter relative likelihood.
func LogPriorGrowthRatio(nTips int, ages []float64, theta, g, theta0, g0 float64) float64 {
	return LogPriorGrowth(nTips, ages, theta, g) - LogPriorGrowth(nTips, ages, theta0, g0)
}
