package coalprior

import (
	"math"
	"testing"

	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
)

func randomAges(t *testing.T, n int, theta float64, seed uint32) []float64 {
	t.Helper()
	src := rng.NewMT19937(seed)
	names := make([]string, n)
	for i := range names {
		names[i] = "t" + string(rune('a'+i))
	}
	tr, err := gtree.RandomCoalescent(names, theta, src)
	if err != nil {
		t.Fatal(err)
	}
	return tr.CoalescentAges()
}

func TestLogPriorGrowthZeroGMatchesConstant(t *testing.T) {
	for trial := uint32(0); trial < 10; trial++ {
		n := 4 + int(trial)%4
		ages := randomAges(t, n, 1.3, 500+trial)
		sum := 0.0
		prev := 0.0
		k := n
		for _, a := range ages {
			sum += float64(k*(k-1)) * (a - prev)
			prev = a
			k--
		}
		for _, theta := range []float64{0.3, 1, 4} {
			got := LogPriorGrowth(n, ages, theta, 0)
			want := LogPriorStat(n, sum, theta)
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Errorf("n=%d theta=%v: growth(g=0) %v != constant %v", n, theta, got, want)
			}
		}
	}
}

func TestLogPriorGrowthTinyGContinuous(t *testing.T) {
	ages := randomAges(t, 6, 1.0, 600)
	at0 := LogPriorGrowth(6, ages, 1.0, 0)
	atTiny := LogPriorGrowth(6, ages, 1.0, 1e-10)
	if math.Abs(at0-atTiny) > 1e-6*math.Max(1, math.Abs(at0)) {
		t.Errorf("discontinuity at g=0: %v vs %v", at0, atTiny)
	}
}

func TestLogPriorGrowthNumericalIntegration(t *testing.T) {
	// Cross-check the interval integral against Riemann sums.
	ages := []float64{0.2, 0.5, 1.1}
	n, theta, g := 4, 1.7, 0.8
	got := LogPriorGrowth(n, ages, theta, g)

	want := 0.0
	prev := 0.0
	k := n
	for _, a := range ages {
		want += math.Log(2/theta) + g*a
		const grid = 200000
		h := (a - prev) / grid
		integral := 0.0
		for i := 0; i < grid; i++ {
			u := prev + (float64(i)+0.5)*h
			integral += math.Exp(g*u) * h
		}
		want -= float64(k*(k-1)) / theta * integral
		prev = a
		k--
	}
	if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Errorf("LogPriorGrowth = %v, numerical %v", got, want)
	}
}

func TestLogPriorGrowthDirection(t *testing.T) {
	// A tree with very short deep intervals (rapid ancient coalescence)
	// is more probable under positive growth (small ancestral
	// population) than under g = 0.
	compressed := []float64{0.02, 0.04, 0.05}
	n := 4
	if LogPriorGrowth(n, compressed, 1.0, 3.0) <= LogPriorGrowth(n, compressed, 1.0, 0) {
		t.Skip("compressed tree not informative at these scales")
	}
	// And a tree with a very long deep interval favours g <= 0 over
	// strong positive growth.
	stretched := []float64{0.05, 0.1, 5.0}
	if LogPriorGrowth(n, stretched, 1.0, 3.0) >= LogPriorGrowth(n, stretched, 1.0, 0) {
		t.Errorf("stretched genealogy should not favour strong growth")
	}
}

func TestLogPriorGrowthRatio(t *testing.T) {
	ages := randomAges(t, 5, 1.0, 700)
	if r := LogPriorGrowthRatio(5, ages, 1.0, 0.5, 1.0, 0.5); r != 0 {
		t.Errorf("ratio at identical parameters = %v, want 0", r)
	}
	a := LogPriorGrowthRatio(5, ages, 2.0, 1.0, 0.7, 0.0)
	b := LogPriorGrowth(5, ages, 2.0, 1.0) - LogPriorGrowth(5, ages, 0.7, 0.0)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("ratio = %v, want %v", a, b)
	}
}

func TestLogPriorGrowthPanics(t *testing.T) {
	ages := []float64{0.1, 0.2}
	for label, f := range map[string]func(){
		"bad theta":     func() { LogPriorGrowth(3, ages, 0, 1) },
		"bad tips":      func() { LogPriorGrowth(1, nil, 1, 1) },
		"length":        func() { LogPriorGrowth(4, ages, 1, 1) },
		"unsorted ages": func() { LogPriorGrowth(3, []float64{0.2, 0.1}, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", label)
				}
			}()
			f()
		}()
	}
}

func TestGrowthIntegralLimits(t *testing.T) {
	if got := growthIntegral(0, 2, 0); got != 2 {
		t.Errorf("g=0 integral = %v, want 2", got)
	}
	// Consistency with closed form for moderate g.
	got := growthIntegral(0.5, 1.5, 2.0)
	want := (math.Exp(3.0) - math.Exp(1.0)) / 2.0
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("integral = %v, want %v", got, want)
	}
	// Continuity near zero.
	a := growthIntegral(1, 3, 1e-13)
	if math.Abs(a-2) > 1e-6 {
		t.Errorf("near-zero-g integral = %v, want ~2", a)
	}
}
