// Package coalprior evaluates the Kingman coalescent prior of a genealogy
// (paper §2.4): the probability density of the coalescent waiting times
// given the population parameter theta,
//
//	P(G|θ) = Π_i (2/θ) exp(-k_i(k_i-1) t_i / θ)            (Eq. 18)
//
// over the n-1 coalescent intervals, where k_i lineages persist for
// duration t_i. The ratio of two such densities at different theta values
// depends on the intervals only through the sufficient statistic
// S = Σ k(k-1)t (see gtree.SumKKT), which is what the relative likelihood
// estimator stores per sample.
package coalprior

import (
	"fmt"
	"math"

	"mpcgs/internal/gtree"
)

// LogWaitingTime returns the log-density of paper Eq. 17: the probability
// that k lineages first coalesce after waiting time t,
// p_k(t) = (2/θ) exp(-k(k-1)t/θ). It panics for k < 2, t < 0 or θ <= 0.
func LogWaitingTime(k int, t, theta float64) float64 {
	if k < 2 {
		panic(fmt.Sprintf("coalprior: waiting time for %d lineages", k))
	}
	if t < 0 {
		panic(fmt.Sprintf("coalprior: negative waiting time %v", t))
	}
	if theta <= 0 {
		panic(fmt.Sprintf("coalprior: non-positive theta %v", theta))
	}
	return math.Log(2/theta) - float64(k*(k-1))*t/theta
}

// LogPrior returns log P(G|θ) for a genealogy (Eq. 18).
func LogPrior(t *gtree.Tree, theta float64) float64 {
	return LogPriorStat(t.NTips(), t.SumKKT(), theta)
}

// LogPriorStat returns log P(G|θ) from the reduced representation: the tip
// count and the sufficient statistic S = Σ k(k-1)t. This is the form the
// posterior likelihood kernel evaluates per stored sample (§5.2.3).
func LogPriorStat(nTips int, sumKKT, theta float64) float64 {
	if theta <= 0 {
		panic(fmt.Sprintf("coalprior: non-positive theta %v", theta))
	}
	if nTips < 2 {
		panic(fmt.Sprintf("coalprior: %d tips", nTips))
	}
	return float64(nTips-1)*math.Log(2/theta) - sumKKT/theta
}

// LogPriorRatio returns log[P(G|θ)/P(G|θ0)] from the reduced
// representation, the per-sample term of the relative likelihood L_G(θ)
// (paper Eq. 25).
func LogPriorRatio(nTips int, sumKKT, theta, theta0 float64) float64 {
	return LogPriorStat(nTips, sumKKT, theta) - LogPriorStat(nTips, sumKKT, theta0)
}
