package felsen

// Incremental (delta) likelihood evaluation over site patterns.
//
// The proposal kernel of the sampler only rewrites the resimulated
// neighbourhood of the current genealogy (paper §4.2-4.3): two interior
// node slots change, everything else keeps its topology, ages and hence
// per-site conditional likelihoods. On the paper's hardware those
// conditionals live in device memory between rounds; here a DeltaCache
// plays that role. A delta evaluation recomputes only the nodes whose
// subtree differs from the cached base — the changed neighbourhood and its
// ancestors up to the root — and reads every other conditional from the
// cache.
//
// Two further device-side compressions apply, mirroring the paper's use of
// constant memory for the immutable sequence data (§4.4):
//
//   - Alignment columns are deduplicated into weighted site patterns once
//     per evaluator; conditionals are computed per pattern and the per-
//     pattern log-likelihoods enter the total with their multiplicities.
//     This is an exact transformation of the sum over sites.
//   - Tip conditionals never enter the cache: they are immutable for the
//     evaluator's lifetime, so they live once in a shared per-tip pattern
//     table (Evaluator.tipCond) and the cache holds interior nodes only.
//
// # Lane layout
//
// All conditional storage — the cache, the tip table and the scratch — is
// structure-of-arrays: a node's conditionals are four contiguous
// per-state float64 lanes of one value per pattern, followed (in a
// separate array) by one scale lane carrying the accumulated rescaling
// logs. This is the memory-coalescing layout the paper arranges for its
// device buffers: the kernel streams each lane sequentially, every load
// and store is dense, and the inner loop indexes equal-length lanes by
// one induction variable so the compiler drops the bounds checks
// (verified with -gcflags=-d=ssa/check_bce). Node rows are node-major:
// interior node i's lanes start at (i-nTips)·4·nPatterns in the cond
// array and (i-nTips)·nPatterns in the scale array.
//
// # Pattern blocks
//
// The pattern axis is partitioned into fixed-width blocks (BlockSize
// patterns each). Patterns are mutually independent, so one evaluation's
// blocks can run concurrently: each block sweeps all dirty nodes
// bottom-up for its pattern range and finishes with its own root
// contraction partial sum, and evalDelta adds the per-block partials in
// block order. Block boundaries are a pure function of
// (nPatterns, BlockSize) — never of worker count or schedule — and the
// reduction order is fixed, so results are bit-for-bit reproducible
// across runs, across serial and parallel devices, and across
// kill/resume. Large evaluations spread their blocks over the device
// pool with affinity (device.LaunchAffine), the two-level
// proposals × blocks parallelism; small ones run inline, where blocked
// and unblocked summation coincide whenever nPatterns <= BlockSize.
//
// Within every recomputed node the arithmetic is identical to the full
// serial evaluation; only the summation over sites is reassociated (by
// pattern, then by block), so delta results agree with
// LogLikelihoodSerial to floating-point roundoff rather than bit-for-bit.
// All members of one proposal set are evaluated through the same path, so
// their weights stay exactly comparable.

import (
	"math"

	"mpcgs/internal/gtree"
	"mpcgs/internal/logspace"
	"mpcgs/internal/subst"
)

// nStates is the nucleotide alphabet size: the number of per-state lanes
// in every conditional row.
const nStates = 4

// DefaultBlockSize is the default pattern-block width: 128 patterns make
// a 1 KiB lane, so one node's row (four state lanes plus the scale lane)
// plus its two children's rows stay within a typical L1 data cache while
// a block streams them.
const DefaultBlockSize = 128

// blockParallelMinWork is the evaluation size — dirty-node rows times
// patterns — below which the blocks run inline on the caller: spreading a
// small neighbourhood recomputation over the pool costs more in launch
// traffic than it recovers. The threshold gates execution only; block
// boundaries and hence results are unaffected.
const blockParallelMinWork = 1 << 13

// DeltaCache holds the per-pattern conditional likelihoods of every
// interior node of one base genealogy, plus the base tree itself for
// diffing. It is created by NewDeltaCache, filled by Rebase or RebaseTo,
// and read concurrently by any number of LogLikelihoodDelta calls.
type DeltaCache struct {
	base *gtree.Tree
	// cond is node-major SoA: interior node row k = node-nTips occupies
	// cond[k*4*nPatterns : (k+1)*4*nPatterns], state lane x of that row at
	// offset x*nPatterns.
	cond []float64
	// scale holds the rows' rescaling-log lanes: row k at
	// scale[k*nPatterns : (k+1)*nPatterns].
	scale  []float64
	logLik float64
	valid  bool
}

// deltaScratch is the pooled working memory of one delta evaluation: the
// dirty marking, the changed nodes in bottom-up order, fresh transition
// matrices for changed edges, the recomputed lanes, and the per-block
// partial sums. The block kernel closure is built once per scratch and
// rebound to the evaluation at hand through the scratch's fields, so
// launching blocks allocates nothing per evaluation.
type deltaScratch struct {
	dirty []bool
	order []int
	pos   []int          // node -> index into order, valid for dirty nodes
	mats  []subst.Matrix // indexed by child node, like scratch.mats
	// cond/scale hold the recomputed rows of evaluations that do not
	// write through to the cache, laid out exactly like the cache's rows
	// but indexed by pos[node] instead of node-nTips. Grown on demand and
	// reused; a staged commit copies these rows into the cache verbatim.
	cond  []float64
	scale []float64
	// sums collects the per-block root-contraction partials, combined in
	// block order — the fixed-order reduction that keeps blocked results
	// deterministic.
	sums []float64
	// rows holds the evaluation's resolved lane sources, indexed like
	// order: each dirty node's child rows (tip table, staged scratch or
	// cache), output row and child matrices, bound once by bindRows so the
	// block kernel selects tip cells by plain slice indexing instead of
	// re-branching per node per block. rootCond/rootScale are the root
	// row's lanes for the contraction.
	rows      []rowRef
	rootCond  []float64
	rootScale []float64

	// Per-evaluation kernel bindings, set by evalDelta before the blocks
	// run and cleared after.
	e         *Evaluator
	c         *DeltaCache
	t         *gtree.Tree
	writeBack bool
	kernel    func(b int)
}

// rowRef is one dirty node's pre-resolved evaluation inputs: full-length
// lane slices (sliced to the block's pattern range inside the kernel)
// and the two child transition matrices. Resolving these once per
// evaluation removes the only data-dependent branches — tip table vs
// scratch vs cache — from the block kernel's node loop.
type rowRef struct {
	lc, ls []float64 // left child's state lanes and scale lane
	rc, rs []float64 // right child's state lanes and scale lane
	oc, os []float64 // output row's state lanes and scale lane
	m0, m1 *subst.Matrix
}

// NewDeltaCache allocates an empty cache sized for the evaluator's
// pattern-compressed alignment. The cache is invalid until the first
// Rebase.
func (e *Evaluator) NewDeltaCache() *DeltaCache {
	nInt := len(e.seqs) - 1
	return &DeltaCache{
		cond:  make([]float64, nInt*nStates*e.nPatterns),
		scale: make([]float64, nInt*e.nPatterns),
	}
}

// CopyFrom makes c an exact copy of src: same base tree, conditionals and
// log-likelihood. Both caches must belong to the same evaluator. It backs
// ladder construction, where every chain starts at one tree and a single
// evaluation is replicated instead of repeated per rung.
func (c *DeltaCache) CopyFrom(src *DeltaCache) {
	if !src.valid {
		c.valid = false
		return
	}
	if c.base == nil {
		c.base = src.base.Clone()
	} else {
		c.base.CopyFrom(src.base)
	}
	copy(c.cond, src.cond)
	copy(c.scale, src.scale)
	c.logLik = src.logLik
	c.valid = true
}

// Rebase fully evaluates t over the site patterns, stores every interior
// node's conditionals in the cache, records t as the cache's base, and
// returns log P(D|G). It runs the delta kernel with every interior node
// marked dirty, so full and incremental evaluations are one code path.
func (e *Evaluator) Rebase(c *DeltaCache, t *gtree.Tree) float64 {
	ds := e.deltaPool.Get().(*deltaScratch)
	defer e.deltaPool.Put(ds)
	ds.order = ds.order[:0]
	for i := range ds.dirty {
		tip := i < t.NTips()
		ds.dirty[i] = !tip
		if !tip {
			ds.order = append(ds.order, i)
		}
	}
	sortByAge(t, ds.order)
	total := e.evalDelta(c, t, ds, true)
	if c.base == nil {
		c.base = t.Clone()
	} else {
		c.base.CopyFrom(t)
	}
	c.logLik = total
	c.valid = true
	return total
}

// LogLikelihoodDelta returns log P(D|G) for a tree differing from the
// cache's base in a localized edit, recomputing only the changed nodes and
// their ancestors. It is safe to call concurrently against one cache (the
// cache is only read). It agrees with LogLikelihoodSerial(t) to floating-
// point roundoff; the speedup over it grows with the fraction of the tree
// left untouched by the edit.
//
//mpcgs:hotpath
func (e *Evaluator) LogLikelihoodDelta(c *DeltaCache, t *gtree.Tree) float64 {
	if !c.valid {
		panic("felsen: LogLikelihoodDelta on cache with no base; call Rebase first")
	}
	ds := e.deltaPool.Get().(*deltaScratch)
	defer e.deltaPool.Put(ds)
	e.diffDirty(c.base, t, ds)
	if len(ds.order) == 0 {
		return c.logLik
	}
	return e.evalDelta(c, t, ds, false)
}

// RebaseTo incrementally moves the cache onto t: the changed nodes are
// recomputed with their new conditionals written into the cache in place,
// and t becomes the new base. It must not run concurrently with delta
// evaluations on the same cache. Returns log P(D|G) for t.
//
//mpcgs:hotpath
func (e *Evaluator) RebaseTo(c *DeltaCache, t *gtree.Tree) float64 {
	if !c.valid {
		return e.Rebase(c, t)
	}
	ds := e.deltaPool.Get().(*deltaScratch)
	defer e.deltaPool.Put(ds)
	e.diffDirty(c.base, t, ds)
	if len(ds.order) == 0 {
		return c.logLik
	}
	total := e.evalDelta(c, t, ds, true)
	c.base.CopyFrom(t)
	c.logLik = total
	return total
}

// DeltaEval is one staged incremental evaluation: the proposal's
// log-likelihood plus the recomputed conditionals, held aside so the
// caller can decide the move first and then settle the cache for free in
// either direction — Commit writes the staged rows in (accept) and
// Discard drops them (reject), neither re-evaluating anything. It is a
// value type: keep it in a reusable field and exactly one of Commit or
// Discard must be called before the next StageDelta against the same
// cache. Staged evaluations hold pooled scratch, so they must not be kept
// across unrelated evaluator calls.
type DeltaEval struct {
	e      *Evaluator
	c      *DeltaCache
	t      *gtree.Tree
	ds     *deltaScratch // nil when nothing differed from the base
	logLik float64
}

// StageDelta evaluates t against the cache like LogLikelihoodDelta but
// keeps the recomputed conditionals staged for a later Commit. Staging
// only reads the cache, so any number of StageDelta/LogLikelihoodDelta
// calls may run concurrently against one cache — the multiple-proposal
// kernel stages its whole set in parallel. Commit, like RebaseTo, must be
// exclusive: resolve every staged evaluation before the next round reads
// the cache.
//
//mpcgs:hotpath
func (e *Evaluator) StageDelta(c *DeltaCache, t *gtree.Tree) DeltaEval {
	if !c.valid {
		panic("felsen: StageDelta on cache with no base; call Rebase first")
	}
	ds := e.deltaPool.Get().(*deltaScratch)
	e.diffDirty(c.base, t, ds)
	if len(ds.order) == 0 {
		e.deltaPool.Put(ds)
		return DeltaEval{e: e, c: c, t: t, logLik: c.logLik}
	}
	total := e.evalDelta(c, t, ds, false)
	return DeltaEval{e: e, c: c, t: t, ds: ds, logLik: total}
}

// LogLik returns the staged evaluation's log P(D|G).
func (d *DeltaEval) LogLik() float64 { return d.logLik }

// Commit writes the staged conditionals into the cache and makes the
// evaluated tree the cache's new base: the accept path of a chain step,
// costing one lane copy per recomputed node instead of a re-evaluation
// (RebaseTo's price). The evaluated tree must not have been mutated since
// StageDelta.
//
//mpcgs:hotpath
func (d *DeltaEval) Commit() {
	ds := d.ds
	if ds == nil {
		return // nothing differed from the base
	}
	nTips := d.t.NTips()
	nPat := d.e.nPatterns
	for k, node := range ds.order {
		r := node - nTips
		copy(d.c.cond[r*nStates*nPat:(r+1)*nStates*nPat], ds.cond[k*nStates*nPat:(k+1)*nStates*nPat])
		copy(d.c.scale[r*nPat:(r+1)*nPat], ds.scale[k*nPat:(k+1)*nPat])
	}
	d.c.base.CopyFrom(d.t)
	d.c.logLik = d.logLik
	d.e.deltaPool.Put(ds)
	d.ds = nil
}

// Discard releases the staged evaluation without touching the cache: the
// reject path of a chain step. Rejection costs nothing — the cache never
// saw the proposal.
//
//mpcgs:hotpath
func (d *DeltaEval) Discard() {
	if d.ds != nil {
		d.e.deltaPool.Put(d.ds)
		d.ds = nil
	}
}

// diffDirty marks every node of t whose conditional likelihoods differ
// from the cached base: interior nodes whose age or (unordered) child set
// changed, plus all their ancestors in t. ds.order receives the marked
// nodes sorted by age ascending — a valid bottom-up evaluation order,
// since every node is strictly older than its children.
func (e *Evaluator) diffDirty(base, t *gtree.Tree, ds *deltaScratch) {
	for i := range ds.dirty {
		ds.dirty[i] = false
	}
	ds.order = ds.order[:0]
	for i := t.NTips(); i < len(t.Nodes); i++ {
		tn, bn := &t.Nodes[i], &base.Nodes[i]
		same := tn.Age == bn.Age &&
			((tn.Child[0] == bn.Child[0] && tn.Child[1] == bn.Child[1]) ||
				(tn.Child[0] == bn.Child[1] && tn.Child[1] == bn.Child[0]))
		if !same {
			for j := i; j != gtree.Nil && !ds.dirty[j]; j = t.Nodes[j].Parent {
				ds.dirty[j] = true
				ds.order = append(ds.order, j)
			}
		}
	}
	sortByAge(t, ds.order)
}

// sortByAge insertion-sorts node indices by age ascending — a valid
// bottom-up evaluation order, since every node is strictly older than its
// children. The lists are short (an edit neighbourhood plus root paths,
// or the interior nodes of a small tree).
func sortByAge(t *gtree.Tree, order []int) {
	for k := 1; k < len(order); k++ {
		x := order[k]
		ax := t.Nodes[x].Age
		j := k - 1
		for j >= 0 && t.Nodes[order[j]].Age > ax {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = x
	}
}

// evalDelta recomputes the dirty nodes' pattern lanes bottom-up, reading
// clean conditionals from the cache and tip conditionals from the shared
// tip table. With writeBack the recomputed lanes go straight into the
// cache (safe because children are processed before parents); otherwise
// they go into the scratch lanes, from where a DeltaEval can commit them
// later without re-evaluating. The pattern axis is swept in fixed blocks
// (see runBlock); large evaluations spread the blocks over the device
// pool with worker affinity, and the per-block partial sums always
// combine in block order, so the result never depends on the schedule.
//
//mpcgs:hotpath
func (e *Evaluator) evalDelta(c *DeltaCache, t *gtree.Tree, ds *deltaScratch, writeBack bool) float64 {
	// Fresh transition matrices for every edge below a changed node: these
	// are the only edges whose lengths can differ from the base (an edge
	// below an untouched node has untouched endpoints), and the only ones
	// the recomputation reads. This is the batched per-proposal matrix
	// preparation: 2·|dirty| matrices instead of one per node.
	for _, node := range ds.order {
		nd := &t.Nodes[node]
		for _, ch := range nd.Child {
			e.model.TransitionInto(nd.Age-t.Nodes[ch].Age, &ds.mats[ch])
		}
	}
	nPat := e.nPatterns
	if !writeBack {
		if need := len(ds.order) * nStates * nPat; cap(ds.cond) < need {
			ds.cond = make([]float64, need)                //mpcgsvet:ignore-alloc cap-guarded pooled-scratch growth, amortized across proposals
			ds.scale = make([]float64, len(ds.order)*nPat) //mpcgsvet:ignore-alloc cap-guarded pooled-scratch growth, amortized across proposals
		} else {
			ds.cond = ds.cond[:need]
			ds.scale = ds.scale[:len(ds.order)*nPat]
		}
		for k, node := range ds.order {
			ds.pos[node] = k
		}
	}
	bs := e.blockSize
	nBlocks := (nPat + bs - 1) / bs
	if cap(ds.sums) < nBlocks {
		ds.sums = make([]float64, nBlocks) //mpcgsvet:ignore-alloc cap-guarded pooled-scratch growth, amortized across proposals
	} else {
		ds.sums = ds.sums[:nBlocks]
	}
	ds.e, ds.c, ds.t, ds.writeBack = e, c, t, writeBack
	ds.bindRows(t)
	if nBlocks > 1 && e.dev.Workers() > 1 && (len(ds.order)+1)*nPat >= blockParallelMinWork {
		// Two-level parallelism: this evaluation's blocks join the device
		// pool alongside any other proposals' blocks. Affinity keeps each
		// block on the worker that streamed it last round.
		e.dev.LaunchAffine(nBlocks, ds.kernel)
	} else {
		for b := 0; b < nBlocks; b++ {
			ds.runBlock(b)
		}
	}
	// Fixed-order reduction over the per-block partials: the only place
	// block results meet, so determinism needs nothing from the scheduler.
	total := 0.0
	for _, s := range ds.sums {
		total += s
	}
	ds.e, ds.c, ds.t = nil, nil, nil
	return total
}

// bindRows resolves every dirty node's lane sources and matrices into
// ds.rows, and the root row for the contraction, once per evaluation —
// before the blocks run, after the scratch lanes are sized (the slices
// must point into the final backing arrays). A dirty child's slice
// header is resolved before its row is computed, which is safe because
// the header aliases the array the child's own rowRef writes through.
// This is the branchless tip-cell selection: the block kernel indexes
// rows[k] instead of re-deciding tip table vs scratch vs cache for
// every node in every block.
func (ds *deltaScratch) bindRows(t *gtree.Tree) {
	nTips := t.NTips()
	if cap(ds.rows) < len(ds.order) {
		ds.rows = make([]rowRef, len(ds.order)) //mpcgsvet:ignore-alloc cap-guarded pooled-scratch growth, amortized across proposals
	} else {
		ds.rows = ds.rows[:len(ds.order)]
	}
	for k, node := range ds.order {
		nd := &t.Nodes[node]
		c0, c1 := nd.Child[0], nd.Child[1]
		rr := &ds.rows[k]
		rr.lc, rr.ls = ds.row(nTips, c0)
		rr.rc, rr.rs = ds.row(nTips, c1)
		rr.oc, rr.os = ds.outRow(nTips, node)
		rr.m0, rr.m1 = &ds.mats[c0], &ds.mats[c1]
	}
	ds.rootCond, ds.rootScale = ds.row(nTips, t.Root)
}

// row returns a node's conditional lanes for reading: the shared tip
// table for tips (their scale lane is the shared all-zero lane), the
// staged scratch lanes for already-recomputed dirty nodes of a
// non-write-back evaluation, and the cache otherwise. cond is the node's
// four contiguous state lanes (lane x at offset x·nPatterns), scale its
// rescaling-log lane. It is the resolution half of bindRows: called once
// per node per evaluation, never from the block kernel.
func (ds *deltaScratch) row(nTips, node int) (cond, scale []float64) {
	e := ds.e
	nPat := e.nPatterns
	switch {
	case node < nTips:
		return e.tipCond[node*nStates*nPat : (node+1)*nStates*nPat], e.zeroScale
	case ds.dirty[node] && !ds.writeBack:
		k := ds.pos[node]
		return ds.cond[k*nStates*nPat : (k+1)*nStates*nPat], ds.scale[k*nPat : (k+1)*nPat]
	default:
		r := node - nTips
		return ds.c.cond[r*nStates*nPat : (r+1)*nStates*nPat], ds.c.scale[r*nPat : (r+1)*nPat]
	}
}

// outRow returns the lanes a dirty node's recomputation writes: the cache
// row itself for write-back evaluations, the staged scratch row otherwise.
func (ds *deltaScratch) outRow(nTips, node int) (cond, scale []float64) {
	e := ds.e
	nPat := e.nPatterns
	if ds.writeBack {
		r := node - nTips
		return ds.c.cond[r*nStates*nPat : (r+1)*nStates*nPat], ds.c.scale[r*nPat : (r+1)*nPat]
	}
	k := ds.pos[node]
	return ds.cond[k*nStates*nPat : (k+1)*nStates*nPat], ds.scale[k*nPat : (k+1)*nPat]
}

// runBlock evaluates one pattern block: every dirty node's lanes for the
// block's pattern range, bottom-up, then the block's root-contraction
// partial sum into ds.sums[b]. Blocks touch disjoint pattern ranges of
// the same rows, so any number of one evaluation's blocks may run
// concurrently on the pool. The node loop is branchless on lane sources:
// every row — tip table, staged scratch or cache — was resolved into
// ds.rows by bindRows, so the kernel only slices and streams. The inner
// loop is a single fused pass per node — both children's dot products,
// the running maximum, the rare rescale, and the scale lane — over
// equal-length lane slices indexed by one induction variable, which is
// what lets the compiler eliminate every bounds check
// (-d=ssa/check_bce) and keep the loads and stores dense. The
// per-pattern arithmetic and its operation order are identical to
// siteLogLikelihoodIter.
//
//mpcgs:hotpath
func (ds *deltaScratch) runBlock(b int) {
	e := ds.e
	nPat := e.nPatterns
	lo := b * e.blockSize
	hi := lo + e.blockSize
	if hi > nPat {
		hi = nPat
	}
	for k := range ds.rows {
		rr := &ds.rows[k]
		lc, lsf := rr.lc, rr.ls
		rc, rsf := rr.rc, rr.rs
		oc, osf := rr.oc, rr.os
		m0, m1 := rr.m0, rr.m1
		a00, a01, a02, a03 := m0[0][0], m0[0][1], m0[0][2], m0[0][3]
		a10, a11, a12, a13 := m0[1][0], m0[1][1], m0[1][2], m0[1][3]
		a20, a21, a22, a23 := m0[2][0], m0[2][1], m0[2][2], m0[2][3]
		a30, a31, a32, a33 := m0[3][0], m0[3][1], m0[3][2], m0[3][3]
		b00, b01, b02, b03 := m1[0][0], m1[0][1], m1[0][2], m1[0][3]
		b10, b11, b12, b13 := m1[1][0], m1[1][1], m1[1][2], m1[1][3]
		b20, b21, b22, b23 := m1[2][0], m1[2][1], m1[2][2], m1[2][3]
		b30, b31, b32, b33 := m1[3][0], m1[3][1], m1[3][2], m1[3][3]
		o0 := oc[lo:hi]
		o1 := oc[nPat+lo : nPat+hi]
		o2 := oc[2*nPat+lo : 2*nPat+hi]
		o3 := oc[3*nPat+lo : 3*nPat+hi]
		l0 := lc[lo:hi]
		l1 := lc[nPat+lo : nPat+hi]
		l2 := lc[2*nPat+lo : 2*nPat+hi]
		l3 := lc[3*nPat+lo : 3*nPat+hi]
		r0 := rc[lo:hi]
		r1 := rc[nPat+lo : nPat+hi]
		r2 := rc[2*nPat+lo : 2*nPat+hi]
		r3 := rc[3*nPat+lo : 3*nPat+hi]
		ls := lsf[lo:hi]
		rs := rsf[lo:hi]
		os := osf[lo:hi]
		// Pin every lane to the loop slice's length so the compiler can
		// prove i in range for all of them (bounds-check elimination).
		n := len(o0)
		o1, o2, o3 = o1[:n], o2[:n], o3[:n]
		l0, l1, l2, l3 = l0[:n], l1[:n], l2[:n], l3[:n]
		r0, r1, r2, r3 = r0[:n], r1[:n], r2[:n], r3[:n]
		ls, rs, os = ls[:n], rs[:n], os[:n]
		for i := range o0 {
			u0, u1, u2, u3 := l0[i], l1[i], l2[i], l3[i]
			v0, v1, v2, v3 := r0[i], r1[i], r2[i], r3[i]
			w0 := (a00*u0 + a01*u1 + a02*u2 + a03*u3) * (b00*v0 + b01*v1 + b02*v2 + b03*v3)
			w1 := (a10*u0 + a11*u1 + a12*u2 + a13*u3) * (b10*v0 + b11*v1 + b12*v2 + b13*v3)
			w2 := (a20*u0 + a21*u1 + a22*u2 + a23*u3) * (b20*v0 + b21*v1 + b22*v2 + b23*v3)
			w3 := (a30*u0 + a31*u1 + a32*u2 + a33*u3) * (b30*v0 + b31*v1 + b32*v2 + b33*v3)
			maxv := 0.0
			if w0 > maxv {
				maxv = w0
			}
			if w1 > maxv {
				maxv = w1
			}
			if w2 > maxv {
				maxv = w2
			}
			if w3 > maxv {
				maxv = w3
			}
			sc := ls[i] + rs[i]
			if maxv < rescaleThreshold && maxv > 0 {
				inv := 1 / maxv
				w0 *= inv
				w1 *= inv
				w2 *= inv
				w3 *= inv
				sc += math.Log(maxv)
			}
			o0[i] = w0
			o1[i] = w1
			o2[i] = w2
			o3[i] = w3
			os[i] = sc
		}
	}
	// Root contraction with the prior frequencies (Eq. 21), per pattern.
	// The root is always dirty here: diffDirty marks every changed node's
	// full ancestor path.
	rc, rsf := ds.rootCond, ds.rootScale
	f0, f1, f2, f3 := e.freqs[0], e.freqs[1], e.freqs[2], e.freqs[3]
	p0 := rc[lo:hi]
	p1 := rc[nPat+lo : nPat+hi]
	p2 := rc[2*nPat+lo : 2*nPat+hi]
	p3 := rc[3*nPat+lo : 3*nPat+hi]
	ps := rsf[lo:hi]
	pc := e.patCount[lo:hi]
	n := len(p0)
	p1, p2, p3, ps, pc = p1[:n], p2[:n], p3[:n], ps[:n], pc[:n]
	sum := 0.0
	for i := range p0 {
		siteL := f0*p0[i] + f1*p1[i] + f2*p2[i] + f3*p3[i]
		if siteL <= 0 {
			sum += logspace.NegInf
			continue
		}
		sum += pc[i] * (math.Log(siteL) + ps[i])
	}
	ds.sums[b] = sum
}
