package felsen

// Incremental (delta) likelihood evaluation over site patterns.
//
// The proposal kernel of the sampler only rewrites the resimulated
// neighbourhood of the current genealogy (paper §4.2-4.3): two interior
// node slots change, everything else keeps its topology, ages and hence
// per-site conditional likelihoods. On the paper's hardware those
// conditionals live in device memory between rounds; here a DeltaCache
// plays that role. A delta evaluation recomputes only the nodes whose
// subtree differs from the cached base — the changed neighbourhood and its
// ancestors up to the root — and reads every other conditional from the
// cache.
//
// Two further device-side compressions apply, mirroring the paper's use of
// constant memory for the immutable sequence data (§4.4):
//
//   - Alignment columns are deduplicated into weighted site patterns once
//     per evaluator; conditionals are computed per pattern and the per-
//     pattern log-likelihoods enter the total with their multiplicities.
//     This is an exact transformation of the sum over sites.
//   - Tip conditionals are never stored: they are regenerated from the
//     packed pattern codes at use, so the cache holds interior nodes only.
//
// Within every recomputed node the arithmetic is identical to the full
// serial evaluation; only the summation over sites is reassociated (by
// pattern), so delta results agree with LogLikelihoodSerial to floating-
// point roundoff rather than bit-for-bit. All members of one proposal set
// are evaluated through the same path, so their weights stay exactly
// comparable.

import (
	"math"

	"mpcgs/internal/gtree"
	"mpcgs/internal/logspace"
	"mpcgs/internal/subst"
)

// cell is one cached conditional: the likelihood vector and its
// accumulated rescaling log, packed together so a clean-node lookup
// touches one contiguous 40-byte record.
type cell struct {
	p [4]float64
	s float64
}

// DeltaCache holds the per-pattern conditional likelihoods of every
// interior node of one base genealogy, plus the base tree itself for
// diffing. It is created by NewDeltaCache, filled by Rebase or RebaseTo,
// and read concurrently by any number of LogLikelihoodDelta calls.
type DeltaCache struct {
	base *gtree.Tree
	// cells is pattern-major: entry [pat*nInterior + (node - nTips)].
	cells  []cell
	logLik float64
	valid  bool
}

// deltaScratch is the pooled working memory of one delta evaluation: the
// dirty marking, the changed nodes in bottom-up order, fresh transition
// matrices for changed edges, and one pattern's worth of recomputed
// conditionals.
type deltaScratch struct {
	dirty    []bool
	order    []int
	mats     []subst.Matrix // indexed by child node, like scratch.mats
	partials [][4]float64   // per-node, reused across patterns
	scale    []float64
}

// NewDeltaCache allocates an empty cache sized for the evaluator's
// pattern-compressed alignment. The cache is invalid until the first
// Rebase.
func (e *Evaluator) NewDeltaCache() *DeltaCache {
	nInt := len(e.seqs) - 1
	return &DeltaCache{cells: make([]cell, nInt*e.nPatterns)}
}

// tipPartialInto regenerates a tip's conditional vector for a pattern
// from the packed pattern codes.
func (e *Evaluator) tipPartialInto(tip, pat int, v *[4]float64) {
	if code := e.patBase[tip][pat]; code < 4 {
		*v = [4]float64{}
		v[code] = 1
	} else {
		*v = [4]float64{1, 1, 1, 1}
	}
}

// Rebase fully evaluates t over the site patterns, stores every interior
// node's conditionals in the cache, records t as the cache's base, and
// returns log P(D|G). It runs the delta kernel with every interior node
// marked dirty, so full and incremental evaluations are one code path.
func (e *Evaluator) Rebase(c *DeltaCache, t *gtree.Tree) float64 {
	ds := e.deltaPool.Get().(*deltaScratch)
	defer e.deltaPool.Put(ds)
	ds.order = ds.order[:0]
	for i := range ds.dirty {
		tip := i < t.NTips()
		ds.dirty[i] = !tip
		if !tip {
			ds.order = append(ds.order, i)
		}
	}
	sortByAge(t, ds.order)
	total := e.evalDelta(c, t, ds, true)
	if c.base == nil {
		c.base = t.Clone()
	} else {
		c.base.CopyFrom(t)
	}
	c.logLik = total
	c.valid = true
	return total
}

// LogLikelihoodDelta returns log P(D|G) for a tree differing from the
// cache's base in a localized edit, recomputing only the changed nodes and
// their ancestors. It is safe to call concurrently against one cache (the
// cache is only read). It agrees with LogLikelihoodSerial(t) to floating-
// point roundoff; the speedup over it grows with the fraction of the tree
// left untouched by the edit.
func (e *Evaluator) LogLikelihoodDelta(c *DeltaCache, t *gtree.Tree) float64 {
	if !c.valid {
		panic("felsen: LogLikelihoodDelta on cache with no base; call Rebase first")
	}
	ds := e.deltaPool.Get().(*deltaScratch)
	defer e.deltaPool.Put(ds)
	e.diffDirty(c.base, t, ds)
	if len(ds.order) == 0 {
		return c.logLik
	}
	return e.evalDelta(c, t, ds, false)
}

// RebaseTo incrementally moves the cache onto t: the changed nodes are
// recomputed with their new conditionals written into the cache in place,
// and t becomes the new base. It must not run concurrently with delta
// evaluations on the same cache. Returns log P(D|G) for t.
func (e *Evaluator) RebaseTo(c *DeltaCache, t *gtree.Tree) float64 {
	if !c.valid {
		return e.Rebase(c, t)
	}
	ds := e.deltaPool.Get().(*deltaScratch)
	defer e.deltaPool.Put(ds)
	e.diffDirty(c.base, t, ds)
	if len(ds.order) == 0 {
		return c.logLik
	}
	total := e.evalDelta(c, t, ds, true)
	c.base.CopyFrom(t)
	c.logLik = total
	return total
}

// diffDirty marks every node of t whose conditional likelihoods differ
// from the cached base: interior nodes whose age or (unordered) child set
// changed, plus all their ancestors in t. ds.order receives the marked
// nodes sorted by age ascending — a valid bottom-up evaluation order,
// since every node is strictly older than its children.
func (e *Evaluator) diffDirty(base, t *gtree.Tree, ds *deltaScratch) {
	for i := range ds.dirty {
		ds.dirty[i] = false
	}
	ds.order = ds.order[:0]
	for i := t.NTips(); i < len(t.Nodes); i++ {
		tn, bn := &t.Nodes[i], &base.Nodes[i]
		same := tn.Age == bn.Age &&
			((tn.Child[0] == bn.Child[0] && tn.Child[1] == bn.Child[1]) ||
				(tn.Child[0] == bn.Child[1] && tn.Child[1] == bn.Child[0]))
		if !same {
			for j := i; j != gtree.Nil && !ds.dirty[j]; j = t.Nodes[j].Parent {
				ds.dirty[j] = true
				ds.order = append(ds.order, j)
			}
		}
	}
	sortByAge(t, ds.order)
}

// sortByAge insertion-sorts node indices by age ascending — a valid
// bottom-up evaluation order, since every node is strictly older than its
// children. The lists are short (an edit neighbourhood plus root paths,
// or the interior nodes of a small tree).
func sortByAge(t *gtree.Tree, order []int) {
	for k := 1; k < len(order); k++ {
		x := order[k]
		ax := t.Nodes[x].Age
		j := k - 1
		for j >= 0 && t.Nodes[order[j]].Age > ax {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = x
	}
}

// evalDelta recomputes the dirty nodes across all patterns, reading clean
// conditionals from the cache and regenerating tip conditionals from the
// pattern codes. With writeBack it stores the recomputed rows into the
// cache (safe because children are processed before parents within each
// pattern); otherwise the cache is untouched. The per-node arithmetic
// mirrors siteLogLikelihoodIter exactly.
func (e *Evaluator) evalDelta(c *DeltaCache, t *gtree.Tree, ds *deltaScratch, writeBack bool) float64 {
	// Fresh transition matrices for every edge below a changed node: these
	// are the only edges whose lengths can differ from the base (an edge
	// below an untouched node has untouched endpoints), and the only ones
	// the recomputation reads. This is the batched per-proposal matrix
	// preparation: 2·|dirty| matrices instead of one per node.
	for _, node := range ds.order {
		nd := &t.Nodes[node]
		for _, ch := range nd.Child {
			e.model.TransitionInto(nd.Age-t.Nodes[ch].Age, &ds.mats[ch])
		}
	}
	nTips := t.NTips()
	nInt := t.NInterior()
	var tipBuf [2][4]float64
	total := 0.0
	for pat := 0; pat < e.nPatterns; pat++ {
		row := pat * nInt
		for _, node := range ds.order {
			nd := &t.Nodes[node]
			c0, c1 := nd.Child[0], nd.Child[1]
			var l, r *[4]float64
			ls, rs := 0.0, 0.0
			switch {
			case c0 < nTips:
				e.tipPartialInto(c0, pat, &tipBuf[0])
				l = &tipBuf[0]
			case ds.dirty[c0]:
				l, ls = &ds.partials[c0], ds.scale[c0]
			default:
				cc := &c.cells[row+c0-nTips]
				l, ls = &cc.p, cc.s
			}
			switch {
			case c1 < nTips:
				e.tipPartialInto(c1, pat, &tipBuf[1])
				r = &tipBuf[1]
			case ds.dirty[c1]:
				r, rs = &ds.partials[c1], ds.scale[c1]
			default:
				cc := &c.cells[row+c1-nTips]
				r, rs = &cc.p, cc.s
			}
			m0, m1 := &ds.mats[c0], &ds.mats[c1]
			out := &ds.partials[node]
			maxv := 0.0
			for x := 0; x < 4; x++ {
				s0 := m0[x][0]*l[0] + m0[x][1]*l[1] + m0[x][2]*l[2] + m0[x][3]*l[3]
				s1 := m1[x][0]*r[0] + m1[x][1]*r[1] + m1[x][2]*r[2] + m1[x][3]*r[3]
				out[x] = s0 * s1
				if out[x] > maxv {
					maxv = out[x]
				}
			}
			sc := ls + rs
			if maxv < rescaleThreshold && maxv > 0 {
				inv := 1 / maxv
				for x := 0; x < 4; x++ {
					out[x] *= inv
				}
				sc += math.Log(maxv)
			}
			ds.scale[node] = sc
			if writeBack {
				cc := &c.cells[row+node-nTips]
				cc.p = *out
				cc.s = sc
			}
		}
		// The root is always dirty here: diffDirty marks every changed
		// node's full ancestor path.
		rootP := &ds.partials[t.Root]
		rootScale := ds.scale[t.Root]
		siteL := e.freqs[0]*rootP[0] + e.freqs[1]*rootP[1] + e.freqs[2]*rootP[2] + e.freqs[3]*rootP[3]
		if siteL <= 0 {
			total += logspace.NegInf
			continue
		}
		total += e.patCount[pat] * (math.Log(siteL) + rootScale)
	}
	return total
}
