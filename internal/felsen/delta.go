package felsen

// Incremental (delta) likelihood evaluation over site patterns.
//
// The proposal kernel of the sampler only rewrites the resimulated
// neighbourhood of the current genealogy (paper §4.2-4.3): two interior
// node slots change, everything else keeps its topology, ages and hence
// per-site conditional likelihoods. On the paper's hardware those
// conditionals live in device memory between rounds; here a DeltaCache
// plays that role. A delta evaluation recomputes only the nodes whose
// subtree differs from the cached base — the changed neighbourhood and its
// ancestors up to the root — and reads every other conditional from the
// cache.
//
// Two further device-side compressions apply, mirroring the paper's use of
// constant memory for the immutable sequence data (§4.4):
//
//   - Alignment columns are deduplicated into weighted site patterns once
//     per evaluator; conditionals are computed per pattern and the per-
//     pattern log-likelihoods enter the total with their multiplicities.
//     This is an exact transformation of the sum over sites.
//   - Tip conditionals never enter the cache: they are immutable for the
//     evaluator's lifetime, so they live once in a shared per-tip pattern
//     table (Evaluator.tipCell) and the cache holds interior nodes only.
//
// All conditional storage — the cache, the tip table and the scratch — is
// node-major: one node's cells for every pattern lie contiguously, the
// memory-coalescing layout the paper arranges for its device buffers. The
// kernel walks the dirty nodes bottom-up and streams over each node's
// pattern row, so every load and store is sequential.
//
// Within every recomputed node the arithmetic is identical to the full
// serial evaluation; only the summation over sites is reassociated (by
// pattern), so delta results agree with LogLikelihoodSerial to floating-
// point roundoff rather than bit-for-bit. All members of one proposal set
// are evaluated through the same path, so their weights stay exactly
// comparable.

import (
	"math"

	"mpcgs/internal/gtree"
	"mpcgs/internal/logspace"
	"mpcgs/internal/subst"
)

// cell is one cached conditional: the likelihood vector and its
// accumulated rescaling log, packed together so a node lookup touches one
// contiguous 40-byte record.
type cell struct {
	p [4]float64
	s float64
}

// DeltaCache holds the per-pattern conditional likelihoods of every
// interior node of one base genealogy, plus the base tree itself for
// diffing. It is created by NewDeltaCache, filled by Rebase or RebaseTo,
// and read concurrently by any number of LogLikelihoodDelta calls.
type DeltaCache struct {
	base *gtree.Tree
	// cells is node-major: entry [(node-nTips)*nPatterns + pat].
	cells  []cell
	logLik float64
	valid  bool
}

// deltaScratch is the pooled working memory of one delta evaluation: the
// dirty marking, the changed nodes in bottom-up order, fresh transition
// matrices for changed edges, and the recomputed rows.
type deltaScratch struct {
	dirty []bool
	order []int
	pos   []int          // node -> index into order, valid for dirty nodes
	mats  []subst.Matrix // indexed by child node, like scratch.mats
	// cells holds the recomputed conditionals of evaluations that do not
	// write through to the cache, node-major like the cache itself: entry
	// [pos[node]*nPatterns + pat]. Grown on demand and reused; a staged
	// commit copies these rows into the cache verbatim.
	cells []cell
}

// NewDeltaCache allocates an empty cache sized for the evaluator's
// pattern-compressed alignment. The cache is invalid until the first
// Rebase.
func (e *Evaluator) NewDeltaCache() *DeltaCache {
	nInt := len(e.seqs) - 1
	return &DeltaCache{cells: make([]cell, nInt*e.nPatterns)}
}

// CopyFrom makes c an exact copy of src: same base tree, conditionals and
// log-likelihood. Both caches must belong to the same evaluator. It backs
// ladder construction, where every chain starts at one tree and a single
// evaluation is replicated instead of repeated per rung.
func (c *DeltaCache) CopyFrom(src *DeltaCache) {
	if !src.valid {
		c.valid = false
		return
	}
	if c.base == nil {
		c.base = src.base.Clone()
	} else {
		c.base.CopyFrom(src.base)
	}
	copy(c.cells, src.cells)
	c.logLik = src.logLik
	c.valid = true
}

// Rebase fully evaluates t over the site patterns, stores every interior
// node's conditionals in the cache, records t as the cache's base, and
// returns log P(D|G). It runs the delta kernel with every interior node
// marked dirty, so full and incremental evaluations are one code path.
func (e *Evaluator) Rebase(c *DeltaCache, t *gtree.Tree) float64 {
	ds := e.deltaPool.Get().(*deltaScratch)
	defer e.deltaPool.Put(ds)
	ds.order = ds.order[:0]
	for i := range ds.dirty {
		tip := i < t.NTips()
		ds.dirty[i] = !tip
		if !tip {
			ds.order = append(ds.order, i)
		}
	}
	sortByAge(t, ds.order)
	total := e.evalDelta(c, t, ds, true)
	if c.base == nil {
		c.base = t.Clone()
	} else {
		c.base.CopyFrom(t)
	}
	c.logLik = total
	c.valid = true
	return total
}

// LogLikelihoodDelta returns log P(D|G) for a tree differing from the
// cache's base in a localized edit, recomputing only the changed nodes and
// their ancestors. It is safe to call concurrently against one cache (the
// cache is only read). It agrees with LogLikelihoodSerial(t) to floating-
// point roundoff; the speedup over it grows with the fraction of the tree
// left untouched by the edit.
func (e *Evaluator) LogLikelihoodDelta(c *DeltaCache, t *gtree.Tree) float64 {
	if !c.valid {
		panic("felsen: LogLikelihoodDelta on cache with no base; call Rebase first")
	}
	ds := e.deltaPool.Get().(*deltaScratch)
	defer e.deltaPool.Put(ds)
	e.diffDirty(c.base, t, ds)
	if len(ds.order) == 0 {
		return c.logLik
	}
	return e.evalDelta(c, t, ds, false)
}

// RebaseTo incrementally moves the cache onto t: the changed nodes are
// recomputed with their new conditionals written into the cache in place,
// and t becomes the new base. It must not run concurrently with delta
// evaluations on the same cache. Returns log P(D|G) for t.
func (e *Evaluator) RebaseTo(c *DeltaCache, t *gtree.Tree) float64 {
	if !c.valid {
		return e.Rebase(c, t)
	}
	ds := e.deltaPool.Get().(*deltaScratch)
	defer e.deltaPool.Put(ds)
	e.diffDirty(c.base, t, ds)
	if len(ds.order) == 0 {
		return c.logLik
	}
	total := e.evalDelta(c, t, ds, true)
	c.base.CopyFrom(t)
	c.logLik = total
	return total
}

// DeltaEval is one staged incremental evaluation: the proposal's
// log-likelihood plus the recomputed conditionals, held aside so the
// caller can decide the move first and then settle the cache for free in
// either direction — Commit writes the staged rows in (accept) and
// Discard drops them (reject), neither re-evaluating anything. It is a
// value type: keep it in a reusable field and exactly one of Commit or
// Discard must be called before the next StageDelta against the same
// cache. Staged evaluations hold pooled scratch, so they must not be kept
// across unrelated evaluator calls.
type DeltaEval struct {
	e      *Evaluator
	c      *DeltaCache
	t      *gtree.Tree
	ds     *deltaScratch // nil when nothing differed from the base
	logLik float64
}

// StageDelta evaluates t against the cache like LogLikelihoodDelta but
// keeps the recomputed conditionals staged for a later Commit. Staging
// only reads the cache, so any number of StageDelta/LogLikelihoodDelta
// calls may run concurrently against one cache — the multiple-proposal
// kernel stages its whole set in parallel. Commit, like RebaseTo, must be
// exclusive: resolve every staged evaluation before the next round reads
// the cache.
//
//mpcgs:hotpath
func (e *Evaluator) StageDelta(c *DeltaCache, t *gtree.Tree) DeltaEval {
	if !c.valid {
		panic("felsen: StageDelta on cache with no base; call Rebase first")
	}
	ds := e.deltaPool.Get().(*deltaScratch)
	e.diffDirty(c.base, t, ds)
	if len(ds.order) == 0 {
		e.deltaPool.Put(ds)
		return DeltaEval{e: e, c: c, t: t, logLik: c.logLik}
	}
	total := e.evalDelta(c, t, ds, false)
	return DeltaEval{e: e, c: c, t: t, ds: ds, logLik: total}
}

// LogLik returns the staged evaluation's log P(D|G).
func (d *DeltaEval) LogLik() float64 { return d.logLik }

// Commit writes the staged conditionals into the cache and makes the
// evaluated tree the cache's new base: the accept path of a chain step,
// costing one row copy per recomputed node instead of a re-evaluation
// (RebaseTo's price). The evaluated tree must not have been mutated since
// StageDelta.
//
//mpcgs:hotpath
func (d *DeltaEval) Commit() {
	ds := d.ds
	if ds == nil {
		return // nothing differed from the base
	}
	nTips := d.t.NTips()
	nPat := d.e.nPatterns
	for k, node := range ds.order {
		copy(d.c.cells[(node-nTips)*nPat:(node-nTips+1)*nPat], ds.cells[k*nPat:(k+1)*nPat])
	}
	d.c.base.CopyFrom(d.t)
	d.c.logLik = d.logLik
	d.e.deltaPool.Put(ds)
	d.ds = nil
}

// Discard releases the staged evaluation without touching the cache: the
// reject path of a chain step. Rejection costs nothing — the cache never
// saw the proposal.
//
//mpcgs:hotpath
func (d *DeltaEval) Discard() {
	if d.ds != nil {
		d.e.deltaPool.Put(d.ds)
		d.ds = nil
	}
}

// diffDirty marks every node of t whose conditional likelihoods differ
// from the cached base: interior nodes whose age or (unordered) child set
// changed, plus all their ancestors in t. ds.order receives the marked
// nodes sorted by age ascending — a valid bottom-up evaluation order,
// since every node is strictly older than its children.
func (e *Evaluator) diffDirty(base, t *gtree.Tree, ds *deltaScratch) {
	for i := range ds.dirty {
		ds.dirty[i] = false
	}
	ds.order = ds.order[:0]
	for i := t.NTips(); i < len(t.Nodes); i++ {
		tn, bn := &t.Nodes[i], &base.Nodes[i]
		same := tn.Age == bn.Age &&
			((tn.Child[0] == bn.Child[0] && tn.Child[1] == bn.Child[1]) ||
				(tn.Child[0] == bn.Child[1] && tn.Child[1] == bn.Child[0]))
		if !same {
			for j := i; j != gtree.Nil && !ds.dirty[j]; j = t.Nodes[j].Parent {
				ds.dirty[j] = true
				ds.order = append(ds.order, j)
			}
		}
	}
	sortByAge(t, ds.order)
}

// sortByAge insertion-sorts node indices by age ascending — a valid
// bottom-up evaluation order, since every node is strictly older than its
// children. The lists are short (an edit neighbourhood plus root paths,
// or the interior nodes of a small tree).
func sortByAge(t *gtree.Tree, order []int) {
	for k := 1; k < len(order); k++ {
		x := order[k]
		ax := t.Nodes[x].Age
		j := k - 1
		for j >= 0 && t.Nodes[order[j]].Age > ax {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = x
	}
}

// evalDelta recomputes the dirty nodes' pattern rows bottom-up, reading
// clean conditionals from the cache and tip conditionals from the shared
// tip table. With writeBack the recomputed rows go straight into the
// cache (safe because children are processed before parents); otherwise
// they go into the scratch rows, from where a DeltaEval can commit them
// later without re-evaluating. The per-node arithmetic mirrors
// siteLogLikelihoodIter exactly; only the loop order differs (node-outer,
// streaming each node's contiguous row).
func (e *Evaluator) evalDelta(c *DeltaCache, t *gtree.Tree, ds *deltaScratch, writeBack bool) float64 {
	// Fresh transition matrices for every edge below a changed node: these
	// are the only edges whose lengths can differ from the base (an edge
	// below an untouched node has untouched endpoints), and the only ones
	// the recomputation reads. This is the batched per-proposal matrix
	// preparation: 2·|dirty| matrices instead of one per node.
	for _, node := range ds.order {
		nd := &t.Nodes[node]
		for _, ch := range nd.Child {
			e.model.TransitionInto(nd.Age-t.Nodes[ch].Age, &ds.mats[ch])
		}
	}
	nTips := t.NTips()
	nPat := e.nPatterns
	if !writeBack {
		if need := len(ds.order) * nPat; cap(ds.cells) < need {
			ds.cells = make([]cell, need) //mpcgsvet:ignore-alloc cap-guarded pooled-scratch growth, amortized across proposals
		} else {
			ds.cells = ds.cells[:need]
		}
		for k, node := range ds.order {
			ds.pos[node] = k
		}
	}
	for k, node := range ds.order {
		nd := &t.Nodes[node]
		c0, c1 := nd.Child[0], nd.Child[1]
		lrow, rrow := e.nodeRow(c, ds, writeBack, nTips, c0), e.nodeRow(c, ds, writeBack, nTips, c1)
		var out []cell
		if writeBack {
			out = c.cells[(node-nTips)*nPat : (node-nTips+1)*nPat]
		} else {
			out = ds.cells[k*nPat : (k+1)*nPat]
		}
		m0, m1 := &ds.mats[c0], &ds.mats[c1]
		for pat := 0; pat < nPat; pat++ {
			l, r := &lrow[pat], &rrow[pat]
			o := &out[pat]
			maxv := 0.0
			for x := 0; x < 4; x++ {
				s0 := m0[x][0]*l.p[0] + m0[x][1]*l.p[1] + m0[x][2]*l.p[2] + m0[x][3]*l.p[3]
				s1 := m1[x][0]*r.p[0] + m1[x][1]*r.p[1] + m1[x][2]*r.p[2] + m1[x][3]*r.p[3]
				o.p[x] = s0 * s1
				if o.p[x] > maxv {
					maxv = o.p[x]
				}
			}
			sc := l.s + r.s
			if maxv < rescaleThreshold && maxv > 0 {
				inv := 1 / maxv
				for x := 0; x < 4; x++ {
					o.p[x] *= inv
				}
				sc += math.Log(maxv)
			}
			o.s = sc
		}
	}
	// Root contraction with the prior frequencies (Eq. 21), per pattern.
	// The root is always dirty here: diffDirty marks every changed node's
	// full ancestor path.
	rootRow := e.nodeRow(c, ds, writeBack, nTips, t.Root)
	total := 0.0
	for pat := 0; pat < nPat; pat++ {
		rc := &rootRow[pat]
		siteL := e.freqs[0]*rc.p[0] + e.freqs[1]*rc.p[1] + e.freqs[2]*rc.p[2] + e.freqs[3]*rc.p[3]
		if siteL <= 0 {
			total += logspace.NegInf
			continue
		}
		total += e.patCount[pat] * (math.Log(siteL) + rc.s)
	}
	return total
}

// nodeRow returns a node's conditional cells for all patterns: the shared
// tip table for tips, the scratch rows for already-recomputed dirty nodes
// (write-through evaluations keep those in the cache itself), and the
// cache for clean interior nodes. A method rather than a closure inside
// evalDelta: the closure captured five locals and allocated on every
// staged evaluation.
func (e *Evaluator) nodeRow(c *DeltaCache, ds *deltaScratch, writeBack bool, nTips, node int) []cell {
	nPat := e.nPatterns
	switch {
	case node < nTips:
		return e.tipCell[node*nPat : (node+1)*nPat]
	case ds.dirty[node] && !writeBack:
		k := ds.pos[node]
		return ds.cells[k*nPat : (k+1)*nPat]
	default:
		return c.cells[(node-nTips)*nPat : (node-nTips+1)*nPat]
	}
}
