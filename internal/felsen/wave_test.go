package felsen

// Equivalence and determinism of the wave-fused proposal evaluation
// (wave.go). The contract under test: for any round (a base tree, a
// target φ, and candidates produced by resimulating φ on copies of the
// base), Wave.Eval returns for every candidate the exact bits
// LogLikelihoodDelta returns — across block sizes, worker counts, repeat
// runs, nil (skipped) slots, the root-adjacent case, and across rounds as
// the cache is rebased onto accepted candidates.

import (
	"math"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/gtree"
	"mpcgs/internal/resim"
	"mpcgs/internal/rng"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

// waveFixture builds the block fixture's alignment and base genealogy
// plus one shared resimulation target and six candidates that all
// resimulate that target — the structure of one GMH round.
func waveFixture(t *testing.T, phiPick func(*gtree.Tree) int) (*gtree.Tree, int, []*gtree.Tree, func(dev *device.Device) *Evaluator) {
	t.Helper()
	aln, _, err := seqgen.SimulateData(12, 2000, 1.0, 424)
	if err != nil {
		t.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewMT19937(17)
	tree, err := gtree.RandomCoalescent(aln.Names, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	phi := phiPick(tree)
	props := make([]*gtree.Tree, 0, 6)
	for len(props) < 6 {
		p := tree.Clone()
		if resim.Resimulate(p, phi, 1.0, src) == nil {
			props = append(props, p)
		}
	}
	mk := func(dev *device.Device) *Evaluator {
		eval, err := New(model, aln, dev)
		if err != nil {
			t.Fatal(err)
		}
		return eval
	}
	return tree, phi, props, mk
}

// anyTarget picks a deterministic non-root interior target.
func anyTarget(tree *gtree.Tree) int {
	return resim.PickTarget(tree, rng.NewMT19937(99))
}

// rootAdjacentTarget picks the second-oldest interior node: its parent
// must be older, and only the root is, so the round exercises the
// empty-root-path case where the candidate's parent slot becomes the root.
func rootAdjacentTarget(tree *gtree.Tree) int {
	best := gtree.Nil
	for k := 0; k < tree.NInterior(); k++ {
		i := tree.InteriorIndex(k)
		if i == tree.Root {
			continue
		}
		if best == gtree.Nil || tree.Nodes[i].Age > tree.Nodes[best].Age {
			best = i
		}
	}
	return best
}

func testWaveMatchesPerCandidate(t *testing.T, phiPick func(*gtree.Tree) int) {
	tree, phi, props, mk := waveFixture(t, phiPick)
	nPat := mk(device.Serial()).NPatterns()
	for _, bs := range blockSizesFor(nPat) {
		devs := []func() *device.Device{
			device.Serial,
			func() *device.Device { return device.New(2) },
			func() *device.Device { return device.New(8) },
		}
		var want []float64
		for di, mkDev := range devs {
			for rep := 0; rep < 2; rep++ {
				eval := mk(mkDev())
				eval.SetBlockSize(bs)
				c := eval.NewDeltaCache()
				eval.Rebase(c, tree)
				// Per-candidate oracle on this evaluator.
				oracle := make([]float64, len(props))
				for i, p := range props {
					oracle[i] = eval.LogLikelihoodDelta(c, p)
				}
				w := eval.NewWave(c)
				w.BindRound(phi)
				got := make([]float64, len(props))
				w.Eval(props, got)
				for i := range props {
					if math.Float64bits(got[i]) != math.Float64bits(oracle[i]) {
						t.Fatalf("blockSize=%d dev %d rep %d candidate %d: wave %v != per-candidate %v (must be bit-identical)",
							bs, di, rep, i, got[i], oracle[i])
					}
				}
				if di == 0 && rep == 0 {
					want = got
					continue
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("blockSize=%d dev %d rep %d candidate %d: wave %v != first run %v (must be bit-identical)",
							bs, di, rep, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestWaveMatchesPerCandidateBits(t *testing.T) {
	testWaveMatchesPerCandidate(t, anyTarget)
}

func TestWaveMatchesPerCandidateBitsRootCase(t *testing.T) {
	testWaveMatchesPerCandidate(t, rootAdjacentTarget)
}

func TestWaveSkipsNilSlots(t *testing.T) {
	// A nil tree (the current state's slot, or a failed candidate) is
	// skipped and its output slot left untouched; the live candidates'
	// results are unaffected by the skipped ones.
	tree, phi, props, mk := waveFixture(t, anyTarget)
	eval := mk(device.Serial())
	c := eval.NewDeltaCache()
	eval.Rebase(c, tree)
	w := eval.NewWave(c)
	w.BindRound(phi)
	full := make([]float64, len(props))
	w.Eval(props, full)

	sparse := make([]*gtree.Tree, len(props))
	copy(sparse, props)
	sparse[0], sparse[3] = nil, nil
	const sentinel = -12345.0
	got := make([]float64, len(props))
	for i := range got {
		got[i] = sentinel
	}
	w.BindRound(phi)
	w.Eval(sparse, got)
	for i := range props {
		switch {
		case sparse[i] == nil && got[i] != sentinel:
			t.Errorf("slot %d: skipped slot overwritten with %v", i, got[i])
		case sparse[i] != nil && got[i] != full[i]:
			t.Errorf("slot %d: %v != full-set result %v (must be bit-identical)", i, got[i], full[i])
		}
	}

	// An all-nil round evaluates nothing.
	for i := range got {
		got[i] = sentinel
	}
	w.BindRound(phi)
	w.Eval(make([]*gtree.Tree, len(props)), got)
	for i := range got {
		if got[i] != sentinel {
			t.Errorf("all-nil Eval wrote slot %d", i)
		}
	}
}

func TestWaveAcrossRounds(t *testing.T) {
	// The GMH round cycle: evaluate a wave, rebase the cache onto an
	// accepted candidate, bind a fresh φ, evaluate the next wave — every
	// round bit-identical to the per-candidate path on an independently
	// maintained evaluator.
	tree, _, _, mk := waveFixture(t, anyTarget)
	a := mk(device.New(4))
	b := mk(device.Serial())
	ca, cb := a.NewDeltaCache(), b.NewDeltaCache()
	a.Rebase(ca, tree)
	b.Rebase(cb, tree)
	w := a.NewWave(ca)
	src := rng.NewMT19937(31)
	cur := tree.Clone()
	for round := 0; round < 8; round++ {
		phi := resim.PickTarget(cur, src)
		props := make([]*gtree.Tree, 0, 4)
		for len(props) < 4 {
			p := cur.Clone()
			if resim.Resimulate(p, phi, 1.0, src) == nil {
				props = append(props, p)
			}
		}
		got := make([]float64, len(props))
		w.BindRound(phi)
		w.Eval(props, got)
		for i, p := range props {
			if want := b.LogLikelihoodDelta(cb, p); got[i] != want {
				t.Fatalf("round %d candidate %d: wave %v != per-candidate %v (must be bit-identical)",
					round, i, got[i], want)
			}
		}
		// Accept a candidate chosen by the round number.
		cur = props[round%len(props)]
		a.RebaseTo(ca, cur)
		b.RebaseTo(cb, cur)
	}
}

func TestWaveEvalRequiresBind(t *testing.T) {
	tree, _, props, mk := waveFixture(t, anyTarget)
	eval := mk(device.Serial())
	c := eval.NewDeltaCache()
	eval.Rebase(c, tree)
	w := eval.NewWave(c)
	defer func() {
		if recover() == nil {
			t.Error("Eval without BindRound did not panic")
		}
	}()
	w.Eval(props, make([]float64, len(props)))
}

func TestWaveBindRejectsBadTarget(t *testing.T) {
	tree, _, _, mk := waveFixture(t, anyTarget)
	eval := mk(device.Serial())
	c := eval.NewDeltaCache()
	eval.Rebase(c, tree)
	w := eval.NewWave(c)
	for _, phi := range []int{0, tree.Root} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BindRound(%d) did not panic", phi)
				}
			}()
			w.BindRound(phi)
		}()
	}
}
