package felsen

import (
	"math"
	"sync"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/gtree"
	"mpcgs/internal/phylip"
	"mpcgs/internal/resim"
	"mpcgs/internal/rng"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

// deltaFixture builds an evaluator over simulated data plus a valid
// starting genealogy.
func deltaFixture(t *testing.T, nSeq, seqLen int, seed uint64) (*Evaluator, *gtree.Tree, *rng.MT19937) {
	t.Helper()
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, seed)
	if err != nil {
		t.Fatal(err)
	}
	eval := evalFor(t, aln)
	src := rng.NewMT19937(uint32(seed) + 7)
	tree, err := gtree.RandomCoalescent(aln.Names, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	return eval, tree, src
}

func evalFor(t *testing.T, aln *phylip.Alignment) *Evaluator {
	t.Helper()
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := New(model, aln, device.Serial())
	if err != nil {
		t.Fatal(err)
	}
	return eval
}

// closeRel reports whether two log-likelihoods agree to floating-point
// roundoff: the delta path reassociates the sum over sites by pattern, so
// exact bit equality with the serial path is not expected.
func closeRel(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestRebaseMatchesSerial(t *testing.T) {
	eval, tree, _ := deltaFixture(t, 8, 120, 301)
	c := eval.NewDeltaCache()
	got := eval.Rebase(c, tree)
	want := eval.LogLikelihoodSerial(tree)
	if !closeRel(got, want) {
		t.Fatalf("Rebase = %v, LogLikelihoodSerial = %v", got, want)
	}
}

func TestDeltaMatchesSerialOverResimulations(t *testing.T) {
	// Across a long chain of neighbourhood resimulations, every delta
	// evaluation must agree with a from-scratch serial one to roundoff,
	// and with a from-scratch pattern evaluation bit-for-bit — the delta
	// path skips work, it never changes per-node arithmetic.
	eval, tree, src := deltaFixture(t, 10, 80, 302)
	c := eval.NewDeltaCache()
	eval.Rebase(c, tree)
	prop := tree.Clone()
	for step := 0; step < 300; step++ {
		prop.CopyFrom(tree)
		target := resim.PickTarget(prop, src)
		if err := resim.Resimulate(prop, target, 1.0, src); err != nil {
			continue
		}
		got := eval.LogLikelihoodDelta(c, prop)
		want := eval.LogLikelihoodSerial(prop)
		if !closeRel(got, want) {
			t.Fatalf("step %d: delta %v != serial %v", step, got, want)
		}
		// The delta result must be bit-identical to a from-scratch Rebase
		// (same pattern-compressed arithmetic), so proposal weights within
		// a set are exactly comparable.
		fresh := eval.NewDeltaCache()
		if full := eval.Rebase(fresh, prop); full != got {
			t.Fatalf("step %d: delta %v != full pattern eval %v (must be bit-identical)", step, got, full)
		}
		// Occasionally accept the proposal, moving the base incrementally.
		if step%3 == 0 {
			tree.CopyFrom(prop)
			if rb := eval.RebaseTo(c, tree); rb != got {
				t.Fatalf("step %d: RebaseTo %v != delta %v (must be bit-identical)", step, rb, got)
			}
		}
	}
}

func TestDeltaIdenticalTreeReturnsCachedValue(t *testing.T) {
	eval, tree, _ := deltaFixture(t, 6, 50, 303)
	c := eval.NewDeltaCache()
	want := eval.Rebase(c, tree)
	if got := eval.LogLikelihoodDelta(c, tree.Clone()); got != want {
		t.Fatalf("delta on identical tree = %v, want cached %v", got, want)
	}
	if got := eval.RebaseTo(c, tree.Clone()); got != want {
		t.Fatalf("RebaseTo on identical tree = %v, want cached %v", got, want)
	}
}

func TestDeltaConcurrentProposals(t *testing.T) {
	// N goroutines evaluate distinct proposals against one shared cache,
	// the GMH proposal-kernel pattern. Run with -race in CI.
	eval, tree, src := deltaFixture(t, 10, 60, 304)
	c := eval.NewDeltaCache()
	eval.Rebase(c, tree)
	const n = 8
	props := make([]*gtree.Tree, n)
	want := make([]float64, n)
	for i := range props {
		props[i] = tree.Clone()
		target := resim.PickTarget(props[i], src)
		if err := resim.Resimulate(props[i], target, 1.0, src); err != nil {
			t.Fatal(err)
		}
		want[i] = eval.LogLikelihoodSerial(props[i])
	}
	var wg sync.WaitGroup
	got := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = eval.LogLikelihoodDelta(c, props[i])
		}(i)
	}
	wg.Wait()
	for i := range got {
		if !closeRel(got[i], want[i]) {
			t.Errorf("proposal %d: concurrent delta %v != serial %v", i, got[i], want[i])
		}
	}
}

func TestDeltaPanicsWithoutRebase(t *testing.T) {
	eval, tree, _ := deltaFixture(t, 6, 40, 305)
	c := eval.NewDeltaCache()
	defer func() {
		if recover() == nil {
			t.Error("LogLikelihoodDelta on unfilled cache did not panic")
		}
	}()
	eval.LogLikelihoodDelta(c, tree)
}

func TestRebaseToOnFreshCacheFallsBackToFull(t *testing.T) {
	eval, tree, _ := deltaFixture(t, 6, 40, 306)
	c := eval.NewDeltaCache()
	want := eval.LogLikelihoodSerial(tree)
	if got := eval.RebaseTo(c, tree); !closeRel(got, want) {
		t.Fatalf("RebaseTo on fresh cache = %v, want %v", got, want)
	}
}

func TestTipRowResolutionBitIdentical(t *testing.T) {
	// Tip-heavy pin for the pre-resolved (branchless) row selection: on a
	// minimal tree every dirty node's children are mostly tips, so each
	// evaluation streams the tip table through bindRows' resolved slice
	// headers. Results must stay bit-identical between the delta path, a
	// from-scratch pattern evaluation, and the staged path, across block
	// sizes straddling the pattern count.
	aln, _, err := seqgen.SimulateData(4, 240, 1.0, 881)
	if err != nil {
		t.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 7, 64, 4096} {
		eval, err := New(model, aln, device.Serial())
		if err != nil {
			t.Fatal(err)
		}
		eval.SetBlockSize(bs)
		src := rng.NewMT19937(882)
		tree, err := gtree.RandomCoalescent(aln.Names, 1.0, src)
		if err != nil {
			t.Fatal(err)
		}
		c := eval.NewDeltaCache()
		eval.Rebase(c, tree)
		prop := tree.Clone()
		for step := 0; step < 50; step++ {
			prop.CopyFrom(tree)
			target := resim.PickTarget(prop, src)
			if err := resim.Resimulate(prop, target, 1.0, src); err != nil {
				continue
			}
			got := eval.LogLikelihoodDelta(c, prop)
			fresh := eval.NewDeltaCache()
			if full := eval.Rebase(fresh, prop); math.Float64bits(full) != math.Float64bits(got) {
				t.Fatalf("bs=%d step %d: delta %v != full pattern eval %v (must be bit-identical)", bs, step, got, full)
			}
			st := eval.StageDelta(c, prop)
			if math.Float64bits(st.LogLik()) != math.Float64bits(got) {
				t.Fatalf("bs=%d step %d: staged %v != delta %v (must be bit-identical)", bs, step, st.LogLik(), got)
			}
			if step%2 == 0 {
				st.Commit()
				tree.CopyFrom(prop)
			} else {
				st.Discard()
			}
		}
	}
}
