package felsen

import (
	"math"
	"testing"

	"mpcgs/internal/bitseq"
	"mpcgs/internal/device"
	"mpcgs/internal/gtree"
	"mpcgs/internal/phylip"
	"mpcgs/internal/rng"
	"mpcgs/internal/subst"
)

func mustAln(t *testing.T, names []string, seqs []string) *phylip.Alignment {
	t.Helper()
	a := &phylip.Alignment{Names: names}
	for _, s := range seqs {
		a.Seqs = append(a.Seqs, bitseq.FromString(s))
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

func mustEval(t *testing.T, model subst.Model, aln *phylip.Alignment, dev *device.Device) *Evaluator {
	t.Helper()
	e, err := New(model, aln, dev)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// twoTipTree builds (a:h, b:h) with root age h.
func twoTipTree(t *testing.T, h float64) *gtree.Tree {
	t.Helper()
	tr := gtree.New(2)
	tr.Nodes[0].Name = "a"
	tr.Nodes[1].Name = "b"
	tr.Nodes[2].Age = h
	tr.Nodes[2].Child = [2]int{0, 1}
	tr.Nodes[0].Parent = 2
	tr.Nodes[1].Parent = 2
	tr.Root = 2
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTwoTipHandComputed(t *testing.T) {
	// Single site, tips A and G, root age h: the likelihood is
	// sum_x pi_x P_xA(h) P_xG(h), directly computable from the model.
	aln := mustAln(t, []string{"a", "b"}, []string{"A", "G"})
	model, err := subst.NewF81(subst.Uniform, false)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEval(t, model, aln, device.Serial())
	h := 0.8
	tr := twoTipTree(t, h)

	var p subst.Matrix
	model.TransitionInto(h, &p)
	want := 0.0
	for x := 0; x < 4; x++ {
		want += 0.25 * p[x][bitseq.A] * p[x][bitseq.G]
	}
	got := e.LogLikelihood(tr)
	if math.Abs(got-math.Log(want)) > 1e-12 {
		t.Errorf("logL = %v, want %v", got, math.Log(want))
	}
}

func TestIdenticalSequencesMoreLikelyOnShortTree(t *testing.T) {
	aln := mustAln(t, []string{"a", "b"}, []string{"ACGTACGT", "ACGTACGT"})
	e := mustEval(t, subst.NewJC69(), aln, device.Serial())
	short := e.LogLikelihood(twoTipTree(t, 0.01))
	long := e.LogLikelihood(twoTipTree(t, 2.0))
	if short <= long {
		t.Errorf("identical data: short tree logL %v should exceed long tree %v", short, long)
	}
}

func TestDivergedSequencesPreferLongTree(t *testing.T) {
	aln := mustAln(t, []string{"a", "b"}, []string{"ACGTACGT", "TGCATGCA"})
	e := mustEval(t, subst.NewJC69(), aln, device.Serial())
	short := e.LogLikelihood(twoTipTree(t, 0.01))
	long := e.LogLikelihood(twoTipTree(t, 2.0))
	if long <= short {
		t.Errorf("fully diverged data: long tree logL %v should exceed short tree %v", long, short)
	}
}

func randomAlignment(src rng.Source, n, L int) *phylip.Alignment {
	a := &phylip.Alignment{}
	letters := "ACGT"
	for i := 0; i < n; i++ {
		buf := make([]byte, L)
		for j := range buf {
			buf[j] = letters[rng.Intn(src, 4)]
		}
		a.Names = append(a.Names, "s"+string(rune('A'+i)))
		a.Seqs = append(a.Seqs, bitseq.FromString(string(buf)))
	}
	return a
}

func TestPruningMatchesBruteForce(t *testing.T) {
	src := rng.NewMT19937(100)
	models := map[string]subst.Model{
		"JC69": subst.NewJC69(),
	}
	if f81, err := subst.NewF81([4]float64{0.1, 0.2, 0.3, 0.4}, true); err == nil {
		models["F81"] = f81
	}
	if f84, err := subst.NewF84([4]float64{0.15, 0.35, 0.25, 0.25}, 2.0, true); err == nil {
		models["F84"] = f84
	}
	for name, model := range models {
		for trial := 0; trial < 10; trial++ {
			n := 3 + rng.Intn(src, 3) // 3-5 tips
			names := make([]string, n)
			for i := range names {
				names[i] = "t" + string(rune('a'+i))
			}
			tr, err := gtree.RandomCoalescent(names, 1.0, src)
			if err != nil {
				t.Fatal(err)
			}
			aln := randomAlignment(src, n, 6)
			e := mustEval(t, model, aln, device.Serial())
			got := e.LogLikelihood(tr)
			want, err := BruteForceLogLikelihood(model, aln.Seqs, tr)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Errorf("%s trial %d: pruning %v != brute force %v", name, trial, got, want)
			}
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	src := rng.NewMT19937(101)
	n, L := 8, 100
	names := make([]string, n)
	for i := range names {
		names[i] = "t" + string(rune('a'+i))
	}
	tr, err := gtree.RandomCoalescent(names, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	aln := randomAlignment(src, n, L)
	for _, workers := range []int{1, 2, 8, 24} {
		e := mustEval(t, subst.NewJC69(), aln, device.New(workers))
		serial := e.LogLikelihoodSerial(tr)
		parallel := e.LogLikelihood(tr)
		if math.Abs(serial-parallel) > 1e-9*math.Abs(serial) {
			t.Errorf("workers=%d: serial %v != parallel %v", workers, serial, parallel)
		}
	}
}

func TestMissingDataSiteContributesZeroLog(t *testing.T) {
	aln := mustAln(t, []string{"a", "b"}, []string{"A-", "A-"})
	e := mustEval(t, subst.NewJC69(), aln, device.Serial())
	tr := twoTipTree(t, 0.5)
	dst := make([]float64, 2)
	e.SiteLogLikelihoods(tr, dst)
	if math.Abs(dst[1]) > 1e-12 {
		t.Errorf("all-missing site logL = %v, want 0 (likelihood 1)", dst[1])
	}
	if dst[0] >= 0 {
		t.Errorf("known site logL = %v, want < 0", dst[0])
	}
}

func TestPartialMissingData(t *testing.T) {
	// A site missing in one tip marginalizes that tip: equals the
	// single-tip stationary probability under the model.
	aln := mustAln(t, []string{"a", "b"}, []string{"A", "-"})
	model, err := subst.NewF81([4]float64{0.4, 0.3, 0.2, 0.1}, true)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEval(t, model, aln, device.Serial())
	tr := twoTipTree(t, 0.5)
	got := e.LogLikelihood(tr)
	// Marginalizing tip b leaves sum_x pi_x P_xA(h) = pi_A (stationarity).
	if math.Abs(got-math.Log(0.4)) > 1e-12 {
		t.Errorf("logL = %v, want log(0.4) = %v", got, math.Log(0.4))
	}
}

func TestSiteLogLikelihoodsSumToTotal(t *testing.T) {
	src := rng.NewMT19937(102)
	aln := randomAlignment(src, 5, 40)
	names := aln.Names
	tr, err := gtree.RandomCoalescent(names, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEval(t, subst.NewJC69(), aln, device.New(4))
	dst := make([]float64, e.NSites())
	e.SiteLogLikelihoods(tr, dst)
	sum := 0.0
	for _, v := range dst {
		sum += v
	}
	total := e.LogLikelihood(tr)
	if math.Abs(sum-total) > 1e-9*math.Abs(total) {
		t.Errorf("site sum %v != total %v", sum, total)
	}
}

func TestDeepTreeNoUnderflow(t *testing.T) {
	// 64 tips with long branches: naive per-site products would underflow;
	// the rescaling path must keep the result finite.
	src := rng.NewMT19937(103)
	n := 64
	names := make([]string, n)
	for i := range names {
		names[i] = "t" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	tr, err := gtree.RandomCoalescent(names, 20.0, src)
	if err != nil {
		t.Fatal(err)
	}
	aln := randomAlignment(src, n, 30)
	e := mustEval(t, subst.NewJC69(), aln, device.New(8))
	logL := e.LogLikelihood(tr)
	if math.IsInf(logL, 0) || math.IsNaN(logL) {
		t.Errorf("deep tree logL = %v, want finite", logL)
	}
	if logL >= 0 {
		t.Errorf("logL = %v, want negative", logL)
	}
}

func TestConcurrentEvaluations(t *testing.T) {
	// The evaluator must support concurrent LogLikelihoodSerial calls on
	// different trees: this is how proposal threads use it.
	src := rng.NewMT19937(104)
	aln := randomAlignment(src, 6, 50)
	trees := make([]*gtree.Tree, 16)
	want := make([]float64, 16)
	e := mustEval(t, subst.NewJC69(), aln, device.Serial())
	for i := range trees {
		tr, err := gtree.RandomCoalescent(aln.Names, 1.0, src)
		if err != nil {
			t.Fatal(err)
		}
		trees[i] = tr
		want[i] = e.LogLikelihoodSerial(tr)
	}
	got := make([]float64, 16)
	outer := device.New(8)
	outer.Launch(16, func(i int) {
		got[i] = e.LogLikelihoodSerial(trees[i])
	})
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("tree %d: concurrent %v != sequential %v", i, got[i], want[i])
		}
	}
}

func TestCheckTree(t *testing.T) {
	aln := mustAln(t, []string{"a", "b"}, []string{"ACGT", "ACGA"})
	e := mustEval(t, subst.NewJC69(), aln, device.Serial())
	if err := e.CheckTree(twoTipTree(t, 1)); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	src := rng.NewMT19937(105)
	big, err := gtree.RandomCoalescent([]string{"a", "b", "c"}, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CheckTree(big); err == nil {
		t.Error("tip-count mismatch not caught")
	}
}

func TestNewErrors(t *testing.T) {
	aln := mustAln(t, []string{"a", "b"}, []string{"AC", "GT"})
	if _, err := New(nil, aln, nil); err == nil {
		t.Error("nil model accepted")
	}
	bad := &phylip.Alignment{Names: []string{"a"}, Seqs: []*bitseq.Seq{bitseq.FromString("AC")}}
	if _, err := New(subst.NewJC69(), bad, nil); err == nil {
		t.Error("invalid alignment accepted")
	}
}

func TestBruteForceRefusesLargeTrees(t *testing.T) {
	src := rng.NewMT19937(106)
	names := make([]string, 10)
	for i := range names {
		names[i] = "t" + string(rune('a'+i))
	}
	tr, err := gtree.RandomCoalescent(names, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	aln := randomAlignment(src, 10, 4)
	if _, err := BruteForceLogLikelihood(subst.NewJC69(), aln.Seqs, tr); err == nil {
		t.Error("brute force accepted a 9-interior-node tree")
	}
}
