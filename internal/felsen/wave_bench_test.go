package felsen

import (
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/gtree"
	"mpcgs/internal/resim"
	"mpcgs/internal/rng"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

// benchWaveRound isolates the wave kernel from the sampler: one bound
// round of 8 candidates, evaluated either as a fused wave grid or by the
// per-candidate delta path, on a serial device so no launch scheduling
// obscures the kernel cost.
func benchWaveRound(b *testing.B, seqLen int, wave bool) {
	b.Helper()
	aln, _, err := seqgen.SimulateData(12, seqLen, 1.0, 424)
	if err != nil {
		b.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.NewMT19937(17)
	tree, err := gtree.RandomCoalescent(aln.Names, 1.0, src)
	if err != nil {
		b.Fatal(err)
	}
	phi := resim.PickTarget(tree, src)
	props := make([]*gtree.Tree, 0, 8)
	for len(props) < 8 {
		p := tree.Clone()
		if resim.Resimulate(p, phi, 1.0, src) == nil {
			props = append(props, p)
		}
	}
	eval, err := New(model, aln, device.Serial())
	if err != nil {
		b.Fatal(err)
	}
	c := eval.NewDeltaCache()
	eval.Rebase(c, tree)
	out := make([]float64, len(props))
	w := eval.NewWave(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if wave {
			w.BindRound(phi)
			w.Eval(props, out)
		} else {
			for j, p := range props {
				out[j] = eval.LogLikelihoodDelta(c, p)
			}
		}
	}
}

func BenchmarkWaveRound1000bp(b *testing.B)             { benchWaveRound(b, 1000, true) }
func BenchmarkWaveRound1000bpPerCandidate(b *testing.B) { benchWaveRound(b, 1000, false) }
func BenchmarkWaveRound4000bp(b *testing.B)             { benchWaveRound(b, 4000, true) }
func BenchmarkWaveRound4000bpPerCandidate(b *testing.B) { benchWaveRound(b, 4000, false) }
