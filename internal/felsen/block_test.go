package felsen

// Determinism and equivalence of the pattern-block delta kernel across
// block sizes and devices. The contract under test (delta.go): block
// boundaries are a pure function of (nPatterns, blockSize), the per-block
// partials reduce in block order, and blocks write disjoint pattern
// ranges — so for a fixed block size the result is bit-identical across
// repeat runs, worker counts, and the inline-vs-pooled execution choice,
// while any block size agrees with the serial evaluation to roundoff.

import (
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/gtree"
	"mpcgs/internal/resim"
	"mpcgs/internal/rng"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

// blockSizesFor returns the block widths the issue pins: one pattern per
// block (maximal partitioning), a cache-line of float64s, the default,
// and wider than the whole pattern axis (degenerates to one block).
func blockSizesFor(nPatterns int) []int {
	return []int{1, 8, DefaultBlockSize, nPatterns + 100}
}

// blockFixture builds an alignment large enough that Rebase exceeds the
// inline-execution threshold (so pooled devices actually take the
// parallel branch), an initial genealogy, and a set of proposals.
func blockFixture(t *testing.T) (*subst.F81, *gtree.Tree, []*gtree.Tree, func(dev *device.Device) *Evaluator) {
	t.Helper()
	aln, _, err := seqgen.SimulateData(12, 2000, 1.0, 424)
	if err != nil {
		t.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewMT19937(17)
	tree, err := gtree.RandomCoalescent(aln.Names, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	props := make([]*gtree.Tree, 0, 6)
	for len(props) < 6 {
		p := tree.Clone()
		target := resim.PickTarget(p, src)
		if resim.Resimulate(p, target, 1.0, src) == nil {
			props = append(props, p)
		}
	}
	mk := func(dev *device.Device) *Evaluator {
		eval, err := New(model, aln, dev)
		if err != nil {
			t.Fatal(err)
		}
		return eval
	}
	return model, tree, props, mk
}

func TestBlockSizesAgreeWithSerialEval(t *testing.T) {
	// Every block size evaluates to the serial reference within roundoff,
	// on both the read-only (GMH) and staged paths.
	_, tree, props, mk := blockFixture(t)
	ref := mk(device.Serial())
	want := make([]float64, len(props))
	for i, p := range props {
		want[i] = ref.LogLikelihoodSerial(p)
	}
	for _, bs := range blockSizesFor(ref.NPatterns()) {
		eval := mk(device.Serial())
		eval.SetBlockSize(bs)
		c := eval.NewDeltaCache()
		eval.Rebase(c, tree)
		for i, p := range props {
			if got := eval.LogLikelihoodDelta(c, p); !closeRel(got, want[i]) {
				t.Errorf("blockSize=%d proposal %d: delta %v != serial %v", bs, i, got, want[i])
			}
			ev := eval.StageDelta(c, p)
			if !closeRel(ev.LogLik(), want[i]) {
				t.Errorf("blockSize=%d proposal %d: staged %v != serial %v", bs, i, ev.LogLik(), want[i])
			}
			ev.Discard()
		}
	}
}

func TestBlockKernelBitStableAcrossRunsAndWorkers(t *testing.T) {
	// For one block size, repeat runs must agree bit-for-bit — across
	// fresh evaluators, worker counts (serial, 2, 8), and hence across
	// the inline and pool-parallel execution branches.
	_, tree, props, mk := blockFixture(t)
	nPat := mk(device.Serial()).NPatterns()
	for _, bs := range blockSizesFor(nPat) {
		devs := []func() *device.Device{
			device.Serial,
			func() *device.Device { return device.New(2) },
			func() *device.Device { return device.New(8) },
		}
		var want []float64
		var wantRebase float64
		for di, mkDev := range devs {
			for rep := 0; rep < 2; rep++ {
				eval := mk(mkDev())
				eval.SetBlockSize(bs)
				c := eval.NewDeltaCache()
				rb := eval.Rebase(c, tree)
				got := make([]float64, 0, 2*len(props))
				for _, p := range props {
					got = append(got, eval.LogLikelihoodDelta(c, p))
				}
				// Staged path: same bits as read-only, and Commit leaves the
				// cache exactly where RebaseTo would.
				for _, p := range props {
					ev := eval.StageDelta(c, p)
					got = append(got, ev.LogLik())
					ev.Discard()
				}
				if di == 0 && rep == 0 {
					want, wantRebase = got, rb
					continue
				}
				if rb != wantRebase {
					t.Fatalf("blockSize=%d dev %d rep %d: Rebase %v != first run %v (must be bit-identical)",
						bs, di, rep, rb, wantRebase)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("blockSize=%d dev %d rep %d eval %d: %v != first run %v (must be bit-identical)",
							bs, di, rep, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestBlockSizeStagedCommitMatchesRebaseTo(t *testing.T) {
	// Accepting through Commit and accepting through RebaseTo must leave
	// bit-identical caches at every block size: subsequent evaluations
	// from both agree exactly.
	_, tree, props, mk := blockFixture(t)
	nPat := mk(device.Serial()).NPatterns()
	for _, bs := range blockSizesFor(nPat) {
		a := mk(device.Serial())
		a.SetBlockSize(bs)
		b := mk(device.New(4))
		b.SetBlockSize(bs)
		ca, cb := a.NewDeltaCache(), b.NewDeltaCache()
		a.Rebase(ca, tree)
		b.Rebase(cb, tree)
		ev := a.StageDelta(ca, props[0])
		staged := ev.LogLik()
		ev.Commit()
		if rb := b.RebaseTo(cb, props[0]); rb != staged {
			t.Fatalf("blockSize=%d: RebaseTo %v != committed stage %v (must be bit-identical)", bs, rb, staged)
		}
		for _, p := range props[1:] {
			ga, gb := a.LogLikelihoodDelta(ca, p), b.LogLikelihoodDelta(cb, p)
			if ga != gb {
				t.Fatalf("blockSize=%d: post-commit delta %v != post-rebase delta %v (must be bit-identical)", bs, ga, gb)
			}
		}
	}
}

func TestSingleBlockMatchesUnblockedSum(t *testing.T) {
	// A block size covering the whole pattern axis must reproduce the
	// pre-block kernel's summation exactly: one block, one partial, no
	// reassociation. Guard: any two block sizes that both yield a single
	// block give identical bits.
	_, tree, props, mk := blockFixture(t)
	nPat := mk(device.Serial()).NPatterns()
	a := mk(device.Serial())
	a.SetBlockSize(nPat)
	b := mk(device.Serial())
	b.SetBlockSize(nPat * 3)
	ca, cb := a.NewDeltaCache(), b.NewDeltaCache()
	if ra, rb := a.Rebase(ca, tree), b.Rebase(cb, tree); ra != rb {
		t.Fatalf("single-block Rebase differs across widths: %v != %v", ra, rb)
	}
	for i, p := range props {
		if ga, gb := a.LogLikelihoodDelta(ca, p), b.LogLikelihoodDelta(cb, p); ga != gb {
			t.Fatalf("proposal %d: single-block delta differs across widths: %v != %v", i, ga, gb)
		}
	}
}

func TestSetBlockSizeRejectsNonPositive(t *testing.T) {
	_, _, _, mk := blockFixture(t)
	eval := mk(device.Serial())
	defer func() {
		if recover() == nil {
			t.Error("SetBlockSize(0) did not panic")
		}
	}()
	eval.SetBlockSize(0)
}
