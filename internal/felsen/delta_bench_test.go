package felsen

import (
	"fmt"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/gtree"
	"mpcgs/internal/phylip"
	"mpcgs/internal/resim"
	"mpcgs/internal/rng"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

func benchFixture(b *testing.B, nSeq, L int) (*Evaluator, *gtree.Tree) {
	b.Helper()
	aln, _, err := seqgen.SimulateData(nSeq, L, 1.0, 99)
	if err != nil {
		b.Fatal(err)
	}
	eval := benchEval(b, aln)
	tree, err := gtree.RandomCoalescent(aln.Names, 1.0, rng.NewMT19937(5))
	if err != nil {
		b.Fatal(err)
	}
	return eval, tree
}

func benchEval(b *testing.B, aln *phylip.Alignment) *Evaluator {
	b.Helper()
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		b.Fatal(err)
	}
	eval, err := New(model, aln, nil)
	if err != nil {
		b.Fatal(err)
	}
	return eval
}

// benchProposal derives one valid neighbourhood resimulation of tree.
func benchProposal(b *testing.B, tree *gtree.Tree, seed uint32) *gtree.Tree {
	b.Helper()
	src := rng.NewMT19937(seed)
	prop := tree.Clone()
	for {
		prop.CopyFrom(tree)
		target := resim.PickTarget(prop, src)
		if resim.Resimulate(prop, target, 1.0, src) == nil {
			return prop
		}
	}
}

// BenchmarkDeltaVsSerial pins the cost of one proposal likelihood on the
// delta path (incremental, pattern-compressed, allocation-free) against
// the from-scratch serial evaluation the seed's GMH kernel performed per
// proposal. The ratio is the per-proposal work saving behind the §6
// speedups; it must grow with sequence length. The 4000bp point is the
// large-pattern regime this kernel is optimized for (Fig. 16's growing
// right edge): at 12 sequences it compresses to well over a thousand
// distinct site patterns, so the pattern-lane streaming dominates.
func BenchmarkDeltaVsSerial(b *testing.B) {
	for _, L := range []int{200, 1000, 4000} {
		eval, tree := benchFixture(b, 12, L)
		c := eval.NewDeltaCache()
		eval.Rebase(c, tree)
		prop := benchProposal(b, tree, 77)
		b.Run(fmt.Sprintf("delta/bp=%d", L), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eval.LogLikelihoodDelta(c, prop)
			}
		})
		b.Run(fmt.Sprintf("serial/bp=%d", L), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval.LogLikelihoodSerial(prop)
			}
		})
	}
}

// BenchmarkDeltaParallel measures the same per-proposal delta evaluation
// with pattern blocks spread over a device pool: the two-level
// (proposals x blocks) parallelism that lets one proposal's evaluation
// scale past the proposal count on large alignments.
func BenchmarkDeltaParallel(b *testing.B) {
	for _, L := range []int{1000, 4000} {
		aln, _, err := seqgen.SimulateData(12, L, 1.0, 99)
		if err != nil {
			b.Fatal(err)
		}
		model, err := subst.NewF81(aln.BaseFreqs(), true)
		if err != nil {
			b.Fatal(err)
		}
		dev := device.New(0)
		eval, err := New(model, aln, dev)
		if err != nil {
			b.Fatal(err)
		}
		tree, err := gtree.RandomCoalescent(aln.Names, 1.0, rng.NewMT19937(5))
		if err != nil {
			b.Fatal(err)
		}
		c := eval.NewDeltaCache()
		eval.Rebase(c, tree)
		prop := benchProposal(b, tree, 77)
		b.Run(fmt.Sprintf("bp=%d", L), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eval.LogLikelihoodDelta(c, prop)
			}
		})
		dev.Close()
	}
}

// BenchmarkRebaseTo measures the accept path of the GMH round loop: the
// incremental cache move onto a freshly accepted proposal. Together with
// BenchmarkDeltaVsSerial it covers both halves of the per-round kernel
// cost (evaluate-all, rebase-one).
func BenchmarkRebaseTo(b *testing.B) {
	for _, L := range []int{200, 1000, 4000} {
		eval, tree := benchFixture(b, 12, L)
		c := eval.NewDeltaCache()
		eval.Rebase(c, tree)
		src := rng.NewMT19937(31)
		// Two trees one neighbourhood move apart: alternating RebaseTo
		// between them keeps every iteration's dirty set non-empty.
		a := tree.Clone()
		p := tree.Clone()
		for {
			p.CopyFrom(a)
			target := resim.PickTarget(p, src)
			if resim.Resimulate(p, target, 1.0, src) == nil {
				break
			}
		}
		b.Run(fmt.Sprintf("bp=%d", L), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					eval.RebaseTo(c, p)
				} else {
					eval.RebaseTo(c, a)
				}
			}
		})
	}
}

// BenchmarkRebaseFull measures a full-tree evaluation through the block
// kernel: every interior node dirty, so — at 12 sequences — over half of
// all child rows are tip rows. This is the tip-dominated regime that
// pins the cost of tip-cell selection, which bindRows resolves once per
// evaluation into plain slice headers instead of re-branching per node
// per block.
func BenchmarkRebaseFull(b *testing.B) {
	for _, L := range []int{1000, 4000} {
		eval, tree := benchFixture(b, 12, L)
		c := eval.NewDeltaCache()
		b.Run(fmt.Sprintf("bp=%d", L), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eval.Rebase(c, tree)
			}
		})
	}
}
