package felsen

import (
	"fmt"
	"testing"

	"mpcgs/internal/gtree"
	"mpcgs/internal/phylip"
	"mpcgs/internal/resim"
	"mpcgs/internal/rng"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

func benchFixture(b *testing.B, nSeq, L int) (*Evaluator, *gtree.Tree) {
	b.Helper()
	aln, _, err := seqgen.SimulateData(nSeq, L, 1.0, 99)
	if err != nil {
		b.Fatal(err)
	}
	eval := benchEval(b, aln)
	tree, err := gtree.RandomCoalescent(aln.Names, 1.0, rng.NewMT19937(5))
	if err != nil {
		b.Fatal(err)
	}
	return eval, tree
}

func benchEval(b *testing.B, aln *phylip.Alignment) *Evaluator {
	b.Helper()
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		b.Fatal(err)
	}
	eval, err := New(model, aln, nil)
	if err != nil {
		b.Fatal(err)
	}
	return eval
}

// BenchmarkDeltaVsSerial pins the cost of one proposal likelihood on the
// delta path (incremental, pattern-compressed, allocation-free) against
// the from-scratch serial evaluation the seed's GMH kernel performed per
// proposal. The ratio is the per-proposal work saving behind the §6
// speedups; it must grow with sequence length.
func BenchmarkDeltaVsSerial(b *testing.B) {
	for _, L := range []int{200, 1000} {
		eval, tree := benchFixture(b, 12, L)
		c := eval.NewDeltaCache()
		eval.Rebase(c, tree)
		src := rng.NewMT19937(77)
		prop := tree.Clone()
		for {
			prop.CopyFrom(tree)
			target := resim.PickTarget(prop, src)
			if resim.Resimulate(prop, target, 1.0, src) == nil {
				break
			}
		}
		b.Run(fmt.Sprintf("delta/bp=%d", L), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eval.LogLikelihoodDelta(c, prop)
			}
		})
		b.Run(fmt.Sprintf("serial/bp=%d", L), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval.LogLikelihoodSerial(prop)
			}
		})
	}
}
