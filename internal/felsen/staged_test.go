package felsen

import (
	"testing"

	"mpcgs/internal/resim"
)

// TestStageDeltaMatchesLogLikelihoodDelta: the staged evaluation must
// return bit-identical log-likelihoods to the one-shot delta path (both
// run the same kernel), and Discard must leave the cache untouched.
func TestStageDeltaMatchesLogLikelihoodDelta(t *testing.T) {
	eval, tree, src := deltaFixture(t, 10, 80, 501)
	c := eval.NewDeltaCache()
	base := eval.Rebase(c, tree)
	prop := tree.Clone()
	for step := 0; step < 200; step++ {
		prop.CopyFrom(tree)
		target := resim.PickTarget(prop, src)
		if err := resim.Resimulate(prop, target, 1.0, src); err != nil {
			continue
		}
		want := eval.LogLikelihoodDelta(c, prop)
		d := eval.StageDelta(c, prop)
		if got := d.LogLik(); got != want {
			t.Fatalf("step %d: StageDelta = %v, LogLikelihoodDelta = %v", step, got, want)
		}
		d.Discard()
		// Cache unchanged: the base state must still evaluate to its
		// cached value with zero dirty nodes.
		if got := eval.LogLikelihoodDelta(c, tree); got != base {
			t.Fatalf("step %d: Discard dirtied the cache (%v vs %v)", step, got, base)
		}
	}
}

// TestStageDeltaCommitEqualsRebase: committing a staged evaluation must
// leave the cache in exactly the state RebaseTo would produce — same
// stored log-likelihood and same subsequent delta evaluations.
func TestStageDeltaCommitEqualsRebase(t *testing.T) {
	eval, tree, src := deltaFixture(t, 10, 80, 502)
	cStaged := eval.NewDeltaCache()
	cRebase := eval.NewDeltaCache()
	eval.Rebase(cStaged, tree)
	eval.Rebase(cRebase, tree)

	cur := tree.Clone()
	prop := tree.Clone()
	for step := 0; step < 150; step++ {
		prop.CopyFrom(cur)
		target := resim.PickTarget(prop, src)
		if err := resim.Resimulate(prop, target, 1.0, src); err != nil {
			continue
		}
		d := eval.StageDelta(cStaged, prop)
		staged := d.LogLik()
		d.Commit()
		rebase := eval.RebaseTo(cRebase, prop)
		if staged != rebase {
			t.Fatalf("step %d: committed %v, RebaseTo %v", step, staged, rebase)
		}
		cur.CopyFrom(prop)
		// Both caches must now agree that cur is clean.
		if a, b := eval.LogLikelihoodDelta(cStaged, cur), eval.LogLikelihoodDelta(cRebase, cur); a != b {
			t.Fatalf("step %d: caches diverged after commit (%v vs %v)", step, a, b)
		}
	}
}

// TestStageDeltaNoChange: staging the base tree itself returns the cached
// value and Commit/Discard are no-ops.
func TestStageDeltaNoChange(t *testing.T) {
	eval, tree, _ := deltaFixture(t, 8, 60, 503)
	c := eval.NewDeltaCache()
	base := eval.Rebase(c, tree)
	d := eval.StageDelta(c, tree)
	if d.LogLik() != base {
		t.Fatalf("StageDelta on base = %v, want %v", d.LogLik(), base)
	}
	d.Commit()
	d.Discard()
	if got := eval.LogLikelihoodDelta(c, tree); got != base {
		t.Fatalf("no-change commit corrupted cache: %v vs %v", got, base)
	}
}

// TestStageDeltaPanicsWithoutBase mirrors LogLikelihoodDelta's contract.
func TestStageDeltaPanicsWithoutBase(t *testing.T) {
	eval, tree, _ := deltaFixture(t, 6, 40, 505)
	defer func() {
		if recover() == nil {
			t.Fatal("StageDelta on empty cache did not panic")
		}
	}()
	eval.StageDelta(eval.NewDeltaCache(), tree)
}
