// Package felsen computes the data likelihood P(D|G) of a genealogy by
// Felsenstein's pruning algorithm (paper §2.4, Eq. 19-22): a post-order
// traversal propagates per-nucleotide conditional likelihoods from the
// tips to the root independently at every base-pair position, and the
// per-site log-likelihoods add.
//
// The device-parallel path mirrors the paper's data likelihood kernel
// (§5.2.2): one thread per site, each performing the full recursive
// descent, followed by an additive reduction of the per-site logs. The
// serial path is the reference implementation and the baseline sampler's
// evaluator.
package felsen

import (
	"fmt"
	"math"
	"sync"

	"mpcgs/internal/bitseq"
	"mpcgs/internal/device"
	"mpcgs/internal/gtree"
	"mpcgs/internal/logspace"
	"mpcgs/internal/phylip"
	"mpcgs/internal/subst"
)

// rescaleThreshold triggers per-node renormalization of conditional
// likelihoods: once the largest entry falls below it, the vector is scaled
// up and the log-scale accumulated, preventing underflow on deep trees
// (paper §5.3).
const rescaleThreshold = 1e-150

// Evaluator computes log P(D|G) for genealogies over a fixed alignment.
// It is safe for concurrent use: per-call scratch comes from an internal
// pool, so parallel proposal threads can evaluate different trees at once.
type Evaluator struct {
	model     subst.Model
	freqs     [4]float64
	seqs      []*bitseq.Seq
	nSites    int
	dev       *device.Device
	pool      sync.Pool // *scratch
	blockPool sync.Pool // *blockScratch
	deltaPool sync.Pool // *deltaScratch
	wavePool  sync.Pool // *waveScratch

	// Site-pattern compression for the delta path (see delta.go): distinct
	// alignment columns, their multiplicities, and per-tip base codes
	// (0..3, 4 = missing) — the immutable data the paper parks in constant
	// memory (§4.4). tipCond additionally materializes every tip's
	// conditional lanes per pattern in the same SoA row layout as the
	// delta cache (tip i's state lane x at [i*4*nPatterns + x*nPatterns]),
	// immutable for the evaluator's lifetime, so the delta kernel streams
	// tip conditionals instead of regenerating them. zeroScale is the
	// all-zero rescaling lane every tip row shares.
	nPatterns int
	patCount  []float64
	patBase   [][]uint8
	tipCond   []float64
	zeroScale []float64

	// blockSize is the pattern-block width of the delta kernel (see
	// delta.go). It participates in the floating-point summation order, so
	// it is fixed at construction (DefaultBlockSize) unless overridden by
	// SetBlockSize before any evaluation.
	blockSize int
}

type scratch struct {
	mats  []subst.Matrix // per-node transition matrix, indexed by child node
	order []int          // post-order node visit sequence for the tree under evaluation
}

// blockScratch is the per-block working memory of the iterative site
// kernel: conditional likelihood vectors for every node, reused across
// the sites of the block (the role shared memory plays in the paper's
// kernels).
type blockScratch struct {
	partials [][4]float64
	scale    []float64
}

// New builds an evaluator for the alignment under the given substitution
// model, executing parallel site kernels on dev.
func New(model subst.Model, aln *phylip.Alignment, dev *device.Device) (*Evaluator, error) {
	if err := aln.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("felsen: nil model")
	}
	if dev == nil {
		dev = device.Serial()
	}
	e := &Evaluator{
		model:     model,
		freqs:     model.Freqs(),
		seqs:      aln.Seqs,
		nSites:    aln.SeqLen(),
		dev:       dev,
		blockSize: DefaultBlockSize,
	}
	nNodes := 2*len(aln.Seqs) - 1
	e.pool.New = func() any {
		return &scratch{
			mats:  make([]subst.Matrix, nNodes),
			order: make([]int, 0, nNodes),
		}
	}
	e.blockPool.New = func() any {
		return &blockScratch{
			partials: make([][4]float64, nNodes),
			scale:    make([]float64, nNodes),
		}
	}
	e.deltaPool.New = func() any {
		ds := &deltaScratch{
			dirty: make([]bool, nNodes),
			order: make([]int, 0, nNodes),
			pos:   make([]int, nNodes),
			mats:  make([]subst.Matrix, nNodes),
		}
		// The block kernel closure is built once per pooled scratch (cold
		// path) and rebound per evaluation through the scratch's fields, so
		// launching blocks allocates nothing on the hot path.
		ds.kernel = ds.runBlock
		return ds
	}
	e.wavePool.New = func() any {
		// Sized at Get time so a SetBlockSize before the first evaluation
		// is honored; one working row (four state lanes plus the scale
		// lane) per concurrent wave cell.
		return &waveScratch{
			cond:  make([]float64, nStates*e.blockSize),
			scale: make([]float64, e.blockSize),
		}
	}
	e.compressPatterns()
	return e, nil
}

// compressPatterns deduplicates alignment columns into weighted site
// patterns: the delta path evaluates each distinct column once and sums
// the per-pattern log-likelihoods with their multiplicities — an exact
// reassociation of the sum over sites.
func (e *Evaluator) compressPatterns() {
	nSeqs := len(e.seqs)
	e.patBase = make([][]uint8, nSeqs)
	for i := range e.patBase {
		e.patBase[i] = make([]uint8, 0, e.nSites)
	}
	index := make(map[string]int, e.nSites)
	key := make([]byte, nSeqs)
	for site := 0; site < e.nSites; site++ {
		for i, sq := range e.seqs {
			if b, known := sq.At(site); known {
				key[i] = uint8(b)
			} else {
				key[i] = 4
			}
		}
		if pat, ok := index[string(key)]; ok {
			e.patCount[pat]++
			continue
		}
		index[string(key)] = e.nPatterns
		e.nPatterns++
		e.patCount = append(e.patCount, 1)
		for i := range e.patBase {
			e.patBase[i] = append(e.patBase[i], key[i])
		}
	}
	e.tipCond = make([]float64, nSeqs*nStates*e.nPatterns)
	e.zeroScale = make([]float64, e.nPatterns)
	for i := range e.patBase {
		row := e.tipCond[i*nStates*e.nPatterns : (i+1)*nStates*e.nPatterns]
		for pat, code := range e.patBase[i] {
			if code < 4 {
				row[int(code)*e.nPatterns+pat] = 1
			} else {
				for x := 0; x < nStates; x++ {
					row[x*e.nPatterns+pat] = 1
				}
			}
		}
	}
}

// NSites returns the number of base-pair positions.
func (e *Evaluator) NSites() int { return e.nSites }

// NPatterns returns the number of distinct site patterns the alignment
// compresses to: the length of every conditional lane in the delta path.
func (e *Evaluator) NPatterns() int { return e.nPatterns }

// SetBlockSize overrides the delta kernel's pattern-block width
// (DefaultBlockSize). The block partition fixes the floating-point
// summation order of the per-pattern log-likelihoods, so two evaluators
// agree bit-for-bit exactly when their block sizes match: call this only
// before the first evaluation, with the same value on every run that must
// reproduce (checkpoint/resume included). Results for any block size
// agree to floating-point roundoff.
func (e *Evaluator) SetBlockSize(n int) {
	if n <= 0 {
		panic("felsen: SetBlockSize requires a positive block size")
	}
	e.blockSize = n
}

// NSeqs returns the number of sequences.
func (e *Evaluator) NSeqs() int { return len(e.seqs) }

// Model returns the substitution model in use.
func (e *Evaluator) Model() subst.Model { return e.model }

// CheckTree verifies that a genealogy is structurally compatible with the
// alignment (tip count matches; tip i carries sequence i).
func (e *Evaluator) CheckTree(t *gtree.Tree) error {
	if t.NTips() != len(e.seqs) {
		return fmt.Errorf("felsen: tree has %d tips, alignment has %d sequences", t.NTips(), len(e.seqs))
	}
	return t.Validate()
}

// prepare fills per-node transition matrices and the post-order visit
// sequence for the tree. Both depend only on tree shape and branch
// lengths, so they are computed once per evaluation and shared by every
// site thread.
func (e *Evaluator) prepare(t *gtree.Tree, s *scratch) {
	for i := range t.Nodes {
		if i == t.Root {
			continue
		}
		e.model.TransitionInto(t.BranchLength(i), &s.mats[i])
	}
	s.order = s.order[:0]
	t.PostOrder(func(i int) { s.order = append(s.order, i) })
}

// LogLikelihood returns log P(D|G) with sites evaluated in parallel on the
// device and combined by an additive reduction, the structure of the
// paper's data likelihood kernel. Sites are processed in per-worker
// blocks so the conditional-likelihood buffers are allocated once per
// block rather than once per site.
func (e *Evaluator) LogLikelihood(t *gtree.Tree) float64 {
	s := e.pool.Get().(*scratch)
	defer e.pool.Put(s)
	e.prepare(t, s)
	siteLogs := make([]float64, e.nSites)
	e.dev.LaunchBlocks(e.nSites, func(lo, hi int) {
		b := e.blockPool.Get().(*blockScratch)
		defer e.blockPool.Put(b)
		for site := lo; site < hi; site++ {
			siteLogs[site] = e.siteLogLikelihoodIter(t, s, b, site)
		}
	})
	return e.dev.ReduceSum(siteLogs)
}

// LogLikelihoodSerial returns log P(D|G) on the calling goroutine with no
// device parallelism: the evaluator used by the serial baseline sampler.
func (e *Evaluator) LogLikelihoodSerial(t *gtree.Tree) float64 {
	s := e.pool.Get().(*scratch)
	defer e.pool.Put(s)
	e.prepare(t, s)
	b := e.blockPool.Get().(*blockScratch)
	defer e.blockPool.Put(b)
	total := 0.0
	for site := 0; site < e.nSites; site++ {
		total += e.siteLogLikelihoodIter(t, s, b, site)
	}
	return total
}

// LogLikelihoodRecursive returns log P(D|G) using the straightforward
// recursive-descent site kernel (the paper's formulation, §5.2.2). It is
// the reference the iterative kernel is validated against.
func (e *Evaluator) LogLikelihoodRecursive(t *gtree.Tree) float64 {
	s := e.pool.Get().(*scratch)
	defer e.pool.Put(s)
	e.prepare(t, s)
	total := 0.0
	for site := 0; site < e.nSites; site++ {
		total += e.siteLogLikelihood(t, s, site)
	}
	return total
}

// SiteLogLikelihoods fills dst (length NSites) with the per-site
// log-likelihoods, for diagnostics and tests.
func (e *Evaluator) SiteLogLikelihoods(t *gtree.Tree, dst []float64) {
	if len(dst) != e.nSites {
		panic("felsen: SiteLogLikelihoods dst length mismatch")
	}
	s := e.pool.Get().(*scratch)
	defer e.pool.Put(s)
	e.prepare(t, s)
	e.dev.LaunchBlocks(e.nSites, func(lo, hi int) {
		b := e.blockPool.Get().(*blockScratch)
		defer e.blockPool.Put(b)
		for site := lo; site < hi; site++ {
			dst[site] = e.siteLogLikelihoodIter(t, s, b, site)
		}
	})
}

// siteLogLikelihoodIter is the iterative form of the pruning kernel: it
// walks the precomputed post-order sequence with flat per-block buffers,
// avoiding per-site recursion and stack traffic. Numerically it performs
// the identical operations to siteLogLikelihood in the identical order.
func (e *Evaluator) siteLogLikelihoodIter(t *gtree.Tree, s *scratch, b *blockScratch, site int) float64 {
	for _, node := range s.order {
		nd := &t.Nodes[node]
		if nd.IsTip() {
			if base, known := e.seqs[node].At(site); known {
				b.partials[node] = [4]float64{}
				b.partials[node][base] = 1
			} else {
				b.partials[node] = [4]float64{1, 1, 1, 1}
			}
			b.scale[node] = 0
			continue
		}
		c0, c1 := nd.Child[0], nd.Child[1]
		l, r := &b.partials[c0], &b.partials[c1]
		m0, m1 := &s.mats[c0], &s.mats[c1]
		out := &b.partials[node]
		maxv := 0.0
		for x := 0; x < 4; x++ {
			s0 := m0[x][0]*l[0] + m0[x][1]*l[1] + m0[x][2]*l[2] + m0[x][3]*l[3]
			s1 := m1[x][0]*r[0] + m1[x][1]*r[1] + m1[x][2]*r[2] + m1[x][3]*r[3]
			out[x] = s0 * s1
			if out[x] > maxv {
				maxv = out[x]
			}
		}
		b.scale[node] = b.scale[c0] + b.scale[c1]
		if maxv < rescaleThreshold && maxv > 0 {
			inv := 1 / maxv
			for x := 0; x < 4; x++ {
				out[x] *= inv
			}
			b.scale[node] += math.Log(maxv)
		}
	}
	root := &b.partials[t.Root]
	siteL := e.freqs[0]*root[0] + e.freqs[1]*root[1] + e.freqs[2]*root[2] + e.freqs[3]*root[3]
	if siteL <= 0 {
		return logspace.NegInf
	}
	return math.Log(siteL) + b.scale[t.Root]
}

// siteLogLikelihood performs the recursive post-order descent of Eq. 19
// for one site: L_n(X) for interior node n is the product over children c
// of sum_Y P_XY(t_c) L_c(Y); at the root the conditionals contract with
// the prior frequencies (Eq. 21). Missing data positions contribute the
// all-ones vector. Conditionals are renormalized whenever they shrink
// below rescaleThreshold, with the log-scale carried separately (§5.3).
func (e *Evaluator) siteLogLikelihood(t *gtree.Tree, s *scratch, site int) float64 {
	logScale := 0.0
	var rec func(node int) [4]float64
	rec = func(node int) [4]float64 {
		nd := &t.Nodes[node]
		if nd.IsTip() {
			if b, known := e.seqs[node].At(site); known {
				var v [4]float64
				v[b] = 1
				return v
			}
			return [4]float64{1, 1, 1, 1}
		}
		c0, c1 := nd.Child[0], nd.Child[1]
		l := rec(c0)
		r := rec(c1)
		m0, m1 := &s.mats[c0], &s.mats[c1]
		var out [4]float64
		maxv := 0.0
		for x := 0; x < 4; x++ {
			var s0, s1 float64
			for y := 0; y < 4; y++ {
				s0 += m0[x][y] * l[y]
				s1 += m1[x][y] * r[y]
			}
			out[x] = s0 * s1
			if out[x] > maxv {
				maxv = out[x]
			}
		}
		if maxv < rescaleThreshold && maxv > 0 {
			inv := 1 / maxv
			for x := 0; x < 4; x++ {
				out[x] *= inv
			}
			logScale += math.Log(maxv)
		}
		return out
	}
	rootCond := rec(t.Root)
	var siteL float64
	for x := 0; x < 4; x++ {
		siteL += e.freqs[x] * rootCond[x]
	}
	if siteL <= 0 {
		return logspace.NegInf
	}
	return math.Log(siteL) + logScale
}

// BruteForceLogLikelihood computes log P(D|G) by explicit enumeration of
// every assignment of nucleotides to interior nodes — exponential in tree
// size, usable only for tiny test trees (it refuses more than 7 interior
// nodes). It exists to validate the pruning recursion.
func BruteForceLogLikelihood(model subst.Model, seqs []*bitseq.Seq, t *gtree.Tree) (float64, error) {
	nInt := t.NInterior()
	if nInt > 7 {
		return 0, fmt.Errorf("felsen: brute force limited to 7 interior nodes, tree has %d", nInt)
	}
	nSites := seqs[0].Len()
	freqs := model.Freqs()
	mats := make([]subst.Matrix, t.NNodes())
	for i := range t.Nodes {
		if i != t.Root {
			model.TransitionInto(t.BranchLength(i), &mats[i])
		}
	}
	total := 0.0
	assign := make([]bitseq.Base, nInt)
	for site := 0; site < nSites; site++ {
		siteSum := 0.0
		var enumerate func(k int)
		enumerate = func(k int) {
			if k == nInt {
				p := freqs[assign[t.Root-t.NTips()]]
				for i := range t.Nodes {
					if i == t.Root {
						continue
					}
					parentState := assign[t.Nodes[i].Parent-t.NTips()]
					var childState bitseq.Base
					if t.IsTip(i) {
						b, known := seqs[i].At(site)
						if !known {
							continue // missing data: marginalized, factor 1
						}
						childState = b
					} else {
						childState = assign[i-t.NTips()]
					}
					p *= mats[i][parentState][childState]
				}
				siteSum += p
				return
			}
			for b := bitseq.Base(0); b < 4; b++ {
				assign[k] = b
				enumerate(k + 1)
			}
		}
		enumerate(0)
		if siteSum <= 0 {
			return logspace.NegInf, nil
		}
		total += math.Log(siteSum)
	}
	return total, nil
}
