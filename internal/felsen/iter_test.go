package felsen

import (
	"math"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
	"mpcgs/internal/subst"
)

// TestIterativeMatchesRecursive validates the optimized flat-buffer site
// kernel against the paper's recursive formulation over many random trees
// and datasets, including missing data and deep trees that trigger
// rescaling.
func TestIterativeMatchesRecursive(t *testing.T) {
	src := rng.NewMT19937(900)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(src, 20)
		names := make([]string, n)
		for i := range names {
			names[i] = "t" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		theta := []float64{0.2, 1.0, 15.0}[trial%3]
		tr, err := gtree.RandomCoalescent(names, theta, src)
		if err != nil {
			t.Fatal(err)
		}
		aln := randomAlignment(src, n, 30)
		// Punch some missing data into the alignment.
		for k := 0; k < 20; k++ {
			aln.Seqs[rng.Intn(src, n)].SetUnknown(rng.Intn(src, 30))
		}
		e := mustEval(t, subst.NewJC69(), aln, device.New(4))
		iter := e.LogLikelihoodSerial(tr)
		rec := e.LogLikelihoodRecursive(tr)
		if math.Abs(iter-rec) > 1e-9*math.Max(1, math.Abs(rec)) {
			t.Fatalf("trial %d (n=%d theta=%v): iterative %v != recursive %v", trial, n, theta, iter, rec)
		}
		par := e.LogLikelihood(tr)
		if math.Abs(par-rec) > 1e-9*math.Max(1, math.Abs(rec)) {
			t.Fatalf("trial %d: parallel %v != recursive %v", trial, par, rec)
		}
	}
}

// TestIterativeRescalingDeepTree forces the rescaling path in the
// iterative kernel and cross-checks the recursive one.
func TestIterativeRescalingDeepTree(t *testing.T) {
	src := rng.NewMT19937(901)
	n := 80
	names := make([]string, n)
	for i := range names {
		names[i] = "x" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	}
	tr, err := gtree.RandomCoalescent(names, 30.0, src)
	if err != nil {
		t.Fatal(err)
	}
	aln := randomAlignment(src, n, 10)
	e := mustEval(t, subst.NewJC69(), aln, device.New(8))
	iter := e.LogLikelihoodSerial(tr)
	rec := e.LogLikelihoodRecursive(tr)
	if math.IsInf(iter, 0) || math.IsNaN(iter) {
		t.Fatalf("iterative logL = %v on deep tree", iter)
	}
	if math.Abs(iter-rec) > 1e-9*math.Abs(rec) {
		t.Fatalf("deep tree: iterative %v != recursive %v", iter, rec)
	}
}

func BenchmarkSiteKernelIterative(b *testing.B) {
	src := rng.NewMT19937(902)
	n := 12
	names := make([]string, n)
	for i := range names {
		names[i] = "t" + string(rune('a'+i))
	}
	tr, err := gtree.RandomCoalescent(names, 1.0, src)
	if err != nil {
		b.Fatal(err)
	}
	aln := randomAlignment(src, n, 200)
	e, err := New(subst.NewJC69(), aln, device.Serial())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.LogLikelihoodSerial(tr)
	}
}

func BenchmarkSiteKernelRecursive(b *testing.B) {
	src := rng.NewMT19937(902)
	n := 12
	names := make([]string, n)
	for i := range names {
		names[i] = "t" + string(rune('a'+i))
	}
	tr, err := gtree.RandomCoalescent(names, 1.0, src)
	if err != nil {
		b.Fatal(err)
	}
	aln := randomAlignment(src, n, 200)
	e, err := New(subst.NewJC69(), aln, device.Serial())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.LogLikelihoodRecursive(tr)
	}
}
