package felsen

// Wave-fused multiple-proposal evaluation.
//
// Every candidate of one GMH round resimulates the same neighbourhood of
// the current state (the auxiliary variable φ, paper §4.3): the proposal
// rewrites exactly the target node φ and its parent slot, and the parent
// slot re-attaches to the same ancestor. Consequently all N candidates
// share the base genealogy's root path above the neighbourhood — the
// parent's ancestors up to the root — and, hanging off every root-path
// node, the same untouched sibling subtree whose conditionals already sit
// in the delta cache. The per-candidate delta evaluation still walks that
// shared path N times, recomputing for each candidate the identical
// clean-side dot products.
//
// A Wave lifts that shared work out of the proposal loop. BindRound
// computes, once per round, the outer-partial lanes of every root-path
// node v:
//
//	outer_v[x](pat) = Σ_y M_{v→clean(v)}[x][y] · cond_{clean(v),y}(pat)
//
// — the clean-child dot product the kernel would otherwise evaluate per
// candidate — plus the round-invariant transition matrices of the chain
// edges above the ancestor. Eval then evaluates the whole candidate set as
// one fused (proposal × pattern-block) grid: each cell computes its
// block's target and parent rows, then walks the root path multiplying a
// single dirty-side dot product against the shared outer lane per node,
// and finishes with the block's root-contraction partial. Per-proposal
// work drops from two dot products per root-path node to one, from two
// fresh transition matrices per dirty node to five per proposal plus a
// shared set, and the round's N nested block launches fuse into one grid.
//
// # Bit-identity with the per-candidate path
//
// The wave is not an approximation and not merely "close": it returns the
// exact bits LogLikelihoodDelta returns for every candidate. That holds
// because the lift only ever precomputes one full operand of a
// multiplication the per-candidate kernel performs anyway — outer_v is
// evaluated with the same left-to-right association as runBlock's fused
// dot product, from the same cached lanes and the same deterministic
// TransitionInto matrices — and IEEE-754 multiplication and addition are
// commutative at the bit level, so (inner·outer) and (ls+rs) do not care
// which side was cached. The per-node operation order (children dots,
// running maximum, rescale test, scale add) matches runBlock exactly, the
// per-pattern order within a block and the block partial order within a
// proposal are fixed, and the grid cells write disjoint slots. Results are
// therefore bit-identical across worker counts, repeat runs, kill/resume,
// and against the per-candidate oracle path.
//
// # Validity contract
//
// A bound round is valid only for candidate trees that differ from the
// cache's base exactly in the slots {φ, parent(φ)}, with the parent slot
// attached to the same ancestor (or being the root when parent(φ) was the
// root) — precisely what resim.ResimulateScratch(t, φ, ...) produces on a
// copy of the base. Anything that moves the cache's base (RebaseTo,
// Rebase, Commit) or changes φ invalidates the binding: callers must
// BindRound again after every accepted move and every fresh φ draw. Eval
// panics without a bound round.

import (
	"math"

	"mpcgs/internal/gtree"
	"mpcgs/internal/logspace"
	"mpcgs/internal/subst"
)

// waveProp is one live candidate of the bound round: its tree, the output
// slot its log-likelihood lands in, and the five proposal-specific
// transition matrices (the target's two child edges, the parent's two
// child edges, and the ancestor→parent edge — every other edge the
// evaluation touches is round-invariant and shared).
type waveProp struct {
	t    *gtree.Tree
	slot int
	// tm0/tm1 are the target's child-edge matrices in Child-array order.
	tm0, tm1 subst.Matrix
	// pmPhi is the parent→φ edge matrix, pmClean the parent's other
	// (clean) child edge matrix; pclean that child's node index.
	pmPhi, pmClean subst.Matrix
	pclean         int
	// am is the ancestor→parent edge matrix; unused in the root case.
	am subst.Matrix
	// tl/tr/cv are the target's children's and the parent's clean child's
	// full-length lane sources (tip table or cache), resolved once per
	// proposal so the grid cells select tip cells by slicing instead of
	// re-branching per cell.
	tlc, tls []float64
	trc, trs []float64
	cvc, cvs []float64
}

// waveScratch is the per-cell working row of the wave kernel: one node's
// conditional lanes for one pattern block, overwritten in place as the
// cell walks target → parent → root path.
type waveScratch struct {
	cond  []float64 // nStates lanes of blockSize patterns each
	scale []float64 // blockSize
}

// Wave evaluates GMH proposal sets against one DeltaCache as fused
// (proposal × pattern-block) grids with a per-round outer-partial lift.
// A Wave is bound to one evaluator and one cache; it is not safe for
// concurrent use (one sampler run owns it, like a resim.Scratch).
type Wave struct {
	e *Evaluator
	c *DeltaCache

	// Round state, set by BindRound.
	phi      int
	parent   int
	rootCase bool
	// path holds the parent's ancestors bottom-up: path[0] is the
	// ancestor, path[len-1] the root. Empty in the root case.
	path []int
	// cleanCh[k] is path[k]'s child off the chain (the untouched sibling
	// subtree); chainMats[k] the path[k]→path[k-1] edge matrix for k ≥ 1
	// (the k = 0 edge, ancestor→parent, is proposal-specific);
	// cleanMats[k] the path[k]→cleanCh[k] edge matrix.
	cleanCh   []int
	chainMats []subst.Matrix
	cleanMats []subst.Matrix
	// outer holds the lift lanes, path-node-major: node k's state lane x
	// is outer[(k*nStates+x)*nPatterns:][:nPatterns]. cleanCond[k] and
	// cleanScale[k] are cleanCh[k]'s state lanes and rescaling-log lane
	// (cache or tip-table slices), resolved once per round so neither the
	// lift blocks nor the grid cells branch on tip-ness.
	outer      []float64
	cleanCond  [][]float64
	cleanScale [][]float64
	bound      bool

	// Eval state: the live candidates and the (block, proposal) partial
	// sums, sums[b*len(props)+li], reduced per proposal in block order.
	props []waveProp
	sums  []float64

	liftKernel func(b int)
	cellKernel func(cell int)
}

// NewWave builds a wave evaluator over c's conditionals. The cache may be
// rebased freely afterwards; each BindRound reads the then-current base.
func (e *Evaluator) NewWave(c *DeltaCache) *Wave {
	w := &Wave{e: e, c: c}
	w.liftKernel = w.runLiftBlock
	w.cellKernel = w.runCell
	return w
}

// rowOf returns a clean node's conditional lanes: the shared tip table for
// tips (scale lane the shared all-zero lane), the cache row otherwise —
// the same sources the per-candidate kernel reads clean rows from.
func (w *Wave) rowOf(node int) (cond, scale []float64) {
	e := w.e
	nPat := e.nPatterns
	nTips := len(e.seqs)
	if node < nTips {
		return e.tipCond[node*nStates*nPat : (node+1)*nStates*nPat], e.zeroScale
	}
	r := node - nTips
	return w.c.cond[r*nStates*nPat : (r+1)*nStates*nPat], w.c.scale[r*nPat : (r+1)*nPat]
}

// BindRound fixes the round's resimulation target φ and computes the
// outer-partial lift against the cache's current base: the root path, its
// round-invariant edge matrices, and every path node's clean-side dot
// product lanes. Must be called after the cache is settled on the current
// state and before Eval; any cache rebase or new φ requires a new bind.
//
//mpcgs:hotpath
func (w *Wave) BindRound(phi int) {
	if !w.c.valid {
		panic("felsen: Wave.BindRound on cache with no base; call Rebase first")
	}
	base := w.c.base
	if phi < base.NTips() || phi >= base.NNodes() || phi == base.Root {
		panic("felsen: Wave.BindRound target is not a non-root interior node")
	}
	e := w.e
	w.phi = phi
	w.parent = base.Nodes[phi].Parent
	w.rootCase = base.Nodes[w.parent].Parent == gtree.Nil

	// The shared root path: the parent's ancestors bottom-up. The chain
	// child entering path[k] is the parent for k = 0 and path[k-1] above.
	w.path = w.path[:0]
	w.cleanCh = w.cleanCh[:0]
	prev := w.parent
	for v := base.Nodes[w.parent].Parent; v != gtree.Nil; v = base.Nodes[v].Parent {
		w.path = append(w.path, v)
		vn := &base.Nodes[v]
		if vn.Child[0] == prev {
			w.cleanCh = append(w.cleanCh, vn.Child[1])
		} else {
			w.cleanCh = append(w.cleanCh, vn.Child[0])
		}
		prev = v
	}
	depth := len(w.path)
	if cap(w.chainMats) < depth {
		w.chainMats = make([]subst.Matrix, depth) //mpcgsvet:ignore-alloc cap-guarded per-round growth, amortized over the run
		w.cleanMats = make([]subst.Matrix, depth) //mpcgsvet:ignore-alloc cap-guarded per-round growth, amortized over the run
	} else {
		w.chainMats = w.chainMats[:depth]
		w.cleanMats = w.cleanMats[:depth]
	}
	w.cleanCond = w.cleanCond[:0]
	w.cleanScale = w.cleanScale[:0]
	prev = w.parent
	for k, v := range w.path {
		vn := &base.Nodes[v]
		if k > 0 {
			// Both endpoints of the chain edge are untouched by every
			// candidate, so the matrix is round-invariant. (The k = 0
			// edge length depends on the candidate's parent age.)
			e.model.TransitionInto(vn.Age-base.Nodes[prev].Age, &w.chainMats[k])
		}
		clean := w.cleanCh[k]
		e.model.TransitionInto(vn.Age-base.Nodes[clean].Age, &w.cleanMats[k])
		cc, cs := w.rowOf(clean)
		w.cleanCond = append(w.cleanCond, cc)
		w.cleanScale = append(w.cleanScale, cs)
		prev = v
	}

	// Lift lanes: one clean-side dot product per path node, state and
	// pattern — shared by every candidate of the round.
	nPat := e.nPatterns
	if need := depth * nStates * nPat; cap(w.outer) < need {
		w.outer = make([]float64, need) //mpcgsvet:ignore-alloc cap-guarded per-round growth, amortized over the run
	} else {
		w.outer = w.outer[:depth*nStates*nPat]
	}
	if depth > 0 {
		bs := e.blockSize
		nBlocks := (nPat + bs - 1) / bs
		// Cells write disjoint lanes and there is no reduction, so the
		// schedule cannot affect results; the gate is execution-only,
		// like evalDelta's.
		if nBlocks > 1 && e.dev.Workers() > 1 && depth*nPat >= blockParallelMinWork {
			e.dev.LaunchAffine(nBlocks, w.liftKernel)
		} else {
			for b := 0; b < nBlocks; b++ {
				w.runLiftBlock(b)
			}
		}
	}
	w.bound = true
}

// runLiftBlock fills one pattern block of every path node's outer lanes:
// outer_k[x] = cleanMats[k][x]·cond_clean per pattern, with the same fused
// left-to-right dot product runBlock evaluates — the lift must produce the
// exact bits the per-candidate kernel would.
//
//mpcgs:hotpath
func (w *Wave) runLiftBlock(b int) {
	e := w.e
	nPat := e.nPatterns
	lo := b * e.blockSize
	hi := lo + e.blockSize
	if hi > nPat {
		hi = nPat
	}
	for k := range w.path {
		m := &w.cleanMats[k]
		b00, b01, b02, b03 := m[0][0], m[0][1], m[0][2], m[0][3]
		b10, b11, b12, b13 := m[1][0], m[1][1], m[1][2], m[1][3]
		b20, b21, b22, b23 := m[2][0], m[2][1], m[2][2], m[2][3]
		b30, b31, b32, b33 := m[3][0], m[3][1], m[3][2], m[3][3]
		vc := w.cleanCond[k]
		v0 := vc[lo:hi]
		v1 := vc[nPat+lo : nPat+hi]
		v2 := vc[2*nPat+lo : 2*nPat+hi]
		v3 := vc[3*nPat+lo : 3*nPat+hi]
		base := k * nStates * nPat
		o0 := w.outer[base+lo : base+hi]
		o1 := w.outer[base+nPat+lo : base+nPat+hi]
		o2 := w.outer[base+2*nPat+lo : base+2*nPat+hi]
		o3 := w.outer[base+3*nPat+lo : base+3*nPat+hi]
		n := len(o0)
		o1, o2, o3 = o1[:n], o2[:n], o3[:n]
		v0, v1, v2, v3 = v0[:n], v1[:n], v2[:n], v3[:n]
		for i := range o0 {
			x0, x1, x2, x3 := v0[i], v1[i], v2[i], v3[i]
			o0[i] = b00*x0 + b01*x1 + b02*x2 + b03*x3
			o1[i] = b10*x0 + b11*x1 + b12*x2 + b13*x3
			o2[i] = b20*x0 + b21*x1 + b22*x2 + b23*x3
			o3[i] = b30*x0 + b31*x1 + b32*x2 + b33*x3
		}
	}
}

// Eval computes log P(D|G̃) for every candidate of the bound round as one
// fused (proposal × pattern-block) grid. trees is indexed by output slot:
// a nil entry (the current state's slot, or a candidate whose resimulation
// failed) is skipped and out's entry left untouched; every non-nil tree
// must satisfy the round's validity contract (see the package comment
// above). Results are written to out[slot] and are bit-identical to
// LogLikelihoodDelta on the same trees.
//
//mpcgs:hotpath
func (w *Wave) Eval(trees []*gtree.Tree, out []float64) {
	if !w.bound {
		panic("felsen: Wave.Eval without BindRound")
	}
	e := w.e
	w.props = w.props[:0]
	for slot, t := range trees {
		if t == nil {
			continue
		}
		w.props = append(w.props, waveProp{t: t, slot: slot})
		pr := &w.props[len(w.props)-1]
		tn := &t.Nodes[w.phi]
		e.model.TransitionInto(tn.Age-t.Nodes[tn.Child[0]].Age, &pr.tm0)
		e.model.TransitionInto(tn.Age-t.Nodes[tn.Child[1]].Age, &pr.tm1)
		pn := &t.Nodes[w.parent]
		pr.pclean = pn.Child[0]
		if pr.pclean == w.phi {
			pr.pclean = pn.Child[1]
		}
		e.model.TransitionInto(pn.Age-tn.Age, &pr.pmPhi)
		e.model.TransitionInto(pn.Age-t.Nodes[pr.pclean].Age, &pr.pmClean)
		if !w.rootCase {
			e.model.TransitionInto(w.c.base.Nodes[w.path[0]].Age-pn.Age, &pr.am)
		}
		// Resolve the clean rows the cells will stream — the target's two
		// children and the parent's clean child — once per proposal, so the
		// cell kernel never branches on tip-ness.
		pr.tlc, pr.tls = w.rowOf(tn.Child[0])
		pr.trc, pr.trs = w.rowOf(tn.Child[1])
		pr.cvc, pr.cvs = w.rowOf(pr.pclean)
	}
	nLive := len(w.props)
	if nLive == 0 {
		return
	}
	nPat := e.nPatterns
	bs := e.blockSize
	nBlocks := (nPat + bs - 1) / bs
	if need := nBlocks * nLive; cap(w.sums) < need {
		w.sums = make([]float64, need) //mpcgsvet:ignore-alloc cap-guarded per-round growth, amortized over the run
	} else {
		w.sums = w.sums[:nBlocks*nLive]
	}
	// One grid over all cells, block-major (cell = b·nLive + li): an
	// affinity segment covers whole pattern blocks across all proposals,
	// so a worker streams the same cached child rows and outer lanes for
	// every candidate before moving on. Cells write disjoint sums slots
	// and the reduction below is fixed-order, so the schedule never
	// affects results.
	nCells := nBlocks * nLive
	if nCells > 1 && e.dev.Workers() > 1 && nLive*(2+len(w.path))*nPat >= blockParallelMinWork {
		e.dev.LaunchAffine(nCells, w.cellKernel)
	} else {
		for cell := 0; cell < nCells; cell++ {
			w.runCell(cell)
		}
	}
	// Per-proposal fixed-order reduction over its block partials — the
	// same block order the per-candidate path sums, so totals match bit
	// for bit.
	for li := range w.props {
		total := 0.0
		for b := 0; b < nBlocks; b++ {
			total += w.sums[b*nLive+li]
		}
		out[w.props[li].slot] = total
	}
}

// runCell evaluates one (pattern block, proposal) grid cell: the
// candidate's fused target-and-parent pass, root-path walk against the
// shared outer lanes, and the block's root-contraction partial into
// sums[b*nLive+li]. The per-node arithmetic and operation order replicate
// runBlock exactly (see the bit-identity note in the package comment).
//
//mpcgs:hotpath
func (w *Wave) runCell(cell int) {
	e := w.e
	nLive := len(w.props)
	li := cell % nLive
	b := cell / nLive
	pr := &w.props[li]
	nPat := e.nPatterns
	bs := e.blockSize
	lo := b * bs
	hi := lo + bs
	if hi > nPat {
		hi = nPat
	}
	n := hi - lo
	ws := e.wavePool.Get().(*waveScratch)
	// The working row: the current node's lanes for this block,
	// overwritten in place as the walk climbs (each iteration loads all
	// four states before storing).
	s0 := ws.cond[0*bs : 0*bs+n]
	s1 := ws.cond[1*bs : 1*bs+n]
	s2 := ws.cond[2*bs : 2*bs+n]
	s3 := ws.cond[3*bs : 3*bs+n]
	ss := ws.scale[:n]

	// Fused target-and-parent pass: the target row (both children clean)
	// is carried per pattern in registers straight into the parent's dot
	// products, so the neighbourhood costs one loop and only the parent
	// row is ever stored. Each node's arithmetic is runBlock's, with the
	// same matrix↔child pairing; the two dot factors and the two scale
	// summands commute bit-exactly, so evaluating the φ side first is the
	// per-candidate kernel's result regardless of Child-array order.
	tl := laneSlice(pr.tlc, pr.tls, nPat, lo, hi)
	tr := laneSlice(pr.trc, pr.trs, nPat, lo, hi)
	cv := laneSlice(pr.cvc, pr.cvs, nPat, lo, hi)
	waveNeighbourhood(pr, tl, tr, cv, laneView{s0, s1, s2, s3, ss})

	// Root path: one dirty-side dot per node against the shared outer
	// lane, then the same max/rescale/scale sequence as runBlock.
	for k := range w.path {
		m := &pr.am
		if k > 0 {
			m = &w.chainMats[k]
		}
		a00, a01, a02, a03 := m[0][0], m[0][1], m[0][2], m[0][3]
		a10, a11, a12, a13 := m[1][0], m[1][1], m[1][2], m[1][3]
		a20, a21, a22, a23 := m[2][0], m[2][1], m[2][2], m[2][3]
		a30, a31, a32, a33 := m[3][0], m[3][1], m[3][2], m[3][3]
		base := k * nStates * nPat
		o0 := w.outer[base+lo : base+hi]
		o1 := w.outer[base+nPat+lo : base+nPat+hi]
		o2 := w.outer[base+2*nPat+lo : base+2*nPat+hi]
		o3 := w.outer[base+3*nPat+lo : base+3*nPat+hi]
		cs := w.cleanScale[k][lo:hi]
		o0 = o0[:n]
		o1, o2, o3, cs = o1[:n], o2[:n], o3[:n], cs[:n]
		for i := range s0 {
			u0, u1, u2, u3 := s0[i], s1[i], s2[i], s3[i]
			w0 := (a00*u0 + a01*u1 + a02*u2 + a03*u3) * o0[i]
			w1 := (a10*u0 + a11*u1 + a12*u2 + a13*u3) * o1[i]
			w2 := (a20*u0 + a21*u1 + a22*u2 + a23*u3) * o2[i]
			w3 := (a30*u0 + a31*u1 + a32*u2 + a33*u3) * o3[i]
			maxv := 0.0
			if w0 > maxv {
				maxv = w0
			}
			if w1 > maxv {
				maxv = w1
			}
			if w2 > maxv {
				maxv = w2
			}
			if w3 > maxv {
				maxv = w3
			}
			sc := ss[i] + cs[i]
			if maxv < rescaleThreshold && maxv > 0 {
				inv := 1 / maxv
				w0 *= inv
				w1 *= inv
				w2 *= inv
				w3 *= inv
				sc += math.Log(maxv)
			}
			s0[i] = w0
			s1[i] = w1
			s2[i] = w2
			s3[i] = w3
			ss[i] = sc
		}
	}

	// Root contraction with the prior frequencies, per pattern — the
	// working row now holds the root (the parent itself in the root case).
	f0, f1, f2, f3 := e.freqs[0], e.freqs[1], e.freqs[2], e.freqs[3]
	pc := e.patCount[lo:hi]
	pc = pc[:n]
	sum := 0.0
	for i := range s0 {
		siteL := f0*s0[i] + f1*s1[i] + f2*s2[i] + f3*s3[i]
		if siteL <= 0 {
			sum += logspace.NegInf
			continue
		}
		sum += pc[i] * (math.Log(siteL) + ss[i])
	}
	w.sums[cell] = sum
	e.wavePool.Put(ws)
}

// laneView is one conditional row's per-state lanes plus its scale lane,
// already sliced to a cell's pattern range.
type laneView struct {
	l0, l1, l2, l3, ls []float64
}

// laneSlice views a pre-resolved row's lanes over [lo, hi).
func laneSlice(cond, scale []float64, nPat, lo, hi int) laneView {
	return laneView{
		cond[lo:hi],
		cond[nPat+lo : nPat+hi],
		cond[2*nPat+lo : 2*nPat+hi],
		cond[3*nPat+lo : 3*nPat+hi],
		scale[lo:hi],
	}
}

// waveNeighbourhood fuses the resimulated neighbourhood's two node
// evaluations over a cell's pattern range: the target row — computed from
// its children l and r (the candidate's Child-array order) — is carried
// per pattern in registers straight into the parent's dot products
// against the parent's clean-child row c, and only the parent row is
// stored, into o. Each node's arithmetic is exactly runBlock's inner
// loop (children dots, running maximum, rescale test, scale add); at the
// parent, the φ-side factor is evaluated first regardless of Child-array
// order, which is bit-identical because the two dot factors and the two
// scale summands commute.
//
//mpcgs:hotpath
func waveNeighbourhood(pr *waveProp, l, r, c, o laneView) {
	a00, a01, a02, a03 := pr.tm0[0][0], pr.tm0[0][1], pr.tm0[0][2], pr.tm0[0][3]
	a10, a11, a12, a13 := pr.tm0[1][0], pr.tm0[1][1], pr.tm0[1][2], pr.tm0[1][3]
	a20, a21, a22, a23 := pr.tm0[2][0], pr.tm0[2][1], pr.tm0[2][2], pr.tm0[2][3]
	a30, a31, a32, a33 := pr.tm0[3][0], pr.tm0[3][1], pr.tm0[3][2], pr.tm0[3][3]
	b00, b01, b02, b03 := pr.tm1[0][0], pr.tm1[0][1], pr.tm1[0][2], pr.tm1[0][3]
	b10, b11, b12, b13 := pr.tm1[1][0], pr.tm1[1][1], pr.tm1[1][2], pr.tm1[1][3]
	b20, b21, b22, b23 := pr.tm1[2][0], pr.tm1[2][1], pr.tm1[2][2], pr.tm1[2][3]
	b30, b31, b32, b33 := pr.tm1[3][0], pr.tm1[3][1], pr.tm1[3][2], pr.tm1[3][3]
	p00, p01, p02, p03 := pr.pmPhi[0][0], pr.pmPhi[0][1], pr.pmPhi[0][2], pr.pmPhi[0][3]
	p10, p11, p12, p13 := pr.pmPhi[1][0], pr.pmPhi[1][1], pr.pmPhi[1][2], pr.pmPhi[1][3]
	p20, p21, p22, p23 := pr.pmPhi[2][0], pr.pmPhi[2][1], pr.pmPhi[2][2], pr.pmPhi[2][3]
	p30, p31, p32, p33 := pr.pmPhi[3][0], pr.pmPhi[3][1], pr.pmPhi[3][2], pr.pmPhi[3][3]
	q00, q01, q02, q03 := pr.pmClean[0][0], pr.pmClean[0][1], pr.pmClean[0][2], pr.pmClean[0][3]
	q10, q11, q12, q13 := pr.pmClean[1][0], pr.pmClean[1][1], pr.pmClean[1][2], pr.pmClean[1][3]
	q20, q21, q22, q23 := pr.pmClean[2][0], pr.pmClean[2][1], pr.pmClean[2][2], pr.pmClean[2][3]
	q30, q31, q32, q33 := pr.pmClean[3][0], pr.pmClean[3][1], pr.pmClean[3][2], pr.pmClean[3][3]
	o0 := o.l0
	n := len(o0)
	o1, o2, o3, os := o.l1[:n], o.l2[:n], o.l3[:n], o.ls[:n]
	l0, l1, l2, l3, ls := l.l0[:n], l.l1[:n], l.l2[:n], l.l3[:n], l.ls[:n]
	r0, r1, r2, r3, rs := r.l0[:n], r.l1[:n], r.l2[:n], r.l3[:n], r.ls[:n]
	c0, c1, c2, c3, cs := c.l0[:n], c.l1[:n], c.l2[:n], c.l3[:n], c.ls[:n]
	for i := range o0 {
		u0, u1, u2, u3 := l0[i], l1[i], l2[i], l3[i]
		v0, v1, v2, v3 := r0[i], r1[i], r2[i], r3[i]
		t0 := (a00*u0 + a01*u1 + a02*u2 + a03*u3) * (b00*v0 + b01*v1 + b02*v2 + b03*v3)
		t1 := (a10*u0 + a11*u1 + a12*u2 + a13*u3) * (b10*v0 + b11*v1 + b12*v2 + b13*v3)
		t2 := (a20*u0 + a21*u1 + a22*u2 + a23*u3) * (b20*v0 + b21*v1 + b22*v2 + b23*v3)
		t3 := (a30*u0 + a31*u1 + a32*u2 + a33*u3) * (b30*v0 + b31*v1 + b32*v2 + b33*v3)
		maxv := 0.0
		if t0 > maxv {
			maxv = t0
		}
		if t1 > maxv {
			maxv = t1
		}
		if t2 > maxv {
			maxv = t2
		}
		if t3 > maxv {
			maxv = t3
		}
		tsc := ls[i] + rs[i]
		if maxv < rescaleThreshold && maxv > 0 {
			inv := 1 / maxv
			t0 *= inv
			t1 *= inv
			t2 *= inv
			t3 *= inv
			tsc += math.Log(maxv)
		}
		x0, x1, x2, x3 := c0[i], c1[i], c2[i], c3[i]
		w0 := (p00*t0 + p01*t1 + p02*t2 + p03*t3) * (q00*x0 + q01*x1 + q02*x2 + q03*x3)
		w1 := (p10*t0 + p11*t1 + p12*t2 + p13*t3) * (q10*x0 + q11*x1 + q12*x2 + q13*x3)
		w2 := (p20*t0 + p21*t1 + p22*t2 + p23*t3) * (q20*x0 + q21*x1 + q22*x2 + q23*x3)
		w3 := (p30*t0 + p31*t1 + p32*t2 + p33*t3) * (q30*x0 + q31*x1 + q32*x2 + q33*x3)
		maxv = 0.0
		if w0 > maxv {
			maxv = w0
		}
		if w1 > maxv {
			maxv = w1
		}
		if w2 > maxv {
			maxv = w2
		}
		if w3 > maxv {
			maxv = w3
		}
		sc := tsc + cs[i]
		if maxv < rescaleThreshold && maxv > 0 {
			inv := 1 / maxv
			w0 *= inv
			w1 *= inv
			w2 *= inv
			w3 *= inv
			sc += math.Log(maxv)
		}
		o0[i] = w0
		o1[i] = w1
		o2[i] = w2
		o3[i] = w3
		os[i] = sc
	}
}
