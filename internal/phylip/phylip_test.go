package phylip

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mpcgs/internal/bitseq"
)

func mustRead(t *testing.T, in string) *Alignment {
	t.Helper()
	a, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return a
}

func TestReadSequentialOneLine(t *testing.T) {
	in := "3 8\nseqA  ACGTACGT\nseqB  ACGTACGA\nseqC  TTTTACGT\n"
	a := mustRead(t, in)
	if a.NSeq() != 3 || a.SeqLen() != 8 {
		t.Fatalf("NSeq=%d SeqLen=%d, want 3 8", a.NSeq(), a.SeqLen())
	}
	if a.Names[0] != "seqA" || a.Names[2] != "seqC" {
		t.Errorf("names = %v", a.Names)
	}
	if got := a.Seqs[2].String(); got != "TTTTACGT" {
		t.Errorf("seqC = %q", got)
	}
}

func TestReadStrictTenColumnNames(t *testing.T) {
	// Strict PHYLIP: name occupies exactly 10 columns, possibly with
	// trailing spaces, data follows immediately.
	in := "2 4\nHomo sapieACGT\nPan troglo TTTT\n"
	a := mustRead(t, in)
	if a.Names[0] != "Homo sapie" {
		t.Errorf("name[0] = %q, want %q", a.Names[0], "Homo sapie")
	}
	if got := a.Seqs[0].String(); got != "ACGT" {
		t.Errorf("seq[0] = %q, want ACGT", got)
	}
	if a.Names[1] != "Pan troglo" {
		t.Errorf("name[1] = %q", a.Names[1])
	}
}

func TestReadInterleaved(t *testing.T) {
	in := `2 12
one   ACGTAC
two   TTTTTT
GTACGT
AAAAAA
`
	a := mustRead(t, in)
	if got := a.Seqs[0].String(); got != "ACGTACGTACGT" {
		t.Errorf("seq one = %q", got)
	}
	if got := a.Seqs[1].String(); got != "TTTTTTAAAAAA" {
		t.Errorf("seq two = %q", got)
	}
}

func TestReadSequentialWrapped(t *testing.T) {
	// Sequential with wrapping: seq one's data completes over two lines
	// before seq two is named. The named first block still lists both
	// names first, so wrapped layout interleaves identically here; check
	// a wrap where line lengths differ.
	in := `2 10
one   ACGTA
two   TTTTT
CGTAC
AAAAA
`
	a := mustRead(t, in)
	if got := a.Seqs[0].String(); got != "ACGTACGTAC" {
		t.Errorf("seq one = %q", got)
	}
	if got := a.Seqs[1].String(); got != "TTTTTAAAAA" {
		t.Errorf("seq two = %q", got)
	}
}

func TestReadSpacesInsideData(t *testing.T) {
	in := "2 8\na   ACGT ACGT\nb   TTTT TTTT\n"
	a := mustRead(t, in)
	if got := a.Seqs[0].String(); got != "ACGTACGT" {
		t.Errorf("seq a = %q", got)
	}
}

func TestReadGapsBecomeUnknown(t *testing.T) {
	in := "2 6\na   AC-GNT\nb   ACGGTT\n"
	a := mustRead(t, in)
	if a.Seqs[0].Known(2) || a.Seqs[0].Known(4) {
		t.Error("gap/N positions should be unknown")
	}
	if !a.Seqs[0].Known(0) {
		t.Error("position 0 should be known")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "three 8\nx ACGTACGT\n",
		"no length":      "3\n",
		"zero seqs":      "0 5\n",
		"short data":     "2 8\na ACGT\nb ACGTACGT\n",
		"long data":      "2 4\na ACGTA\nb ACGT\n",
		"missing lines":  "3 4\na ACGT\nb ACGT\n",
		"extra data":     "2 4\na ACGT\nb ACGT\nACGT\n",
		"duplicate name": "2 4\nsame ACGT\nsame ACGT\n",
	}
	for label, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error, got none", label)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	a := &Alignment{
		Names: []string{"alpha", "beta", "gamma"},
		Seqs: []*bitseq.Seq{
			bitseq.FromString("ACGTACGTAA"),
			bitseq.FromString("ACGTACGTTT"),
			bitseq.FromString("TTGTACGTAA"),
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatalf("Write: %v", err)
	}
	b, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read back: %v", err)
	}
	for i := range a.Seqs {
		if a.Names[i] != b.Names[i] {
			t.Errorf("name %d: %q != %q", i, a.Names[i], b.Names[i])
		}
		if a.Seqs[i].String() != b.Seqs[i].String() {
			t.Errorf("seq %d: %q != %q", i, a.Seqs[i].String(), b.Seqs[i].String())
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	letters := []byte("ACGT")
	f := func(seed int64, nseqRaw, lenRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nseq := 2 + int(nseqRaw)%6
		L := 1 + int(lenRaw)%40
		a := &Alignment{}
		for i := 0; i < nseq; i++ {
			var sb strings.Builder
			for j := 0; j < L; j++ {
				sb.WriteByte(letters[r.Intn(4)])
			}
			a.Names = append(a.Names, "s"+strings.Repeat("q", i+1))
			a.Seqs = append(a.Seqs, bitseq.FromString(sb.String()))
		}
		var buf bytes.Buffer
		if err := Write(&buf, a); err != nil {
			return false
		}
		b, err := Read(&buf)
		if err != nil {
			return false
		}
		for i := range a.Seqs {
			if a.Seqs[i].String() != b.Seqs[i].String() || a.Names[i] != b.Names[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBaseFreqs(t *testing.T) {
	a := mustRead(t, "2 4\na   AACC\nb   GGTT\n")
	f := a.BaseFreqs()
	var sum float64
	for _, v := range f {
		if v <= 0 {
			t.Errorf("frequency %v not positive", v)
		}
		sum += v
	}
	if sum < 0.999999 || sum > 1.000001 {
		t.Errorf("frequencies sum to %v, want 1", sum)
	}
	// 2 of each base plus pseudo-counts: perfectly uniform.
	for _, v := range f {
		if v != 0.25 {
			t.Errorf("freq = %v, want 0.25", v)
		}
	}
}

func TestBaseFreqsSkewed(t *testing.T) {
	a := mustRead(t, "2 4\na   AAAA\nb   AAAC\n")
	f := a.BaseFreqs()
	if !(f[0] > f[1] && f[1] > f[2]) {
		t.Errorf("freqs = %v, want A > C > G", f)
	}
	if f[2] != f[3] {
		t.Errorf("G and T freqs should be equal pseudo-counts, got %v %v", f[2], f[3])
	}
}

func TestDistanceMatrix(t *testing.T) {
	a := mustRead(t, "3 4\na   AAAA\nb   AAAT\nc   TTTT\n")
	d := a.DistanceMatrix()
	want := [][]float64{{0, 1, 4}, {1, 0, 3}, {4, 3, 0}}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Errorf("d[%d][%d] = %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
}

func TestValidate(t *testing.T) {
	good := &Alignment{
		Names: []string{"a", "b"},
		Seqs:  []*bitseq.Seq{bitseq.FromString("AC"), bitseq.FromString("GT")},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid alignment rejected: %v", err)
	}
	bad := &Alignment{
		Names: []string{"a", "b"},
		Seqs:  []*bitseq.Seq{bitseq.FromString("AC"), bitseq.FromString("GTT")},
	}
	if err := bad.Validate(); err == nil {
		t.Error("length mismatch not caught")
	}
	one := &Alignment{Names: []string{"a"}, Seqs: []*bitseq.Seq{bitseq.FromString("AC")}}
	if err := one.Validate(); err == nil {
		t.Error("single-sequence alignment not caught")
	}
}

func TestReadNeverPanicsOnGarbage(t *testing.T) {
	inputs := []string{
		"\x00\x01\x02",
		"999999 999999\nx ACGT\n",
		"3 4\n\n\n\n\n\n",
		"2 4\na\nb\nACGT\nACGT\n",
		"2 4\na ACGT\nb ACGT\ntrailing junk here\n",
		strings.Repeat("A", 100000),
		"-1 -1\n",
		"2 0\na \nb \n",
	}
	for i, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("input %d: Read panicked: %v", i, r)
				}
			}()
			_, _ = Read(strings.NewReader(in))
		}()
	}
}
