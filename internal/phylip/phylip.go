// Package phylip reads and writes multiple sequence alignments in the
// PHYLIP format the sampler takes as input (paper §5.1.1): a header line
// with the number of samples and their length, then one labelled line per
// sample, with optional wrapped or interleaved continuation blocks.
package phylip

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mpcgs/internal/bitseq"
)

// Alignment is a set of equal-length named sequences, the D term of the
// sampler.
type Alignment struct {
	Names []string
	Seqs  []*bitseq.Seq
}

// NSeq returns the number of sequences.
func (a *Alignment) NSeq() int { return len(a.Seqs) }

// SeqLen returns the common sequence length (0 for an empty alignment).
func (a *Alignment) SeqLen() int {
	if len(a.Seqs) == 0 {
		return 0
	}
	return a.Seqs[0].Len()
}

// Validate checks structural invariants: at least two sequences, equal
// lengths, non-empty distinct names.
func (a *Alignment) Validate() error {
	if len(a.Names) != len(a.Seqs) {
		return fmt.Errorf("phylip: %d names but %d sequences", len(a.Names), len(a.Seqs))
	}
	if len(a.Seqs) < 2 {
		return fmt.Errorf("phylip: need at least 2 sequences, have %d", len(a.Seqs))
	}
	L := a.Seqs[0].Len()
	if L == 0 {
		return fmt.Errorf("phylip: zero-length sequences")
	}
	seen := make(map[string]bool, len(a.Names))
	for i, s := range a.Seqs {
		if s.Len() != L {
			return fmt.Errorf("phylip: sequence %d has length %d, want %d", i, s.Len(), L)
		}
		name := a.Names[i]
		if name == "" {
			return fmt.Errorf("phylip: sequence %d has empty name", i)
		}
		if seen[name] {
			return fmt.Errorf("phylip: duplicate sequence name %q", name)
		}
		seen[name] = true
	}
	return nil
}

// BaseFreqs returns the empirical nucleotide frequencies across all known
// positions of the alignment, the prior distribution pi of paper Eq. 21.
// If the alignment contains no known bases (or a base never occurs) a
// small pseudo-count keeps every frequency positive, since the likelihood
// model requires a fully supported prior.
func (a *Alignment) BaseFreqs() [4]float64 {
	var counts [bitseq.NumBases]int
	for _, s := range a.Seqs {
		s.Counts(&counts)
	}
	const pseudo = 1.0
	total := 4 * pseudo
	for _, c := range counts {
		total += float64(c)
	}
	var freqs [4]float64
	for i, c := range counts {
		freqs[i] = (float64(c) + pseudo) / total
	}
	return freqs
}

// DistanceMatrix returns the pairwise count of differing known positions,
// the measure used to build the UPGMA starting tree (paper §5.1.3).
func (a *Alignment) DistanceMatrix() [][]float64 {
	n := a.NSeq()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := float64(a.Seqs[i].Diff(a.Seqs[j]))
			d[i][j] = v
			d[j][i] = v
		}
	}
	return d
}

// Read parses a PHYLIP alignment, accepting both sequential (each
// sequence's data following its name, possibly wrapped over lines) and
// interleaved (blocks of lines cycling through the sequences) layouts.
func Read(r io.Reader) (*Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var header string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			header = line
			break
		}
	}
	if header == "" {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("phylip: reading header: %w", err)
		}
		return nil, fmt.Errorf("phylip: empty input")
	}
	fields := strings.Fields(header)
	if len(fields) < 2 {
		return nil, fmt.Errorf("phylip: malformed header %q: want <nseq> <length>", header)
	}
	nseq, err := strconv.Atoi(fields[0])
	if err != nil || nseq <= 0 {
		return nil, fmt.Errorf("phylip: bad sequence count %q", fields[0])
	}
	seqlen, err := strconv.Atoi(fields[1])
	if err != nil || seqlen <= 0 {
		return nil, fmt.Errorf("phylip: bad sequence length %q", fields[1])
	}

	var lines []string
	for sc.Scan() {
		if line := strings.TrimRight(sc.Text(), "\r\n"); strings.TrimSpace(line) != "" {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("phylip: reading sequences: %w", err)
	}

	names := make([]string, nseq)
	data := make([]strings.Builder, nseq)

	// First nseq non-empty lines carry the names.
	if len(lines) < nseq {
		return nil, fmt.Errorf("phylip: header promises %d sequences but only %d data lines found", nseq, len(lines))
	}
	for i := 0; i < nseq; i++ {
		name, rest, err := splitNameLine(lines[i], seqlen)
		if err != nil {
			return nil, fmt.Errorf("phylip: line %d: %w", i+2, err)
		}
		names[i] = name
		data[i].WriteString(rest)
	}

	// Continuation lines: sequential wrapping fills sequence i completely
	// before moving on; interleaved blocks cycle through all sequences.
	// Both are handled by appending each line to the first sequence that
	// still needs characters, in order for interleaved (cur cycles) and
	// by completion for sequential.
	cur := 0
	for _, line := range lines[nseq:] {
		chars := stripSpaces(line)
		// Advance past completed sequences.
		start := cur
		for data[cur].Len() >= seqlen {
			cur = (cur + 1) % nseq
			if cur == start {
				return nil, fmt.Errorf("phylip: more sequence data than the header's %d x %d", nseq, seqlen)
			}
		}
		data[cur].WriteString(chars)
		cur = (cur + 1) % nseq
	}

	a := &Alignment{Names: names, Seqs: make([]*bitseq.Seq, nseq)}
	for i := 0; i < nseq; i++ {
		s := data[i].String()
		if len(s) != seqlen {
			return nil, fmt.Errorf("phylip: sequence %q has %d characters, header promises %d", names[i], len(s), seqlen)
		}
		a.Seqs[i] = bitseq.FromString(s)
	}
	return a, a.Validate()
}

// splitNameLine separates the sequence name from the leading data on a
// named line. Strict PHYLIP reserves ten columns for the name (which may
// contain spaces); relaxed variants separate name and data by whitespace.
// The two layouts are ambiguous line-by-line, so the header's sequence
// length arbitrates: the relaxed split wins unless only the strict
// ten-column split yields exactly the promised number of characters.
func splitNameLine(line string, seqlen int) (name, data string, err error) {
	trimmed := strings.TrimLeft(line, " \t")
	if trimmed == "" {
		return "", "", fmt.Errorf("blank sequence line")
	}
	var relName, relData string
	if idx := strings.IndexAny(trimmed, " \t"); idx > 0 {
		relName, relData = strings.TrimSpace(trimmed[:idx]), stripSpaces(trimmed[idx:])
	} else if len(trimmed) > 10 {
		// No whitespace at all: strict 10-column name glued to data.
		return strings.TrimSpace(trimmed[:10]), stripSpaces(trimmed[10:]), nil
	} else {
		// The whole line is a bare name; data follows on later lines.
		return trimmed, "", nil
	}
	if len(relData) != seqlen && len(trimmed) > 10 {
		if strict := stripSpaces(trimmed[10:]); len(strict) == seqlen {
			return strings.TrimSpace(trimmed[:10]), strict, nil
		}
	}
	return relName, relData, nil
}

func stripSpaces(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != ' ' && c != '\t' {
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// Write renders the alignment in relaxed sequential PHYLIP, one sequence
// per line, the layout both this package and the reference tools accept.
func Write(w io.Writer, a *Alignment) error {
	if err := a.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", a.NSeq(), a.SeqLen())
	width := 0
	for _, n := range a.Names {
		if len(n) > width {
			width = len(n)
		}
	}
	if width < 10 {
		width = 10
	}
	for i, s := range a.Seqs {
		fmt.Fprintf(bw, "%-*s%s\n", width+1, a.Names[i], s.String())
	}
	return bw.Flush()
}
