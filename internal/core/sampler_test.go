package core

import (
	"math"
	"strings"
	"testing"

	"mpcgs/internal/bitseq"
	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/phylip"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

// flatAlignment builds an all-missing-data alignment: every genealogy has
// data likelihood exactly 1, so a correct sampler over it must reproduce
// the coalescent prior. This is the sharpest end-to-end check of both
// samplers' invariance.
func flatAlignment(n, L int) *phylip.Alignment {
	a := &phylip.Alignment{}
	for i := 0; i < n; i++ {
		a.Names = append(a.Names, "s"+string(rune('A'+i)))
		a.Seqs = append(a.Seqs, bitseq.FromString(strings.Repeat("-", L)))
	}
	return a
}

func flatEvaluator(t *testing.T, n int, dev *device.Device) *felsen.Evaluator {
	t.Helper()
	aln := flatAlignment(n, 4)
	e, err := felsen.New(subst.NewJC69(), aln, dev)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func startTree(t *testing.T, names []string, theta float64, seed uint64) *gtree.Tree {
	t.Helper()
	src := seedSource(seed, 9)
	tr, err := gtree.RandomCoalescent(names, theta, src)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "s" + string(rune('A'+i))
	}
	return out
}

// checkPriorMoments verifies that a sample set over flat data reproduces
// E[S] under the coalescent prior: S = sum over k of k(k-1) t_k with
// E[t_k] = theta/(k(k-1)), so E[S] = (n-1) * theta.
func checkPriorMoments(t *testing.T, label string, set *SampleSet, theta float64) {
	t.Helper()
	stats := set.PostBurninStats()
	sum := 0.0
	for _, v := range stats {
		sum += v
	}
	got := sum / float64(len(stats))
	want := float64(set.NTips-1) * theta
	if math.Abs(got-want) > 0.08*want {
		t.Errorf("%s: E[SumKKT] = %v, want %v (±8%%): sampler does not preserve the prior", label, got, want)
	}
}

func TestMHFlatDataSamplesPrior(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	theta := 1.4
	eval := flatEvaluator(t, 5, device.Serial())
	init := startTree(t, names(5), theta, 11)
	res, err := NewMH(eval).Run(init, ChainConfig{Theta: theta, Burnin: 500, Samples: 30000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	checkPriorMoments(t, "MH", res.Samples, theta)
	// Flat likelihood: every proposal accepted.
	if res.AcceptanceRate() != 1 {
		t.Errorf("flat-data acceptance = %v, want 1", res.AcceptanceRate())
	}
}

func TestGMHFlatDataSamplesPrior(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	theta := 1.4
	dev := device.New(4)
	eval := flatEvaluator(t, 5, dev)
	init := startTree(t, names(5), theta, 13)
	g := NewGMH(eval, dev, 8)
	res, err := g.Run(init, ChainConfig{Theta: theta, Burnin: 500, Samples: 30000, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	checkPriorMoments(t, "GMH", res.Samples, theta)
}

func TestMultiChainFlatDataSamplesPrior(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	theta := 1.4
	dev := device.New(4)
	eval := flatEvaluator(t, 5, device.Serial())
	init := startTree(t, names(5), theta, 15)
	mc := NewMultiChain(eval, dev, 4)
	res, err := mc.Run(init, ChainConfig{Theta: theta, Burnin: 500, Samples: 20000, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	checkPriorMoments(t, "MultiChain", res.Samples, theta)
	if res.Samples.Len() != 20000 {
		t.Errorf("pooled %d samples, want 20000", res.Samples.Len())
	}
}

func TestMHDeterministic(t *testing.T) {
	aln, _, err := seqgen.SimulateData(6, 60, 1.0, 21)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(subst.NewJC69(), aln, device.Serial())
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 22)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChainConfig{Theta: 1.0, Burnin: 50, Samples: 200, Seed: 23}
	a, err := NewMH(eval).Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMH(eval).Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples.Stats {
		if a.Samples.Stats[i] != b.Samples.Stats[i] {
			t.Fatalf("MH diverged at draw %d", i)
		}
	}
}

func TestGMHDeterministicAcrossWorkerCounts(t *testing.T) {
	// GMH results must depend only on the seed, not on how many workers
	// execute the proposal kernel: per-slot PRNG streams guarantee it.
	aln, _, err := seqgen.SimulateData(6, 60, 1.0, 31)
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChainConfig{Theta: 1.0, Burnin: 50, Samples: 300, Seed: 33}
	var ref []float64
	for _, workers := range []int{1, 4, 16} {
		dev := device.New(workers)
		eval, err := felsen.New(subst.NewJC69(), aln, dev)
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewGMH(eval, dev, 6).Run(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Samples.Stats
			continue
		}
		for i := range ref {
			if res.Samples.Stats[i] != ref[i] {
				t.Fatalf("workers=%d: draw %d differs (%v vs %v)", workers, i, res.Samples.Stats[i], ref[i])
			}
		}
	}
}

func TestGMHAndMHAgreeOnPosterior(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical chain test")
	}
	// Both samplers target P(G|D,theta): their posterior means of the
	// sufficient statistic must agree within Monte Carlo error.
	aln, _, err := seqgen.SimulateData(6, 100, 1.0, 41)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(4)
	eval, err := felsen.New(subst.NewJC69(), aln, dev)
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChainConfig{Theta: 1.0, Burnin: 2000, Samples: 25000, Seed: 43}
	mh, err := NewMH(eval).Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gmh, err := NewGMH(eval, dev, 8).Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	a := mean(mh.Samples.PostBurninStats())
	b := mean(gmh.Samples.PostBurninStats())
	if math.Abs(a-b) > 0.10*math.Max(a, b) {
		t.Errorf("posterior mean SumKKT: MH %v vs GMH %v (>10%% apart)", a, b)
	}
}

func TestChainConfigValidation(t *testing.T) {
	eval := flatEvaluator(t, 4, device.Serial())
	init := startTree(t, names(4), 1, 51)
	bad := []ChainConfig{
		{Theta: 0, Burnin: 1, Samples: 1},
		{Theta: 1, Burnin: -1, Samples: 1},
		{Theta: 1, Burnin: 1, Samples: 0},
	}
	for i, cfg := range bad {
		if _, err := NewMH(eval).Run(init, cfg); err == nil {
			t.Errorf("MH accepted bad config %d", i)
		}
		if _, err := NewGMH(eval, device.Serial(), 4).Run(init, cfg); err == nil {
			t.Errorf("GMH accepted bad config %d", i)
		}
	}
	good := ChainConfig{Theta: 1, Burnin: 1, Samples: 2}
	if _, err := NewGMH(eval, device.Serial(), 0).Run(init, good); err == nil {
		t.Error("GMH accepted 0 proposals")
	}
	if _, err := NewMultiChain(eval, device.Serial(), 0).Run(init, good); err == nil {
		t.Error("MultiChain accepted 0 chains")
	}
}

func TestTwoTipTreeRejected(t *testing.T) {
	eval := flatEvaluator(t, 2, device.Serial())
	tr := gtree.New(2)
	tr.Nodes[0].Name = "sA"
	tr.Nodes[1].Name = "sB"
	tr.Nodes[2].Age = 1
	tr.Nodes[2].Child = [2]int{0, 1}
	tr.Nodes[0].Parent = 2
	tr.Nodes[1].Parent = 2
	tr.Root = 2
	if _, err := NewMH(eval).Run(tr, ChainConfig{Theta: 1, Samples: 1}); err == nil {
		t.Error("2-tip tree accepted: no resimulatable neighbourhood exists")
	}
}

func TestSampleSetBookkeeping(t *testing.T) {
	eval := flatEvaluator(t, 4, device.Serial())
	init := startTree(t, names(4), 1, 61)
	res, err := NewMH(eval).Run(init, ChainConfig{Theta: 1, Burnin: 10, Samples: 25, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples.Len() != 35 {
		t.Errorf("Len = %d, want 35", res.Samples.Len())
	}
	if got := len(res.Samples.PostBurninStats()); got != 25 {
		t.Errorf("post-burn-in = %d, want 25", got)
	}
	if res.Final == nil || res.Final.Validate() != nil {
		t.Error("final state missing or invalid")
	}
	if res.Proposals != 35 {
		t.Errorf("Proposals = %d, want 35", res.Proposals)
	}
}

func TestGMHSamplesPerSetOverride(t *testing.T) {
	eval := flatEvaluator(t, 4, device.Serial())
	init := startTree(t, names(4), 1, 71)
	g := NewGMH(eval, device.Serial(), 5)
	g.SamplesPerSet = 2
	res, err := g.Run(init, ChainConfig{Theta: 1, Burnin: 0, Samples: 10, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	// 10 samples at 2 per round = 5 rounds of 5 proposals each.
	if res.Proposals != 25 {
		t.Errorf("Proposals = %d, want 25", res.Proposals)
	}
}

func TestEMRecoversTheta(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline test")
	}
	// End-to-end: simulate data at a known theta, run the full EM with
	// the GMH sampler, and demand the estimate lands within a factor
	// band. The paper's own Table 1 shows deviations up to ~1.8x (true
	// 3.0 estimated 5.4), so the band is generous but one-sided checks
	// would still catch sign/scale errors.
	trueTheta := 1.0
	aln, _, err := seqgen.SimulateData(8, 300, trueTheta, 81)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(8)
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 0.1, 82)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunEM(NewGMH(eval, dev, 8), init, EMConfig{
		InitialTheta: 0.1, // driving value far from truth, like Fig. 5
		Iterations:   6,
		Burnin:       800,
		Samples:      6000,
		Seed:         83,
	}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta < trueTheta/3 || res.Theta > trueTheta*3 {
		t.Errorf("EM estimate %v too far from true theta %v", res.Theta, trueTheta)
	}
	if len(res.History) == 0 || res.LastSet == nil || res.FinalState == nil {
		t.Error("EM result missing history or state")
	}
	// Theta must have moved towards the truth from the far-off start.
	if math.Abs(res.Theta-trueTheta) >= math.Abs(0.1-trueTheta) {
		t.Errorf("EM did not improve on the initial estimate: %v", res.Theta)
	}
}

func TestInitialTreeFromData(t *testing.T) {
	aln, _, err := seqgen.SimulateData(6, 120, 1.0, 91)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := InitialTree(aln, 1.0, 92)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NTips() != 6 {
		t.Errorf("NTips = %d, want 6", tr.NTips())
	}
	// UPGMA over diverged data must give the tree height in per-site
	// units: positive and below, say, 10 substitutions per site.
	if h := tr.Height(); h <= 0 || h > 10 {
		t.Errorf("UPGMA height = %v out of plausible range", h)
	}
}

func TestInitialTreeIdenticalSequencesFallsBack(t *testing.T) {
	a := &phylip.Alignment{}
	for i := 0; i < 4; i++ {
		a.Names = append(a.Names, "s"+string(rune('A'+i)))
		a.Seqs = append(a.Seqs, bitseq.FromString("ACGTACGT"))
	}
	tr, err := InitialTree(a, 2.0, 93)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() <= 0 {
		t.Error("fallback tree has no height")
	}
}

func TestRunEMValidation(t *testing.T) {
	eval := flatEvaluator(t, 4, device.Serial())
	init := startTree(t, names(4), 1, 94)
	if _, err := RunEM(NewMH(eval), init, EMConfig{InitialTheta: 0}, device.Serial()); err == nil {
		t.Error("EM accepted non-positive initial theta")
	}
}
