package core

import (
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/gtree"
)

// Compile-time: the schedulable samplers expose the step-driven interface.
var (
	_ StepSampler = (*MH)(nil)
	_ StepSampler = (*GMH)(nil)
	_ StepSampler = (*Heated)(nil)
	_ StepSampler = (*MultiChain)(nil)
)

// coarseOnly hides a sampler's step interface, standing in for a sampler
// that only knows how to run a whole pass at once.
type coarseOnly struct{ s Sampler }

func (c coarseOnly) Name() string { return c.s.Name() }
func (c coarseOnly) Run(init *gtree.Tree, cfg ChainConfig) (*Result, error) {
	return c.s.Run(init, cfg)
}

// emResultsEqual requires two estimations to have identical trajectories:
// same θ path, same recorded draws in the final sample set.
func emResultsEqual(t *testing.T, label string, a, b *EMResult) {
	t.Helper()
	if a.Theta != b.Theta {
		t.Fatalf("%s: final theta %v vs %v", label, a.Theta, b.Theta)
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("%s: history lengths %d vs %d", label, len(a.History), len(b.History))
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("%s: EM iteration %d differs: %+v vs %+v", label, i, a.History[i], b.History[i])
		}
	}
	sameTraces(t, label, a.LastSet, b.LastSet, 0)
}

// TestInterleavedEMRunsMatchStandalone drives two EMRuns by alternating
// single steps — the batch scheduler's interleaving — and requires each
// trajectory to be bit-identical to its standalone RunEM. This is the
// core-level statement of the batch mode's correctness contract: a run's
// draws do not depend on what else shares the device.
func TestInterleavedEMRunsMatchStandalone(t *testing.T) {
	dev := device.Serial()
	evalA, initA := engineFixture(t, 6, 60, 701, dev)
	evalB, initB := engineFixture(t, 7, 80, 702, dev)
	cfgA := EMConfig{InitialTheta: 1.0, Iterations: 2, Burnin: 30, Samples: 150, Seed: 703}
	cfgB := EMConfig{InitialTheta: 0.8, Iterations: 2, Burnin: 40, Samples: 120, Seed: 704}

	standaloneA, err := RunEM(NewMH(evalA), initA, cfgA, dev)
	if err != nil {
		t.Fatal(err)
	}
	standaloneB, err := RunEM(NewGMH(evalB, dev, 3), initB, cfgB, dev)
	if err != nil {
		t.Fatal(err)
	}

	runA, err := StartEM(NewMH(evalA), initA, cfgA, dev)
	if err != nil {
		t.Fatal(err)
	}
	runB, err := StartEM(NewGMH(evalB, dev, 3), initB, cfgB, dev)
	if err != nil {
		t.Fatal(err)
	}
	for !runA.Done() || !runB.Done() {
		if !runA.Done() {
			if err := runA.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if !runB.Done() {
			if err := runB.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	interA, err := runA.Result()
	if err != nil {
		t.Fatal(err)
	}
	interB, err := runB.Result()
	if err != nil {
		t.Fatal(err)
	}
	emResultsEqual(t, "job A (mh)", standaloneA, interA)
	emResultsEqual(t, "job B (gmh)", standaloneB, interB)
}

// TestEMRunCoarseFallback covers samplers without a step interface:
// each Step runs a whole sampling pass, and the result still matches
// RunEM exactly.
func TestEMRunCoarseFallback(t *testing.T) {
	dev := device.Serial()
	eval, init := engineFixture(t, 6, 60, 711, dev)
	mc := coarseOnly{NewMultiChain(eval, dev, 2)}
	cfg := EMConfig{InitialTheta: 1.0, Iterations: 2, Burnin: 20, Samples: 100, Seed: 712}

	standalone, err := RunEM(mc, init, cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	run, err := StartEM(mc, init, cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !run.Done() {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if steps != len(standalone.History) {
		t.Errorf("coarse fallback took %d steps, want one per iteration (%d)", steps, len(standalone.History))
	}
	res, err := run.Result()
	if err != nil {
		t.Fatal(err)
	}
	emResultsEqual(t, "multichain fallback", standalone, res)
}

// TestEMRunErrorIsSticky: a failed run stays failed — Step keeps
// returning the error and Result reports it.
func TestEMRunErrorIsSticky(t *testing.T) {
	dev := device.Serial()
	eval, init := engineFixture(t, 6, 60, 721, dev)
	// A pathological driving θ far below the genealogy's scale makes MH
	// proposals fail (infeasible resimulation regions), which is fatal to
	// an MH run.
	run, err := StartEM(NewMH(eval), init, EMConfig{InitialTheta: 1e-12, Iterations: 1, Burnin: 0, Samples: 50, Seed: 722}, dev)
	if err != nil {
		t.Fatal(err)
	}
	var stepErr error
	for !run.Done() {
		if stepErr = run.Step(); stepErr != nil {
			break
		}
	}
	if stepErr == nil {
		t.Fatal("expected a step error under pathological theta")
	}
	if !run.Done() {
		t.Error("run not done after fatal error")
	}
	if again := run.Step(); again == nil {
		t.Error("Step after failure returned nil, want sticky error")
	}
	if _, err := run.Result(); err == nil {
		t.Error("Result after failure returned nil error")
	}
}
