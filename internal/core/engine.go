package core

import (
	"math"

	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/resim"
	"mpcgs/internal/rng"
)

// chainState is the shared chain engine: the complete working state of one
// Markov chain over genealogies, with every genealogy move delta-evaluated
// against the chain's own conditional-likelihood cache and every per-step
// buffer owned by the state so the step loop allocates nothing.
//
// One chainState backs one chain of any sampler — the MH baseline, each
// rung of the MC³ ladder (with its own tempering exponent β), the
// genealogy half of the Bayesian joint sampler, and each independent chain
// of MultiChain. The lifecycle of a step is
//
//	propose → (decide) → accept | reject
//
// or the bundled step(), which also draws the Metropolis decision.
// propose resimulates a neighbourhood of cur into prop (through the
// state's own resim.Scratch, so the region analysis is allocation-free)
// and stages an incremental evaluation against the cache: only the
// resimulated nodes and their root path are recomputed, the paper's
// in-device-memory data reuse (§4.4) generalized from the GMH kernel to
// every sampler. accept commits the staged conditionals into the cache
// (one memory copy, no re-evaluation) and swaps cur/prop; reject discards
// them — the cache never saw the proposal, so rejection is free.
//
// A chainState is not safe for concurrent use; it is the unit of
// parallelism. Ladders and chain pools run one state per device stream.
type chainState struct {
	eval *felsen.Evaluator
	// serial selects the LAMARC reference mode: every proposal is
	// re-evaluated from scratch with LogLikelihoodSerial, exactly like the
	// pre-engine samplers. It is the baseline of the paper's speedup
	// measurements and the oracle of the engine's equivalence tests.
	serial bool
	// beta is the tempering exponent on the data likelihood: the chain
	// targets P(D|G)^β·P(G|θ). 1 is the untempered posterior; MC³ ladder
	// rungs use β < 1. The prior is never tempered, matching LAMARC's
	// heating (Kuhner 2006). Tempering the delta evaluation is exact by
	// construction — the exponent distributes over the per-pattern
	// product, so β scales the total log-likelihood — and it lives here,
	// outside the evaluator: each rung's cache stores untempered
	// conditionals and never needs to know another rung's β, which is
	// what lets swaps exchange whole states without touching any cache.
	beta float64

	cache  *felsen.DeltaCache
	staged felsen.DeltaEval
	// pending reports whether staged holds an unresolved evaluation.
	pending bool

	cur     *gtree.Tree
	prop    *gtree.Tree
	logLik  float64 // untempered log P(D|cur)
	propLik float64 // untempered log P(D|prop) of the pending proposal
	ages    []float64
	stat    float64
	scratch *resim.Scratch
}

// newChainState builds the engine state for one chain starting at init,
// with its own delta cache (or none, in serial reference mode).
func newChainState(eval *felsen.Evaluator, init *gtree.Tree, serial bool) *chainState {
	s := &chainState{
		eval:    eval,
		serial:  serial,
		beta:    1,
		cur:     init.Clone(),
		prop:    init.Clone(),
		scratch: resim.NewScratch(),
	}
	if serial {
		s.logLik = eval.LogLikelihoodSerial(s.cur)
	} else {
		s.cache = eval.NewDeltaCache()
		s.logLik = eval.Rebase(s.cache, s.cur)
	}
	s.ages = s.cur.CoalescentAgesInto(make([]float64, 0, init.NInterior()))
	s.stat = sumKKTFromAges(init.NTips(), s.ages)
	return s
}

// newChainLadder builds p chain states all starting at init, paying for
// one evaluation of init and replicating its result — log-likelihood and,
// in delta mode, the whole conditional cache — across the rungs instead
// of re-evaluating the same tree p times.
func newChainLadder(eval *felsen.Evaluator, init *gtree.Tree, serial bool, p int) []*chainState {
	states := make([]*chainState, p)
	states[0] = newChainState(eval, init, serial)
	for i := 1; i < p; i++ {
		s := &chainState{
			eval:    eval,
			serial:  serial,
			beta:    1,
			cur:     init.Clone(),
			prop:    init.Clone(),
			scratch: resim.NewScratch(),
			logLik:  states[0].logLik,
			stat:    states[0].stat,
		}
		if !serial {
			s.cache = eval.NewDeltaCache()
			s.cache.CopyFrom(states[0].cache)
		}
		s.ages = s.cur.CoalescentAgesInto(make([]float64, 0, init.NInterior()))
		states[i] = s
	}
	return states
}

// propose draws the next candidate: a uniform neighbourhood target, its
// resimulation from the conditional coalescent prior at theta, and the
// candidate's data log-likelihood. The proposal stays pending until accept
// or reject resolves it. On a resimulation error nothing is pending and
// the chain state is unchanged.
//
//mpcgs:hotpath
func (s *chainState) propose(theta float64, src rng.Source) error {
	target := resim.PickTarget(s.cur, src)
	s.prop.CopyFrom(s.cur)
	if err := resim.ResimulateScratch(s.prop, target, theta, src, s.scratch); err != nil {
		return err
	}
	if s.serial {
		s.propLik = s.eval.LogLikelihoodSerial(s.prop)
	} else {
		s.staged = s.eval.StageDelta(s.cache, s.prop)
		s.propLik = s.staged.LogLik()
		s.pending = true
	}
	return nil
}

// logAcceptRatio returns the tempered log Metropolis ratio of the pending
// proposal: β·(log P(D|G') − log P(D|G)). The conditional-prior proposal
// cancels the (untempered) prior exactly as in Eq. 28.
func (s *chainState) logAcceptRatio() float64 {
	return s.beta * (s.propLik - s.logLik)
}

// accept resolves the pending proposal as the new current state.
//
//mpcgs:hotpath
func (s *chainState) accept() {
	if s.pending {
		s.staged.Commit()
		s.pending = false
	}
	s.cur, s.prop = s.prop, s.cur
	s.logLik = s.propLik
	s.ages = s.cur.CoalescentAgesInto(s.ages)
	s.stat = sumKKTFromAges(s.cur.NTips(), s.ages)
}

// reject drops the pending proposal; the cache is untouched.
//
//mpcgs:hotpath
func (s *chainState) reject() {
	if s.pending {
		s.staged.Discard()
		s.pending = false
	}
}

// step performs one full Metropolis step at driving value theta: propose,
// draw the accept decision against the tempered likelihood ratio, resolve.
// A resimulation failure counts as a rejection-with-error; the caller
// decides whether that is fatal (MH) or a skipped move (ladder rungs).
//
//mpcgs:hotpath
func (s *chainState) step(theta float64, src rng.Source) (bool, error) {
	if err := s.propose(theta, src); err != nil {
		return false, err
	}
	if logr := s.logAcceptRatio(); logr >= 0 || src.Float64() < math.Exp(logr) {
		s.accept()
		return true, nil
	}
	s.reject()
	return false, nil
}

// recorder appends chain draws to a SampleSet, copying age vectors into
// one flat arena carved a record at a time — recorded draws never alias a
// live chain buffer or each other's backing arrays.
type recorder struct {
	set   *SampleSet
	arena []float64
	nAges int
}

// newRecorder sizes a SampleSet and its age arena for a run of
// cfg.Burnin+cfg.Samples draws over nTips-tip genealogies.
func newRecorder(nTips int, cfg ChainConfig) *recorder {
	total := cfg.Burnin + cfg.Samples
	nAges := nTips - 1
	return &recorder{
		set: &SampleSet{
			NTips:  nTips,
			Theta0: cfg.Theta,
			Burnin: cfg.Burnin,
			Stats:  make([]float64, 0, total),
			Ages:   make([][]float64, 0, total),
			LogLik: make([]float64, 0, total),
		},
		arena: make([]float64, total*nAges),
		nAges: nAges,
	}
}

// record appends one draw, copying ages out of the caller's buffer.
func (r *recorder) record(stat float64, ages []float64, logLik float64) {
	rec := r.arena[:r.nAges:r.nAges]
	r.arena = r.arena[r.nAges:]
	copy(rec, ages)
	r.set.Stats = append(r.set.Stats, stat)
	r.set.Ages = append(r.set.Ages, rec)
	r.set.LogLik = append(r.set.LogLik, logLik)
}

// recordState appends the chain's current state.
func (r *recorder) recordState(s *chainState) {
	r.record(s.stat, s.ages, s.logLik)
}
