package core

import (
	"fmt"
	"math"

	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/resim"
	"mpcgs/internal/rng"
	"mpcgs/internal/stats"
	"mpcgs/internal/trace"
)

// chainState is the shared chain engine: the complete working state of one
// Markov chain over genealogies, with every genealogy move delta-evaluated
// against the chain's own conditional-likelihood cache and every per-step
// buffer owned by the state so the step loop allocates nothing.
//
// One chainState backs one chain of any sampler — the MH baseline, each
// rung of the MC³ ladder (with its own tempering exponent β), the
// genealogy half of the Bayesian joint sampler, and each independent chain
// of MultiChain. The lifecycle of a step is
//
//	propose → (decide) → accept | reject
//
// or the bundled step(), which also draws the Metropolis decision.
// propose resimulates a neighbourhood of cur into prop (through the
// state's own resim.Scratch, so the region analysis is allocation-free)
// and stages an incremental evaluation against the cache: only the
// resimulated nodes and their root path are recomputed, the paper's
// in-device-memory data reuse (§4.4) generalized from the GMH kernel to
// every sampler. accept commits the staged conditionals into the cache
// (one memory copy, no re-evaluation) and swaps cur/prop; reject discards
// them — the cache never saw the proposal, so rejection is free.
//
// A chainState is not safe for concurrent use; it is the unit of
// parallelism. Ladders and chain pools run one state per device stream.
type chainState struct {
	eval *felsen.Evaluator
	// serial selects the LAMARC reference mode: every proposal is
	// re-evaluated from scratch with LogLikelihoodSerial, exactly like the
	// pre-engine samplers. It is the baseline of the paper's speedup
	// measurements and the oracle of the engine's equivalence tests.
	serial bool
	// beta is the tempering exponent on the data likelihood: the chain
	// targets P(D|G)^β·P(G|θ). 1 is the untempered posterior; MC³ ladder
	// rungs use β < 1. The prior is never tempered, matching LAMARC's
	// heating (Kuhner 2006). Tempering the delta evaluation is exact by
	// construction — the exponent distributes over the per-pattern
	// product, so β scales the total log-likelihood — and it lives here,
	// outside the evaluator: each rung's cache stores untempered
	// conditionals and never needs to know another rung's β, which is
	// what lets swaps exchange whole states without touching any cache.
	beta float64

	cache  *felsen.DeltaCache
	staged felsen.DeltaEval
	// pending reports whether staged holds an unresolved evaluation.
	pending bool

	cur     *gtree.Tree
	prop    *gtree.Tree
	logLik  float64 // untempered log P(D|cur)
	propLik float64 // untempered log P(D|prop) of the pending proposal
	ages    []float64
	stat    float64
	scratch *resim.Scratch
}

// newChainState builds the engine state for one chain starting at init,
// with its own delta cache (or none, in serial reference mode).
func newChainState(eval *felsen.Evaluator, init *gtree.Tree, serial bool) *chainState {
	s := &chainState{
		eval:    eval,
		serial:  serial,
		beta:    1,
		cur:     init.Clone(),
		prop:    init.Clone(),
		scratch: resim.NewScratch(),
	}
	if serial {
		s.logLik = eval.LogLikelihoodSerial(s.cur)
	} else {
		s.cache = eval.NewDeltaCache()
		s.logLik = eval.Rebase(s.cache, s.cur)
	}
	s.ages = s.cur.CoalescentAgesInto(make([]float64, 0, init.NInterior()))
	s.stat = sumKKTFromAges(init.NTips(), s.ages)
	return s
}

// newChainLadder builds p chain states all starting at init, paying for
// one evaluation of init and replicating its result — log-likelihood and,
// in delta mode, the whole conditional cache — across the rungs instead
// of re-evaluating the same tree p times.
func newChainLadder(eval *felsen.Evaluator, init *gtree.Tree, serial bool, p int) []*chainState {
	states := make([]*chainState, p)
	states[0] = newChainState(eval, init, serial)
	for i := 1; i < p; i++ {
		s := &chainState{
			eval:    eval,
			serial:  serial,
			beta:    1,
			cur:     init.Clone(),
			prop:    init.Clone(),
			scratch: resim.NewScratch(),
			logLik:  states[0].logLik,
			stat:    states[0].stat,
		}
		if !serial {
			s.cache = eval.NewDeltaCache()
			s.cache.CopyFrom(states[0].cache)
		}
		s.ages = s.cur.CoalescentAgesInto(make([]float64, 0, init.NInterior()))
		states[i] = s
	}
	return states
}

// propose draws the next candidate: a uniform neighbourhood target, its
// resimulation from the conditional coalescent prior at theta, and the
// candidate's data log-likelihood. The proposal stays pending until accept
// or reject resolves it. On a resimulation error nothing is pending and
// the chain state is unchanged.
//
//mpcgs:hotpath
func (s *chainState) propose(theta float64, src rng.Source) error {
	target := resim.PickTarget(s.cur, src)
	s.prop.CopyFrom(s.cur)
	if err := resim.ResimulateScratch(s.prop, target, theta, src, s.scratch); err != nil {
		return err
	}
	if s.serial {
		s.propLik = s.eval.LogLikelihoodSerial(s.prop)
	} else {
		s.staged = s.eval.StageDelta(s.cache, s.prop)
		s.propLik = s.staged.LogLik()
		s.pending = true
	}
	return nil
}

// logAcceptRatio returns the tempered log Metropolis ratio of the pending
// proposal: β·(log P(D|G') − log P(D|G)). The conditional-prior proposal
// cancels the (untempered) prior exactly as in Eq. 28.
func (s *chainState) logAcceptRatio() float64 {
	return s.beta * (s.propLik - s.logLik)
}

// accept resolves the pending proposal as the new current state.
//
//mpcgs:hotpath
func (s *chainState) accept() {
	if s.pending {
		s.staged.Commit()
		s.pending = false
	}
	s.cur, s.prop = s.prop, s.cur
	s.logLik = s.propLik
	s.ages = s.cur.CoalescentAgesInto(s.ages)
	s.stat = sumKKTFromAges(s.cur.NTips(), s.ages)
}

// reject drops the pending proposal; the cache is untouched.
//
//mpcgs:hotpath
func (s *chainState) reject() {
	if s.pending {
		s.staged.Discard()
		s.pending = false
	}
}

// step performs one full Metropolis step at driving value theta: propose,
// draw the accept decision against the tempered likelihood ratio, resolve.
// A resimulation failure counts as a rejection-with-error; the caller
// decides whether that is fatal (MH) or a skipped move (ladder rungs).
//
//mpcgs:hotpath
func (s *chainState) step(theta float64, src rng.Source) (bool, error) {
	if err := s.propose(theta, src); err != nil {
		return false, err
	}
	if logr := s.logAcceptRatio(); logr >= 0 || src.Float64() < math.Exp(logr) {
		s.accept()
		return true, nil
	}
	s.reject()
	return false, nil
}

// Auto-stop cadence: the convergence targets are evaluated every
// stopCheckEvery post-burn-in draws once stopMinDraws of them exist.
// Both are constants of the draw stream, not of wall time or scheduler
// quanta, so a resumed run re-evaluates at exactly the same draws and
// stops at exactly the same point — the bit-identical resume contract
// extends to the stop decision.
const (
	stopCheckEvery = 64
	stopMinDraws   = 256
)

// spillFlushBytes bounds the in-memory frame buffer of a spilling
// recorder between checkpoints: once this many encoded bytes are
// pending, the recorder flushes a frame mid-interval. Draw contents
// and durable checkpoint offsets are unaffected — only the physical
// frame boundaries move — so the bound is free to tune.
const spillFlushBytes = 1 << 20

// recorder accumulates chain draws. It has two modes:
//
//   - In-memory (Trace unset): draws append to a SampleSet, age
//     vectors copied into one flat arena carved a record at a time —
//     recorded draws never alias a live chain buffer or each other's
//     backing arrays.
//   - Spill (Trace set): draws stream to the append-only sidecar via
//     trace.Writer and the SampleSet stays empty until finalize reads
//     the pass back — recorder memory is bounded by the pending frame
//     buffer and the fixed-size online diagnostics, independent of the
//     run length.
//
// In either mode, when stop targets are configured the post-burn-in
// stat stream additionally feeds a bounded stats.OnlineDiag, and the
// recorder flips stopped once the targets are met.
type recorder struct {
	set   *SampleSet
	arena []float64
	nAges int
	n     int // draws recorded this pass

	burnin int
	total  int

	// Spill mode.
	spill     *trace.Writer
	passOff   int64 // sidecar durable offset at pass start
	passDraws int   // sidecar total draw count at pass start

	// Online diagnostics and the auto-stop rule.
	diag       *stats.OnlineDiag
	essTarget  float64
	rhatTarget float64
	stopped    bool
	stopESS    float64
	stopRHat   float64
}

// newRecorder builds the recorder for a run of cfg.Burnin+cfg.Samples
// draws over nTips-tip genealogies, opening (and recovering) the
// sidecar when cfg spills.
func newRecorder(nTips int, cfg ChainConfig) (*recorder, error) {
	total := cfg.Burnin + cfg.Samples
	nAges := nTips - 1
	r := &recorder{
		set: &SampleSet{
			NTips:  nTips,
			Theta0: cfg.Theta,
			Burnin: cfg.Burnin,
		},
		nAges:      nAges,
		burnin:     cfg.Burnin,
		total:      total,
		essTarget:  cfg.ESSTarget,
		rhatTarget: cfg.RHatTarget,
	}
	if cfg.Trace != nil {
		w, err := trace.Open(cfg.Trace.Path, nAges)
		if err != nil {
			return nil, fmt.Errorf("core: trace sidecar: %w", err)
		}
		r.spill = w
		r.passOff, r.passDraws = w.Durable()
		r.diag = stats.NewOnlineDiag(cfg.Trace.Window, cfg.Trace.Subsample)
		return r, nil
	}
	r.set.Stats = make([]float64, 0, total)
	r.set.Ages = make([][]float64, 0, total)
	r.set.LogLik = make([]float64, 0, total)
	r.arena = make([]float64, total*nAges)
	if r.hasTargets() {
		r.diag = stats.NewOnlineDiag(0, 0)
	}
	return r, nil
}

func (r *recorder) hasTargets() bool { return r.essTarget > 0 || r.rhatTarget > 0 }

// len returns the number of draws recorded this pass.
func (r *recorder) len() int { return r.n }

// full reports whether the pass is over: the draw budget is exhausted
// or the stop rule fired.
func (r *recorder) full() bool { return r.n >= r.total || r.stopped }

// record appends one draw, copying ages out of the caller's buffer (or
// streaming them to the sidecar in spill mode).
func (r *recorder) record(stat float64, ages []float64, logLik float64) error {
	if r.spill != nil {
		r.spill.Append(stat, ages, logLik)
		if r.spill.PendingBytes() >= spillFlushBytes {
			if err := r.spill.Flush(); err != nil {
				return fmt.Errorf("core: trace sidecar: %w", err)
			}
		}
	} else {
		rec := r.arena[:r.nAges:r.nAges]
		r.arena = r.arena[r.nAges:]
		copy(rec, ages)
		r.set.Stats = append(r.set.Stats, stat)
		r.set.Ages = append(r.set.Ages, rec)
		r.set.LogLik = append(r.set.LogLik, logLik)
	}
	r.observe(stat)
	return nil
}

// recordState appends the chain's current state.
func (r *recorder) recordState(s *chainState) error {
	return r.record(s.stat, s.ages, s.logLik)
}

// observe counts one recorded draw and advances the online
// diagnostics and stop rule. It is shared by live recording and the
// restore replay, which is what makes the diagnostic state — and
// therefore the stop decision — a pure function of the draw stream.
func (r *recorder) observe(stat float64) {
	r.n++
	if r.diag == nil || r.n <= r.burnin {
		return
	}
	r.diag.Add(stat)
	if r.stopped || !r.hasTargets() {
		return
	}
	post := r.n - r.burnin
	if post < stopMinDraws || post%stopCheckEvery != 0 {
		return
	}
	ess := r.diag.ESS()
	rhat := r.diag.RHat()
	if r.essTarget > 0 && ess < r.essTarget {
		return
	}
	// NaN (not yet enough batches) never satisfies a set R-hat target.
	if r.rhatTarget > 0 && !(rhat <= r.rhatTarget) {
		return
	}
	r.stopped = true
	r.stopESS = ess
	r.stopRHat = rhat
}

// finalize completes the pass: in spill mode it flushes the sidecar
// and reads the pass's draws back into the SampleSet (the only point a
// spilling run materializes its trace — maximization needs the full
// post-burn-in stat vector), then closes the writer. In-memory mode is
// a no-op.
func (r *recorder) finalize() error {
	if r.spill == nil {
		return nil
	}
	if err := r.spill.Flush(); err != nil {
		return fmt.Errorf("core: trace sidecar: %w", err)
	}
	end, _ := r.spill.Durable()
	r.set.Stats = make([]float64, 0, r.n)
	r.set.Ages = make([][]float64, 0, r.n)
	r.set.LogLik = make([]float64, 0, r.n)
	arena := make([]float64, r.n*r.nAges)
	err := r.spill.Replay(r.passOff, end, func(stat float64, ages []float64, logLik float64) error {
		rec := arena[:r.nAges:r.nAges]
		arena = arena[r.nAges:]
		copy(rec, ages)
		r.set.Stats = append(r.set.Stats, stat)
		r.set.Ages = append(r.set.Ages, rec)
		r.set.LogLik = append(r.set.LogLik, logLik)
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: trace sidecar: %w", err)
	}
	if r.set.Len() != r.n {
		return fmt.Errorf("core: trace sidecar replayed %d draws, recorder has %d", r.set.Len(), r.n)
	}
	if err := r.spill.Close(); err != nil {
		return fmt.Errorf("core: trace sidecar: %w", err)
	}
	r.spill = nil
	return nil
}

// applyOutcome copies the stop decision onto a finished Result.
func (r *recorder) applyOutcome(res *Result) {
	res.StoppedEarly = r.stopped
	res.StopESS = r.stopESS
	res.StopRHat = r.stopRHat
}
