package core

import (
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

func TestGMHFailedProposalsZeroOnHealthyRun(t *testing.T) {
	eval := flatEvaluator(t, 5, device.Serial())
	init := startTree(t, names(5), 1.4, 201)
	res, err := NewGMH(eval, device.Serial(), 4).Run(init, ChainConfig{Theta: 1.4, Burnin: 10, Samples: 100, Seed: 202})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedProposals != 0 {
		t.Errorf("FailedProposals = %d on a healthy run, want 0", res.FailedProposals)
	}
}

func TestGMHFailedProposalsCountedUnderPathologicalTheta(t *testing.T) {
	// A driving θ absurdly far below the genealogy's scale makes the
	// conditional prior's killing terms underflow, so resimulations land
	// in numerically infeasible regions. The seed silently discarded
	// these errors (the errs dead-store bug); they must now be counted,
	// while the run itself still completes with the failed candidates at
	// zero weight.
	aln, _, err := seqgen.SimulateData(6, 40, 1.0, 211)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(subst.NewJC69(), aln, device.Serial())
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, 212)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewGMH(eval, device.Serial(), 4).Run(init, ChainConfig{Theta: 1e-9, Burnin: 0, Samples: 200, Seed: 213})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedProposals == 0 {
		t.Fatalf("FailedProposals = 0 under theta=1e-9, want > 0 (proposals: %d)", res.Proposals)
	}
	if res.FailedProposals > res.Proposals {
		t.Fatalf("FailedProposals %d exceeds Proposals %d", res.FailedProposals, res.Proposals)
	}
	if res.Samples.Len() != 200 {
		t.Fatalf("run did not complete: %d draws", res.Samples.Len())
	}
}
