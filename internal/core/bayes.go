package core

import (
	"fmt"
	"math"

	"mpcgs/internal/coalprior"
	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
)

// Bayesian samples the joint posterior P(G, θ | D) ∝ P(D|G)·P(G|θ)·π(θ),
// the second estimation mode of LAMARC 2.0 (Kuhner 2006, the paper's ref
// [17]). Two move types alternate:
//
//   - Genealogy moves: the neighbourhood resimulation kernel at the
//     current θ, accepted by the data-likelihood ratio (the conditional
//     prior proposal cancels P(G|θ), Eq. 28). They run on the shared
//     chain engine, so each move delta-evaluates only the resimulated
//     neighbourhood against the chain's conditional-likelihood cache —
//     exactly the long-chain regime where incremental evaluation pays.
//   - θ moves: a multiplicative log-normal random walk. Under the
//     log-uniform prior π(θ) ∝ 1/θ on [ThetaMin, ThetaMax] (LAMARC's
//     default), the Hastings factor θ'/θ cancels the prior ratio exactly,
//     leaving acceptance min(1, P(G|θ')/P(G|θ)); the data likelihood does
//     not depend on θ (paper Eq. 23) and drops out.
//
// The output is a posterior sample of θ rather than a point estimate: no
// EM loop, no driving value to iterate.
type Bayesian struct {
	eval *felsen.Evaluator
	// ThetaMin and ThetaMax bound the log-uniform prior. Zero values
	// select [1e-4, 1e2].
	ThetaMin, ThetaMax float64
	// ThetaStep is the log-normal random-walk scale. Zero selects 0.1.
	ThetaStep float64
	// ThetaEvery attempts a θ move after every k genealogy moves. Zero
	// selects 1.
	ThetaEvery int
	// SerialEval re-evaluates every genealogy proposal from scratch, the
	// pre-engine behaviour kept as the equivalence-test oracle.
	SerialEval bool
}

// NewBayesian builds the joint (G, θ) sampler. It takes the device like
// every other sampler constructor so callers build them uniformly, but
// the joint chain itself is sequential (one state, two move types), so
// the device is not retained — the evaluator carries its own; a parallel
// variant would reuse the GMH machinery unchanged (the index chain is a
// valid move on G given θ) and would bind to the device then.
func NewBayesian(eval *felsen.Evaluator, _ *device.Device) *Bayesian {
	return &Bayesian{eval: eval}
}

// BayesResult is the outcome of a Bayesian run.
type BayesResult struct {
	// Thetas holds the posterior θ draws (one per recorded step,
	// including burn-in; the first Samples.Burnin entries are burn-in).
	Thetas []float64
	// Samples holds the genealogy draws in reduced form.
	Samples *SampleSet
	// TreeAccepted/TreeMoves and ThetaAccepted/ThetaMoves count the two
	// move types.
	TreeAccepted, TreeMoves   int
	ThetaAccepted, ThetaMoves int
}

// PosteriorMeanTheta returns the post-burn-in mean of the θ draws.
func (r *BayesResult) PosteriorMeanTheta() float64 {
	xs := r.Thetas[r.Samples.Burnin:]
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Run samples the joint posterior. cfg.Theta is the initial θ (it must
// lie inside the prior support).
func (b *Bayesian) Run(init *gtree.Tree, cfg ChainConfig) (*BayesResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := b.eval.CheckTree(init); err != nil {
		return nil, err
	}
	if init.NTips() < 3 {
		return nil, fmt.Errorf("core: sampler needs at least 3 sequences, got %d", init.NTips())
	}
	tmin, tmax := b.ThetaMin, b.ThetaMax
	if tmin <= 0 {
		tmin = 1e-4
	}
	if tmax <= 0 {
		tmax = 1e2
	}
	if tmin >= tmax {
		return nil, fmt.Errorf("core: bad theta prior range [%v, %v]", tmin, tmax)
	}
	if cfg.Theta < tmin || cfg.Theta > tmax {
		return nil, fmt.Errorf("core: initial theta %v outside prior support [%v, %v]", cfg.Theta, tmin, tmax)
	}
	step := b.ThetaStep
	if step <= 0 {
		step = 0.1
	}
	every := b.ThetaEvery
	if every <= 0 {
		every = 1
	}

	src := seedSource(cfg.Seed, 6)
	st := newChainState(b.eval, init, b.SerialEval)
	theta := cfg.Theta

	rec, err := newRecorder(init.NTips(), cfg)
	if err != nil {
		return nil, err
	}
	total := cfg.Burnin + cfg.Samples
	res := &BayesResult{Samples: rec.set, Thetas: make([]float64, 0, total)}

	for step_ := 0; step_ < total; step_++ {
		// Genealogy move at the current theta.
		accepted, err := st.step(theta, src)
		if err != nil {
			return nil, fmt.Errorf("core: proposal failed: %w", err)
		}
		res.TreeMoves++
		if accepted {
			res.TreeAccepted++
		}

		// Theta move.
		if step_%every == 0 {
			res.ThetaMoves++
			next := rng.LogNormalStep(src, theta, step)
			if next >= tmin && next <= tmax {
				logr := coalprior.LogPriorStat(rec.set.NTips, st.stat, next) -
					coalprior.LogPriorStat(rec.set.NTips, st.stat, theta)
				if logr >= 0 || src.Float64() < math.Exp(logr) {
					theta = next
					res.ThetaAccepted++
				}
			}
		}

		if err := rec.recordState(st); err != nil {
			return nil, err
		}
		res.Thetas = append(res.Thetas, theta)
	}
	if err := rec.finalize(); err != nil {
		return nil, err
	}
	return res, nil
}
