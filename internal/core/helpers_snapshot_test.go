package core

import "testing"

// mustSnapshot exports a stepper's snapshot, failing the test on the
// (spill-mode-only) flush error path.
func mustSnapshot(t *testing.T, run Stepper) *StepSnapshot {
	t.Helper()
	snap, err := run.(SnapshotStepper).Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return snap
}
