package core

import (
	"fmt"
	"math"

	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/resim"
)

// MH is the serial single-chain Metropolis-Hastings sampler implementing
// the LAMARC algorithm (paper §4.2): at each step one neighbourhood is
// resimulated from the conditional coalescent prior and accepted with
// probability min(1, P(D|G')/P(D|G)) — the prior terms cancel out of the
// ratio exactly as in Eq. 28 because the proposal density is proportional
// to the prior.
type MH struct {
	eval *felsen.Evaluator
}

// NewMH builds the baseline sampler over the given likelihood evaluator.
// The evaluator's serial path is always used: this sampler is the
// single-processor reference of every speedup measurement.
func NewMH(eval *felsen.Evaluator) *MH { return &MH{eval: eval} }

// Name implements Sampler.
func (m *MH) Name() string { return "mh" }

// Run implements Sampler.
func (m *MH) Run(init *gtree.Tree, cfg ChainConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := m.eval.CheckTree(init); err != nil {
		return nil, err
	}
	if init.NTips() < 3 {
		return nil, fmt.Errorf("core: sampler needs at least 3 sequences, got %d", init.NTips())
	}
	src := seedSource(cfg.Seed, 1)

	cur := init.Clone()
	prop := init.Clone()
	curLL := m.eval.LogLikelihoodSerial(cur)

	total := cfg.Burnin + cfg.Samples
	set := &SampleSet{
		NTips:  init.NTips(),
		Theta0: cfg.Theta,
		Burnin: cfg.Burnin,
		Stats:  make([]float64, 0, total),
		Ages:   make([][]float64, 0, total),
		LogLik: make([]float64, 0, total),
	}
	res := &Result{Samples: set}

	curAges := cur.CoalescentAges()
	for step := 0; step < total; step++ {
		target := resim.PickTarget(cur, src)
		prop.CopyFrom(cur)
		if err := resim.Resimulate(prop, target, cfg.Theta, src); err != nil {
			return nil, fmt.Errorf("core: proposal failed at step %d: %w", step, err)
		}
		res.Proposals++
		propLL := m.eval.LogLikelihoodSerial(prop)
		logr := propLL - curLL
		if logr >= 0 || src.Float64() < math.Exp(logr) {
			cur, prop = prop, cur
			curLL = propLL
			curAges = cur.CoalescentAges()
			res.Accepted++
		}
		set.Stats = append(set.Stats, sumKKTFromAges(set.NTips, curAges))
		set.Ages = append(set.Ages, curAges)
		set.LogLik = append(set.LogLik, curLL)
	}
	res.Final = cur
	return res, nil
}
