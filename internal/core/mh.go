package core

import (
	"fmt"

	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
)

// MH is the serial single-chain Metropolis-Hastings sampler implementing
// the LAMARC algorithm (paper §4.2): at each step one neighbourhood is
// resimulated from the conditional coalescent prior and accepted with
// probability min(1, P(D|G')/P(D|G)) — the prior terms cancel out of the
// ratio exactly as in Eq. 28 because the proposal density is proportional
// to the prior.
//
// The step loop runs on the shared chain engine: proposals are
// delta-evaluated against the chain's conditional-likelihood cache, so
// per-step work is proportional to the resimulated neighbourhood rather
// than the whole genealogy, and nothing is allocated per step.
type MH struct {
	eval *felsen.Evaluator
	// SerialEval selects the LAMARC reference mode: every proposal pays a
	// full from-scratch likelihood evaluation, exactly what the reference
	// package does. This is the single-processor baseline of the paper's
	// speedup measurements (§6) and the oracle the delta path's
	// equivalence tests compare against; leave it false for estimation.
	SerialEval bool
}

// NewMH builds the baseline sampler over the given likelihood evaluator.
func NewMH(eval *felsen.Evaluator) *MH { return &MH{eval: eval} }

// Name implements Sampler.
func (m *MH) Name() string { return "mh" }

// Run implements Sampler.
func (m *MH) Run(init *gtree.Tree, cfg ChainConfig) (*Result, error) {
	return runStepped(m, init, cfg)
}

// mhRun is one started MH chain: a Stepper over single Metropolis steps.
type mhRun struct {
	theta float64
	src   *rng.MT19937
	st    *chainState
	rec   *recorder
	res   *Result
	step  int
	total int
}

// Start implements StepSampler.
func (m *MH) Start(init *gtree.Tree, cfg ChainConfig) (Stepper, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := m.eval.CheckTree(init); err != nil {
		return nil, err
	}
	if init.NTips() < 3 {
		return nil, fmt.Errorf("core: sampler needs at least 3 sequences, got %d", init.NTips())
	}
	rec, err := newRecorder(init.NTips(), cfg)
	if err != nil {
		return nil, err
	}
	return &mhRun{
		theta: cfg.Theta,
		src:   seedSource(cfg.Seed, 1),
		st:    newChainState(m.eval, init, m.SerialEval),
		rec:   rec,
		res:   &Result{Samples: rec.set},
		total: cfg.Burnin + cfg.Samples,
	}, nil
}

// Step implements Stepper: one Metropolis transition, recorded.
func (r *mhRun) Step() error {
	accepted, err := r.st.step(r.theta, r.src)
	if err != nil {
		return fmt.Errorf("core: proposal failed at step %d: %w", r.step, err)
	}
	r.step++
	r.res.Proposals++
	if accepted {
		r.res.Accepted++
	}
	return r.rec.recordState(r.st)
}

// Done implements Stepper.
func (r *mhRun) Done() bool { return r.rec.full() }

// Finish implements Stepper.
func (r *mhRun) Finish() (*Result, error) {
	if err := r.rec.finalize(); err != nil {
		return nil, err
	}
	r.rec.applyOutcome(r.res)
	r.res.Final = r.st.cur
	return r.res, nil
}

// Snapshot implements SnapshotStepper.
func (r *mhRun) Snapshot() (*StepSnapshot, error) {
	t, ref, err := r.rec.snapshot()
	if err != nil {
		return nil, err
	}
	return &StepSnapshot{
		Sampler:  "mh",
		Step:     r.step,
		Host:     r.src.State(),
		Chains:   []ChainSnapshot{r.st.Snapshot()},
		Trace:    t,
		TraceRef: ref,
		Counters: countersOf(r.res),
	}, nil
}

// Restore implements SnapshotStepper.
func (r *mhRun) Restore(s *StepSnapshot) error {
	if s.Sampler != "mh" {
		return fmt.Errorf("core: %q snapshot restored into an mh run", s.Sampler)
	}
	if len(s.Chains) != 1 {
		return fmt.Errorf("core: mh snapshot has %d chains, want 1", len(s.Chains))
	}
	if s.Step < 0 || s.Step > r.total {
		return fmt.Errorf("core: mh snapshot at step %d, run has %d", s.Step, r.total)
	}
	if err := r.src.SetState(s.Host); err != nil {
		return err
	}
	if err := r.st.RestoreChainState(s.Chains[0]); err != nil {
		return err
	}
	if err := r.rec.restore(s.Trace, s.TraceRef, s.Step); err != nil {
		return err
	}
	s.Counters.applyTo(r.res)
	r.step = s.Step
	return nil
}
