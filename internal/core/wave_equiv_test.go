package core

// Equivalence of the wave-fused GMH round (the default dispatch: a
// per-round outer-partial lift plus one fused (proposal × pattern-block)
// grid, felsen.Wave) with the per-candidate delta path it replaced
// (GMH.PerCandidate). The contract: same seed → same accept sequence,
// bit-identical statistic and log-likelihood traces, and the same
// FailedProposals count — across worker counts 1/2/8, and across
// kill/resume at multiple round boundaries.

import (
	"fmt"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/gtree"
)

// waveEquivConfig is long enough that the chain accepts, rejects and
// crosses burn-in many times, so a divergence anywhere in the round
// (weights, index draws, failed-proposal bookkeeping) surfaces in the
// trace comparison.
var waveEquivConfig = ChainConfig{Theta: 1.0, Burnin: 30, Samples: 150, Seed: 912}

func runGMH(t *testing.T, dev *device.Device, init *gtree.Tree, perCandidate bool) *Result {
	t.Helper()
	eval, _ := engineFixture(t, 8, 120, 911, dev)
	g := NewGMH(eval, dev, 4)
	g.PerCandidate = perCandidate
	res, err := g.Run(init, waveEquivConfig)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWaveGMHMatchesPerCandidate pins the wave dispatch to the
// per-candidate path on the same device, and pins every configuration to
// a single cross-worker reference: the trace is a function of the seed
// alone, never of the worker count or the dispatch strategy.
func TestWaveGMHMatchesPerCandidate(t *testing.T) {
	_, init := engineFixture(t, 8, 120, 911, device.Serial())
	var ref *Result
	for _, workers := range []int{1, 2, 8} {
		dev := device.New(workers)
		wave := runGMH(t, dev, init, false)
		perCand := runGMH(t, dev, init, true)
		dev.Close()
		label := fmt.Sprintf("workers=%d", workers)
		resultsIdentical(t, label+" wave vs per-candidate", perCand, wave)
		if ref == nil {
			ref = wave
			continue
		}
		resultsIdentical(t, label+" vs workers=1 reference", ref, wave)
	}
}

// TestWaveGMHKillResumeBitIdentical interrupts a wave-dispatched run at
// several round boundaries — before anything happened, after one round,
// mid-burn-in and past burn-in — and requires the restored run to finish
// bit-identical to both the uninterrupted wave run and the uninterrupted
// per-candidate run. The snapshot carries no wave state: the lift is
// rebuilt from the restored current tree on the next round's BindRound.
func TestWaveGMHKillResumeBitIdentical(t *testing.T) {
	dev := device.New(3)
	defer dev.Close()
	eval, init := engineFixture(t, 8, 120, 911, dev)

	g := NewGMH(eval, dev, 4)
	want, err := g.Run(init, waveEquivConfig)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewGMH(eval, dev, 4)
	oracle.PerCandidate = true
	wantPC, err := oracle.Run(init, waveEquivConfig)
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, "uninterrupted wave vs per-candidate", wantPC, want)

	for _, kill := range []int{0, 1, 17, 60} {
		run, err := g.Start(init, waveEquivConfig)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < kill && !run.Done(); i++ {
			if err := run.Step(); err != nil {
				t.Fatal(err)
			}
		}
		snap := mustSnapshot(t, run)
		resumed, err := g.Start(init, waveEquivConfig)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.(SnapshotStepper).Restore(snap); err != nil {
			t.Fatal(err)
		}
		for !resumed.Done() {
			if err := resumed.Step(); err != nil {
				t.Fatal(err)
			}
		}
		got, err := resumed.Finish()
		if err != nil {
			t.Fatal(err)
		}
		resultsIdentical(t, fmt.Sprintf("wave resumed at step %d", kill), want, got)
	}

	// The cross-dispatch snapshot is also valid: a snapshot taken from a
	// per-candidate run restores into a wave run (and vice versa) because
	// the wave keeps no cross-round state worth carrying.
	run, err := oracle.Start(init, waveEquivConfig)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17; i++ {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := mustSnapshot(t, run)
	resumed, err := g.Start(init, waveEquivConfig)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.(SnapshotStepper).Restore(snap); err != nil {
		t.Fatal(err)
	}
	for !resumed.Done() {
		if err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := resumed.Finish()
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, "per-candidate snapshot resumed on the wave path", want, got)
}
