package core

import (
	"testing"

	"mpcgs/internal/device"
)

// Compile-time: every step-driven run supports snapshot/restore.
var (
	_ SnapshotStepper = (*mhRun)(nil)
	_ SnapshotStepper = (*gmhRun)(nil)
	_ SnapshotStepper = (*heatedRun)(nil)
	_ SnapshotStepper = (*mcRun)(nil)
)

// resultsIdentical requires two completed runs to be indistinguishable:
// bit-identical traces (stats, ages, log-likelihoods), equal counters and
// the same final genealogy.
func resultsIdentical(t *testing.T, label string, want, got *Result) {
	t.Helper()
	sameTraces(t, label, want.Samples, got.Samples, 0)
	if got.Accepted != want.Accepted || got.Proposals != want.Proposals ||
		got.FailedProposals != want.FailedProposals ||
		got.Swaps != want.Swaps || got.SwapAttempts != want.SwapAttempts {
		t.Fatalf("%s: counters differ: %+v vs %+v", label, got, want)
	}
	sameInt64s := func(field string, a, b []int64) {
		if len(a) != len(b) {
			t.Fatalf("%s: %s length differs: %d vs %d", label, field, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: %s[%d] differs: %d vs %d", label, field, i, b[i], a[i])
			}
		}
	}
	sameInt64s("PairSwapAttempts", want.PairSwapAttempts, got.PairSwapAttempts)
	sameInt64s("PairSwaps", want.PairSwaps, got.PairSwaps)
	sameInt64s("EstPairSwapAttempts", want.EstPairSwapAttempts, got.EstPairSwapAttempts)
	sameInt64s("EstPairSwaps", want.EstPairSwaps, got.EstPairSwaps)
	if len(want.Betas) != len(got.Betas) {
		t.Fatalf("%s: ladder size differs: %d vs %d", label, len(got.Betas), len(want.Betas))
	}
	for i := range want.Betas {
		if want.Betas[i] != got.Betas[i] {
			t.Fatalf("%s: ladder beta %d differs bitwise: %v vs %v", label, i, got.Betas[i], want.Betas[i])
		}
	}
	if want.Final.String() != got.Final.String() {
		t.Fatalf("%s: final genealogy differs", label)
	}
	for i := range want.Final.Nodes {
		if want.Final.Nodes[i].Age != got.Final.Nodes[i].Age {
			t.Fatalf("%s: final genealogy node %d age differs bitwise", label, i)
		}
	}
}

// TestKillResumeBitIdentical is the headline acceptance test of the
// checkpoint subsystem at the core layer: for every sampler, a run
// snapshotted at an arbitrary step boundary and restored into a freshly
// started stepper finishes with a trace bit-identical to the
// uninterrupted run's.
func TestKillResumeBitIdentical(t *testing.T) {
	dev := device.New(3)
	defer dev.Close()
	eval, init := engineFixture(t, 6, 80, 901, dev)
	cfg := ChainConfig{Theta: 1.0, Burnin: 25, Samples: 140, Seed: 902}

	samplers := []struct {
		name string
		s    StepSampler
	}{
		{"mh", NewMH(eval)},
		{"gmh", NewGMH(eval, dev, 3)},
		{"heated", NewHeated(eval, dev, 3)},
		{"multichain", NewMultiChain(eval, dev, 2)},
	}
	for _, tc := range samplers {
		t.Run(tc.name, func(t *testing.T) {
			// Uninterrupted reference run.
			want, err := tc.s.Run(init, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Interrupt at several different boundaries, including step 0
			// (nothing happened yet) and a point past burn-in.
			for _, kill := range []int{0, 1, 17, 60} {
				run, err := tc.s.Start(init, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < kill && !run.Done(); i++ {
					if err := run.Step(); err != nil {
						t.Fatal(err)
					}
				}
				snap := mustSnapshot(t, run)
				// The original run is now abandoned; a fresh one restores.
				resumed, err := tc.s.Start(init, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := resumed.(SnapshotStepper).Restore(snap); err != nil {
					t.Fatal(err)
				}
				for !resumed.Done() {
					if err := resumed.Step(); err != nil {
						t.Fatal(err)
					}
				}
				got, err := resumed.Finish()
				if err != nil {
					t.Fatal(err)
				}
				resultsIdentical(t, tc.name, want, got)
			}
		})
	}
}

// TestKillResumeSerialEvalMode covers the serial reference mode: the
// restore path re-evaluates with LogLikelihoodSerial instead of a cache
// rebase, and mode mismatches are rejected.
func TestKillResumeSerialEvalMode(t *testing.T) {
	dev := device.Serial()
	eval, init := engineFixture(t, 5, 50, 911, dev)
	cfg := ChainConfig{Theta: 1.0, Burnin: 10, Samples: 60, Seed: 912}

	serial := NewMH(eval)
	serial.SerialEval = true
	want, err := serial.Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := serial.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 23; i++ {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := mustSnapshot(t, run)

	// A delta-mode run must refuse a serial-mode snapshot.
	delta, err := NewMH(eval).Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := delta.(SnapshotStepper).Restore(snap); err == nil {
		t.Fatal("serial snapshot restored into a delta-mode run")
	}

	resumed, err := serial.Start(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.(SnapshotStepper).Restore(snap); err != nil {
		t.Fatal(err)
	}
	for !resumed.Done() {
		if err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := resumed.Finish()
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, "mh serial", want, got)
}

// TestRestoreRejectsMismatches: restoring into a run with a different
// configuration fails loudly instead of silently diverging.
func TestRestoreRejectsMismatches(t *testing.T) {
	dev := device.Serial()
	eval, init := engineFixture(t, 6, 60, 921, dev)
	cfg := ChainConfig{Theta: 1.0, Burnin: 10, Samples: 50, Seed: 922}

	gmh3, _ := NewGMH(eval, dev, 3).Start(init, cfg)
	for i := 0; i < 5; i++ {
		if err := gmh3.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := mustSnapshot(t, gmh3)

	gmh4, _ := NewGMH(eval, dev, 4).Start(init, cfg)
	if err := gmh4.(SnapshotStepper).Restore(snap); err == nil {
		t.Fatal("gmh snapshot with 3 streams restored into a 4-proposal run")
	}
	mh, _ := NewMH(eval).Start(init, cfg)
	if err := mh.(SnapshotStepper).Restore(snap); err == nil {
		t.Fatal("gmh snapshot restored into an mh run")
	}
	h2, _ := NewHeated(eval, dev, 2).Start(init, cfg)
	h3, _ := NewHeated(eval, dev, 3).Start(init, cfg)
	for i := 0; i < 4; i++ {
		if err := h3.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := h2.(SnapshotStepper).Restore(mustSnapshot(t, h3)); err == nil {
		t.Fatal("3-rung heated snapshot restored into a 2-rung run")
	}
}

// TestEMKillResumeBitIdentical extends the equivalence to the outer EM
// loop: an estimation interrupted at an arbitrary sampler transition —
// including mid-iteration — resumes to the identical trajectory and
// final θ.
func TestEMKillResumeBitIdentical(t *testing.T) {
	dev := device.New(3)
	defer dev.Close()
	eval, init := engineFixture(t, 6, 60, 931, dev)
	cfg := EMConfig{InitialTheta: 1.0, Iterations: 3, Burnin: 20, Samples: 90, Seed: 932}

	for _, tc := range []struct {
		name string
		s    Sampler
	}{
		{"mh", NewMH(eval)},
		{"gmh", NewGMH(eval, dev, 3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := RunEM(tc.s, init, cfg, dev)
			if err != nil {
				t.Fatal(err)
			}
			// Kill points chosen to land both mid-iteration and right at an
			// iteration boundary (each pass is Burnin+Samples transitions).
			for _, kill := range []int{0, 7, 110, 115} {
				run, err := StartEM(tc.s, init, cfg, dev)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < kill && !run.Done(); i++ {
					if err := run.Step(); err != nil {
						t.Fatal(err)
					}
				}
				if run.Done() {
					// The whole estimation fit before this kill point
					// (GMH records several draws per transition); nothing
					// left to interrupt.
					continue
				}
				snap, err := run.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				resumed, err := StartEM(tc.s, init, cfg, dev)
				if err != nil {
					t.Fatal(err)
				}
				if err := resumed.Restore(snap); err != nil {
					t.Fatal(err)
				}
				for !resumed.Done() {
					if err := resumed.Step(); err != nil {
						t.Fatal(err)
					}
				}
				got, err := resumed.Result()
				if err != nil {
					t.Fatal(err)
				}
				emResultsEqual(t, tc.name, want, got)
			}
		})
	}
}
