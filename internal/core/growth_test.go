package core

import (
	"math"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/mssim"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

func TestRelLogLikelihoodGrowthAtDrivingIsZero(t *testing.T) {
	s := &SampleSet{
		NTips:  4,
		Theta0: 1.2,
		Stats:  []float64{1, 2},
		Ages:   [][]float64{{0.1, 0.2, 0.5}, {0.2, 0.3, 0.9}},
		LogLik: []float64{0, 0},
	}
	got := RelLogLikelihoodGrowth(s, 1.2, 0, device.Serial())
	if math.Abs(got) > 1e-12 {
		t.Errorf("log L(theta0, 0) = %v, want 0", got)
	}
}

func TestRelLogLikelihoodGrowthMatchesConstantAtGZero(t *testing.T) {
	s := &SampleSet{
		NTips:  5,
		Theta0: 0.8,
		Stats:  []float64{2.2, 3.1, 1.7},
		Ages: [][]float64{
			{0.05, 0.1, 0.2, 0.4},
			{0.1, 0.2, 0.3, 0.5},
			{0.02, 0.08, 0.15, 0.3},
		},
		LogLik: []float64{0, 0, 0},
	}
	// Stats must be consistent with Ages for the comparison to hold.
	for i, a := range s.Ages {
		s.Stats[i] = sumKKTFromAges(s.NTips, a)
	}
	dev := device.Serial()
	for _, theta := range []float64{0.3, 0.8, 2.0} {
		a := RelLogLikelihood(s, theta, dev)
		b := RelLogLikelihoodGrowth(s, theta, 0, dev)
		if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
			t.Errorf("theta=%v: constant %v != growth(g=0) %v", theta, a, b)
		}
	}
}

func TestJointGenealogyMLERecoversConstantSize(t *testing.T) {
	// Trees simulated at (theta*, g=0): the joint MLE must land near
	// theta* with growth near zero.
	trueTheta := 1.5
	trees, err := mssim.Simulate(mssim.Config{NSam: 8, Reps: 4000, Theta: trueTheta, Seed: 1001})
	if err != nil {
		t.Fatal(err)
	}
	ages := make([][]float64, len(trees))
	for i, tr := range trees {
		ages[i] = tr.CoalescentAges()
	}
	est, err := JointGenealogyMLE(8, ages, device.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Theta-trueTheta) > 0.08*trueTheta {
		t.Errorf("theta = %v, want %v (±8%%)", est.Theta, trueTheta)
	}
	if math.Abs(est.Growth) > 0.35 {
		t.Errorf("growth = %v, want ~0", est.Growth)
	}
}

func TestJointGenealogyMLERecoversGrowth(t *testing.T) {
	// Trees simulated at (theta*, g*) with strong growth: the joint MLE
	// must recover both parameters.
	trueTheta, trueG := 1.0, 3.0
	trees, err := mssim.SimulateGrowthReps(mssim.Config{NSam: 10, Reps: 4000, Theta: trueTheta, Seed: 1002}, trueG)
	if err != nil {
		t.Fatal(err)
	}
	ages := make([][]float64, len(trees))
	for i, tr := range trees {
		ages[i] = tr.CoalescentAges()
	}
	est, err := JointGenealogyMLE(10, ages, device.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Theta-trueTheta) > 0.15*trueTheta {
		t.Errorf("theta = %v, want %v (±15%%)", est.Theta, trueTheta)
	}
	if math.Abs(est.Growth-trueG) > 0.25*trueG {
		t.Errorf("growth = %v, want %v (±25%%)", est.Growth, trueG)
	}
}

func TestJointGenealogyMLEBeatsWrongModel(t *testing.T) {
	// The fitted (theta, g) must score better than the constant-size fit
	// on growth data: a direct check that growth improves the fit when
	// real.
	trees, err := mssim.SimulateGrowthReps(mssim.Config{NSam: 8, Reps: 1000, Theta: 1.0, Seed: 1003}, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	ages := make([][]float64, len(trees))
	for i, tr := range trees {
		ages[i] = tr.CoalescentAges()
	}
	dev := device.Serial()
	est, err := JointGenealogyMLE(8, ages, dev)
	if err != nil {
		t.Fatal(err)
	}
	if est.Growth <= 0.5 {
		t.Fatalf("fitted growth %v on strongly growing data", est.Growth)
	}
}

func TestMaximizeThetaGrowthDetectsGrowthFromSequences(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline statistical test")
	}
	// End-to-end: sequences simulated on a strongly growing population
	// vs a constant one. The sampler runs at g=0; the importance-sampled
	// 2-parameter MLE must assign clearly higher growth to the growing
	// dataset.
	fit := func(g float64, seed uint64) *GrowthEstimate {
		names := mssim.TipNames(10)
		src := seedSource(seed, 40)
		tree, err := mssim.SimulateGrowth(names, 1.0, g, src)
		if err != nil {
			t.Fatal(err)
		}
		aln, err := seqgen.Simulate(tree, seqgen.Config{Length: 400, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		dev := device.New(8)
		model, err := subst.NewF81(aln.BaseFreqs(), true)
		if err != nil {
			t.Fatal(err)
		}
		eval, err := felsen.New(model, aln, dev)
		if err != nil {
			t.Fatal(err)
		}
		init, err := InitialTree(aln, 1.0, seed)
		if err != nil {
			t.Fatal(err)
		}
		run, err := NewGMH(eval, dev, 8).Run(init, ChainConfig{
			Theta: 1.0, Burnin: 1500, Samples: 15000, Seed: seed + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		est, err := MaximizeThetaGrowth(run.Samples, MLEConfig{}, dev)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	growing := fit(6.0, 2001)
	constant := fit(0.0, 2002)
	if growing.Growth <= constant.Growth {
		t.Errorf("growth estimate on growing data (%v) not above constant data (%v)",
			growing.Growth, constant.Growth)
	}
	if growing.Growth <= 0 {
		t.Errorf("growth estimate on growing data = %v, want positive", growing.Growth)
	}
}

func TestJointGenealogyMLEErrors(t *testing.T) {
	if _, err := JointGenealogyMLE(4, nil, nil); err == nil {
		t.Error("empty genealogy set accepted")
	}
}
