package core

import (
	"fmt"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/logspace"
	"mpcgs/internal/resim"
	"mpcgs/internal/rng"
)

// GMH is the Generalized Metropolis-Hastings sampler of Calderhead applied
// to coalescent genealogies: the paper's contribution (§4.1, §4.3).
//
// Each iteration draws the auxiliary variable φ (a target neighbourhood,
// uniform over non-root interior nodes), generates N proposals in parallel
// by resimulating that same neighbourhood of the current state — each
// proposal on its own device thread with its own PRNG stream, computing
// its own data likelihood exactly as the paper's proposal kernel does
// (§5.2.1) — and then draws SamplesPerSet states from the stationary
// distribution of the index chain, whose weights reduce to the data
// likelihoods P(D|G̃_i) (Eq. 29-31). The last draw seeds the next proposal
// round. Burn-in uses the same parallel machinery: there is no serial
// burn-in component (§4.1).
//
// The round loop is allocation-free: proposal trees, weight/statistic
// arrays, age buffers and the kernel closure are set up once and reused
// every round, and proposal likelihoods are computed incrementally against
// a felsen.DeltaCache of the current state's conditionals — the in-device-
// memory data reuse that lets the proposal kernel's work stay proportional
// to the resimulated neighbourhood rather than the whole genealogy.
type GMH struct {
	eval *felsen.Evaluator
	dev  *device.Device
	// Proposals is N, the number of new candidates per round.
	Proposals int
	// SamplesPerSet is how many index draws each round yields; Calderhead
	// uses N, and 0 selects that default.
	SamplesPerSet int
	// NestedSiteParallelism additionally parallelizes each proposal's
	// likelihood over sites (the paper's dynamic parallelism, §4.4). With
	// N at or above the worker count the proposal-level parallelism
	// already saturates the device, so this defaults to off; it also
	// forgoes the delta-evaluation cache, since the site kernel evaluates
	// from scratch.
	NestedSiteParallelism bool
}

// NewGMH builds the multiple-proposal sampler with N proposals per round
// executing on dev.
func NewGMH(eval *felsen.Evaluator, dev *device.Device, proposals int) *GMH {
	return &GMH{eval: eval, dev: dev, Proposals: proposals}
}

// Name implements Sampler.
func (g *GMH) Name() string { return "gmh" }

// Run implements Sampler.
func (g *GMH) Run(init *gtree.Tree, cfg ChainConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := g.eval.CheckTree(init); err != nil {
		return nil, err
	}
	if init.NTips() < 3 {
		return nil, fmt.Errorf("core: sampler needs at least 3 sequences, got %d", init.NTips())
	}
	n := g.Proposals
	if n < 1 {
		return nil, fmt.Errorf("core: GMH needs at least 1 proposal per round, got %d", n)
	}
	perSet := g.SamplesPerSet
	if perSet <= 0 {
		perSet = n
	}

	host := seedSource(cfg.Seed, 2)
	streams := rng.NewStreamSet(n, cfg.Seed^0x9e3779b97f4a7c15)
	// One resimulation scratch per stream: the proposal kernel's region
	// analysis reuses it every round, so draws allocate nothing.
	scratches := make([]*resim.Scratch, n)
	for i := range scratches {
		scratches[i] = resim.NewScratch()
	}

	// Proposal set: slot 0 holds the current state, slots 1..N the new
	// candidates. All slots — trees, weights, statistics and age buffers —
	// are preallocated once (paper §5.1.3) and rewritten in place each
	// round.
	set := make([]*gtree.Tree, n+1)
	for i := range set {
		set[i] = init.Clone()
	}
	logw := make([]float64, n+1)
	stats := make([]float64, n+1)
	errs := make([]error, n)
	nAges := init.NInterior()
	ages := make([][]float64, n+1)
	agesStore := make([]float64, (n+1)*nAges)
	for i := range ages {
		ages[i] = agesStore[i*nAges : i*nAges : (i+1)*nAges]
	}

	cur := 0 // index of the current state within the set
	var cache *felsen.DeltaCache
	if g.NestedSiteParallelism {
		logw[cur] = g.eval.LogLikelihood(set[cur])
	} else {
		cache = g.eval.NewDeltaCache()
		logw[cur] = g.eval.Rebase(cache, set[cur])
	}
	ages[cur] = set[cur].CoalescentAgesInto(ages[cur])
	stats[cur] = sumKKTFromAges(init.NTips(), ages[cur])

	total := cfg.Burnin + cfg.Samples
	// Recorded draws copy their age vector out of the slot buffers into
	// the recorder's flat arena, carved one record at a time.
	rec := newRecorder(init.NTips(), cfg)
	out := rec.set
	res := &Result{Samples: out}

	// Proposal kernel: one device thread per candidate (§5.2.1). The
	// thread owning the current state stays idle, exactly as the paper
	// notes for the generator's thread. The closure is built once; phi,
	// cur and slots are rebound per round before the launch.
	var phi int
	slots := make([]int, 0, n)
	kernel := func(tid int) {
		i := slots[tid]
		p := set[i]
		p.CopyFrom(set[cur])
		if err := resim.ResimulateScratch(p, phi, cfg.Theta, streams.Stream(tid), scratches[tid]); err != nil {
			// A numerically impossible region: the candidate gets zero
			// weight and can never be sampled; the round proceeds.
			errs[tid] = err
			logw[i] = logspace.NegInf
			return
		}
		errs[tid] = nil
		if cache != nil {
			// Read-only delta evaluation: with N candidates a round and
			// at most one winner, evaluating without staging and paying
			// one incremental RebaseTo for the chosen slot is cheaper
			// than staging all N (the single-proposal engine chains make
			// the opposite trade through StageDelta).
			logw[i] = g.eval.LogLikelihoodDelta(cache, p)
		} else {
			logw[i] = g.eval.LogLikelihood(p)
		}
		ages[i] = p.CoalescentAgesInto(ages[i])
		stats[i] = sumKKTFromAges(out.NTips, ages[i])
	}

	for out.Len() < total {
		// Auxiliary variable φ: the shared resimulation target, making
		// every member of the set able to propose the rest (§4.3).
		phi = resim.PickTarget(set[cur], host)
		slots = slots[:0]
		for i := 0; i <= n; i++ {
			if i != cur {
				slots = append(slots, i)
			}
		}
		g.dev.Launch(n, kernel)
		res.Proposals += n
		for _, err := range errs {
			if err != nil {
				res.FailedProposals++
			}
		}

		// Sampling stage: draw from the index chain's stationary
		// distribution, w_i ∝ P(D|G̃_i) (Eq. 31), perSet times.
		last := cur
		for k := 0; k < perSet && out.Len() < total; k++ {
			idx := rng.LogCategorical(host, logw)
			if idx != last {
				res.Accepted++
			}
			last = idx
			rec.record(stats[idx], ages[idx], logw[idx])
		}
		if last != cur {
			cur = last
			if cache != nil {
				// Move the conditional-likelihood cache onto the new
				// current state incrementally: only the accepted
				// neighbourhood's rows are rewritten.
				g.eval.RebaseTo(cache, set[cur])
			}
		}
	}
	res.Final = set[cur].Clone()
	return res, nil
}
