package core

import (
	"fmt"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/logspace"
	"mpcgs/internal/resim"
	"mpcgs/internal/rng"
)

// GMH is the Generalized Metropolis-Hastings sampler of Calderhead applied
// to coalescent genealogies: the paper's contribution (§4.1, §4.3).
//
// Each iteration draws the auxiliary variable φ (a target neighbourhood,
// uniform over non-root interior nodes), generates N proposals in parallel
// by resimulating that same neighbourhood of the current state — each
// proposal on its own device thread with its own PRNG stream, computing
// its own data likelihood exactly as the paper's proposal kernel does
// (§5.2.1) — and then draws SamplesPerSet states from the stationary
// distribution of the index chain, whose weights reduce to the data
// likelihoods P(D|G̃_i) (Eq. 29-31). The last draw seeds the next proposal
// round. Burn-in uses the same parallel machinery: there is no serial
// burn-in component (§4.1).
type GMH struct {
	eval *felsen.Evaluator
	dev  *device.Device
	// Proposals is N, the number of new candidates per round.
	Proposals int
	// SamplesPerSet is how many index draws each round yields; Calderhead
	// uses N, and 0 selects that default.
	SamplesPerSet int
	// NestedSiteParallelism additionally parallelizes each proposal's
	// likelihood over sites (the paper's dynamic parallelism, §4.4). With
	// N at or above the worker count the proposal-level parallelism
	// already saturates the device, so this defaults to off.
	NestedSiteParallelism bool
}

// NewGMH builds the multiple-proposal sampler with N proposals per round
// executing on dev.
func NewGMH(eval *felsen.Evaluator, dev *device.Device, proposals int) *GMH {
	return &GMH{eval: eval, dev: dev, Proposals: proposals}
}

// Name implements Sampler.
func (g *GMH) Name() string { return "gmh" }

// Run implements Sampler.
func (g *GMH) Run(init *gtree.Tree, cfg ChainConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := g.eval.CheckTree(init); err != nil {
		return nil, err
	}
	if init.NTips() < 3 {
		return nil, fmt.Errorf("core: sampler needs at least 3 sequences, got %d", init.NTips())
	}
	n := g.Proposals
	if n < 1 {
		return nil, fmt.Errorf("core: GMH needs at least 1 proposal per round, got %d", n)
	}
	perSet := g.SamplesPerSet
	if perSet <= 0 {
		perSet = n
	}

	host := seedSource(cfg.Seed, 2)
	streams := rng.NewStreamSet(n, cfg.Seed^0x9e3779b97f4a7c15)

	// Proposal set: slot 0 holds the current state, slots 1..N the new
	// candidates. All slots are preallocated once (paper §5.1.3).
	set := make([]*gtree.Tree, n+1)
	for i := range set {
		set[i] = init.Clone()
	}
	logw := make([]float64, n+1)
	stats := make([]float64, n+1)
	ages := make([][]float64, n+1)
	errs := make([]error, n)

	cur := 0 // index of the current state within the set
	logw[cur] = g.likelihood(set[cur])
	ages[cur] = set[cur].CoalescentAges()
	stats[cur] = sumKKTFromAges(init.NTips(), ages[cur])

	total := cfg.Burnin + cfg.Samples
	out := &SampleSet{
		NTips:  init.NTips(),
		Theta0: cfg.Theta,
		Burnin: cfg.Burnin,
		Stats:  make([]float64, 0, total),
		Ages:   make([][]float64, 0, total),
		LogLik: make([]float64, 0, total),
	}
	res := &Result{Samples: out}

	for out.Len() < total {
		// Auxiliary variable φ: the shared resimulation target, making
		// every member of the set able to propose the rest (§4.3).
		phi := resim.PickTarget(set[cur], host)

		// Proposal kernel: one device thread per candidate (§5.2.1). The
		// thread owning the current state stays idle, exactly as the
		// paper notes for the generator's thread.
		slots := make([]int, 0, n)
		for i := 0; i <= n; i++ {
			if i != cur {
				slots = append(slots, i)
			}
		}
		g.dev.Launch(n, func(tid int) {
			i := slots[tid]
			p := set[i]
			p.CopyFrom(set[cur])
			if err := resim.Resimulate(p, phi, cfg.Theta, streams.Stream(tid)); err != nil {
				// A numerically impossible region: the candidate gets zero
				// weight and can never be sampled; the round proceeds.
				errs[tid] = err
				logw[i] = logspace.NegInf
				return
			}
			errs[tid] = nil
			logw[i] = g.likelihood(p)
			ages[i] = p.CoalescentAges()
			stats[i] = sumKKTFromAges(out.NTips, ages[i])
		})
		res.Proposals += n

		// Sampling stage: draw from the index chain's stationary
		// distribution, w_i ∝ P(D|G̃_i) (Eq. 31), perSet times.
		last := cur
		for k := 0; k < perSet && out.Len() < total; k++ {
			idx := rng.LogCategorical(host, logw)
			if idx != last {
				res.Accepted++
			}
			last = idx
			out.Stats = append(out.Stats, stats[idx])
			out.Ages = append(out.Ages, ages[idx])
			out.LogLik = append(out.LogLik, logw[idx])
		}
		cur = last
	}
	res.Final = set[cur].Clone()
	return res, nil
}

func (g *GMH) likelihood(t *gtree.Tree) float64 {
	if g.NestedSiteParallelism {
		return g.eval.LogLikelihood(t)
	}
	return g.eval.LogLikelihoodSerial(t)
}
