package core

import (
	"fmt"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/logspace"
	"mpcgs/internal/resim"
	"mpcgs/internal/rng"
)

// GMH is the Generalized Metropolis-Hastings sampler of Calderhead applied
// to coalescent genealogies: the paper's contribution (§4.1, §4.3).
//
// Each iteration draws the auxiliary variable φ (a target neighbourhood,
// uniform over non-root interior nodes), generates N proposals in parallel
// by resimulating that same neighbourhood of the current state — each
// proposal on its own device thread with its own PRNG stream, computing
// its own data likelihood exactly as the paper's proposal kernel does
// (§5.2.1) — and then draws SamplesPerSet states from the stationary
// distribution of the index chain, whose weights reduce to the data
// likelihoods P(D|G̃_i) (Eq. 29-31). The last draw seeds the next proposal
// round. Burn-in uses the same parallel machinery: there is no serial
// burn-in component (§4.1).
//
// The round loop is allocation-free: proposal trees, weight/statistic
// arrays, age buffers and the kernel closure are set up once and reused
// every round, and proposal likelihoods are computed incrementally against
// a felsen.DeltaCache of the current state's conditionals — the in-device-
// memory data reuse that lets the proposal kernel's work stay proportional
// to the resimulated neighbourhood rather than the whole genealogy.
type GMH struct {
	eval *felsen.Evaluator
	dev  *device.Device
	// Proposals is N, the number of new candidates per round.
	Proposals int
	// SamplesPerSet is how many index draws each round yields; Calderhead
	// uses N, and 0 selects that default.
	SamplesPerSet int
	// NestedSiteParallelism additionally parallelizes each proposal's
	// likelihood over sites (the paper's dynamic parallelism, §4.4). With
	// N at or above the worker count the proposal-level parallelism
	// already saturates the device, so this defaults to off; it also
	// forgoes the delta-evaluation cache, since the site kernel evaluates
	// from scratch.
	NestedSiteParallelism bool
	// PerCandidate forces the pre-wave dispatch: each candidate's
	// likelihood evaluated by its own device thread through
	// LogLikelihoodDelta instead of the round's fused
	// (proposal × pattern-block) wave grid. The two paths are bit-identical
	// (the equivalence suite pins this), so the toggle exists as the wave's
	// oracle and for A/B benchmarks, not as a semantic switch.
	PerCandidate bool
}

// NewGMH builds the multiple-proposal sampler with N proposals per round
// executing on dev.
func NewGMH(eval *felsen.Evaluator, dev *device.Device, proposals int) *GMH {
	return &GMH{eval: eval, dev: dev, Proposals: proposals}
}

// Name implements Sampler.
func (g *GMH) Name() string { return "gmh" }

// Run implements Sampler.
func (g *GMH) Run(init *gtree.Tree, cfg ChainConfig) (*Result, error) {
	return runStepped(g, init, cfg)
}

// gmhRun is one started GMH chain: a Stepper whose Step is a full
// proposal round (parallel candidate generation plus the index-chain
// draws), the natural scheduling unit of the multiple-proposal sampler.
type gmhRun struct {
	g      *GMH
	theta  float64
	n      int
	perSet int
	total  int

	host      *rng.MT19937
	streams   *rng.StreamSet
	scratches []*resim.Scratch

	set   []*gtree.Tree
	logw  []float64
	stats []float64
	errs  []error
	ages  [][]float64
	cur   int // index of the current state within the set
	cache *felsen.DeltaCache

	// wave is the fused round evaluator (nil on the per-candidate and
	// nested-site paths); waveTrees is its slot-indexed input, rebuilt
	// every round with nil for the current state and failed candidates.
	wave      *felsen.Wave
	waveTrees []*gtree.Tree

	rec *recorder
	out *SampleSet
	res *Result

	phi    int
	slots  []int
	kernel func(tid int)
}

// Start implements StepSampler.
func (g *GMH) Start(init *gtree.Tree, cfg ChainConfig) (Stepper, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := g.eval.CheckTree(init); err != nil {
		return nil, err
	}
	if init.NTips() < 3 {
		return nil, fmt.Errorf("core: sampler needs at least 3 sequences, got %d", init.NTips())
	}
	n := g.Proposals
	if n < 1 {
		return nil, fmt.Errorf("core: GMH needs at least 1 proposal per round, got %d", n)
	}
	perSet := g.SamplesPerSet
	if perSet <= 0 {
		perSet = n
	}

	r := &gmhRun{
		g:       g,
		theta:   cfg.Theta,
		n:       n,
		perSet:  perSet,
		total:   cfg.Burnin + cfg.Samples,
		host:    seedSource(cfg.Seed, 2),
		streams: rng.NewStreamSet(n, cfg.Seed^0x9e3779b97f4a7c15),
	}
	// One resimulation scratch per stream: the proposal kernel's region
	// analysis reuses it every round, so draws allocate nothing.
	r.scratches = make([]*resim.Scratch, n)
	for i := range r.scratches {
		r.scratches[i] = resim.NewScratch()
	}

	// Proposal set: slot 0 holds the current state, slots 1..N the new
	// candidates. All slots — trees, weights, statistics and age buffers —
	// are preallocated once (paper §5.1.3) and rewritten in place each
	// round.
	r.set = make([]*gtree.Tree, n+1)
	for i := range r.set {
		r.set[i] = init.Clone()
	}
	r.logw = make([]float64, n+1)
	r.stats = make([]float64, n+1)
	r.errs = make([]error, n)
	nAges := init.NInterior()
	r.ages = make([][]float64, n+1)
	agesStore := make([]float64, (n+1)*nAges)
	for i := range r.ages {
		r.ages[i] = agesStore[i*nAges : i*nAges : (i+1)*nAges]
	}

	if g.NestedSiteParallelism {
		r.logw[r.cur] = g.eval.LogLikelihood(r.set[r.cur])
	} else {
		r.cache = g.eval.NewDeltaCache()
		r.logw[r.cur] = g.eval.Rebase(r.cache, r.set[r.cur])
		if !g.PerCandidate {
			// Wave evaluation: the whole candidate set's likelihoods as one
			// fused (proposal × pattern-block) grid against a per-round
			// outer-partial lift of the shared root path. Bit-identical to
			// the per-candidate dispatch.
			r.wave = g.eval.NewWave(r.cache)
			r.waveTrees = make([]*gtree.Tree, n+1)
		}
	}
	r.ages[r.cur] = r.set[r.cur].CoalescentAgesInto(r.ages[r.cur])
	r.stats[r.cur] = sumKKTFromAges(init.NTips(), r.ages[r.cur])

	// Recorded draws copy their age vector out of the slot buffers into
	// the recorder's flat arena, carved one record at a time (or stream
	// to the trace sidecar when the run spills).
	rec, err := newRecorder(init.NTips(), cfg)
	if err != nil {
		return nil, err
	}
	r.rec = rec
	r.out = r.rec.set
	r.res = &Result{Samples: r.out}

	// Proposal kernel: one device thread per candidate (§5.2.1). The
	// thread owning the current state stays idle, exactly as the paper
	// notes for the generator's thread. The closure is built once; phi,
	// cur and slots are rebound per round before the launch. On the wave
	// path the kernel only resimulates and summarizes — the likelihoods of
	// the whole set are computed afterwards as one fused grid.
	r.slots = make([]int, 0, n)
	r.kernel = func(tid int) {
		i := r.slots[tid]
		p := r.set[i]
		p.CopyFrom(r.set[r.cur])
		if err := resim.ResimulateScratch(p, r.phi, r.theta, r.streams.Stream(tid), r.scratches[tid]); err != nil {
			// A numerically impossible region: the candidate gets zero
			// weight and can never be sampled; the round proceeds.
			r.errs[tid] = err
			r.logw[i] = logspace.NegInf
			return
		}
		r.errs[tid] = nil
		switch {
		case r.wave != nil:
			// Evaluated by the wave grid after the launch completes.
		case r.cache != nil:
			// Read-only delta evaluation: with N candidates a round and
			// at most one winner, evaluating without staging and paying
			// one incremental RebaseTo for the chosen slot is cheaper
			// than staging all N (the single-proposal engine chains make
			// the opposite trade through StageDelta).
			r.logw[i] = g.eval.LogLikelihoodDelta(r.cache, p)
		default:
			r.logw[i] = g.eval.LogLikelihood(p)
		}
		r.ages[i] = p.CoalescentAgesInto(r.ages[i])
		r.stats[i] = sumKKTFromAges(r.out.NTips, r.ages[i])
	}
	return r, nil
}

// Step implements Stepper: one full proposal round.
//
//mpcgs:hotpath
func (r *gmhRun) Step() error {
	// Auxiliary variable φ: the shared resimulation target, making
	// every member of the set able to propose the rest (§4.3).
	r.phi = resim.PickTarget(r.set[r.cur], r.host)
	r.slots = r.slots[:0]
	for i := 0; i <= r.n; i++ {
		if i != r.cur {
			r.slots = append(r.slots, i)
		}
	}
	r.g.dev.Launch(r.n, r.kernel)
	r.res.Proposals += r.n
	for _, err := range r.errs {
		if err != nil {
			r.res.FailedProposals++
		}
	}
	if r.wave != nil {
		// Wave evaluation: lift the shared root path once for this round's
		// φ, then one fused (proposal × pattern-block) grid over every
		// candidate that resimulated successfully. Failed candidates and
		// the current state keep their logw (NegInf and the cached value).
		r.wave.BindRound(r.phi)
		for tid, i := range r.slots {
			if r.errs[tid] != nil {
				r.waveTrees[i] = nil
			} else {
				r.waveTrees[i] = r.set[i]
			}
		}
		r.waveTrees[r.cur] = nil
		r.wave.Eval(r.waveTrees, r.logw)
	}

	// Sampling stage: draw from the index chain's stationary
	// distribution, w_i ∝ P(D|G̃_i) (Eq. 31), perSet times.
	last := r.cur
	for k := 0; k < r.perSet && !r.rec.full(); k++ {
		idx := rng.LogCategorical(r.host, r.logw)
		if idx != last {
			r.res.Accepted++
		}
		last = idx
		if err := r.rec.record(r.stats[idx], r.ages[idx], r.logw[idx]); err != nil {
			return err
		}
	}
	if last != r.cur {
		r.cur = last
		if r.cache != nil {
			// Move the conditional-likelihood cache onto the new
			// current state incrementally: only the accepted
			// neighbourhood's rows are rewritten.
			r.g.eval.RebaseTo(r.cache, r.set[r.cur])
		}
	}
	return nil
}

// Done implements Stepper.
func (r *gmhRun) Done() bool { return r.rec.full() }

// Finish implements Stepper.
func (r *gmhRun) Finish() (*Result, error) {
	if err := r.rec.finalize(); err != nil {
		return nil, err
	}
	r.rec.applyOutcome(r.res)
	r.res.Final = r.set[r.cur].Clone()
	return r.res, nil
}

// Snapshot implements SnapshotStepper. Only the current slot's tree is
// carried: every other slot — tree, weight, statistic, ages — is rewritten
// by the proposal kernel before the next round reads it. The slot index
// itself must survive, because it decides how streams map onto slots and
// where the current state sits in the index-chain walk.
func (r *gmhRun) Snapshot() (*StepSnapshot, error) {
	t, ref, err := r.rec.snapshot()
	if err != nil {
		return nil, err
	}
	return &StepSnapshot{
		Sampler:  "gmh",
		Step:     r.rec.len(),
		Cur:      r.cur,
		Host:     r.host.State(),
		Streams:  r.streams.State(),
		Chains:   []ChainSnapshot{{Tree: r.set[r.cur].Clone(), Beta: 1}},
		Trace:    t,
		TraceRef: ref,
		Counters: countersOf(r.res),
	}, nil
}

// Restore implements SnapshotStepper.
func (r *gmhRun) Restore(s *StepSnapshot) error {
	if s.Sampler != "gmh" {
		return fmt.Errorf("core: %q snapshot restored into a gmh run", s.Sampler)
	}
	if len(s.Chains) != 1 || s.Chains[0].Tree == nil {
		return fmt.Errorf("core: gmh snapshot has no current-state tree")
	}
	if s.Cur < 0 || s.Cur > r.n {
		return fmt.Errorf("core: gmh snapshot slot index %d out of range [0, %d]", s.Cur, r.n)
	}
	if s.Step > r.total {
		return fmt.Errorf("core: gmh snapshot at step %d, run records at most %d", s.Step, r.total)
	}
	tree := s.Chains[0].Tree
	if tree.NTips() != r.set[0].NTips() {
		return fmt.Errorf("core: gmh snapshot tree has %d tips, run has %d", tree.NTips(), r.set[0].NTips())
	}
	if err := tree.Validate(); err != nil {
		return fmt.Errorf("core: gmh snapshot tree invalid: %w", err)
	}
	if err := r.host.SetState(s.Host); err != nil {
		return err
	}
	if err := r.streams.SetState(s.Streams); err != nil {
		return fmt.Errorf("core: gmh snapshot has %d proposal streams, run is configured for %d: %w",
			len(s.Streams), r.n, err)
	}
	r.cur = s.Cur
	// Every slot gets the tree so the arena stays structurally valid; only
	// the current slot's derived values matter — the rest are overwritten
	// by the next round's kernel.
	for i := range r.set {
		r.set[i].CopyFrom(tree)
	}
	if r.cache != nil {
		r.logw[r.cur] = r.g.eval.Rebase(r.cache, r.set[r.cur])
	} else {
		r.logw[r.cur] = r.g.eval.LogLikelihood(r.set[r.cur])
	}
	r.ages[r.cur] = r.set[r.cur].CoalescentAgesInto(r.ages[r.cur])
	r.stats[r.cur] = sumKKTFromAges(r.out.NTips, r.ages[r.cur])
	if err := r.rec.restore(s.Trace, s.TraceRef, s.Step); err != nil {
		return err
	}
	s.Counters.applyTo(r.res)
	return nil
}
