package core

import (
	"math"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

func diagnoseRun(t *testing.T, burnin, samples int, seeds ...uint64) []*SampleSet {
	t.Helper()
	aln, _, err := seqgen.SimulateData(8, 150, 1.0, 777)
	if err != nil {
		t.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(model, aln, device.Serial())
	if err != nil {
		t.Fatal(err)
	}
	var sets []*SampleSet
	for _, seed := range seeds {
		init, err := InitialTree(aln, 1.0, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewMH(eval).Run(init, ChainConfig{Theta: 1.0, Burnin: burnin, Samples: samples, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, res.Samples)
	}
	return sets
}

func TestDiagnoseConvergedChain(t *testing.T) {
	if testing.Short() {
		t.Skip("chain diagnostics")
	}
	set := diagnoseRun(t, 2000, 6000, 31)[0]
	d := Diagnose(set)
	if d.ESS <= 0 || d.ESS > float64(set.Len()) {
		t.Errorf("ESS = %v out of range", d.ESS)
	}
	if math.IsNaN(d.GewekeZ) {
		t.Error("GewekeZ is NaN on a long trace")
	}
	if !d.BurninSufficient {
		t.Errorf("generous burn-in flagged insufficient: %+v", d)
	}
}

func TestDiagnoseColdStartFlagsShortBurnin(t *testing.T) {
	if testing.Short() {
		t.Skip("chain diagnostics")
	}
	// Zero burn-in from a UPGMA cold start: the detector should suggest
	// discarding a prefix.
	set := diagnoseRun(t, 0, 6000, 33)[0]
	d := Diagnose(set)
	if d.SuggestedBurnin <= 0 {
		t.Errorf("suggested burn-in = %d on a cold-start trace", d.SuggestedBurnin)
	}
}

func TestRHatAcrossIndependentChains(t *testing.T) {
	if testing.Short() {
		t.Skip("chain diagnostics")
	}
	sets := diagnoseRun(t, 1500, 4000, 41, 42, 43)
	r := RHat(sets)
	if math.IsNaN(r) {
		t.Fatal("RHat is NaN")
	}
	// Well-burned-in chains on the same posterior: R-hat near 1. MCMC
	// autocorrelation inflates it somewhat; 1.5 is a generous bound that
	// still catches non-mixing (which gives >> 2 here).
	if r > 1.5 {
		t.Errorf("R-hat = %v, chains appear unmixed", r)
	}
}

func TestRHatDegenerate(t *testing.T) {
	if !math.IsNaN(RHat(nil)) {
		t.Error("RHat(nil) should be NaN")
	}
	s := &SampleSet{LogLik: []float64{1, 2, 3}}
	if !math.IsNaN(RHat([]*SampleSet{s})) {
		t.Error("single chain should be NaN")
	}
}
