package core

import (
	"math"

	"mpcgs/internal/stats"
)

// Diagnostics summarizes the health of a chain run, addressing the
// burn-in assessment problem of paper §2.3 ("methods also exist to
// evaluate if the burn-in period is over while the chain is in
// progress"): a stationarity z-score over the post-burn-in trace, the
// effective number of independent draws, and a data-driven burn-in
// suggestion to compare against the configured one.
type Diagnostics struct {
	// ESS is the effective sample size of the post-burn-in
	// log-likelihood trace.
	ESS float64
	// GewekeZ compares early versus late segments of the post-burn-in
	// trace; |z| below ~2 is consistent with stationarity.
	GewekeZ float64
	// SuggestedBurnin is the data-driven cutoff detected on the full
	// trace (including the configured burn-in region).
	SuggestedBurnin int
	// BurninSufficient reports whether the configured burn-in covers the
	// detected transient.
	BurninSufficient bool
}

// Diagnose computes convergence diagnostics for a sample set.
func Diagnose(s *SampleSet) Diagnostics {
	d := Diagnostics{
		ESS:             stats.EffectiveSampleSize(s.PostBurninLogLik()),
		GewekeZ:         stats.Geweke(s.PostBurninLogLik(), 0.2, 0.5),
		SuggestedBurnin: stats.DetectBurnin(s.LogLik),
	}
	d.BurninSufficient = s.Burnin >= d.SuggestedBurnin &&
		(math.IsNaN(d.GewekeZ) || math.Abs(d.GewekeZ) < 2.5)
	return d
}

// RHat computes the Gelman-Rubin potential scale reduction factor across
// several independent runs' post-burn-in log-likelihood traces, the
// multi-chain convergence check of §2.3. Traces are truncated to the
// shortest.
func RHat(sets []*SampleSet) float64 {
	if len(sets) < 2 {
		return math.NaN()
	}
	minLen := math.MaxInt
	for _, s := range sets {
		if n := len(s.PostBurninLogLik()); n < minLen {
			minLen = n
		}
	}
	if minLen < 2 {
		return math.NaN()
	}
	chains := make([][]float64, len(sets))
	for i, s := range sets {
		chains[i] = s.PostBurninLogLik()[:minLen]
	}
	return stats.GelmanRubin(chains)
}
