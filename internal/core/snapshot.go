package core

import (
	"fmt"

	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
	"mpcgs/internal/tempering"
	"mpcgs/internal/trace"
)

// Chain/stepper/EM snapshots: the serializable state of a run at a
// between-steps boundary, the unit of the checkpoint/restore subsystem.
//
// A snapshot is deliberately minimal: it carries only the state that is
// not a pure function of something else in it. The felsen.DeltaCache is
// the motivating example — every cached conditional row is a deterministic
// function of the current tree (evalDelta recomputes each node from its
// children with identical arithmetic whether it runs incrementally or as a
// full Rebase, and the total is always the full pattern sum at the root),
// so a restore rebuilds the cache from the tree and lands on bit-identical
// likelihoods. What must be carried exactly: tree topology and node ages,
// every PRNG state, the recorded trace so far, and the run's counters.
//
// The restore contract is bit-identical resumption: a run snapshotted at
// an arbitrary step boundary and restored into a freshly started stepper
// with the same configuration produces the same remaining draws, decisions
// and final Result as the uninterrupted run.

// ChainSnapshot is the persistent state of one engine chain: the current
// genealogy plus the chain's tempering exponent and evaluation mode. The
// likelihood, sufficient statistic, age buffer and conditional-likelihood
// cache are all derived from the tree on restore.
type ChainSnapshot struct {
	Tree   *gtree.Tree
	Beta   float64
	Serial bool
}

// Snapshot exports the chain's persistent state. It must be taken at a
// step boundary (no staged proposal pending).
func (s *chainState) Snapshot() ChainSnapshot {
	if s.pending {
		panic("core: chain snapshot with a staged proposal pending")
	}
	return ChainSnapshot{Tree: s.cur.Clone(), Beta: s.beta, Serial: s.serial}
}

// RestoreChainState overwrites the chain with a snapshot: the tree is
// copied in, β and the serial flag adopted, and the log-likelihood,
// conditional cache, age buffer and sufficient statistic rebuilt from the
// tree — bit-identical to the values the running chain carried, because
// the delta evaluation they came from is a pure function of the tree.
func (s *chainState) RestoreChainState(c ChainSnapshot) error {
	if c.Tree == nil {
		return fmt.Errorf("core: chain snapshot has no tree")
	}
	if c.Tree.NTips() != s.cur.NTips() {
		return fmt.Errorf("core: chain snapshot tree has %d tips, chain has %d", c.Tree.NTips(), s.cur.NTips())
	}
	if c.Serial != s.serial {
		return fmt.Errorf("core: chain snapshot evaluation mode (serial=%v) does not match the run (serial=%v)", c.Serial, s.serial)
	}
	if err := c.Tree.Validate(); err != nil {
		return fmt.Errorf("core: chain snapshot tree invalid: %w", err)
	}
	if s.pending {
		s.staged.Discard()
		s.pending = false
	}
	s.cur.CopyFrom(c.Tree)
	s.prop.CopyFrom(c.Tree)
	s.beta = c.Beta
	if s.serial {
		s.logLik = s.eval.LogLikelihoodSerial(s.cur)
	} else {
		s.logLik = s.eval.Rebase(s.cache, s.cur)
	}
	s.ages = s.cur.CoalescentAgesInto(s.ages)
	s.stat = sumKKTFromAges(s.cur.NTips(), s.ages)
	return nil
}

// TraceSnapshot is the recorded trace of a run so far: one entry per draw,
// deep-copied out of the recorder. Only in-memory runs carry it; spilling
// runs carry a TraceRef instead.
type TraceSnapshot struct {
	Stats  []float64
	Ages   [][]float64
	LogLik []float64
}

// TraceRef is a spilling run's trace as a snapshot carries it: not the
// draws, just where the durable prefix of the sidecar ends and where
// the current pass began inside it. This is what makes snapshot size
// independent of how many draws the run has recorded. ESS, RHat and
// Stopped mirror the online diagnostics at snapshot time; they are
// informational (inspect reads them) and rebuilt from the stream on
// restore, never trusted.
type TraceRef struct {
	// Path of the sidecar as the run was configured (informational:
	// restore always uses the resuming run's own configured sidecar).
	Path string
	// NAges is the per-draw age count of the sidecar's frames.
	NAges int
	// Offset and Draws locate the durable end of the sidecar at
	// snapshot time: Offset bytes holding Draws draws in total.
	Offset int64
	Draws  int
	// PassOffset and PassDraws locate the start of the pass the
	// snapshot was taken in: the sidecar is shared by all passes of one
	// estimation, and the pass's own draws are [PassOffset, Offset).
	PassOffset int64
	PassDraws  int
	// Online diagnostics at snapshot time.
	ESS     float64
	RHat    float64
	Stopped bool
}

// snapshot exports the recorder's trace state: a deep copy of the
// draws for in-memory runs, or — after flushing, so the offsets below
// are durable — a sidecar reference for spilling runs.
func (r *recorder) snapshot() (*TraceSnapshot, *TraceRef, error) {
	if r.spill != nil {
		if err := r.spill.Flush(); err != nil {
			return nil, nil, fmt.Errorf("core: trace sidecar: %w", err)
		}
		off, draws := r.spill.Durable()
		ref := &TraceRef{
			Path:       r.spill.Path(),
			NAges:      r.nAges,
			Offset:     off,
			Draws:      draws,
			PassOffset: r.passOff,
			PassDraws:  r.passDraws,
			Stopped:    r.stopped,
		}
		if r.diag != nil {
			ref.ESS = r.diag.ESS()
			ref.RHat = r.diag.RHat()
		}
		return nil, ref, nil
	}
	t := &TraceSnapshot{
		Stats:  append([]float64(nil), r.set.Stats...),
		Ages:   make([][]float64, len(r.set.Ages)),
		LogLik: append([]float64(nil), r.set.LogLik...),
	}
	for i, ages := range r.set.Ages {
		t.Ages[i] = append([]float64(nil), ages...)
	}
	return t, nil, nil
}

// restore replays a snapshot's trace into a fresh recorder that must
// hold exactly step draws afterwards. All four mode pairings work:
//
//   - in-memory trace → in-memory recorder: the draws replay through
//     record as before;
//   - in-memory trace → spilling recorder: a v1/v2 checkpoint resumed
//     under spilling — the draws replay through record, which seeds
//     the sidecar (the migration path);
//   - sidecar ref → spilling recorder: the sidecar is truncated back
//     to the checkpointed durable offset (discarding anything written
//     after the snapshot, including a recovered-but-newer tail) and
//     the pass's draws replay through the online diagnostics;
//   - sidecar ref → in-memory recorder: the draws are read back from
//     the referenced sidecar path.
func (r *recorder) restore(t *TraceSnapshot, ref *TraceRef, step int) error {
	if r.n != 0 {
		return fmt.Errorf("core: trace restore into a recorder that already has %d draws", r.n)
	}
	if step < 0 || step > r.total {
		return fmt.Errorf("core: trace restore at step %d, run records at most %d", step, r.total)
	}
	switch {
	case t != nil && ref != nil:
		return fmt.Errorf("core: snapshot carries both a trace and a sidecar reference")
	case t != nil:
		return r.restoreTrace(t, step)
	case ref != nil:
		return r.restoreRef(ref, step)
	default:
		return fmt.Errorf("core: snapshot carries no trace")
	}
}

func (r *recorder) restoreTrace(t *TraceSnapshot, step int) error {
	if len(t.Stats) != step {
		return fmt.Errorf("core: trace snapshot has %d draws, snapshot step is %d", len(t.Stats), step)
	}
	if len(t.Stats) != len(t.Ages) || len(t.Stats) != len(t.LogLik) {
		return fmt.Errorf("core: trace snapshot is ragged: %d stats, %d age rows, %d log-likelihoods",
			len(t.Stats), len(t.Ages), len(t.LogLik))
	}
	for i := range t.Stats {
		if len(t.Ages[i]) != r.nAges {
			return fmt.Errorf("core: trace snapshot draw %d has %d ages, want %d", i, len(t.Ages[i]), r.nAges)
		}
		if err := r.record(t.Stats[i], t.Ages[i], t.LogLik[i]); err != nil {
			return err
		}
	}
	return nil
}

func (r *recorder) restoreRef(ref *TraceRef, step int) error {
	if ref.NAges != r.nAges {
		return fmt.Errorf("core: sidecar reference has %d ages per draw, run has %d", ref.NAges, r.nAges)
	}
	if got := ref.Draws - ref.PassDraws; got != step {
		return fmt.Errorf("core: sidecar reference holds %d pass draws, snapshot step is %d", got, step)
	}
	if r.spill != nil {
		// Rewind the sidecar to the checkpoint: draws recorded after
		// the snapshot was taken are discarded, and the checkpoint's
		// draw count is re-verified against the frames on disk.
		if err := r.spill.TruncateTo(ref.Offset, ref.Draws); err != nil {
			return fmt.Errorf("core: trace sidecar: %w", err)
		}
		r.passOff = ref.PassOffset
		r.passDraws = ref.PassDraws
		err := r.spill.Replay(ref.PassOffset, ref.Offset, func(stat float64, ages []float64, logLik float64) error {
			r.observe(stat)
			return nil
		})
		if err != nil {
			return fmt.Errorf("core: trace sidecar: %w", err)
		}
	} else {
		err := trace.Replay(ref.Path, ref.PassOffset, ref.Offset, func(stat float64, ages []float64, logLik float64) error {
			return r.record(stat, ages, logLik)
		})
		if err != nil {
			return fmt.Errorf("core: trace sidecar: %w", err)
		}
	}
	if r.n != step {
		return fmt.Errorf("core: sidecar replay yielded %d draws, snapshot step is %d", r.n, step)
	}
	return nil
}

// Counters are the cumulative Result tallies a snapshot carries.
type Counters struct {
	Accepted        int
	Proposals       int
	FailedProposals int
	Swaps           int
	SwapAttempts    int
}

func countersOf(res *Result) Counters {
	return Counters{
		Accepted:        res.Accepted,
		Proposals:       res.Proposals,
		FailedProposals: res.FailedProposals,
		Swaps:           res.Swaps,
		SwapAttempts:    res.SwapAttempts,
	}
}

func (c Counters) applyTo(res *Result) {
	res.Accepted = c.Accepted
	res.Proposals = c.Proposals
	res.FailedProposals = c.FailedProposals
	res.Swaps = c.Swaps
	res.SwapAttempts = c.SwapAttempts
}

// StepSnapshot is the complete between-steps state of one started
// sampling run. One struct covers all four samplers; the Sampler tag
// selects which fields are meaningful:
//
//   - "mh": Host (the chain's generator), Chains[0], Trace, Counters, Step.
//   - "gmh": Host, Streams (one per proposal thread), Cur (the current
//     state's slot index — it decides how streams map onto slots and the
//     index-chain walk order, so it must survive), Chains[0] (the current
//     slot's tree), Trace, Counters. Step is the number of recorded draws.
//   - "heated": Host (the swap generator), Streams (one per rung),
//     Chains (every rung in ladder order), Ladder (the temperature-ladder
//     controller's runtime state — the adapted β schedule, per-pair swap
//     windows and adaptation clock; checkpoint format v2), Trace,
//     Counters, Step.
//   - "multichain": Subs (one "mh" snapshot per chain, in chain order).
type StepSnapshot struct {
	Sampler string
	Step    int
	Cur     int
	Host    rng.MTState
	Streams []rng.MTState
	Chains  []ChainSnapshot
	Ladder  *tempering.State
	// Trace carries the draws of an in-memory run; TraceRef the sidecar
	// reference of a spilling run (checkpoint format v3). Exactly one is
	// set.
	Trace    *TraceSnapshot
	TraceRef *TraceRef
	Counters
	Subs []*StepSnapshot
}

// SnapshotStepper is a Stepper whose between-steps state can be exported
// and restored. All built-in step-driven samplers implement it. Restore
// must be called on a freshly started stepper (same sampler, same
// ChainConfig) before its first Step; Snapshot must be called between
// steps — the scheduler guarantees both by construction. Snapshot can
// fail only in spill mode, where it must make the sidecar durable
// before referencing it.
type SnapshotStepper interface {
	Stepper
	Snapshot() (*StepSnapshot, error)
	Restore(*StepSnapshot) error
}

// EMSnapshot is the between-steps state of a step-driven estimation: the
// outer loop's position plus, when a sampling pass is mid-flight, the
// pass's stepper snapshot. The iteration's ChainConfig is not stored — it
// is re-derived from Theta and It exactly as the running loop derives it.
type EMSnapshot struct {
	Theta   float64
	It      int
	Cur     *gtree.Tree
	History []EMIteration
	Active  *StepSnapshot
}

// Snapshot exports the estimation's state at a step boundary. Finished or
// failed runs cannot be snapshotted: their outcome is a Result, not a
// resumable state.
func (e *EMRun) Snapshot() (*EMSnapshot, error) {
	if e.done {
		return nil, fmt.Errorf("core: snapshot of a finished EM run")
	}
	snap := &EMSnapshot{
		Theta:   e.theta,
		It:      e.it,
		Cur:     e.cur.Clone(),
		History: append([]EMIteration(nil), e.res.History...),
	}
	if e.active != nil {
		ss, ok := e.active.(SnapshotStepper)
		if !ok {
			return nil, fmt.Errorf("core: sampler %q does not support snapshots", e.sampler.Name())
		}
		active, err := ss.Snapshot()
		if err != nil {
			return nil, err
		}
		snap.Active = active
	}
	return snap, nil
}

// Restore positions a freshly started estimation at a snapshot: the
// driving θ, iteration index, chain state and history are adopted, and a
// mid-flight sampling pass is restarted and restored so its remaining
// transitions are bit-identical to the uninterrupted run's.
func (e *EMRun) Restore(snap *EMSnapshot) error {
	if e.it != 0 || e.active != nil || e.done || len(e.res.History) != 0 {
		return fmt.Errorf("core: EM restore target is not a fresh run")
	}
	if snap.Theta <= 0 {
		return fmt.Errorf("core: EM snapshot theta %v must be positive", snap.Theta)
	}
	if snap.It < 0 || snap.It >= e.cfg.Iterations {
		return fmt.Errorf("core: EM snapshot iteration %d out of range [0, %d)", snap.It, e.cfg.Iterations)
	}
	if snap.Cur == nil {
		return fmt.Errorf("core: EM snapshot has no chain state")
	}
	if err := snap.Cur.Validate(); err != nil {
		return fmt.Errorf("core: EM snapshot tree invalid: %w", err)
	}
	e.theta = snap.Theta
	e.it = snap.It
	e.cur = snap.Cur.Clone()
	e.res.History = append(e.res.History[:0], snap.History...)
	if snap.Active == nil {
		return nil
	}
	ss, ok := e.sampler.(StepSampler)
	if !ok {
		return fmt.Errorf("core: snapshot has a mid-pass state but sampler %q is not step-driven", e.sampler.Name())
	}
	run, err := ss.Start(e.cur, e.chainConfig())
	if err != nil {
		return fmt.Errorf("core: EM restore: %w", err)
	}
	rs, ok := run.(SnapshotStepper)
	if !ok {
		return fmt.Errorf("core: sampler %q does not support snapshots", e.sampler.Name())
	}
	if err := rs.Restore(snap.Active); err != nil {
		return fmt.Errorf("core: EM restore: %w", err)
	}
	e.active = run
	return nil
}
