// Package core implements the samplers of the paper and the
// Expectation-Maximization driver around them:
//
//   - MH: the serial single-chain Metropolis-Hastings sampler of the
//     LAMARC package (paper §4.2), the baseline of every comparison.
//   - GMH: the multiple-proposal Generalized Metropolis-Hastings sampler
//     of Calderhead applied to genealogies — the paper's contribution
//     (§4.1, §4.3, §5.1.4).
//   - MultiChain: the classic run-P-independent-chains parallelization
//     whose per-chain burn-in makes it non-scalable (paper §3, Fig. 6).
//   - Maximum likelihood estimation of θ over a sample set (§5.1.5,
//     Algorithm 2) and the EM loop that alternates sampling and
//     maximization (§5.1, Fig. 11).
package core

import (
	"fmt"
	"math"

	"mpcgs/internal/gtree"
	"mpcgs/internal/rng"
)

// ChainConfig parameterizes one sampling run.
type ChainConfig struct {
	// Theta is the driving value θ0: the proposal kernel resimulates from
	// the coalescent prior at this parameter, and relative likelihoods are
	// measured against it.
	Theta float64
	// Burnin is the number of leading draws excluded from estimation.
	Burnin int
	// Samples is the number of post-burn-in draws to record.
	Samples int
	// Seed drives all pseudo-randomness of the run deterministically.
	Seed uint64
	// Trace, when set, streams every recorded draw to an append-only
	// sidecar file instead of accumulating it in memory: the recorder
	// stays bounded, and snapshots carry a durable byte offset into the
	// sidecar instead of the trace itself (O(interval) checkpoints).
	Trace *TraceSpec
	// ESSTarget, when positive, ends the run early once the online
	// effective-sample-size estimate of the post-burn-in stat stream
	// reaches it. The check is a pure function of the draw stream at a
	// fixed cadence, so a resumed run stops at exactly the same draw.
	ESSTarget float64
	// RHatTarget, when positive, additionally requires the online split
	// Gelman-Rubin statistic to fall to or below it (must exceed 1).
	RHatTarget float64
}

// TraceSpec configures the streaming trace sidecar of a run.
type TraceSpec struct {
	// Path of the sidecar file. Created if absent; an existing file is
	// recovered (torn tail truncated) and appended to, which is how the
	// passes of one EM estimation share a single sidecar.
	Path string
	// Window is the size of the recent-draws ring the online ESS is
	// estimated from. Zero selects the stats package default (1024).
	Window int
	// Subsample thins the diagnostics window: only every k-th draw
	// enters it, stretching the window over a longer stretch of chain.
	// Zero or one means no thinning. Only diagnostics are thinned — the
	// sidecar always receives every draw.
	Subsample int
}

func (c *ChainConfig) validate() error {
	if c.Theta <= 0 {
		return fmt.Errorf("core: driving theta %v must be positive", c.Theta)
	}
	if c.Burnin < 0 {
		return fmt.Errorf("core: negative burn-in %d", c.Burnin)
	}
	if c.Samples <= 0 {
		return fmt.Errorf("core: need at least one sample, got %d", c.Samples)
	}
	if c.Trace != nil && c.Trace.Path == "" {
		return fmt.Errorf("core: trace spec has no sidecar path")
	}
	if c.ESSTarget < 0 {
		return fmt.Errorf("core: ESS target %v must not be negative", c.ESSTarget)
	}
	if c.RHatTarget < 0 {
		return fmt.Errorf("core: R-hat target %v must not be negative", c.RHatTarget)
	}
	if c.RHatTarget > 0 && c.RHatTarget <= 1 {
		return fmt.Errorf("core: R-hat target %v must exceed 1 (the statistic approaches 1 from above)", c.RHatTarget)
	}
	return nil
}

// SampleSet is the reduced record of a chain run. Each draw keeps only the
// coalescent event ages of its genealogy — "nothing more than the time
// intervals are stored for each sample" (paper §5.1.3) — together with the
// derived sufficient statistic S = Σ k(k-1)t for the constant-size
// likelihood, plus the data log-likelihood for traces. The first Burnin
// entries are the burn-in period.
type SampleSet struct {
	NTips  int
	Theta0 float64
	Burnin int
	Stats  []float64   // SumKKT per draw
	Ages   [][]float64 // sorted coalescent event ages per draw
	LogLik []float64   // log P(D|G) per draw
}

// Len returns the total number of recorded draws including burn-in.
func (s *SampleSet) Len() int { return len(s.Stats) }

// PostBurninStats returns the sufficient statistics of the estimation
// draws (everything after the burn-in period).
func (s *SampleSet) PostBurninStats() []float64 { return s.Stats[s.Burnin:] }

// PostBurninAges returns the per-draw coalescent event ages of the
// estimation draws.
func (s *SampleSet) PostBurninAges() [][]float64 { return s.Ages[s.Burnin:] }

// PostBurninLogLik returns the data log-likelihood trace of the
// estimation draws.
func (s *SampleSet) PostBurninLogLik() []float64 { return s.LogLik[s.Burnin:] }

// sumKKTFromAges computes S = Σ k(k-1)·t from sorted coalescent ages
// without retraversing the tree.
func sumKKTFromAges(nTips int, ages []float64) float64 {
	s := 0.0
	prev := 0.0
	k := nTips
	for _, a := range ages {
		s += float64(k*(k-1)) * (a - prev)
		prev = a
		k--
	}
	return s
}

// Result is the outcome of a sampling run.
type Result struct {
	Samples *SampleSet
	// Final is the last chain state, used to seed the next EM iteration.
	Final *gtree.Tree
	// Accepted counts accepted moves (MH) or draws that changed the chain
	// state (GMH); Proposals counts candidate genealogies generated.
	Accepted  int
	Proposals int
	// FailedProposals counts candidates whose neighbourhood resimulation
	// landed in a numerically infeasible region (GMH only): they enter the
	// proposal set with zero weight and can never be drawn, so the round
	// proceeds, but a high count signals a pathological driving θ.
	FailedProposals int
	// Swaps and SwapAttempts count temperature-ladder exchanges (heated
	// sampler only).
	Swaps        int
	SwapAttempts int
	// PairSwapAttempts and PairSwaps break the ladder exchanges down per
	// adjacent rung pair (heated only; index i is the (i, i+1) pair) —
	// the swap-rate profile the adaptive ladder controller flattens.
	// EstPairSwapAttempts/EstPairSwaps count only the estimation phase
	// (after burn-in, when an adaptive ladder is frozen): those are the
	// rates of the schedule the recorded draws were actually sampled
	// under, free of the equilibration transient.
	PairSwapAttempts    []int64
	PairSwaps           []int64
	EstPairSwapAttempts []int64
	EstPairSwaps        []int64
	// Betas is the final temperature ladder β_0..β_{P-1} (heated only);
	// with adaptation on it is the adapted schedule, otherwise the fixed
	// geometric one.
	Betas []float64
	// StoppedEarly reports that the run ended at its convergence target
	// (ESSTarget/RHatTarget) before exhausting the configured draw
	// budget; StopESS and StopRHat are the online diagnostics at the
	// stop decision.
	StoppedEarly      bool
	StopESS, StopRHat float64
	// LadderAdapted reports whether the run was configured for
	// swap-rate-driven ladder adaptation; LadderAdaptations counts the
	// updates actually applied. Zero updates on an adapted run means
	// adaptation never engaged: either the configuration has nothing to
	// adapt (fewer than 3 rungs — both endpoints are pinned — or a flat
	// MaxTemp=1 ladder), or the burn-in ended before the warm-up (every
	// pair's window filling once) completed.
	LadderAdapted     bool
	LadderAdaptations int64
}

// PairRates converts per-pair accept/attempt counts to acceptance rates
// (NaN for a pair never attempted), the one place the 0/0 convention is
// defined for reports. A ragged accepts slice (possible when the counts
// come straight off an untrusted wire, e.g. `mpcgs -inspect` on a
// hand-edited checkpoint) is treated as zero accepts for the missing
// pairs rather than panicking.
func PairRates(accepts, attempts []int64) []float64 {
	if len(attempts) == 0 {
		return nil
	}
	out := make([]float64, len(attempts))
	for i := range out {
		if attempts[i] == 0 {
			out[i] = math.NaN()
			continue
		}
		var acc int64
		if i < len(accepts) {
			acc = accepts[i]
		}
		out[i] = float64(acc) / float64(attempts[i])
	}
	return out
}

// PairSwapRates returns the per-adjacent-pair swap acceptance rates over
// the whole run (NaN for a pair never attempted), or nil for non-ladder
// samplers.
func (r *Result) PairSwapRates() []float64 {
	return PairRates(r.PairSwaps, r.PairSwapAttempts)
}

// EstPairSwapRates returns the estimation-phase (post-burn-in, frozen
// ladder) per-adjacent-pair swap acceptance rates.
func (r *Result) EstPairSwapRates() []float64 {
	return PairRates(r.EstPairSwaps, r.EstPairSwapAttempts)
}

// AcceptanceRate returns the fraction of state-changing draws.
func (r *Result) AcceptanceRate() float64 {
	if r.Proposals == 0 {
		return 0
	}
	return float64(r.Accepted) / float64(r.Proposals)
}

// Sampler is a genealogy sampler: it draws genealogies from the posterior
// P(G|D,θ) starting at init, under the run configuration.
type Sampler interface {
	Name() string
	Run(init *gtree.Tree, cfg ChainConfig) (*Result, error)
}

// seedSource derives an MT19937 from a 64-bit seed and a stream label via
// SplitMix64, keeping independent components decorrelated.
func seedSource(seed uint64, label uint64) *rng.MT19937 {
	state := seed ^ 0x5851f42d4c957f2d*label
	v := rng.SplitMix64(&state)
	m := &rng.MT19937{}
	m.SeedArray([]uint32{uint32(v), uint32(v >> 32), uint32(label)})
	return m
}
