package core

import (
	"math"
	"testing"

	"mpcgs/internal/device"
	"mpcgs/internal/felsen"
	"mpcgs/internal/gtree"
	"mpcgs/internal/seqgen"
	"mpcgs/internal/subst"
)

// engineFixture builds a real-data evaluator and starting tree for the
// delta-vs-serial equivalence tests.
func engineFixture(t *testing.T, nSeq, seqLen int, seed uint64, dev *device.Device) (*felsen.Evaluator, *gtree.Tree) {
	t.Helper()
	aln, _, err := seqgen.SimulateData(nSeq, seqLen, 1.0, seed)
	if err != nil {
		t.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := felsen.New(model, aln, dev)
	if err != nil {
		t.Fatal(err)
	}
	init, err := InitialTree(aln, 1.0, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return eval, init
}

// sameTraces requires two runs to have made the identical accept/reject
// decisions (the Stats traces are bitwise equal only if every draw's
// genealogy matches) and recorded log-likelihoods within tol.
func sameTraces(t *testing.T, label string, a, b *SampleSet, tol float64) {
	t.Helper()
	if len(a.Stats) != len(b.Stats) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(a.Stats), len(b.Stats))
	}
	for i := range a.Stats {
		if a.Stats[i] != b.Stats[i] {
			t.Fatalf("%s: draw %d genealogy differs (stat %v vs %v): accept/reject sequence diverged",
				label, i, a.Stats[i], b.Stats[i])
		}
		if math.Abs(a.LogLik[i]-b.LogLik[i]) > tol {
			t.Fatalf("%s: draw %d log-likelihood %v vs %v exceeds %v",
				label, i, a.LogLik[i], b.LogLik[i], tol)
		}
		for k := range a.Ages[i] {
			if a.Ages[i][k] != b.Ages[i][k] {
				t.Fatalf("%s: draw %d age %d differs", label, i, k)
			}
		}
	}
}

// TestMHDeltaMatchesSerialPath pins the delta-evaluated MH chain to the
// serial reference path it replaced: same seed, same accept/reject
// sequence, same recorded genealogies, log-likelihoods within 1e-9.
func TestMHDeltaMatchesSerialPath(t *testing.T) {
	eval, init := engineFixture(t, 7, 120, 601, device.Serial())
	cfg := ChainConfig{Theta: 1.0, Burnin: 100, Samples: 500, Seed: 602}
	delta, err := NewMH(eval).Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial := NewMH(eval)
	serial.SerialEval = true
	ref, err := serial.Run(init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Accepted != ref.Accepted || delta.Proposals != ref.Proposals {
		t.Fatalf("accept counts differ: delta %d/%d vs serial %d/%d",
			delta.Accepted, delta.Proposals, ref.Accepted, ref.Proposals)
	}
	sameTraces(t, "mh", delta.Samples, ref.Samples, 1e-9)
}

// TestHeatedDeltaMatchesSerialPath pins the delta-evaluated MC³ ladder,
// running on the persistent device pool, to its serial reference: the
// within-chain accept/reject sequences, the swap sequence and the cold
// trace must all agree. Run under -race in CI, this is also the data-race
// check over the ladder's per-rung states on the shared pool.
func TestHeatedDeltaMatchesSerialPath(t *testing.T) {
	dev := device.New(4)
	defer dev.Close()
	eval, init := engineFixture(t, 7, 120, 611, dev)
	cfg := ChainConfig{Theta: 1.0, Burnin: 100, Samples: 400, Seed: 612}
	mk := func(serial bool) *Result {
		h := NewHeated(eval, dev, 4)
		h.SerialEval = serial
		res, err := h.Run(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	delta, ref := mk(false), mk(true)
	if delta.Accepted != ref.Accepted {
		t.Fatalf("cold-chain accepts differ: delta %d vs serial %d", delta.Accepted, ref.Accepted)
	}
	if delta.Swaps != ref.Swaps || delta.SwapAttempts != ref.SwapAttempts {
		t.Fatalf("swap sequence differs: delta %d/%d vs serial %d/%d",
			delta.Swaps, delta.SwapAttempts, ref.Swaps, ref.SwapAttempts)
	}
	sameTraces(t, "heated", delta.Samples, ref.Samples, 1e-9)
}

// TestBayesianDeltaMatchesSerialPath pins the joint (G, θ) sampler: the
// genealogy accept/reject sequence and the θ trace (which feeds back into
// the genealogy moves through the driving value) must match the serial
// reference exactly.
func TestBayesianDeltaMatchesSerialPath(t *testing.T) {
	eval, init := engineFixture(t, 7, 120, 621, device.Serial())
	cfg := ChainConfig{Theta: 1.0, Burnin: 100, Samples: 400, Seed: 622}
	mk := func(serial bool) *BayesResult {
		b := NewBayesian(eval, device.Serial())
		b.SerialEval = serial
		res, err := b.Run(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	delta, ref := mk(false), mk(true)
	if delta.TreeAccepted != ref.TreeAccepted || delta.ThetaAccepted != ref.ThetaAccepted {
		t.Fatalf("move counts differ: tree %d vs %d, theta %d vs %d",
			delta.TreeAccepted, ref.TreeAccepted, delta.ThetaAccepted, ref.ThetaAccepted)
	}
	for i := range delta.Thetas {
		if delta.Thetas[i] != ref.Thetas[i] {
			t.Fatalf("theta trace diverged at draw %d: %v vs %v", i, delta.Thetas[i], ref.Thetas[i])
		}
	}
	sameTraces(t, "bayes", delta.Samples, ref.Samples, 1e-9)
}

// TestMultiChainDeltaMatchesSerialPath: the pooled independent chains must
// make the same decisions under both evaluation modes.
func TestMultiChainDeltaMatchesSerialPath(t *testing.T) {
	dev := device.New(4)
	defer dev.Close()
	eval, init := engineFixture(t, 6, 80, 631, dev)
	cfg := ChainConfig{Theta: 1.0, Burnin: 50, Samples: 200, Seed: 632}
	mk := func(serial bool) *Result {
		mc := NewMultiChain(eval, dev, 4)
		mc.SerialEval = serial
		res, err := mc.Run(init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	delta, ref := mk(false), mk(true)
	if delta.Accepted != ref.Accepted {
		t.Fatalf("pooled accepts differ: delta %d vs serial %d", delta.Accepted, ref.Accepted)
	}
	sameTraces(t, "multichain", delta.Samples, ref.Samples, 1e-9)
}

// TestMHRecordingNoAliasing guards the recording-aliasing fix: every
// recorded age vector must have its own backing storage. The pre-engine
// sampler appended the same slice for consecutive rejected steps, so
// mutating one recorded draw silently rewrote others.
func TestMHRecordingNoAliasing(t *testing.T) {
	eval, init := engineFixture(t, 6, 80, 641, device.Serial())
	res, err := NewMH(eval).Run(init, ChainConfig{Theta: 1.0, Burnin: 0, Samples: 300, Seed: 642})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted == res.Proposals {
		t.Fatal("no rejected steps: aliasing regression not exercised")
	}
	ages := res.Samples.Ages
	for i := 1; i < len(ages); i++ {
		if &ages[i][0] == &ages[i-1][0] {
			t.Fatalf("draws %d and %d share one backing array", i-1, i)
		}
	}
	// Mutating one draw must not leak into any other.
	orig := ages[1][0]
	ages[0][0] = math.Inf(1)
	if ages[1][0] != orig {
		t.Fatal("mutating draw 0 changed draw 1")
	}
}

// TestHeatedDeltaCachePerRungAfterSwaps: after a run with many accepted
// swaps, the cold chain's recorded log-likelihoods must still agree with
// a from-scratch serial evaluation of its recorded states — i.e. swapping
// whole rung states kept every cache consistent with its tree.
func TestHeatedDeltaCachePerRungAfterSwaps(t *testing.T) {
	dev := device.New(2)
	defer dev.Close()
	eval, init := engineFixture(t, 6, 60, 651, dev)
	h := NewHeated(eval, dev, 3)
	res, err := h.Run(init, ChainConfig{Theta: 1.0, Burnin: 0, Samples: 300, Seed: 652})
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps == 0 {
		t.Skip("no swaps accepted: cache-consistency-after-swap not exercised")
	}
	// The final state is the cold chain's tree; its recorded likelihood
	// must match a full evaluation.
	got := res.Samples.LogLik[len(res.Samples.LogLik)-1]
	want := eval.LogLikelihoodSerial(res.Final)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("cold-chain final log-likelihood %v, serial re-evaluation %v", got, want)
	}
}

// BenchmarkHeatedStep measures the per-step cost of one MC³ ladder pass,
// delta-evaluated vs the serial reference path — the per-step advantage
// the engine port buys every long-chain workload.
func BenchmarkHeatedStep(b *testing.B) {
	aln, _, err := seqgen.SimulateData(12, 200, 1.0, 20160401)
	if err != nil {
		b.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"delta", false}, {"serial", true}} {
		b.Run(mode.name, func(b *testing.B) {
			dev := device.New(4)
			defer dev.Close()
			eval, err := felsen.New(model, aln, dev)
			if err != nil {
				b.Fatal(err)
			}
			init, err := InitialTree(aln, 1.0, 7)
			if err != nil {
				b.Fatal(err)
			}
			h := NewHeated(eval, dev, 4)
			h.SerialEval = mode.serial
			b.ResetTimer()
			if _, err := h.Run(init, ChainConfig{Theta: 1.0, Burnin: 0, Samples: b.N, Seed: 7}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkMHStep is the same comparison for the single-chain sampler:
// the delta step must cost a small fraction of the serial step.
func BenchmarkMHStep(b *testing.B) {
	aln, _, err := seqgen.SimulateData(12, 200, 1.0, 20160401)
	if err != nil {
		b.Fatal(err)
	}
	model, err := subst.NewF81(aln.BaseFreqs(), true)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"delta", false}, {"serial", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eval, err := felsen.New(model, aln, device.Serial())
			if err != nil {
				b.Fatal(err)
			}
			init, err := InitialTree(aln, 1.0, 7)
			if err != nil {
				b.Fatal(err)
			}
			m := NewMH(eval)
			m.SerialEval = mode.serial
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := m.Run(init, ChainConfig{Theta: 1.0, Burnin: 0, Samples: b.N, Seed: 7}); err != nil {
				b.Fatal(err)
			}
		})
	}
}
